// Staged continuous-testing driver over the curated scenario library
// (DESIGN.md §4h).
//
//   scenario_ci [--tier=smoke|soak|city] [--scenario=NAME[,NAME...]]
//               [--seed=BASE] [--seeds=N] [--jobs=N] [--islands=N]
//               [--out=PATH] [--baseline=PATH] [--selfcheck] [--list]
//
// Runs every selected scenario at the tier's scale, sharded across
// --jobs workers (0 = all cores), prints one KPI line per run and exits
// nonzero on any invariant violation, sanity-bound breach, or — with
// --baseline — KPI drift beyond the committed tolerances. --islands sets
// the execution lanes of island-partitioned scenarios (city_grid;
// 0 = all cores) — like --jobs it is pure execution policy, so the
// artifact is byte-identical at any --jobs AND any --islands value.
// --out writes the aggregated KPI artifact (the exact format of
// SCENARIO_baselines.json: regenerate the baseline by pointing --out at
// it). --selfcheck runs the suite twice — jobs=1/islands=1 vs. --jobs
// with parallel island lanes — and diffs the artifacts in-process.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/engine.hpp"
#include "scenarios/baseline.hpp"
#include "scenarios/scenario_lib.hpp"

namespace {

using iiot::scenarios::find_scenario;
using iiot::scenarios::library;
using iiot::scenarios::SuiteOptions;
using iiot::scenarios::SuiteResult;
using iiot::scenarios::Tier;

struct Options {
  Tier tier = Tier::kSmoke;
  std::uint64_t seed_base = 1;
  std::uint64_t seeds = 1;
  std::uint64_t jobs = 1;     // 0 → all cores
  std::uint64_t islands = 1;  // island-world lanes; 0 → all cores
  std::vector<std::string> only;
  std::string out;
  std::string baseline;
  bool selfcheck = false;
  bool list = false;
};

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0';
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto eq = a.find('=');
    const std::string key = a.substr(0, eq);
    const std::string val = eq == std::string::npos ? "" : a.substr(eq + 1);
    if (key == "--tier") {
      if (!iiot::scenarios::parse_tier(val, opt.tier)) {
        std::fprintf(stderr, "unknown tier: %s (smoke|soak|city)\n",
                     val.c_str());
        return false;
      }
    } else if (key == "--scenario") {
      std::size_t from = 0;
      while (from <= val.size()) {
        const std::size_t comma = val.find(',', from);
        const std::string name =
            val.substr(from, comma == std::string::npos ? std::string::npos
                                                        : comma - from);
        if (!name.empty()) {
          if (find_scenario(name) == nullptr) {
            std::fprintf(stderr, "unknown scenario: %s\n", name.c_str());
            std::fprintf(stderr, "available:");
            for (const auto& s : library()) {
              std::fprintf(stderr, " %s", s.name);
            }
            std::fprintf(stderr, "\n");
            return false;
          }
          opt.only.push_back(name);
        }
        if (comma == std::string::npos) break;
        from = comma + 1;
      }
    } else if (key == "--seed") {
      if (!parse_u64(val.c_str(), opt.seed_base)) return false;
    } else if (key == "--seeds") {
      if (!parse_u64(val.c_str(), opt.seeds)) return false;
    } else if (key == "--jobs") {
      if (!parse_u64(val.c_str(), opt.jobs)) return false;
    } else if (key == "--islands") {
      if (val == "auto") {
        opt.islands = 0;
      } else if (!parse_u64(val.c_str(), opt.islands)) {
        return false;
      }
    } else if (key == "--out") {
      opt.out = val;
    } else if (key == "--baseline") {
      opt.baseline = val;
    } else if (key == "--selfcheck") {
      opt.selfcheck = true;
    } else if (key == "--list") {
      opt.list = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  if (opt.list) {
    for (const auto& spec : library()) {
      const auto p = spec.params_for(opt.tier, opt.seed_base);
      std::printf("%-14s %4zu shards x %4zu nodes  %s\n", spec.name,
                  p.shards, p.nodes_per_shard, spec.summary);
    }
    return 0;
  }

  iiot::runner::Engine eng(static_cast<unsigned>(opt.jobs));
  SuiteOptions sopt;
  sopt.tier = opt.tier;
  sopt.seed_base = opt.seed_base;
  sopt.seeds = opt.seeds;
  sopt.islands = static_cast<unsigned>(opt.islands);
  sopt.only = opt.only;

  const auto wall_start = std::chrono::steady_clock::now();

  if (opt.selfcheck) {
    const std::string diff =
        iiot::scenarios::check_suite_determinism(sopt, eng);
    const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
    if (!diff.empty()) {
      std::printf("SELFCHECK FAIL: %s\n", diff.c_str());
      return 1;
    }
    std::printf(
        "selfcheck OK: %s-tier suite byte-identical across jobs and "
        "island-lane counts (jobs=%u, %lld ms)\n",
        iiot::scenarios::to_string(opt.tier), eng.jobs(),
        static_cast<long long>(wall_ms));
    return 0;
  }

  const SuiteResult res = iiot::scenarios::run_suite(sopt, eng);
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();

  std::size_t total_nodes = 0;
  for (const auto& rep : res.reports) {
    const auto* nodes = rep.find("nodes");
    const auto* ratio = rep.find("delivery_ratio");
    const auto* p50 = rep.find("latency_p50_us");
    const auto* p99 = rep.find("latency_p99_us");
    const auto* duty = rep.find("duty_cycle");
    total_nodes += nodes != nullptr ? static_cast<std::size_t>(nodes->value)
                                    : 0;
    std::printf(
        "%-14s seed=%llu %5.0f nodes  delivery=%.3f  p50=%.0fus "
        "p99=%.0fus  duty=%.4f  %s\n",
        rep.scenario.c_str(), static_cast<unsigned long long>(rep.seed),
        nodes != nullptr ? nodes->value : 0.0,
        ratio != nullptr ? ratio->value : 0.0,
        p50 != nullptr ? p50->value : 0.0, p99 != nullptr ? p99->value : 0.0,
        duty != nullptr ? duty->value : 0.0, rep.ok ? "ok" : "FAIL");
  }
  if (!res.ok()) std::fputs(res.failures().c_str(), stdout);

  if (!opt.out.empty()) {
    std::ofstream f(opt.out, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
      return 2;
    }
    f << res.artifact;
  }

  int rc = res.ok() ? 0 : 1;
  if (!opt.baseline.empty()) {
    std::ifstream f(opt.baseline, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot read baseline %s\n",
                   opt.baseline.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    const std::string drift =
        iiot::scenarios::check_against_baseline(res, ss.str());
    if (!drift.empty()) {
      std::printf("BASELINE DRIFT: %s\n", drift.c_str());
      rc = 1;
    } else {
      std::printf("baseline OK: every KPI within tolerance of %s\n",
                  opt.baseline.c_str());
    }
  }

  std::printf("%s tier: %zu runs, %zu nodes total, jobs=%u, %lld ms\n",
              iiot::scenarios::to_string(opt.tier), res.reports.size(),
              total_nodes, eng.jobs(), static_cast<long long>(wall_ms));
  return rc;
}
