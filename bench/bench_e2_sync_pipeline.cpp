// E2 — Tightly coordinated (staggered) schedules minimize end-to-end
// latency (paper §IV-B, refs [28]-[30]).
//
// Claim: "by employing highly synchronous end-to-end communication
// involving tight coordination of multiple devices, one can minimize the
// end-to-end latency" — a Dozer-style staggered TDMA tree forwards a
// sample across ALL hops within one epoch (latency ≈ wait-for-own-slot,
// independent of depth), whereas uncoordinated duty cycling pays
// ~interval/2 per hop, and an unaligned TDMA pays ~epoch/2 per hop.
//
// All three sleep-mode configurations run at comparable radio duty
// cycles; CSMA is included as the energy-unconstrained lower bound.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "mac/tdma.hpp"

namespace {

using namespace iiot;
using namespace iiot::sim;  // NOLINT

struct Row {
  double median_ms = 0;
  double p90_ms = 0;
  double delivery = 0;
  double duty = 0;
};

/// TDMA line with hop-by-hop forwarding installed at the MAC level.
Row run_tdma(int hops, bool staggered, std::uint64_t seed) {
  Scheduler sched;
  radio::Medium medium(sched, bench::default_radio(), seed);
  Rng rng(seed);
  const std::size_t n = static_cast<std::size_t>(hops) + 1;

  mac::TdmaConfig cfg;
  cfg.epoch = 2'000'000;  // 2 s
  cfg.slot = 50'000;
  cfg.staggered = staggered;

  struct Node {
    std::unique_ptr<energy::Meter> meter;
    std::unique_ptr<radio::Radio> radio;
    std::unique_ptr<mac::TdmaMac> mac;
  };
  std::vector<Node> nodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes[i].meter = std::make_unique<energy::Meter>();
    nodes[i].radio = std::make_unique<radio::Radio>(
        medium, sched, static_cast<NodeId>(i),
        radio::Position{static_cast<double>(i) * 25.0, 0.0},
        *nodes[i].meter);
    nodes[i].mac = std::make_unique<mac::TdmaMac>(
        *nodes[i].radio, sched, rng.fork(i + 1), 0, cfg);
  }
  // Random per-node phases for the unaligned mode.
  std::vector<Duration> phases(n);
  for (auto& p : phases) {
    p = rng.below(static_cast<std::uint32_t>(cfg.epoch - 2 * cfg.slot));
  }
  for (std::size_t i = 0; i < n; ++i) {
    mac::TdmaSchedule s;
    s.parent = i == 0 ? kInvalidNode : static_cast<NodeId>(i - 1);
    s.depth = static_cast<int>(i);
    s.max_depth = hops;
    s.has_children = i + 1 < n;
    s.phase = phases[i];
    s.parent_phase = i == 0 ? 0 : phases[i - 1];
    nodes[i].mac->configure(s);
  }

  int delivered = 0;
  Time sent_at = 0;
  std::vector<double> latencies;
  nodes[0].mac->set_receive_handler([&](NodeId, BytesView, double) {
    ++delivered;
    latencies.push_back(to_millis(sched.now() - sent_at));
  });
  for (std::size_t i = 1; i < n; ++i) {
    auto* m = nodes[i].mac.get();
    const NodeId parent = static_cast<NodeId>(i - 1);
    m->set_receive_handler([m, parent](NodeId, BytesView p, double) {
      m->send(parent, Buffer(p.begin(), p.end()));
    });
  }
  for (auto& nd : nodes) nd.mac->start();

  int sent = 0;
  for (int pkt = 0; pkt < 15; ++pkt) {
    // Inject at a time uncorrelated with the epoch grid.
    sched.schedule_at(10_s + static_cast<Time>(pkt) * 21'321'000, [&] {
      sent_at = sched.now();
      ++sent;
      nodes.back().mac->send(static_cast<NodeId>(n - 2),
                             to_buffer("sample"));
    });
  }
  sched.run_until(10_s + 26 * 21'321'000);

  Row row;
  row.median_ms = bench::percentile(latencies, 50);
  row.p90_ms = bench::percentile(latencies, 90);
  row.delivery = sent > 0 ? static_cast<double>(delivered) / sent : 0;
  nodes[1].meter->settle(sched.now());
  row.duty = nodes[1].meter->duty_cycle();
  return row;
}

/// LPL line using the full routing stack (uncoordinated duty cycling).
Row run_lpl(int hops, std::uint64_t seed) {
  Scheduler sched;
  radio::Medium medium(sched, bench::default_radio(), seed);
  core::MeshNetwork mesh(sched, medium, Rng(seed),
                         bench::node_config(core::MacKind::kLpl, 500'000));
  mesh.build_line(static_cast<std::size_t>(hops) + 1, 25.0);
  mesh.start();
  sched.run_until(240_s);

  int sent = 0, delivered = 0;
  Time sent_at = 0;
  std::vector<double> latencies;
  mesh.root().routing->set_delivery_handler(
      [&](NodeId, BytesView, std::uint8_t) {
        ++delivered;
        latencies.push_back(to_millis(sched.now() - sent_at));
      });
  for (int pkt = 0; pkt < 15; ++pkt) {
    sched.schedule_at(240_s + static_cast<Time>(pkt) * 21'321'000, [&] {
      sent_at = sched.now();
      ++sent;
      mesh.node(static_cast<std::size_t>(hops))
          .routing->send_up(to_buffer("sample"));
    });
  }
  sched.run_until(240_s + 26 * 21'321'000);
  Row row;
  row.median_ms = bench::percentile(latencies, 50);
  row.p90_ms = bench::percentile(latencies, 90);
  row.delivery = sent > 0 ? static_cast<double>(delivered) / sent : 0;
  mesh.node(1).meter.settle(sched.now());
  row.duty = mesh.node(1).meter.duty_cycle();
  return row;
}

void print_row(const char* scheme, int hops, const Row& r) {
  std::printf("%-16s %5d %12.1f %12.1f %8.0f%% %6.2f%%\n", scheme, hops,
              r.median_ms, r.p90_ms, r.delivery * 100.0, r.duty * 100.0);
}

}  // namespace

int main() {
  iiot::bench::print_header(
      "E2: end-to-end latency of coordinated vs uncoordinated duty cycling",
      "a staggered (Dozer-style) schedule crosses all hops within one "
      "epoch; unaligned schedules and LPL pay per-hop rendezvous waits");

  std::printf("%-16s %5s %12s %12s %9s %7s\n", "scheme", "hops",
              "median[ms]", "p90[ms]", "delivery", "duty");
  // The unaligned scheme's end-to-end wait is the sum of fixed random
  // phase gaps of one deployment, so every scheme is averaged over
  // several topology seeds.
  auto averaged = [](auto&& fn) {
    Row sum;
    constexpr int kSeeds = 4;
    for (std::uint64_t seed = 7; seed < 7 + kSeeds; ++seed) {
      Row r = fn(seed);
      sum.median_ms += r.median_ms / kSeeds;
      sum.p90_ms += r.p90_ms / kSeeds;
      sum.delivery += r.delivery / kSeeds;
      sum.duty += r.duty / kSeeds;
    }
    return sum;
  };
  for (int hops : {2, 4, 6, 8}) {
    print_row("tdma-staggered", hops, averaged([hops](std::uint64_t s) {
                return run_tdma(hops, true, s);
              }));
    print_row("tdma-unaligned", hops, averaged([hops](std::uint64_t s) {
                return run_tdma(hops, false, s);
              }));
    print_row("lpl-routing", hops, averaged([hops](std::uint64_t s) {
                return run_lpl(hops, s);
              }));
  }
  std::printf(
      "\nShape check: staggered latency stays ~1 epoch (<= ~2 s) regardless\n"
      "of depth; unaligned grows ~epoch/2 per hop; LPL grows ~wake/2 per\n"
      "hop — coordination wins by a growing factor as the network deepens.\n");
  return 0;
}
