// Observability overhead benchmark (DESIGN.md §4d).
//
// Measures the wall-clock cost of the obs layer on the 50-node CSMA+RPL
// workload from bench_perf_core, in three modes within one process:
//
//   off     — no obs::Context installed: every instrumentation site is a
//             null-pointer test. This must stay within 3% of the
//             pre-observability fast path (the hard budget this PR ships
//             under).
//   metrics — Context installed, tracer disabled: struct-backed counters
//             are literal field increments, so the residual cost is the
//             pointer test plus registry-owned histogram updates.
//   trace   — metrics + causal tracing enabled (bounded record buffer):
//             the honest price of per-packet spans, recorded so nobody
//             has to guess it.
//
// Modes are interleaved across repetitions and the best run per mode is
// compared, which cancels most machine noise. Results append to
// BENCH_obs.json with an embedded per-layer metrics snapshot.
//
//   ./bench_obs [label] [output.json] [--check] [--baseline=BENCH_core.json]
//
// --check            exit nonzero if metrics-mode overhead exceeds 3%
// --baseline=<file>  also compare mode "off" against the newest
//                    net50_events_per_sec recorded in that file (3%
//                    shortfall budget; meaningful on the machine that
//                    recorded the baseline)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/network.hpp"
#include "obs/context.hpp"
#include "radio/medium.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace iiot;
using namespace iiot::sim;  // NOLINT

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

enum class Mode { kOff, kMetrics, kTrace };

constexpr const char* to_string(Mode m) {
  switch (m) {
    case Mode::kOff: return "off";
    case Mode::kMetrics: return "metrics";
    case Mode::kTrace: return "trace";
  }
  return "?";
}

struct RunResult {
  double events_per_sec = 0;
  std::uint64_t transmissions = 0;
  std::size_t trace_records = 0;
  std::string metrics_json = "{}";
};

// The bench_perf_core 50-node workload, verbatim: mesh formation off the
// clock, then 30 s of staggered periodic reports under measurement.
RunResult run_workload(Mode mode, std::uint64_t seed) {
  Scheduler sched;
  std::unique_ptr<obs::Context> obsctx;
  if (mode != Mode::kOff) {
    obsctx = std::make_unique<obs::Context>(sched, 1u << 20);
    obsctx->tracer().set_enabled(mode == Mode::kTrace);
  }
  radio::Medium medium(sched, bench::default_radio(), seed);
  core::MeshNetwork mesh(sched, medium, Rng(seed),
                         bench::node_config(core::MacKind::kCsma));
  mesh.build_grid(50, 20.0);
  mesh.start();
  sched.run_until(20_s);

  const Duration measured = 30_s;
  for (std::size_t i = 1; i < mesh.size(); ++i) {
    auto& node = mesh.node(i);
    const Duration phase = static_cast<Duration>(i) * 7'919 % 2'000'000;
    for (Duration t = phase; t < measured; t += 2_s) {
      sched.schedule_at(20_s + t,
                        [&node] { node.routing->send_up(to_buffer("r")); });
    }
  }

  const std::uint64_t ev0 = sched.executed_events();
  const double t0 = now_seconds();
  sched.run_until(20_s + measured);
  const double wall = now_seconds() - t0;

  RunResult r;
  r.events_per_sec =
      static_cast<double>(sched.executed_events() - ev0) / wall;
  r.transmissions = medium.stats().transmissions;
  if (obsctx) {
    r.trace_records = obsctx->tracer().records().size();
    r.metrics_json = obsctx->metrics().snapshot_json();
  }
  return r;
}

/// Newest "net50_events_per_sec" value in a BENCH_core.json, or 0.
double baseline_net50(const std::string& path) {
  static constexpr const char kKey[] = "\"net50_events_per_sec\": ";
  std::ifstream in(path);
  std::string line;
  double last = 0;
  while (std::getline(in, line)) {
    const auto pos = line.find(kKey);
    if (pos != std::string::npos) {
      last = std::strtod(line.c_str() + pos + (sizeof kKey - 1), nullptr);
    }
  }
  return last;
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "current";
  std::string out_path = "BENCH_obs.json";
  bool check = false;
  std::string baseline_path;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (positional == 0) {
      label = arg;
      ++positional;
    } else {
      out_path = arg;
    }
  }

  iiot::bench::print_header(
      "PERF: observability overhead (50-node CSMA+RPL workload)",
      "obs off must match the pre-obs fast path; metrics mode within 3%");

  const double base =
      baseline_path.empty() ? 0.0 : baseline_net50(baseline_path);

  constexpr int kReps = 3;
  const Mode modes[] = {Mode::kOff, Mode::kMetrics, Mode::kTrace};
  RunResult best[3];
  const auto one_rep = [&] {
    for (int m = 0; m < 3; ++m) {  // interleaved: noise hits all modes alike
      RunResult r = run_workload(modes[m], 42);
      if (r.events_per_sec > best[m].events_per_sec) best[m] = std::move(r);
    }
  };
  const auto overhead_pct = [&](int m) {
    return (best[0].events_per_sec / best[m].events_per_sec - 1.0) * 100.0;
  };
  const auto over_budget = [&] {
    if (overhead_pct(1) > 3.0) return true;
    return base > 0 &&
           (best[0].events_per_sec / base - 1.0) * 100.0 < -3.0;
  };
  for (int rep = 0; rep < kReps; ++rep) one_rep();
  // Best-of-N converges: scheduling noise only ever slows a run down, so
  // extra reps can clear a spurious over-budget reading but cannot hide a
  // real regression. Retry before failing the gate.
  for (int extra = 0; check && over_budget() && extra < 6; ++extra) {
    one_rep();
  }

  const double off = best[0].events_per_sec;
  const double metrics_pct = overhead_pct(1);
  const double trace_pct = overhead_pct(2);
  for (int m = 0; m < 3; ++m) {
    std::printf("%-8s %12.0f events/s  (%llu tx, %zu trace records)\n",
                to_string(modes[m]), best[m].events_per_sec,
                static_cast<unsigned long long>(best[m].transmissions),
                best[m].trace_records);
  }
  std::printf("metrics overhead: %+.2f%%   tracing overhead: %+.2f%%\n",
              metrics_pct, trace_pct);

  // All three modes simulate the identical world: any divergence in the
  // virtual experiment means observability perturbed the simulation.
  bool perturbed = false;
  for (int m = 1; m < 3; ++m) {
    if (best[m].transmissions != best[0].transmissions) {
      std::printf("FAIL: mode %s changed the simulation (%llu tx vs %llu)\n",
                  to_string(modes[m]),
                  static_cast<unsigned long long>(best[m].transmissions),
                  static_cast<unsigned long long>(best[0].transmissions));
      perturbed = true;
    }
  }

  std::ostringstream run;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"label\": \"%s\", \"off_events_per_sec\": %.0f, "
                "\"metrics_events_per_sec\": %.0f, "
                "\"trace_events_per_sec\": %.0f, "
                "\"metrics_overhead_pct\": %.2f, "
                "\"trace_overhead_pct\": %.2f, \"trace_records\": %zu",
                label.c_str(), off, best[1].events_per_sec,
                best[2].events_per_sec, metrics_pct, trace_pct,
                best[2].trace_records);
  run << buf << ", \"metrics\": " << best[1].metrics_json << "}";
  iiot::bench::append_bench_run(out_path, "bench_obs", run.str());
  std::printf("wrote %s (label \"%s\")\n", out_path.c_str(), label.c_str());

  bool failed = perturbed;
  if (!baseline_path.empty()) {
    if (base > 0) {
      const double delta_pct = (off / base - 1.0) * 100.0;
      std::printf("vs %s net50 baseline %.0f: %+.2f%%\n",
                  baseline_path.c_str(), base, delta_pct);
      if (check && delta_pct < -3.0) {
        std::printf("FAIL: obs-off fast path regressed >3%% vs baseline\n");
        failed = true;
      }
    } else {
      std::printf("note: no net50_events_per_sec found in %s\n",
                  baseline_path.c_str());
    }
  }
  if (check && metrics_pct > 3.0) {
    std::printf("FAIL: metrics-mode overhead %.2f%% exceeds 3%% budget\n",
                metrics_pct);
    failed = true;
  }
  return failed ? 1 : 0;
}
