// Parallel-in-one-world PDES scaling benchmark (DESIGN.md §4i).
//
// Builds ONE island-partitioned city world at three sizes (~2k, ~5k and
// ~10k nodes) and runs the identical first 20 simulated seconds —
// trickle beacons, joins, cross-island DODAG growth, plus paced upward
// telemetry from every node that has joined — at several execution lane
// counts. The serial scheduler (lanes = 1) is the oracle: the world
// digest at EVERY lane count must equal the serial digest bit-for-bit,
// or the run hard-fails. Speedup is
// wall-time(lanes=1) / wall-time(lanes=K) per size.
//
// Scaling gate: the largest world must beat the serial oracle by
// --min-scaling (default 2.0) at 4 lanes. Enforced only when the machine
// has >= 4 hardware threads (CI runners); informational otherwise,
// exactly like bench_backend_sharded. The digest-identity check is
// enforced everywhere, at every lane count.
//
// Results append to BENCH_pdes.json:
//
//   ./bench_pdes [label] [output.json] [--reps=N]
//                [--compare=BASELINE.json] [--min-ratio=R]
//                [--min-scaling=S]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "pdes/world.hpp"
#include "runner/engine.hpp"

namespace {

using namespace iiot;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

constexpr sim::Time kMeasure = 20'000'000;  // formation + paced traffic
constexpr sim::Duration kPeriod = 4'000'000;  // per-node send period

struct SizeCfg {
  const char* name;  // JSON key fragment
  std::size_t islands_x;
  std::size_t islands_y;
  std::size_t side;
};

// 7x7-node patches; the shapes match the city_grid scenario family.
constexpr SizeCfg kSizes[] = {
    {"2k", 7, 6, 7},     // 2058 nodes, 42 islands
    {"5k", 11, 10, 7},   // 5390 nodes, 110 islands
    {"10k", 15, 14, 7},  // 10290 nodes, 210 islands
};

struct RunResult {
  double wall = 0.0;
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::string consistency;  // empty = clean
};

RunResult run_config(const SizeCfg& size, unsigned lanes) {
  pdes::IslandWorldConfig cfg;
  cfg.islands_x = size.islands_x;
  cfg.islands_y = size.islands_y;
  cfg.island_side = size.side;
  cfg.lanes = lanes;
  cfg.seed = 1;
  cfg.radio_cfg.exponent = 3.0;
  cfg.radio_cfg.shadowing_sigma_db = 0.0;

  pdes::IslandWorld world(cfg);
  world.start();
  // Paced upward telemetry from every node (a no-op until the node
  // joins): pure formation leaves the windows nearly empty once trickle
  // backs off, which would measure synchronization overhead instead of
  // parallel physics. Data funneling toward the center root is the
  // sustained — and honestly imbalanced — load. Scheduled before the
  // clock starts; sends are island-local, so lanes cannot reorder them.
  for (std::size_t i = 0; i < world.size(); ++i) {
    if (i == world.root_index()) continue;
    core::MeshNode* node = &world.node(i);
    sim::Scheduler& sched = world.scheduler(world.island_of(i));
    const auto lo = static_cast<std::uint8_t>(i & 0xFF);
    const auto hi = static_cast<std::uint8_t>((i >> 8) & 0xFF);
    const sim::Time phase =
        200'000 + (static_cast<sim::Time>(i) * 7'919) % kPeriod;
    for (sim::Time t = phase; t < kMeasure; t += kPeriod) {
      sched.schedule_at(t, [node, lo, hi] {
        if (node->routing->joined()) {
          node->routing->send_up(Buffer{lo, hi, 0x5A, 0x5A});
        }
      });
    }
  }
  RunResult r;
  const double t0 = now_seconds();
  world.run_until(kMeasure);
  r.wall = now_seconds() - t0;
  r.consistency = world.check_consistency();
  r.digest = world.digest();
  r.events = world.executed_events();
  world.stop();
  return r;
}

bool compare_against_baseline(const std::string& base_line,
                              const std::string& run_line,
                              double min_ratio) {
  static const char* kGated[] = {"eps_2k_l1", "eps_5k_l1", "eps_10k_l1"};
  bool ok = true;
  std::printf("\nperf-regression gate (min ratio %.2f):\n", min_ratio);
  for (const char* key : kGated) {
    double base = 0;
    double cur = 0;
    if (!iiot::bench::bench_field(base_line, key, base) || base <= 0) {
      std::printf("  %-14s baseline missing — skipped\n", key);
      continue;
    }
    if (!iiot::bench::bench_field(run_line, key, cur)) {
      std::printf("  %-14s MISSING in current run\n", key);
      ok = false;
      continue;
    }
    const double ratio = cur / base;
    std::printf("  %-14s %12.0f vs %12.0f baseline  (ratio %.2f)%s\n", key,
                cur, base, ratio, ratio < min_ratio ? "  REGRESSION" : "");
    if (ratio < min_ratio) ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "current";
  std::string out_path = "BENCH_pdes.json";
  std::string compare_path;
  std::uint64_t reps = 1;
  double min_ratio = 0.6;
  double min_scaling = 2.0;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (bench::flag_u64(arg, "--reps", reps) ||
        bench::flag_str(arg, "--compare", compare_path) ||
        bench::flag_double(arg, "--min-ratio", min_ratio) ||
        bench::flag_double(arg, "--min-scaling", min_scaling)) {
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
    if (positional == 0) {
      label = arg;
    } else {
      out_path = arg;
    }
    ++positional;
  }
  if (reps == 0) reps = 1;

  bench::print_header(
      "PERF: parallel-in-one-world simulation (spatial-island PDES)",
      "island lanes must scale ONE city world >= 2x at 4 lanes with the "
      "world digest bit-identical to the serial oracle at every lane "
      "count");

  const unsigned cores = runner::hardware_jobs();
  std::vector<unsigned> lane_configs = {1, 2, 4};
  if (cores > 4) lane_configs.push_back(cores);
  std::printf("cores=%u, lanes swept:", cores);
  for (unsigned l : lane_configs) std::printf(" %u", l);
  std::printf(", %lld sim-seconds per run, reps=%llu\n",
              static_cast<long long>(kMeasure / 1'000'000),
              static_cast<unsigned long long>(reps));

  bool identical = true;
  const std::size_t nsizes = std::size(kSizes);
  // best[size][lane] — minimum wall across reps; digests must agree
  // across reps AND lanes, so they are checked every run.
  std::vector<std::vector<RunResult>> best(
      nsizes, std::vector<RunResult>(lane_configs.size()));
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    for (std::size_t s = 0; s < nsizes; ++s) {
      for (std::size_t c = 0; c < lane_configs.size(); ++c) {
        const RunResult r = run_config(kSizes[s], lane_configs[c]);
        if (!r.consistency.empty()) {
          std::printf("FAIL: %s lanes=%u: %s\n", kSizes[s].name,
                      lane_configs[c], r.consistency.c_str());
          identical = false;
        }
        if (rep == 0 && c == 0) {
          best[s][c] = r;
        } else {
          const RunResult& oracle = best[s][0];
          if (r.digest != oracle.digest || r.events != oracle.events) {
            std::printf(
                "FAIL: %s lanes=%u rep=%llu: digest %016llx events %llu "
                "vs serial oracle digest %016llx events %llu\n",
                kSizes[s].name, lane_configs[c],
                static_cast<unsigned long long>(rep),
                static_cast<unsigned long long>(r.digest),
                static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(oracle.digest),
                static_cast<unsigned long long>(oracle.events));
            identical = false;
          }
          if (best[s][c].wall == 0.0 || r.wall < best[s][c].wall) {
            const std::string keep = best[s][c].consistency;
            best[s][c] = r;
            if (!keep.empty()) best[s][c].consistency = keep;
          }
        }
      }
    }
  }

  std::printf("\n%-6s %8s %10s", "size", "nodes", "events");
  for (unsigned l : lane_configs) std::printf("  lanes=%-2u wall", l);
  std::printf("  speedup@4\n");
  std::vector<double> scaling4(nsizes, 0.0);
  for (std::size_t s = 0; s < nsizes; ++s) {
    const std::size_t nodes = kSizes[s].islands_x * kSizes[s].islands_y *
                              kSizes[s].side * kSizes[s].side;
    std::printf("%-6s %8zu %10llu", kSizes[s].name, nodes,
                static_cast<unsigned long long>(best[s][0].events));
    for (std::size_t c = 0; c < lane_configs.size(); ++c) {
      std::printf("  %11.3fs", best[s][c].wall);
    }
    scaling4[s] = best[s][0].wall / best[s][2].wall;  // lane_configs[2]==4
    std::printf("  x%.2f\n", scaling4[s]);
  }

  const std::size_t largest = nsizes - 1;
  const bool enforce = cores >= 4;
  bool scaling_ok = true;
  std::printf("\nscaling: x%.2f at 4 lanes on the %s world\n",
              scaling4[largest], kSizes[largest].name);
  if (enforce) {
    if (scaling4[largest] < min_scaling) {
      std::printf("FAIL: scaling x%.2f below the x%.1f floor\n",
                  scaling4[largest], min_scaling);
      scaling_ok = false;
    }
  } else {
    std::printf("scaling informational only (%u core(s) < 4; the x%.1f "
                "floor is enforced on >= 4-core machines)\n",
                cores, min_scaling);
  }
  std::printf("equivalence: %s (world digest + event count bit-identical "
              "to the serial oracle at every lane count)\n",
              identical ? "OK" : "FAILED");

  std::ostringstream run;
  char buf[640];
  std::snprintf(
      buf, sizeof buf,
      "{\"label\": \"%s\", \"cores\": %u, \"sim_seconds\": %lld, "
      "\"eps_2k_l1\": %.0f, \"eps_5k_l1\": %.0f, \"eps_10k_l1\": %.0f, "
      "\"wall_10k_l1\": %.3f, \"wall_10k_l4\": %.3f, "
      "\"scaling_2k_4\": %.2f, \"scaling_5k_4\": %.2f, "
      "\"scaling_10k_4\": %.2f, \"digest_10k\": %llu, "
      "\"scaling_enforced\": %d, \"reps\": %llu}",
      label.c_str(), cores, static_cast<long long>(kMeasure / 1'000'000),
      static_cast<double>(best[0][0].events) / best[0][0].wall,
      static_cast<double>(best[1][0].events) / best[1][0].wall,
      static_cast<double>(best[2][0].events) / best[2][0].wall,
      best[largest][0].wall, best[largest][2].wall, scaling4[0],
      scaling4[1], scaling4[2],
      static_cast<unsigned long long>(best[largest][0].digest),
      enforce ? 1 : 0, static_cast<unsigned long long>(reps));
  run << buf;
  bench::append_bench_run(out_path, "bench_pdes", run.str());
  std::printf("\nwrote %s (label \"%s\")\n", out_path.c_str(),
              label.c_str());

  bool gate_ok = true;
  if (!compare_path.empty()) {
    const std::string base_line = bench::last_bench_run_line(compare_path);
    if (base_line.empty()) {
      std::printf("FAIL: no baseline run line in %s\n",
                  compare_path.c_str());
      gate_ok = false;
    } else {
      gate_ok = compare_against_baseline(base_line, run.str(), min_ratio);
      std::printf("perf gate: %s\n", gate_ok ? "OK" : "FAILED");
    }
  }
  return identical && scaling_ok && gate_ok ? 0 : 1;
}
