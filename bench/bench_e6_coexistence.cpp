// E6 — Administrative scalability: co-located tenants competing for
// spectrum (paper §IV-C, refs [35], [36]).
//
// Claim: "Sensors and actuators managed by different entities can be
// sharing the same physical space ... they will likely compete for
// resources, notably wireless communication channels."
//
// Setup: 1..6 administratively independent networks (tenants) deployed
// over the SAME construction-site area, each collecting periodic data to
// its own border router. Channel plans: all tenants forced onto one
// shared channel, versus coordinated assignment over 4 channels.
// Metrics: per-tenant delivery ratio, cross-tenant frames overheard
// (energy wasted on other administrations' traffic), collisions.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "core/tenant.hpp"

namespace {

using namespace iiot;
using namespace iiot::sim;  // NOLINT

struct Outcome {
  double delivery = 0;        // mean across tenants
  double worst_delivery = 1;  // weakest tenant
  double foreign_per_node = 0;
  std::uint64_t collisions = 0;
};

Outcome run(int tenants, int channels, std::uint64_t seed) {
  Scheduler sched;
  radio::Medium medium(sched, bench::default_radio(), seed);
  core::TenantManager mgr(sched, medium, Rng(seed));
  std::vector<ChannelId> plan;
  for (int c = 0; c < channels; ++c) {
    plan.push_back(static_cast<ChannelId>(11 + c));
  }
  for (int t = 0; t < tenants; ++t) {
    core::TenantSpec spec;
    spec.id = static_cast<TenantId>(t + 1);
    spec.nodes = 12;
    spec.node_cfg = bench::node_config(core::MacKind::kCsma);
    spec.node_cfg.rpl.downward_routes = false;
    mgr.add_tenant(spec, /*side=*/70.0, plan);
  }
  mgr.start_all();
  sched.run_until(40_s);

  // Each tenant's nodes report every 5 s for 5 minutes.
  std::vector<int> delivered(static_cast<std::size_t>(tenants), 0);
  int per_tenant_sent = 0;
  Rng traffic_rng(seed ^ 0x6);
  for (int t = 0; t < tenants; ++t) {
    auto& net = mgr.network(static_cast<std::size_t>(t));
    net.root().routing->set_delivery_handler(
        [&delivered, t](NodeId, BytesView, std::uint8_t) {
          ++delivered[static_cast<std::size_t>(t)];
        });
  }
  constexpr int kRounds = 120;
  for (int round = 0; round < kRounds; ++round) {
    for (int t = 0; t < tenants; ++t) {
      auto& net = mgr.network(static_cast<std::size_t>(t));
      for (std::size_t i = 1; i < net.size(); ++i) {
        const Time at = 40_s + static_cast<Time>(round) * 1_s +
                        traffic_rng.below(900'000);
        sched.schedule_at(at, [&net, i] {
          net.node(i).routing->send_up(Buffer(48, 0x6D));
        });
      }
    }
  }
  per_tenant_sent = kRounds * 11;
  sched.run_until(40_s + kRounds * 1_s + 10_s);

  Outcome out;
  std::uint64_t foreign = 0;
  std::size_t node_count = 0;
  for (int t = 0; t < tenants; ++t) {
    auto& net = mgr.network(static_cast<std::size_t>(t));
    const double d = static_cast<double>(
                         delivered[static_cast<std::size_t>(t)]) /
                     per_tenant_sent;
    out.delivery += d / tenants;
    out.worst_delivery = std::min(out.worst_delivery, d);
    for (std::size_t i = 0; i < net.size(); ++i) {
      foreign += static_cast<mac::MacBase&>(*net.node(i).mac)
                     .stats()
                     .rx_foreign;
      ++node_count;
    }
  }
  out.foreign_per_node =
      static_cast<double>(foreign) / static_cast<double>(node_count);
  out.collisions = medium.stats().collisions;
  return out;
}

}  // namespace

int main() {
  iiot::bench::print_header(
      "E6: multi-tenant coexistence in one physical space",
      "independent administrations sharing a site compete for the "
      "wireless channel; a coordinated channel plan recovers most of the "
      "lost delivery, but with fewer channels than tenants contention is "
      "unavoidable");

  std::printf("%8s %9s | %9s %10s %12s %11s\n", "tenants", "channels",
              "delivery", "worst", "foreign/node", "collisions");
  for (int tenants : {1, 2, 4, 6}) {
    for (int channels : {1, 4}) {
      if (tenants == 1 && channels == 4) continue;
      const Outcome o = run(tenants, channels, 99);
      std::printf("%8d %9d | %8.1f%% %9.1f%% %12.0f %11llu\n", tenants,
                  channels, o.delivery * 100.0, o.worst_delivery * 100.0,
                  o.foreign_per_node,
                  static_cast<unsigned long long>(o.collisions));
    }
  }
  std::printf(
      "\nShape check: on one shared channel, delivery and the weakest\n"
      "tenant degrade as tenants are added while foreign traffic and\n"
      "collisions climb; spreading the same tenants over 4 channels\n"
      "restores delivery until tenants outnumber channels again.\n");
  return 0;
}
