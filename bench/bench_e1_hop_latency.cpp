// E1 — Multi-hop latency under duty cycling (paper §IV-B).
//
// Claim: with duty-cycled MACs, "a packet may take seconds to be
// transmitted over few wireless hops" [26], [27], because each hop waits
// ~U(0, wake_interval) for the next relay's wakeup; an always-on CSMA
// radio crosses the same hops in milliseconds but at ~100% duty cycle.
//
// Output: per (MAC, hop count): median / p90 end-to-end latency, delivery
// ratio, and the mean radio duty cycle of relay nodes.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace iiot;
using namespace iiot::sim;  // NOLINT
using core::MacKind;

struct Row {
  double median_ms = 0;
  double p90_ms = 0;
  double delivery = 0;
  double duty = 0;
};

Row run(MacKind mac, int hops, Duration wake, std::uint64_t seed) {
  Scheduler sched;
  radio::Medium medium(sched, bench::default_radio(), seed);
  core::MeshNetwork mesh(sched, medium, Rng(seed),
                         bench::node_config(mac, wake));
  mesh.build_line(static_cast<std::size_t>(hops) + 1, 25.0);
  mesh.start();

  // Formation: duty-cycled control traffic needs a while.
  const Duration form = mac == MacKind::kCsma ? 60_s : 240_s;
  sched.run_until(form);

  std::vector<double> latencies;
  int sent = 0, delivered = 0;
  Time sent_at = 0;
  mesh.root().routing->set_delivery_handler(
      [&](NodeId, BytesView, std::uint8_t) {
        ++delivered;
        latencies.push_back(to_millis(sched.now() - sent_at));
      });
  auto& source = mesh.node(static_cast<std::size_t>(hops));
  for (int pkt = 0; pkt < 25; ++pkt) {
    sched.schedule_at(form + static_cast<Time>(pkt) * 20_s, [&] {
      sent_at = sched.now();
      ++sent;
      source.routing->send_up(to_buffer("reading"));
    });
  }
  sched.run_until(form + 26 * 20_s);

  Row row;
  row.median_ms = bench::percentile(latencies, 50);
  row.p90_ms = bench::percentile(latencies, 90);
  row.delivery = sent > 0 ? static_cast<double>(delivered) / sent : 0;
  // Duty cycle of an interior relay (node 1).
  if (hops >= 2) {
    mesh.node(1).meter.settle(sched.now());
    row.duty = mesh.node(1).meter.duty_cycle();
  }
  return row;
}

}  // namespace

int main() {
  iiot::bench::print_header(
      "E1: end-to-end latency vs hop count, per MAC",
      "duty-cycled MACs take ~hops*wake/2 (seconds over few hops); "
      "always-on CSMA takes milliseconds at ~100% duty cycle");

  const Duration wake = 500'000;  // 500 ms wake interval
  std::printf("%-8s %5s %12s %12s %9s %7s\n", "mac", "hops", "median[ms]",
              "p90[ms]", "delivery", "duty");
  for (MacKind mac : {MacKind::kCsma, MacKind::kLpl, MacKind::kRiMac}) {
    for (int hops : {1, 2, 4, 6, 8}) {
      Row r = run(mac, hops, wake, 42);
      std::printf("%-8s %5d %12.1f %12.1f %8.0f%% %6.1f%%\n",
                  core::to_string(mac), hops, r.median_ms, r.p90_ms,
                  r.delivery * 100.0, r.duty * 100.0);
    }
  }
  std::printf(
      "\nShape check: at 8 hops LPL/RI-MAC medians should sit in the\n"
      "1-3 s range (≈ hops * 250 ms) versus ~10 ms for CSMA, while CSMA\n"
      "duty cycle is ~100%% versus a few %% for the duty-cycled MACs.\n");
  return 0;
}
