// Core-substrate performance benchmark (scheduler + radio medium).
//
// Unlike bench_e1..e12, which regenerate paper experiments on the virtual
// clock, this harness measures *wall-clock* throughput of the simulation
// substrate itself: every experiment's runtime is bounded by how many
// discrete events per second the scheduler can retire and how fast the
// medium can resolve transmissions. Two workloads:
//
//   1. Raw scheduler churn — schedule/cancel/fire patterns shaped like MAC
//      timer traffic (periodic timers, armed-then-cancelled ack timeouts).
//   2. A CSMA mesh of 50/200/500 nodes running RPL + periodic sensor
//      traffic for a fixed span of virtual time.
//
// Repetitions run on the runner engine (DESIGN.md §4e): each (rep,
// workload) pair owns an isolated world and a result slot, best-of-N is
// taken per workload, and the simulation counters must be bit-identical
// across repetitions — a free determinism gate on every perf run.
//
// Results are appended to BENCH_core.json (one JSON object per run, under
// "runs") so the perf trajectory is tracked across PRs:
//
//   ./bench_perf_core [label] [output.json] [--reps=N] [--jobs=N]
//                     [--compare=BASELINE.json] [--min-ratio=R]
//
// --reps=N       best-of-N per workload (default 1; CI uses 3)
// --jobs=N       shard repetitions across N workers (default 1 — timing
//                runs are cleanest serial; >1 trades noise for speed)
// --compare=F    perf-regression gate: read the newest run line of F and
//                exit 1 if any events/sec metric drops below
//                min-ratio × baseline (default 0.8, i.e. a >20% drop)
// --min-ratio=R  override the compare threshold
//
// Pass a label like "seed" or "optimized"; default "current".
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/network.hpp"
#include "radio/medium.hpp"
#include "runner/engine.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace iiot;
using namespace iiot::sim;  // NOLINT

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------- scheduler

struct ChurnResult {
  double events_per_sec = 0;  // executed events / wall second
  double ops_per_sec = 0;     // schedule+cancel+execute ops / wall second
};

// Timer-shaped churn: a rotating set of "ack timers" that are armed and
// then cancelled before firing (the CSMA hot pattern), on top of periodic
// timers that always fire. Exercises allocation, cancellation, and heap
// discipline.
ChurnResult scheduler_churn() {
  constexpr int kRounds = 60;
  constexpr int kEventsPerRound = 20'000;
  Scheduler s;
  std::uint64_t ops = 0;

  const double t0 = now_seconds();
  for (int round = 0; round < kRounds; ++round) {
    std::vector<EventHandle> cancelled;
    cancelled.reserve(kEventsPerRound / 2);
    volatile int sink = 0;
    for (int i = 0; i < kEventsPerRound; ++i) {
      auto h = s.schedule_after(static_cast<Duration>(1 + (i % 977)),
                                [&sink] { sink = sink + 1; });
      ++ops;
      if (i % 2 == 0) cancelled.push_back(h);  // armed-then-cancelled half
    }
    for (auto& h : cancelled) {
      h.cancel();
      ++ops;
    }
    s.run_all();
    ops += kEventsPerRound / 2;  // executed half
  }
  const double wall = now_seconds() - t0;

  ChurnResult r;
  r.events_per_sec = static_cast<double>(s.executed_events()) / wall;
  r.ops_per_sec = static_cast<double>(ops) / wall;
  return r;
}

// Nested periodic timers: the Trickle/LPL wakeup pattern where every
// firing re-arms. Measures steady-state per-firing cost (should be
// allocation-free after the SBO-callback rewrite).
double periodic_timer_events_per_sec() {
  constexpr int kTimers = 400;
  Scheduler s;
  std::vector<std::unique_ptr<PeriodicTimer>> timers;
  volatile int sink = 0;
  timers.reserve(kTimers);
  for (int i = 0; i < kTimers; ++i) {
    timers.push_back(std::make_unique<PeriodicTimer>(
        s, static_cast<Duration>(50 + i % 97), [&sink] { sink = sink + 1; }));
    timers.back()->start(static_cast<Duration>(1 + i));
  }
  const double t0 = now_seconds();
  s.run_until(1'000'000);  // 1 s of virtual time
  const double wall = now_seconds() - t0;
  return static_cast<double>(s.executed_events()) / wall;
}

// ------------------------------------------------------------------- radio

struct NetResult {
  int nodes = 0;
  double events_per_sec = 0;
  double frames_per_sec = 0;  // medium transmissions / wall second
  double wall_sec = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;
};

NetResult csma_network(int n, std::uint64_t seed,
                       std::string* metrics_json = nullptr) {
  Scheduler sched;
  // Optional instrumented mode: installs the metrics registry so the run
  // line can embed a per-layer snapshot. The timed sweep below never uses
  // it — those numbers stay comparable with pre-observability baselines.
  std::unique_ptr<obs::Context> obsctx;
  if (metrics_json != nullptr) obsctx = std::make_unique<obs::Context>(sched);
  radio::Medium medium(sched, bench::default_radio(), seed);
  core::MeshNetwork mesh(sched, medium, Rng(seed),
                         bench::node_config(core::MacKind::kCsma));
  mesh.build_grid(static_cast<std::size_t>(n), 20.0);
  mesh.start();

  // Let the DODAG form off the clock we measure.
  sched.run_until(20_s);

  // Periodic sensor traffic: every node reports every 2 s, staggered.
  const Duration measured = 30_s;
  for (std::size_t i = 1; i < mesh.size(); ++i) {
    auto& node = mesh.node(i);
    const Duration phase = static_cast<Duration>(i) * 7'919 % 2'000'000;
    for (Duration t = phase; t < measured; t += 2_s) {
      sched.schedule_at(20_s + t,
                        [&node] { node.routing->send_up(to_buffer("r")); });
    }
  }

  const std::uint64_t ev0 = sched.executed_events();
  const std::uint64_t tx0 = medium.stats().transmissions;
  const double t0 = now_seconds();
  sched.run_until(20_s + measured);
  const double wall = now_seconds() - t0;

  NetResult r;
  r.nodes = n;
  r.wall_sec = wall;
  r.events_per_sec =
      static_cast<double>(sched.executed_events() - ev0) / wall;
  r.frames_per_sec =
      static_cast<double>(medium.stats().transmissions - tx0) / wall;
  r.transmissions = medium.stats().transmissions;
  r.deliveries = medium.stats().deliveries;
  r.collisions = medium.stats().collisions;
  if (metrics_json != nullptr) *metrics_json = bench::metrics_snapshot_json(sched);
  return r;
}

// ------------------------------------------------------------ measurement

constexpr int kNetSizes[] = {50, 200, 500};
constexpr std::size_t kWorkloads = 5;  // churn, periodic, net50/200/500

/// Slot for one (rep, workload) task; only the fields of that workload
/// are populated.
struct TaskResult {
  ChurnResult churn;
  double periodic = 0;
  NetResult net;
};

struct Best {
  ChurnResult churn;
  double periodic = 0;
  NetResult nets[3];
};

/// Runs `reps` repetitions of every workload on the engine (task index =
/// rep * kWorkloads + workload) and aggregates best-of across reps from
/// the slots. Fails (returns false) if any simulation counter differs
/// across repetitions — repetitions are identical worlds, so divergence
/// means nondeterminism leaked in.
bool measure(runner::Engine& eng, std::uint64_t reps, Best& best) {
  const std::size_t tasks = static_cast<std::size_t>(reps) * kWorkloads;
  std::vector<TaskResult> slots(tasks);
  eng.run(tasks, [&](std::size_t t) {
    const std::size_t w = t % kWorkloads;
    switch (w) {
      case 0: slots[t].churn = scheduler_churn(); break;
      case 1: slots[t].periodic = periodic_timer_events_per_sec(); break;
      default: slots[t].net = csma_network(kNetSizes[w - 2], 42); break;
    }
  });

  bool deterministic = true;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    const std::size_t base = static_cast<std::size_t>(rep) * kWorkloads;
    const TaskResult& c = slots[base + 0];
    if (c.churn.events_per_sec > best.churn.events_per_sec) {
      best.churn = c.churn;
    }
    best.periodic = std::max(best.periodic, slots[base + 1].periodic);
    for (int k = 0; k < 3; ++k) {
      const NetResult& r = slots[base + 2 + static_cast<std::size_t>(k)].net;
      const NetResult& r0 = slots[2 + static_cast<std::size_t>(k)].net;
      if (r.transmissions != r0.transmissions ||
          r.deliveries != r0.deliveries || r.collisions != r0.collisions) {
        std::printf(
            "FAIL: rep %llu of net%d diverged from rep 0 "
            "(%llu/%llu/%llu tx/rx/coll vs %llu/%llu/%llu)\n",
            static_cast<unsigned long long>(rep), r.nodes,
            static_cast<unsigned long long>(r.transmissions),
            static_cast<unsigned long long>(r.deliveries),
            static_cast<unsigned long long>(r.collisions),
            static_cast<unsigned long long>(r0.transmissions),
            static_cast<unsigned long long>(r0.deliveries),
            static_cast<unsigned long long>(r0.collisions));
        deterministic = false;
      }
      if (r.events_per_sec > best.nets[k].events_per_sec) best.nets[k] = r;
    }
  }
  return deterministic;
}

// ---------------------------------------------------------------- compare

/// Perf-regression gate: every events/sec metric of `run_line` must reach
/// `min_ratio` × the same metric in `base_line`. Counters are reported
/// informationally (they may legitimately drift across compiler/libm
/// versions; within-run determinism is gated by measure() instead).
bool compare_against_baseline(const std::string& base_line,
                              const std::string& run_line, double min_ratio) {
  static const char* kGated[] = {
      "churn_events_per_sec",  "churn_ops_per_sec",
      "periodic_events_per_sec", "net50_events_per_sec",
      "net200_events_per_sec", "net500_events_per_sec",
  };
  bool ok = true;
  std::printf("\nperf-regression gate (min ratio %.2f):\n", min_ratio);
  for (const char* key : kGated) {
    double base = 0;
    double cur = 0;
    if (!iiot::bench::bench_field(base_line, key, base) || base <= 0) {
      std::printf("  %-26s baseline missing — skipped\n", key);
      continue;
    }
    if (!iiot::bench::bench_field(run_line, key, cur)) {
      std::printf("  %-26s MISSING in current run\n", key);
      ok = false;
      continue;
    }
    const double ratio = cur / base;
    std::printf("  %-26s %12.0f vs %12.0f baseline  (x%.2f)%s\n", key, cur,
                base, ratio, ratio < min_ratio ? "  REGRESSION" : "");
    if (ratio < min_ratio) ok = false;
  }
  for (const char* key : {"net200_transmissions", "net200_collisions"}) {
    double base = 0;
    double cur = 0;
    if (iiot::bench::bench_field(base_line, key, base) &&
        iiot::bench::bench_field(run_line, key, cur) && base != cur) {
      std::printf("  note: %s drifted from baseline (%.0f vs %.0f) — "
                  "toolchain change?\n",
                  key, cur, base);
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "current";
  std::string out_path = "BENCH_core.json";
  std::string compare_path;
  std::uint64_t reps = 1;
  std::uint64_t jobs = 1;
  double min_ratio = 0.8;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (iiot::bench::flag_u64(arg, "--reps", reps) ||
        iiot::bench::flag_u64(arg, "--jobs", jobs) ||
        iiot::bench::flag_str(arg, "--compare", compare_path) ||
        iiot::bench::flag_double(arg, "--min-ratio", min_ratio)) {
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
    if (positional == 0) {
      label = arg;
    } else {
      out_path = arg;
    }
    ++positional;
  }
  if (reps == 0) reps = 1;

  iiot::bench::print_header(
      "PERF: discrete-event core wall-clock throughput",
      "scheduler + medium must sustain production-scale event rates");

  iiot::runner::Engine eng(static_cast<unsigned>(jobs));
  Best best;
  const bool deterministic = measure(eng, reps, best);

  std::printf("best of %llu rep(s), jobs=%u\n",
              static_cast<unsigned long long>(reps), eng.jobs());
  std::printf("scheduler churn:     %12.0f events/s  %12.0f ops/s\n",
              best.churn.events_per_sec, best.churn.ops_per_sec);
  std::printf("periodic timers:     %12.0f events/s\n", best.periodic);
  for (const NetResult& r : best.nets) {
    std::printf(
        "csma %4d nodes:     %12.0f events/s  %12.0f frames/s  "
        "(%.2fs wall, %llu tx, %llu rx, %llu coll)\n",
        r.nodes, r.events_per_sec, r.frames_per_sec, r.wall_sec,
        static_cast<unsigned long long>(r.transmissions),
        static_cast<unsigned long long>(r.deliveries),
        static_cast<unsigned long long>(r.collisions));
  }

  std::ostringstream run;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"label\": \"%s\", \"churn_events_per_sec\": %.0f, "
                "\"churn_ops_per_sec\": %.0f, "
                "\"periodic_events_per_sec\": %.0f",
                label.c_str(), best.churn.events_per_sec,
                best.churn.ops_per_sec, best.periodic);
  run << buf;
  for (const NetResult& r : best.nets) {
    std::snprintf(buf, sizeof buf,
                  ", \"net%d_events_per_sec\": %.0f, "
                  "\"net%d_frames_per_sec\": %.0f, "
                  "\"net%d_transmissions\": %llu, "
                  "\"net%d_deliveries\": %llu, "
                  "\"net%d_collisions\": %llu",
                  r.nodes, r.events_per_sec, r.nodes, r.frames_per_sec,
                  r.nodes, static_cast<unsigned long long>(r.transmissions),
                  r.nodes, static_cast<unsigned long long>(r.deliveries),
                  r.nodes, static_cast<unsigned long long>(r.collisions));
    run << buf;
  }
  std::snprintf(buf, sizeof buf, ", \"reps\": %llu, \"jobs\": %u",
                static_cast<unsigned long long>(reps), eng.jobs());
  run << buf;
  // Per-layer metrics snapshot from an instrumented (untimed) replay of
  // the 50-node workload: says which layer a perf regression lives in.
  std::string metrics;
  (void)csma_network(50, 42, &metrics);
  run << ", \"metrics\": " << metrics;
  run << "}";
  iiot::bench::append_bench_run(out_path, "bench_perf_core", run.str());
  std::printf("\nwrote %s (label \"%s\")\n", out_path.c_str(), label.c_str());

  bool gate_ok = true;
  if (!compare_path.empty()) {
    const std::string base_line =
        iiot::bench::last_bench_run_line(compare_path);
    if (base_line.empty()) {
      std::printf("FAIL: no baseline run line in %s\n", compare_path.c_str());
      gate_ok = false;
    } else {
      gate_ok = compare_against_baseline(base_line, run.str(), min_ratio);
      std::printf("perf gate: %s\n", gate_ok ? "OK" : "FAILED");
    }
  }
  if (!deterministic) {
    std::printf("determinism gate: FAILED (counters diverged across reps)\n");
  }
  return deterministic && gate_ok ? 0 : 1;
}
