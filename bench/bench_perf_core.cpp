// Core-substrate performance benchmark (scheduler + radio medium).
//
// Unlike bench_e1..e12, which regenerate paper experiments on the virtual
// clock, this harness measures *wall-clock* throughput of the simulation
// substrate itself: every experiment's runtime is bounded by how many
// discrete events per second the scheduler can retire and how fast the
// medium can resolve transmissions. Two workloads:
//
//   1. Raw scheduler churn — schedule/cancel/fire patterns shaped like MAC
//      timer traffic (periodic timers, armed-then-cancelled ack timeouts).
//   2. A CSMA mesh of 50/200/500 nodes running RPL + periodic sensor
//      traffic for a fixed span of virtual time.
//
// Results are appended to BENCH_core.json (one JSON object per run, under
// "runs") so the perf trajectory is tracked across PRs:
//
//   ./bench_perf_core [label] [output.json]
//
// Pass a label like "seed" or "optimized"; default "current".
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/network.hpp"
#include "radio/medium.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace iiot;
using namespace iiot::sim;  // NOLINT

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------- scheduler

struct ChurnResult {
  double events_per_sec = 0;  // executed events / wall second
  double ops_per_sec = 0;     // schedule+cancel+execute ops / wall second
};

// Timer-shaped churn: a rotating set of "ack timers" that are armed and
// then cancelled before firing (the CSMA hot pattern), on top of periodic
// timers that always fire. Exercises allocation, cancellation, and heap
// discipline.
ChurnResult scheduler_churn() {
  constexpr int kRounds = 60;
  constexpr int kEventsPerRound = 20'000;
  Scheduler s;
  std::uint64_t ops = 0;

  const double t0 = now_seconds();
  for (int round = 0; round < kRounds; ++round) {
    std::vector<EventHandle> cancelled;
    cancelled.reserve(kEventsPerRound / 2);
    volatile int sink = 0;
    for (int i = 0; i < kEventsPerRound; ++i) {
      auto h = s.schedule_after(static_cast<Duration>(1 + (i % 977)),
                                [&sink] { sink = sink + 1; });
      ++ops;
      if (i % 2 == 0) cancelled.push_back(h);  // armed-then-cancelled half
    }
    for (auto& h : cancelled) {
      h.cancel();
      ++ops;
    }
    s.run_all();
    ops += kEventsPerRound / 2;  // executed half
  }
  const double wall = now_seconds() - t0;

  ChurnResult r;
  r.events_per_sec = static_cast<double>(s.executed_events()) / wall;
  r.ops_per_sec = static_cast<double>(ops) / wall;
  return r;
}

// Nested periodic timers: the Trickle/LPL wakeup pattern where every
// firing re-arms. Measures steady-state per-firing cost (should be
// allocation-free after the SBO-callback rewrite).
double periodic_timer_events_per_sec() {
  constexpr int kTimers = 400;
  Scheduler s;
  std::vector<std::unique_ptr<PeriodicTimer>> timers;
  volatile int sink = 0;
  timers.reserve(kTimers);
  for (int i = 0; i < kTimers; ++i) {
    timers.push_back(std::make_unique<PeriodicTimer>(
        s, static_cast<Duration>(50 + i % 97), [&sink] { sink = sink + 1; }));
    timers.back()->start(static_cast<Duration>(1 + i));
  }
  const double t0 = now_seconds();
  s.run_until(1'000'000);  // 1 s of virtual time
  const double wall = now_seconds() - t0;
  return static_cast<double>(s.executed_events()) / wall;
}

// ------------------------------------------------------------------- radio

struct NetResult {
  int nodes = 0;
  double events_per_sec = 0;
  double frames_per_sec = 0;  // medium transmissions / wall second
  double wall_sec = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;
};

NetResult csma_network(int n, std::uint64_t seed,
                       std::string* metrics_json = nullptr) {
  Scheduler sched;
  // Optional instrumented mode: installs the metrics registry so the run
  // line can embed a per-layer snapshot. The timed sweep below never uses
  // it — those numbers stay comparable with pre-observability baselines.
  std::unique_ptr<obs::Context> obsctx;
  if (metrics_json != nullptr) obsctx = std::make_unique<obs::Context>(sched);
  radio::Medium medium(sched, bench::default_radio(), seed);
  core::MeshNetwork mesh(sched, medium, Rng(seed),
                         bench::node_config(core::MacKind::kCsma));
  mesh.build_grid(static_cast<std::size_t>(n), 20.0);
  mesh.start();

  // Let the DODAG form off the clock we measure.
  sched.run_until(20_s);

  // Periodic sensor traffic: every node reports every 2 s, staggered.
  const Duration measured = 30_s;
  for (std::size_t i = 1; i < mesh.size(); ++i) {
    auto& node = mesh.node(i);
    const Duration phase = static_cast<Duration>(i) * 7'919 % 2'000'000;
    for (Duration t = phase; t < measured; t += 2_s) {
      sched.schedule_at(20_s + t,
                        [&node] { node.routing->send_up(to_buffer("r")); });
    }
  }

  const std::uint64_t ev0 = sched.executed_events();
  const std::uint64_t tx0 = medium.stats().transmissions;
  const double t0 = now_seconds();
  sched.run_until(20_s + measured);
  const double wall = now_seconds() - t0;

  NetResult r;
  r.nodes = n;
  r.wall_sec = wall;
  r.events_per_sec =
      static_cast<double>(sched.executed_events() - ev0) / wall;
  r.frames_per_sec =
      static_cast<double>(medium.stats().transmissions - tx0) / wall;
  r.transmissions = medium.stats().transmissions;
  r.deliveries = medium.stats().deliveries;
  r.collisions = medium.stats().collisions;
  if (metrics_json != nullptr) *metrics_json = bench::metrics_snapshot_json(sched);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string label = argc > 1 ? argv[1] : "current";
  const std::string out_path = argc > 2 ? argv[2] : "BENCH_core.json";

  iiot::bench::print_header(
      "PERF: discrete-event core wall-clock throughput",
      "scheduler + medium must sustain production-scale event rates");

  ChurnResult churn = scheduler_churn();
  std::printf("scheduler churn:     %12.0f events/s  %12.0f ops/s\n",
              churn.events_per_sec, churn.ops_per_sec);
  double periodic = periodic_timer_events_per_sec();
  std::printf("periodic timers:     %12.0f events/s\n", periodic);

  std::vector<NetResult> nets;
  for (int n : {50, 200, 500}) {
    NetResult r = csma_network(n, 42);
    nets.push_back(r);
    std::printf(
        "csma %4d nodes:     %12.0f events/s  %12.0f frames/s  "
        "(%.2fs wall, %llu tx, %llu rx, %llu coll)\n",
        n, r.events_per_sec, r.frames_per_sec, r.wall_sec,
        static_cast<unsigned long long>(r.transmissions),
        static_cast<unsigned long long>(r.deliveries),
        static_cast<unsigned long long>(r.collisions));
  }

  std::ostringstream run;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"label\": \"%s\", \"churn_events_per_sec\": %.0f, "
                "\"churn_ops_per_sec\": %.0f, "
                "\"periodic_events_per_sec\": %.0f",
                label.c_str(), churn.events_per_sec, churn.ops_per_sec,
                periodic);
  run << buf;
  for (const NetResult& r : nets) {
    std::snprintf(buf, sizeof buf,
                  ", \"net%d_events_per_sec\": %.0f, "
                  "\"net%d_frames_per_sec\": %.0f, "
                  "\"net%d_transmissions\": %llu, "
                  "\"net%d_deliveries\": %llu, "
                  "\"net%d_collisions\": %llu",
                  r.nodes, r.events_per_sec, r.nodes, r.frames_per_sec,
                  r.nodes, static_cast<unsigned long long>(r.transmissions),
                  r.nodes, static_cast<unsigned long long>(r.deliveries),
                  r.nodes, static_cast<unsigned long long>(r.collisions));
    run << buf;
  }
  // Per-layer metrics snapshot from an instrumented (untimed) replay of
  // the 50-node workload: says which layer a perf regression lives in.
  std::string metrics;
  (void)csma_network(50, 42, &metrics);
  run << ", \"metrics\": " << metrics;
  run << "}";
  bench::append_bench_run(out_path, "bench_perf_core", run.str());
  std::printf("\nwrote %s (label \"%s\")\n", out_path.c_str(), label.c_str());
  return 0;
}
