// E3 — In-network aggregation relieves the border-router neighborhood
// (paper §IV-B, refs [30], [31]).
//
// Claim: "if there are few border routers ..., the devices in proximity
// of the routers may exhibit a heavy load, which drains their energy";
// "by utilizing in-network aggregation ... it is possible to alleviate
// the effects of the heavy load in the vicinity of border routers."
//
// Setup: grids of growing size, every node reports once per epoch.
// Raw collection relays one message per descendant through the root's
// neighbors; tree aggregation merges each subtree into one constant-size
// partial per epoch. We report the data-plane bytes and energy of the
// root-adjacent ring, and the ratio raw/aggregated.
#include <cstdio>
#include <memory>
#include <vector>

#include "agg/collection.hpp"
#include "bench_util.hpp"

namespace {

using namespace iiot;
using namespace iiot::sim;  // NOLINT

struct Outcome {
  double ring_bytes = 0;    // tx bytes of depth-1 nodes (mean)
  double ring_energy_mj = 0;
  double network_energy_mj = 0;
  double completeness = 0;  // fraction of expected readings represented
};

enum class Mode { kIdle, kRaw, kAgg };

Outcome run(std::size_t n, Mode mode, std::uint64_t seed) {
  Scheduler sched;
  radio::Medium medium(sched, bench::default_radio(), seed);
  auto node_cfg = bench::node_config(core::MacKind::kCsma);
  node_cfg.rpl.downward_routes = false;  // collection-only: no DAO noise
  core::MeshNetwork mesh(sched, medium, Rng(seed), node_cfg);
  mesh.build_grid(n, 22.0);
  mesh.start();
  sched.run_until(30_s);

  agg::CollectionConfig ccfg;
  ccfg.epoch = 30'000'000;
  ccfg.flush_slack = 400'000;

  std::vector<std::unique_ptr<agg::RawCollection>> raw;
  std::vector<std::unique_ptr<agg::TreeAggregation>> agg_svcs;
  std::size_t raw_received = 0;
  std::uint32_t first_epoch = 0;
  bool have_first = false;
  std::size_t agg_counted = 0;
  std::size_t epochs_reported = 0;
  Rng rng(seed ^ 0xE3);

  if (mode == Mode::kRaw) {
    for (std::size_t i = 0; i < mesh.size(); ++i) {
      raw.push_back(std::make_unique<agg::RawCollection>(
          *mesh.node(i).routing, sched, rng.fork(i), ccfg));
    }
    raw[0]->start_sink([&](std::uint32_t e, NodeId, double) {
      if (!have_first) {
        first_epoch = e;
        have_first = true;
      }
      if (e < first_epoch + 10) ++raw_received;
    });
    for (std::size_t i = 1; i < mesh.size(); ++i) {
      raw[i]->start([] { return 21.0; });
    }
  } else if (mode == Mode::kAgg) {
    for (std::size_t i = 0; i < mesh.size(); ++i) {
      agg_svcs.push_back(std::make_unique<agg::TreeAggregation>(
          *mesh.node(i).routing, sched, rng.fork(i), ccfg));
    }
    agg_svcs[0]->start_sink(
        [&](std::uint32_t, const agg::PartialAggregate& p) {
          agg_counted += p.count;
          ++epochs_reported;
        });
    for (std::size_t i = 1; i < mesh.size(); ++i) {
      agg_svcs[i]->start([] { return 21.0; });
    }
  }

  std::vector<std::uint64_t> bytes_before(mesh.size());
  std::vector<double> energy_before(mesh.size());
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    bytes_before[i] = mesh.node(i).radio.bytes_sent();
    mesh.node(i).meter.settle(sched.now());
    energy_before[i] = mesh.node(i).meter.radio_mj(energy::RadioState::kTx);
  }

  constexpr int kEpochs = 10;
  // One extra epoch so the sink's grace-delayed reports cover kEpochs.
  sched.run_until(30_s + (kEpochs + 2) * 30_s + 5_s);

  Outcome out;
  int ring = 0;
  for (std::size_t i = 1; i < mesh.size(); ++i) {
    mesh.node(i).meter.settle(sched.now());
    // TX-state energy only: under an always-on MAC, idle listening
    // dwarfs everything, so transmit energy is the load signal.
    const double e = mesh.node(i).meter.radio_mj(energy::RadioState::kTx) -
                     energy_before[i];
    const auto b = static_cast<double>(mesh.node(i).radio.bytes_sent() -
                                       bytes_before[i]);
    out.network_energy_mj += e;
    if (mesh.depth_estimate(i) == 1) {
      out.ring_bytes += b;
      out.ring_energy_mj += e;
      ++ring;
    }
  }
  if (ring > 0) {
    out.ring_bytes /= ring;
    out.ring_energy_mj /= ring;
  }
  const double expected =
      static_cast<double>((mesh.size() - 1) * kEpochs);
  if (mode == Mode::kRaw) {
    out.completeness = static_cast<double>(raw_received) / expected;
  } else if (mode == Mode::kAgg) {
    out.completeness = static_cast<double>(agg_counted) / expected;
  }
  return out;
}

}  // namespace

int main() {
  iiot::bench::print_header(
      "E3: border-router-ring load, raw collection vs in-network aggregation",
      "nodes near the border router carry the whole network's traffic and "
      "drain first; decomposable in-network aggregation makes their load "
      "independent of network size");

  std::printf("%6s %6s | %14s %14s | %14s %14s | %7s\n", "nodes", "mode",
              "ring tx[B]", "ring E[mJ]", "net E[mJ]", "coverage",
              "ratio");
  for (std::size_t n : {25, 64, 144, 256}) {
    const Outcome idle = run(n, Mode::kIdle, 42);
    const Outcome raw = run(n, Mode::kRaw, 42);
    const Outcome agg = run(n, Mode::kAgg, 42);
    const double raw_ring = raw.ring_bytes - idle.ring_bytes;
    const double agg_ring = agg.ring_bytes - idle.ring_bytes;
    std::printf("%6zu %6s | %14.0f %14.2f | %14.1f %13.0f%% | %7s\n", n,
                "raw", raw_ring, raw.ring_energy_mj - idle.ring_energy_mj,
                raw.network_energy_mj - idle.network_energy_mj,
                raw.completeness * 100.0, "");
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1fx",
                  agg_ring > 0 ? raw_ring / agg_ring : 0.0);
    std::printf("%6zu %6s | %14.0f %14.2f | %14.1f %13.0f%% | %7s\n", n,
                "agg", agg_ring, agg.ring_energy_mj - idle.ring_energy_mj,
                agg.network_energy_mj - idle.network_energy_mj,
                agg.completeness * 100.0, ratio);
  }
  std::printf(
      "\nShape check: raw ring bytes grow ~linearly with network size;\n"
      "aggregated ring bytes stay ~flat, so the raw/agg ratio grows with\n"
      "the node count (the bigger the network, the more aggregation\n"
      "protects the border-router neighborhood).\n");
  return 0;
}
