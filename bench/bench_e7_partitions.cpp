// E7 — Availability under network partitions: CAP in practice
// (paper §V-C, refs [43], [44]).
//
// Claim: systems that must stay "always on" under partitions need
// nonblocking decentralized algorithms with weak consistency (eventual
// consistency + CRDT-style decentralized conflict resolution); a
// strongly consistent primary/quorum design necessarily refuses writes
// on partition minorities (and everywhere, if the primary is cut off).
//
// Workload: 5 replicas, clients write at every replica once a second;
// partition schedules of growing severity. Metrics: write availability,
// post-heal convergence time (AP), and stale-read window (CP has none).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "replication/backend_net.hpp"
#include "replication/kv.hpp"

namespace {

using namespace iiot;
using namespace iiot::sim;  // NOLINT
using replication::ApReplica;
using replication::BackendNet;
using replication::CpReplica;
using replication::ReplicaId;

struct Schedule {
  const char* name;
  std::vector<std::vector<ReplicaId>> groups;  // empty = no partition
  double partition_fraction;                   // of the run spent split
};

struct Outcome {
  double availability = 0;     // accepted writes / attempted writes
  double minority_avail = 0;   // availability at replicas 4..5 only
  double convergence_s = -1;   // time after heal until replicas agree
};

constexpr int kReplicas = 5;
constexpr Duration kRun = 300_s;

Outcome run_ap(const Schedule& sched_spec, std::uint64_t seed) {
  Scheduler sched;
  BackendNet net(sched, Rng(seed));
  std::vector<ReplicaId> ids{1, 2, 3, 4, 5};
  std::vector<std::unique_ptr<ApReplica>> reps;
  Rng rng(seed);
  for (ReplicaId id : ids) {
    reps.push_back(std::make_unique<ApReplica>(id, ids, net, sched,
                                               rng.fork(id)));
    reps.back()->start();
  }
  int attempted = 0, accepted = 0, minority_att = 0, minority_ok = 0;
  for (Duration t = 1_s; t < kRun; t += 1_s) {
    sched.schedule_at(t, [&, t] {
      for (int r = 0; r < kReplicas; ++r) {
        ++attempted;
        const bool minority = r >= 3;
        if (minority) ++minority_att;
        const bool ok = reps[static_cast<std::size_t>(r)]->put(
            "key-" + std::to_string(t % 20),
            "v" + std::to_string(t) + "-" + std::to_string(r));
        if (ok) {
          ++accepted;
          if (minority) ++minority_ok;
        }
      }
    });
  }
  const auto part_start = static_cast<Duration>(
      (1.0 - sched_spec.partition_fraction) / 2.0 * kRun);
  const Duration part_end =
      part_start + static_cast<Duration>(sched_spec.partition_fraction * kRun);
  if (!sched_spec.groups.empty()) {
    sched.schedule_at(part_start,
                      [&] { net.set_partition(sched_spec.groups); });
    sched.schedule_at(part_end, [&] { net.heal(); });
  }
  sched.run_until(kRun);
  // Convergence probe after heal.
  Outcome out;
  out.availability = static_cast<double>(accepted) / attempted;
  out.minority_avail = minority_att > 0
                           ? static_cast<double>(minority_ok) / minority_att
                           : 1.0;
  for (Duration t = 0; t < 120_s; t += 500'000) {
    sched.run_until(kRun + t);
    bool all = true;
    for (int i = 1; i < kReplicas; ++i) {
      if (!reps[0]->same_state_as(*reps[static_cast<std::size_t>(i)])) {
        all = false;
        break;
      }
    }
    if (all) {
      // Writes continue until kRun, so measure convergence from the
      // moment the workload (and any partition) has ended.
      out.convergence_s = to_seconds(sched.now() - kRun);
      break;
    }
  }
  return out;
}

Outcome run_cp(const Schedule& sched_spec, std::uint64_t seed) {
  Scheduler sched;
  BackendNet net(sched, Rng(seed));
  std::vector<ReplicaId> ids{1, 2, 3, 4, 5};
  std::vector<std::unique_ptr<CpReplica>> reps;
  Rng rng(seed);
  for (ReplicaId id : ids) {
    reps.push_back(std::make_unique<CpReplica>(id, /*primary=*/1, ids, net,
                                               sched, rng.fork(id)));
    reps.back()->start();
  }
  auto attempted = std::make_shared<int>(0);
  auto accepted = std::make_shared<int>(0);
  auto minority_att = std::make_shared<int>(0);
  auto minority_ok = std::make_shared<int>(0);
  for (Duration t = 1_s; t < kRun; t += 1_s) {
    sched.schedule_at(t, [&, t] {
      for (int r = 0; r < kReplicas; ++r) {
        ++*attempted;
        const bool minority = r >= 3;
        if (minority) ++*minority_att;
        reps[static_cast<std::size_t>(r)]->put(
            "key-" + std::to_string(t % 20),
            "v" + std::to_string(t) + "-" + std::to_string(r),
            [accepted, minority_ok, minority](bool ok) {
              if (ok) {
                ++*accepted;
                if (minority) ++*minority_ok;
              }
            });
      }
    });
  }
  const auto part_start = static_cast<Duration>(
      (1.0 - sched_spec.partition_fraction) / 2.0 * kRun);
  const Duration part_end =
      part_start + static_cast<Duration>(sched_spec.partition_fraction * kRun);
  if (!sched_spec.groups.empty()) {
    sched.schedule_at(part_start,
                      [&] { net.set_partition(sched_spec.groups); });
    sched.schedule_at(part_end, [&] { net.heal(); });
  }
  sched.run_until(kRun + 30_s);
  Outcome out;
  out.availability = static_cast<double>(*accepted) / *attempted;
  out.minority_avail =
      *minority_att > 0 ? static_cast<double>(*minority_ok) / *minority_att
                        : 1.0;
  out.convergence_s = 0;  // CP replicas never diverge
  return out;
}

}  // namespace

int main() {
  iiot::bench::print_header(
      "E7: write availability under partitions — AP (CRDT) vs CP (quorum)",
      "AP stays writable everywhere and converges after heal; CP refuses "
      "minority writes, and refuses ALL writes when the primary loses its "
      "quorum — always-on IIoT systems need the AP design (with safety "
      "handled explicitly)");

  Schedule schedules[] = {
      {"none", {}, 0.0},
      {"minority-cut {4,5}", {{1, 2, 3}, {4, 5}}, 0.4},
      {"primary-cut {1,2}", {{1, 2}, {3, 4, 5}}, 0.4},
      {"long minority-cut", {{1, 2, 3}, {4, 5}}, 0.8},
  };
  std::printf("%-20s %-6s %12s %14s %14s\n", "partition", "store",
              "avail", "minority-avail", "converge[s]");
  for (const auto& s : schedules) {
    const Outcome ap = run_ap(s, 3);
    const Outcome cp = run_cp(s, 3);
    std::printf("%-20s %-6s %11.1f%% %13.1f%% %14.1f\n", s.name, "AP",
                ap.availability * 100.0, ap.minority_avail * 100.0,
                ap.convergence_s);
    std::printf("%-20s %-6s %11.1f%% %13.1f%% %14s\n", s.name, "CP",
                cp.availability * 100.0, cp.minority_avail * 100.0,
                "0.0 (never diverges)");
  }
  std::printf(
      "\nShape check: AP availability stays 100%% in every schedule and\n"
      "convergence after heal takes a few gossip rounds. CP availability\n"
      "drops by (minority share x partition share) for minority cuts and\n"
      "collapses toward ~20%% when the primary is cut off (only the time\n"
      "outside the partition accepts writes).\n");
  return 0;
}
