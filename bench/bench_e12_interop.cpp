// E12 — Middleware-based integration of heterogeneous and legacy
// devices (paper §III).
//
// Claim: standardization alone does not integrate the installed base;
// middleware (gateway + adapters + CoAP northbound) can make Modbus-class
// fieldbus devices, BLE-GATT-class devices, proprietary-TLV devices and
// native CoAP mesh nodes "appear ... as a single coherent system".
//
// Output: (a) a uniform-API check — the same CoAP GET/PUT works against
// every device class; (b) translation overhead per protocol — legacy PDU
// bytes exchanged vs unified payload bytes; (c) gateway throughput:
// translations per second of simulated time under a polling load.
#include <cstdio>
#include <memory>
#include <vector>

#include "backend/topic_bus.hpp"
#include "bench_util.hpp"
#include "coap/endpoint.hpp"
#include "interop/gateway.hpp"
#include "interop/gatt.hpp"
#include "interop/modbus.hpp"
#include "interop/vendor_tlv.hpp"

namespace {

using namespace iiot;
using namespace iiot::interop;
using namespace iiot::sim;  // NOLINT

ResourceDescriptor temp_desc(std::uint8_t inst) {
  ResourceDescriptor d;
  d.path = {kObjTemperature, inst, kResSensorValue};
  d.name = "temperature";
  d.unit = "Cel";
  return d;
}

ResourceDescriptor act_desc(std::uint8_t inst) {
  ResourceDescriptor d;
  d.path = {kObjActuation, inst, kResDimmer};
  d.name = "setpoint";
  d.unit = "%";
  d.writable = true;
  return d;
}

}  // namespace

int main() {
  iiot::bench::print_header(
      "E12: one gateway, four device technologies, one API",
      "middleware adapters give heterogeneous + legacy devices a single "
      "coherent resource API; the price is a per-protocol translation "
      "overhead the gateway absorbs");

  Scheduler sched;
  backend::TopicBus bus;
  Rng rng(12);

  // Legacy fleet.
  ModbusRtuDevice plc(1);
  plc.set_register(100, 2137);
  plc.set_register(200, 0);
  ModbusAdapter modbus(plc, {{temp_desc(0), 100, 100.0},
                             {act_desc(0), 200, 100.0}});
  GattDevice ble;
  ble.set_float(0x21, 22.5f);
  ble.set_float(0x30, 0.f);
  GattAdapter gatt(ble, {{temp_desc(1), 0x21}, {act_desc(1), 0x30}});
  VendorTlvDevice vendor;
  vendor.set_point(3, 23.25);
  vendor.set_point(5, 0.0);
  VendorTlvAdapter tlv(vendor, {{temp_desc(2), 3}, {act_desc(2), 5}});

  GatewayConfig gcfg;
  gcfg.poll_interval = 1'000'000;  // 1 s polling for the throughput test
  Gateway gateway(sched, bus, gcfg);
  gateway.add_device("plc", modbus);
  gateway.add_device("ble", gatt);
  gateway.add_device("legacy", tlv);

  // Northbound CoAP endpoint pair (client <-> gateway).
  std::unique_ptr<coap::Endpoint> client, server;
  auto fwd = [&](NodeId to) {
    return [&, to](NodeId, Buffer bytes) {
      sched.schedule_after(1'000, [&, to, bytes = std::move(bytes)] {
        (to == 1 ? client : server)->on_datagram(to == 1 ? 2 : 1, bytes);
      });
      return true;
    };
  };
  client = std::make_unique<coap::Endpoint>(1, sched, rng.fork(1), fwd(2));
  server = std::make_unique<coap::Endpoint>(2, sched, rng.fork(2), fwd(1));
  gateway.expose_coap(*server);
  gateway.start();

  // (a) Uniform API: identical GET/PUT against each protocol.
  std::printf("\n-- uniform API: CoAP GET + PUT against every device --\n");
  std::printf("%-10s %-12s %14s %10s\n", "device", "protocol",
              "GET 3303/x/5700", "PUT 3306");
  struct Probe {
    const char* device;
    const char* proto;
    std::string get_path;
    std::string put_path;
  };
  const Probe probes[] = {
      {"plc", "modbus-rtu", "dev/plc/3303/0/5700", "dev/plc/3306/0/5851"},
      {"ble", "ble-gatt", "dev/ble/3303/1/5700", "dev/ble/3306/1/5851"},
      {"legacy", "vendor-tlv", "dev/legacy/3303/2/5700",
       "dev/legacy/3306/2/5851"},
  };
  for (const auto& p : probes) {
    std::string got = "-";
    bool put_ok = false;
    client->get(2, p.get_path, [&](Result<coap::Response> r) {
      if (r.ok() && coap::is_success(r.value().code)) {
        got = to_string(r.value().payload);
      }
    });
    client->put(2, p.put_path, to_buffer("55.5"),
                [&](Result<coap::Response> r) {
                  put_ok = r.ok() && r.value().code == coap::Code::kChanged;
                });
    sched.run_until(sched.now() + 2_s);
    std::printf("%-10s %-12s %14s %10s\n", p.device, p.proto,
                got.substr(0, 7).c_str(), put_ok ? "2.04 ok" : "FAILED");
  }

  // (b+c) Poll for 10 minutes: translation overhead + throughput.
  const Time t0 = sched.now();
  sched.run_until(t0 + 600_s);
  std::printf("\n-- translation overhead per protocol (10 min of 1 Hz "
              "polling) --\n");
  std::printf("%-12s %10s %12s %12s %10s\n", "protocol", "requests",
              "pdu out[B]", "pdu in[B]", "errors");
  const Adapter* adapters[] = {&modbus, &gatt, &tlv};
  for (const Adapter* a : adapters) {
    std::printf("%-12s %10llu %12llu %12llu %10llu\n", a->protocol(),
                static_cast<unsigned long long>(a->stats().requests),
                static_cast<unsigned long long>(a->stats().pdu_bytes_out),
                static_cast<unsigned long long>(a->stats().pdu_bytes_in),
                static_cast<unsigned long long>(a->stats().protocol_errors));
  }
  std::printf("\ngateway: %llu polls, %llu poll errors, %zu devices, "
              "%zu resources\n",
              static_cast<unsigned long long>(gateway.stats().polls),
              static_cast<unsigned long long>(gateway.stats().poll_errors),
              gateway.device_count(), gateway.resource_count());
  std::printf("bus: %llu measurements published\n",
              static_cast<unsigned long long>(bus.published()));
  std::printf(
      "\nShape check: all three legacy protocols answer the same CoAP\n"
      "verbs with the same resource naming (single coherent system);\n"
      "per-protocol PDU overheads differ (Modbus 8 B fixed frames vs\n"
      "GATT 3-7 B vs TLV 15-20 B) but the unified API hides them; the\n"
      "gateway sustains the polling load with zero protocol errors.\n");
  return 0;
}
