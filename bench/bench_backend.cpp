// Backend-tier performance benchmark (DESIGN.md §4f).
//
// bench_perf_core measures the simulation substrate; this harness
// measures the *backend* hot paths the fast-path rewrite targets:
//
//   1. ts_append      — 1M-point ingest into the interned/chunked store.
//   2. ts_query       — narrow window queries against a 1M-point series
//                       (binary-searched chunks vs the seed's full scan).
//   3. ts_downsample  — full-range bucket averages over 1M points
//                       (chunk rollups vs the seed's copy-then-rescan).
//   4. bus_fanout     — publishes into 10k subscriptions (trie + exact
//                       index vs the seed's linear topic_matches scan).
//
// The seed implementations (pre-interning store, pre-trie bus) are
// embedded as naive references and run in the same process on the same
// workload, so every run reports machine-independent speedup ratios and
// checks observable equivalence: query results must be byte-identical,
// downsample results identical up to an ulp tolerance on the bucket
// averages, and bus deliveries must arrive in the same order.
// Hard floors (the ISSUE's acceptance bar) fail the run outright:
// query and downsample >= 10x, publish fan-out >= 5x.
//
// Results append to BENCH_backend.json:
//
//   ./bench_backend [label] [output.json] [--reps=N] [--jobs=N]
//                   [--compare=BASELINE.json] [--min-ratio=R]
//
// --compare gates the speedup ratios against the newest baseline run
// line (default min-ratio 0.8), mirroring bench_perf_core's perf gate.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "backend/timeseries.hpp"
#include "backend/topic_bus.hpp"
#include "bench_util.hpp"
#include "runner/engine.hpp"

namespace {

using namespace iiot;
using backend::Point;
using backend::SeriesId;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

struct Lcg {
  std::uint64_t s;
  std::uint64_t next() {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 33;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

// ---- the seed implementations, embedded as references -----------------

// Pre-interning store: map of deques, linear range scans.
class NaiveStore {
 public:
  void append(const std::string& series, sim::Time at, double value) {
    auto& log = series_[series];
    if (!log.empty() && at < log.back().at) at = log.back().at;
    log.push_back(Point{at, value});
  }

  [[nodiscard]] std::vector<Point> query(const std::string& series,
                                         sim::Time from,
                                         sim::Time to) const {
    std::vector<Point> out;
    auto it = series_.find(series);
    if (it == series_.end()) return out;
    for (const Point& p : it->second) {
      if (p.at >= from && p.at <= to) out.push_back(p);
    }
    return out;
  }

  [[nodiscard]] std::vector<Point> downsample(const std::string& series,
                                              sim::Time from, sim::Time to,
                                              sim::Duration bucket) const {
    std::vector<Point> out;
    if (bucket == 0) return out;
    auto raw = query(series, from, to);
    std::size_t i = 0;
    while (i < raw.size()) {
      const sim::Time start = raw[i].at - (raw[i].at - from) % bucket;
      double sum = 0;
      std::size_t n = 0;
      while (i < raw.size() && raw[i].at < start + bucket) {
        sum += raw[i].value;
        ++n;
        ++i;
      }
      out.push_back(Point{start, sum / static_cast<double>(n)});
    }
    return out;
  }

 private:
  std::map<std::string, std::deque<Point>> series_;
};

// Pre-trie bus: ordered subscription map, linear topic_matches scan.
class NaiveBus {
 public:
  using Handler = backend::TopicBus::Handler;

  void subscribe(std::string filter, Handler handler) {
    subs_[next_id_++] = Sub{std::move(filter), std::move(handler)};
  }
  void publish(const std::string& topic, BytesView payload) {
    for (auto& [id, sub] : subs_) {
      if (backend::topic_matches(sub.filter, topic)) {
        sub.handler(topic, payload);
      }
    }
  }

 private:
  struct Sub {
    std::string filter;
    Handler handler;
  };
  std::map<std::uint64_t, Sub> subs_;
  std::uint64_t next_id_ = 1;
};

// ---- workloads --------------------------------------------------------

constexpr std::size_t kPoints = 1'000'000;
constexpr std::size_t kSubscribers = 10'000;
constexpr int kQueries = 400;
constexpr int kDownsamples = 50;
constexpr int kPublishes = 2'000;

// The shared 1M-point series: integer values (exact bucket sums under
// any summation order) on a jittered-but-monotone clock.
std::vector<Point> make_points() {
  std::vector<Point> pts;
  pts.reserve(kPoints);
  Lcg rng{4242};
  sim::Time t = 0;
  for (std::size_t i = 0; i < kPoints; ++i) {
    t += 500 + rng.below(1000);
    pts.push_back(Point{t, static_cast<double>(rng.below(1000))});
  }
  return pts;
}

struct AppendResult {
  double fast_per_sec = 0;
  double naive_per_sec = 0;
  std::uint64_t checksum = 0;  // determinism gate across reps
};

AppendResult bench_append() {
  const auto pts = make_points();
  AppendResult r;
  {
    backend::TimeSeriesStore store;
    const SeriesId id = store.intern("plant/1/3303");
    const double t0 = now_seconds();
    store.append_batch(id, pts.data(), pts.size());
    const double wall = now_seconds() - t0;
    r.fast_per_sec = static_cast<double>(kPoints) / wall;
    r.checksum = store.stats().appends + store.points(id);
  }
  {
    NaiveStore store;
    const double t0 = now_seconds();
    for (const Point& p : pts) store.append("plant/1/3303", p.at, p.value);
    const double wall = now_seconds() - t0;
    r.naive_per_sec = static_cast<double>(kPoints) / wall;
  }
  return r;
}

struct RangeResult {
  double fast_per_sec = 0;
  double naive_per_sec = 0;
  std::uint64_t checksum = 0;
  bool identical = true;  // fast results byte-identical to the seed's
};

std::uint64_t fold(const std::vector<Point>& pts, std::uint64_t acc) {
  for (const Point& p : pts) {
    acc = acc * 1099511628211ULL + p.at +
          static_cast<std::uint64_t>(p.value);
  }
  return acc;
}

bool same_points(const std::vector<Point>& a, const std::vector<Point>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].at != b[i].at || a[i].value != b[i].value) return false;
  }
  return true;
}

// Downsample oracle: bucket boundaries/timestamps must match exactly, but
// averages may differ from the seed in the final ulp because the fast
// path merges per-chunk rollup sums instead of summing points strictly
// left-to-right (timeseries.hpp documents this). The current workload is
// integer-valued, where both summation orders are exact; the tolerance
// keeps the equivalence gate from going flaky if the workload ever
// carries non-integer values.
bool same_points_approx(const std::vector<Point>& a,
                        const std::vector<Point>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].at != b[i].at) return false;
    const double x = a[i].value;
    const double y = b[i].value;
    if (x == y) continue;
    const double tol = 4.0 * std::numeric_limits<double>::epsilon() *
                       std::max(std::fabs(x), std::fabs(y));
    if (!(std::fabs(x - y) <= tol)) return false;
  }
  return true;
}

// Narrow trailing-window queries (the dashboard/rule-engine shape): the
// seed scans the full series per query; the fast path binary-searches to
// the window.
RangeResult bench_query() {
  const auto pts = make_points();
  const sim::Time span = pts.back().at;
  backend::TimeSeriesStore fast;
  NaiveStore naive;
  const SeriesId id = fast.intern("s");
  fast.append_batch(id, pts.data(), pts.size());
  for (const Point& p : pts) naive.append("s", p.at, p.value);

  std::vector<std::pair<sim::Time, sim::Time>> windows;
  Lcg rng{99};
  for (int q = 0; q < kQueries; ++q) {
    const sim::Time from = rng.below(span);
    windows.emplace_back(from, from + span / 1000);  // ~0.1% of the range
  }

  RangeResult r;
  {
    const double t0 = now_seconds();
    for (const auto& [from, to] : windows) {
      r.checksum = fold(fast.query(id, from, to), r.checksum);
    }
    const double wall = now_seconds() - t0;
    r.fast_per_sec = kQueries / wall;
  }
  {
    std::uint64_t check = 0;
    const double t0 = now_seconds();
    for (const auto& [from, to] : windows) {
      check = fold(naive.query("s", from, to), check);
    }
    const double wall = now_seconds() - t0;
    r.naive_per_sec = kQueries / wall;
    if (check != r.checksum) r.identical = false;
  }
  // Element-wise spot check on top of the checksum equality.
  r.identical = r.identical &&
                same_points(fast.query(id, windows[0].first,
                                       windows[0].second),
                            naive.query("s", windows[0].first,
                                        windows[0].second));
  return r;
}

// Full-range bucket averages: the seed copies the range then rescans it;
// the fast path merges whole-chunk rollups.
RangeResult bench_downsample() {
  const auto pts = make_points();
  const sim::Time span = pts.back().at;
  backend::TimeSeriesStore fast;
  NaiveStore naive;
  const SeriesId id = fast.intern("s");
  fast.append_batch(id, pts.data(), pts.size());
  for (const Point& p : pts) naive.append("s", p.at, p.value);

  // Buckets comfortably wider than a chunk's time span (~256 * 1000).
  const sim::Duration bucket = span / 2000;

  RangeResult r;
  {
    const double t0 = now_seconds();
    for (int q = 0; q < kDownsamples; ++q) {
      r.checksum = fold(fast.downsample(id, 0, span, bucket), r.checksum);
    }
    const double wall = now_seconds() - t0;
    r.fast_per_sec = kDownsamples / wall;
  }
  {
    const double t0 = now_seconds();
    for (int q = 0; q < kDownsamples; ++q) {
      (void)fold(naive.downsample("s", 0, span, bucket), 0);
    }
    const double wall = now_seconds() - t0;
    r.naive_per_sec = kDownsamples / wall;
  }
  // Cross-implementation check is element-wise with an ulp tolerance on
  // the averages (see same_points_approx); r.checksum still gates
  // cross-rep determinism of the fast path exactly.
  r.identical =
      r.identical && same_points_approx(fast.downsample(id, 0, span, bucket),
                                        naive.downsample("s", 0, span, bucket));
  return r;
}

struct FanoutResult {
  double fast_per_sec = 0;
  double naive_per_sec = 0;
  std::uint64_t delivered = 0;
  bool identical = true;  // same deliveries in the same order
};

// 10k subscriptions shaped like a real deployment: mostly exact
// per-device topics plus a tail of wildcard dashboards/rules; each
// publish matches only a handful of them.
FanoutResult bench_fanout() {
  std::vector<std::string> filters;
  filters.reserve(kSubscribers);
  for (std::size_t i = 0; i < kSubscribers - 1000; ++i) {
    filters.push_back("site/" + std::to_string(i % 3000) + "/obj/" +
                      std::to_string(i / 3000));
  }
  for (std::size_t i = 0; i < 1000; ++i) {
    switch (i % 4) {
      case 0: filters.push_back("site/" + std::to_string(i) + "/+/0"); break;
      case 1: filters.push_back("site/" + std::to_string(i) + "/#"); break;
      case 2: filters.push_back("+/" + std::to_string(i) + "/obj/1"); break;
      default: filters.push_back("site/+/obj/" + std::to_string(i % 3));
    }
  }
  std::vector<std::string> topics;
  topics.reserve(kPublishes);
  Lcg rng{7};
  for (int i = 0; i < kPublishes; ++i) {
    topics.push_back("site/" + std::to_string(rng.below(3000)) + "/obj/" +
                     std::to_string(rng.below(3)));
  }
  const std::string payload = "21.5000";

  // Handlers log their subscription index: the logs double as the
  // delivery-order oracle and as (identical) per-delivery work.
  std::vector<std::uint32_t> fast_log, naive_log;
  backend::TopicBus fast;
  NaiveBus naive;
  for (std::size_t i = 0; i < filters.size(); ++i) {
    const auto idx = static_cast<std::uint32_t>(i);
    fast.subscribe(filters[i], [&fast_log, idx](const std::string&,
                                                BytesView) {
      fast_log.push_back(idx);
    });
    naive.subscribe(filters[i], [&naive_log, idx](const std::string&,
                                                  BytesView) {
      naive_log.push_back(idx);
    });
  }

  FanoutResult r;
  {
    const double t0 = now_seconds();
    for (const std::string& t : topics) fast.publish(t, payload);
    const double wall = now_seconds() - t0;
    r.fast_per_sec = kPublishes / wall;
  }
  {
    const BytesView view(
        reinterpret_cast<const std::uint8_t*>(payload.data()),
        payload.size());
    const double t0 = now_seconds();
    for (const std::string& t : topics) naive.publish(t, view);
    const double wall = now_seconds() - t0;
    r.naive_per_sec = kPublishes / wall;
  }
  r.delivered = fast_log.size();
  r.identical = fast_log == naive_log;
  return r;
}

// ---- measurement ------------------------------------------------------

constexpr std::size_t kWorkloads = 4;  // append, query, downsample, fanout

struct TaskResult {
  AppendResult append;
  RangeResult query;
  RangeResult down;
  FanoutResult fanout;
};

struct Best {
  AppendResult append;
  RangeResult query;
  RangeResult down;
  FanoutResult fanout;
  bool identical = true;
  bool deterministic = true;
};

void take_best(double& best, double cur) {
  if (cur > best) best = cur;
}

Best measure(runner::Engine& eng, std::uint64_t reps) {
  const std::size_t tasks = static_cast<std::size_t>(reps) * kWorkloads;
  std::vector<TaskResult> slots(tasks);
  eng.run(tasks, [&](std::size_t t) {
    switch (t % kWorkloads) {
      case 0: slots[t].append = bench_append(); break;
      case 1: slots[t].query = bench_query(); break;
      case 2: slots[t].down = bench_downsample(); break;
      default: slots[t].fanout = bench_fanout(); break;
    }
  });

  Best best;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    const std::size_t base = static_cast<std::size_t>(rep) * kWorkloads;
    const TaskResult& s0 = slots[0];
    take_best(best.append.fast_per_sec, slots[base].append.fast_per_sec);
    take_best(best.append.naive_per_sec, slots[base].append.naive_per_sec);
    take_best(best.query.fast_per_sec, slots[base + 1].query.fast_per_sec);
    take_best(best.query.naive_per_sec, slots[base + 1].query.naive_per_sec);
    take_best(best.down.fast_per_sec, slots[base + 2].down.fast_per_sec);
    take_best(best.down.naive_per_sec, slots[base + 2].down.naive_per_sec);
    take_best(best.fanout.fast_per_sec,
              slots[base + 3].fanout.fast_per_sec);
    take_best(best.fanout.naive_per_sec,
              slots[base + 3].fanout.naive_per_sec);
    best.identical = best.identical && slots[base + 1].query.identical &&
                     slots[base + 2].down.identical &&
                     slots[base + 3].fanout.identical;
    // Identical worlds must produce identical counters/checksums.
    if (slots[base].append.checksum != s0.append.checksum ||
        slots[base + 1].query.checksum != slots[1].query.checksum ||
        slots[base + 2].down.checksum != slots[2].down.checksum ||
        slots[base + 3].fanout.delivered != slots[3].fanout.delivered) {
      std::printf("FAIL: rep %llu diverged from rep 0\n",
                  static_cast<unsigned long long>(rep));
      best.deterministic = false;
    }
  }
  best.append.checksum = slots[0].append.checksum;
  best.query.checksum = slots[1].query.checksum;
  best.down.checksum = slots[2].down.checksum;
  best.fanout.delivered = slots[3].fanout.delivered;
  return best;
}

bool compare_against_baseline(const std::string& base_line,
                              const std::string& run_line,
                              double min_ratio) {
  static const char* kGated[] = {"query_speedup", "downsample_speedup",
                                 "publish_speedup"};
  bool ok = true;
  std::printf("\nperf-regression gate (min ratio %.2f):\n", min_ratio);
  for (const char* key : kGated) {
    double base = 0;
    double cur = 0;
    if (!bench::bench_field(base_line, key, base) || base <= 0) {
      std::printf("  %-22s baseline missing — skipped\n", key);
      continue;
    }
    if (!bench::bench_field(run_line, key, cur)) {
      std::printf("  %-22s MISSING in current run\n", key);
      ok = false;
      continue;
    }
    const double ratio = cur / base;
    std::printf("  %-22s x%8.1f vs x%8.1f baseline  (ratio %.2f)%s\n", key,
                cur, base, ratio, ratio < min_ratio ? "  REGRESSION" : "");
    if (ratio < min_ratio) ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "current";
  std::string out_path = "BENCH_backend.json";
  std::string compare_path;
  std::uint64_t reps = 1;
  std::uint64_t jobs = 1;
  double min_ratio = 0.8;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (bench::flag_u64(arg, "--reps", reps) ||
        bench::flag_u64(arg, "--jobs", jobs) ||
        bench::flag_str(arg, "--compare", compare_path) ||
        bench::flag_double(arg, "--min-ratio", min_ratio)) {
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
    if (positional == 0) {
      label = arg;
    } else {
      out_path = arg;
    }
    ++positional;
  }
  if (reps == 0) reps = 1;

  bench::print_header(
      "PERF: backend-tier hot paths (store + pub/sub bus)",
      "indexed queries/rollups and trie fan-out must beat the seed's "
      "linear scans by 10x/10x/5x with identical observable behavior");

  runner::Engine eng(static_cast<unsigned>(jobs));
  const Best best = measure(eng, reps);

  const double query_speedup =
      best.query.fast_per_sec / best.query.naive_per_sec;
  const double down_speedup =
      best.down.fast_per_sec / best.down.naive_per_sec;
  const double pub_speedup =
      best.fanout.fast_per_sec / best.fanout.naive_per_sec;

  std::printf("best of %llu rep(s), jobs=%u\n",
              static_cast<unsigned long long>(reps), eng.jobs());
  std::printf("ts_append     (%zu pts):   %12.0f pts/s   (seed %12.0f, x%.1f)\n",
              kPoints, best.append.fast_per_sec, best.append.naive_per_sec,
              best.append.fast_per_sec / best.append.naive_per_sec);
  std::printf("ts_query      (%d win):    %12.0f q/s     (seed %12.0f, x%.1f)\n",
              kQueries, best.query.fast_per_sec, best.query.naive_per_sec,
              query_speedup);
  std::printf("ts_downsample (%d calls):   %12.0f ds/s    (seed %12.0f, x%.1f)\n",
              kDownsamples, best.down.fast_per_sec, best.down.naive_per_sec,
              down_speedup);
  std::printf("bus_fanout    (%zu subs): %12.0f pub/s   (seed %12.0f, x%.1f)\n",
              kSubscribers, best.fanout.fast_per_sec,
              best.fanout.naive_per_sec, pub_speedup);
  std::printf("equivalence: %s (query byte-identical, downsample within "
              "ulp tolerance, deliveries in identical order)\n",
              best.identical ? "OK" : "FAILED");

  std::ostringstream run;
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"label\": \"%s\", \"ts_points\": %zu, \"subscribers\": %zu, "
      "\"append_per_sec\": %.0f, \"naive_append_per_sec\": %.0f, "
      "\"query_per_sec\": %.1f, \"naive_query_per_sec\": %.1f, "
      "\"query_speedup\": %.1f, "
      "\"downsample_per_sec\": %.1f, \"naive_downsample_per_sec\": %.1f, "
      "\"downsample_speedup\": %.1f, "
      "\"publish_per_sec\": %.0f, \"naive_publish_per_sec\": %.0f, "
      "\"publish_speedup\": %.1f, "
      "\"delivered\": %llu, \"reps\": %llu, \"jobs\": %u}",
      label.c_str(), kPoints, kSubscribers, best.append.fast_per_sec,
      best.append.naive_per_sec, best.query.fast_per_sec,
      best.query.naive_per_sec, query_speedup, best.down.fast_per_sec,
      best.down.naive_per_sec, down_speedup, best.fanout.fast_per_sec,
      best.fanout.naive_per_sec, pub_speedup,
      static_cast<unsigned long long>(best.fanout.delivered),
      static_cast<unsigned long long>(reps), eng.jobs());
  run << buf;
  bench::append_bench_run(out_path, "bench_backend", run.str());
  std::printf("\nwrote %s (label \"%s\")\n", out_path.c_str(),
              label.c_str());

  // Acceptance floors hold regardless of baseline availability.
  bool floors_ok = true;
  const struct {
    const char* name;
    double value;
    double floor;
  } floors[] = {{"query_speedup", query_speedup, 10.0},
                {"downsample_speedup", down_speedup, 10.0},
                {"publish_speedup", pub_speedup, 5.0}};
  for (const auto& f : floors) {
    if (f.value < f.floor) {
      std::printf("FAIL: %s x%.1f below the x%.0f floor\n", f.name, f.value,
                  f.floor);
      floors_ok = false;
    }
  }

  bool gate_ok = true;
  if (!compare_path.empty()) {
    const std::string base_line = bench::last_bench_run_line(compare_path);
    if (base_line.empty()) {
      std::printf("FAIL: no baseline run line in %s\n", compare_path.c_str());
      gate_ok = false;
    } else {
      gate_ok = compare_against_baseline(base_line, run.str(), min_ratio);
      std::printf("perf gate: %s\n", gate_ok ? "OK" : "FAILED");
    }
  }
  if (!best.deterministic) {
    std::printf("determinism gate: FAILED (results diverged across reps)\n");
  }
  return best.identical && best.deterministic && floors_ok && gate_ok ? 0
                                                                      : 1;
}
