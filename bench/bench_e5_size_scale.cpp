// E5 — Size scalability of a backend service (paper §IV-A).
//
// Claim: centralized services degrade as the system grows; partitioning/
// replication restores headroom; fully decentralized placement (clients
// compute the owner locally via consistent hashing) removes the
// directory bottleneck entirely. "Such a redesign typically boils down
// to replacing centralized services or algorithms with decentralized
// counterparts."
//
// Workload: N clients, each looking up services at 100 req/s total per
// client group; p50/p99 lookup latency per architecture.
#include <cstdio>
#include <vector>

#include "backend/registry.hpp"
#include "bench_util.hpp"

namespace {

using namespace iiot;
using namespace iiot::sim;  // NOLINT
using backend::Directory;
using backend::DirectoryConfig;
using backend::DirectoryMode;

struct Latency {
  double p50_us = 0;
  double p99_us = 0;
  double timeout_frac = 0;
};

Latency run(DirectoryMode mode, int clients, std::uint64_t seed) {
  Scheduler sched;
  DirectoryConfig cfg;
  cfg.rtt = 2'000;
  cfg.service_time = 150;
  cfg.server_count = 8;
  Directory dir(sched, mode, cfg);
  for (int i = 0; i < 500; ++i) {
    dir.register_service("svc-" + std::to_string(i), "10.0.0.1");
  }
  Rng rng(seed);
  std::vector<double> latencies;
  // Each client issues one lookup per millisecond for 200 ms.
  for (int c = 0; c < clients; ++c) {
    for (int t = 0; t < 200; ++t) {
      const Time at = static_cast<Time>(t) * 1'000 +
                      rng.below(900);
      const int key = static_cast<int>(rng.below(500));
      sched.schedule_at(at, [&dir, &latencies, key] {
        dir.lookup("svc-" + std::to_string(key),
                   [&latencies](Duration d, std::optional<std::string>) {
                     latencies.push_back(static_cast<double>(d));
                   });
      });
    }
  }
  sched.run_all();
  Latency out;
  out.p50_us = iiot::bench::percentile(latencies, 50);
  out.p99_us = iiot::bench::percentile(latencies, 99);
  return out;
}

}  // namespace

int main() {
  iiot::bench::print_header(
      "E5: service-directory lookup latency vs client count per architecture",
      "a centralized directory saturates as the deployment grows; a "
      "partitioned one postpones the wall by its server count; a "
      "decentralized (consistent-hash) design keeps per-lookup work "
      "constant");

  std::printf("%8s %-14s %12s %12s\n", "clients", "architecture",
              "p50[us]", "p99[us]");
  for (int clients : {1, 4, 8, 16, 32, 64}) {
    for (DirectoryMode mode :
         {DirectoryMode::kCentral, DirectoryMode::kPartitioned,
          DirectoryMode::kDecentralized}) {
      const Latency l = run(mode, clients, 5);
      std::printf("%8d %-14s %12.0f %12.0f\n", clients,
                  backend::to_string(mode), l.p50_us, l.p99_us);
    }
  }
  std::printf(
      "\nShape check: the central architecture's p99 explodes once the\n"
      "offered load (clients/ms) crosses 1/service_time (~6.6 req/ms =\n"
      "~7 clients); partitioned holds to ~8x that; decentralized stays\n"
      "near the 2 ms RTT floor throughout (crossovers at ~server count).\n");
  return 0;
}
