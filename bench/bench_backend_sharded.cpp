// Sharded backend-tier scaling benchmark (DESIGN.md §4g).
//
// bench_backend measures the single-shard fast paths; this harness
// measures the *sharded* tier built on top of them, on a deployment-scale
// workload — 10M points across 4096 series (1024 sites) and 100k
// shard-affine subscriptions — at several shard counts:
//
//   1. ingest    — append_bulk of the full 10M-point load, one worker
//                  per shard.
//   2. agg_query — cross-shard rollup aggregation (aggregate_each +
//                  aggregate_many) over every series.
//   3. dispatch  — publish_batch_parallel of a 50k-message multi-site
//                  batch into the 100k subscriptions.
//
// The single-shard TimeSeriesStore/TopicBus run the identical workload
// as the oracle. Every configuration's artifacts — per-series aggregate
// bit patterns, downsample/query folds, per-subscription delivery folds
// in global subscription order — must be byte-identical to the oracle at
// EVERY shard count and worker count; any divergence fails the run.
//
// Scaling gate: combined (ingest + agg + dispatch) wall time at the
// 4-shard configuration must beat the 1-shard configuration by
// --min-scaling (default 3.0). The gate is enforced only when the
// machine has >= 4 hardware threads (CI runners); on smaller or busy
// machines the speedup is reported as informational, exactly like
// bench_runner's scaling line.
//
// Results append to BENCH_backend_sharded.json:
//
//   ./bench_backend_sharded [label] [output.json] [--reps=N]
//                           [--compare=BASELINE.json] [--min-ratio=R]
//                           [--min-scaling=S]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "backend/sharded.hpp"
#include "backend/timeseries.hpp"
#include "backend/topic_bus.hpp"
#include "bench_util.hpp"
#include "runner/engine.hpp"

namespace {

using namespace iiot;
using backend::Point;
using backend::ShardedBus;
using backend::ShardedStore;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

struct Lcg {
  std::uint64_t s;
  std::uint64_t next() {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 33;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

// ---- workload ---------------------------------------------------------

constexpr std::size_t kSites = 1'024;
constexpr std::size_t kSeries = 4'096;
constexpr std::size_t kPoints = 10'000'000;  // total, across all series
constexpr std::size_t kSubscribers = 100'000;
constexpr std::size_t kMessages = 50'000;
constexpr int kAggReps = 16;

struct Workload {
  std::vector<std::string> series;            // kSeries names
  std::vector<std::vector<Point>> points;     // per-series, time-monotone
  std::vector<std::string> filters;           // kSubscribers, shard-affine
  std::vector<backend::BusMessage> messages;  // kMessages, bursty topics
  sim::Time span = 0;
};

Workload make_workload() {
  Workload w;
  w.series.reserve(kSeries);
  w.points.resize(kSeries);
  for (std::size_t i = 0; i < kSeries; ++i) {
    w.series.push_back("site" + std::to_string(i % kSites) + "/dev" +
                       std::to_string(i / kSites) + "/3303");
  }
  Lcg rng{4242};
  const std::size_t per_series = kPoints / kSeries;
  for (std::size_t i = 0; i < kSeries; ++i) {
    auto& pts = w.points[i];
    pts.reserve(per_series);
    sim::Time t = rng.below(500);
    for (std::size_t k = 0; k < per_series; ++k) {
      t += 500 + rng.below(1000);
      pts.push_back(Point{t, static_cast<double>(rng.below(1'000'000))});
    }
    if (t > w.span) w.span = t;
  }
  // 100k subscriptions, all literal-rooted (shard-affine — the
  // publish_batch_parallel contract): mostly exact per-device topics
  // plus per-site dashboards.
  w.filters.reserve(kSubscribers);
  for (std::size_t i = 0; i < kSubscribers; ++i) {
    const std::string site = "site" + std::to_string(i % kSites);
    switch (i % 5) {
      case 0:
      case 1:
      case 2:
        w.filters.push_back(site + "/dev" + std::to_string(i % 4) +
                            "/3303");
        break;
      case 3: w.filters.push_back(site + "/+/3303"); break;
      default: w.filters.push_back(site + "/#");
    }
  }
  // Bursty multi-site batch: runs of 1-8 messages per topic, so the
  // same-topic coalescing path is exercised on every shard.
  Lcg mrng{77};
  w.messages.reserve(kMessages);
  while (w.messages.size() < kMessages) {
    const std::string topic =
        "site" + std::to_string(mrng.below(kSites)) + "/dev" +
        std::to_string(mrng.below(4)) + "/" +
        (mrng.below(4) == 0 ? "3300" : "3303");
    const std::uint64_t burst = 1 + mrng.below(8);
    for (std::uint64_t b = 0; b < burst && w.messages.size() < kMessages;
         ++b) {
      backend::BusMessage m;
      m.topic = topic;
      const std::string pay = std::to_string(w.messages.size());
      m.payload.assign(
          reinterpret_cast<const std::uint8_t*>(pay.data()),
          reinterpret_cast<const std::uint8_t*>(pay.data()) + pay.size());
      w.messages.push_back(std::move(m));
    }
  }
  return w;
}

// ---- artifacts --------------------------------------------------------

std::uint64_t fold_u64(std::uint64_t acc, std::uint64_t v) {
  return acc * 1099511628211ULL + v;
}

std::uint64_t fold_bits(std::uint64_t acc, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return fold_u64(acc, bits);
}

/// Byte-exact store artifact: per-series aggregates over the full range
/// and two interior windows, a downsample fold on every 64th series, and
/// a raw query fold on every 256th. Identical folds <=> identical bytes
/// in every user-visible result.
template <typename StoreT, typename RefT>
std::uint64_t store_artifact(const StoreT& store,
                             const std::vector<RefT>& refs, sim::Time span) {
  std::uint64_t acc = 14695981039346656037ULL;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    for (const auto& [from, to] :
         {std::pair<sim::Time, sim::Time>{0, span},
          {span / 4, span / 2},
          {span / 3, span / 3 + span / 16}}) {
      const agg::PartialAggregate pa = store.aggregate(refs[i], from, to);
      acc = fold_u64(acc, pa.count);
      acc = fold_bits(acc, pa.sum);
      acc = fold_bits(acc, pa.min);
      acc = fold_bits(acc, pa.max);
    }
    acc = fold_u64(acc, store.points(refs[i]));
    if (i % 64 == 0) {
      for (const Point& p : store.downsample(refs[i], 0, span, span / 500)) {
        acc = fold_u64(acc, static_cast<std::uint64_t>(p.at));
        acc = fold_bits(acc, p.value);
      }
    }
    if (i % 256 == 0) {
      for (const Point& p :
           store.query(refs[i], span / 5, span / 5 + span / 50)) {
        acc = fold_u64(acc, static_cast<std::uint64_t>(p.at));
        acc = fold_bits(acc, p.value);
      }
    }
  }
  return acc;
}

/// Per-subscription delivery folds, combined in global subscription
/// order: equal <=> every subscription saw the same messages in the same
/// order.
std::uint64_t bus_artifact(const std::vector<std::uint64_t>& per_sub) {
  std::uint64_t acc = 14695981039346656037ULL;
  for (const std::uint64_t v : per_sub) acc = fold_u64(acc, v);
  return acc;
}

std::uint64_t fold_delivery(std::uint64_t acc, const std::string& topic,
                            BytesView payload) {
  for (const char c : topic) {
    acc = fold_u64(acc, static_cast<std::uint8_t>(c));
  }
  for (std::size_t i = 0; i < payload.size(); ++i) {
    acc = fold_u64(acc, payload[i]);
  }
  return acc;
}

// ---- per-configuration run --------------------------------------------

struct ConfigResult {
  std::uint32_t shards = 0;
  double ingest_per_sec = 0;
  double agg_per_sec = 0;       // per-series aggregates per second
  double dispatch_per_sec = 0;  // messages per second
  double combined_wall = 0;
  std::uint64_t store_art = 0;
  std::uint64_t bus_art = 0;
  std::uint64_t total_sum_bits = 0;  // aggregate_many grand total
  std::uint64_t delivered = 0;
  std::uint64_t string_appends = 0;
};

ConfigResult run_sharded_config(const Workload& w, std::uint32_t shards,
                                unsigned workers) {
  ConfigResult r;
  r.shards = shards;
  runner::Engine pool(workers);
  runner::Engine* pool_ptr = shards > 1 ? &pool : nullptr;

  ShardedStore store(shards, {}, pool_ptr);
  std::vector<ShardedStore::SeriesRef> refs;
  refs.reserve(kSeries);
  for (const std::string& name : w.series) {
    refs.push_back(store.intern(name));
  }
  std::vector<ShardedStore::Slice> slices;
  slices.reserve(kSeries);
  for (std::size_t i = 0; i < kSeries; ++i) {
    slices.push_back({refs[i], w.points[i].data(), w.points[i].size()});
  }
  {
    const double t0 = now_seconds();
    store.append_bulk(slices);
    const double wall = now_seconds() - t0;
    r.ingest_per_sec = static_cast<double>(kPoints) / wall;
    r.combined_wall += wall;
  }
  {
    const double t0 = now_seconds();
    std::vector<agg::PartialAggregate> parts(refs.size());
    agg::PartialAggregate total;
    for (int rep = 0; rep < kAggReps; ++rep) {
      store.aggregate_each(refs, 0, w.span, parts.data());
      total = store.aggregate_many(refs, 0, w.span);
    }
    const double wall = now_seconds() - t0;
    r.agg_per_sec =
        static_cast<double>(2 * kAggReps * refs.size()) / wall;
    r.combined_wall += wall;
    r.total_sum_bits = fold_bits(fold_u64(0, total.count), total.sum);
  }
  r.store_art = store_artifact(store, refs, w.span);
  r.string_appends = store.stats().string_appends;

  ShardedBus bus(shards, pool_ptr);
  std::vector<std::uint64_t> per_sub(kSubscribers, 0);
  for (std::size_t i = 0; i < w.filters.size(); ++i) {
    std::uint64_t* slot = &per_sub[i];
    bus.subscribe(w.filters[i],
                  [slot](const std::string& topic, BytesView p) {
                    *slot = fold_delivery(*slot, topic, p);
                  });
  }
  {
    const double t0 = now_seconds();
    bus.publish_batch_parallel(w.messages);
    const double wall = now_seconds() - t0;
    r.dispatch_per_sec = static_cast<double>(kMessages) / wall;
    r.combined_wall += wall;
  }
  r.bus_art = bus_artifact(per_sub);
  r.delivered = bus.delivered();
  return r;
}

/// The single-shard implementations on the identical workload: the
/// byte-exactness oracle (and the classic-plane throughput reference).
ConfigResult run_oracle(const Workload& w) {
  ConfigResult r;
  r.shards = 0;
  backend::TimeSeriesStore store;
  std::vector<backend::SeriesId> refs;
  refs.reserve(kSeries);
  for (const std::string& name : w.series) {
    refs.push_back(store.intern(name));
  }
  {
    const double t0 = now_seconds();
    for (std::size_t i = 0; i < kSeries; ++i) {
      store.append_batch(refs[i], w.points[i].data(), w.points[i].size());
    }
    const double wall = now_seconds() - t0;
    r.ingest_per_sec = static_cast<double>(kPoints) / wall;
    r.combined_wall += wall;
  }
  {
    const double t0 = now_seconds();
    agg::PartialAggregate total;
    for (int rep = 0; rep < kAggReps; ++rep) {
      agg::PartialAggregate t;
      for (const auto ref : refs) {
        t.merge(store.aggregate(ref, 0, w.span));
      }
      total = t;
    }
    const double wall = now_seconds() - t0;
    r.agg_per_sec = static_cast<double>(kAggReps * refs.size()) / wall;
    r.combined_wall += wall;
    r.total_sum_bits = fold_bits(fold_u64(0, total.count), total.sum);
  }
  r.store_art = store_artifact(store, refs, w.span);
  r.string_appends = store.stats().string_appends;

  backend::TopicBus bus;
  std::vector<std::uint64_t> per_sub(kSubscribers, 0);
  for (std::size_t i = 0; i < w.filters.size(); ++i) {
    std::uint64_t* slot = &per_sub[i];
    bus.subscribe(w.filters[i],
                  [slot](const std::string& topic, BytesView p) {
                    *slot = fold_delivery(*slot, topic, p);
                  });
  }
  {
    const double t0 = now_seconds();
    bus.publish_batch(w.messages);
    const double wall = now_seconds() - t0;
    r.dispatch_per_sec = static_cast<double>(kMessages) / wall;
    r.combined_wall += wall;
  }
  r.bus_art = bus_artifact(per_sub);
  r.delivered = bus.delivered();
  return r;
}

bool compare_against_baseline(const std::string& base_line,
                              const std::string& run_line,
                              double min_ratio) {
  static const char* kGated[] = {"ingest_per_sec_s1", "agg_per_sec_s1",
                                 "dispatch_per_sec_s1"};
  bool ok = true;
  std::printf("\nperf-regression gate (min ratio %.2f):\n", min_ratio);
  for (const char* key : kGated) {
    double base = 0;
    double cur = 0;
    if (!iiot::bench::bench_field(base_line, key, base) || base <= 0) {
      std::printf("  %-22s baseline missing — skipped\n", key);
      continue;
    }
    if (!iiot::bench::bench_field(run_line, key, cur)) {
      std::printf("  %-22s MISSING in current run\n", key);
      ok = false;
      continue;
    }
    const double ratio = cur / base;
    std::printf("  %-22s %12.0f vs %12.0f baseline  (ratio %.2f)%s\n", key,
                cur, base, ratio, ratio < min_ratio ? "  REGRESSION" : "");
    if (ratio < min_ratio) ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "current";
  std::string out_path = "BENCH_backend_sharded.json";
  std::string compare_path;
  std::uint64_t reps = 1;
  double min_ratio = 0.6;
  double min_scaling = 3.0;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (bench::flag_u64(arg, "--reps", reps) ||
        bench::flag_str(arg, "--compare", compare_path) ||
        bench::flag_double(arg, "--min-ratio", min_ratio) ||
        bench::flag_double(arg, "--min-scaling", min_scaling)) {
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
    if (positional == 0) {
      label = arg;
    } else {
      out_path = arg;
    }
    ++positional;
  }
  if (reps == 0) reps = 1;

  bench::print_header(
      "PERF: sharded backend tier (multi-core store + pub/sub front)",
      "ingest + rollup aggregation + dispatch must scale >= 3x at 4 "
      "shards with byte-identical artifacts at every shard count");

  const unsigned cores = runner::hardware_jobs();
  std::vector<std::uint32_t> shard_configs = {1, 2, 4};
  if (cores > 4) shard_configs.push_back(cores);

  const Workload w = make_workload();
  std::printf("workload: %zu points, %zu series, %zu sites, %zu subs, "
              "%zu messages, cores=%u\n",
              kPoints, kSeries, kSites, kSubscribers, kMessages, cores);

  const ConfigResult oracle = run_oracle(w);
  std::printf("oracle (single store/bus): ingest %.0f pts/s, agg %.0f "
              "series-aggs/s, dispatch %.0f msg/s, delivered %llu\n",
              oracle.ingest_per_sec, oracle.agg_per_sec,
              oracle.dispatch_per_sec,
              static_cast<unsigned long long>(oracle.delivered));

  bool identical = true;
  bool deterministic = true;
  if (oracle.string_appends != 0) {
    std::printf("FAIL: oracle used the string-append shim %llu times "
                "(hot path must stay interned)\n",
                static_cast<unsigned long long>(oracle.string_appends));
    identical = false;
  }

  std::vector<ConfigResult> best(shard_configs.size());
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    for (std::size_t c = 0; c < shard_configs.size(); ++c) {
      const std::uint32_t shards = shard_configs[c];
      const ConfigResult r = run_sharded_config(w, shards, shards);
      if (r.store_art != oracle.store_art ||
          r.total_sum_bits != oracle.total_sum_bits) {
        std::printf("FAIL: store artifacts diverged at %u shards\n",
                    shards);
        identical = false;
      }
      if (r.bus_art != oracle.bus_art || r.delivered != oracle.delivered) {
        std::printf("FAIL: delivery artifacts diverged at %u shards\n",
                    shards);
        identical = false;
      }
      if (r.string_appends != 0) {
        std::printf("FAIL: sharded config %u used the string-append shim "
                    "%llu times\n",
                    shards,
                    static_cast<unsigned long long>(r.string_appends));
        identical = false;
      }
      if (rep == 0) {
        best[c] = r;
      } else {
        if (r.store_art != best[c].store_art ||
            r.bus_art != best[c].bus_art) {
          std::printf("FAIL: rep %llu diverged at %u shards\n",
                      static_cast<unsigned long long>(rep), shards);
          deterministic = false;
        }
        if (r.ingest_per_sec > best[c].ingest_per_sec) {
          best[c].ingest_per_sec = r.ingest_per_sec;
        }
        if (r.agg_per_sec > best[c].agg_per_sec) {
          best[c].agg_per_sec = r.agg_per_sec;
        }
        if (r.dispatch_per_sec > best[c].dispatch_per_sec) {
          best[c].dispatch_per_sec = r.dispatch_per_sec;
        }
        if (r.combined_wall < best[c].combined_wall) {
          best[c].combined_wall = r.combined_wall;
        }
      }
    }
  }

  std::printf("\n%-8s %16s %18s %16s %12s\n", "shards", "ingest pts/s",
              "agg series-aggs/s", "dispatch msg/s", "combined s");
  for (const ConfigResult& r : best) {
    std::printf("%-8u %16.0f %18.0f %16.0f %12.3f\n", r.shards,
                r.ingest_per_sec, r.agg_per_sec, r.dispatch_per_sec,
                r.combined_wall);
  }

  const ConfigResult& base1 = best[0];
  const ConfigResult& at4 = best[2];  // shard_configs[2] == 4
  const double scaling4 = base1.combined_wall / at4.combined_wall;
  const ConfigResult& widest = best.back();
  const double scaling_max = base1.combined_wall / widest.combined_wall;
  const bool enforce = cores >= 4;
  std::printf("\nscaling: x%.2f at 4 shards, x%.2f at %u shards "
              "(1-shard combined %.3fs)\n",
              scaling4, scaling_max, widest.shards, base1.combined_wall);
  bool scaling_ok = true;
  if (enforce) {
    if (scaling4 < min_scaling && scaling_max < min_scaling) {
      std::printf("FAIL: scaling x%.2f below the x%.1f floor\n",
                  std::max(scaling4, scaling_max), min_scaling);
      scaling_ok = false;
    }
  } else {
    std::printf("scaling informational only (%u core(s) < 4; the x%.1f "
                "floor is enforced on >= 4-core machines)\n",
                cores, min_scaling);
  }
  std::printf("equivalence: %s (aggregates/downsamples/queries bit-"
              "identical, deliveries per-subscription identical at every "
              "shard count)\n",
              identical ? "OK" : "FAILED");

  std::ostringstream run;
  char buf[768];
  std::snprintf(
      buf, sizeof buf,
      "{\"label\": \"%s\", \"points\": %zu, \"series\": %zu, "
      "\"subscribers\": %zu, \"messages\": %zu, \"cores\": %u, "
      "\"ingest_per_sec_s1\": %.0f, \"agg_per_sec_s1\": %.0f, "
      "\"dispatch_per_sec_s1\": %.0f, "
      "\"ingest_per_sec_s4\": %.0f, \"agg_per_sec_s4\": %.0f, "
      "\"dispatch_per_sec_s4\": %.0f, "
      "\"oracle_ingest_per_sec\": %.0f, \"delivered\": %llu, "
      "\"scaling_4\": %.2f, \"scaling_max\": %.2f, \"max_shards\": %u, "
      "\"scaling_enforced\": %d, \"reps\": %llu}",
      label.c_str(), kPoints, kSeries, kSubscribers, kMessages, cores,
      base1.ingest_per_sec, base1.agg_per_sec, base1.dispatch_per_sec,
      at4.ingest_per_sec, at4.agg_per_sec, at4.dispatch_per_sec,
      oracle.ingest_per_sec,
      static_cast<unsigned long long>(oracle.delivered), scaling4,
      scaling_max, widest.shards, enforce ? 1 : 0,
      static_cast<unsigned long long>(reps));
  run << buf;
  bench::append_bench_run(out_path, "bench_backend_sharded", run.str());
  std::printf("\nwrote %s (label \"%s\")\n", out_path.c_str(),
              label.c_str());

  bool gate_ok = true;
  if (!compare_path.empty()) {
    const std::string base_line = bench::last_bench_run_line(compare_path);
    if (base_line.empty()) {
      std::printf("FAIL: no baseline run line in %s\n",
                  compare_path.c_str());
      gate_ok = false;
    } else {
      gate_ok = compare_against_baseline(base_line, run.str(), min_ratio);
      std::printf("perf gate: %s\n", gate_ok ? "OK" : "FAILED");
    }
  }
  if (!deterministic) {
    std::printf("determinism gate: FAILED (artifacts diverged across "
                "reps)\n");
  }
  return identical && deterministic && scaling_ok && gate_ok ? 0 : 1;
}
