// E8 — The three redundancy types and their limits (paper §V-A, [42]).
//
// Claims: (a) information redundancy (FEC) buys delivery on lossy links
// at a fixed byte overhead, bounded by device resources; (b) time
// redundancy (ARQ) buys delivery at a latency cost, "sometimes at odds
// with soft-realtime requirements"; (c) physical redundancy (k-of-n
// replicas + voting) masks node faults, but is limited where sensing
// points are fixed; all three compose.
//
// Part 1: a lossy channel swept over bit-error rates, comparing plain /
// Hamming / Hamming+interleave / repetition-3 on delivery and overhead,
// plus ARQ attempts/latency at equal target delivery.
// Part 2: crashing sensor replicas with a 2-of-3 median voter vs a
// single sensor — availability of a valid reading over time.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "dependability/coding.hpp"
#include "dependability/faults.hpp"
#include "dependability/redundancy.hpp"

namespace {

using namespace iiot;
using namespace iiot::dependability;
using namespace iiot::sim;  // NOLINT

struct FecRow {
  double delivery = 0;
  double overhead = 0;  // coded bytes / payload bytes
};

enum class Scheme { kPlain, kHamming, kHammingInterleaved, kRepetition3 };

const char* name_of(Scheme s) {
  switch (s) {
    case Scheme::kPlain: return "plain";
    case Scheme::kHamming: return "hamming(7,4)";
    case Scheme::kHammingInterleaved: return "hamming+il16";
    case Scheme::kRepetition3: return "repeat-3";
  }
  return "?";
}

FecRow run_fec(Scheme scheme, double ber, bool bursts, Rng& rng) {
  constexpr int kTrials = 400;
  constexpr std::size_t kPayload = 24;
  HammingCode plain_code(1), inter_code(16);
  RepetitionCode rep(3);
  int ok = 0;
  std::size_t coded_size = kPayload;
  for (int t = 0; t < kTrials; ++t) {
    Buffer data(kPayload);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
    Buffer coded;
    switch (scheme) {
      case Scheme::kPlain: coded = data; break;
      case Scheme::kHamming: coded = plain_code.encode(data); break;
      case Scheme::kHammingInterleaved:
        coded = inter_code.encode(data);
        break;
      case Scheme::kRepetition3: coded = rep.encode(data); break;
    }
    coded_size = coded.size();
    inject_bit_errors(coded, ber, rng);
    if (bursts) inject_burst(coded, 8, rng);
    Buffer decoded;
    switch (scheme) {
      case Scheme::kPlain: decoded = coded; break;
      case Scheme::kHamming:
        decoded = plain_code.decode(coded, kPayload).data;
        break;
      case Scheme::kHammingInterleaved:
        decoded = inter_code.decode(coded, kPayload).data;
        break;
      case Scheme::kRepetition3:
        decoded = rep.decode(coded, kPayload);
        break;
    }
    if (decoded == data) ++ok;
  }
  return FecRow{static_cast<double>(ok) / kTrials,
                static_cast<double>(coded_size) / kPayload};
}

void part1_information_redundancy() {
  std::printf("\n-- information redundancy: packet delivery vs BER "
              "(24-byte payloads%s) --\n",
              "");
  std::printf("%-14s %9s |", "scheme", "overhead");
  for (double ber : {0.001, 0.003, 0.01, 0.03}) {
    std::printf(" ber=%.3f |", ber);
  }
  std::printf("  +8b burst\n");
  Rng rng(8);
  for (Scheme s : {Scheme::kPlain, Scheme::kHamming,
                   Scheme::kHammingInterleaved, Scheme::kRepetition3}) {
    double overhead = 0;
    std::printf("%-14s", name_of(s));
    std::vector<double> cells;
    for (double ber : {0.001, 0.003, 0.01, 0.03}) {
      FecRow r = run_fec(s, ber, false, rng);
      overhead = r.overhead;
      cells.push_back(r.delivery);
    }
    FecRow burst = run_fec(s, 0.001, true, rng);
    std::printf(" %8.2fx |", overhead);
    for (double d : cells) std::printf("    %5.1f%% |", d * 100.0);
    std::printf("     %5.1f%%\n", burst.delivery * 100.0);
  }
}

void part2_time_redundancy() {
  std::printf("\n-- time redundancy: ARQ delivery & latency vs per-try "
              "loss (2 ms/attempt, 50 ms spacing) --\n");
  std::printf("%-10s |", "max tries");
  for (double loss : {0.1, 0.3, 0.5, 0.7}) {
    std::printf(" loss=%.1f       |", loss);
  }
  std::printf("\n");
  Rng rng(88);
  for (int tries : {1, 2, 4, 8}) {
    ArqPolicy arq;
    arq.max_attempts = tries;
    std::printf("%-10d |", tries);
    for (double loss : {0.1, 0.3, 0.5, 0.7}) {
      int ok = 0;
      double lat = 0;
      constexpr int kN = 2000;
      for (int i = 0; i < kN; ++i) {
        auto o = arq.run(1.0 - loss, rng, 2'000);
        if (o.success) ++ok;
        lat += to_millis(o.latency) / kN;
      }
      std::printf(" %5.1f%% %5.1fms |", 100.0 * ok / kN, lat);
    }
    std::printf("\n");
  }
}

void part3_physical_redundancy() {
  std::printf("\n-- physical redundancy: valid-reading availability with "
              "crashing sensors (MTTF 1 h, MTTR 15 min, 30 days) --\n");
  std::printf("%-22s %14s %16s\n", "configuration", "availability",
              "wrong readings");
  for (int replicas : {1, 3, 5}) {
    Scheduler sched;
    Rng rng(123);
    std::vector<std::unique_ptr<CrashProcess>> procs;
    FaultConfig fcfg;
    fcfg.mttf_seconds = 3600.0;
    fcfg.mttr_seconds = 900.0;
    for (int r = 0; r < replicas; ++r) {
      procs.push_back(std::make_unique<CrashProcess>(
          sched, rng.fork(r + 1), fcfg, nullptr, nullptr));
      procs.back()->start();
    }
    // Sample once a minute: each up replica reports truth+noise; a down
    // replica reports nothing. A stuck (faulty-but-up) replica is also
    // modelled: replica 0 reads garbage while "up" 5% of the time.
    std::int64_t valid = 0, total = 0, wrong = 0;
    Rng noise(77);
    for (Duration t = 60_s; t < 30 * 24 * 3600_s; t += 60_s) {
      sched.run_until(t);
      ++total;
      std::vector<double> readings;
      for (int r = 0; r < replicas; ++r) {
        if (!procs[static_cast<std::size_t>(r)]->up()) continue;
        double v = 20.0 + noise.normal(0.0, 0.1);
        if (r == 0 && noise.chance(0.05)) v = 99.9;  // stuck-at fault
        readings.push_back(v);
      }
      auto vote = median_vote(readings, replicas == 1 ? 1u : 2u);
      if (vote.has_value()) {
        if (std::abs(*vote - 20.0) < 1.0) {
          ++valid;
        } else {
          ++wrong;
        }
      }
    }
    char cfg_name[32];
    std::snprintf(cfg_name, sizeof(cfg_name), "%d sensor%s%s", replicas,
                  replicas > 1 ? "s" : "",
                  replicas > 1 ? " + median vote" : "");
    std::printf("%-22s %13.2f%% %15.2f%%\n", cfg_name,
                100.0 * static_cast<double>(valid) / static_cast<double>(total),
                100.0 * static_cast<double>(wrong) / static_cast<double>(total));
  }
}

}  // namespace

int main() {
  iiot::bench::print_header(
      "E8: information vs time vs physical redundancy",
      "each redundancy type buys dependability in its own currency — "
      "bytes, latency, or hardware — and each has the limits §V-A "
      "describes");
  part1_information_redundancy();
  part2_time_redundancy();
  part3_physical_redundancy();
  std::printf(
      "\nShape check: FEC holds delivery to high BER at a fixed 1.75-3x\n"
      "byte cost (interleaving rescues bursts); ARQ latency grows with\n"
      "attempts while delivery saturates at 1-(loss^tries); replicated\n"
      "sensors with median voting push availability toward 100%% and\n"
      "suppress the stuck-at readings a single sensor passes through.\n");
  return 0;
}
