// E4 — Parallel border-router failure detection (paper §IV-B, ref [32]).
//
// Claim: "by exploiting parallelism, one can improve the efficiency of
// border router failure detection by orders of magnitude."
//
// Every node in the network needs to learn that the border router died
// (to trigger repair / failover). Two designs:
//
//   * end-to-end probing (baseline): each node independently verifies the
//     root by sending a ping up the DODAG and expecting a pong down it;
//     k consecutive missed pongs ⇒ declare. Every probe costs ~2×depth
//     frames, and every node pays it — network cost scales with
//     n × depth.
//   * RNFD: only the handful of root-adjacent sentinels probe (1-hop),
//     votes are shared in a conflict-free replicated counter (CFRC)
//     gossiped network-wide; a quorum of suspecting sentinels yields the
//     verdict everywhere.
//
// We report the steady-state monitoring cost (frames/hour while the root
// is alive), the network-wide detection latency after the root dies, and
// the fraction of nodes that learn the verdict.
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "net/rnfd.hpp"

namespace {

using namespace iiot;
using namespace iiot::sim;  // NOLINT

constexpr Duration kProbeInterval = 30_s;
constexpr int kMissesToDeclare = 3;

/// Baseline: end-to-end root liveness probing from every node.
class EndToEndProbe {
 public:
  EndToEndProbe(net::RplRouting& routing, Scheduler& sched, Rng rng)
      : routing_(routing), sched_(sched), rng_(rng) {}

  void start() {
    running_ = true;
    arm();
  }
  [[nodiscard]] bool declared_dead() const { return declared_; }
  [[nodiscard]] static Buffer ping_payload() { return to_buffer("P"); }

  void on_pong() {
    misses_ = 0;
    awaiting_ = false;
  }

 private:
  void arm() {
    const auto jitter = static_cast<Duration>(
        rng_.below(static_cast<std::uint32_t>(kProbeInterval / 2)));
    timer_ = sched_.schedule_after(kProbeInterval / 2 + jitter, [this] {
      if (!running_) return;
      if (awaiting_) {
        // Previous ping went unanswered.
        if (++misses_ >= kMissesToDeclare) declared_ = true;
      }
      awaiting_ = true;
      routing_.send_up(ping_payload());
      arm();
    });
  }

  net::RplRouting& routing_;
  Scheduler& sched_;
  Rng rng_;
  bool running_ = false;
  bool awaiting_ = false;
  bool declared_ = false;
  int misses_ = 0;
  sim::EventHandle timer_;
};

struct Outcome {
  double frames_per_hour = 0;   // steady-state monitoring cost
  double detect_p50_s = 0;      // node-level detection latency
  double detect_p95_s = 0;
  double aware_fraction = 0;    // nodes that learned within the window
  double false_positives = 0;   // declared dead while the root was alive
  int sentinels = 0;
};

std::uint64_t total_frames(core::MeshNetwork& mesh) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    sum += mesh.node(i).radio.frames_sent();
  }
  return sum;
}

Outcome run(std::size_t n, bool use_rnfd, std::uint64_t seed) {
  Scheduler sched;
  radio::Medium medium(sched, bench::default_radio(), seed);
  auto cfg = bench::node_config(core::MacKind::kCsma);
  cfg.rpl.downward_routes = !use_rnfd;  // baseline needs pongs
  core::MeshNetwork mesh(sched, medium, Rng(seed), cfg);
  mesh.build_grid(n, 22.0);
  // Root at the grid center: realistic border-router placement.
  mesh.start(n / 2 + static_cast<std::size_t>(std::sqrt(double(n))) / 2);
  sched.run_until(60_s);

  Outcome out;
  std::vector<std::unique_ptr<net::RnfdDetector>> detectors;
  std::vector<std::unique_ptr<EndToEndProbe>> probes;
  Rng rng(seed ^ 0xE4);
  auto& root = mesh.root();

  if (use_rnfd) {
    net::RnfdConfig rcfg;
    rcfg.probe_interval = kProbeInterval;
    rcfg.probe_jitter = kProbeInterval / 4;
    rcfg.gossip_interval = 2_s;
    rcfg.quorum_min = 2;
    rcfg.quorum_ratio = 0.5;
    for (std::size_t i = 0; i < mesh.size(); ++i) {
      if (&mesh.node(i) == &root) continue;
      detectors.push_back(std::make_unique<net::RnfdDetector>(
          *mesh.node(i).routing, sched, rng.fork(i), rcfg));
      detectors.back()->start();
    }
  } else {
    // Root answers pings with pongs down stored routes.
    root.routing->set_delivery_handler(
        [&root](NodeId origin, BytesView p, std::uint8_t) {
          if (!p.empty() && p[0] == 'P') {
            root.routing->send_down(origin, to_buffer("Q"));
          }
        });
    for (std::size_t i = 0; i < mesh.size(); ++i) {
      if (&mesh.node(i) == &root) continue;
      probes.push_back(std::make_unique<EndToEndProbe>(
          *mesh.node(i).routing, sched, rng.fork(i)));
      auto* probe = probes.back().get();
      mesh.node(i).routing->set_delivery_handler(
          [probe](NodeId, BytesView p, std::uint8_t) {
            if (!p.empty() && p[0] == 'Q') probe->on_pong();
          });
      probe->start();
    }
  }

  // Steady-state monitoring cost, scaled to one simulated hour.
  sched.run_until(120_s);  // detectors settle (DAOs, sentinel census)
  const std::uint64_t frames_before = total_frames(mesh);
  sched.run_until(120_s + 1800_s);
  out.frames_per_hour =
      2.0 * static_cast<double>(total_frames(mesh) - frames_before);

  if (use_rnfd) {
    for (auto& d : detectors) {
      if (d->is_sentinel()) ++out.sentinels;
    }
  }

  // False positives: anyone already convinced while the root is alive?
  std::size_t fp = 0;
  if (use_rnfd) {
    for (auto& d : detectors) {
      if (d->root_declared_dead()) ++fp;
    }
  } else {
    for (auto& p : probes) {
      if (p->declared_dead()) ++fp;
    }
  }
  out.false_positives =
      static_cast<double>(fp) / static_cast<double>(mesh.size() - 1);

  // Kill the root; measure per-node detection times.
  const Time death = sched.now();
  root.mac->stop();
  root.routing->stop();
  const Duration window = 30 * kProbeInterval;
  std::vector<double> latencies;
  std::size_t aware = 0;
  // Poll each second for newly-declared nodes.
  std::map<const void*, bool> seen;
  for (Duration t = 1_s; t <= window; t += 1_s) {
    sched.schedule_at(death + t, [&, t] {
      if (use_rnfd) {
        for (auto& d : detectors) {
          if (d->root_declared_dead() && !seen[d.get()]) {
            seen[d.get()] = true;
            latencies.push_back(to_seconds(t));
          }
        }
      } else {
        for (auto& p : probes) {
          if (p->declared_dead() && !seen[p.get()]) {
            seen[p.get()] = true;
            latencies.push_back(to_seconds(t));
          }
        }
      }
    });
  }
  sched.run_until(death + window + 1_s);
  aware = latencies.size();
  out.aware_fraction = static_cast<double>(aware) /
                       static_cast<double>(mesh.size() - 1);
  out.detect_p50_s = iiot::bench::percentile(latencies, 50);
  out.detect_p95_s = iiot::bench::percentile(latencies, 95);
  return out;
}

}  // namespace

int main() {
  iiot::bench::print_header(
      "E4: border-router failure detection — RNFD vs end-to-end probing",
      "collaborative sentinel probing with CFRC verdict sharing detects "
      "root death network-wide at a small fraction of the monitoring "
      "cost of per-node end-to-end probing (parallelism => orders of "
      "magnitude, growing with network size)");

  std::printf("%6s %-10s %6s %14s %12s %12s %8s %8s %9s\n", "nodes",
              "scheme", "sentl", "frames/hour", "p50 det[s]", "p95 det[s]",
              "aware", "falsepos", "cost rat");
  for (std::size_t n : {25, 64, 121, 225}) {
    const Outcome base = run(n, false, 11);
    const Outcome rnfd = run(n, true, 11);
    std::printf("%6zu %-10s %6s %14.0f %12.1f %12.1f %7.0f%% %7.0f%% %9s\n",
                n, "e2e-probe", "-", base.frames_per_hour,
                base.detect_p50_s, base.detect_p95_s,
                base.aware_fraction * 100.0, base.false_positives * 100.0,
                "");
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.0fx",
                  rnfd.frames_per_hour > 0
                      ? base.frames_per_hour / rnfd.frames_per_hour
                      : 0.0);
    std::printf("%6zu %-10s %6d %14.0f %12.1f %12.1f %7.0f%% %7.0f%% %9s\n",
                n, "rnfd", rnfd.sentinels, rnfd.frames_per_hour,
                rnfd.detect_p50_s, rnfd.detect_p95_s,
                rnfd.aware_fraction * 100.0, rnfd.false_positives * 100.0,
                ratio);
  }
  std::printf(
      "\nShape check: the steady-state cost ratio grows with network size\n"
      "(every extra node adds multi-hop probes to the baseline but only\n"
      "cheap gossip to RNFD), reaching orders of magnitude at hundreds of\n"
      "nodes, with comparable or better detection latency and full\n"
      "network awareness. At 121+ nodes the baseline's own probe storm\n"
      "congests the mesh so badly that nodes declare the router dead\n"
      "while it is still alive (false positives) — per-node end-to-end\n"
      "monitoring does not merely cost more, it stops working.\n");
  return 0;
}
