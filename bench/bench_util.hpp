// Shared helpers for the experiment harnesses (bench_e1 ... bench_e12).
//
// Each bench binary regenerates one experiment from DESIGN.md §3: it
// sweeps the experiment's parameter axis, prints a table of the series
// the paper's claim concerns, and states the claim being checked so the
// output is self-describing. EXPERIMENTS.md records the measured shapes.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "obs/context.hpp"
#include "runner/engine.hpp"
#include "sim/time.hpp"

namespace iiot::bench {

// ---- CLI flag helpers ("--key=value" style) ---------------------------

/// True when `arg` is `--key=<v>`; parses <v> into `out`.
inline bool flag_u64(const std::string& arg, const char* key,
                     std::uint64_t& out) {
  const std::string prefix = std::string(key) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  char* end = nullptr;
  out = std::strtoull(arg.c_str() + prefix.size(), &end, 10);
  return end != nullptr && *end == '\0';
}

inline bool flag_double(const std::string& arg, const char* key, double& out) {
  const std::string prefix = std::string(key) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  char* end = nullptr;
  out = std::strtod(arg.c_str() + prefix.size(), &end);
  return end != nullptr && *end == '\0';
}

inline bool flag_str(const std::string& arg, const char* key,
                     std::string& out) {
  const std::string prefix = std::string(key) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = arg.substr(prefix.size());
  return true;
}

// ---- engine sharding --------------------------------------------------

/// Shards `count` independent repetitions/parameter points across the
/// engine. Every repetition builds its own isolated world; results land
/// in slots keyed by index, so aggregation (best-of, tables, JSON lines)
/// is identical at any job count. fn must be callable as fn(std::size_t).
template <typename R, typename Fn>
[[nodiscard]] std::vector<R> run_sharded(runner::Engine& eng,
                                         std::size_t count, Fn&& fn) {
  std::vector<R> out(count);
  eng.run(count, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

inline void print_header(const char* experiment, const char* claim) {
  std::printf("\n==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Claim under test: %s\n", claim);
  std::printf("==================================================================\n");
}

inline double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) / 100.0 + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

/// RPL configuration paced for the chosen MAC: duty-cycled MACs need a
/// Trickle Imin no shorter than the wake interval.
inline core::NodeConfig node_config(core::MacKind mac,
                                    sim::Duration wake_interval = 500'000) {
  core::NodeConfig cfg;
  cfg.mac = mac;
  cfg.lpl.wake_interval = wake_interval;
  cfg.rimac.wake_interval = wake_interval;
  if (mac == core::MacKind::kCsma) {
    cfg.rpl.trickle = net::TrickleConfig{500'000, 8, 3};
    cfg.rpl.dao_interval = 30'000'000;
  } else {
    // Control traffic is expensive on duty-cycled MACs (a broadcast
    // occupies a full wake interval), so pace it accordingly.
    cfg.rpl.trickle =
        net::TrickleConfig{std::max<sim::Duration>(4 * wake_interval,
                                                   2'000'000),
                           8, 2};
    cfg.rpl.dao_interval = 90'000'000;
    cfg.rpl.dis_interval = 15'000'000;
    // Contention bursts cause correlated ack losses; evicting the parent
    // after only 3 of them causes repair storms whose broadcasts are
    // ruinously expensive on duty-cycled MACs.
    cfg.rpl.max_parent_failures = 6;
  }
  return cfg;
}

inline radio::PropagationConfig default_radio() {
  radio::PropagationConfig cfg;
  cfg.shadowing_sigma_db = 0.0;  // benches sweep seeds where it matters
  return cfg;
}

/// The world's full registry snapshot as a JSON object, or "{}" when no
/// obs::Context is installed. Embedding this in every BENCH_*.json run
/// line localizes a perf regression to a layer: the per-module counters
/// say *where* the extra work happened, not just that it happened.
inline std::string metrics_snapshot_json(sim::Scheduler& sched) {
  obs::MetricsRegistry* m = obs::metrics(sched);
  return m != nullptr ? m->snapshot_json() : "{}";
}

/// Appends one run line to a BENCH_*.json results file. The file keeps one
/// JSON object per line inside "runs" so appending without a JSON parser
/// stays trivial: prior run lines are carried over verbatim.
inline void append_bench_run(const std::string& path, const char* benchmark,
                             const std::string& run_line) {
  std::vector<std::string> runs;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      const auto pos = line.find_first_not_of(" \t");
      if (pos != std::string::npos &&
          line.compare(pos, 9, "{\"label\":") == 0) {
        std::string r = line.substr(pos);
        if (!r.empty() && r.back() == ',') r.pop_back();
        runs.push_back(std::move(r));
      }
    }
  }
  runs.push_back(run_line);

  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"benchmark\": \"" << benchmark << "\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    out << "    " << runs[i] << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

/// Newest run line of a BENCH_*.json results file ("" when absent) — the
/// line `--compare` baselines are read from.
inline std::string last_bench_run_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  std::string last;
  while (std::getline(in, line)) {
    const auto pos = line.find_first_not_of(" \t");
    if (pos != std::string::npos && line.compare(pos, 9, "{\"label\":") == 0) {
      last = line.substr(pos);
      if (!last.empty() && last.back() == ',') last.pop_back();
    }
  }
  return last;
}

/// Extracts the numeric value of `"key": <number>` from a run line.
inline bool bench_field(const std::string& run_line, const std::string& key,
                        double& out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = run_line.find(needle);
  if (pos == std::string::npos) return false;
  char* end = nullptr;
  out = std::strtod(run_line.c_str() + pos + needle.size(), &end);
  return end != nullptr && end != run_line.c_str() + pos + needle.size();
}

}  // namespace iiot::bench
