// E9 — Continuous safety and the comfort/energy/revenue trade
// (paper §V-B).
//
// Claims: "safety need not be considered only binary: it can be
// continuous"; "the (soft) safety margins may vary, depending on who
// occupies a given space at a given time"; "the system may deliberately
// violate these margins to minimize energy consumption"; "the revenue
// the system provider receives (or the penalties ...) can be made
// dependent on the comfort and energy savings."
//
// Setup: an 8-zone office building over 7 days of weather with diurnal
// and sub-diurnal cycles, four controllers from rigid to price-aware.
// Output: energy, cost, comfort violations, and provider revenue.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "safety/building.hpp"

namespace {

using namespace iiot;
using namespace iiot::safety;

void run_season(const char* label, WeatherModel::Params weather,
                std::uint64_t seed) {
  std::printf("\n-- %s --\n", label);
  std::printf("%-14s %10s %10s %12s %12s %10s %10s\n", "controller",
              "kWh", "cost[EUR]", "viol[K*h]", "worst[K]", "pay[EUR]",
              "net[EUR]");
  BuildingConfig cfg;
  cfg.zones = 8;
  struct Entry {
    const char* name;
    BuildingSim::ControllerFactory factory;
  };
  const Entry entries[] = {
      {"bang-bang",
       [] { return std::make_unique<BangBangController>(22.0, 0.5); }},
      {"pi-fixed", [] { return std::make_unique<PiController>(22.0); }},
      {"comfort-band",
       [] { return std::make_unique<ComfortBandController>(); }},
      {"price-aware",
       [] { return std::make_unique<PriceAwareController>(); }},
  };
  for (const auto& e : entries) {
    BuildingSim sim(cfg, weather, seed);
    const SafetyMetrics m = sim.run(7.0, e.factory);
    std::printf("%-14s %10.1f %10.2f %12.2f %12.2f %10.2f %10.2f\n",
                e.name, m.energy_kwh, m.energy_cost,
                m.violation_degree_hours, m.worst_violation_c,
                m.comfort_payment, m.revenue());
  }
}

}  // namespace

int main() {
  iiot::bench::print_header(
      "E9: HVAC safety as a continuum — comfort, energy, and revenue",
      "occupancy-aware soft margins save energy over rigid setpoints; "
      "deliberate, price-aware margin violations can raise net revenue "
      "if the penalty schedule prices comfort correctly");

  WeatherModel::Params winter;
  winter.mean_c = 2.0;
  winter.diurnal_amplitude_c = 6.0;
  winter.subdiurnal_amplitude_c = 3.0;
  run_season("cold week (mean 2 C, sub-diurnal swings)", winter, 9);

  WeatherModel::Params shoulder;
  shoulder.mean_c = 12.0;
  run_season("shoulder-season week (mean 12 C)", shoulder, 9);

  WeatherModel::Params summer;
  summer.mean_c = 26.0;
  summer.diurnal_amplitude_c = 7.0;
  run_season("hot week (mean 26 C, cooling-dominated)", summer, 9);

  std::printf(
      "\nShape check: comfort-band cuts energy versus bang-bang/PI by\n"
      "setting back empty zones while keeping violations small (pre-\n"
      "heating before occupancy); price-aware trades a bounded comfort\n"
      "penalty during peak tariff for lower energy cost — whether its\n"
      "net revenue beats comfort-band depends on the season and penalty\n"
      "rate, which is exactly the coupling §V-B describes.\n");
  return 0;
}
