// E11 — Incremental deployment across orders of magnitude
// (paper §IV intro).
//
// Claim: deployments "proceed incrementally ... it means that the system
// has to tolerate a growth even by several orders of magnitude", without
// redesign and without overprovisioning. We grow one mesh 5 → 50 → 500
// nodes through DeploymentPlan stages and check that the same protocol
// stack keeps (re-)forming: time to 95 % joined after each growth burst,
// route depth, control-message totals, and end-to-end delivery at the
// final size.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/deployment.hpp"

namespace {

using namespace iiot;
using namespace iiot::sim;  // NOLINT

}  // namespace

int main() {
  iiot::bench::print_header(
      "E11: staged rollout 5 -> 50 -> 500 nodes on an unchanged stack",
      "the design must absorb two orders of magnitude of growth without "
      "redesign: formation after each stage stays fast and delivery holds");

  Scheduler sched;
  radio::Medium medium(sched, iiot::bench::default_radio(), 17);
  auto cfg = iiot::bench::node_config(core::MacKind::kCsma);
  cfg.rpl.downward_routes = false;
  core::MeshNetwork mesh(sched, medium, Rng(17), cfg);

  // Snake layout, 20 nodes per row: each stage extends the same site.
  auto positions = [](std::size_t i) {
    const std::size_t row = i / 20;
    const std::size_t col = i % 20;
    return radio::Position{static_cast<double>(col) * 22.0,
                           static_cast<double>(row) * 22.0};
  };

  std::printf("%6s %7s %16s %9s %9s %10s\n", "stage", "nodes",
              "formation[s]", "joined", "depth", "ctrl msgs");
  std::vector<core::StageReport> reports;
  core::DeploymentPlan plan(mesh, positions);
  plan.stage(5, 60_s).stage(50, 120_s).stage(500, 300_s);
  plan.execute([&](const core::StageReport& r) {
    reports.push_back(r);
    std::printf("%6zu %7zu %16.1f %8.0f%% %9d %10llu\n", r.stage,
                r.nodes_total, to_seconds(r.formation_time),
                r.joined_fraction * 100.0, r.max_depth,
                static_cast<unsigned long long>(r.control_messages));
  });
  sched.run_until(60_s + 120_s + 300_s + 5_s);

  // Delivery check at the final size: 100 reports from random nodes.
  Rng rng(4711);
  int sent = 0, delivered = 0;
  mesh.root().routing->set_delivery_handler(
      [&](NodeId, BytesView, std::uint8_t) { ++delivered; });
  const Time t0 = sched.now();
  for (int i = 0; i < 100; ++i) {
    const auto idx = 1 + rng.below(static_cast<std::uint32_t>(
                             mesh.size() - 1));
    sched.schedule_at(t0 + static_cast<Time>(i) * 300'000, [&mesh, idx,
                                                            &sent] {
      if (mesh.node(idx).routing->send_up(to_buffer("r"))) ++sent;
    });
  }
  sched.run_until(t0 + 60_s);
  std::printf("\nfinal-size delivery: %d/%d (%.0f%%)\n", delivered, sent,
              sent > 0 ? 100.0 * delivered / sent : 0.0);
  std::printf(
      "\nShape check: each stage reaches >=95%% joined within its settle\n"
      "window; formation time grows far slower than size (Trickle-paced\n"
      "control traffic grows ~linearly in nodes, not quadratically);\n"
      "delivery at 500 nodes stays high. The same binaries, parameters\n"
      "and protocols serve every stage — growth without redesign.\n");
  return 0;
}
