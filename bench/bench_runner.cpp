// Runner engine scaling benchmark (DESIGN.md §4e).
//
// Measures wall-clock speedup of the parallel scenario-execution engine
// on the real workload it exists for: the N-scenario fuzz batch. The
// batch runs twice in one process — serially (jobs=1, the reference
// execution) and sharded across the pool — and every jobs-invariant
// artifact (failing seeds, per-seed fingerprints, report text) is diffed
// between the two runs, so the speedup number is only ever reported for
// byte-identical output.
//
//   ./bench_runner [label] [output.json] [--runs=N] [--jobs=N]
//
// --runs=N   scenarios per batch (default 200, the CI smoke batch)
// --jobs=N   parallel job count (default 0 = all cores)
//
// Appends one run line to BENCH_runner.json: serial/parallel wall
// seconds, scenarios/sec for both, speedup, and whether artifacts
// matched. Exits 1 on any artifact divergence.
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>

#include "bench_util.hpp"
#include "runner/engine.hpp"
#include "testing/batch.hpp"

namespace {

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "current";
  std::string out_path = "BENCH_runner.json";
  std::uint64_t runs = 200;
  std::uint64_t jobs = 0;  // all cores
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (iiot::bench::flag_u64(arg, "--runs", runs) ||
        iiot::bench::flag_u64(arg, "--jobs", jobs)) {
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
    if (positional == 0) {
      label = arg;
    } else {
      out_path = arg;
    }
    ++positional;
  }

  iiot::bench::print_header(
      "PERF: parallel scenario-execution engine (fuzz batch)",
      "sharded batches must scale with cores and stay byte-identical");

  iiot::testing::FuzzBatchOptions opt;
  opt.runs = runs;
  opt.shrink = false;  // measure scenario execution, not shrink re-runs

  iiot::runner::Engine serial(1);
  iiot::runner::Engine pool(static_cast<unsigned>(jobs));

  double t0 = now_seconds();
  const iiot::testing::FuzzBatchResult a =
      iiot::testing::run_fuzz_batch(opt, serial);
  const double serial_sec = now_seconds() - t0;

  t0 = now_seconds();
  const iiot::testing::FuzzBatchResult b =
      iiot::testing::run_fuzz_batch(opt, pool);
  const double parallel_sec = now_seconds() - t0;

  bool identical = a.failing_seeds == b.failing_seeds &&
                   a.fingerprints.size() == b.fingerprints.size() &&
                   a.report == b.report;
  if (identical) {
    for (std::size_t i = 0; i < a.fingerprints.size(); ++i) {
      if (!(a.fingerprints[i] == b.fingerprints[i])) {
        identical = false;
        std::printf("FAIL: fingerprint diverges at seed %llu\n",
                    static_cast<unsigned long long>(opt.seed_base + i));
        break;
      }
    }
  } else {
    std::printf("FAIL: failing seeds or report diverge between jobs=1 "
                "and jobs=%u\n",
                pool.jobs());
  }

  const double speedup = parallel_sec > 0 ? serial_sec / parallel_sec : 0;
  std::printf("%llu scenarios  jobs=1: %.2fs (%.0f/s)   jobs=%u: %.2fs "
              "(%.0f/s)   speedup x%.2f   artifacts %s\n",
              static_cast<unsigned long long>(runs), serial_sec,
              static_cast<double>(runs) / serial_sec, pool.jobs(),
              parallel_sec, static_cast<double>(runs) / parallel_sec, speedup,
              identical ? "identical" : "DIVERGED");

  std::ostringstream run;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"label\": \"%s\", \"runs\": %llu, \"jobs\": %u, "
                "\"serial_sec\": %.3f, \"parallel_sec\": %.3f, "
                "\"serial_scenarios_per_sec\": %.1f, "
                "\"parallel_scenarios_per_sec\": %.1f, "
                "\"speedup\": %.2f, \"identical\": %s, \"failing\": %zu}",
                label.c_str(), static_cast<unsigned long long>(runs),
                pool.jobs(), serial_sec, parallel_sec,
                static_cast<double>(runs) / serial_sec,
                static_cast<double>(runs) / parallel_sec, speedup,
                identical ? "true" : "false", a.failing_seeds.size());
  run << buf;
  iiot::bench::append_bench_run(out_path, "bench_runner", run.str());
  std::printf("wrote %s (label \"%s\")\n", out_path.c_str(), label.c_str());
  return identical ? 0 : 1;
}
