// A1 — Ablations of the stack's key design choices (DESIGN.md §4).
//
// Three knobs the protocols depend on, each swept in isolation:
//   1. Trickle redundancy constant k — suppression vs. repair speed.
//   2. RPL parent-switch hysteresis — route stability vs. path quality.
//   3. LPL wake interval — the energy/latency trade that underlies every
//      duty-cycling result in E1/E2.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace iiot;
using namespace iiot::sim;  // NOLINT

// ---------------------------------------------------------- 1: trickle k

void ablate_trickle_k() {
  std::printf("\n-- ablation 1: Trickle redundancy constant k "
              "(16-node grid, 10 min + global repair) --\n");
  std::printf("%4s %14s %20s\n", "k", "DIO tx total",
              "repair settle [s]");
  for (int k : {1, 2, 3, 5, 100}) {
    Scheduler sched;
    radio::Medium medium(sched, bench::default_radio(), 21);
    auto cfg = bench::node_config(core::MacKind::kCsma);
    cfg.rpl.trickle.redundancy_k = k;
    cfg.rpl.downward_routes = false;
    core::MeshNetwork mesh(sched, medium, Rng(21), cfg);
    mesh.build_grid(16, 22.0);
    mesh.start();
    sched.run_until(600_s);
    // Global repair: how long until everyone adopts the new version?
    mesh.root().routing->global_repair();
    Time settled = 0;
    for (Duration t = 500'000; t < 120_s; t += 500'000) {
      sched.schedule_at(600_s + t, [&, t] {
        if (settled != 0) return;
        bool all = true;
        for (std::size_t i = 0; i < mesh.size(); ++i) {
          if (mesh.node(i).routing->version() != 1 ||
              !mesh.node(i).routing->joined()) {
            all = false;
            break;
          }
        }
        if (all) settled = t;
      });
    }
    sched.run_until(600_s + 120_s);
    std::uint64_t dio = 0;
    for (std::size_t i = 0; i < mesh.size(); ++i) {
      dio += mesh.node(i).routing->stats().dio_tx;
    }
    std::printf("%4d %14llu %20.1f\n", k,
                static_cast<unsigned long long>(dio),
                to_seconds(settled));
  }
  std::printf("takeaway: repair settles in ~1 interval at every k on this\n"
              "dense grid, while control cost grows ~4x from k=1 to\n"
              "k=infinity — suppression is nearly free here, which is why\n"
              "Trickle defaults keep k small.\n");
}

// ------------------------------------------------------- 2: hysteresis

void ablate_hysteresis() {
  std::printf("\n-- ablation 2: parent-switch hysteresis "
              "(25-node grid with shadowing, 10 min of traffic) --\n");
  std::printf("%12s %16s %14s %12s\n", "threshold", "parent changes",
              "delivery", "mean hops");
  for (net::Rank thr : {net::Rank{0}, net::Rank{64}, net::Rank{192},
                        net::Rank{512}, net::Rank{1024}}) {
    Scheduler sched;
    radio::PropagationConfig prop;
    prop.shadowing_sigma_db = 4.0;  // rough links: ETX jitters
    radio::Medium medium(sched, prop, 77);
    auto cfg = bench::node_config(core::MacKind::kCsma);
    cfg.rpl.parent_switch_threshold = thr;
    cfg.rpl.downward_routes = false;
    core::MeshNetwork mesh(sched, medium, Rng(77), cfg);
    mesh.build_grid(25, 20.0);
    mesh.start();
    sched.run_until(30_s);

    int sent = 0, delivered = 0;
    std::uint64_t hop_sum = 0;
    mesh.root().routing->set_delivery_handler(
        [&](NodeId, BytesView, std::uint8_t hops) {
          ++delivered;
          hop_sum += hops;
        });
    Rng traffic(1);
    for (int round = 0; round < 120; ++round) {
      for (std::size_t i = 1; i < mesh.size(); ++i) {
        sched.schedule_at(
            30_s + static_cast<Time>(round) * 5_s + traffic.below(4'000'000),
            [&, i] {
              if (mesh.node(i).routing->send_up(to_buffer("x"))) ++sent;
            });
      }
    }
    sched.run_until(30_s + 120 * 5_s + 10_s);
    std::uint64_t changes = 0;
    for (std::size_t i = 0; i < mesh.size(); ++i) {
      changes += mesh.node(i).routing->stats().parent_changes;
    }
    std::printf("%12u %16llu %13.1f%% %12.2f\n", thr,
                static_cast<unsigned long long>(changes),
                sent ? 100.0 * delivered / sent : 0.0,
                delivered ? static_cast<double>(hop_sum) / delivered : 0.0);
  }
  std::printf("takeaway: zero hysteresis flaps on every ETX wiggle (churn\n"
              "without payoff); very large hysteresis freezes suboptimal\n"
              "parents (longer paths). The 192 default damps churn while\n"
              "keeping routes near-optimal.\n");
}

// ---------------------------------------------------- 3: wake interval

void ablate_wake_interval() {
  std::printf("\n-- ablation 3: LPL wake interval (4-hop line, periodic "
              "reports) --\n");
  std::printf("%12s %14s %14s %16s\n", "wake [ms]", "median e2e [ms]",
              "relay duty", "lifetime [d]");
  for (Duration wake : {125'000, 250'000, 500'000, 1'000'000, 2'000'000}) {
    Scheduler sched;
    radio::Medium medium(sched, bench::default_radio(), 31);
    core::MeshNetwork mesh(sched, medium, Rng(31),
                           bench::node_config(core::MacKind::kLpl, wake));
    mesh.build_line(5, 25.0);
    mesh.start();
    const Duration form = 120_s + 100 * wake;
    sched.run_until(form);
    std::vector<double> latencies;
    Time sent_at = 0;
    mesh.root().routing->set_delivery_handler(
        [&](NodeId, BytesView, std::uint8_t) {
          latencies.push_back(to_millis(sched.now() - sent_at));
        });
    for (int pkt = 0; pkt < 20; ++pkt) {
      sched.schedule_at(form + static_cast<Time>(pkt) * 30_s, [&] {
        sent_at = sched.now();
        mesh.node(4).routing->send_up(to_buffer("r"));
      });
    }
    const Time t0 = sched.now();
    mesh.node(2).meter.reset(t0);
    sched.run_until(form + 21 * 30_s);
    mesh.node(2).meter.settle(sched.now());
    std::printf("%12.0f %14.1f %13.2f%% %16.0f\n", to_millis(wake),
                iiot::bench::percentile(latencies, 50),
                mesh.node(2).meter.duty_cycle() * 100.0,
                mesh.node(2).meter.projected_lifetime_days(20'000.0));
  }
  std::printf("takeaway: a U-curve, not a line — short intervals burn\n"
              "energy on idle sampling, long intervals burn it on strobe\n"
              "trains (sender cost ~ wake/2 per packet), so the optimal\n"
              "interval depends on traffic rate. At one report per 30 s\n"
              "the knee is ~250-500 ms; latency grows ~hops*wake/2\n"
              "throughout. This is the classic LPL provisioning trade.\n");
}

}  // namespace

int main() {
  iiot::bench::print_header(
      "A1: ablations of the stack's design choices",
      "each knob swept in isolation: Trickle k, parent hysteresis, LPL "
      "wake interval");
  ablate_trickle_k();
  ablate_hysteresis();
  ablate_wake_interval();
  return 0;
}
