// E10 — The cost of link-layer security on constrained devices
// (paper §V-E, refs [14], [46]).
//
// Claim: standards "do include provisions for a range of secure modes
// [but] they are hardly implemented" — because every level of protection
// costs bytes on air, CPU cycles, and therefore energy and lifetime on
// battery devices. This bench quantifies the cost of every 802.15.4
// security level with real CCM* cryptography (software AES-128).
//
// Output per level: bytes of overhead, AES blocks and estimated cycles
// per protected frame, microjoules per frame, and the projected battery
// lifetime of a sensor reporting every 30 s.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "energy/meter.hpp"
#include "security/secure_link.hpp"

namespace {

using namespace iiot;
using namespace iiot::security;

constexpr std::size_t kPayload = 48;   // typical sensor report
constexpr double kCpuNjPerCycle = 0.5;
constexpr double kTxNjPerByte = 52.2 * 32.0 / 1000.0;  // 52.2 mW * 32 us/B

struct CostRow {
  std::size_t overhead_bytes = 0;
  double aes_blocks = 0;
  double cycles = 0;
  double energy_uj = 0;       // crypto + extra airtime, per frame
  double lifetime_days = 0;   // 2xAA (~20 kJ), one frame per 30 s
};

CostRow measure(SecurityLevel level) {
  AesKey key{0x42};
  SecureLink tx(key, level);
  SecureLink rx(key, level);
  constexpr int kFrames = 200;
  Buffer payload(kPayload, 0xAB);
  for (int i = 0; i < kFrames; ++i) {
    Buffer wire = tx.protect(7, payload);
    auto opened = rx.unprotect(7, wire);
    if (!opened.ok()) std::abort();
  }
  CostRow row;
  row.overhead_bytes = tx.overhead_bytes();
  row.aes_blocks = static_cast<double>(tx.aes_blocks() + rx.aes_blocks()) /
                   kFrames;
  row.cycles = row.aes_blocks * Aes128::kCyclesPerBlock;
  const double crypto_uj = row.cycles * kCpuNjPerCycle / 1000.0;
  const double airtime_uj =
      static_cast<double>(row.overhead_bytes) * kTxNjPerByte;
  row.energy_uj = crypto_uj + airtime_uj;

  // Lifetime model: baseline node duty (sampling + unsecured frame) costs
  // ~60 uJ per 30 s reporting period plus 3 uA sleep (~9 uJ/s).
  const double per_period_uj = 60.0 + row.energy_uj;
  const double sleep_w = 9e-6;
  const double avg_w = per_period_uj * 1e-6 / 30.0 + sleep_w;
  row.lifetime_days = 20'000.0 / avg_w / 86400.0;
  return row;
}

void print_table() {
  std::printf("%-14s %10s %10s %12s %12s %14s\n", "level", "ovh[B]",
              "AES blk/f", "cycles/f", "uJ/frame", "lifetime[d]");
  for (SecurityLevel level :
       {SecurityLevel::kNone, SecurityLevel::kMic32, SecurityLevel::kMic64,
        SecurityLevel::kMic128, SecurityLevel::kEnc,
        SecurityLevel::kEncMic32, SecurityLevel::kEncMic64,
        SecurityLevel::kEncMic128}) {
    const CostRow r = measure(level);
    std::printf("%-14s %10zu %10.1f %12.0f %12.2f %14.0f\n",
                level_name(level), r.overhead_bytes, r.aes_blocks, r.cycles,
                r.energy_uj, r.lifetime_days);
  }
}

// Google-benchmark micro-benchmarks: wall-clock cost of the crypto
// primitives on the build machine (complements the cycle model above).
void BM_ProtectUnprotect(benchmark::State& state) {
  const auto level = static_cast<SecurityLevel>(state.range(0));
  AesKey key{0x42};
  SecureLink tx(key, level);
  SecureLink rx(key, level);
  Buffer payload(kPayload, 0xAB);
  for (auto _ : state) {
    Buffer wire = tx.protect(7, payload);
    auto opened = rx.unprotect(7, wire);
    benchmark::DoNotOptimize(opened);
  }
  state.SetLabel(level_name(level));
}
BENCHMARK(BM_ProtectUnprotect)->DenseRange(0, 7, 1);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "\n==================================================================\n"
      "E10: per-frame cost of 802.15.4 security levels (48-byte payload)\n"
      "Claim under test: secure modes cost bytes, cycles and lifetime on\n"
      "constrained devices — the reason they are 'hardly implemented'\n"
      "==================================================================\n");
  print_table();
  std::printf(
      "\nShape check: overhead steps 0 -> 9..21 B; crypto work roughly\n"
      "doubles from MIC-only to ENC+MIC; full protection costs a modest\n"
      "but real lifetime reduction at this duty cycle — the trade gets\n"
      "worse at higher report rates, which is the adoption barrier.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
