// Construction site: administrative scalability + dependability
// (paper §IV-C and §V).
//
// Three contractors (structural, electrical, HVAC) deploy independent
// sensor networks over the same site. They share the spectrum — with a
// channel plan they coexist; the structural tenant's border router then
// fails, and its nodes detect the failure collaboratively with RNFD
// (CFRC gossip) within seconds.
//
// Run: ./example_construction_site
#include <cstdio>
#include <memory>
#include <vector>

#include "core/tenant.hpp"
#include "net/rnfd.hpp"

using namespace iiot;       // NOLINT
using namespace iiot::sim;  // NOLINT

int main() {
  Scheduler sched;
  radio::PropagationConfig prop;
  prop.shadowing_sigma_db = 0.0;
  radio::Medium medium(sched, prop, 1234);
  core::TenantManager site(sched, medium, Rng(1234));

  const char* names[] = {"structural", "electrical", "hvac"};
  core::NodeConfig ncfg;
  ncfg.rpl.trickle = net::TrickleConfig{250'000, 8, 3};
  ncfg.rpl.downward_routes = false;
  for (int t = 0; t < 3; ++t) {
    core::TenantSpec spec;
    spec.id = static_cast<TenantId>(t + 1);
    spec.name = names[t];
    spec.nodes = 10;
    spec.node_cfg = ncfg;
    site.add_tenant(spec, /*side=*/60.0, /*channels=*/{11, 15, 20});
  }
  site.start_all();

  std::printf("construction site: 3 tenants x 10 nodes, channels 11/15/20\n");
  sched.run_until(30'000'000ULL);
  for (int t = 0; t < 3; ++t) {
    std::printf("  %-11s: %4.0f%% joined on channel %u\n", names[t],
                site.network(static_cast<std::size_t>(t)).joined_fraction() * 100.0,
                site.network(static_cast<std::size_t>(t)).config().channel);
  }

  // RNFD on the structural tenant.
  auto& structural = site.network(0);
  net::RnfdConfig rcfg;
  rcfg.probe_interval = 10'000'000;
  rcfg.probe_jitter = 3'000'000;
  rcfg.gossip_interval = 1'000'000;
  std::vector<std::unique_ptr<net::RnfdDetector>> detectors;
  Rng rng(77);
  for (std::size_t i = 1; i < structural.size(); ++i) {
    detectors.push_back(std::make_unique<net::RnfdDetector>(
        *structural.node(i).routing, sched, rng.fork(i), rcfg));
    auto* det = detectors.back().get();
    const NodeId id = structural.node(i).id;
    det->set_failure_handler([&sched, id] {
      std::printf("  [%6.1fs] node %u: border router declared DEAD "
                  "(CFRC quorum)\n",
                  to_seconds(sched.now()), id);
    });
    det->start();
  }
  sched.run_until(60'000'000ULL);

  int sentinels = 0;
  for (auto& d : detectors) {
    if (d->is_sentinel()) ++sentinels;
  }
  std::printf("\nstructural tenant: %d sentinel nodes guard the border "
              "router\n",
              sentinels);

  std::printf("t=60s: structural border router loses power...\n");
  structural.root().mac->stop();
  structural.root().routing->stop();
  sched.run_until(180'000'000ULL);

  int aware = 0;
  for (auto& d : detectors) {
    if (d->root_declared_dead()) ++aware;
  }
  std::printf("\nt=180s: %d/%zu structural nodes know about the failure\n",
              aware, detectors.size());
  std::printf("other tenants were never disturbed:\n");
  for (int t = 1; t < 3; ++t) {
    std::printf("  %-11s: %4.0f%% joined, %llu foreign frames heard\n",
                names[t],
                site.network(static_cast<std::size_t>(t)).joined_fraction() * 100.0,
                [&] {
                  std::uint64_t f = 0;
                  auto& net = site.network(static_cast<std::size_t>(t));
                  for (std::size_t i = 0; i < net.size(); ++i) {
                    f += static_cast<mac::MacBase&>(*net.node(i).mac)
                             .stats()
                             .rx_foreign;
                  }
                  return static_cast<unsigned long long>(f);
                }());
  }
  return 0;
}
