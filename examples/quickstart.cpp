// Quickstart: the smallest complete iiot system.
//
// Builds the paper's three tiers in ~60 lines of user code:
//  - a 6-node low-power mesh (sensing-and-actuation tier),
//  - a rule engine on the topic bus (application-logic tier),
//  - a time-series store (data-storage tier),
// then closes the loop: a temperature sensor on node 5 trips a rule that
// actuates a fan on node 3, all over the simulated radio.
//
// Run: ./example_quickstart
#include <cstdio>

#include "core/system.hpp"

using namespace iiot;        // NOLINT
using namespace iiot::sim;   // NOLINT

int main() {
  Scheduler sched;
  core::SystemConfig scfg;
  scfg.propagation.shadowing_sigma_db = 0.0;
  core::System system(sched, /*seed=*/42, scfg);

  // Sensing-and-actuation tier: a 6-node line, node 0 is the border
  // router ("root"), CSMA MAC + RPL routing by default.
  core::NodeConfig node_cfg;
  node_cfg.rpl.trickle = net::TrickleConfig{250'000, 8, 3};
  node_cfg.rpl.dao_interval = 5'000'000;
  auto& mesh = system.add_mesh("demo", node_cfg);
  mesh.build_line(6, 25.0);
  mesh.start();
  system.bridge("demo", mesh);  // root -> topic bus -> time-series store

  // A temperature sensor on node 5, reporting every 10 s.
  double temperature = 21.0;
  system.add_periodic_sensor(mesh.node(5), 3303, 10'000'000,
                             [&temperature] { return temperature += 0.8; });

  // A fan actuator on node 3.
  system.add_actuator(mesh.node(3), 3306, [&](double percent) {
    std::printf("[%8.1fs] node 3: fan set to %.0f%%\n",
                to_seconds(sched.now()), percent);
    temperature -= 5.0;  // the fan works
  });

  // Application logic: when node 5 reports >30 C, drive the fan.
  backend::Condition cond;
  cond.topic_filter = "demo/5/3303";
  cond.op = backend::CmpOp::kGreater;
  cond.threshold = 30.0;
  backend::Action action;
  action.callback = [&](const backend::RuleFiring& f) {
    std::printf("[%8.1fs] rule '%s' fired: %s = %.1f C\n",
                to_seconds(sched.now()), f.rule_id.c_str(),
                f.topic.c_str(), f.value);
    system.actuate(mesh, /*target=*/3, /*object=*/3306, 100.0);
  };
  system.rules().add_rule("overheat", cond, action);

  std::printf("quickstart: forming the mesh and running 5 minutes...\n");
  sched.run_until(300'000'000ULL);  // 5 simulated minutes

  // Inspect the data-storage tier.
  const auto points = system.store().query("demo/5/3303", 0, sched.now());
  std::printf("\ntime-series 'demo/5/3303': %zu points stored\n",
              points.size());
  for (std::size_t i = 0; i < points.size(); i += 6) {
    std::printf("  t=%6.1fs  %.1f C\n", to_seconds(points[i].at),
                points[i].value);
  }
  std::printf("\nmesh: %zu nodes, %.0f%% joined, %.1f mJ total energy\n",
              mesh.size(), mesh.joined_fraction() * 100.0,
              mesh.total_energy_mj());
  return 0;
}
