// Smart factory: the paper's interoperability story (§III) end to end.
//
// A retrofit scenario: the plant already contains a Modbus-RTU PLC
// driving a press line, a BLE environmental sensor, and a proprietary
// vendor controller — plus a new 12-node low-power wireless mesh for
// vibration monitoring. A protocol gateway translates all of them into
// one resource model; the backend stores every measurement, and one rule
// base spans old and new equipment ("a single coherent system").
//
// Run: ./example_smart_factory
#include <cstdio>

#include "core/system.hpp"
#include "interop/gateway.hpp"
#include "interop/gatt.hpp"
#include "interop/modbus.hpp"
#include "interop/vendor_tlv.hpp"

using namespace iiot;       // NOLINT
using namespace iiot::sim;  // NOLINT
using namespace iiot::interop;

namespace {

ResourceDescriptor make_desc(std::uint16_t obj, std::uint8_t inst,
                             std::uint16_t res, const char* name,
                             bool writable) {
  ResourceDescriptor d;
  d.path = {obj, inst, res};
  d.name = name;
  d.writable = writable;
  return d;
}

}  // namespace

int main() {
  Scheduler sched;
  core::SystemConfig scfg;
  scfg.propagation.shadowing_sigma_db = 0.0;
  core::System system(sched, 7, scfg);

  // ---- legacy equipment behind the gateway ---------------------------
  ModbusRtuDevice plc(1);          // press-line PLC: spindle temp + speed
  plc.set_register(100, 4512);     // 45.12 C
  plc.set_register(200, 6000);     // 60.00 % speed
  ModbusAdapter plc_adapter(
      plc, {{make_desc(3303, 0, 5700, "spindle temp", false), 100, 100.0},
            {make_desc(3306, 0, 5851, "line speed", true), 200, 100.0}});

  GattDevice env_sensor;           // BLE hygrometer near the paint shop
  env_sensor.set_float(0x21, 24.0f);
  GattAdapter env_adapter(
      env_sensor, {{make_desc(3303, 1, 5700, "paint-shop temp", false),
                    0x21}});

  VendorTlvDevice chiller;         // proprietary chiller controller
  chiller.set_point(3, 12.5);      // coolant temperature
  chiller.set_point(5, 40.0);      // valve %
  VendorTlvAdapter chiller_adapter(
      chiller, {{make_desc(3303, 2, 5700, "coolant temp", false), 3},
                {make_desc(3306, 2, 5851, "coolant valve", true), 5}});

  GatewayConfig gcfg;
  gcfg.poll_interval = 5'000'000;
  gcfg.site = "factory";
  Gateway gateway(sched, system.bus(), gcfg);
  gateway.add_device("press", plc_adapter);
  gateway.add_device("paintshop", env_adapter);
  gateway.add_device("chiller", chiller_adapter);
  system.attach_gateway(gateway);
  gateway.start();

  // ---- new vibration-monitoring mesh ---------------------------------
  core::NodeConfig ncfg;
  ncfg.rpl.trickle = net::TrickleConfig{250'000, 8, 3};
  auto& mesh = system.add_mesh("factory-mesh", ncfg);
  mesh.build_grid(12, 24.0);
  mesh.start();
  system.bridge("factory", mesh);
  Rng vib_rng(99);
  for (std::size_t i = 1; i < mesh.size(); ++i) {
    system.add_periodic_sensor(
        mesh.node(i), 3318 /* vibration-ish */, 15'000'000,
        [&vib_rng] { return 0.2 + vib_rng.uniform() * 0.3; });
  }

  // ---- one rule base spanning legacy and new -------------------------
  // Spindle overheats -> slow the press line (Modbus write-through).
  backend::Condition hot;
  hot.topic_filter = "factory/press/3303/0/5700";
  hot.op = backend::CmpOp::kGreater;
  hot.threshold = 50.0;
  backend::Action slow;
  slow.command_topic = "cmd/press/3306/0/5851";
  slow.command_payload = "30";
  system.rules().add_rule("spindle-overheat", hot, slow);

  // Coolant too warm -> open the proprietary chiller valve.
  backend::Condition warm;
  warm.topic_filter = "factory/chiller/3303/2/5700";
  warm.op = backend::CmpOp::kGreater;
  warm.threshold = 14.0;
  backend::Action open_valve;
  open_valve.command_topic = "cmd/chiller/3306/2/5851";
  open_valve.command_payload = "85";
  system.rules().add_rule("coolant-warm", warm, open_valve);

  std::printf("smart factory: 3 legacy protocols + 1 mesh, running...\n\n");

  // Scenario: at t=60 s the spindle heats up; at t=120 s coolant warms.
  sched.schedule_at(60'000'000ULL, [&] { plc.set_register(100, 5530); });
  sched.schedule_at(120'000'000ULL, [&] { chiller.set_point(3, 15.5); });
  sched.run_until(240'000'000ULL);

  std::printf("after 4 minutes of operation:\n");
  std::printf("  press line speed (Modbus reg 200):    %.2f %% %s\n",
              plc.reg(200) / 100.0,
              plc.reg(200) == 3000 ? "(slowed by rule)" : "");
  std::printf("  chiller valve   (vendor point 5):     %.1f %% %s\n",
              *chiller.point(5),
              *chiller.point(5) == 85.0 ? "(opened by rule)" : "");
  std::printf("  rules fired: %llu\n",
              static_cast<unsigned long long>(system.rules().firings()));
  std::printf("  gateway polls: %llu (errors: %llu)\n",
              static_cast<unsigned long long>(gateway.stats().polls),
              static_cast<unsigned long long>(gateway.stats().poll_errors));
  std::printf("  stored series: %zu (legacy + mesh, one namespace)\n",
              system.store().series_count());
  for (const auto& name : system.store().series_names()) {
    const auto latest = system.store().latest(name);
    std::printf("    %-32s latest=%.2f\n", name.c_str(),
                latest ? latest->value : 0.0);
  }
  return 0;
}
