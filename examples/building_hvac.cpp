// Building HVAC: the paper's continuous-safety scenario (§V-B).
//
// An 8-zone office building over one week: compares a rigid thermostat
// with an occupancy-aware comfort-band controller and a price-aware one
// that deliberately violates soft margins during peak tariff, and prints
// the comfort / energy / revenue ledger that couples them.
//
// Run: ./example_building_hvac
#include <cstdio>
#include <memory>

#include "safety/building.hpp"

using namespace iiot::safety;  // NOLINT

namespace {

void print_ledger(const char* name, const SafetyMetrics& m) {
  std::printf("%-14s | %8.1f kWh | %8.2f EUR energy | %7.2f K*h "
              "violations (worst %.2f K) | pay %8.2f | net %8.2f EUR\n",
              name, m.energy_kwh, m.energy_cost, m.violation_degree_hours,
              m.worst_violation_c, m.comfort_payment, m.revenue());
}

}  // namespace

int main() {
  std::printf("building HVAC: 8 zones, 7 winter days, sub-diurnal "
              "weather cycles\n\n");

  WeatherModel::Params weather;
  weather.mean_c = 4.0;
  weather.diurnal_amplitude_c = 7.0;
  weather.subdiurnal_amplitude_c = 3.0;

  BuildingConfig cfg;
  cfg.zones = 8;

  {
    BuildingSim sim(cfg, weather, 2024);
    print_ledger("bang-bang", sim.run(7.0, [] {
      return std::make_unique<BangBangController>(22.0, 0.5);
    }));
  }
  {
    BuildingSim sim(cfg, weather, 2024);
    print_ledger("comfort-band", sim.run(7.0, [] {
      return std::make_unique<ComfortBandController>();
    }));
  }
  {
    BuildingSim sim(cfg, weather, 2024);
    print_ledger("price-aware", sim.run(7.0, [] {
      return std::make_unique<PriceAwareController>();
    }));
  }

  std::printf(
      "\nReading the ledger: the comfort-band controller saves energy by\n"
      "setting back empty zones and pre-heating before occupancy; the\n"
      "price-aware one additionally sheds load during peak tariff at the\n"
      "cost of deliberate, bounded comfort violations. Whether that is\n"
      "worth it depends entirely on how the contract prices comfort\n"
      "versus energy — safety as a continuous, monetized quantity.\n");
  return 0;
}
