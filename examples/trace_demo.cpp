// Observability demo: runs the quickstart world with metrics + causal
// tracing enabled and exports everything the run produced:
//
//   trace_demo_chrome.json  — open in chrome://tracing or
//                             https://ui.perfetto.dev ("Open trace file").
//                             Rows are node/layer; each sensor reading is
//                             one trace id you can follow from the app-
//                             layer origin through RPL hops, MAC retries
//                             and radio propagation to the backend
//                             publish.
//   trace_demo.jsonl        — the same records, one JSON object per line,
//                             append order: the format the golden-trace
//                             determinism tests diff byte-for-byte.
//   metrics snapshot        — printed to stdout: every counter the stack
//                             registered, keyed module.name[node].
//
// Run: ./example_trace_demo
#include <cstdio>
#include <fstream>

#include "core/system.hpp"
#include "obs/context.hpp"

using namespace iiot;        // NOLINT
using namespace iiot::sim;   // NOLINT

int main() {
  Scheduler sched;
  core::SystemConfig scfg;
  scfg.propagation.shadowing_sigma_db = 0.0;
  scfg.observability = true;  // metrics registry on every layer
  scfg.tracing = true;        // + causal spans (implies observability)
  core::System system(sched, /*seed=*/42, scfg);

  core::NodeConfig node_cfg;
  node_cfg.rpl.trickle = net::TrickleConfig{250'000, 8, 3};
  node_cfg.rpl.dao_interval = 5'000'000;
  auto& mesh = system.add_mesh("demo", node_cfg);
  mesh.build_line(6, 25.0);
  mesh.start();
  system.bridge("demo", mesh);

  // Each reading becomes one trace: origin at node 5's app layer, then
  // net/mac/radio spans per hop, then a backend publish at the root.
  double temperature = 21.0;
  system.add_periodic_sensor(mesh.node(5), 3303, 10'000'000,
                             [&temperature] { return temperature += 0.8; });

  sched.run_until(60_s);

  obs::Context* obs = system.observability();
  const auto& records = obs->tracer().records();
  std::printf("simulated 60 s: %zu trace records, %llu traces\n",
              records.size(),
              static_cast<unsigned long long>(obs->tracer().traces_started()));

  {
    std::ofstream out("trace_demo_chrome.json");
    obs->tracer().write_chrome_json(out);
  }
  {
    std::ofstream out("trace_demo.jsonl");
    obs->tracer().write_jsonl(out);
  }
  std::printf(
      "wrote trace_demo_chrome.json (chrome://tracing, ui.perfetto.dev) "
      "and trace_demo.jsonl\n\n");

  std::printf("metrics snapshot:\n%s",
              obs->metrics().snapshot_text().c_str());
  return 0;
}
