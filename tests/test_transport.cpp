// Transport-layer tests: fragmentation/reassembly corner cases the mesh
// actually produces (out-of-order arrival over multipath, duplicated
// fragments from MAC retries, partial datagrams orphaned by link loss)
// and CoAP observe recovery when a server endpoint restarts and loses its
// observer table.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "coap/endpoint.hpp"
#include "common/bytes.hpp"
#include "sim/scheduler.hpp"
#include "transport/frag.hpp"

namespace iiot::transport {
namespace {

using namespace sim;  // NOLINT: time literals

Buffer pattern_datagram(std::size_t n) {
  Buffer d(n);
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  return d;
}

// ------------------------------------------------------------ fragmentation

TEST(Fragmentation, SplitsAndLabelsEveryPiece) {
  const Buffer d = pattern_datagram(100);
  const auto frags = fragment(d, 20, 0x0701);
  // 16 payload bytes per fragment after the 4-byte header.
  ASSERT_EQ(frags.size(), 7u);
  for (std::size_t i = 0; i < frags.size(); ++i) {
    ASSERT_GE(frags[i].size(), kFragHeader);
    EXPECT_LE(frags[i].size(), 20u);
    BufReader r(frags[i]);
    EXPECT_EQ(*r.u16(), 0x0701);
    EXPECT_EQ(*r.u8(), i);
    EXPECT_EQ(*r.u8(), frags.size());
  }
}

TEST(Fragmentation, OutOfOrderArrivalReassembles) {
  Scheduler sched;
  Reassembler rasm(sched);
  const Buffer d = pattern_datagram(100);
  auto frags = fragment(d, 20, 1);
  ASSERT_GT(frags.size(), 2u);

  // Worst-case reorder: deliver the pieces back to front.
  std::reverse(frags.begin(), frags.end());
  std::optional<Buffer> whole;
  for (const Buffer& f : frags) {
    auto r = rasm.on_fragment(7, f);
    if (r.has_value()) {
      EXPECT_FALSE(whole.has_value()) << "completed more than once";
      whole = std::move(r);
    }
  }
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(*whole, d);
  EXPECT_EQ(rasm.stats().completed, 1u);
  EXPECT_EQ(rasm.stats().malformed, 0u);
  EXPECT_EQ(rasm.in_flight(), 0u);
}

TEST(Fragmentation, InterleavedSourcesKeepSeparateBuffers) {
  Scheduler sched;
  Reassembler rasm(sched);
  const Buffer da = pattern_datagram(60);
  const Buffer db = pattern_datagram(90);
  const auto fa = fragment(da, 20, 5);
  const auto fb = fragment(db, 20, 5);  // same tag, different source

  // Alternate fragments from the two sources; both must reassemble.
  std::optional<Buffer> got_a;
  std::optional<Buffer> got_b;
  const std::size_t rounds = std::max(fa.size(), fb.size());
  for (std::size_t i = 0; i < rounds; ++i) {
    if (i < fa.size()) {
      if (auto r = rasm.on_fragment(1, fa[i])) got_a = std::move(r);
    }
    if (i < fb.size()) {
      if (auto r = rasm.on_fragment(2, fb[i])) got_b = std::move(r);
    }
  }
  ASSERT_TRUE(got_a.has_value());
  ASSERT_TRUE(got_b.has_value());
  EXPECT_EQ(*got_a, da);
  EXPECT_EQ(*got_b, db);
  EXPECT_EQ(rasm.stats().completed, 2u);
  EXPECT_EQ(rasm.in_flight(), 0u);
}

TEST(Fragmentation, DuplicateFragmentsAreIdempotent) {
  Scheduler sched;
  Reassembler rasm(sched);
  const Buffer d = pattern_datagram(80);
  const auto frags = fragment(d, 24, 2);
  ASSERT_GT(frags.size(), 1u);

  // A retrying MAC can deliver every fragment twice; the duplicate copies
  // must neither corrupt the buffer nor complete the datagram early.
  std::optional<Buffer> whole;
  for (std::size_t i = 0; i < frags.size(); ++i) {
    for (int copy = 0; copy < (i == 0 ? 3 : 2); ++copy) {
      if (whole.has_value()) break;  // post-completion copies tested below
      auto r = rasm.on_fragment(9, frags[i]);
      if (r.has_value()) {
        EXPECT_EQ(i, frags.size() - 1) << "completed before all pieces";
        whole = std::move(r);
      }
    }
  }
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(*whole, d);
  EXPECT_EQ(rasm.stats().completed, 1u);
  EXPECT_EQ(rasm.in_flight(), 0u);

  // A straggler duplicate after completion looks like tag reuse: it opens
  // a fresh partial (reclaimed by timeout) but must never complete or
  // corrupt anything.
  EXPECT_FALSE(rasm.on_fragment(9, frags[0]).has_value());
  EXPECT_EQ(rasm.stats().completed, 1u);
  EXPECT_EQ(rasm.in_flight(), 1u);
}

TEST(Fragmentation, TimeoutReleasesPartialState) {
  Scheduler sched;
  Reassembler rasm(sched, /*timeout=*/5'000'000);
  const Buffer d = pattern_datagram(100);
  const auto frags = fragment(d, 20, 3);
  ASSERT_GT(frags.size(), 1u);

  // All but the last piece arrive, then the route dies.
  for (std::size_t i = 0; i + 1 < frags.size(); ++i) {
    EXPECT_FALSE(rasm.on_fragment(4, frags[i]).has_value());
  }
  EXPECT_EQ(rasm.in_flight(), 1u);

  // Past the deadline, the next multi-fragment arrival sweeps the orphan.
  sched.run_until(6_s);
  const auto other = fragment(pattern_datagram(40), 20, 99);
  EXPECT_FALSE(rasm.on_fragment(5, other[0]).has_value());
  EXPECT_EQ(rasm.stats().expired, 1u);
  EXPECT_EQ(rasm.stats().completed, 0u);

  // The straggler last piece now starts a fresh (incomplete) datagram
  // instead of completing against freed state.
  EXPECT_FALSE(rasm.on_fragment(4, frags.back()).has_value());
  EXPECT_EQ(rasm.stats().completed, 0u);
}

TEST(Fragmentation, MalformedFragmentsCountedNotCrashed) {
  Scheduler sched;
  Reassembler rasm(sched);

  Buffer truncated = {0x00};  // shorter than the header
  EXPECT_FALSE(rasm.on_fragment(1, truncated).has_value());

  Buffer zero_count;
  BufWriter wz(zero_count);
  wz.u16(7);
  wz.u8(0);
  wz.u8(0);  // count == 0
  EXPECT_FALSE(rasm.on_fragment(1, zero_count).has_value());

  Buffer index_oob;
  BufWriter wi(index_oob);
  wi.u16(7);
  wi.u8(3);
  wi.u8(2);  // index >= count
  EXPECT_FALSE(rasm.on_fragment(1, index_oob).has_value());

  EXPECT_EQ(rasm.stats().malformed, 3u);
  EXPECT_EQ(rasm.in_flight(), 0u);
}

TEST(Fragmentation, RoundTripAcrossSizesAndMtus) {
  Scheduler sched;
  Reassembler rasm(sched);
  std::uint16_t tag = 100;
  for (std::size_t size : {0u, 1u, 15u, 16u, 17u, 64u, 255u, 1000u}) {
    for (std::size_t mtu : {5u, 20u, 128u}) {
      // The one-byte index/count fields cap a datagram at 255 fragments.
      const std::size_t chunk = mtu - kFragHeader;
      if ((size + chunk - 1) / chunk > 255) continue;
      const Buffer d = pattern_datagram(size);
      std::optional<Buffer> whole;
      for (const Buffer& f : fragment(d, mtu, tag)) {
        if (auto r = rasm.on_fragment(1, f)) whole = std::move(r);
      }
      ASSERT_TRUE(whole.has_value()) << size << "/" << mtu;
      EXPECT_EQ(*whole, d) << size << "/" << mtu;
      ++tag;
    }
  }
  EXPECT_EQ(rasm.in_flight(), 0u);
  EXPECT_EQ(rasm.stats().malformed, 0u);
}

// --------------------------------------------------------- observe restart

/// Client and restartable server joined by a delayed pipe. Datagrams
/// address whichever server instance is alive at delivery time, like a
/// rebooted field device keeping its address.
struct RestartPair {
  RestartPair() : rng(42) {
    client = std::make_unique<coap::Endpoint>(
        1, sched, rng.fork(1), make_send(2), coap::CoapConfig{});
    start_server();
  }

  coap::Endpoint::SendFn make_send(NodeId to) {
    return [this, to](NodeId, Buffer bytes) {
      sched.schedule_after(10'000, [this, to, bytes = std::move(bytes)] {
        auto& dst = to == 1 ? client : server;
        if (dst) dst->on_datagram(to == 1 ? 2 : 1, bytes);
      });
      return true;
    };
  }

  void start_server() {
    server = std::make_unique<coap::Endpoint>(
        2, sched, rng.fork(++incarnation), make_send(1), coap::CoapConfig{});
    server->add_resource("temp", [this](const coap::Request&) {
      coap::Response r;
      r.payload = to_buffer(reading);
      return r;
    });
  }

  Scheduler sched;
  Rng rng;
  std::uint64_t incarnation = 1;
  std::string reading = "20.0";
  std::unique_ptr<coap::Endpoint> client;
  std::unique_ptr<coap::Endpoint> server;
};

TEST(CoapObserve, ReRegistrationAfterServerRestart) {
  RestartPair p;
  std::vector<std::string> seen;
  const auto on_notify = [&](const coap::Response& r) {
    seen.push_back(to_string(r.payload));
  };

  p.client->observe(2, "temp", on_notify);
  p.sched.run_until(1_s);
  ASSERT_EQ(seen, std::vector<std::string>{"20.0"});
  EXPECT_EQ(p.server->observer_count("temp"), 1u);

  p.reading = "21.5";
  p.server->notify_observers("temp");
  p.sched.run_until(2_s);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen.back(), "21.5");

  // The server restarts: in-RAM observer registrations are gone, so
  // notifications silently stop — the classic IIoT observe failure mode.
  p.server.reset();
  p.start_server();
  EXPECT_EQ(p.server->observer_count("temp"), 0u);
  p.reading = "23.0";
  p.server->notify_observers("temp");
  p.sched.run_until(3_s);
  EXPECT_EQ(seen.size(), 2u) << "stale observer survived the restart";

  // Client-side re-registration restores the subscription end to end.
  p.client->observe(2, "temp", on_notify);
  p.sched.run_until(4_s);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen.back(), "23.0");
  EXPECT_EQ(p.server->observer_count("temp"), 1u);

  p.reading = "24.0";
  p.server->notify_observers("temp");
  p.sched.run_until(5_s);
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen.back(), "24.0");
}

}  // namespace
}  // namespace iiot::transport
