// Dependability tests: FEC codes, voting, ARQ model, fault injection and
// reliability accounting.
#include <gtest/gtest.h>

#include <string>

#include "dependability/coding.hpp"
#include "dependability/faults.hpp"
#include "dependability/redundancy.hpp"
#include "sim/scheduler.hpp"

namespace iiot::dependability {
namespace {

using namespace sim;  // NOLINT: time literals

// ----------------------------------------------------------------- coding

TEST(Hamming, CleanRoundTrip) {
  HammingCode code;
  auto data = to_buffer("industrial-iot payload 123");
  auto coded = code.encode(data);
  auto decoded = code.decode(coded, data.size());
  EXPECT_EQ(decoded.data, data);
  EXPECT_EQ(decoded.corrections, 0);
}

TEST(Hamming, ExpandsByRate) {
  HammingCode code;
  Buffer data(100, 0x5A);
  auto coded = code.encode(data);
  // 100 bytes -> 200 nibbles -> 1400 bits -> 175 bytes.
  EXPECT_EQ(coded.size(), 175u);
}

TEST(Hamming, CorrectsSingleBitPerCodeword) {
  HammingCode code;
  auto data = to_buffer("abcdef");
  auto coded = code.encode(data);
  // Flip exactly one bit in each 7-bit codeword region (depth=1:
  // codewords are consecutive 7-bit groups).
  Buffer corrupted = coded;
  for (std::size_t word = 0; word < data.size() * 2; ++word) {
    const std::size_t bitpos = word * 7 + (word % 7);
    corrupted[bitpos / 8] ^= static_cast<std::uint8_t>(1 << (7 - bitpos % 8));
  }
  auto decoded = code.decode(corrupted, data.size());
  EXPECT_EQ(decoded.data, data);
  EXPECT_EQ(decoded.corrections, static_cast<int>(data.size() * 2));
}

TEST(Hamming, RandomSparseErrorsUsuallyCorrected) {
  HammingCode code;
  Rng rng(77);
  int recovered = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    Buffer data(20);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
    auto coded = code.encode(data);
    Buffer noisy = coded;
    inject_bit_errors(noisy, 0.005, rng);  // ~1.4 errors per packet
    if (code.decode(noisy, data.size()).data == data) ++recovered;
  }
  EXPECT_GT(recovered, 170);  // >85 % packet recovery at this BER
}

TEST(Hamming, InterleavingSurvivesBursts) {
  Rng rng(88);
  Buffer data(40);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
  int plain_ok = 0, interleaved_ok = 0;
  constexpr int kTrials = 100;
  for (int t = 0; t < kTrials; ++t) {
    HammingCode plain(1), inter(16);
    auto c1 = plain.encode(data);
    auto c2 = inter.encode(data);
    inject_burst(c1, 10, rng);  // 10-bit burst
    inject_burst(c2, 10, rng);
    if (plain.decode(c1, data.size()).data == data) ++plain_ok;
    if (inter.decode(c2, data.size()).data == data) ++interleaved_ok;
  }
  // A 10-bit burst hits >1 bit of some codeword without interleaving,
  // but at depth 16 consecutive bits belong to different codewords.
  EXPECT_EQ(interleaved_ok, kTrials);
  EXPECT_LT(plain_ok, kTrials / 2);
}

TEST(Repetition, MajorityCorrectsHeavyNoise) {
  RepetitionCode code(5);
  Rng rng(99);
  auto data = to_buffer("vote");
  auto coded = code.encode(data);
  EXPECT_EQ(coded.size(), data.size() * 5);
  int ok = 0;
  constexpr int kTrials = 100;
  for (int t = 0; t < kTrials; ++t) {
    Buffer noisy = coded;
    inject_bit_errors(noisy, 0.05, rng);
    if (code.decode(noisy, data.size()) == data) ++ok;
  }
  EXPECT_GT(ok, 90);  // 5x repetition shrugs off 5% BER
}

TEST(Repetition, EvenNForcedOdd) {
  RepetitionCode code(4);
  EXPECT_EQ(code.n(), 5);
}

TEST(Coding, BitErrorCount) {
  Buffer a{0xFF, 0x00};
  Buffer b{0xFE, 0x01};
  EXPECT_EQ(bit_errors(a, b), 2u);
  EXPECT_EQ(bit_errors(a, a), 0u);
}

// ----------------------------------------------------------------- voting

TEST(KOfNVoter, MajorityWins) {
  KOfNVoter<int> voter(2, 3);
  EXPECT_EQ(voter.vote({7, 7, 3}), 7);
  EXPECT_EQ(voter.vote({7, 3, 7}), 7);
}

TEST(KOfNVoter, NoQuorumNoAnswer) {
  KOfNVoter<int> voter(2, 3);
  EXPECT_EQ(voter.vote({1, 2, 3}), std::nullopt);
  EXPECT_EQ(voter.vote({1}), std::nullopt);
}

TEST(KOfNVoter, ToleratesMissingReplies) {
  KOfNVoter<std::string> voter(2, 4);
  EXPECT_EQ(voter.vote({"on", "on"}), "on");  // 2 of 4 replied, agree
}

TEST(MedianVote, RobustToOutlier) {
  auto v = median_vote({21.0, 21.4, 98.6}, 3);  // one stuck sensor
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 21.4);
}

TEST(MedianVote, QuorumEnforced) {
  EXPECT_EQ(median_vote({21.0}, 2), std::nullopt);
}

// -------------------------------------------------------------------- ARQ

TEST(ArqPolicy, FirstTrySuccessHasMinimalLatency) {
  ArqPolicy arq;
  Rng rng(5);
  auto o = arq.run(1.0, rng, 2'000);
  EXPECT_TRUE(o.success);
  EXPECT_EQ(o.attempts, 1);
  EXPECT_EQ(o.latency, 2'000u);
}

TEST(ArqPolicy, ZeroSuccessExhaustsAttempts) {
  ArqPolicy arq;
  arq.max_attempts = 3;
  Rng rng(6);
  auto o = arq.run(0.0, rng, 2'000);
  EXPECT_FALSE(o.success);
  EXPECT_EQ(o.attempts, 3);
  // 3 attempts + 2 waits.
  EXPECT_EQ(o.latency, 3 * 2'000u + 2 * arq.retry_spacing);
}

TEST(ArqPolicy, DeliverySaturatesWithAttempts) {
  Rng rng(7);
  auto measure = [&rng](int attempts) {
    ArqPolicy arq;
    arq.max_attempts = attempts;
    int ok = 0;
    for (int i = 0; i < 2000; ++i) {
      if (arq.run(0.5, rng, 1'000).success) ++ok;
    }
    return ok / 2000.0;
  };
  const double one = measure(1);
  const double four = measure(4);
  EXPECT_NEAR(one, 0.5, 0.05);
  EXPECT_NEAR(four, 1.0 - 0.0625, 0.02);  // 1 - 0.5^4
}

// --------------------------------------------------------- fault injection

TEST(CrashProcess, CrashAndRepairCycle) {
  Scheduler sched;
  int fails = 0, repairs = 0;
  FaultConfig cfg;
  cfg.mttf_seconds = 100.0;
  cfg.mttr_seconds = 10.0;
  CrashProcess proc(sched, Rng(11), cfg, [&] { ++fails; },
                    [&] { ++repairs; });
  proc.start();
  sched.run_until(3600_s);  // 1 simulated hour
  proc.stats().settle(sched.now());
  EXPECT_GT(fails, 10);  // ~32 expected
  EXPECT_GE(repairs, fails - 1);
  // Availability should hover near MTTF/(MTTF+MTTR) = 100/110.
  EXPECT_NEAR(proc.stats().availability(), 100.0 / 110.0, 0.08);
  EXPECT_NEAR(proc.stats().mttf_seconds(), 100.0, 40.0);
  EXPECT_NEAR(proc.stats().mttr_seconds(), 10.0, 5.0);
}

TEST(CrashProcess, NoRepairMeansPermanentFailure) {
  Scheduler sched;
  int fails = 0, repairs = 0;
  FaultConfig cfg;
  cfg.mttf_seconds = 50.0;
  cfg.repair = false;
  CrashProcess proc(sched, Rng(12), cfg, [&] { ++fails; },
                    [&] { ++repairs; });
  proc.start();
  sched.run_until(3600_s);
  EXPECT_EQ(fails, 1);
  EXPECT_EQ(repairs, 0);
  EXPECT_FALSE(proc.up());
}

TEST(CrashProcess, StopDuringRepairFreezesThenResumesOnStart) {
  Scheduler sched;
  int fails = 0, repairs = 0;
  FaultConfig cfg;
  cfg.mttf_seconds = 10.0;
  cfg.mttr_seconds = 200.0;  // long repair: easy to land inside the window
  CrashProcess proc(sched, Rng(13), cfg, [&] { ++fails; },
                    [&] { ++repairs; });
  proc.start();
  // Run until the first crash has happened but (almost surely) not the
  // repair, then freeze the process mid-repair.
  sched.run_until(60_s);
  ASSERT_EQ(fails, 1);
  ASSERT_FALSE(proc.up());
  proc.stop();
  sched.run_until(3600_s);
  EXPECT_EQ(repairs, 0);  // frozen: no repair fires while stopped
  EXPECT_FALSE(proc.up());
  // Restarting resumes from the repair side of the cycle.
  proc.start();
  sched.run_until(7200_s);
  EXPECT_GE(repairs, 1);
  EXPECT_GT(fails, 1);  // and the crash clock re-armed after repair
}

TEST(CrashProcess, RestartAfterPermanentCrashStaysDown) {
  Scheduler sched;
  int fails = 0, repairs = 0;
  FaultConfig cfg;
  cfg.mttf_seconds = 20.0;
  cfg.repair = false;
  CrashProcess proc(sched, Rng(14), cfg, [&] { ++fails; },
                    [&] { ++repairs; });
  proc.start();
  sched.run_until(600_s);
  ASSERT_EQ(fails, 1);
  ASSERT_FALSE(proc.up());
  // With repair disabled, start() must not resurrect the component —
  // permanent means permanent, even across process restarts.
  proc.start();
  sched.run_until(3600_s);
  EXPECT_EQ(fails, 1);
  EXPECT_EQ(repairs, 0);
  EXPECT_FALSE(proc.up());
}

TEST(CrashProcess, DoubleStartDoesNotDoubleFailureClock) {
  Scheduler sched;
  int fails = 0;
  FaultConfig cfg;
  cfg.mttf_seconds = 100.0;
  cfg.mttr_seconds = 1e9;  // repairs effectively never fire
  CrashProcess proc(sched, Rng(15), cfg, [&] { ++fails; }, nullptr);
  proc.start();
  proc.start();  // restart-safe: must cancel the first armed timer
  sched.run_until(3600_s);
  EXPECT_EQ(fails, 1);
}

TEST(ReliabilityStats, BackToBackFailureCycles) {
  Scheduler sched;
  FaultConfig cfg;
  cfg.mttf_seconds = 5.0;  // crash-storm regime: MTTR comparable to MTTF
  cfg.mttr_seconds = 5.0;
  CrashProcess proc(sched, Rng(16), cfg, nullptr, nullptr);
  proc.start();
  sched.run_until(3600_s);
  proc.stats().settle(sched.now());
  const auto& s = proc.stats();
  EXPECT_GT(s.failures(), 100u);  // ~360 cycles expected
  // Up and down time must partition the whole observation window.
  EXPECT_NEAR(s.availability(), 0.5, 0.1);
  EXPECT_NEAR(s.mttf_seconds(), 5.0, 2.0);
  EXPECT_NEAR(s.mttr_seconds(), 5.0, 2.0);
}

TEST(ReliabilityStats, AvailabilityMath) {
  ReliabilityStats s;
  s.start(0);
  s.record_failure(90_s);
  s.record_repair(100_s);
  s.settle(190_s);
  // 90 s up, 10 s down, then 90 s up: availability = 180/190.
  EXPECT_NEAR(s.availability(), 180.0 / 190.0, 1e-9);
  // MTTF estimator = total uptime / failures, so the censored trailing
  // 90 s of uptime counts toward the estimate.
  EXPECT_DOUBLE_EQ(s.mttf_seconds(), 180.0);
  EXPECT_DOUBLE_EQ(s.mttr_seconds(), 10.0);
}

TEST(ReliabilityStats, DoubleFailureIgnored) {
  ReliabilityStats s;
  s.start(0);
  s.record_failure(10_s);
  s.record_failure(20_s);  // already down: no-op
  EXPECT_EQ(s.failures(), 1u);
}

}  // namespace
}  // namespace iiot::dependability
