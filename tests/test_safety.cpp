// Safety/HVAC tests: plant physics, environment drivers, controller
// behaviour, and the comfort/energy/revenue accounting of bench E9.
#include <gtest/gtest.h>

#include <memory>

#include "safety/building.hpp"
#include "safety/controller.hpp"
#include "safety/environment.hpp"
#include "safety/thermal.hpp"

namespace iiot::safety {
namespace {

TEST(ZoneThermalModel, CoolsTowardOutdoorWithoutHvac) {
  ZoneThermalModel zone(ZoneParams{}, 22.0);
  for (int i = 0; i < 60 * 12; ++i) zone.step(60.0, 0.0, 0, 0.0);
  EXPECT_LT(zone.temperature_c(), 10.0);  // drifted toward 0 °C outside
  EXPECT_GT(zone.temperature_c(), -1.0);  // but not past it
}

TEST(ZoneThermalModel, HeatingRaisesTemperature) {
  ZoneThermalModel zone(ZoneParams{}, 18.0);
  for (int i = 0; i < 60; ++i) zone.step(60.0, 5.0, 0, 5000.0);
  EXPECT_GT(zone.temperature_c(), 18.5);
}

TEST(ZoneThermalModel, PowerClampedToEquipmentLimits) {
  ZoneParams p;
  p.max_heat_w = 1000.0;
  ZoneThermalModel zone(p, 20.0);
  EXPECT_DOUBLE_EQ(zone.step(60.0, 10.0, 0, 99999.0), 1000.0);
  EXPECT_DOUBLE_EQ(zone.step(60.0, 10.0, 0, -99999.0), -p.max_cool_w);
}

TEST(ZoneThermalModel, OccupantsAddHeat) {
  ZoneThermalModel a(ZoneParams{}, 20.0), b(ZoneParams{}, 20.0);
  for (int i = 0; i < 60; ++i) {
    a.step(60.0, 10.0, 0, 0.0);
    b.step(60.0, 10.0, 8, 0.0);
  }
  EXPECT_GT(b.temperature_c(), a.temperature_c());
}

TEST(WeatherModel, DiurnalSwingPresent) {
  WeatherModel::Params p;
  p.noise_sigma_c = 0.0;
  WeatherModel w(p, 1);
  double lo = 1e9, hi = -1e9;
  for (double t = 0; t < 86400; t += 600) {
    const double v = w.outdoor_c(t);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi - lo, 10.0);  // diurnal 8 + subdiurnal 3
}

TEST(WeatherModel, SubDiurnalCyclesVisible) {
  WeatherModel::Params p;
  p.noise_sigma_c = 0.0;
  p.diurnal_amplitude_c = 0.0;  // isolate the sub-diurnal component
  WeatherModel w(p, 1);
  // 4-hour period: peak near t=1h, trough near t=3h.
  EXPECT_GT(w.outdoor_c(3600), w.outdoor_c(3 * 3600));
}

TEST(OccupancySchedule, OfficeHoursOnly) {
  OccupancySchedule occ(8);
  EXPECT_EQ(occ.occupants(0, 3 * 3600.0), 0);        // 3 am
  EXPECT_GT(occ.occupants(0, 10 * 3600.0), 0);       // 10 am weekday
  EXPECT_EQ(occ.occupants(0, 5 * 86400.0 + 10 * 3600.0), 0);  // Saturday
}

TEST(OccupancySchedule, LunchDip) {
  OccupancySchedule occ(8);
  EXPECT_LT(occ.occupants(0, 12.5 * 3600.0), occ.occupants(0, 10 * 3600.0));
}

TEST(TariffModel, PeakShoulderNight) {
  TariffModel t;
  EXPECT_GT(t.price_per_kwh(17 * 3600.0), t.price_per_kwh(10 * 3600.0));
  EXPECT_GT(t.price_per_kwh(10 * 3600.0), t.price_per_kwh(2 * 3600.0));
}

TEST(BangBang, RegulatesAroundSetpoint) {
  ZoneThermalModel zone(ZoneParams{}, 16.0);
  BangBangController ctl(22.0, 0.5);
  for (int i = 0; i < 60 * 24; ++i) {
    ControlContext ctx;
    ctx.zone_temp_c = zone.temperature_c();
    ctx.outdoor_c = 5.0;
    ctx.max_heat_w = 6000.0;
    ctx.max_cool_w = 6000.0;
    zone.step(60.0, 5.0, 0, ctl.control(ctx));
  }
  EXPECT_NEAR(zone.temperature_c(), 22.0, 1.2);
}

TEST(Pi, ConvergesToSetpointSmoothly) {
  ZoneThermalModel zone(ZoneParams{}, 16.0);
  PiController ctl(22.0);
  for (int i = 0; i < 60 * 24; ++i) {
    ControlContext ctx;
    ctx.zone_temp_c = zone.temperature_c();
    ctx.outdoor_c = 5.0;
    ctx.max_heat_w = 6000.0;
    ctx.max_cool_w = 6000.0;
    ctx.dt_s = 60.0;
    zone.step(60.0, 5.0, 0, ctl.control(ctx));
  }
  EXPECT_NEAR(zone.temperature_c(), 22.0, 0.6);
}

TEST(ComfortBand, SetbackSavesEnergyVersusFixedSetpoint) {
  BuildingConfig cfg;
  cfg.zones = 4;
  WeatherModel::Params wp;  // default mild winter-ish weather
  auto run_energy = [&](const BuildingSim::ControllerFactory& f) {
    BuildingSim sim(cfg, wp, 42);
    return sim.run(3.0, f);
  };
  const auto fixed = run_energy([] {
    return std::make_unique<BangBangController>(22.0, 0.5);
  });
  const auto band = run_energy([] {
    return std::make_unique<ComfortBandController>();
  });
  EXPECT_LT(band.energy_kwh, fixed.energy_kwh * 0.9);
}

TEST(ComfortBand, KeepsOccupiedViolationsLow) {
  BuildingConfig cfg;
  cfg.zones = 4;
  WeatherModel::Params wp;
  BuildingSim sim(cfg, wp, 43);
  const auto m = sim.run(3.0, [] {
    return std::make_unique<ComfortBandController>();
  });
  EXPECT_GT(m.occupied_hours, 50.0);
  EXPECT_LT(m.violation_fraction(), 0.30);
}

TEST(PriceAware, SavesPeakEnergyAtBoundedComfortCost) {
  BuildingConfig cfg;
  cfg.zones = 6;
  WeatherModel::Params wp;
  wp.mean_c = 4.0;  // cold spell: heating matters at peak
  auto run_with = [&](const BuildingSim::ControllerFactory& f) {
    BuildingSim sim(cfg, wp, 44);
    return sim.run(5.0, f);
  };
  const auto band = run_with([] {
    return std::make_unique<ComfortBandController>();
  });
  const auto price = run_with([] {
    return std::make_unique<PriceAwareController>();
  });
  EXPECT_LT(price.energy_cost, band.energy_cost);
  // Deliberate violations happen, but stay bounded.
  EXPECT_LT(price.worst_violation_c, 3.5);
}

TEST(BuildingSim, RevenueAccountingConsistent) {
  BuildingConfig cfg;
  cfg.zones = 2;
  WeatherModel::Params wp;
  BuildingSim sim(cfg, wp, 45);
  const auto m = sim.run(2.0, [] {
    return std::make_unique<ComfortBandController>();
  });
  EXPECT_NEAR(m.revenue(),
              m.comfort_payment - m.violation_penalty - m.energy_cost,
              1e-9);
  EXPECT_GT(m.energy_kwh, 0.0);
  EXPECT_GT(m.comfort_payment, 0.0);
}

TEST(BuildingSim, DeterministicForSameSeed) {
  BuildingConfig cfg;
  cfg.zones = 2;
  WeatherModel::Params wp;
  auto run_once = [&] {
    BuildingSim sim(cfg, wp, 46);
    return sim.run(1.0, [] {
      return std::make_unique<ComfortBandController>();
    });
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.energy_kwh, b.energy_kwh);
  EXPECT_DOUBLE_EQ(a.revenue(), b.revenue());
}

}  // namespace
}  // namespace iiot::safety
