// Sharded backend tier tests (DESIGN.md §4g): consistent-hash ring
// rebalance, shard routing, and differential suites that pin the sharded
// store/bus to the single-shard implementations as byte-exact oracles at
// several shard counts and worker counts.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "backend/registry.hpp"
#include "backend/shard_map.hpp"
#include "backend/sharded.hpp"
#include "backend/timeseries.hpp"
#include "backend/topic_bus.hpp"
#include "core/system.hpp"
#include "runner/engine.hpp"
#include "sim/scheduler.hpp"

namespace iiot::backend {
namespace {

struct Lcg {
  std::uint64_t s;
  explicit Lcg(std::uint64_t seed) : s(seed) {}
  std::uint64_t next() {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 17;
  }
  double unit() {
    return static_cast<double>(next() & 0xffffff) /
           static_cast<double>(0x1000000);
  }
};

[[nodiscard]] bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

[[nodiscard]] std::string payload_str(BytesView p) {
  return {reinterpret_cast<const char*>(p.data()), p.size()};
}

// ------------------------------------------------------- hash ring

TEST(HashRing, PrehashedLookupMatchesStringLookup) {
  ConsistentHashRing ring(64);
  for (int i = 0; i < 8; ++i) ring.add_node("node-" + std::to_string(i));
  Lcg rng(7);
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key-" + std::to_string(rng.next() % 10'000);
    const auto by_name = ring.owner(key);
    const auto slot = ring.owner_slot(ConsistentHashRing::hash(key));
    ASSERT_TRUE(by_name.has_value());
    ASSERT_TRUE(slot.has_value());
    EXPECT_EQ(*by_name, ring.node_name(*slot));
  }
}

TEST(HashRing, SlotsAreDenseInRegistrationOrder) {
  ConsistentHashRing ring(32);
  EXPECT_EQ(ring.add_node("a"), 0u);
  EXPECT_EQ(ring.add_node("b"), 1u);
  EXPECT_EQ(ring.add_node("c"), 2u);
  EXPECT_EQ(ring.node_count(), 3u);
  EXPECT_EQ(ring.node_name(1), "b");
}

TEST(HashRing, AddIsIdempotent) {
  ConsistentHashRing ring(32);
  const auto slot = ring.add_node("a");
  ring.add_node("b");
  EXPECT_EQ(ring.add_node("a"), slot);  // same slot, no double count
  EXPECT_EQ(ring.node_count(), 2u);
  // Placement unchanged by the re-add.
  EXPECT_EQ(ring.owner("some-key"), ring.owner("some-key"));
}

TEST(HashRing, RemovalOnlyMovesRemovedNodesKeys) {
  ConsistentHashRing ring(64);
  for (int i = 0; i < 6; ++i) ring.add_node("node-" + std::to_string(i));
  std::map<std::string, std::string> before;
  for (int i = 0; i < 2'000; ++i) {
    const std::string key = "k" + std::to_string(i);
    before[key] = *ring.owner(key);
  }
  ring.remove_node("node-3");
  EXPECT_EQ(ring.node_count(), 5u);
  int moved = 0;
  for (const auto& [key, owner] : before) {
    const auto now = ring.owner(key);
    ASSERT_TRUE(now.has_value());
    EXPECT_NE(*now, "node-3");
    if (owner == "node-3") {
      ++moved;
    } else {
      // Consistent hashing: keys on surviving nodes must not move.
      EXPECT_EQ(*now, owner) << key;
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(HashRing, AddOnlyClaimsKeysFromExistingNodes) {
  ConsistentHashRing ring(64);
  ring.add_node("a");
  ring.add_node("b");
  std::map<std::string, std::string> before;
  for (int i = 0; i < 2'000; ++i) {
    const std::string key = "k" + std::to_string(i);
    before[key] = *ring.owner(key);
  }
  ring.add_node("c");
  int claimed = 0;
  for (const auto& [key, owner] : before) {
    const auto now = *ring.owner(key);
    if (now != owner) {
      EXPECT_EQ(now, "c") << "key moved between surviving nodes: " << key;
      ++claimed;
    }
  }
  EXPECT_GT(claimed, 0);  // the new node takes a share
}

TEST(HashRing, ConfigurableVnodesImproveBalance) {
  for (const int vnodes : {8, 128}) {
    ConsistentHashRing ring(vnodes);
    for (int i = 0; i < 4; ++i) ring.add_node("node-" + std::to_string(i));
    std::map<std::string, int> load;
    for (int i = 0; i < 8'000; ++i) {
      ++load[*ring.owner("key-" + std::to_string(i))];
    }
    EXPECT_EQ(load.size(), 4u) << "vnodes=" << vnodes;
  }
  // High vnode count keeps every node within a sane band of fair share.
  ConsistentHashRing ring(128);
  for (int i = 0; i < 4; ++i) ring.add_node("node-" + std::to_string(i));
  std::map<std::string, int> load;
  for (int i = 0; i < 8'000; ++i) {
    ++load[*ring.owner("key-" + std::to_string(i))];
  }
  for (const auto& [node, n] : load) {
    EXPECT_GT(n, 8'000 / 4 / 3) << node;  // > 1/3 of fair share
    EXPECT_LT(n, 3 * 8'000 / 4) << node;  // < 3x fair share
  }
}

TEST(HashRing, RemovedRingReturnsNulloptSlot) {
  ConsistentHashRing ring(16);
  ring.add_node("a");
  ring.remove_node("a");
  EXPECT_FALSE(ring.owner("x").has_value());
  EXPECT_FALSE(ring.owner_slot(ConsistentHashRing::hash("x")).has_value());
}

// ------------------------------------------------------- shard map

TEST(ShardMap, FirstLevelExtraction) {
  EXPECT_EQ(ShardMap::first_level("site1/3/3303"), "site1");
  EXPECT_EQ(ShardMap::first_level("flat"), "flat");
  EXPECT_EQ(ShardMap::first_level("/leading"), "");
  EXPECT_EQ(ShardMap::first_level(""), "");
}

TEST(ShardMap, SingleShardRoutesEverythingToZero) {
  ShardMap map(1);
  EXPECT_EQ(map.shard_of_topic("a/b/c"), 0u);
  EXPECT_EQ(map.shard_of_topic("zzz"), 0u);
}

TEST(ShardMap, SameSiteAlwaysSameShard) {
  ShardMap map(4);
  Lcg rng(11);
  for (int i = 0; i < 200; ++i) {
    const std::string site = "site" + std::to_string(rng.next() % 40);
    const auto s = map.shard_of_key(site);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(map.shard_of_topic(site + "/1/3303"), s);
    EXPECT_EQ(map.shard_of_topic(site + "/17/9"), s);
  }
}

TEST(ShardMap, PlacementIsStableAcrossInstances) {
  ShardMap a(8);
  ShardMap b(8);
  for (int i = 0; i < 100; ++i) {
    const std::string t = "site" + std::to_string(i) + "/1/2";
    EXPECT_EQ(a.shard_of_topic(t), b.shard_of_topic(t));
  }
}

// ------------------------------------------------- sharded store diff

struct StoreRig {
  TimeSeriesStore oracle;
  ShardedStore sharded;
  std::vector<std::string> series;
  std::vector<SeriesId> oracle_ids;
  std::vector<ShardedStore::SeriesRef> refs;

  StoreRig(std::uint32_t shards, runner::Engine* pool, std::size_t n_series,
           RetentionPolicy pol = {})
      : oracle(pol), sharded(shards, pol, pool) {
    for (std::size_t i = 0; i < n_series; ++i) {
      series.push_back("site" + std::to_string(i % 13) + "/" +
                       std::to_string(i / 13) + "/3303");
      oracle_ids.push_back(oracle.intern(series.back()));
      refs.push_back(sharded.intern(series.back()));
    }
  }

  void append_everywhere(std::size_t i, sim::Time at, double v) {
    oracle.append(oracle_ids[i], at, v);
    sharded.append(refs[i], at, v);
  }

  void expect_equal(sim::Time from, sim::Time to, sim::Duration bucket) {
    ASSERT_EQ(oracle.series_count(), sharded.series_count());
    EXPECT_EQ(oracle.total_appended(), sharded.total_appended());
    EXPECT_EQ(oracle.series_names(), sharded.series_names());
    for (std::size_t i = 0; i < series.size(); ++i) {
      SCOPED_TRACE(series[i]);
      EXPECT_EQ(oracle.points(oracle_ids[i]), sharded.points(refs[i]));
      const auto la = oracle.latest(oracle_ids[i]);
      const auto lb = sharded.latest(refs[i]);
      ASSERT_EQ(la.has_value(), lb.has_value());
      if (la) {
        EXPECT_EQ(la->at, lb->at);
        EXPECT_TRUE(bits_equal(la->value, lb->value));
      }
      const auto qa = oracle.query(oracle_ids[i], from, to);
      const auto qb = sharded.query(refs[i], from, to);
      ASSERT_EQ(qa.size(), qb.size());
      for (std::size_t k = 0; k < qa.size(); ++k) {
        EXPECT_EQ(qa[k].at, qb[k].at);
        EXPECT_TRUE(bits_equal(qa[k].value, qb[k].value));
      }
      const auto da = oracle.downsample(oracle_ids[i], from, to, bucket);
      const auto db = sharded.downsample(refs[i], from, to, bucket);
      ASSERT_EQ(da.size(), db.size());
      for (std::size_t k = 0; k < da.size(); ++k) {
        EXPECT_EQ(da[k].at, db[k].at);
        EXPECT_TRUE(bits_equal(da[k].value, db[k].value));
      }
      const auto aa = oracle.aggregate(oracle_ids[i], from, to);
      const auto ab = sharded.aggregate(refs[i], from, to);
      EXPECT_EQ(aa.count, ab.count);
      EXPECT_TRUE(bits_equal(aa.sum, ab.sum));
      EXPECT_TRUE(bits_equal(aa.min, ab.min));
      EXPECT_TRUE(bits_equal(aa.max, ab.max));
    }
  }
};

TEST(ShardedStoreDiff, MatchesSingleStoreAtManyShardAndWorkerCounts) {
  for (const std::uint32_t shards : {1u, 2u, 3u, 4u, 7u}) {
    for (const unsigned workers : {1u, 2u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " workers=" + std::to_string(workers));
      runner::Engine pool(workers);
      StoreRig rig(shards, &pool, 39);
      Lcg rng(100 + shards);
      sim::Time t = 0;
      for (int round = 0; round < 4'000; ++round) {
        t += 1 + (rng.next() % 5);
        rig.append_everywhere(rng.next() % rig.series.size(), t,
                              rng.unit() * 100.0 - 50.0);
      }
      rig.expect_equal(0, t + 1, 257);
      rig.expect_equal(t / 3, 2 * t / 3, 64);  // interior range
    }
  }
}

TEST(ShardedStoreDiff, BulkAppendMatchesSerialAppends) {
  for (const unsigned workers : {1u, 2u, 4u}) {
    runner::Engine pool(workers);
    StoreRig rig(4, &pool, 26);
    Lcg rng(55);
    // Build one big bulk batch: contiguous per-series slices.
    std::vector<std::vector<Point>> data(rig.series.size());
    sim::Time t = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const std::size_t n = 100 + rng.next() % 900;
      for (std::size_t k = 0; k < n; ++k) {
        t += 1;
        data[i].push_back({t, rng.unit() * 10.0});
      }
    }
    std::vector<ShardedStore::Slice> slices;
    for (std::size_t i = 0; i < data.size(); ++i) {
      for (const Point& p : data[i]) {
        rig.oracle.append(rig.oracle_ids[i], p.at, p.value);
      }
      slices.push_back({rig.refs[i], data[i].data(), data[i].size()});
    }
    rig.sharded.append_bulk(slices);
    EXPECT_EQ(rig.sharded.stats().bulk_calls, 1u);
    EXPECT_EQ(rig.sharded.stats().bulk_points,
              rig.sharded.total_appended());
    rig.expect_equal(0, t + 1, 101);
  }
}

TEST(ShardedStoreDiff, UnknownAndInvalidRefsAreInert) {
  ShardedStore store(4);
  EXPECT_EQ(store.find("never/registered/1"), ShardedStore::kNoSeries);
  EXPECT_FALSE(store.latest(ShardedStore::kNoSeries).has_value());
  EXPECT_TRUE(store.query(ShardedStore::kNoSeries, 0, 100).empty());
  EXPECT_EQ(store.points(ShardedStore::kNoSeries), 0u);
  store.append(ShardedStore::kNoSeries, 1, 2.0);  // dropped, no crash
  EXPECT_EQ(store.total_appended(), 0u);
  const auto pa = store.aggregate(ShardedStore::kNoSeries, 0, 100);
  EXPECT_EQ(pa.count, 0u);
}

TEST(ShardedStoreDiff, StringShimsMatchAndAreCounted) {
  ShardedStore store(3);
  store.append(std::string("site1/1/1"), 5, 2.5);
  store.append(std::string("site2/1/1"), 6, 3.5);
  EXPECT_EQ(store.stats().string_appends, 2u);
  EXPECT_EQ(store.points(std::string("site1/1/1")), 1u);
  ASSERT_TRUE(store.latest(std::string("site2/1/1")).has_value());
  EXPECT_DOUBLE_EQ(store.latest(std::string("site2/1/1"))->value, 3.5);
  EXPECT_EQ(store.query(std::string("site1/1/1"), 0, 10).size(), 1u);
  EXPECT_EQ(store.downsample(std::string("site1/1/1"), 0, 10, 5).size(),
            1u);
}

// ------------------------------------------------- cross-shard merge

TEST(ShardedMerge, AggregateManyIsBitIdenticalAcrossShardCounts) {
  // Adversarial floats: values spanning ~12 orders of magnitude make the
  // fold order observable — any shard-count-dependent merge order would
  // change the sum's final ulp.
  const std::size_t n_series = 41;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < n_series; ++i) {
    names.push_back("site" + std::to_string(i % 17) + "/" +
                    std::to_string(i) + "/7");
  }
  std::optional<agg::PartialAggregate> first;
  for (const std::uint32_t shards : {1u, 2u, 4u, 5u, 8u}) {
    for (const unsigned workers : {1u, 3u}) {
      runner::Engine pool(workers);
      ShardedStore store(shards, {}, &pool);
      std::vector<ShardedStore::SeriesRef> refs;
      Lcg rng(9);  // same stream for every config
      sim::Time t = 0;
      for (const std::string& name : names) {
        refs.push_back(store.intern(name));
      }
      for (int round = 0; round < 5'000; ++round) {
        t += 1;
        const double mag = static_cast<double>(1ULL << (rng.next() % 40));
        store.append(refs[round % refs.size()], t,
                     (rng.unit() - 0.5) * mag);
      }
      const auto total = store.aggregate_many(refs, 0, t + 1);
      if (!first) {
        first = total;
        EXPECT_GT(total.count, 0u);
      } else {
        EXPECT_EQ(total.count, first->count);
        EXPECT_TRUE(bits_equal(total.sum, first->sum));
        EXPECT_TRUE(bits_equal(total.min, first->min));
        EXPECT_TRUE(bits_equal(total.max, first->max));
      }
      EXPECT_EQ(store.stats().merged_partials, refs.size());
    }
  }
}

TEST(ShardedMerge, EmptyShardsContributeNothing) {
  // 8 shards, 2 series: most shards hold no data at all.
  ShardedStore store(8);
  const auto a = store.intern("siteA/1/1");
  const auto b = store.intern("siteB/1/1");
  store.append(a, 1, 10.0);
  store.append(b, 2, 30.0);
  const ShardedStore::SeriesRef refs[] = {a, b};
  const auto total = store.aggregate_many(refs, 0, 10);
  EXPECT_EQ(total.count, 2u);
  EXPECT_DOUBLE_EQ(total.sum, 40.0);
  EXPECT_DOUBLE_EQ(total.min, 10.0);
  EXPECT_DOUBLE_EQ(total.max, 30.0);
}

TEST(ShardedMerge, AllSeriesOnOneShardSkew) {
  // One site → everything on a single shard; parity must still hold and
  // the other shards stay empty.
  runner::Engine pool(2);
  TimeSeriesStore oracle;
  ShardedStore store(4, {}, &pool);
  std::vector<SeriesId> oids;
  std::vector<ShardedStore::SeriesRef> refs;
  for (int i = 0; i < 9; ++i) {
    const std::string name = "onlysite/" + std::to_string(i) + "/3303";
    oids.push_back(oracle.intern(name));
    refs.push_back(store.intern(name));
  }
  for (std::size_t i = 1; i < refs.size(); ++i) {
    EXPECT_EQ(ShardedStore::shard_of(refs[i]),
              ShardedStore::shard_of(refs[0]));
  }
  Lcg rng(3);
  for (int round = 0; round < 3'000; ++round) {
    const std::size_t i = rng.next() % refs.size();
    const auto t = static_cast<sim::Time>(round + 1);
    const double v = rng.unit() * 7.0;
    oracle.append(oids[i], t, v);
    store.append(refs[i], t, v);
  }
  agg::PartialAggregate want;
  for (const SeriesId id : oids) want.merge(oracle.aggregate(id, 0, 4'000));
  const auto got = store.aggregate_many(refs, 0, 4'000);
  EXPECT_EQ(got.count, want.count);
  EXPECT_TRUE(bits_equal(got.sum, want.sum));
  std::size_t empty_shards = 0;
  for (std::uint32_t s = 0; s < store.shard_count(); ++s) {
    if (store.shard(s).series_count() == 0) ++empty_shards;
  }
  EXPECT_EQ(empty_shards, store.shard_count() - 1);
}

TEST(ShardedMerge, MixedInvalidRefsYieldEmptyPartials) {
  ShardedStore store(4);
  const auto a = store.intern("siteA/1/1");
  store.append(a, 1, 5.0);
  const ShardedStore::SeriesRef refs[] = {ShardedStore::kNoSeries, a,
                                          ShardedStore::kNoSeries};
  agg::PartialAggregate parts[3];
  store.aggregate_each(refs, 0, 10, parts);
  EXPECT_EQ(parts[0].count, 0u);
  EXPECT_EQ(parts[1].count, 1u);
  EXPECT_EQ(parts[2].count, 0u);
  const auto total = store.aggregate_many(refs, 0, 10);
  EXPECT_EQ(total.count, 1u);
  EXPECT_DOUBLE_EQ(total.sum, 5.0);
}

TEST(ShardedMerge, RetentionExpiringWholeShardKeepsParity) {
  // Retention by age: the lone series of one shard goes entirely stale
  // between two aggregates while another shard keeps fresh data.
  const RetentionPolicy pol{.max_age = 100, .max_points = 0};
  runner::Engine pool(2);
  StoreRig rig(4, &pool, 7, pol);
  for (std::size_t i = 0; i < rig.series.size(); ++i) {
    for (sim::Time t = 1; t <= 90; t += 3) {
      rig.append_everywhere(i, t, static_cast<double>(t) * 0.5);
    }
  }
  rig.expect_equal(0, 200, 16);
  // Advance only series 0 far past max_age: everything else on its shard
  // (and nothing elsewhere) is evicted when its own series appends.
  for (sim::Time t = 500; t <= 520; ++t) {
    rig.append_everywhere(0, t, 1.0);
  }
  rig.expect_equal(0, 600, 32);
  // Series 0's old chunks are gone on both sides.
  const auto q = rig.sharded.query(rig.refs[0], 0, 100);
  EXPECT_TRUE(q.empty());
  const auto total_before =
      rig.sharded.aggregate_many(rig.refs, 0, 600);
  agg::PartialAggregate want;
  for (const SeriesId id : rig.oracle_ids) {
    want.merge(rig.oracle.aggregate(id, 0, 600));
  }
  EXPECT_EQ(total_before.count, want.count);
  EXPECT_TRUE(bits_equal(total_before.sum, want.sum));
}

// --------------------------------------------------- sharded bus diff

struct BusRig {
  TopicBus single;
  ShardedBus sharded;
  // Global delivery logs: (sub index, topic=payload) in delivery order.
  std::vector<std::pair<int, std::string>> single_log;
  std::vector<std::pair<int, std::string>> sharded_log;
  std::vector<TopicBus::SubId> single_ids;
  std::vector<ShardedBus::SubId> sharded_ids;

  explicit BusRig(std::uint32_t shards, runner::Engine* pool = nullptr)
      : sharded(shards, pool) {}

  int subscribe(const std::string& filter) {
    const int k = static_cast<int>(single_ids.size());
    single_ids.push_back(
        single.subscribe(filter, [this, k](const std::string& t,
                                           BytesView p) {
          single_log.emplace_back(k, t + "=" + payload_str(p));
        }));
    sharded_ids.push_back(
        sharded.subscribe(filter, [this, k](const std::string& t,
                                            BytesView p) {
          sharded_log.emplace_back(k, t + "=" + payload_str(p));
        }));
    return k;
  }

  void unsubscribe(int k) {
    single.unsubscribe(single_ids[k]);
    sharded.unsubscribe(sharded_ids[k]);
  }

  void publish(const std::string& topic, const std::string& payload) {
    single.publish(topic, payload);
    sharded.publish(topic, payload);
  }

  void expect_logs_equal() {
    ASSERT_EQ(single_log.size(), sharded_log.size());
    for (std::size_t i = 0; i < single_log.size(); ++i) {
      EXPECT_EQ(single_log[i], sharded_log[i]) << "at delivery " << i;
    }
    EXPECT_EQ(single.delivered(), sharded.delivered());
    EXPECT_EQ(single.published(), sharded.published());
  }
};

TEST(ShardedBusDiff, DeliveryOrderMatchesSingleBus) {
  for (const std::uint32_t shards : {1u, 2u, 4u, 7u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    BusRig rig(shards);
    Lcg rng(42);
    // Mixed subscription population: exact, literal-rooted wildcards,
    // and wildcard-rooted catch-alls interleaved with publishes and
    // unsubscribes.
    std::vector<int> live;
    for (int step = 0; step < 2'500; ++step) {
      const auto roll = rng.next() % 100;
      const std::string site = "site" + std::to_string(rng.next() % 9);
      if (roll < 8) {
        const auto kind = rng.next() % 4;
        std::string filter;
        if (kind == 0) {
          filter = site + "/" + std::to_string(rng.next() % 4) + "/3303";
        } else if (kind == 1) {
          filter = site + "/+/3303";
        } else if (kind == 2) {
          filter = site + "/#";
        } else {
          filter = (rng.next() % 2) ? "+/+/#" : "#";
        }
        live.push_back(rig.subscribe(filter));
      } else if (roll < 12 && !live.empty()) {
        const std::size_t pick = rng.next() % live.size();
        rig.unsubscribe(live[pick]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        rig.publish(site + "/" + std::to_string(rng.next() % 4) + "/3303",
                    std::to_string(rng.next() % 1'000));
      }
    }
    rig.expect_logs_equal();
    EXPECT_EQ(rig.single.subscription_count(),
              rig.sharded.subscription_count());
  }
}

TEST(ShardedBusDiff, MultiTopicBatchMatchesSingleBus) {
  BusRig rig(4);
  rig.subscribe("site1/#");
  rig.subscribe("+/+/#");
  rig.subscribe("site2/1/3303");
  std::vector<BusMessage> msgs;
  Lcg rng(5);
  for (int i = 0; i < 400; ++i) {
    BusMessage m;
    m.topic = "site" + std::to_string(rng.next() % 4) + "/" +
              std::to_string(rng.next() % 2) + "/3303";
    const std::string pay = std::to_string(i);
    m.payload.assign(reinterpret_cast<const std::uint8_t*>(pay.data()),
                     reinterpret_cast<const std::uint8_t*>(pay.data()) +
                         pay.size());
    msgs.push_back(std::move(m));
  }
  rig.single.publish_batch(msgs);
  rig.sharded.publish_batch(msgs);
  rig.expect_logs_equal();
}

TEST(ShardedBusDiff, ReentrantSubscribeUnsubscribeDuringDispatch) {
  // Handlers mutate the subscription set mid-dispatch; the sharded bus
  // must mirror the single bus's snapshot + deferred-erase semantics.
  for (const std::uint32_t shards : {1u, 3u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    TopicBus single;
    ShardedBus sharded(shards);
    std::vector<std::string> single_log, sharded_log;

    // On the first delivery: unsubscribe a sibling and add a new sub.
    TopicBus::SubId s_victim{};
    ShardedBus::SubId h_victim{};
    bool s_done = false, h_done = false;
    single.subscribe("siteX/#", [&](const std::string& t, BytesView) {
      single_log.push_back("a:" + t);
      if (!s_done) {
        s_done = true;
        single.unsubscribe(s_victim);
        single.subscribe("siteX/#", [&](const std::string& t2, BytesView) {
          single_log.push_back("late:" + t2);
        });
      }
    });
    s_victim = single.subscribe(
        "siteX/#",
        [&](const std::string& t, BytesView) {
          single_log.push_back("victim:" + t);
        });
    sharded.subscribe("siteX/#", [&](const std::string& t, BytesView) {
      sharded_log.push_back("a:" + t);
      if (!h_done) {
        h_done = true;
        sharded.unsubscribe(h_victim);
        sharded.subscribe("siteX/#",
                          [&](const std::string& t2, BytesView) {
                            sharded_log.push_back("late:" + t2);
                          });
      }
    });
    h_victim = sharded.subscribe(
        "siteX/#",
        [&](const std::string& t, BytesView) {
          sharded_log.push_back("victim:" + t);
        });

    single.publish("siteX/1/1", std::string("p1"));
    sharded.publish("siteX/1/1", std::string("p1"));
    single.publish("siteX/1/2", std::string("p2"));
    sharded.publish("siteX/1/2", std::string("p2"));
    EXPECT_EQ(single_log, sharded_log);
    EXPECT_EQ(single.delivered(), sharded.delivered());
  }
}

TEST(ShardedBusDiff, ParallelBatchMatchesSerialPerSubscription) {
  // Shard-affine subscriptions only (the publish_batch_parallel
  // contract): compare each subscription's delivery log, which must be
  // identical to the serial single-bus dispatch at any worker count.
  std::vector<BusMessage> msgs;
  Lcg mk(77);
  for (int i = 0; i < 3'000; ++i) {
    BusMessage m;
    m.topic = "site" + std::to_string(mk.next() % 11) + "/" +
              std::to_string(mk.next() % 3) + "/3303";
    const std::string pay = std::to_string(i);
    m.payload.assign(reinterpret_cast<const std::uint8_t*>(pay.data()),
                     reinterpret_cast<const std::uint8_t*>(pay.data()) +
                         pay.size());
    msgs.push_back(std::move(m));
  }
  const int n_subs = 33;
  auto make_filters = [] {
    std::vector<std::string> fs;
    for (int i = 0; i < n_subs; ++i) {
      const std::string site = "site" + std::to_string(i % 11);
      if (i % 3 == 0) {
        fs.push_back(site + "/#");
      } else if (i % 3 == 1) {
        fs.push_back(site + "/+/3303");
      } else {
        fs.push_back(site + "/1/3303");
      }
    }
    return fs;
  };

  TopicBus single;
  std::vector<std::vector<std::string>> want(n_subs);
  {
    int k = 0;
    for (const std::string& f : make_filters()) {
      single.subscribe(f, [&want, k](const std::string& t, BytesView p) {
        want[k].push_back(t + "=" + payload_str(p));
      });
      ++k;
    }
  }
  single.publish_batch(msgs);

  for (const unsigned workers : {1u, 2u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    runner::Engine pool(workers);
    ShardedBus sharded(4, &pool);
    std::vector<std::vector<std::string>> got(n_subs);
    int k = 0;
    for (const std::string& f : make_filters()) {
      sharded.subscribe(f, [&got, k](const std::string& t, BytesView p) {
        got[k].push_back(t + "=" + payload_str(p));
      });
      ++k;
    }
    sharded.publish_batch_parallel(msgs);
    EXPECT_GE(sharded.stats().parallel_batches, 1u);
    for (int i = 0; i < n_subs; ++i) {
      EXPECT_EQ(got[i], want[i]) << "subscription " << i;
    }
    EXPECT_EQ(sharded.delivered(), single.delivered());
  }
}

TEST(ShardedBusDiff, RouteMemoServesRepeatedSites) {
  ShardedBus bus(4);
  int n = 0;
  bus.subscribe("site1/#",
                [&](const std::string&, BytesView) { ++n; });
  for (int i = 0; i < 100; ++i) {
    bus.publish("site1/1/3303", std::string("1"));
  }
  EXPECT_EQ(n, 100);
  const auto& st = bus.stats();
  EXPECT_GT(st.route_memo_hits, 90u);  // all but the first resolve hit
  EXPECT_EQ(st.routed, 101u);          // 100 publishes + 1 subscribe route
}

// --------------------------------------------------- system wiring

TEST(ShardedSystem, IngestLandsInShardedStoreAndKeepsShimCold) {
  sim::Scheduler sched;
  core::SystemConfig cfg;
  cfg.backend_shards = 4;
  cfg.backend_workers = 2;
  core::System system(sched, 1, cfg);
  ASSERT_NE(system.sharded_store(), nullptr);
  ASSERT_NE(system.sharded_bus(), nullptr);
  ASSERT_NE(system.sharded_rules(), nullptr);

  const double vals[] = {1.0, 2.0, 3.5};
  system.ingest("plant/1/3303", vals);
  system.ingest("mill/9/3300", vals);
  EXPECT_EQ(system.sharded_store()->points(std::string("plant/1/3303")),
            3u);
  EXPECT_EQ(system.sharded_store()->points(std::string("mill/9/3300")),
            3u);
  // The legacy store is idle when sharding is on.
  EXPECT_EQ(system.store().total_appended(), 0u);
  // Hot-path audit: all appends went through interned refs — the string
  // shim stayed cold on the sharded store and on every shard beneath it.
  EXPECT_EQ(system.sharded_store()->stats().string_appends, 0u);
  for (std::uint32_t s = 0; s < system.sharded_store()->shard_count();
       ++s) {
    EXPECT_EQ(system.sharded_store()->shard(s).stats().string_appends, 0u);
  }
}

TEST(ShardedSystem, SingleShardSystemKeepsShimColdToo) {
  sim::Scheduler sched;
  core::System system(sched, 1);
  const double vals[] = {4.0, 5.0};
  system.ingest("site/1/3303", vals);
  system.ingest("site/2/3303", vals);
  EXPECT_EQ(system.store().total_appended(), 4u);
  EXPECT_EQ(system.store().stats().string_appends, 0u);
}

TEST(ShardedSystem, LegacyBusPublishesRelayIntoShardedPlane) {
  sim::Scheduler sched;
  core::SystemConfig cfg;
  cfg.backend_shards = 3;
  cfg.backend_workers = 1;
  core::System system(sched, 7, cfg);
  // Anything a gateway (or direct bus() user) publishes on the legacy
  // bus flows through the relay into the sharded store.
  system.bus().publish("legacy/4/77", std::string("12.5"));
  ASSERT_TRUE(
      system.sharded_store()->latest(std::string("legacy/4/77")));
  EXPECT_DOUBLE_EQ(
      system.sharded_store()->latest(std::string("legacy/4/77"))->value,
      12.5);
  EXPECT_EQ(system.store().total_appended(), 0u);
}

TEST(ShardedSystem, WindowRuleFiresOnShardedPlane) {
  sim::Scheduler sched;
  core::SystemConfig cfg;
  cfg.backend_shards = 4;
  cfg.backend_workers = 2;
  core::System system(sched, 3, cfg);
  int fired = 0;
  double last = 0.0;
  WindowCondition cond;
  cond.topic_filter = "plant/+/#";
  cond.window = 1'000'000;
  cond.fn = agg::AggFn::kAvg;
  cond.op = CmpOp::kGreater;
  cond.threshold = 10.0;
  cond.min_samples = 3;
  Action act;
  act.callback = [&](const RuleFiring& f) {
    ++fired;
    last = f.value;
  };
  system.sharded_rules()->add_window_rule("hot", cond, act);

  const double cool[] = {1.0, 2.0, 3.0};
  system.ingest("plant/1/3303", cool);
  EXPECT_EQ(fired, 0);
  const double hot[] = {40.0, 50.0, 60.0};
  system.ingest("plant/1/3303", hot);
  EXPECT_GT(fired, 0);
  EXPECT_GT(last, 10.0);
  EXPECT_EQ(system.sharded_rules()->window_skips(), 0u);
}

TEST(ShardedSystem, ShardedResultsMatchSingleShardSystem) {
  // The same ingest script against backend_shards = 1 (classic plane)
  // and backend_shards = 5 must produce byte-identical query artifacts.
  const auto run = [](std::uint32_t shards) {
    sim::Scheduler sched;
    core::SystemConfig cfg;
    cfg.backend_shards = shards;
    cfg.backend_workers = 2;
    core::System system(sched, 11, cfg);
    Lcg rng(31);
    std::vector<std::string> topics;
    for (int i = 0; i < 12; ++i) {
      topics.push_back("site" + std::to_string(i % 5) + "/" +
                       std::to_string(i) + "/3303");
    }
    for (int round = 0; round < 40; ++round) {
      std::vector<double> vals;
      for (int k = 0; k < 8; ++k) vals.push_back(rng.unit() * 100.0);
      system.ingest(topics[round % topics.size()], vals);
    }
    std::vector<std::vector<Point>> out;
    for (const std::string& t : topics) {
      if (shards > 1) {
        out.push_back(system.sharded_store()->query(t, 0, 1'000'000));
      } else {
        out.push_back(system.store().query(t, 0, 1'000'000));
      }
    }
    return out;
  };
  const auto single = run(1);
  const auto sharded = run(5);
  ASSERT_EQ(single.size(), sharded.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    ASSERT_EQ(single[i].size(), sharded[i].size()) << i;
    for (std::size_t k = 0; k < single[i].size(); ++k) {
      EXPECT_EQ(single[i][k].at, sharded[i][k].at);
      EXPECT_TRUE(bits_equal(single[i][k].value, sharded[i][k].value));
    }
  }
}

TEST(ShardedSystem, MetricsExposeShardedCounters) {
  sim::Scheduler sched;
  core::SystemConfig cfg;
  cfg.backend_shards = 2;
  cfg.backend_workers = 1;
  cfg.observability = true;
  core::System system(sched, 2, cfg);
  const double vals[] = {1.0, 2.0};
  system.ingest("site/1/3303", vals);
  ASSERT_NE(system.observability(), nullptr);
  std::set<std::string> names;
  for (const auto& s : system.observability()->metrics().snapshot()) {
    names.insert(s.module + "." + s.name);
  }
  for (const char* want :
       {"sharded.bus_published", "sharded.bus_delivered",
        "sharded.store_appended", "sharded.store_bulk_points",
        "sharded.store_merged_partials", "sharded.store_string_appends",
        "sharded.bus_parallel_batches", "sharded.bus_route_memo_hits",
        "sharded.shard_batch_points", "sharded.merge_latency_us",
        "sharded.shard_queue_depth", "sharded.bus_fanout",
        "backend.store_string_appends"}) {
    EXPECT_TRUE(names.count(want)) << "missing metric " << want;
  }
}

}  // namespace
}  // namespace iiot::backend
