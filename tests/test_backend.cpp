// Backend tier tests: topic bus, time-series store, rule engine, and
// the registry architectures (central / partitioned / decentralized).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "backend/registry.hpp"
#include "backend/rules.hpp"
#include "backend/timeseries.hpp"
#include "backend/topic_bus.hpp"

namespace iiot::backend {
namespace {

using namespace sim;  // NOLINT: time literals

// -------------------------------------------------------------- topic bus

TEST(TopicMatch, ExactAndWildcards) {
  EXPECT_TRUE(topic_matches("a/b/c", "a/b/c"));
  EXPECT_FALSE(topic_matches("a/b/c", "a/b/d"));
  EXPECT_TRUE(topic_matches("a/+/c", "a/b/c"));
  EXPECT_TRUE(topic_matches("a/+/c", "a/xyz/c"));
  EXPECT_FALSE(topic_matches("a/+/c", "a/b/c/d"));
  EXPECT_TRUE(topic_matches("a/#", "a/b/c/d"));
  EXPECT_TRUE(topic_matches("#", "anything/at/all"));
  EXPECT_FALSE(topic_matches("a/b", "a/b/c"));
  EXPECT_FALSE(topic_matches("a/b/c", "a/b"));
  EXPECT_TRUE(topic_matches("+/+", "a/b"));
  EXPECT_FALSE(topic_matches("+/+", "a"));
}

TEST(TopicBus, FanOutToMatchingSubscribers) {
  TopicBus bus;
  std::vector<std::string> seen;
  bus.subscribe("site/+/temp", [&](const std::string& t, BytesView) {
    seen.push_back("wild:" + t);
  });
  bus.subscribe("site/z1/temp", [&](const std::string& t, BytesView) {
    seen.push_back("exact:" + t);
  });
  bus.subscribe("other/#", [&](const std::string&, BytesView) {
    seen.push_back("other");
  });
  bus.publish("site/z1/temp", std::string("21.5"));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(bus.delivered(), 2u);
}

TEST(TopicBus, UnsubscribeStops) {
  TopicBus bus;
  int n = 0;
  auto id = bus.subscribe("x", [&](const std::string&, BytesView) { ++n; });
  bus.publish("x", std::string("1"));
  bus.unsubscribe(id);
  bus.publish("x", std::string("2"));
  EXPECT_EQ(n, 1);
}

// ------------------------------------------------------------- timeseries

TEST(TimeSeries, AppendQueryLatest) {
  TimeSeriesStore ts;
  ts.append("t1", 100, 1.0);
  ts.append("t1", 200, 2.0);
  ts.append("t2", 150, 9.0);
  auto pts = ts.query("t1", 0, 1000);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[1].value, 2.0);
  EXPECT_EQ(ts.latest("t1")->value, 2.0);
  EXPECT_EQ(ts.latest("missing"), std::nullopt);
  EXPECT_EQ(ts.series_count(), 2u);
}

TEST(TimeSeries, RangeQueryRespectsBounds) {
  TimeSeriesStore ts;
  for (int i = 0; i < 10; ++i) ts.append("s", static_cast<Time>(i) * 100, i);
  auto pts = ts.query("s", 250, 650);
  ASSERT_EQ(pts.size(), 4u);  // 300,400,500,600
  EXPECT_EQ(pts.front().value, 3.0);
  EXPECT_EQ(pts.back().value, 6.0);
}

TEST(TimeSeries, RetentionByAge) {
  RetentionPolicy rp;
  rp.max_age = 1000;
  TimeSeriesStore ts(rp);
  ts.append("s", 0, 1);
  ts.append("s", 500, 2);
  ts.append("s", 2000, 3);  // evicts t=0 and t=500 (both older than 1000)
  EXPECT_EQ(ts.points("s"), 1u);
  EXPECT_EQ(ts.latest("s")->value, 3.0);
}

TEST(TimeSeries, RetentionByCount) {
  RetentionPolicy rp;
  rp.max_points = 3;
  TimeSeriesStore ts(rp);
  for (int i = 0; i < 10; ++i) ts.append("s", static_cast<Time>(i), i);
  EXPECT_EQ(ts.points("s"), 3u);
  EXPECT_EQ(ts.query("s", 0, 100).front().value, 7.0);
}

TEST(TimeSeries, DownsampleAverages) {
  TimeSeriesStore ts;
  for (int i = 0; i < 8; ++i) {
    ts.append("s", static_cast<Time>(i) * 100, i);  // 0..7
  }
  auto ds = ts.downsample("s", 0, 10'000, 400);
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_DOUBLE_EQ(ds[0].value, 1.5);  // avg(0,1,2,3)
  EXPECT_DOUBLE_EQ(ds[1].value, 5.5);  // avg(4,5,6,7)
}

// ------------------------------------------------------------ rule engine

TEST(RuleEngine, FiresCommandOnThreshold) {
  TopicBus bus;
  RuleEngine rules(bus);
  std::vector<std::string> commands;
  bus.subscribe("cmd/#", [&](const std::string& t, BytesView p) {
    commands.push_back(t + "=" + iiot::to_string(p));
  });
  Condition cond;
  cond.topic_filter = "sensors/+/temp";
  cond.op = CmpOp::kGreater;
  cond.threshold = 30.0;
  Action act;
  act.command_topic = "cmd/hvac/z1";
  act.command_payload = "cool-on";
  rules.add_rule("overheat", cond, act);

  bus.publish("sensors/z1/temp", std::string("25.0"));
  EXPECT_TRUE(commands.empty());
  bus.publish("sensors/z1/temp", std::string("31.0"));
  ASSERT_EQ(commands.size(), 1u);
  EXPECT_EQ(commands[0], "cmd/hvac/z1=cool-on");
  EXPECT_EQ(rules.firings(), 1u);
}

TEST(RuleEngine, DebounceRequiresConsecutiveSamples) {
  TopicBus bus;
  RuleEngine rules(bus);
  int fired = 0;
  Condition cond;
  cond.topic_filter = "s/v";
  cond.op = CmpOp::kGreater;
  cond.threshold = 10.0;
  cond.consecutive = 3;
  Action act;
  act.callback = [&](const RuleFiring&) { ++fired; };
  rules.add_rule("r", cond, act);

  bus.publish("s/v", std::string("11"));
  bus.publish("s/v", std::string("12"));
  bus.publish("s/v", std::string("5"));  // streak broken
  bus.publish("s/v", std::string("11"));
  bus.publish("s/v", std::string("12"));
  EXPECT_EQ(fired, 0);
  bus.publish("s/v", std::string("13"));
  EXPECT_EQ(fired, 1);
}

TEST(RuleEngine, PerTopicStreaks) {
  TopicBus bus;
  RuleEngine rules(bus);
  int fired = 0;
  Condition cond;
  cond.topic_filter = "s/+";
  cond.op = CmpOp::kGreater;
  cond.threshold = 0.0;
  cond.consecutive = 2;
  Action act;
  act.callback = [&](const RuleFiring&) { ++fired; };
  rules.add_rule("r", cond, act);
  // Alternating topics must not pool their streaks.
  bus.publish("s/a", std::string("1"));
  bus.publish("s/b", std::string("1"));
  EXPECT_EQ(fired, 0);
  bus.publish("s/a", std::string("1"));
  EXPECT_EQ(fired, 1);
}

TEST(RuleEngine, RemoveRuleStopsFiring) {
  TopicBus bus;
  RuleEngine rules(bus);
  int fired = 0;
  Condition cond;
  cond.topic_filter = "s";
  cond.op = CmpOp::kGreater;
  cond.threshold = 0.0;
  Action act;
  act.callback = [&](const RuleFiring&) { ++fired; };
  rules.add_rule("r", cond, act);
  bus.publish("s", std::string("1"));
  rules.remove_rule("r");
  bus.publish("s", std::string("1"));
  EXPECT_EQ(fired, 1);
}

// --------------------------------------------------------------- registry

TEST(ConsistentHashRing, DeterministicOwner) {
  ConsistentHashRing ring;
  ring.add_node("a");
  ring.add_node("b");
  ring.add_node("c");
  EXPECT_EQ(ring.owner("key-1"), ring.owner("key-1"));
}

TEST(ConsistentHashRing, BalancedDistribution) {
  ConsistentHashRing ring(128);
  for (int i = 0; i < 8; ++i) ring.add_node("n" + std::to_string(i));
  std::map<std::string, int> counts;
  for (int k = 0; k < 8000; ++k) {
    counts[*ring.owner("key-" + std::to_string(k))]++;
  }
  for (const auto& [node, c] : counts) {
    EXPECT_GT(c, 500) << node;   // perfect would be 1000
    EXPECT_LT(c, 1600) << node;
  }
}

TEST(ConsistentHashRing, MinimalDisruptionOnNodeRemoval) {
  ConsistentHashRing ring(128);
  for (int i = 0; i < 10; ++i) ring.add_node("n" + std::to_string(i));
  std::map<std::string, std::string> before;
  for (int k = 0; k < 2000; ++k) {
    before["key-" + std::to_string(k)] = *ring.owner("key-" + std::to_string(k));
  }
  ring.remove_node("n3");
  int moved = 0;
  for (auto& [key, owner] : before) {
    if (*ring.owner(key) != owner) ++moved;
  }
  // Only keys owned by n3 (~10%) should move.
  EXPECT_LT(moved, 2000 / 10 * 2);
  EXPECT_GT(moved, 2000 / 10 / 3);
}

TEST(QueuedServer, SequentialServiceTimes) {
  Scheduler sched;
  QueuedServer server(sched, 100);
  std::vector<Time> completions;
  for (int i = 0; i < 5; ++i) {
    server.submit([&] { completions.push_back(sched.now()); });
  }
  sched.run_all();
  ASSERT_EQ(completions.size(), 5u);
  EXPECT_EQ(completions.back(), 500u);  // 5 * 100 us, strictly serial
}

TEST(Directory, LookupFindsRegisteredService) {
  Scheduler sched;
  Directory dir(sched, DirectoryMode::kCentral, {});
  dir.register_service("printer", "10.0.0.7");
  std::optional<std::string> found;
  dir.lookup("printer", [&](Duration, std::optional<std::string> addr) {
    found = addr;
  });
  sched.run_all();
  EXPECT_EQ(found, "10.0.0.7");
}

TEST(Directory, MissingServiceReturnsNullopt) {
  Scheduler sched;
  Directory dir(sched, DirectoryMode::kPartitioned, {});
  bool called = false;
  dir.lookup("ghost", [&](Duration, std::optional<std::string> addr) {
    called = true;
    EXPECT_EQ(addr, std::nullopt);
  });
  sched.run_all();
  EXPECT_TRUE(called);
}

TEST(Directory, CentralSaturatesWhilePartitionedScales) {
  auto p99_latency = [](DirectoryMode mode, int clients) {
    Scheduler sched;
    DirectoryConfig cfg;
    cfg.server_count = 8;
    Directory dir(sched, mode, cfg);
    for (int i = 0; i < 200; ++i) {
      dir.register_service("svc-" + std::to_string(i), "addr");
    }
    std::vector<Duration> latencies;
    // Each client issues a lookup every 1 ms for 100 ms.
    for (int c = 0; c < clients; ++c) {
      for (int t = 0; t < 100; ++t) {
        sched.schedule_at(static_cast<Time>(t) * 1000 + c,
                          [&dir, &latencies, c] {
                            dir.lookup("svc-" + std::to_string(c % 200),
                                       [&latencies](Duration d,
                                                    std::optional<std::string>) {
                                         latencies.push_back(d);
                                       });
                          });
      }
    }
    sched.run_all();
    std::sort(latencies.begin(), latencies.end());
    return latencies[latencies.size() * 99 / 100];
  };
  // 10 clients: offered load 10 req/ms vs capacity 1/0.15us... At 150 us
  // service time, 1 server handles ~6.6 req/ms: 10 clients saturate it,
  // while 8 partitions absorb the same load easily.
  const Duration central = p99_latency(DirectoryMode::kCentral, 10);
  const Duration parted = p99_latency(DirectoryMode::kPartitioned, 10);
  EXPECT_GT(central, parted * 3);
}

}  // namespace
}  // namespace iiot::backend
