// Edge-case tests gathered across modules: unusual configurations,
// boundary inputs, and API misuse that must fail cleanly.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "backend/registry.hpp"
#include "backend/topic_bus.hpp"
#include "core/system.hpp"
#include "crdt/registers.hpp"
#include "harness.hpp"
#include "mac/tdma.hpp"
#include "net/trickle.hpp"
#include "replication/kv.hpp"

namespace iiot {
namespace {

using namespace sim;  // NOLINT: time literals

// ------------------------------------------------------- TDMA unaligned

TEST(TdmaUnaligned, LineDeliversWithRandomPhases) {
  test::World w(90);
  w.make_line(4);
  mac::TdmaConfig cfg;
  cfg.epoch = 1'000'000;
  cfg.slot = 40'000;
  cfg.staggered = false;
  Rng phase_rng(5);
  std::vector<Duration> phases(4);
  for (auto& p : phases) {
    p = phase_rng.below(static_cast<std::uint32_t>(cfg.epoch - 2 * cfg.slot));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    auto& m = w.with_mac<mac::TdmaMac>(w.node(i), cfg);
    mac::TdmaSchedule s;
    s.parent = i == 0 ? kInvalidNode : static_cast<NodeId>(i - 1);
    s.depth = static_cast<int>(i);
    s.max_depth = 3;
    s.has_children = i + 1 < 4;
    s.phase = phases[i];
    s.parent_phase = i == 0 ? 0 : phases[i - 1];
    m.configure(s);
  }
  int at_root = 0;
  w.node(0).mac->set_receive_handler(
      [&](NodeId, BytesView, double) { ++at_root; });
  for (std::size_t i = 1; i < 4; ++i) {
    auto* m = w.node(i).mac.get();
    const NodeId parent = static_cast<NodeId>(i - 1);
    m->set_receive_handler([m, parent](NodeId, BytesView p, double) {
      m->send(parent, Buffer(p.begin(), p.end()));
    });
  }
  w.start_all();
  for (int pkt = 0; pkt < 8; ++pkt) {
    w.sched().schedule_at(2_s + static_cast<Time>(pkt) * 5_s, [&] {
      w.node(3).mac->send(2, to_buffer("u"));
    });
  }
  w.sched().run_until(60_s);
  EXPECT_EQ(at_root, 8);
}

// -------------------------------------------------------- System edges

TEST(SystemEdges, ActuateFailsWithoutDownwardRoute) {
  Scheduler sched;
  core::SystemConfig scfg;
  scfg.propagation.shadowing_sigma_db = 0.0;
  core::System system(sched, 3, scfg);
  core::NodeConfig ncfg;
  ncfg.rpl.trickle = net::TrickleConfig{250'000, 8, 3};
  auto& mesh = system.add_mesh("m", ncfg);
  mesh.build_line(3, 25.0);
  mesh.start();
  // No DAO has propagated yet: send_down must refuse, not crash.
  EXPECT_FALSE(system.actuate(mesh, 2, 3306, 1.0));
}

TEST(SystemEdges, TwoMeshesCoexistInOneSystem) {
  Scheduler sched;
  core::SystemConfig scfg;
  scfg.propagation.shadowing_sigma_db = 0.0;
  core::System system(sched, 4, scfg);
  core::NodeConfig ncfg;
  ncfg.rpl.trickle = net::TrickleConfig{250'000, 8, 3};
  auto& site_a = system.add_mesh("a", ncfg);
  site_a.build_line(3, 25.0);
  site_a.start();
  auto& site_b = system.add_mesh("b", ncfg);
  site_b.build_line(3, 25.0);
  site_b.start();
  system.bridge("a", site_a);
  system.bridge("b", site_b);
  system.add_periodic_sensor(site_a.node(2), 3303, 5_s, [] { return 1.0; });
  system.add_periodic_sensor(site_b.node(2), 3303, 5_s, [] { return 2.0; });
  sched.run_until(60_s);
  // Separate mediums: both form and report under the same backend.
  EXPECT_GT(system.store().points("a/2/3303"), 3u);
  EXPECT_GT(system.store().points("b/2/3303"), 3u);
  EXPECT_EQ(system.mesh_count(), 2u);
}

// ------------------------------------------------------- bus/ring edges

TEST(TopicBusEdges, RootLevelWildcards) {
  backend::TopicBus bus;
  int n = 0;
  bus.subscribe("+", [&](const std::string&, BytesView) { ++n; });
  bus.publish("single", std::string("1"));
  bus.publish("two/levels", std::string("1"));
  EXPECT_EQ(n, 1);
}

TEST(TopicBusEdges, EmptyLevelsMatchExactly) {
  EXPECT_TRUE(backend::topic_matches("a//b", "a//b"));
  EXPECT_FALSE(backend::topic_matches("a//b", "a/b"));
}

TEST(RingEdges, SingleNodeOwnsEverything) {
  backend::ConsistentHashRing ring;
  ring.add_node("only");
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ring.owner("key" + std::to_string(i)), "only");
  }
}

TEST(RingEdges, EmptyRingReturnsNullopt) {
  backend::ConsistentHashRing ring;
  EXPECT_EQ(ring.owner("x"), std::nullopt);
  ring.add_node("a");
  ring.remove_node("a");
  EXPECT_EQ(ring.owner("x"), std::nullopt);
}

// --------------------------------------------------------- CRDT codecs

TEST(CrdtCodecs, MvRegisterRoundTrip) {
  crdt::MvRegister<std::string> a, b;
  a.set(1, "x");
  b.set(2, "y");
  a.merge(b);
  Buffer buf;
  BufWriter w(buf);
  a.encode(w);
  BufReader r(buf);
  auto decoded = crdt::MvRegister<std::string>::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->values().size(), 2u);
  EXPECT_TRUE(decoded->conflicted());
}

TEST(CrdtCodecs, TruncatedInputRejectedEverywhere) {
  // Every CRDT decoder must fail cleanly on truncation, not crash.
  crdt::OrSet<std::string> s;
  s.add(1, "hello");
  Buffer buf;
  BufWriter w(buf);
  s.encode(w);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    BytesView view(buf.data(), cut);
    BufReader r(view);
    auto decoded = crdt::OrSet<std::string>::decode(r);
    if (decoded.has_value()) {
      // Only acceptable if the prefix happened to be self-consistent;
      // decoding must at least not produce a larger set.
      EXPECT_LE(decoded->size(), s.size());
    }
  }
}

// ------------------------------------------------------ replication edge

TEST(ReplicationEdges, SingleReplicaClusterIsTrivialQuorum) {
  Scheduler sched;
  replication::BackendNet net(sched, Rng(1));
  replication::CpReplica solo(1, 1, {1}, net, sched, Rng(2));
  solo.start();
  bool ok = false;
  solo.put("k", "v", [&](bool r) { ok = r; });
  sched.run_all();
  EXPECT_TRUE(ok);
  EXPECT_EQ(solo.get("k"), "v");
}

TEST(ReplicationEdges, StoppedReplicaRefusesWrites) {
  Scheduler sched;
  replication::BackendNet net(sched, Rng(1));
  replication::CpReplica r(1, 1, {1}, net, sched, Rng(2));
  bool ok = true;
  r.put("k", "v", [&](bool res) { ok = res; });
  sched.run_all();
  EXPECT_FALSE(ok);  // never started
}

// --------------------------------------------------------- trickle edge

TEST(TrickleEdges, StopPreventsFurtherFiring) {
  Scheduler s;
  int tx = 0;
  net::Trickle t(s, Rng(1), net::TrickleConfig{100'000, 4, 100},
                 [&] { ++tx; });
  t.start();
  s.run_until(150'000);
  const int before = tx;
  t.stop();
  s.run_until(10'000'000);
  EXPECT_EQ(tx, before);
  EXPECT_FALSE(t.running());
}

TEST(TrickleEdges, RestartResetsInterval) {
  Scheduler s;
  int tx = 0;
  net::Trickle t(s, Rng(2), net::TrickleConfig{100'000, 6, 100},
                 [&] { ++tx; });
  t.start();
  s.run_until(3'000'000);
  EXPECT_GT(t.interval(), 100'000u);
  t.stop();
  t.start();
  EXPECT_EQ(t.interval(), 100'000u);
}

// ----------------------------------------------------------- meter edge

TEST(EnergyMeterEdges, ResetClearsAccumulation) {
  energy::Meter m;
  m.radio_state(energy::RadioState::kListen, 0);
  m.settle(1'000'000);
  EXPECT_GT(m.total_mj(), 0.0);
  m.reset(1'000'000);
  EXPECT_DOUBLE_EQ(m.total_mj(), 0.0);
  // Still tracking from the reset point in the prior state.
  m.settle(2'000'000);
  EXPECT_GT(m.total_mj(), 0.0);
}

// ----------------------------------------------------------- mac queue

TEST(MacEdges, CallbackFiresExactlyOncePerSend) {
  test::World w(91);
  w.make_line(2);
  auto& a = w.with_mac<mac::CsmaMac>(w.node(0));
  w.with_mac<mac::CsmaMac>(w.node(1));
  w.start_all();
  std::vector<int> calls(10, 0);
  for (int i = 0; i < 10; ++i) {
    a.send(1, Buffer(4, static_cast<std::uint8_t>(i)),
           [&calls, i](const mac::SendStatus&) { ++calls[static_cast<size_t>(i)]; });
  }
  w.sched().run_until(10_s);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(calls[static_cast<size_t>(i)], 1) << i;
}

TEST(MacEdges, StopMidTransferDoesNotCrash) {
  test::World w(92);
  w.make_line(2);
  auto& a = w.with_mac<mac::CsmaMac>(w.node(0));
  w.with_mac<mac::CsmaMac>(w.node(1));
  w.start_all();
  a.send(1, Buffer(50, 0x1));
  w.sched().schedule_at(100, [&] { a.stop(); });
  w.sched().run_until(5_s);
  a.start();
  bool ok = false;
  a.send(1, Buffer(4, 0x2), [&](const mac::SendStatus& s) {
    ok = s.delivered;
  });
  w.sched().run_until(10_s);
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace iiot
