// CoAP tests: wire codec, reliability, dedup, observe, and end-to-end
// operation over the simulated RPL mesh with fragmentation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coap/endpoint.hpp"
#include "coap/message.hpp"
#include "harness.hpp"
#include "net/rpl.hpp"
#include "transport/frag.hpp"
#include "transport/mesh_transport.hpp"

namespace iiot::coap {
namespace {

using namespace sim;  // NOLINT: time literals

// ------------------------------------------------------------------ codec

TEST(CoapCodec, HeaderRoundTrip) {
  Message m;
  m.type = Type::kConfirmable;
  m.code = Code::kGet;
  m.message_id = 0xBEEF;
  m.token = 0x1234;
  Buffer wire = m.encode();
  ASSERT_GE(wire.size(), 4u);
  auto d = Message::decode(wire);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().type, Type::kConfirmable);
  EXPECT_EQ(d.value().code, Code::kGet);
  EXPECT_EQ(d.value().message_id, 0xBEEF);
  EXPECT_EQ(d.value().token, 0x1234u);
}

TEST(CoapCodec, UriPathSegments) {
  Message m;
  m.code = Code::kGet;
  m.set_uri_path("sensors/temp/3");
  auto d = Message::decode(m.encode());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().uri_path(), "sensors/temp/3");
}

TEST(CoapCodec, PayloadMarker) {
  Message m;
  m.code = Code::kContent;
  m.payload = to_buffer("21.5");
  Buffer wire = m.encode();
  auto d = Message::decode(wire);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(to_string(d.value().payload), "21.5");
}

TEST(CoapCodec, OptionsSortedAndDeltaEncoded) {
  Message m;
  m.code = Code::kGet;
  // Add out of order; encoder must sort.
  m.add_option(Option::make_uint(OptionNumber::kMaxAge, 60));
  m.add_option(Option::make_uint(OptionNumber::kObserve, 0));
  m.set_uri_path("a");
  auto d = Message::decode(m.encode());
  ASSERT_TRUE(d.ok());
  const auto& opts = d.value().options;
  ASSERT_EQ(opts.size(), 3u);
  for (std::size_t i = 1; i < opts.size(); ++i) {
    EXPECT_LE(opts[i - 1].number, opts[i].number);
  }
  EXPECT_EQ(d.value().find_option(OptionNumber::kMaxAge)->as_uint(), 60u);
}

TEST(CoapCodec, LargeOptionDeltaAndLength) {
  Message m;
  m.code = Code::kGet;
  Option big;
  big.number = 500;  // needs 14-style extended delta
  big.value.assign(300, 0x7A);  // needs extended length
  m.add_option(big);
  auto d = Message::decode(m.encode());
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d.value().options.size(), 1u);
  EXPECT_EQ(d.value().options[0].number, 500);
  EXPECT_EQ(d.value().options[0].value.size(), 300u);
}

TEST(CoapCodec, ZeroLengthTokenAndEmptyMessage) {
  Message m;
  m.type = Type::kAck;
  m.code = Code::kEmpty;
  m.message_id = 7;
  Buffer wire = m.encode();
  EXPECT_EQ(wire.size(), 4u);  // pure header
  auto d = Message::decode(wire);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().token, 0u);
}

TEST(CoapCodec, RejectsTruncatedHeader) {
  Buffer wire{0x40, 0x01};
  EXPECT_FALSE(Message::decode(wire).ok());
}

TEST(CoapCodec, RejectsBadVersion) {
  Buffer wire{0x80, 0x01, 0x00, 0x01};  // version 2
  EXPECT_FALSE(Message::decode(wire).ok());
}

TEST(CoapCodec, RejectsEmptyPayloadAfterMarker) {
  Message m;
  m.code = Code::kContent;
  Buffer wire = m.encode();
  wire.push_back(0xFF);  // marker with no payload
  EXPECT_FALSE(Message::decode(wire).ok());
}

TEST(CoapCodec, UintOptionMinimalEncoding) {
  auto o = Option::make_uint(OptionNumber::kObserve, 0);
  EXPECT_TRUE(o.value.empty());  // zero encodes to zero bytes
  auto o2 = Option::make_uint(OptionNumber::kObserve, 300);
  EXPECT_EQ(o2.value.size(), 2u);
  EXPECT_EQ(o2.as_uint(), 300u);
}

// -------------------------------------------------- endpoint pair harness

/// Two endpoints joined by a delayed, optionally lossy pipe.
struct Pair {
  explicit Pair(std::uint64_t seed = 1, double loss = 0.0)
      : rng(seed), loss_rng(seed ^ 0x10355), loss_prob(loss) {
    client = std::make_unique<Endpoint>(
        1, sched, rng.fork(1), make_send(2), CoapConfig{});
    CoapConfig server_cfg;
    server = std::make_unique<Endpoint>(2, sched, rng.fork(2), make_send(1),
                                        server_cfg);
  }

  Endpoint::SendFn make_send(NodeId to) {
    return [this, to](NodeId dst, Buffer bytes) {
      EXPECT_EQ(dst, to);
      if (loss_rng.chance(loss_prob)) return true;  // dropped in flight
      sched.schedule_after(10'000, [this, to, bytes = std::move(bytes)] {
        (to == 1 ? client : server)->on_datagram(to == 1 ? 2 : 1, bytes);
      });
      return true;
    };
  }

  Scheduler sched;
  Rng rng;
  Rng loss_rng;
  double loss_prob;
  std::unique_ptr<Endpoint> client;
  std::unique_ptr<Endpoint> server;
};

TEST(CoapEndpoint, GetReturnsContent) {
  Pair p;
  p.server->add_resource("temp", [](const Request&) {
    Response r;
    r.payload = to_buffer("22.0");
    return r;
  });
  std::optional<Response> got;
  p.client->get(2, "temp", [&](Result<Response> r) {
    ASSERT_TRUE(r.ok());
    got = r.value();
  });
  p.sched.run_until(1_s);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->code, Code::kContent);
  EXPECT_EQ(to_string(got->payload), "22.0");
}

TEST(CoapEndpoint, UnknownResourceIs404) {
  Pair p;
  std::optional<Code> code;
  p.client->get(2, "nope", [&](Result<Response> r) {
    ASSERT_TRUE(r.ok());
    code = r.value().code;
  });
  p.sched.run_until(1_s);
  EXPECT_EQ(code, Code::kNotFound);
}

TEST(CoapEndpoint, PutUpdatesServerState) {
  Pair p;
  std::string setpoint = "unset";
  p.server->add_resource("setpoint", [&](const Request& req) {
    Response r;
    if (req.method == Code::kPut) {
      setpoint = to_string(req.payload);
      r.code = Code::kChanged;
    } else {
      r.payload = to_buffer(setpoint);
    }
    return r;
  });
  std::optional<Code> code;
  p.client->put(2, "setpoint", to_buffer("21.0"), [&](Result<Response> r) {
    ASSERT_TRUE(r.ok());
    code = r.value().code;
  });
  p.sched.run_until(1_s);
  EXPECT_EQ(code, Code::kChanged);
  EXPECT_EQ(setpoint, "21.0");
}

TEST(CoapEndpoint, MethodDispatchPostDelete) {
  Pair p;
  std::vector<Code> seen;
  p.server->add_resource("r", [&](const Request& req) {
    seen.push_back(req.method);
    Response r;
    r.code = req.method == Code::kDelete ? Code::kDeleted : Code::kCreated;
    return r;
  });
  int done = 0;
  p.client->post(2, "r", to_buffer("x"), [&](Result<Response> r) {
    EXPECT_EQ(r.value().code, Code::kCreated);
    ++done;
  });
  p.client->del(2, "r", [&](Result<Response> r) {
    EXPECT_EQ(r.value().code, Code::kDeleted);
    ++done;
  });
  p.sched.run_until(2_s);
  EXPECT_EQ(done, 2);
  EXPECT_EQ(seen.size(), 2u);
}

TEST(CoapEndpoint, RetransmissionRecoversFromLoss) {
  Pair p(7, 0.4);  // 40% datagram loss
  p.server->add_resource("x", [](const Request&) {
    Response r;
    r.payload = to_buffer("ok");
    return r;
  });
  int ok = 0, fail = 0;
  for (int i = 0; i < 20; ++i) {
    p.client->get(2, "x", [&](Result<Response> r) {
      r.ok() ? ++ok : ++fail;
    });
  }
  p.sched.run_until(300_s);
  // With 4 retransmissions at 40% loss, most exchanges get through
  // (per-try success = 0.6^2 = 0.36; P(all 5 tries fail) ≈ 0.11).
  EXPECT_GE(ok, 15);
  EXPECT_GT(p.client->stats().retransmissions, 0u);
}

TEST(CoapEndpoint, TimeoutAfterMaxRetransmit) {
  Pair p(8, 1.0);  // pipe drops everything
  bool done = false;
  Time done_at = 0;
  p.client->get(2, "x", [&](Result<Response> r) {
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, Error::Code::kTimeout);
    done = true;
    done_at = p.sched.now();
  });
  p.sched.run_until(600_s);
  EXPECT_TRUE(done);
  // 2+4+8+16+32 s ≈ at least 62 s with ACK_RANDOM_FACTOR ≥ 1.
  EXPECT_GE(done_at, 60'000'000u);
}

TEST(CoapEndpoint, DuplicateRequestServedOnce) {
  Pair p;
  int invocations = 0;
  p.server->add_resource("once", [&](const Request&) {
    ++invocations;
    Response r;
    r.payload = to_buffer("v");
    return r;
  });
  // Craft a CON GET and deliver the same wire bytes twice.
  Message m;
  m.type = Type::kConfirmable;
  m.code = Code::kGet;
  m.message_id = 42;
  m.token = 99;
  m.set_uri_path("once");
  Buffer wire = m.encode();
  p.server->on_datagram(1, wire);
  p.server->on_datagram(1, wire);
  p.sched.run_all();
  EXPECT_EQ(invocations, 1);
  EXPECT_EQ(p.server->stats().duplicates, 1u);
}

TEST(CoapEndpoint, ObserveDeliversNotifications) {
  Pair p;
  double temp = 20.0;
  p.server->add_resource("temp", [&](const Request&) {
    Response r;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.1f", temp);
    r.payload = to_buffer(buf);
    return r;
  });
  std::vector<std::string> seen;
  p.client->observe(2, "temp", [&](const Response& r) {
    seen.push_back(to_string(r.payload));
  });
  p.sched.run_until(1_s);
  EXPECT_EQ(p.server->observer_count("temp"), 1u);
  for (int i = 0; i < 3; ++i) {
    p.sched.schedule_after(0, [&, i] {
      temp = 21.0 + i;
      p.server->notify_observers("temp");
    });
    p.sched.run_until(p.sched.now() + 1'000'000);
  }
  ASSERT_EQ(seen.size(), 4u);  // initial + 3 notifications
  EXPECT_EQ(seen[0], "20.0");
  EXPECT_EQ(seen[3], "23.0");
}

TEST(CoapEndpoint, CancelObserveStopsNotifications) {
  Pair p;
  p.server->add_resource("temp", [](const Request&) {
    Response r;
    r.payload = to_buffer("t");
    return r;
  });
  int notifications = 0;
  p.client->observe(2, "temp", [&](const Response&) { ++notifications; });
  p.sched.run_until(1_s);
  p.client->cancel_observe(2, "temp");
  p.sched.run_until(2_s);
  EXPECT_EQ(p.server->observer_count("temp"), 0u);
  int before = notifications;
  p.server->notify_observers("temp");
  p.sched.run_until(3_s);
  EXPECT_EQ(notifications, before);
}

// ----------------------------------------------------------- fragmentation

TEST(Fragmentation, SingleChunkWhenSmall) {
  auto frags = transport::fragment(to_buffer("small"), 80, 1);
  ASSERT_EQ(frags.size(), 1u);
}

TEST(Fragmentation, RoundTripLargeDatagram) {
  Scheduler s;
  transport::Reassembler re(s);
  Buffer big(500);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 7);
  }
  auto frags = transport::fragment(big, 80, 9);
  EXPECT_GT(frags.size(), 5u);
  std::optional<Buffer> whole;
  for (auto& f : frags) {
    auto r = re.on_fragment(3, f);
    if (r) whole = r;
  }
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(*whole, big);
}

TEST(Fragmentation, OutOfOrderReassembly) {
  Scheduler s;
  transport::Reassembler re(s);
  Buffer data(200, 0xCD);
  auto frags = transport::fragment(data, 64, 2);
  std::optional<Buffer> whole;
  for (auto it = frags.rbegin(); it != frags.rend(); ++it) {
    auto r = re.on_fragment(3, *it);
    if (r) whole = r;
  }
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(*whole, data);
}

TEST(Fragmentation, InterleavedSourcesDoNotMix) {
  Scheduler s;
  transport::Reassembler re(s);
  Buffer a(150, 0xAA), b(150, 0xBB);
  auto fa = transport::fragment(a, 64, 5);
  auto fb = transport::fragment(b, 64, 5);  // same tag, different source
  int completed = 0;
  for (std::size_t i = 0; i < fa.size(); ++i) {
    if (auto r = re.on_fragment(1, fa[i])) {
      EXPECT_EQ(*r, a);
      ++completed;
    }
    if (auto r = re.on_fragment(2, fb[i])) {
      EXPECT_EQ(*r, b);
      ++completed;
    }
  }
  EXPECT_EQ(completed, 2);
}

TEST(Fragmentation, IncompleteExpiresAfterTimeout) {
  Scheduler s;
  transport::Reassembler re(s, 1'000'000);
  Buffer data(200, 0x11);
  auto frags = transport::fragment(data, 64, 3);
  re.on_fragment(1, frags[0]);
  EXPECT_EQ(re.in_flight(), 1u);
  s.run_until(2_s);
  // Trigger sweep with any new fragment.
  re.on_fragment(2, transport::fragment(Buffer(100, 1), 64, 4)[0]);
  EXPECT_GE(re.stats().expired, 1u);
}

// ------------------------------------------------- CoAP over the RPL mesh

TEST(CoapOverMesh, NodeReadsBorderRouterResourceAndViceVersa) {
  test::World w(60);
  w.make_line(4, 25.0);
  net::RplConfig rcfg;
  rcfg.trickle = net::TrickleConfig{250'000, 8, 3};
  rcfg.dao_interval = 5'000'000;
  std::vector<std::unique_ptr<net::RplRouting>> routers;
  for (std::size_t i = 0; i < 4; ++i) {
    auto& m = w.with_mac<mac::CsmaMac>(w.node(i));
    routers.push_back(std::make_unique<net::RplRouting>(
        m, w.sched(), w.rng().fork(500 + i), rcfg));
  }
  w.start_all();
  routers[0]->start_root();
  for (std::size_t i = 1; i < 4; ++i) routers[i]->start();

  transport::MeshTransport root_tp(*routers[0], w.sched());
  transport::MeshTransport leaf_tp(*routers[3], w.sched());
  Endpoint root_ep(0, w.sched(), w.rng().fork(91), root_tp.sender());
  Endpoint leaf_ep(3, w.sched(), w.rng().fork(92), leaf_tp.sender());
  root_tp.bind(root_ep);
  leaf_tp.bind(leaf_ep);

  root_ep.add_resource("config", [](const Request&) {
    Response r;
    r.payload = to_buffer("sample-every-30s-and-please-aggregate-minmax");
    return r;
  });
  leaf_ep.add_resource("sensor", [](const Request&) {
    Response r;
    r.payload = to_buffer("42.5");
    return r;
  });

  w.sched().run_until(40_s);  // network + DAO formation

  std::string got_config, got_sensor;
  w.sched().schedule_at(41_s, [&] {
    leaf_ep.get(0, "config", [&](Result<Response> r) {
      if (r.ok()) got_config = to_string(r.value().payload);
    });
  });
  w.sched().schedule_at(50_s, [&] {
    root_ep.get(3, "sensor", [&](Result<Response> r) {
      if (r.ok()) got_sensor = to_string(r.value().payload);
    });
  });
  w.sched().run_until(80_s);
  EXPECT_EQ(got_config, "sample-every-30s-and-please-aggregate-minmax");
  EXPECT_EQ(got_sensor, "42.5");
}

}  // namespace
}  // namespace iiot::coap
