// Network layer tests: Trickle, link estimation, RPL formation/repair,
// up/down routing, and RNFD root-failure detection.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness.hpp"
#include "net/link_estimator.hpp"
#include "net/rnfd.hpp"
#include "net/rpl.hpp"
#include "net/trickle.hpp"

namespace iiot::net {
namespace {

using namespace sim;  // NOLINT: time literals
using test::World;

// ---------------------------------------------------------------- Trickle

TEST(Trickle, TransmitsWithinFirstInterval) {
  Scheduler s;
  int tx = 0;
  Trickle t(s, Rng(1), TrickleConfig{1'000'000, 4, 3}, [&] { ++tx; });
  t.start();
  s.run_until(1'000'000);
  EXPECT_EQ(tx, 1);
}

TEST(Trickle, BacksOffExponentially) {
  Scheduler s;
  int tx = 0;
  Trickle t(s, Rng(2), TrickleConfig{1'000'000, 4, 100}, [&] { ++tx; });
  t.start();
  // With huge k nothing suppresses; intervals are 1,2,4,8,16,16,16... s.
  s.run_until(63'000'000);
  // 1+2+4+8+16+16+16 = 63 s -> 7 transmissions.
  EXPECT_EQ(tx, 7);
  EXPECT_EQ(t.interval(), 16'000'000u);
}

TEST(Trickle, SuppressionWithHighRedundancy) {
  Scheduler s;
  int tx = 0;
  Trickle t(s, Rng(3), TrickleConfig{1'000'000, 2, 1}, [&] { ++tx; });
  t.start();
  // Feed a consistent message early in every interval.
  for (int i = 0; i < 40; ++i) {
    s.schedule_at(static_cast<Time>(i) * 500'000 + 1,
                  [&] { t.consistent(); });
  }
  s.run_until(20'000'000);
  EXPECT_EQ(tx, 0);
  EXPECT_GT(t.suppressions(), 0u);
}

TEST(Trickle, InconsistencyResetsInterval) {
  Scheduler s;
  int tx = 0;
  Trickle t(s, Rng(4), TrickleConfig{1'000'000, 6, 100}, [&] { ++tx; });
  t.start();
  s.run_until(30'000'000);
  int before = tx;
  EXPECT_GT(t.interval(), 1'000'000u);
  s.schedule_at(30'500'000, [&] { t.inconsistent(); });
  s.run_until(30'600'000);
  EXPECT_EQ(t.interval(), 1'000'000u);  // snapped back to Imin
  s.run_until(31'600'000);
  EXPECT_GT(tx, before);  // fired again quickly after reset
}

// ----------------------------------------------------------- LinkEstimator

TEST(LinkEstimator, StartsWithOptimisticPrior) {
  LinkEstimator le;
  EXPECT_DOUBLE_EQ(le.etx(7), LinkEstimator::kUnknownEtx);
}

TEST(LinkEstimator, PerfectLinkConvergesToOne) {
  LinkEstimator le;
  for (int i = 0; i < 50; ++i) le.record_tx(7, 1, true);
  EXPECT_NEAR(le.etx(7), 1.0, 0.01);
}

TEST(LinkEstimator, LossyLinkEtxRises) {
  LinkEstimator le;
  for (int i = 0; i < 50; ++i) le.record_tx(7, 3, true);  // 3 tries each
  EXPECT_NEAR(le.etx(7), 3.0, 0.1);
}

TEST(LinkEstimator, FailuresTracked) {
  LinkEstimator le;
  le.record_tx(7, 5, false);
  le.record_tx(7, 5, false);
  EXPECT_EQ(le.consecutive_failures(7), 2);
  le.record_tx(7, 1, true);
  EXPECT_EQ(le.consecutive_failures(7), 0);
}

// ------------------------------------------------------------ RPL harness

struct RplNet {
  explicit RplNet(World& w, RplConfig cfg = fast_config()) : world(w) {
    for (std::size_t i = 0; i < w.size(); ++i) {
      auto& m = w.with_mac<mac::CsmaMac>(w.node(i));
      routers.push_back(std::make_unique<RplRouting>(
          m, w.sched(), w.rng().fork(1000 + i), cfg));
    }
  }

  static RplConfig fast_config() {
    RplConfig cfg;
    cfg.trickle = TrickleConfig{250'000, 8, 3};
    cfg.dao_interval = 5'000'000;
    cfg.dis_interval = 2'000'000;
    return cfg;
  }

  void start(std::size_t root_index = 0) {
    world.start_all();
    for (std::size_t i = 0; i < routers.size(); ++i) {
      if (i == root_index) {
        routers[i]->start_root();
      } else {
        routers[i]->start();
      }
    }
  }

  [[nodiscard]] bool all_joined() const {
    for (const auto& r : routers) {
      if (!r->joined()) return false;
    }
    return true;
  }

  World& world;
  std::vector<std::unique_ptr<RplRouting>> routers;
};

// ---------------------------------------------------------------- RPL core

TEST(Rpl, LineFormsDodagWithMonotoneRanks) {
  World w(41);
  w.make_line(5, 25.0);
  RplNet net(w);
  net.start();
  w.sched().run_until(30_s);
  ASSERT_TRUE(net.all_joined());
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_LT(net.routers[i - 1]->rank(), net.routers[i]->rank());
    EXPECT_EQ(net.routers[i]->preferred_parent(),
              static_cast<NodeId>(i - 1));
    EXPECT_EQ(net.routers[i]->root_id(), 0u);
  }
}

TEST(Rpl, DataFlowsUpAcrossHops) {
  World w(42);
  w.make_line(5, 25.0);
  RplNet net(w);
  net.start();
  std::vector<std::pair<NodeId, std::uint8_t>> arrivals;
  net.routers[0]->set_delivery_handler(
      [&](NodeId origin, BytesView, std::uint8_t hops) {
        arrivals.emplace_back(origin, hops);
      });
  w.sched().run_until(30_s);
  ASSERT_TRUE(net.all_joined());
  w.sched().schedule_at(31_s, [&] {
    net.routers[4]->send_up(to_buffer("hello-from-leaf"));
  });
  w.sched().run_until(35_s);
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0].first, 4u);
  EXPECT_EQ(arrivals[0].second, 4u);  // 4 hops on a 5-node line
}

TEST(Rpl, ManyOriginsAllDeliver) {
  World w(43);
  // 3x3 grid, 22 m pitch.
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      w.add_node(static_cast<NodeId>(y * 3 + x), {x * 22.0, y * 22.0});
    }
  }
  RplNet net(w);
  net.start();
  int delivered = 0;
  net.routers[0]->set_delivery_handler(
      [&](NodeId, BytesView, std::uint8_t) { ++delivered; });
  w.sched().run_until(30_s);
  ASSERT_TRUE(net.all_joined());
  for (std::size_t i = 1; i < 9; ++i) {
    w.sched().schedule_at(30_s + static_cast<Time>(i) * 200'000, [&, i] {
      net.routers[i]->send_up(to_buffer("reading"));
    });
  }
  w.sched().run_until(40_s);
  EXPECT_EQ(delivered, 8);
}

TEST(Rpl, DownwardRoutesViaDao) {
  World w(44);
  w.make_line(4, 25.0);
  RplNet net(w);
  net.start();
  std::vector<NodeId> leaf_rx;
  net.routers[3]->set_delivery_handler(
      [&](NodeId origin, BytesView p, std::uint8_t) {
        leaf_rx.push_back(origin);
        EXPECT_EQ(to_string(p), "actuate!");
      });
  w.sched().run_until(40_s);  // allow DAOs to propagate
  ASSERT_TRUE(net.all_joined());
  EXPECT_GE(net.routers[0]->downward_table_size(), 3u);
  bool sent = false;
  w.sched().schedule_at(41_s, [&] {
    sent = net.routers[0]->send_down(3, to_buffer("actuate!"));
  });
  w.sched().run_until(45_s);
  EXPECT_TRUE(sent);
  ASSERT_EQ(leaf_rx.size(), 1u);
  EXPECT_EQ(leaf_rx[0], 0u);
}

TEST(Rpl, ReroutesAroundFailedParent) {
  // Diamond: 0(root) - {1,2} - 3. Node 3 is out of the root's radio
  // range, so it must relay via 1 or 2; kill whichever it prefers.
  World w(45);
  w.add_node(0, {0, 0});
  w.add_node(1, {25, 12});
  w.add_node(2, {25, -12});
  w.add_node(3, {50, 0});
  RplNet net(w);
  net.start();
  int delivered = 0;
  net.routers[0]->set_delivery_handler(
      [&](NodeId, BytesView, std::uint8_t) { ++delivered; });
  w.sched().run_until(20_s);
  ASSERT_TRUE(net.all_joined());
  const NodeId first_parent = net.routers[3]->preferred_parent();
  ASSERT_TRUE(first_parent == 1 || first_parent == 2);
  // Kill the preferred relay's MAC (simulates node crash).
  w.sched().schedule_at(20_s, [&] {
    w.node(first_parent).mac->stop();
    net.routers[first_parent]->stop();
  });
  // Leaf keeps sending periodic data; after a few failures it must
  // switch to the surviving relay.
  for (int i = 0; i < 20; ++i) {
    w.sched().schedule_at(21_s + static_cast<Time>(i) * 1'000'000,
                          [&] { net.routers[3]->send_up(to_buffer("d")); });
  }
  w.sched().run_until(60_s);
  EXPECT_NE(net.routers[3]->preferred_parent(), first_parent);
  EXPECT_GE(delivered, 10);
}

TEST(Rpl, GlobalRepairPropagatesNewVersion) {
  World w(46);
  w.make_line(4, 25.0);
  RplNet net(w);
  net.start();
  w.sched().run_until(20_s);
  ASSERT_TRUE(net.all_joined());
  EXPECT_EQ(net.routers[3]->version(), 0);
  w.sched().schedule_at(20_s, [&] { net.routers[0]->global_repair(); });
  w.sched().run_until(60_s);
  for (auto& r : net.routers) EXPECT_EQ(r->version(), 1);
  EXPECT_TRUE(net.all_joined());
}

TEST(Rpl, TrickleKeepsControlOverheadSublinear) {
  // In steady state, DIO rate must decay (interval doubling).
  World w(47);
  w.make_line(4, 25.0);
  RplNet net(w);
  net.start();
  w.sched().run_until(30_s);
  std::uint64_t early = 0;
  for (auto& r : net.routers) early += r->stats().dio_tx;
  w.sched().run_until(60_s);
  std::uint64_t late = 0;
  for (auto& r : net.routers) late += r->stats().dio_tx;
  // Second 30 s window must produce far fewer DIOs than the first.
  EXPECT_LT(late - early, early / 2 + 2);
}

TEST(Rpl, SendUpFailsWhenNotJoined) {
  World w(48);
  w.make_line(2, 25.0);
  RplNet net(w);
  // Do not start: not joined.
  EXPECT_FALSE(net.routers[1]->send_up(to_buffer("x")));
}

// ------------------------------------------------------------------- RNFD

struct RnfdNet {
  RnfdNet(World& w, RplNet& net, RnfdConfig cfg) {
    for (std::size_t i = 1; i < net.routers.size(); ++i) {
      detectors.push_back(std::make_unique<RnfdDetector>(
          *net.routers[i], w.sched(), w.rng().fork(2000 + i), cfg));
    }
  }
  void start() {
    for (auto& d : detectors) d->start();
  }
  [[nodiscard]] int dead_count() const {
    int n = 0;
    for (const auto& d : detectors) {
      if (d->root_declared_dead()) ++n;
    }
    return n;
  }
  std::vector<std::unique_ptr<RnfdDetector>> detectors;
};

RnfdConfig fast_rnfd() {
  RnfdConfig cfg;
  cfg.probe_interval = 5'000'000;
  cfg.probe_jitter = 2'000'000;
  cfg.gossip_interval = 500'000;
  cfg.quorum_min = 2;
  cfg.quorum_ratio = 0.5;
  return cfg;
}

TEST(Rnfd, NoFalseAlarmsWhileRootAlive) {
  World w(50);
  w.add_node(0, {0, 0});
  w.add_node(1, {20, 0});
  w.add_node(2, {0, 20});
  w.add_node(3, {-20, 0});
  w.add_node(4, {40, 0});
  RplNet net(w);
  RnfdNet rnfd(w, net, fast_rnfd());
  net.start();
  w.sched().run_until(15_s);
  rnfd.start();
  w.sched().run_until(120_s);
  EXPECT_EQ(rnfd.dead_count(), 0);
}

TEST(Rnfd, DetectsRootDeathAndSpreadsVerdict) {
  World w(51);
  w.add_node(0, {0, 0});    // root
  w.add_node(1, {20, 0});   // sentinel
  w.add_node(2, {0, 20});   // sentinel
  w.add_node(3, {-20, 0});  // sentinel
  w.add_node(4, {40, 0});   // 2 hops away (via 1)
  RplNet net(w);
  RnfdNet rnfd(w, net, fast_rnfd());
  net.start();
  w.sched().run_until(15_s);
  rnfd.start();
  w.sched().run_until(30_s);
  int sentinels = 0;
  for (auto& d : rnfd.detectors) {
    if (d->is_sentinel()) ++sentinels;
  }
  EXPECT_GE(sentinels, 2);
  // Root dies.
  w.sched().schedule_at(30_s, [&] {
    w.node(0).mac->stop();
    net.routers[0]->stop();
  });
  w.sched().run_until(90_s);
  // All nodes (including the 2-hop one) learn the verdict via gossip.
  EXPECT_EQ(rnfd.dead_count(), 4);
}

TEST(Rnfd, RootRecoveryAdvancesEpochAndClearsVerdict) {
  World w(52);
  w.add_node(0, {0, 0});
  w.add_node(1, {20, 0});
  w.add_node(2, {0, 20});
  w.add_node(3, {-20, 0});
  RplNet net(w);
  RnfdNet rnfd(w, net, fast_rnfd());
  net.start();
  w.sched().run_until(15_s);
  rnfd.start();
  // Kill and later revive the root MAC.
  w.sched().schedule_at(30_s, [&] { w.node(0).mac->stop(); });
  w.sched().run_until(80_s);
  EXPECT_GE(rnfd.dead_count(), 2);
  w.sched().schedule_at(80_s, [&] { w.node(0).mac->start(); });
  w.sched().run_until(140_s);
  EXPECT_EQ(rnfd.dead_count(), 0);
  std::uint64_t advances = 0;
  for (auto& d : rnfd.detectors) advances += d->stats().epoch_advances;
  EXPECT_GE(advances, 1u);
}

TEST(Keepalive, DetectsAfterKMisses) {
  World w(53);
  w.add_node(0, {0, 0});
  w.add_node(1, {20, 0});
  RplNet net(w);
  KeepaliveConfig cfg;
  cfg.probe_interval = 5'000'000;
  cfg.probe_jitter = 1'000'000;
  cfg.k_missed = 3;
  KeepaliveDetector det(*net.routers[1], w.sched(), w.rng().fork(77), cfg);
  net.start();
  w.sched().run_until(10_s);
  det.start();
  w.sched().run_until(30_s);
  EXPECT_FALSE(det.root_declared_dead());
  Time death = 30_s;
  w.sched().schedule_at(death, [&] { w.node(0).mac->stop(); });
  w.sched().run_until(80_s);
  EXPECT_TRUE(det.root_declared_dead());
}

}  // namespace
}  // namespace iiot::net
