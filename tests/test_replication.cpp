// Replicated KV tests: AP (CRDT/anti-entropy) vs CP (primary quorum)
// behaviour, with and without partitions — the CAP mechanics of §V-C.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "replication/backend_net.hpp"
#include "replication/kv.hpp"

namespace iiot::replication {
namespace {

using namespace sim;  // NOLINT: time literals

struct ApCluster {
  explicit ApCluster(int n, std::uint64_t seed = 1)
      : rng(seed), net(sched, Rng(seed ^ 0xAB)) {
    std::vector<ReplicaId> ids;
    for (int i = 1; i <= n; ++i) ids.push_back(static_cast<ReplicaId>(i));
    for (ReplicaId id : ids) {
      replicas.push_back(std::make_unique<ApReplica>(
          id, ids, net, sched, rng.fork(id), ApConfig{}));
    }
    for (auto& r : replicas) r->start();
  }
  [[nodiscard]] bool all_converged() const {
    for (std::size_t i = 1; i < replicas.size(); ++i) {
      if (!replicas[0]->same_state_as(*replicas[i])) return false;
    }
    return true;
  }
  Scheduler sched;
  Rng rng;
  BackendNet net;
  std::vector<std::unique_ptr<ApReplica>> replicas;
};

TEST(ApKv, LocalWriteVisibleImmediately) {
  ApCluster c(3);
  c.replicas[0]->put("k", "v1");
  EXPECT_EQ(c.replicas[0]->get("k"), "v1");
  EXPECT_EQ(c.replicas[1]->get("k"), std::nullopt);  // not yet gossiped
}

TEST(ApKv, GossipConvergesCluster) {
  ApCluster c(5);
  c.replicas[0]->put("a", "1");
  c.replicas[2]->put("b", "2");
  c.replicas[4]->put("c", "3");
  c.sched.run_until(20_s);
  EXPECT_TRUE(c.all_converged());
  for (auto& r : c.replicas) {
    EXPECT_EQ(r->get("a"), "1");
    EXPECT_EQ(r->get("b"), "2");
    EXPECT_EQ(r->get("c"), "3");
  }
}

TEST(ApKv, LastWriterWinsAcrossReplicas) {
  ApCluster c(3);
  c.replicas[0]->put("k", "early");
  c.sched.run_until(1_s);
  c.sched.schedule_at(2_s, [&] { c.replicas[1]->put("k", "late"); });
  c.sched.run_until(20_s);
  EXPECT_TRUE(c.all_converged());
  EXPECT_EQ(c.replicas[2]->get("k"), "late");
}

TEST(ApKv, WritesSucceedOnBothSidesOfPartition) {
  ApCluster c(4);
  c.sched.run_until(2_s);
  c.net.set_partition({{1, 2}, {3, 4}});
  EXPECT_TRUE(c.replicas[0]->put("left", "L"));
  EXPECT_TRUE(c.replicas[2]->put("right", "R"));
  c.sched.run_until(10_s);
  // Sides see their own writes but not the other side's.
  EXPECT_EQ(c.replicas[1]->get("left"), "L");
  EXPECT_EQ(c.replicas[1]->get("right"), std::nullopt);
  EXPECT_EQ(c.replicas[3]->get("right"), "R");
  // Heal: full convergence including cross-side data.
  c.net.heal();
  c.sched.run_until(30_s);
  EXPECT_TRUE(c.all_converged());
  EXPECT_EQ(c.replicas[3]->get("left"), "L");
  EXPECT_EQ(c.replicas[0]->get("right"), "R");
}

TEST(ApKv, ConcurrentPartitionedWritesResolveDeterministically) {
  ApCluster c(2);
  c.sched.run_until(1_s);
  c.net.set_partition({{1}, {2}});
  // Both write the same key at the same simulated time: LWW tiebreak by
  // replica id (higher wins).
  c.replicas[0]->put("k", "from-1");
  c.replicas[1]->put("k", "from-2");
  c.net.heal();
  c.sched.run_until(20_s);
  EXPECT_TRUE(c.all_converged());
  EXPECT_EQ(c.replicas[0]->get("k"), "from-2");
}

TEST(ApKv, RemovePropagates) {
  ApCluster c(3);
  c.replicas[0]->put("k", "v");
  c.sched.run_until(10_s);
  EXPECT_EQ(c.replicas[2]->get("k"), "v");
  c.replicas[2]->remove("k");
  c.sched.run_until(25_s);
  EXPECT_TRUE(c.all_converged());
  EXPECT_EQ(c.replicas[0]->get("k"), std::nullopt);
}

// ----------------------------------------------------------------- CP side

struct CpCluster {
  explicit CpCluster(int n, std::uint64_t seed = 1)
      : rng(seed), net(sched, Rng(seed ^ 0xCD)) {
    std::vector<ReplicaId> ids;
    for (int i = 1; i <= n; ++i) ids.push_back(static_cast<ReplicaId>(i));
    for (ReplicaId id : ids) {
      replicas.push_back(std::make_unique<CpReplica>(
          id, /*primary=*/1, ids, net, sched, rng.fork(id), CpConfig{}));
    }
    for (auto& r : replicas) r->start();
  }
  Scheduler sched;
  Rng rng;
  BackendNet net;
  std::vector<std::unique_ptr<CpReplica>> replicas;
};

TEST(CpKv, PrimaryWriteReachesQuorumAndAllReplicas) {
  CpCluster c(5);
  bool ok = false;
  c.replicas[0]->put("k", "v", [&](bool r) { ok = r; });
  c.sched.run_until(5_s);
  EXPECT_TRUE(ok);
  for (auto& r : c.replicas) EXPECT_EQ(r->get("k"), "v");
}

TEST(CpKv, FollowerWriteForwardsToPrimary) {
  CpCluster c(3);
  bool ok = false;
  c.replicas[2]->put("k", "via-follower", [&](bool r) { ok = r; });
  c.sched.run_until(5_s);
  EXPECT_TRUE(ok);
  EXPECT_EQ(c.replicas[0]->get("k"), "via-follower");
}

TEST(CpKv, MinorityPartitionCannotWrite) {
  CpCluster c(5);
  // {4,5} in the minority; primary 1 retains quorum with {1,2,3}.
  c.net.set_partition({{1, 2, 3}, {4, 5}});
  bool minority_ok = true, majority_ok = false;
  c.replicas[4]->put("k", "m", [&](bool r) { minority_ok = r; });
  c.replicas[1]->put("k2", "ok", [&](bool r) { majority_ok = r; });
  c.sched.run_until(10_s);
  EXPECT_FALSE(minority_ok);  // CP: unavailable on the minority side
  EXPECT_TRUE(majority_ok);
}

TEST(CpKv, PrimaryInMinorityBlocksAllWrites) {
  CpCluster c(5);
  // Primary 1 isolated with 2: neither side can commit (no failover).
  c.net.set_partition({{1, 2}, {3, 4, 5}});
  int failures = 0;
  c.replicas[0]->put("a", "x", [&](bool r) { failures += r ? 0 : 1; });
  c.replicas[3]->put("b", "y", [&](bool r) { failures += r ? 0 : 1; });
  c.sched.run_until(10_s);
  EXPECT_EQ(failures, 2);
}

TEST(CpKv, HealRestoresAvailability) {
  CpCluster c(5);
  c.net.set_partition({{1, 2}, {3, 4, 5}});
  bool ok = true;
  c.replicas[0]->put("k", "v", [&](bool r) { ok = r; });
  c.sched.run_until(5_s);
  EXPECT_FALSE(ok);
  c.net.heal();
  c.replicas[0]->put("k", "v2", [&](bool r) { ok = r; });
  c.sched.run_until(10_s);
  EXPECT_TRUE(ok);
  EXPECT_EQ(c.replicas[4]->get("k"), "v2");
}

TEST(CpKv, ReadsNeverSeeUncommittedData) {
  CpCluster c(5);
  c.net.set_partition({{1}, {2, 3, 4, 5}});
  c.replicas[0]->put("k", "uncommitted", [](bool) {});
  c.sched.run_until(5_s);
  // The write failed; no replica (including the primary) may expose it.
  for (auto& r : c.replicas) EXPECT_EQ(r->get("k"), std::nullopt);
}

}  // namespace
}  // namespace iiot::replication
