// Backend fast-path regression suite (DESIGN.md §4f).
//
// The interned/chunked TimeSeriesStore and the trie-indexed TopicBus
// promise *observably identical* behavior to the seed implementations
// (linear-scan map-based store and bus). These tests hold them to it:
// the seed implementations are embedded verbatim as reference oracles
// and driven differentially with randomized workloads, alongside
// directed coverage of the re-entrancy contract, topic-matching edge
// cases, retention boundaries, the batched entry points, window rules,
// and the System-level wiring.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "agg/collection.hpp"
#include "backend/rules.hpp"
#include "backend/timeseries.hpp"
#include "backend/topic_bus.hpp"
#include "core/system.hpp"
#include "obs/context.hpp"
#include "sim/scheduler.hpp"

namespace iiot::backend {
namespace {

// Tiny deterministic generator so the differential workloads are
// reproducible without dragging in the stack's Rng.
struct Lcg {
  std::uint64_t s;
  std::uint64_t next() {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 33;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

// ---- reference oracles (the seed implementations, verbatim) -----------

// Pre-interning, pre-chunking store: map of deques, linear scans.
class RefStore {
 public:
  explicit RefStore(RetentionPolicy retention = {})
      : retention_(retention) {}

  void append(const std::string& series, sim::Time at, double value) {
    auto& log = series_[series];
    if (!log.empty() && at < log.back().at) at = log.back().at;
    log.push_back(Point{at, value});
    enforce_retention(log, at);
  }

  [[nodiscard]] std::optional<Point> latest(
      const std::string& series) const {
    auto it = series_.find(series);
    if (it == series_.end() || it->second.empty()) return std::nullopt;
    return it->second.back();
  }

  [[nodiscard]] std::vector<Point> query(const std::string& series,
                                         sim::Time from,
                                         sim::Time to) const {
    std::vector<Point> out;
    auto it = series_.find(series);
    if (it == series_.end()) return out;
    for (const Point& p : it->second) {
      if (p.at >= from && p.at <= to) out.push_back(p);
    }
    return out;
  }

  [[nodiscard]] std::vector<Point> downsample(const std::string& series,
                                              sim::Time from, sim::Time to,
                                              sim::Duration bucket) const {
    std::vector<Point> out;
    if (bucket == 0) return out;
    auto raw = query(series, from, to);
    std::size_t i = 0;
    while (i < raw.size()) {
      const sim::Time start = raw[i].at - (raw[i].at - from) % bucket;
      double sum = 0;
      std::size_t n = 0;
      while (i < raw.size() && raw[i].at < start + bucket) {
        sum += raw[i].value;
        ++n;
        ++i;
      }
      out.push_back(Point{start, sum / static_cast<double>(n)});
    }
    return out;
  }

  [[nodiscard]] std::size_t points(const std::string& series) const {
    auto it = series_.find(series);
    return it == series_.end() ? 0 : it->second.size();
  }

 private:
  void enforce_retention(std::deque<Point>& log, sim::Time now) {
    if (retention_.max_age > 0) {
      while (!log.empty() && log.front().at + retention_.max_age < now) {
        log.pop_front();
      }
    }
    if (retention_.max_points > 0) {
      while (log.size() > retention_.max_points) log.pop_front();
    }
  }

  RetentionPolicy retention_;
  std::map<std::string, std::deque<Point>> series_;
};

// Pre-trie bus: ordered map of subscriptions, linear topic_matches scan.
// (Its iteration order — ascending SubId — is the delivery-order oracle.)
class RefBus {
 public:
  using SubId = std::uint64_t;
  using Handler = TopicBus::Handler;

  SubId subscribe(std::string filter, Handler handler) {
    const SubId id = next_id_++;
    subs_[id] = Sub{std::move(filter), std::move(handler)};
    return id;
  }
  void unsubscribe(SubId id) { subs_.erase(id); }
  void publish(const std::string& topic, const std::string& payload) {
    const BytesView view(
        reinterpret_cast<const std::uint8_t*>(payload.data()),
        payload.size());
    for (auto& [id, sub] : subs_) {
      if (topic_matches(sub.filter, topic)) sub.handler(topic, view);
    }
  }

 private:
  struct Sub {
    std::string filter;
    Handler handler;
  };
  std::map<SubId, Sub> subs_;
  SubId next_id_ = 1;
};

void expect_same_points(const std::vector<Point>& got,
                        const std::vector<Point>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].at, want[i].at) << "index " << i;
    EXPECT_EQ(got[i].value, want[i].value) << "index " << i;
  }
}

// ---- topic matching edge cases ----------------------------------------

TEST(TopicMatchEdge, RootHashMatchesEverythingIncludingEmpty) {
  EXPECT_TRUE(topic_matches("#", ""));
  EXPECT_TRUE(topic_matches("#", "a"));
  EXPECT_TRUE(topic_matches("#", "a/b/c"));
  EXPECT_TRUE(topic_matches("#", "/"));
}

TEST(TopicMatchEdge, HashRequiresAtLeastOneMoreLevel) {
  EXPECT_FALSE(topic_matches("a/#", "a"));
  EXPECT_TRUE(topic_matches("a/#", "a/"));  // trailing empty level counts
  EXPECT_TRUE(topic_matches("a/#", "a/b"));
  EXPECT_TRUE(topic_matches("a/#", "a/b/c"));
  EXPECT_FALSE(topic_matches("a/#", "b/c"));
}

TEST(TopicMatchEdge, PlusMatchesExactlyOneLevelIncludingEmpty) {
  EXPECT_TRUE(topic_matches("+", ""));  // "" is one (empty) level
  EXPECT_TRUE(topic_matches("+", "a"));
  EXPECT_FALSE(topic_matches("+", "a/b"));
  EXPECT_TRUE(topic_matches("a/+", "a/"));  // trailing-'/' topic
  EXPECT_FALSE(topic_matches("a/+", "a"));
  EXPECT_TRUE(topic_matches("a/+/c", "a//c"));  // empty middle level
  EXPECT_TRUE(topic_matches("+/+", "/"));
}

TEST(TopicMatchEdge, LengthMismatchesFail) {
  EXPECT_FALSE(topic_matches("a/b/c", "a/b"));  // filter longer than topic
  EXPECT_FALSE(topic_matches("a/b", "a/b/c"));  // topic longer than filter
  EXPECT_FALSE(topic_matches("", "a"));
  EXPECT_TRUE(topic_matches("", ""));
}

TEST(TopicMatchEdge, WildcardsAreOnlyWildcardsAsWholeLevels) {
  EXPECT_FALSE(topic_matches("a+", "ab"));
  EXPECT_FALSE(topic_matches("a#", "ab"));
  EXPECT_TRUE(topic_matches("a+", "a+"));  // literal match
  EXPECT_TRUE(topic_matches("a#", "a#"));
}

// Every (filter, topic) pair from pools of tricky shapes: the bus's
// trie + exact-index matching must agree with the reference predicate.
TEST(TopicMatchEdge, BusMatchingAgreesWithPredicateExhaustively) {
  const std::vector<std::string> filters{
      "#",      "+",         "+/+",      "+/#",      "a",
      "a/b",    "a/b/c",     "a/+",      "a/#",      "a/+/c",
      "a/+/#",  "+/b/#",     "",         "a/",       "a+",
      "a#",     "+/+/+",     "x/y/z/#",  "a/b/#",    "+/b"};
  const std::vector<std::string> topics{
      "",     "a",     "a/",   "a/b",   "a/b/",  "a/b/c", "a//c",
      "/",    "a+",    "a#",   "b/c",   "a/b/c/d", "x/y/z", "x/y/z/w"};

  TopicBus bus;
  std::vector<int> hits(filters.size(), 0);
  for (std::size_t i = 0; i < filters.size(); ++i) {
    bus.subscribe(filters[i],
                  [&hits, i](const std::string&, BytesView) { ++hits[i]; });
  }
  for (const std::string& topic : topics) {
    std::fill(hits.begin(), hits.end(), 0);
    bus.publish(topic, std::string("x"));
    for (std::size_t i = 0; i < filters.size(); ++i) {
      EXPECT_EQ(hits[i] != 0, topic_matches(filters[i], topic))
          << "filter '" << filters[i] << "' topic '" << topic << "'";
      EXPECT_LE(hits[i], 1) << "duplicate delivery for '" << filters[i]
                            << "' on '" << topic << "'";
    }
  }
}

// Regression: creating a '+'/'#' trie edge writes the child index through
// a pointer into trie_[cur]; growing trie_ during that creation used to
// reallocate the vector first and then read the dangling pointer
// (use-after-free, ASan-visible). Deep all-wildcard chains force every
// node creation through that edge path across many reallocations.
TEST(TopicBusTrieGrowth, WildcardEdgeCreationSurvivesReallocation) {
  TopicBus bus;
  std::vector<std::string> filters;
  std::string plus_chain;
  for (int depth = 0; depth < 64; ++depth) {
    plus_chain += depth == 0 ? "+" : "/+";
    filters.push_back(plus_chain);         // "+", "+/+", ...
    filters.push_back(plus_chain + "/#");  // "+/#", "+/+/#", ...
  }
  std::vector<int> hits(filters.size(), 0);
  for (std::size_t i = 0; i < filters.size(); ++i) {
    bus.subscribe(filters[i],
                  [&hits, i](const std::string&, BytesView) { ++hits[i]; });
  }
  std::string topic;
  for (int depth = 0; depth < 70; ++depth) {
    topic += depth == 0 ? "t" : "/t";
    std::fill(hits.begin(), hits.end(), 0);
    bus.publish(topic, std::string("x"));
    for (std::size_t i = 0; i < filters.size(); ++i) {
      EXPECT_EQ(hits[i] != 0, topic_matches(filters[i], topic))
          << "filter '" << filters[i] << "' topic '" << topic << "'";
    }
  }
}

// ---- differential: bus delivery order ---------------------------------

TEST(TopicBusDifferential, DeliveryOrderMatchesSeedBus) {
  const std::vector<std::string> filters{
      "plant/+/3303", "plant/#",  "plant/7/3303", "+/+/#",
      "plant/7/+",    "#",        "other/x",      "plant/+/+",
      "plant/7/3303", "+/7/3303", "other/#",      "plant/"};
  const std::vector<std::string> topics{
      "plant/7/3303", "plant/9/3303", "plant/7/3306", "other/x",
      "plant/",       "other/y/z",    "unrelated",    "plant/7/3303/x"};

  // Both buses issue ids 1, 2, 3, ... in subscribe order, so logging the
  // SubId directly makes the logs comparable.
  TopicBus fast;
  RefBus ref;
  std::vector<std::string> fast_log, ref_log;
  auto handler = [](std::vector<std::string>& log, std::uint64_t id) {
    return [&log, id](const std::string& topic, BytesView payload) {
      log.push_back(std::to_string(id) + "|" + topic + "|" +
                    std::string(reinterpret_cast<const char*>(payload.data()),
                                payload.size()));
    };
  };

  Lcg rng{2024};
  std::vector<std::uint64_t> live;  // ids live in BOTH buses (aligned)
  std::uint64_t next_id = 1;
  for (int op = 0; op < 2000; ++op) {
    const std::uint64_t roll = rng.below(10);
    if (roll < 3) {
      const std::string& f = filters[rng.below(filters.size())];
      const std::uint64_t id = next_id++;
      ASSERT_EQ(fast.subscribe(f, handler(fast_log, id)), id);
      ASSERT_EQ(ref.subscribe(f, handler(ref_log, id)), id);
      live.push_back(id);
    } else if (roll < 4 && !live.empty()) {
      const std::size_t k = rng.below(live.size());
      fast.unsubscribe(live[k]);
      ref.unsubscribe(live[k]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
    } else {
      const std::string& t = topics[rng.below(topics.size())];
      const std::string payload = "p" + std::to_string(op);
      fast.publish(t, payload);
      ref.publish(t, payload);
    }
  }
  ASSERT_EQ(fast_log.size(), ref_log.size());
  for (std::size_t i = 0; i < fast_log.size(); ++i) {
    ASSERT_EQ(fast_log[i], ref_log[i]) << "delivery " << i;
  }
  EXPECT_EQ(fast.subscription_count(), live.size());
}

// ---- re-entrancy contract ---------------------------------------------

TEST(TopicBusReentrancy, SubscribeDuringDispatchJoinsNextPublishOnly) {
  TopicBus bus;
  int late_hits = 0;
  bool installed = false;
  bus.subscribe("t", [&](const std::string&, BytesView) {
    if (!installed) {
      installed = true;
      bus.subscribe("t", [&](const std::string&, BytesView) {
        ++late_hits;
      });
    }
  });
  bus.publish("t", std::string("a"));
  EXPECT_EQ(late_hits, 0);  // snapshot predates the new subscription
  bus.publish("t", std::string("b"));
  EXPECT_EQ(late_hits, 1);
}

TEST(TopicBusReentrancy, SelfUnsubscribeDuringDispatchIsSafe) {
  TopicBus bus;
  int hits = 0;
  TopicBus::SubId self = 0;
  self = bus.subscribe("t", [&](const std::string&, BytesView) {
    ++hits;
    bus.unsubscribe(self);
  });
  int other_hits = 0;
  bus.subscribe("t", [&](const std::string&, BytesView) { ++other_hits; });
  bus.publish("t", std::string("a"));
  bus.publish("t", std::string("b"));
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(other_hits, 2);
  EXPECT_EQ(bus.subscription_count(), 1u);
  EXPECT_EQ(bus.stats().deferred_unsubs, 1u);
}

TEST(TopicBusReentrancy, UnsubscribingPendingSubscriberSkipsIt) {
  TopicBus bus;
  TopicBus::SubId victim = 0;
  int victim_hits = 0;
  // Subscribed first => dispatched first; removes the later sub before
  // its turn in the same publish.
  bus.subscribe("t", [&](const std::string&, BytesView) {
    bus.unsubscribe(victim);
  });
  victim = bus.subscribe("t", [&](const std::string&, BytesView) {
    ++victim_hits;
  });
  bus.publish("t", std::string("a"));
  EXPECT_EQ(victim_hits, 0);
  EXPECT_EQ(bus.subscription_count(), 1u);
}

TEST(TopicBusReentrancy, SelfUnsubscribeStopsRemainingBatchPayloads) {
  TopicBus bus;
  int hits = 0;
  TopicBus::SubId self = 0;
  self = bus.subscribe("t", [&](const std::string&, BytesView) {
    ++hits;
    bus.unsubscribe(self);
  });
  const std::string a = "a", b = "b", c = "c";
  const BytesView payloads[] = {
      {reinterpret_cast<const std::uint8_t*>(a.data()), a.size()},
      {reinterpret_cast<const std::uint8_t*>(b.data()), b.size()},
      {reinterpret_cast<const std::uint8_t*>(c.data()), c.size()}};
  bus.publish_batch("t", payloads);
  EXPECT_EQ(hits, 1);  // inactive for the batch's remaining payloads
  EXPECT_EQ(bus.published(), 3u);
}

TEST(TopicBusReentrancy, NestedPublishFromHandlerDeliversInline) {
  TopicBus bus;
  std::vector<std::string> order;
  bus.subscribe("inner", [&](const std::string&, BytesView) {
    order.push_back("inner");
  });
  bus.subscribe("outer", [&](const std::string&, BytesView) {
    order.push_back("outer-pre");
    bus.publish("inner", std::string("n"));
    order.push_back("outer-post");
  });
  // Second subscriber on "outer" proves the outer snapshot survives the
  // nested dispatch's scratch usage.
  bus.subscribe("outer", [&](const std::string&, BytesView) {
    order.push_back("outer2");
  });
  bus.publish("outer", std::string("o"));
  const std::vector<std::string> want{"outer-pre", "inner", "outer-post",
                                      "outer2"};
  EXPECT_EQ(order, want);
  EXPECT_EQ(bus.published(), 2u);
  EXPECT_EQ(bus.delivered(), 3u);  // outer x2 + nested inner
}

TEST(TopicBusReentrancy, NestedPublishToSameTopicTerminates) {
  TopicBus bus;
  int depth = 0, hits = 0;
  bus.subscribe("t", [&](const std::string&, BytesView) {
    ++hits;
    if (++depth < 3) bus.publish("t", std::string("again"));
    --depth;
  });
  bus.publish("t", std::string("go"));
  EXPECT_EQ(hits, 3);
}

// ---- batched publish --------------------------------------------------

TEST(TopicBusBatch, SameTopicBatchMatchesSequentialPublishes) {
  auto wire = [](TopicBus& bus, std::vector<std::string>& log) {
    for (const char* f : {"a/+", "a/b", "#", "a/#"}) {
      bus.subscribe(f, [&log, f](const std::string& t, BytesView p) {
        log.push_back(std::string(f) + "|" + t + "|" +
                      std::string(reinterpret_cast<const char*>(p.data()),
                                  p.size()));
      });
    }
  };
  TopicBus seq, bat;
  std::vector<std::string> seq_log, bat_log;
  wire(seq, seq_log);
  wire(bat, bat_log);

  const std::string p0 = "x", p1 = "yy", p2 = "zzz";
  seq.publish("a/b", p0);
  seq.publish("a/b", p1);
  seq.publish("a/b", p2);

  const BytesView payloads[] = {
      {reinterpret_cast<const std::uint8_t*>(p0.data()), p0.size()},
      {reinterpret_cast<const std::uint8_t*>(p1.data()), p1.size()},
      {reinterpret_cast<const std::uint8_t*>(p2.data()), p2.size()}};
  bat.publish_batch("a/b", payloads);

  EXPECT_EQ(bat_log, seq_log);
  EXPECT_EQ(bat.published(), seq.published());
  EXPECT_EQ(bat.delivered(), seq.delivered());
  EXPECT_EQ(bat.stats().batches, 1u);
}

TEST(TopicBusBatch, MultiTopicBatchMatchesSequentialPublishes) {
  auto wire = [](TopicBus& bus, std::vector<std::string>& log) {
    for (const char* f : {"a", "b", "+"}) {
      bus.subscribe(f, [&log, f](const std::string& t, BytesView p) {
        log.push_back(std::string(f) + "|" + t + "|" +
                      std::string(reinterpret_cast<const char*>(p.data()),
                                  p.size()));
      });
    }
  };
  TopicBus seq, bat;
  std::vector<std::string> seq_log, bat_log;
  wire(seq, seq_log);
  wire(bat, bat_log);

  // "a","a" coalesce into one matching pass; then "b"; then "a" again.
  std::vector<BusMessage> msgs(4);
  const char* topics[] = {"a", "a", "b", "a"};
  for (std::size_t i = 0; i < 4; ++i) {
    msgs[i].topic = topics[i];
    msgs[i].payload = {static_cast<std::uint8_t>('0' + i)};
    seq.publish(topics[i], BytesView(msgs[i].payload.data(), 1));
  }
  bat.publish_batch(msgs);

  EXPECT_EQ(bat_log, seq_log);
  EXPECT_EQ(bat.published(), 4u);
  EXPECT_EQ(bat.delivered(), seq.delivered());
}

// ---- differential: store ----------------------------------------------

TEST(TimeSeriesDifferential, RandomAppendsMatchSeedStoreUnderRetention) {
  // max_points spans multiple chunks so front-chunk erosion and whole
  // chunk pops both happen; integer values keep downsample sums exact.
  const RetentionPolicy ret{/*max_age=*/0, /*max_points=*/600};
  TimeSeriesStore fast(ret);
  RefStore ref(ret);

  Lcg rng{7};
  const std::string series[] = {"s/one", "s/two"};
  sim::Time t = 0;
  for (int i = 0; i < 4000; ++i) {
    const std::string& s = series[rng.below(2)];
    t += rng.below(20);
    // Occasionally hand both stores an out-of-order timestamp; both must
    // clamp identically.
    const sim::Time at = rng.below(10) == 0 ? t / 2 : t;
    const double v = static_cast<double>(rng.below(1000));
    fast.append(s, at, v);
    ref.append(s, at, v);

    if (i % 500 == 499) {
      const sim::Time from = rng.below(t + 1);
      const sim::Time to = from + rng.below(t + 1);
      expect_same_points(fast.query(s, from, to), ref.query(s, from, to));
      expect_same_points(fast.downsample(s, from, to, 64),
                         ref.downsample(s, from, to, 64));
    }
  }
  for (const std::string& s : series) {
    EXPECT_EQ(fast.points(s), ref.points(s));
    const auto fl = fast.latest(s);
    const auto rl = ref.latest(s);
    ASSERT_EQ(fl.has_value(), rl.has_value());
    if (fl) {
      EXPECT_EQ(fl->at, rl->at);
      EXPECT_EQ(fl->value, rl->value);
    }
    expect_same_points(fast.query(s, 0, t + 1), ref.query(s, 0, t + 1));
  }
}

TEST(TimeSeriesDifferential, AgeRetentionMatchesSeedStore) {
  const RetentionPolicy ret{/*max_age=*/1000, /*max_points=*/0};
  TimeSeriesStore fast(ret);
  RefStore ref(ret);
  Lcg rng{11};
  sim::Time t = 0;
  for (int i = 0; i < 3000; ++i) {
    t += rng.below(8);
    const double v = static_cast<double>(rng.below(100));
    fast.append("s", t, v);
    ref.append("s", t, v);
  }
  EXPECT_EQ(fast.points("s"), ref.points("s"));
  expect_same_points(fast.query("s", 0, t), ref.query("s", 0, t));
}

TEST(TimeSeriesDifferential, DownsampleRollupPathMatchesSeedStore) {
  TimeSeriesStore fast;  // no retention: head == 0, rollups everywhere
  RefStore ref;
  Lcg rng{13};
  sim::Time t = 0;
  for (int i = 0; i < 10000; ++i) {
    t += 1 + rng.below(5);
    const double v = static_cast<double>(rng.below(100));
    fast.append("s", t, v);
    ref.append("s", t, v);
  }
  // Big buckets swallow whole chunks (rollup path); odd buckets and
  // offset ranges exercise the partial-chunk scan path.
  const sim::Duration buckets[] = {1, 7, 64, 777, 4096, 100000};
  for (const sim::Duration b : buckets) {
    expect_same_points(fast.downsample("s", 0, t, b),
                       ref.downsample("s", 0, t, b));
    expect_same_points(fast.downsample("s", t / 3, 2 * t / 3, b),
                       ref.downsample("s", t / 3, 2 * t / 3, b));
  }
  EXPECT_GT(fast.stats().rollup_hits, 0u);
  EXPECT_GT(fast.stats().chunk_scans, 0u);
}

// ---- retention boundaries ---------------------------------------------

TEST(TimeSeriesRetention, PointExactlyMaxAgeOldSurvives) {
  TimeSeriesStore store({/*max_age=*/10, /*max_points=*/0});
  store.append("s", 0, 1.0);
  store.append("s", 10, 2.0);  // age of first == max_age: kept
  EXPECT_EQ(store.points("s"), 2u);
  store.append("s", 11, 3.0);  // now age 11 > max_age: evicted
  EXPECT_EQ(store.points("s"), 2u);
  EXPECT_EQ(store.query("s", 0, 100).front().at, 10u);
  EXPECT_EQ(store.stats().evicted, 1u);
}

TEST(TimeSeriesRetention, MaxPointsExactlyAtLimit) {
  TimeSeriesStore store({/*max_age=*/0, /*max_points=*/5});
  for (int i = 0; i < 5; ++i) {
    store.append("s", static_cast<sim::Time>(i), static_cast<double>(i));
  }
  EXPECT_EQ(store.points("s"), 5u);
  EXPECT_EQ(store.stats().evicted, 0u);
  store.append("s", 5, 5.0);
  EXPECT_EQ(store.points("s"), 5u);
  EXPECT_EQ(store.query("s", 0, 100).front().at, 1u);
  EXPECT_EQ(store.stats().evicted, 1u);
}

TEST(TimeSeriesRetention, OutOfOrderClampInteractsWithAgeRetention) {
  TimeSeriesStore store({/*max_age=*/10, /*max_points=*/0});
  store.append("s", 100, 1.0);
  // Out-of-order: clamped to t=100, so it cannot retro-trigger eviction
  // of the first point (now stays 100).
  store.append("s", 50, 2.0);
  EXPECT_EQ(store.points("s"), 2u);
  ASSERT_TRUE(store.latest("s").has_value());
  EXPECT_EQ(store.latest("s")->at, 100u);
  // A genuinely newer point ages both out (both sit at t=100).
  store.append("s", 200, 3.0);
  EXPECT_EQ(store.points("s"), 1u);
  EXPECT_EQ(store.stats().evicted, 2u);
}

// ---- interning + API --------------------------------------------------

TEST(TimeSeriesIntern, InternIsIdempotentAndFindNeverRegisters) {
  TimeSeriesStore store;
  const SeriesId a = store.intern("plant/1/3303");
  EXPECT_EQ(store.intern("plant/1/3303"), a);
  EXPECT_EQ(store.find("plant/1/3303"), a);
  EXPECT_EQ(store.name(a), "plant/1/3303");
  EXPECT_EQ(store.find("never/registered"), kInvalidSeries);
  EXPECT_EQ(store.series_count(), 1u);
  // String-shim reads on unknown series must not create them (seed
  // behavior: querying is side-effect free).
  EXPECT_TRUE(store.query("never/registered", 0, 100).empty());
  EXPECT_FALSE(store.latest("never/registered").has_value());
  EXPECT_EQ(store.points("never/registered"), 0u);
  EXPECT_EQ(store.series_count(), 1u);
  EXPECT_EQ(store.name(kInvalidSeries), "");
}

TEST(TimeSeriesIntern, SeriesNamesSortedLikeSeedMapOrder) {
  TimeSeriesStore store;
  store.intern("zeta");
  store.intern("alpha");
  store.intern("mid");
  const std::vector<std::string> want{"alpha", "mid", "zeta"};
  EXPECT_EQ(store.series_names(), want);
}

TEST(TimeSeriesVisit, VisitorMatchesQueryWithoutAllocating) {
  TimeSeriesStore store;
  const SeriesId id = store.intern("s");
  Lcg rng{17};
  sim::Time t = 0;
  for (int i = 0; i < 2000; ++i) {
    t += 1 + rng.below(4);
    store.append(id, t, static_cast<double>(rng.below(50)));
  }
  const sim::Time from = t / 4, to = 3 * t / 4;
  const auto want = store.query(id, from, to);
  std::vector<Point> got;
  got.reserve(want.size());
  store.visit(id, from, to, [&got](const Point& p) { got.push_back(p); });
  expect_same_points(got, want);
  // Degenerate ranges are no-ops.
  store.visit(id, 10, 5, [](const Point&) { FAIL(); });
  store.visit(kInvalidSeries, 0, 100, [](const Point&) { FAIL(); });
}

TEST(TimeSeriesBatch, AppendBatchMatchesSingleAppends) {
  const RetentionPolicy ret{/*max_age=*/500, /*max_points=*/700};
  TimeSeriesStore single(ret), batched(ret);
  const SeriesId sid = single.intern("s");
  const SeriesId bid = batched.intern("s");

  Lcg rng{19};
  sim::Time t = 0;
  std::vector<Point> batch;
  for (int round = 0; round < 40; ++round) {
    batch.clear();
    const std::size_t n = 1 + rng.below(120);
    for (std::size_t i = 0; i < n; ++i) {
      t += rng.below(6);
      const sim::Time at = rng.below(12) == 0 ? t / 2 : t;  // some OOO
      batch.push_back(Point{at, static_cast<double>(rng.below(100))});
    }
    for (const Point& p : batch) single.append(sid, p.at, p.value);
    batched.append_batch(bid, batch.data(), batch.size());

    ASSERT_EQ(batched.points(bid), single.points(sid)) << round;
  }
  expect_same_points(batched.query(bid, 0, t + 1),
                     single.query(sid, 0, t + 1));
  EXPECT_EQ(batched.stats().appends, single.stats().appends);
  EXPECT_EQ(batched.stats().evicted, single.stats().evicted);
}

TEST(TimeSeriesAggregate, MatchesLinearScanAndUsesRollups) {
  TimeSeriesStore store;
  const SeriesId id = store.intern("s");
  Lcg rng{23};
  sim::Time t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += 1 + rng.below(4);
    store.append(id, t, static_cast<double>(rng.below(1000)));
  }
  const sim::Time from = 100, to = t - 100;
  agg::PartialAggregate want;
  store.visit(id, from, to,
              [&want](const Point& p) { want.add_sample(p.value); });
  const std::uint64_t scans_before = store.stats().chunk_scans;
  const agg::PartialAggregate got = store.aggregate(id, from, to);
  EXPECT_EQ(got.count, want.count);
  EXPECT_EQ(got.sum, want.sum);  // integer samples: order-independent
  EXPECT_EQ(got.min, want.min);
  EXPECT_EQ(got.max, want.max);
  EXPECT_GT(store.stats().rollup_hits, 0u);
  // Interior chunks answered from rollups: at most the two boundary
  // chunks needed a raw scan.
  EXPECT_LE(store.stats().chunk_scans - scans_before, 2u);
}

// ---- window rules -----------------------------------------------------

struct WindowRig {
  TimeSeriesStore store;
  TopicBus bus;
  RuleEngine engine{bus, &store};
  sim::Time now = 0;

  WindowRig() {
    // Ingest first (lower SubId), as core::System wires it: the sample
    // is in the store before any rule sees the publish.
    bus.subscribe("plant/#", [this](const std::string& topic, BytesView p) {
      const std::string s = iiot::to_string(p);
      store.append(topic, now, std::strtod(s.c_str(), nullptr));
    });
  }
  void sample(const std::string& topic, double v) {
    now += 10;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    bus.publish(topic, std::string(buf));
  }
};

TEST(RuleEngineWindow, FiresOnTrailingAverageWithMinSamples) {
  WindowRig rig;
  std::vector<RuleFiring> firings;
  WindowCondition cond;
  cond.topic_filter = "plant/1/3303";
  cond.window = 30;  // covers the 4 newest samples (10 apart)
  cond.fn = agg::AggFn::kAvg;
  cond.op = CmpOp::kGreater;
  cond.threshold = 50.0;
  cond.min_samples = 3;
  Action act;
  act.callback = [&](const RuleFiring& f) { firings.push_back(f); };
  rig.engine.add_window_rule("hot", cond, act);

  rig.sample("plant/1/3303", 90.0);  // count 1 < min_samples
  rig.sample("plant/1/3303", 90.0);  // count 2 < min_samples
  EXPECT_TRUE(firings.empty());
  rig.sample("plant/1/3303", 30.0);  // avg (90+90+30)/3 = 70 > 50: fires
  ASSERT_EQ(firings.size(), 1u);
  EXPECT_EQ(firings[0].rule_id, "hot");
  EXPECT_EQ(firings[0].topic, "plant/1/3303");
  EXPECT_DOUBLE_EQ(firings[0].value, 70.0);

  rig.sample("plant/1/3303", 0.0);  // avg (90+90+30+0)/4 = 52.5: fires
  ASSERT_EQ(firings.size(), 2u);
  EXPECT_DOUBLE_EQ(firings[1].value, 52.5);

  rig.sample("plant/1/3303", 0.0);  // window now (90,30,0,0): avg 30
  EXPECT_EQ(firings.size(), 2u);
  EXPECT_EQ(rig.engine.firings(), 2u);
}

TEST(RuleEngineWindow, MaxOverWindowAndRemoveRule) {
  WindowRig rig;
  int fired = 0;
  WindowCondition cond;
  cond.topic_filter = "plant/+/3303";
  cond.window = 100;
  cond.fn = agg::AggFn::kMax;
  cond.op = CmpOp::kGreaterEqual;
  cond.threshold = 80.0;
  Action act;
  act.callback = [&](const RuleFiring&) { ++fired; };
  rig.engine.add_window_rule("spike", cond, act);
  EXPECT_EQ(rig.engine.rule_count(), 1u);

  rig.sample("plant/2/3303", 10.0);
  EXPECT_EQ(fired, 0);
  rig.sample("plant/2/3303", 85.0);
  EXPECT_EQ(fired, 1);
  rig.sample("plant/2/3303", 10.0);  // 85 still inside the window
  EXPECT_EQ(fired, 2);

  rig.engine.remove_rule("spike");
  EXPECT_EQ(rig.engine.rule_count(), 0u);
  rig.sample("plant/2/3303", 99.0);
  EXPECT_EQ(fired, 2);
}

TEST(RuleEngineWindow, WindowRuleWithoutStoreIsRejected) {
  TopicBus bus;
  RuleEngine engine(bus);  // no store
  WindowCondition cond;
  cond.topic_filter = "t";
  engine.add_window_rule("w", cond, Action{});
  EXPECT_EQ(engine.rule_count(), 0u);
  bus.publish("t", std::string("1.0"));  // no crash, nothing to evaluate
  EXPECT_EQ(engine.firings(), 0u);
}

// A window rule whose filter matches topics the ingest subscription never
// captures (no series in the store) must not fire silently forever: each
// skipped evaluation is counted in window_skips().
TEST(RuleEngineWindow, UnstoredTopicCountsAsSkipNotFiring) {
  WindowRig rig;  // ingests "plant/#" only
  int fired = 0;
  WindowCondition cond;
  cond.topic_filter = "#";  // also matches non-ingested topics
  cond.window = 100;
  cond.threshold = 0.0;  // any ingested sample would fire
  Action act;
  act.callback = [&](const RuleFiring&) { ++fired; };
  rig.engine.add_window_rule("w", cond, act);

  rig.bus.publish("other/1/3303", std::string("5.0"));  // not ingested
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(rig.engine.window_skips(), 1u);

  rig.sample("plant/1/3303", 5.0);  // ingested: evaluates and fires
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(rig.engine.window_skips(), 1u);
}

// ---- System wiring ----------------------------------------------------

TEST(SystemBackend, IngestBatchLandsInStore) {
  sim::Scheduler sched;
  core::System system(sched, 1);
  const double vals[] = {1.0, 2.0, 3.5};
  system.ingest("site/1/3303", vals);
  EXPECT_EQ(system.store().points("site/1/3303"), 3u);
  ASSERT_TRUE(system.store().latest("site/1/3303").has_value());
  EXPECT_DOUBLE_EQ(system.store().latest("site/1/3303")->value, 3.5);
  EXPECT_EQ(system.bus().stats().batches, 1u);
  EXPECT_EQ(system.bus().published(), 3u);
}

TEST(SystemBackend, MetricsExposeFastPathCounters) {
  sim::Scheduler sched;
  core::SystemConfig cfg;
  cfg.observability = true;
  core::System system(sched, 2, cfg);
  const double vals[] = {1.0, 2.0, 3.0};
  system.ingest("site/1/3303", vals);
  (void)system.store().downsample("site/1/3303", 0, 100, 10);

  ASSERT_NE(system.observability(), nullptr);
  std::set<std::string> names;
  for (const auto& s : system.observability()->metrics().snapshot()) {
    names.insert(s.module + "." + s.name);
  }
  for (const char* want :
       {"backend.bus_published", "backend.bus_delivered",
        "backend.store_appended", "backend.store_evicted",
        "backend.store_rollup_hits", "backend.store_chunk_scans",
        "backend.bus_exact_hits", "backend.bus_trie_nodes",
        "backend.bus_deferred_unsubs", "backend.bus_fanout"}) {
    EXPECT_TRUE(names.count(want)) << "missing metric " << want;
  }
}

TEST(SystemBackend, AggregateSinkBridgesEpochsIntoStore) {
  using namespace sim;  // NOLINT: time literals
  Scheduler sched;
  core::SystemConfig scfg;
  scfg.propagation.shadowing_sigma_db = 0.0;
  core::System system(sched, 42, scfg);
  core::NodeConfig ncfg;
  ncfg.rpl.trickle = net::TrickleConfig{250'000, 8, 3};
  ncfg.rpl.dao_interval = 5'000'000;
  auto& mesh = system.add_mesh("plant", ncfg);
  mesh.build_line(3, 25.0);
  mesh.start();
  sched.run_until(20_s);  // formation

  agg::CollectionConfig ccfg;
  ccfg.epoch = 10'000'000;
  ccfg.flush_slack = 300'000;
  ccfg.sample_jitter = 1'000'000;
  std::vector<std::unique_ptr<agg::TreeAggregation>> svcs;
  for (std::size_t i = 0; i < 3; ++i) {
    svcs.push_back(std::make_unique<agg::TreeAggregation>(
        *mesh.node(i).routing, sched, Rng(500 + i), ccfg));
  }
  system.bridge_aggregate_sink("plant", "temp", *svcs[0]);
  svcs[1]->start([] { return 20.0; });
  svcs[2]->start([] { return 40.0; });
  sched.run_until(80_s);

  // Epoch aggregates were published as batches and ingested by the
  // store's measurement subscription.
  EXPECT_GT(system.store().points("plant/temp/avg"), 0u);
  EXPECT_GT(system.store().points("plant/temp/count"), 0u);
  EXPECT_GT(system.bus().stats().batches, 0u);
  const auto avg = system.store().latest("plant/temp/avg");
  ASSERT_TRUE(avg.has_value());
  EXPECT_GE(avg->value, 20.0);
  EXPECT_LE(avg->value, 40.0);
}

}  // namespace
}  // namespace iiot::backend
