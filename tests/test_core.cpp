// Core façade tests: mesh building, the three-tier System, staged
// deployment, multi-tenant coexistence, and diagnosis detectors.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/deployment.hpp"
#include "core/network.hpp"
#include "core/system.hpp"
#include "core/tenant.hpp"
#include "diagnosis/detectors.hpp"

namespace iiot::core {
namespace {

using namespace sim;  // NOLINT: time literals

radio::PropagationConfig clean_radio() {
  radio::PropagationConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  return cfg;
}

NodeConfig fast_csma() {
  NodeConfig cfg;
  cfg.rpl.trickle = net::TrickleConfig{250'000, 8, 3};
  cfg.rpl.dao_interval = 5'000'000;
  return cfg;
}

TEST(MeshNetwork, GridFormsFully) {
  Scheduler sched;
  radio::Medium medium(sched, clean_radio(), 11);
  MeshNetwork mesh(sched, medium, Rng(1), fast_csma());
  mesh.build_grid(16, 22.0);
  mesh.start();
  sched.run_until(40_s);
  EXPECT_DOUBLE_EQ(mesh.joined_fraction(), 1.0);
  EXPECT_GT(mesh.total_energy_mj(), 0.0);
}

TEST(MeshNetwork, DepthGrowsWithLineLength) {
  Scheduler sched;
  radio::Medium medium(sched, clean_radio(), 12);
  MeshNetwork mesh(sched, medium, Rng(2), fast_csma());
  mesh.build_line(6, 25.0);
  mesh.start();
  sched.run_until(60_s);
  ASSERT_DOUBLE_EQ(mesh.joined_fraction(), 1.0);
  EXPECT_GE(mesh.depth_estimate(5), 4);
  EXPECT_EQ(mesh.depth_estimate(0), 0);
}

TEST(MeshNetwork, IdBaseOffsetsNodeIds) {
  Scheduler sched;
  radio::Medium medium(sched, clean_radio(), 13);
  MeshNetwork mesh(sched, medium, Rng(3), fast_csma(), /*id_base=*/500);
  mesh.build_line(3, 25.0);
  EXPECT_EQ(mesh.node(0).id, 500u);
  EXPECT_EQ(mesh.node(2).id, 502u);
}

TEST(System, SensorDataFlowsIntoStoreAndRulesActuate) {
  Scheduler sched;
  SystemConfig scfg;
  scfg.propagation = clean_radio();
  System system(sched, 77, scfg);
  auto& mesh = system.add_mesh("plant", fast_csma());
  mesh.build_line(4, 25.0);
  mesh.start();
  system.bridge("plant", mesh);

  // Node 3 reports rising temperature; node 2 hosts a vent actuator.
  double temp = 20.0;
  system.add_periodic_sensor(mesh.node(3), 3303, 5'000'000,
                             [&temp] { return temp += 1.5; });
  std::vector<double> vent_commands;
  system.add_actuator(mesh.node(2), 3306, [&](double v) {
    vent_commands.push_back(v);
  });

  backend::Condition cond;
  cond.topic_filter = "plant/3/3303";
  cond.op = backend::CmpOp::kGreater;
  cond.threshold = 30.0;
  backend::Action act;
  act.callback = [&](const backend::RuleFiring&) {
    system.actuate(mesh, 2, 3306, 100.0);
  };
  system.rules().add_rule("overheat", cond, act);

  sched.run_until(120_s);
  // Readings landed in the time-series store...
  EXPECT_GT(system.store().points("plant/3/3303"), 5u);
  // ...the rule fired and the command reached node 2 down the mesh.
  EXPECT_GE(vent_commands.size(), 1u);
  EXPECT_DOUBLE_EQ(vent_commands.front(), 100.0);
}

TEST(Deployment, StagedRolloutKeepsForming) {
  Scheduler sched;
  radio::Medium medium(sched, clean_radio(), 21);
  MeshNetwork mesh(sched, medium, Rng(4), fast_csma());
  // Snake layout: stays connected as it grows.
  auto positions = [](std::size_t i) {
    const std::size_t row = i / 8;
    const std::size_t col = i % 8;
    return radio::Position{static_cast<double>(col) * 22.0,
                           static_cast<double>(row) * 22.0};
  };
  std::vector<StageReport> reports;
  DeploymentPlan plan(mesh, positions);
  plan.stage(4, 30'000'000)
      .stage(16, 30'000'000)
      .stage(40, 60'000'000);
  plan.execute([&](const StageReport& r) { reports.push_back(r); });
  sched.run_until(130_s);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].nodes_total, 4u);
  EXPECT_EQ(reports[2].nodes_total, 40u);
  for (const auto& r : reports) {
    EXPECT_GE(r.joined_fraction, 0.95) << "stage " << r.stage;
    EXPECT_GT(r.formation_time, 0u) << "stage " << r.stage;
  }
  EXPECT_GE(reports[2].max_depth, 2);
}

TEST(Tenants, SeparateChannelsIsolateTraffic) {
  Scheduler sched;
  radio::Medium medium(sched, clean_radio(), 31);
  TenantManager mgr(sched, medium, Rng(5));
  TenantSpec a;
  a.id = 1;
  a.nodes = 6;
  a.node_cfg = fast_csma();
  TenantSpec b;
  b.id = 2;
  b.nodes = 6;
  b.node_cfg = fast_csma();
  mgr.add_tenant(a, 60.0, {11, 15});
  mgr.add_tenant(b, 60.0, {11, 15});
  mgr.start_all();
  sched.run_until(60_s);
  EXPECT_GE(mgr.network(0).joined_fraction(), 0.99);
  EXPECT_GE(mgr.network(1).joined_fraction(), 0.99);
  // Cross-tenant frames never delivered upward.
  for (std::size_t i = 0; i < mgr.network(0).size(); ++i) {
    EXPECT_EQ(static_cast<mac::MacBase&>(*mgr.network(0).node(i).mac)
                  .stats()
                  .rx_foreign,
              0u);
  }
}

TEST(Tenants, SharedChannelCausesForeignTraffic) {
  Scheduler sched;
  radio::Medium medium(sched, clean_radio(), 32);
  TenantManager mgr(sched, medium, Rng(6));
  TenantSpec a;
  a.id = 1;
  a.nodes = 8;
  a.node_cfg = fast_csma();
  TenantSpec b;
  b.id = 2;
  b.nodes = 8;
  b.node_cfg = fast_csma();
  mgr.add_tenant(a, 50.0, {11});  // both forced onto channel 11
  mgr.add_tenant(b, 50.0, {11});
  mgr.start_all();
  sched.run_until(60_s);
  std::uint64_t foreign = 0;
  for (std::size_t t = 0; t < 2; ++t) {
    for (std::size_t i = 0; i < mgr.network(t).size(); ++i) {
      foreign += static_cast<mac::MacBase&>(*mgr.network(t).node(i).mac)
                     .stats()
                     .rx_foreign;
    }
  }
  EXPECT_GT(foreign, 0u);
}

// -------------------------------------------------------------- diagnosis

TEST(Diagnosis, EnergyDrainOutlierFlagged) {
  diagnosis::EnergyDrainDetector det(3.0);
  for (NodeId n = 1; n <= 9; ++n) det.report(n, 1.0 + 0.05 * n);
  det.report(10, 12.0);  // storm victim
  auto anomalies = det.anomalies();
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].node, 10u);
  EXPECT_EQ(anomalies[0].kind, diagnosis::Anomaly::Kind::kEnergyDrain);
}

TEST(Diagnosis, NoDrainAnomalyInHealthyFleet) {
  diagnosis::EnergyDrainDetector det;
  for (NodeId n = 1; n <= 10; ++n) det.report(n, 1.0 + 0.1 * n);
  EXPECT_TRUE(det.anomalies().empty());
}

TEST(Diagnosis, StuckSensorFlaggedAfterWindow) {
  diagnosis::StuckSensorDetector det(5);
  for (int i = 0; i < 5; ++i) det.report(1, 21.37);
  for (int i = 0; i < 5; ++i) det.report(2, 20.0 + i);
  auto anomalies = det.anomalies();
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].node, 1u);
}

TEST(Diagnosis, StuckSensorNeedsFullWindow) {
  diagnosis::StuckSensorDetector det(10);
  for (int i = 0; i < 5; ++i) det.report(1, 5.0);
  EXPECT_TRUE(det.anomalies().empty());
}

TEST(Diagnosis, RebootLoopDetected) {
  diagnosis::RebootLoopDetector det(3, 600_s);
  det.report_reboot(4, 100_s);
  det.report_reboot(4, 200_s);
  det.report_reboot(4, 300_s);
  det.report_reboot(5, 100_s);  // single reboot: fine
  auto anomalies = det.anomalies(400_s);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].node, 4u);
}

TEST(Diagnosis, OldRebootsAgeOut) {
  diagnosis::RebootLoopDetector det(3, 600_s);
  det.report_reboot(4, 100_s);
  det.report_reboot(4, 200_s);
  det.report_reboot(4, 300_s);
  EXPECT_TRUE(det.anomalies(2000_s).empty());
}

TEST(Diagnosis, AsymmetricLinkFlagged) {
  diagnosis::LinkAsymmetryDetector det(2.5);
  det.report_etx(1, 2, 1.1);
  det.report_etx(2, 1, 4.5);  // way worse backwards
  det.report_etx(3, 4, 1.2);
  det.report_etx(4, 3, 1.4);
  auto anomalies = det.anomalies();
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, diagnosis::Anomaly::Kind::kAsymmetricLink);
  EXPECT_EQ(anomalies[0].node, 1u);
  EXPECT_EQ(anomalies[0].peer, 2u);
}

}  // namespace
}  // namespace iiot::core
