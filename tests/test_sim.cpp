// Unit tests for the discrete-event scheduler and energy meter.
#include <gtest/gtest.h>

#include <vector>

#include "energy/meter.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace iiot {
namespace {

using sim::Scheduler;
using namespace sim;  // NOLINT: time literals

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  Time fired_at = 0;
  s.schedule_at(50, [&] {
    s.schedule_after(25, [&] { fired_at = s.now(); });
  });
  s.run_all();
  EXPECT_EQ(fired_at, 75u);
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  Time fired_at = 999;
  s.schedule_at(100, [&] {
    s.schedule_at(10, [&] { fired_at = s.now(); });  // in the past
  });
  s.run_all();
  EXPECT_EQ(fired_at, 100u);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  auto h = s.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run_all();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelIsIdempotentAndSafeAfterFire) {
  Scheduler s;
  int count = 0;
  auto h = s.schedule_at(10, [&] { ++count; });
  s.run_all();
  EXPECT_EQ(count, 1);
  h.cancel();  // no-op after firing
  h.cancel();
  s.run_all();
  EXPECT_EQ(count, 1);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(10, [&] { ++fired; });
  s.schedule_at(20, [&] { ++fired; });
  s.schedule_at(30, [&] { ++fired; });
  s.run_until(20);
  EXPECT_EQ(fired, 2);  // event at the deadline runs
  EXPECT_EQ(s.now(), 20u);
  s.run_until(100);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(s.now(), 100u);  // clock advances to deadline even if idle
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_after(1, recurse);
  };
  s.schedule_at(0, recurse);
  s.run_all();
  EXPECT_EQ(depth, 5);
}

TEST(Scheduler, CancelAfterFireWithRecycledSlotIsInert) {
  // After an event fires, its slot returns to the free list and can be
  // recycled by a new event. The old handle must stay inert: cancelling
  // it repeatedly must not touch the slot's new tenant.
  Scheduler s;
  int first = 0;
  auto h = s.schedule_at(10, [&] { ++first; });
  s.run_all();
  EXPECT_EQ(first, 1);

  bool second_fired = false;
  auto h2 = s.schedule_at(20, [&] { second_fired = true; });
  EXPECT_FALSE(h.pending());
  h.cancel();  // stale: must not cancel the recycled slot's new event
  h.cancel();
  EXPECT_TRUE(h2.pending());
  s.run_all();
  EXPECT_TRUE(second_fired);
  EXPECT_EQ(first, 1);
}

TEST(Scheduler, StaleHandleCannotCancelRecycledSlot) {
  // Cancelling frees the slot immediately; the very next schedule reuses
  // it. A second cancel through the stale handle must be a no-op.
  Scheduler s;
  bool a_fired = false;
  bool b_fired = false;
  auto ha = s.schedule_at(10, [&] { a_fired = true; });
  ha.cancel();
  auto hb = s.schedule_at(10, [&] { b_fired = true; });
  ha.cancel();  // stale generation: hb's event must survive
  EXPECT_FALSE(ha.pending());
  EXPECT_TRUE(hb.pending());
  s.run_all();
  EXPECT_FALSE(a_fired);
  EXPECT_TRUE(b_fired);
}

TEST(Scheduler, TieBreakSurvivesCancellationChurn) {
  // Heavy schedule/cancel interleaving (exercising slot reuse and lazy
  // heap deletion) must not disturb insertion-order tie-breaking among
  // the surviving events.
  Scheduler s;
  std::vector<int> order;
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 200; ++i) {
    if (i % 2 == 0) {
      s.schedule_at(500, [&order, i] { order.push_back(i); });
    } else {
      doomed.push_back(s.schedule_at(500, [] {}));
    }
  }
  for (auto& h : doomed) h.cancel();
  // Post-churn arrivals at the same time still fire after earlier ones.
  s.schedule_at(500, [&order] { order.push_back(1000); });
  s.run_all();
  ASSERT_EQ(order.size(), 101u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], 2 * i);
  }
  EXPECT_EQ(order.back(), 1000);
}

TEST(Scheduler, MassCancellationCompactsWithoutReordering) {
  // Cancel enough events to trip heap compaction, then verify both the
  // live count and the firing order of the survivors.
  Scheduler s;
  std::vector<EventHandle> doomed;
  std::vector<Time> fired;
  for (int i = 0; i < 1000; ++i) {
    const Time at = static_cast<Time>(10 + i);
    if (i % 10 == 0) {
      s.schedule_at(at, [&fired, &s] { fired.push_back(s.now()); });
    } else {
      doomed.push_back(s.schedule_at(at, [] {}));
    }
  }
  EXPECT_EQ(s.pending_events(), 1000u);
  for (auto& h : doomed) h.cancel();
  EXPECT_EQ(s.pending_events(), 100u);
  s.run_all();
  ASSERT_EQ(fired.size(), 100u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LT(fired[i - 1], fired[i]);
  }
}

TEST(Scheduler, LargeClosuresFallBackToHeapCorrectly) {
  // Captures beyond the inline SBO budget take the heap path; they must
  // still move, fire, and destruct exactly once.
  Scheduler s;
  std::vector<int> payload(64, 7);
  int sum = 0;
  struct Big {
    double a[16] = {1, 2, 3};
  };
  Big big;
  s.schedule_at(5, [payload, big, &sum] {
    for (int v : payload) sum += v;
    sum += static_cast<int>(big.a[2]);
  });
  s.run_all();
  EXPECT_EQ(sum, 64 * 7 + 3);
}

TEST(PeriodicTimer, FiresEveryPeriod) {
  Scheduler s;
  std::vector<Time> fires;
  PeriodicTimer t(s, 100, [&] { fires.push_back(s.now()); });
  t.start();
  s.run_until(550);
  EXPECT_EQ(fires, (std::vector<Time>{100, 200, 300, 400, 500}));
}

TEST(PeriodicTimer, StopHaltsFiring) {
  Scheduler s;
  int count = 0;
  PeriodicTimer t(s, 10, [&] { ++count; });
  t.start();
  s.schedule_at(35, [&] { t.stop(); });
  s.run_until(1000);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTimer, PhaseOffsetsFirstFiring) {
  Scheduler s;
  std::vector<Time> fires;
  PeriodicTimer t(s, 100, [&] { fires.push_back(s.now()); });
  t.start(7);
  s.run_until(250);
  EXPECT_EQ(fires, (std::vector<Time>{7, 107, 207}));
}

TEST(PeriodicTimer, DestructionCancels) {
  Scheduler s;
  int count = 0;
  {
    PeriodicTimer t(s, 10, [&] { ++count; });
    t.start();
    s.run_until(25);
  }
  s.run_until(1000);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTimer, StopAndRestartInsideCallback) {
  // A callback that stops and immediately restarts its own timer must
  // re-phase cleanly: no double firing, no lost firing.
  Scheduler s;
  std::vector<Time> fires;
  PeriodicTimer t(s, 100, [&] { fires.push_back(s.now()); });
  PeriodicTimer* tp = &t;
  bool rephased = false;
  PeriodicTimer driver(s, 100, [&] {
    if (!rephased && s.now() >= 200) {
      rephased = true;
      tp->stop();
      tp->start(30);  // next firing 30 ticks from now, then every 100
    }
  });
  t.start();
  driver.start(5);
  s.run_until(600);
  // t fires at 100, 200; at 205 the driver re-phases it: 235, 335, 435, 535.
  EXPECT_EQ(fires, (std::vector<Time>{100, 200, 235, 335, 435, 535}));
}

TEST(PeriodicTimer, StopInsideOwnCallbackHalts) {
  Scheduler s;
  int count = 0;
  PeriodicTimer t(s, 10, [&] {
    ++count;
    if (count == 3) t.stop();
  });
  t.start();
  s.run_until(1000);
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(t.running());
}

TEST(PeriodicTimer, RestartInsideOwnCallbackRephases) {
  Scheduler s;
  std::vector<Time> fires;
  PeriodicTimer t(s, 100, [&] {
    fires.push_back(s.now());
    if (fires.size() == 2) t.start(17);  // restart mid-callback
  });
  t.start();
  s.run_until(450);
  EXPECT_EQ(fires, (std::vector<Time>{100, 200, 217, 317, 417}));
}

TEST(EnergyMeter, ChargesByStateAndTime) {
  energy::Profile profile;
  profile.radio_mw = {0.0, 1.0, 10.0, 10.0, 20.0};
  energy::Meter m(profile);
  m.radio_state(energy::RadioState::kListen, 0);
  m.radio_state(energy::RadioState::kTx, 1'000'000);    // 1 s listen
  m.radio_state(energy::RadioState::kSleep, 1'500'000); // 0.5 s tx
  m.settle(2'500'000);                                  // 1 s sleep
  EXPECT_NEAR(m.radio_mj(energy::RadioState::kListen), 10.0, 1e-9);
  EXPECT_NEAR(m.radio_mj(energy::RadioState::kTx), 10.0, 1e-9);
  EXPECT_NEAR(m.radio_mj(energy::RadioState::kSleep), 1.0, 1e-9);
  EXPECT_NEAR(m.total_mj(), 21.0, 1e-9);
}

TEST(EnergyMeter, DutyCycleComputation) {
  energy::Meter m;
  m.radio_state(energy::RadioState::kListen, 0);
  m.radio_state(energy::RadioState::kSleep, 100'000);  // 0.1 s on
  m.settle(1'000'000);                                 // 0.9 s sleep
  EXPECT_NEAR(m.duty_cycle(), 0.1, 1e-9);
}

TEST(EnergyMeter, CpuCyclesCharged) {
  energy::Profile p;
  p.cpu_nj_per_cycle = 1.0;
  energy::Meter m(p);
  m.cpu_cycles(1'000'000);  // 1e6 cycles * 1 nJ = 1 mJ
  EXPECT_NEAR(m.cpu_mj(), 1.0, 1e-12);
}

TEST(EnergyMeter, LifetimeProjection) {
  energy::Profile p;
  p.radio_mw = {0.0, 0.0, 1000.0, 1000.0, 1000.0};  // 1 W listen
  energy::Meter m(p);
  m.radio_state(energy::RadioState::kListen, 0);
  m.settle(1'000'000);
  // 1 W average: an 86400 J battery lasts exactly one day.
  EXPECT_NEAR(m.projected_lifetime_days(86400.0), 1.0, 1e-6);
}

}  // namespace
}  // namespace iiot
