// Unit tests for the discrete-event scheduler and energy meter.
#include <gtest/gtest.h>

#include <vector>

#include "energy/meter.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace iiot {
namespace {

using sim::Scheduler;
using namespace sim;  // NOLINT: time literals

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  Time fired_at = 0;
  s.schedule_at(50, [&] {
    s.schedule_after(25, [&] { fired_at = s.now(); });
  });
  s.run_all();
  EXPECT_EQ(fired_at, 75u);
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  Time fired_at = 999;
  s.schedule_at(100, [&] {
    s.schedule_at(10, [&] { fired_at = s.now(); });  // in the past
  });
  s.run_all();
  EXPECT_EQ(fired_at, 100u);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  auto h = s.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run_all();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelIsIdempotentAndSafeAfterFire) {
  Scheduler s;
  int count = 0;
  auto h = s.schedule_at(10, [&] { ++count; });
  s.run_all();
  EXPECT_EQ(count, 1);
  h.cancel();  // no-op after firing
  h.cancel();
  s.run_all();
  EXPECT_EQ(count, 1);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(10, [&] { ++fired; });
  s.schedule_at(20, [&] { ++fired; });
  s.schedule_at(30, [&] { ++fired; });
  s.run_until(20);
  EXPECT_EQ(fired, 2);  // event at the deadline runs
  EXPECT_EQ(s.now(), 20u);
  s.run_until(100);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(s.now(), 100u);  // clock advances to deadline even if idle
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_after(1, recurse);
  };
  s.schedule_at(0, recurse);
  s.run_all();
  EXPECT_EQ(depth, 5);
}

TEST(PeriodicTimer, FiresEveryPeriod) {
  Scheduler s;
  std::vector<Time> fires;
  PeriodicTimer t(s, 100, [&] { fires.push_back(s.now()); });
  t.start();
  s.run_until(550);
  EXPECT_EQ(fires, (std::vector<Time>{100, 200, 300, 400, 500}));
}

TEST(PeriodicTimer, StopHaltsFiring) {
  Scheduler s;
  int count = 0;
  PeriodicTimer t(s, 10, [&] { ++count; });
  t.start();
  s.schedule_at(35, [&] { t.stop(); });
  s.run_until(1000);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTimer, PhaseOffsetsFirstFiring) {
  Scheduler s;
  std::vector<Time> fires;
  PeriodicTimer t(s, 100, [&] { fires.push_back(s.now()); });
  t.start(7);
  s.run_until(250);
  EXPECT_EQ(fires, (std::vector<Time>{7, 107, 207}));
}

TEST(PeriodicTimer, DestructionCancels) {
  Scheduler s;
  int count = 0;
  {
    PeriodicTimer t(s, 10, [&] { ++count; });
    t.start();
    s.run_until(25);
  }
  s.run_until(1000);
  EXPECT_EQ(count, 2);
}

TEST(EnergyMeter, ChargesByStateAndTime) {
  energy::Profile profile;
  profile.radio_mw = {0.0, 1.0, 10.0, 10.0, 20.0};
  energy::Meter m(profile);
  m.radio_state(energy::RadioState::kListen, 0);
  m.radio_state(energy::RadioState::kTx, 1'000'000);    // 1 s listen
  m.radio_state(energy::RadioState::kSleep, 1'500'000); // 0.5 s tx
  m.settle(2'500'000);                                  // 1 s sleep
  EXPECT_NEAR(m.radio_mj(energy::RadioState::kListen), 10.0, 1e-9);
  EXPECT_NEAR(m.radio_mj(energy::RadioState::kTx), 10.0, 1e-9);
  EXPECT_NEAR(m.radio_mj(energy::RadioState::kSleep), 1.0, 1e-9);
  EXPECT_NEAR(m.total_mj(), 21.0, 1e-9);
}

TEST(EnergyMeter, DutyCycleComputation) {
  energy::Meter m;
  m.radio_state(energy::RadioState::kListen, 0);
  m.radio_state(energy::RadioState::kSleep, 100'000);  // 0.1 s on
  m.settle(1'000'000);                                 // 0.9 s sleep
  EXPECT_NEAR(m.duty_cycle(), 0.1, 1e-9);
}

TEST(EnergyMeter, CpuCyclesCharged) {
  energy::Profile p;
  p.cpu_nj_per_cycle = 1.0;
  energy::Meter m(p);
  m.cpu_cycles(1'000'000);  // 1e6 cycles * 1 nJ = 1 mJ
  EXPECT_NEAR(m.cpu_mj(), 1.0, 1e-12);
}

TEST(EnergyMeter, LifetimeProjection) {
  energy::Profile p;
  p.radio_mw = {0.0, 0.0, 1000.0, 1000.0, 1000.0};  // 1 W listen
  energy::Meter m(p);
  m.radio_state(energy::RadioState::kListen, 0);
  m.settle(1'000'000);
  // 1 W average: an 86400 J battery lasts exactly one day.
  EXPECT_NEAR(m.projected_lifetime_days(86400.0), 1.0, 1e-6);
}

}  // namespace
}  // namespace iiot
