// MAC protocol tests: CSMA, LPL, RI-MAC, TDMA behaviour and energy.
#include <gtest/gtest.h>

#include <vector>

#include "harness.hpp"

namespace iiot::mac {
namespace {

using namespace sim;  // NOLINT: time literals
using test::World;

Buffer payload(std::size_t n = 12, std::uint8_t fill = 0xAB) {
  return Buffer(n, fill);
}

// ------------------------------------------------------------------- CSMA

TEST(CsmaMac, UnicastDeliversAndAcks) {
  World w(1);
  w.make_line(2);
  auto& a = w.with_mac<CsmaMac>(w.node(0));
  auto& b = w.with_mac<CsmaMac>(w.node(1));
  int rx = 0;
  b.set_receive_handler([&](NodeId src, BytesView p, double) {
    EXPECT_EQ(src, 0u);
    EXPECT_EQ(p.size(), 12u);
    ++rx;
  });
  w.start_all();
  SendStatus st;
  bool done = false;
  a.send(1, payload(), [&](const SendStatus& s) {
    st = s;
    done = true;
  });
  w.sched().run_until(1_s);
  EXPECT_TRUE(done);
  EXPECT_TRUE(st.delivered);
  EXPECT_EQ(st.attempts, 1);
  EXPECT_EQ(rx, 1);
}

TEST(CsmaMac, DeliveryIsFastMilliseconds) {
  World w(2);
  w.make_line(2);
  auto& a = w.with_mac<CsmaMac>(w.node(0));
  w.with_mac<CsmaMac>(w.node(1));
  w.start_all();
  Time done_at = 0;
  a.send(1, payload(), [&](const SendStatus&) { done_at = w.sched().now(); });
  w.sched().run_until(1_s);
  EXPECT_GT(done_at, 0u);
  EXPECT_LT(done_at, 20'000u);  // well under 20 ms
}

TEST(CsmaMac, RetriesWhenReceiverUnreachableThenFails) {
  World w(3);
  w.make_line(2, /*spacing=*/5000.0);  // out of range
  auto& a = w.with_mac<CsmaMac>(w.node(0));
  w.with_mac<CsmaMac>(w.node(1));
  w.start_all();
  SendStatus st;
  a.send(1, payload(), [&](const SendStatus& s) { st = s; });
  w.sched().run_until(5_s);
  EXPECT_FALSE(st.delivered);
  EXPECT_EQ(st.attempts, 5);  // 1 try + 4 retries
  EXPECT_GE(a.stats().retries, 4u);
}

TEST(CsmaMac, BroadcastReachesAllNeighbors) {
  World w(4);
  w.add_node(0, {0, 0});
  w.add_node(1, {15, 0});
  w.add_node(2, {0, 15});
  w.add_node(3, {-15, -5});
  auto& a = w.with_mac<CsmaMac>(w.node(0));
  int rx = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    auto& m = w.with_mac<CsmaMac>(w.node(i));
    m.set_receive_handler([&](NodeId, BytesView, double) { ++rx; });
  }
  w.start_all();
  bool ok = false;
  a.send(kBroadcastNode, payload(),
         [&](const SendStatus& s) { ok = s.delivered; });
  w.sched().run_until(1_s);
  EXPECT_TRUE(ok);
  EXPECT_EQ(rx, 3);
}

TEST(CsmaMac, QueuedFramesAllDeliverInOrder) {
  World w(5);
  w.make_line(2);
  auto& a = w.with_mac<CsmaMac>(w.node(0));
  auto& b = w.with_mac<CsmaMac>(w.node(1));
  std::vector<std::uint8_t> seen;
  b.set_receive_handler([&](NodeId, BytesView p, double) {
    seen.push_back(p[0]);
  });
  w.start_all();
  for (std::uint8_t i = 0; i < 10; ++i) a.send(1, payload(4, i));
  w.sched().run_until(2_s);
  ASSERT_EQ(seen.size(), 10u);
  for (std::uint8_t i = 0; i < 10; ++i) EXPECT_EQ(seen[i], i);
}

TEST(CsmaMac, QueueOverflowRejects) {
  World w(6);
  w.make_line(2);
  auto& a = w.with_mac<CsmaMac>(w.node(0));
  w.with_mac<CsmaMac>(w.node(1));
  w.start_all();
  int accepted = 0;
  for (int i = 0; i < 40; ++i) {
    if (a.send(1, payload())) ++accepted;
  }
  EXPECT_LT(accepted, 40);
  EXPECT_GE(a.stats().queue_drops, 1u);
}

TEST(CsmaMac, AlwaysOnDutyCycleIsNearOne) {
  World w(7);
  w.make_line(2);
  w.with_mac<CsmaMac>(w.node(0));
  w.with_mac<CsmaMac>(w.node(1));
  w.start_all();
  w.sched().run_until(10_s);
  w.node(1).meter.settle(w.sched().now());
  EXPECT_GT(w.node(1).meter.duty_cycle(), 0.99);
}

TEST(CsmaMac, ContendingSendersBothSucceed) {
  World w(8);
  w.add_node(0, {0, 0});
  w.add_node(1, {15, 0});
  w.add_node(2, {7, 10});
  auto& a = w.with_mac<CsmaMac>(w.node(0));
  auto& b = w.with_mac<CsmaMac>(w.node(1));
  auto& c = w.with_mac<CsmaMac>(w.node(2));
  int rx = 0;
  c.set_receive_handler([&](NodeId, BytesView, double) { ++rx; });
  w.start_all();
  int delivered = 0;
  for (int i = 0; i < 20; ++i) {
    w.sched().schedule_at(static_cast<Time>(i) * 50'000, [&] {
      a.send(2, payload(8, 1), [&](const SendStatus& s) {
        if (s.delivered) ++delivered;
      });
      b.send(2, payload(8, 2), [&](const SendStatus& s) {
        if (s.delivered) ++delivered;
      });
    });
  }
  w.sched().run_until(5_s);
  EXPECT_GE(delivered, 38);  // collisions resolved by backoff + retries
  EXPECT_GE(rx, 38);
}

// -------------------------------------------------------------------- LPL

LplConfig fast_lpl() {
  LplConfig cfg;
  cfg.wake_interval = 200'000;  // 200 ms for quicker tests
  return cfg;
}

TEST(LplMac, UnicastDeliversAcrossSleepSchedule) {
  World w(10);
  w.make_line(2);
  auto& a = w.with_mac<LplMac>(w.node(0), fast_lpl());
  auto& b = w.with_mac<LplMac>(w.node(1), fast_lpl());
  int rx = 0;
  b.set_receive_handler([&](NodeId, BytesView, double) { ++rx; });
  w.start_all();
  bool ok = false;
  w.sched().schedule_at(1_s, [&] {
    a.send(1, payload(), [&](const SendStatus& s) { ok = s.delivered; });
  });
  w.sched().run_until(3_s);
  EXPECT_TRUE(ok);
  EXPECT_EQ(rx, 1);
}

TEST(LplMac, LatencyIsBoundedByWakeInterval) {
  // Per-hop latency must be in (0, ~wake_interval + margin].
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    World w(seed * 100);
    w.make_line(2);
    auto& a = w.with_mac<LplMac>(w.node(0), fast_lpl());
    w.with_mac<LplMac>(w.node(1), fast_lpl());
    w.start_all();
    Time sent_at = 500'000, done_at = 0;
    w.sched().schedule_at(sent_at, [&] {
      a.send(1, payload(), [&](const SendStatus& s) {
        if (s.delivered) done_at = w.sched().now();
      });
    });
    w.sched().run_until(3_s);
    ASSERT_GT(done_at, sent_at);
    EXPECT_LT(done_at - sent_at, 250'000u);
  }
}

TEST(LplMac, DutyCycleStaysLow) {
  World w(11);
  w.make_line(2);
  w.with_mac<LplMac>(w.node(0), fast_lpl());
  w.with_mac<LplMac>(w.node(1), fast_lpl());
  w.start_all();
  w.sched().run_until(60_s);
  w.node(1).meter.settle(w.sched().now());
  // 5 ms sample / 200 ms interval = 2.5% base duty cycle.
  EXPECT_LT(w.node(1).meter.duty_cycle(), 0.06);
  EXPECT_GT(w.node(1).meter.duty_cycle(), 0.01);
}

TEST(LplMac, BroadcastReachesSleepingNeighbors) {
  World w(12);
  w.add_node(0, {0, 0});
  w.add_node(1, {15, 0});
  w.add_node(2, {0, 15});
  auto& a = w.with_mac<LplMac>(w.node(0), fast_lpl());
  int rx = 0;
  for (std::size_t i = 1; i < 3; ++i) {
    auto& m = w.with_mac<LplMac>(w.node(i), fast_lpl());
    m.set_receive_handler([&](NodeId, BytesView, double) { ++rx; });
  }
  w.start_all();
  bool ok = false;
  w.sched().schedule_at(1_s, [&] {
    a.send(kBroadcastNode, payload(),
           [&](const SendStatus& s) { ok = s.delivered; });
  });
  w.sched().run_until(4_s);
  EXPECT_TRUE(ok);
  EXPECT_EQ(rx, 2);  // dedup: exactly one delivery per neighbor
}

TEST(LplMac, UnreachableTargetFailsAfterRetries) {
  World w(13);
  w.make_line(2, 5000.0);
  auto& a = w.with_mac<LplMac>(w.node(0), fast_lpl());
  w.with_mac<LplMac>(w.node(1), fast_lpl());
  w.start_all();
  bool done = false, delivered = true;
  a.send(1, payload(), [&](const SendStatus& s) {
    done = true;
    delivered = s.delivered;
  });
  w.sched().run_until(10_s);
  EXPECT_TRUE(done);
  EXPECT_FALSE(delivered);
}

TEST(LplMac, BackToBackSendsAllDeliver) {
  World w(14);
  w.make_line(2);
  auto& a = w.with_mac<LplMac>(w.node(0), fast_lpl());
  auto& b = w.with_mac<LplMac>(w.node(1), fast_lpl());
  int rx = 0;
  b.set_receive_handler([&](NodeId, BytesView, double) { ++rx; });
  w.start_all();
  int delivered = 0;
  for (int i = 0; i < 5; ++i) {
    a.send(1, payload(6, static_cast<std::uint8_t>(i)),
           [&](const SendStatus& s) {
             if (s.delivered) ++delivered;
           });
  }
  w.sched().run_until(10_s);
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(rx, 5);
}

// ------------------------------------------------------------------ RI-MAC

RiMacConfig fast_rimac() {
  RiMacConfig cfg;
  cfg.wake_interval = 200'000;
  return cfg;
}

TEST(RiMac, UnicastDeliversOnBeacon) {
  World w(20);
  w.make_line(2);
  auto& a = w.with_mac<RiMac>(w.node(0), fast_rimac());
  auto& b = w.with_mac<RiMac>(w.node(1), fast_rimac());
  int rx = 0;
  b.set_receive_handler([&](NodeId, BytesView, double) { ++rx; });
  w.start_all();
  bool ok = false;
  w.sched().schedule_at(1_s, [&] {
    a.send(1, payload(), [&](const SendStatus& s) { ok = s.delivered; });
  });
  w.sched().run_until(4_s);
  EXPECT_TRUE(ok);
  EXPECT_EQ(rx, 1);
}

TEST(RiMac, SenderPaysIdleListeningCost) {
  World w(21);
  w.make_line(2);
  auto& a = w.with_mac<RiMac>(w.node(0), fast_rimac());
  w.with_mac<RiMac>(w.node(1), fast_rimac());
  w.start_all();
  // Sender with steady traffic listens a lot; idle receiver stays low.
  for (int i = 0; i < 20; ++i) {
    w.sched().schedule_at(static_cast<Time>(i) * 500'000,
                          [&] { a.send(1, payload()); });
  }
  w.sched().run_until(10_s);
  w.node(0).meter.settle(w.sched().now());
  w.node(1).meter.settle(w.sched().now());
  EXPECT_GT(w.node(0).meter.duty_cycle(),
            3.0 * w.node(1).meter.duty_cycle());
}

TEST(RiMac, BroadcastServesEveryBeaconingNeighbor) {
  World w(22);
  w.add_node(0, {0, 0});
  w.add_node(1, {15, 0});
  w.add_node(2, {0, 15});
  w.add_node(3, {-12, 8});
  auto& a = w.with_mac<RiMac>(w.node(0), fast_rimac());
  int rx = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    auto& m = w.with_mac<RiMac>(w.node(i), fast_rimac());
    m.set_receive_handler([&](NodeId, BytesView, double) { ++rx; });
  }
  w.start_all();
  bool ok = false;
  w.sched().schedule_at(1_s, [&] {
    a.send(kBroadcastNode, payload(),
           [&](const SendStatus& s) { ok = s.delivered; });
  });
  w.sched().run_until(4_s);
  EXPECT_TRUE(ok);
  EXPECT_EQ(rx, 3);
}

TEST(RiMac, IdleNetworkDutyCycleLow) {
  World w(23);
  w.make_line(3);
  for (std::size_t i = 0; i < 3; ++i) {
    w.with_mac<RiMac>(w.node(i), fast_rimac());
  }
  w.start_all();
  w.sched().run_until(60_s);
  for (std::size_t i = 0; i < 3; ++i) {
    w.node(i).meter.settle(w.sched().now());
    EXPECT_LT(w.node(i).meter.duty_cycle(), 0.08);
  }
}

// -------------------------------------------------------------------- TDMA

TdmaConfig fast_tdma(bool staggered = true) {
  TdmaConfig cfg;
  cfg.epoch = 1'000'000;  // 1 s epochs
  cfg.slot = 40'000;
  cfg.staggered = staggered;
  return cfg;
}

/// Wires a 1-D collection line 0 <- 1 <- 2 ... (node 0 = root) and
/// installs hop-by-hop forwarding toward the root.
void wire_tdma_line(World& w, std::size_t n, const TdmaConfig& cfg,
                    std::vector<Buffer>* at_root, Rng& phase_rng) {
  for (std::size_t i = 0; i < n; ++i) {
    auto& m = w.with_mac<TdmaMac>(w.node(i), cfg);
    TdmaSchedule s;
    s.parent = i == 0 ? kInvalidNode : static_cast<NodeId>(i - 1);
    s.depth = static_cast<int>(i);
    s.max_depth = static_cast<int>(n - 1);
    s.has_children = i + 1 < n;
    s.phase = static_cast<sim::Duration>(
        phase_rng.below(static_cast<std::uint32_t>(cfg.epoch - cfg.slot)));
    m.configure(s);
  }
  // Parent phases are known only after all nodes exist.
  for (std::size_t i = 1; i < n; ++i) {
    // For the unaligned mode: re-configure with parent phase.
    auto& child = static_cast<TdmaMac&>(*w.node(i).mac);
    auto& parent = static_cast<TdmaMac&>(*w.node(i - 1).mac);
    (void)parent;
    TdmaSchedule s;
    s.parent = static_cast<NodeId>(i - 1);
    s.depth = static_cast<int>(i);
    s.max_depth = static_cast<int>(n - 1);
    s.has_children = i + 1 < n;
    child.configure(s);
  }
  for (std::size_t i = 0; i < n; ++i) {
    auto& m = *w.node(i).mac;
    NodeId parent = i == 0 ? kInvalidNode : static_cast<NodeId>(i - 1);
    if (i == 0) {
      m.set_receive_handler([at_root](NodeId, BytesView p, double) {
        if (at_root) at_root->emplace_back(p.begin(), p.end());
      });
    } else {
      m.set_receive_handler([&m, parent](NodeId, BytesView p, double) {
        m.send(parent, Buffer(p.begin(), p.end()));
      });
    }
  }
}

TEST(TdmaMac, StaggeredLineDeliversToRootWithinOneEpoch) {
  World w(30);
  w.make_line(5);
  auto cfg = fast_tdma(true);
  std::vector<Buffer> at_root;
  Rng pr(99);
  wire_tdma_line(w, 5, cfg, &at_root, pr);
  w.start_all();
  // Inject at the deepest node early in an epoch.
  Time sent_at = 0;
  w.sched().schedule_at(2'050'000, [&] {
    sent_at = w.sched().now();
    w.node(4).mac->send(3, payload());
  });
  w.sched().run_until(10_s);
  ASSERT_EQ(at_root.size(), 1u);
}

TEST(TdmaMac, StaggeredLatencyFarBelowPerHopEpoch) {
  // End-to-end latency over 5 hops should be ~1 epoch, not ~5 epochs.
  World w(31);
  w.make_line(6);
  auto cfg = fast_tdma(true);
  std::vector<Buffer> at_root;
  Rng pr(100);
  wire_tdma_line(w, 6, cfg, &at_root, pr);
  w.start_all();
  Time sent_at = 2'050'000;
  Time done_at = 0;
  w.sched().schedule_at(sent_at, [&] { w.node(5).mac->send(4, payload()); });
  // Poll for arrival.
  for (Time t = sent_at; t < 20'000'000; t += 10'000) {
    w.sched().schedule_at(t, [&] {
      if (!at_root.empty() && done_at == 0) done_at = w.sched().now();
    });
  }
  w.sched().run_until(20_s);
  ASSERT_GT(done_at, 0u);
  EXPECT_LT(done_at - sent_at, 2 * cfg.epoch);
}

TEST(TdmaMac, SendToNonParentFails) {
  World w(32);
  w.make_line(3);
  auto cfg = fast_tdma(true);
  Rng pr(101);
  wire_tdma_line(w, 3, cfg, nullptr, pr);
  w.start_all();
  bool done = false, delivered = true;
  w.node(2).mac->send(0, payload(), [&](const SendStatus& s) {
    done = true;
    delivered = s.delivered;
  });
  EXPECT_TRUE(done);
  EXPECT_FALSE(delivered);
}

TEST(TdmaMac, DutyCycleLowInSteadyState) {
  World w(33);
  w.make_line(4);
  auto cfg = fast_tdma(true);
  Rng pr(102);
  wire_tdma_line(w, 4, cfg, nullptr, pr);
  w.start_all();
  w.sched().run_until(60_s);
  // Interior node: one rx slot + one tx slot per 1 s epoch = ~8%.
  w.node(2).meter.settle(w.sched().now());
  EXPECT_LT(w.node(2).meter.duty_cycle(), 0.15);
}

TEST(TdmaMac, ManySamplesAllReachRoot) {
  World w(34);
  w.make_line(4);
  auto cfg = fast_tdma(true);
  std::vector<Buffer> at_root;
  Rng pr(103);
  wire_tdma_line(w, 4, cfg, &at_root, pr);
  w.start_all();
  for (int i = 0; i < 10; ++i) {
    w.sched().schedule_at(1'000'000 + static_cast<Time>(i) * 1'000'000,
                          [&] { w.node(3).mac->send(2, payload()); });
  }
  w.sched().run_until(30_s);
  EXPECT_EQ(at_root.size(), 10u);
}

}  // namespace
}  // namespace iiot::mac
