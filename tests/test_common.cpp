// Unit tests for common utilities: byte codecs, CRCs, RNG, Result.
#include <gtest/gtest.h>

#include <set>

#include "common/bytes.hpp"
#include "common/crc.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"

namespace iiot {
namespace {

TEST(Bytes, RoundTripIntegers) {
  Buffer buf;
  BufWriter w(buf);
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ULL);
  w.f64(3.14159);

  BufReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_DOUBLE_EQ(*r.f64(), 3.14159);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, BigEndianLayout) {
  Buffer buf;
  BufWriter w(buf);
  w.u16(0x0102);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[1], 0x02);
}

TEST(Bytes, UnderflowSticksToFailed) {
  Buffer buf{0x01};
  BufReader r(buf);
  EXPECT_EQ(r.u32(), std::nullopt);
  EXPECT_FALSE(r.ok());
  // Even a 1-byte read must now fail: the reader is poisoned.
  EXPECT_EQ(r.u8(), std::nullopt);
}

TEST(Bytes, LengthPrefixedStrings) {
  Buffer buf;
  BufWriter w(buf);
  w.lp_str("hello");
  w.lp_str("");
  BufReader r(buf);
  EXPECT_EQ(r.lp_str(), "hello");
  EXPECT_EQ(r.lp_str(), "");
  EXPECT_TRUE(r.ok());
}

TEST(Crc, KnownVectors) {
  // CRC-16/CCITT-FALSE("123456789") = 0x29B1
  auto data = to_buffer("123456789");
  EXPECT_EQ(crc16_ccitt(data), 0x29B1);
  // CRC-32("123456789") = 0xCBF43926
  EXPECT_EQ(crc32_ieee(data), 0xCBF43926u);
}

TEST(Crc, DetectsSingleBitFlip) {
  auto data = to_buffer("industrial iot frame payload");
  auto original = crc16_ccitt(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Buffer corrupted = data;
      corrupted[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(crc16_ccitt(corrupted), original);
    }
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, BelowIsBounded) {
  Rng rng(9);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.5);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / kN;
  double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ForkedStreamsIndependent) {
  Rng base(21);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Result, ValueAndError) {
  Result<int> ok(5);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);

  Result<int> err(Error{Error::Code::kTimeout, "late"});
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, Error::Code::kTimeout);
  EXPECT_EQ(err.error().message, "late");
}

TEST(Result, StatusDefaultsToSuccess) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status f(Error{Error::Code::kSecurity, "bad mic"});
  EXPECT_FALSE(f.ok());
  EXPECT_STREQ(to_string(f.error().code), "security");
}

}  // namespace
}  // namespace iiot
