// Shared test harness: builds small networks of nodes with a chosen MAC
// on one simulated medium.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "energy/meter.hpp"
#include "mac/csma.hpp"
#include "mac/lpl.hpp"
#include "mac/mac.hpp"
#include "mac/rimac.hpp"
#include "mac/tdma.hpp"
#include "radio/medium.hpp"
#include "sim/scheduler.hpp"

namespace iiot::test {

struct SimNode {
  SimNode(radio::Medium& medium, sim::Scheduler& sched, NodeId id,
          radio::Position pos)
      : meter(), radio(medium, sched, id, pos, meter) {}

  energy::Meter meter;
  radio::Radio radio;
  std::unique_ptr<mac::Mac> mac;
};

/// A little world: scheduler + medium + N nodes.
class World {
 public:
  explicit World(std::uint64_t seed = 1,
                 radio::PropagationConfig cfg = ideal_config())
      : medium_(sched_, cfg, seed), rng_(seed) {}

  static radio::PropagationConfig ideal_config() {
    radio::PropagationConfig cfg;
    cfg.shadowing_sigma_db = 0.0;
    return cfg;
  }

  SimNode& add_node(NodeId id, radio::Position pos) {
    nodes_.push_back(std::make_unique<SimNode>(medium_, sched_, id, pos));
    return *nodes_.back();
  }

  /// Line topology: ids 0..n-1 spaced `spacing` meters apart.
  void make_line(std::size_t n, double spacing = 20.0) {
    for (std::size_t i = 0; i < n; ++i) {
      add_node(static_cast<NodeId>(i),
               {static_cast<double>(i) * spacing, 0.0});
    }
  }

  template <typename MacT, typename... Args>
  MacT& with_mac(SimNode& node, Args&&... args) {
    auto m = std::make_unique<MacT>(node.radio, sched_,
                                    rng_.fork(node.radio.id() + 1), 0,
                                    std::forward<Args>(args)...);
    MacT& ref = *m;
    node.mac = std::move(m);
    return ref;
  }

  [[nodiscard]] sim::Scheduler& sched() { return sched_; }
  [[nodiscard]] radio::Medium& medium() { return medium_; }
  [[nodiscard]] SimNode& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] Rng& rng() { return rng_; }

  void start_all() {
    for (auto& n : nodes_) {
      if (n->mac) n->mac->start();
    }
  }

 private:
  sim::Scheduler sched_;
  radio::Medium medium_;
  Rng rng_;
  std::vector<std::unique_ptr<SimNode>> nodes_;
};

}  // namespace iiot::test
