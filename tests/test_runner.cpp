// Unit coverage for the parallel scenario-execution engine (DESIGN.md
// §4e): slot ordering under adversarial completion order, exception
// propagation, early stop, degenerate batches, and the determinism
// contract — jobs=1 and jobs=N must aggregate byte-identical fuzz
// artifacts.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runner/engine.hpp"
#include "testing/batch.hpp"
#include "testing/scenario.hpp"
#include "testing/shrink.hpp"

namespace iiot {
namespace {

TEST(Runner, HardwareJobsIsPositive) {
  EXPECT_GE(runner::hardware_jobs(), 1u);
  runner::Engine eng(0);  // 0 resolves to the hardware count
  EXPECT_EQ(eng.jobs(), runner::hardware_jobs());
}

TEST(Runner, EmptyBatchRunsNothing) {
  for (unsigned jobs : {1u, 4u}) {
    runner::Engine eng(jobs);
    std::atomic<int> calls{0};
    EXPECT_EQ(eng.run(0, [&](std::size_t) { ++calls; }), 0u);
    EXPECT_EQ(calls.load(), 0);
  }
}

TEST(Runner, MoreJobsThanTasks) {
  runner::Engine eng(8);
  std::vector<int> slots(3, -1);
  EXPECT_EQ(eng.run(3, [&](std::size_t i) {
              slots[i] = static_cast<int>(i) * 10;
            }),
            3u);
  EXPECT_EQ(slots, (std::vector<int>{0, 10, 20}));
}

// Adversarial completion order: early tasks sleep longest, so completion
// order is roughly the reverse of claim order — slots must still land by
// task id.
TEST(Runner, SlotsOrderedUnderAdversarialCompletionOrder) {
  constexpr std::size_t kTasks = 24;
  runner::Engine eng(4);
  std::vector<std::uint64_t> slots(kTasks, 0);
  eng.run(kTasks, [&](std::size_t i) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds((kTasks - i) % 5));
    slots[i] = i * i + 1;
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(slots[i], i * i + 1) << "slot " << i;
  }
}

// The lowest-index throwing task wins, exactly as a serial loop would
// have thrown — even when a later task throws first in wall time.
TEST(Runner, LowestIndexExceptionPropagates) {
  for (unsigned jobs : {1u, 4u}) {
    runner::Engine eng(jobs);
    std::vector<int> done(16, 0);
    try {
      eng.run(16, [&](std::size_t i) {
        if (i == 3) {
          // Give the other workers time to claim (and throw from) later
          // indices first.
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          throw std::runtime_error("task 3");
        }
        if (i == 7) throw std::runtime_error("task 7");
        done[i] = 1;
      });
      FAIL() << "no exception at jobs=" << jobs;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 3") << "jobs=" << jobs;
    }
    // Everything below the throwing index ran to completion.
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(done[i], 1) << "jobs=" << jobs << " slot " << i;
    }
  }
}

TEST(Runner, StopAfterSkipsTail) {
  for (unsigned jobs : {1u, 4u}) {
    runner::Engine eng(jobs);
    std::vector<int> done(64, 0);
    const std::size_t executed = eng.run(
        64, [&](std::size_t i) { done[i] = 1; },
        [](std::size_t i) { return i == 5; });
    // The executed set is a prefix covering the stop index; far tail
    // tasks were never claimed.
    EXPECT_GE(executed, 6u) << "jobs=" << jobs;
    EXPECT_LT(executed, 64u) << "jobs=" << jobs;
    for (std::size_t i = 0; i <= 5; ++i) {
      EXPECT_EQ(done[i], 1) << "jobs=" << jobs << " slot " << i;
    }
  }
}

TEST(Runner, ReentrantRunOnPoolThrows) {
  runner::Engine eng(2);
  EXPECT_THROW(eng.run(2,
                       [&](std::size_t) {
                         eng.run(1, [](std::size_t) {});
                       }),
               std::logic_error);
}

TEST(Runner, SerialEngineNestsFine) {
  runner::Engine eng(1);
  int inner = 0;
  eng.run(2, [&](std::size_t) { eng.run(3, [&](std::size_t) { ++inner; }); });
  EXPECT_EQ(inner, 6);
}

TEST(Runner, MapCollectsSlots) {
  runner::Engine eng(4);
  const std::vector<std::string> out = runner::map<std::string>(
      eng, 6, [](std::size_t i) { return "v" + std::to_string(i); });
  ASSERT_EQ(out.size(), 6u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], "v" + std::to_string(i));
  }
}

// ---- determinism contract on the real workload ------------------------

// A green batch: every jobs-invariant artifact must be byte-identical
// between the serial reference execution and a 4-job pool.
TEST(RunnerBatch, FuzzBatchIsJobsInvariant) {
  testing::FuzzBatchOptions opt;
  opt.runs = 24;
  opt.seed_base = 1;
  opt.shrink = false;
  runner::Engine eng(4);
  EXPECT_EQ(testing::check_batch_determinism(opt, eng), "");
}

// A failing batch (planted canary) exercises the early-stop path and the
// failure report; the caught seed and the report must not depend on the
// job count.
TEST(RunnerBatch, CanaryBatchIsJobsInvariant) {
  testing::FuzzBatchOptions opt;
  opt.runs = 60;
  opt.seed_base = 1;
  opt.canary = true;
  opt.shrink = false;
  runner::Engine eng(4);
  EXPECT_EQ(testing::check_batch_determinism(opt, eng), "");

  const testing::FuzzBatchResult r = testing::run_fuzz_batch(opt, eng);
  ASSERT_FALSE(r.failing_seeds.empty()) << "canary survived the batch";
  EXPECT_EQ(r.failing_seeds.size(), 1u);  // stops at the first catch
  EXPECT_NE(r.report.find("FAIL"), std::string::npos);
  EXPECT_NE(r.report.find("--canary"), std::string::npos);
}

// Shrinking a reproducer on a 4-job engine must land on the same minimal
// config, failure and rerun count as the serial reference.
TEST(RunnerBatch, ShrinkIsJobsInvariant) {
  std::optional<std::uint64_t> caught;
  for (std::uint64_t seed = 1; seed <= 60 && !caught; ++seed) {
    testing::ScenarioConfig cfg = testing::generate_scenario(seed);
    if (cfg.churn_slots == 0) continue;
    cfg.canary_skip_detach_cleanup = true;
    if (!testing::run_scenario(cfg).ok) caught = seed;
  }
  ASSERT_TRUE(caught.has_value()) << "canary survived 60 scenarios";

  testing::ScenarioConfig cfg = testing::generate_scenario(*caught);
  cfg.canary_skip_detach_cleanup = true;
  runner::Engine eng(4);
  const testing::ShrinkResult serial = testing::shrink_scenario(cfg, 48);
  const testing::ShrinkResult parallel =
      testing::shrink_scenario(cfg, 48, &eng);
  EXPECT_EQ(serial.config.summary(), parallel.config.summary());
  EXPECT_EQ(serial.failure, parallel.failure);
  EXPECT_EQ(serial.attempts, parallel.attempts);
  EXPECT_EQ(serial.changed, parallel.changed);
  // The shrunk variant must still reproduce.
  EXPECT_FALSE(testing::run_scenario(parallel.config).ok);
}

}  // namespace
}  // namespace iiot
