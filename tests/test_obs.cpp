// Observability layer tests (DESIGN.md §4d).
//
// Three tiers of guarantees, bottom-up:
//   1. Unit behavior of MetricsRegistry / Tracer / Context — handles are
//      null-safe, re-registration is stable, capacity drops are counted,
//      exports are well-formed.
//   2. Causal end-to-end: one application message can be followed across
//      backend/transport → net → MAC → radio spans by its trace id.
//   3. The determinism contract: a 20-node LPL+RPL world run twice from
//      the same seed yields byte-identical JSONL traces, Chrome-trace
//      JSON, and registry snapshots. This is what turns traces from debug
//      output into golden test oracles.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "coap/endpoint.hpp"
#include "core/network.hpp"
#include "core/system.hpp"
#include "harness.hpp"
#include "net/rpl.hpp"
#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "radio/medium.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "transport/mesh_transport.hpp"

namespace iiot {
namespace {

using sim::operator""_s;

// ===================================================== MetricsRegistry

TEST(MetricsRegistry, NullHandlesIgnoreOperations) {
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h;
  c.inc();
  g.set(3.0);
  g.add(1.0);
  h.observe(5.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.total(), 0u);
}

TEST(MetricsRegistry, CountersGaugesHistogramsRoundTrip) {
  obs::MetricsRegistry reg;
  obs::Counter c = reg.counter("mac", "tx", 3);
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);

  obs::Gauge g = reg.gauge("energy", "mj", 3);
  g.set(2.5);
  g.add(0.5);
  EXPECT_EQ(g.value(), 3.0);

  obs::Histogram h = reg.histogram("net", "latency", 3, {10.0, 100.0});
  h.observe(5.0);    // bucket 0
  h.observe(50.0);   // bucket 1
  h.observe(500.0);  // overflow bucket
  EXPECT_EQ(h.total(), 3u);

  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  // Sorted by (module, name, node): energy < mac < net.
  EXPECT_EQ(samples[0].module, "energy");
  EXPECT_EQ(samples[1].module, "mac");
  EXPECT_EQ(samples[1].u64, 5u);
  EXPECT_EQ(samples[2].module, "net");
  ASSERT_NE(samples[2].hist, nullptr);
  EXPECT_EQ(samples[2].hist->counts[0], 1u);
  EXPECT_EQ(samples[2].hist->counts[1], 1u);
  EXPECT_EQ(samples[2].hist->counts[2], 1u);
  EXPECT_EQ(samples[2].hist->sum, 555.0);
}

TEST(MetricsRegistry, ReRegistrationReturnsTheSameSlot) {
  obs::MetricsRegistry reg;
  obs::Counter a = reg.counter("mac", "tx", 1);
  a.inc(7);
  // A protocol object restarting must resume its series, not fork it.
  obs::Counter b = reg.counter("mac", "tx", 1);
  EXPECT_EQ(b.value(), 7u);
  b.inc();
  EXPECT_EQ(a.value(), 8u);
  EXPECT_EQ(reg.snapshot().size(), 1u);

  obs::Histogram h1 = reg.histogram("net", "lat", 1, {1.0});
  obs::Histogram h2 = reg.histogram("net", "lat", 1, {1.0});
  h1.observe(0.5);
  EXPECT_EQ(h2.total(), 1u);
}

TEST(MetricsRegistry, AttachedSlotsReadThroughAndDetach) {
  obs::MetricsRegistry reg;
  std::uint64_t raw = 0;
  double polled = 1.25;
  reg.attach_counter("mac", "delivered", 2, &raw, &raw);
  reg.attach_gauge_fn("energy", "mj", 2, [&polled] { return polled; },
                      &raw);
  raw = 41;
  polled = 2.5;

  auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[1].u64, 41u);  // mac.delivered reads the live field
  EXPECT_EQ(samples[0].f64, 2.5);  // energy.mj polls the callback

  reg.detach(&raw);
  EXPECT_EQ(reg.snapshot().size(), 0u);
  EXPECT_EQ(reg.size(), 0u);
}

TEST(MetricsRegistry, SnapshotTextAndJsonAreDeterministic) {
  obs::MetricsRegistry reg;
  reg.counter("b", "x", 1).inc(2);
  reg.counter("a", "y", obs::kWorldNode).inc(9);
  reg.gauge("c", "g", 0).set(1.5);
  reg.histogram("d", "h", 0, {10.0}).observe(3.0);

  const std::string text = reg.snapshot_text();
  const std::string json = reg.snapshot_json();
  // Sorted order puts module "a" first regardless of insertion order.
  EXPECT_EQ(text.find("a.y"), text.find_first_not_of(" "));
  EXPECT_NE(text.find("b.x[1] = 2"), std::string::npos);
  EXPECT_NE(json.find("\"a.y[-1]\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
  EXPECT_EQ(text, reg.snapshot_text());
  EXPECT_EQ(json, reg.snapshot_json());
}

// ============================================================== Tracer

TEST(Tracer, DisabledTracerRecordsNothing) {
  sim::Scheduler sched;
  obs::Tracer t(sched);
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.start_trace(1, obs::Layer::kApp), 0u);
  EXPECT_EQ(t.begin(1, 1, obs::Layer::kMac, "tx"), 0u);
  EXPECT_EQ(t.instant(1, 1, obs::Layer::kMac, "rx"), 0u);
  t.end(0);  // must be a harmless no-op
  t.annotate(0, "k", 1);
  EXPECT_TRUE(t.records().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, SpansCarryVirtualTimeAndAnnotations) {
  sim::Scheduler sched;
  obs::Tracer t(sched);
  t.set_enabled(true);

  const obs::TraceId tr = t.start_trace(5, obs::Layer::kApp);
  EXPECT_EQ(tr, 1u);
  EXPECT_EQ(t.trace_start(tr), 0u);

  obs::SpanRef span = 0;
  sched.schedule_at(100, [&] { span = t.begin(tr, 5, obs::Layer::kMac, "tx"); });
  sched.schedule_at(250, [&] { t.end(span, "attempts", 2); });
  sched.run_all();

  ASSERT_EQ(t.records().size(), 2u);
  const obs::SpanRecord& origin = t.records()[0];
  EXPECT_TRUE(origin.instant);
  EXPECT_STREQ(origin.name, "origin");
  const obs::SpanRecord& s = t.records()[1];
  EXPECT_EQ(s.start, 100u);
  EXPECT_EQ(s.end, 250u);
  EXPECT_FALSE(s.open);
  EXPECT_STREQ(s.arg_key, "attempts");
  EXPECT_EQ(s.arg_val, 2u);
  EXPECT_EQ(t.traces_started(), 1u);
}

TEST(Tracer, CapacityDropsAreCountedAndEndOfDroppedSpanIsSafe) {
  sim::Scheduler sched;
  obs::Tracer t(sched, 2);
  t.set_enabled(true);
  const obs::TraceId tr = t.start_trace(1, obs::Layer::kApp);  // record 1
  obs::SpanRef a = t.begin(tr, 1, obs::Layer::kMac, "tx");     // record 2
  obs::SpanRef b = t.begin(tr, 1, obs::Layer::kMac, "tx");     // dropped
  EXPECT_NE(a, 0u);
  EXPECT_EQ(b, 0u);
  EXPECT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.dropped(), 1u);
  t.end(b);  // dropped span: no-op
  t.end(a);
  t.end(a);  // double-end: no-op (span already closed)
  EXPECT_FALSE(t.records()[1].open);
}

TEST(Tracer, TraceScopeSavesAndRestoresAmbientContext) {
  sim::Scheduler sched;
  obs::Tracer t(sched);
  t.set_enabled(true);
  t.set_current(7, 3);
  {
    obs::TraceScope inner(&t, 9, 4);
    EXPECT_EQ(t.current_trace(), 9u);
    EXPECT_EQ(t.current_span(), 4u);
  }
  EXPECT_EQ(t.current_trace(), 7u);
  EXPECT_EQ(t.current_span(), 3u);
  // Null tracer: the scope must be inert.
  obs::TraceScope none(nullptr, 1, 1);
}

TEST(Tracer, JsonlAndChromeExportsAreWellFormed) {
  sim::Scheduler sched;
  obs::Tracer t(sched);
  t.set_enabled(true);
  const obs::TraceId tr = t.start_trace(2, obs::Layer::kApp);
  obs::SpanRef s = 0;
  sched.schedule_at(10, [&] { s = t.begin(tr, 2, obs::Layer::kMac, "tx"); });
  sched.schedule_at(30, [&] {
    t.instant(tr, kBroadcastNode, obs::Layer::kRadio, "rx", s);
    t.end(s);
    t.begin(tr, 2, obs::Layer::kNet, "hop");  // left open on purpose
  });
  sched.run_all();

  const std::string jsonl = t.jsonl();
  EXPECT_NE(jsonl.find("\"layer\":\"mac\",\"name\":\"tx\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"open\":1"), std::string::npos);
  // One JSON object per line, every line starts with {"span":
  std::size_t lines = 0;
  for (std::size_t pos = 0; pos < jsonl.size();) {
    EXPECT_EQ(jsonl.compare(pos, 8, "{\"span\":"), 0)
        << "line " << lines << " malformed";
    const std::size_t nl = jsonl.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    pos = nl + 1;
    ++lines;
  }
  EXPECT_EQ(lines, t.records().size());

  std::ostringstream chrome;
  t.write_chrome_json(chrome);
  const std::string cj = chrome.str();
  EXPECT_EQ(cj.front(), '{');
  EXPECT_NE(cj.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(cj.find("\"ph\":\"X\""), std::string::npos);  // complete span
  EXPECT_NE(cj.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(cj.find("process_name"), std::string::npos);
  EXPECT_NE(cj.find("\"pid\":-2"), std::string::npos);  // broadcast node
}

TEST(ObsContext, InstallsOnSchedulerAndNestsStackLike) {
  sim::Scheduler sched;
  EXPECT_EQ(sched.observability(), nullptr);
  EXPECT_EQ(obs::tracer(sched), nullptr);
  EXPECT_EQ(obs::metrics(sched), nullptr);
  {
    obs::Context outer(sched);
    EXPECT_EQ(sched.observability(), &outer);
    EXPECT_EQ(obs::metrics(sched), &outer.metrics());
    {
      obs::Context inner(sched, 16);
      EXPECT_EQ(sched.observability(), &inner);
    }
    EXPECT_EQ(sched.observability(), &outer);
  }
  EXPECT_EQ(sched.observability(), nullptr);
}

// =================================================== causal end-to-end

// Layers seen for one trace id, keyed by layer name, with record names.
std::map<std::string, std::set<std::string>> layers_of(
    const obs::Tracer& t, obs::TraceId tr) {
  std::map<std::string, std::set<std::string>> out;
  for (const obs::SpanRecord& r : t.records()) {
    if (r.trace == tr) out[obs::to_string(r.layer)].insert(r.name);
  }
  return out;
}

// A CoAP GET over a 4-hop RPL line must leave a single causal chain:
// transport origin + fragmentation, per-hop net spans, MAC tx spans,
// radio airtime spans and rx instants, and the far side's reassembly.
TEST(CausalTrace, CoapRequestCrossesTransportNetMacRadio) {
  test::World w(61);
  obs::Context obsctx(w.sched());
  obsctx.tracer().set_enabled(true);

  w.make_line(4, 25.0);
  net::RplConfig rcfg;
  rcfg.trickle = net::TrickleConfig{250'000, 8, 3};
  rcfg.dao_interval = 5'000'000;
  std::vector<std::unique_ptr<net::RplRouting>> routers;
  for (std::size_t i = 0; i < 4; ++i) {
    auto& m = w.with_mac<mac::CsmaMac>(w.node(i));
    routers.push_back(std::make_unique<net::RplRouting>(
        m, w.sched(), w.rng().fork(300 + i), rcfg));
  }
  w.start_all();
  routers[0]->start_root();
  for (std::size_t i = 1; i < 4; ++i) routers[i]->start();

  transport::MeshTransport root_tp(*routers[0], w.sched());
  transport::MeshTransport leaf_tp(*routers[3], w.sched());
  coap::Endpoint root_ep(0, w.sched(), w.rng().fork(71), root_tp.sender());
  coap::Endpoint leaf_ep(3, w.sched(), w.rng().fork(72), leaf_tp.sender());
  root_tp.bind(root_ep);
  leaf_tp.bind(leaf_ep);
  root_ep.add_resource("cfg", [](const coap::Request&) {
    coap::Response r;
    // Long enough to force fragmentation across several frames.
    r.payload = to_buffer(std::string(200, 'x'));
    return r;
  });

  w.sched().run_until(40_s);
  bool got = false;
  w.sched().schedule_at(41_s, [&] {
    leaf_ep.get(0, "cfg", [&](Result<coap::Response> r) { got = r.ok(); });
  });
  w.sched().run_until(60_s);
  ASSERT_TRUE(got);

  // Find the request's trace: a transport-layer origin at node 3 after
  // t=41s whose chain reaches the root's reassembler.
  const obs::Tracer& t = obsctx.tracer();
  obs::TraceId req_trace = 0;
  for (const obs::SpanRecord& r : t.records()) {
    if (r.instant && std::string(r.name) == "origin" && r.node == 3 &&
        r.layer == obs::Layer::kTransport && r.start >= 41_s) {
      req_trace = r.trace;
      break;
    }
  }
  ASSERT_NE(req_trace, 0u);

  const auto layers = layers_of(t, req_trace);
  ASSERT_TRUE(layers.count("transport"));
  EXPECT_TRUE(layers.at("transport").count("frag"));
  EXPECT_TRUE(layers.at("transport").count("rasm"));
  ASSERT_TRUE(layers.count("net"));
  EXPECT_TRUE(layers.at("net").count("hop"));
  EXPECT_TRUE(layers.at("net").count("deliver"));
  ASSERT_TRUE(layers.count("mac"));
  EXPECT_TRUE(layers.at("mac").count("tx"));
  EXPECT_TRUE(layers.at("mac").count("rx"));
  ASSERT_TRUE(layers.count("radio"));
  EXPECT_TRUE(layers.at("radio").count("tx"));
  EXPECT_TRUE(layers.at("radio").count("rx"));

  // The request must be reassembled at the root; the root's synchronous
  // response continues the same causal trace, so the leaf's reassembly of
  // the response may appear under this trace id too. Every reassembly
  // happens strictly after the origin.
  std::set<NodeId> rasm_nodes;
  for (const obs::SpanRecord& r : t.records()) {
    if (r.trace == req_trace && std::string(r.name) == "rasm") {
      rasm_nodes.insert(r.node);
      EXPECT_GT(r.start, t.trace_start(req_trace));
    }
  }
  EXPECT_TRUE(rasm_nodes.count(0));
}

// Through the System facade: a periodic sensor reading on a mesh node is
// traced from its app-layer origin to the backend publish instant.
TEST(CausalTrace, SensorReadingReachesBackendUnderOneTraceId) {
  sim::Scheduler sched;
  core::SystemConfig scfg;
  scfg.observability = true;
  scfg.tracing = true;
  scfg.propagation.shadowing_sigma_db = 0.0;  // reliable 3-hop line
  core::System sys(sched, 99, scfg);
  ASSERT_NE(sys.observability(), nullptr);

  core::NodeConfig ncfg;
  ncfg.mac = core::MacKind::kCsma;
  core::MeshNetwork& mesh = sys.add_mesh("plant", ncfg);
  mesh.build_line(4, 25.0);
  mesh.start();
  sys.bridge("plant", mesh);
  sys.add_periodic_sensor(mesh.node(3), 7, 2_s, [] { return 21.5; });
  sched.run_until(60_s);

  const obs::Tracer& t = sys.observability()->tracer();
  // Some trace must span app origin → net → mac → radio → backend publish.
  bool found = false;
  for (const obs::SpanRecord& r : t.records()) {
    if (!(r.instant && std::string(r.name) == "origin" && r.node == 3 &&
          r.layer == obs::Layer::kApp)) {
      continue;
    }
    const auto layers = layers_of(t, r.trace);
    if (layers.count("net") && layers.count("mac") &&
        layers.count("radio") && layers.count("backend") &&
        layers.at("backend").count("publish")) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);

  // The backend gauges polled at snapshot time must reflect traffic.
  const std::string snap = sys.observability()->metrics().snapshot_text();
  EXPECT_NE(snap.find("backend.bus_published"), std::string::npos);
  EXPECT_NE(snap.find("energy.total_mj"), std::string::npos);
}

// ================================================= golden determinism

struct GoldenRun {
  std::string jsonl;
  std::string chrome;
  std::string metrics;
  std::size_t records = 0;
  std::uint64_t delivered = 0;
};

// A 20-node LPL+RPL world with periodic upward traffic, traced end to
// end. Everything obs emits must be a pure function of the seed.
GoldenRun run_lpl_world(std::uint64_t seed) {
  sim::Scheduler sched;
  // Bounded tracer: LPL strobe trains are record-heavy, and hitting the
  // cap exercises deterministic dropping too.
  obs::Context obsctx(sched, 1u << 16);
  obsctx.tracer().set_enabled(true);

  radio::PropagationConfig pcfg;
  pcfg.shadowing_sigma_db = 1.0;
  radio::Medium medium(sched, pcfg, seed);
  core::NodeConfig ncfg;
  ncfg.mac = core::MacKind::kLpl;
  ncfg.lpl.wake_interval = 250'000;
  ncfg.rimac.wake_interval = 250'000;
  ncfg.rpl.trickle = net::TrickleConfig{1'000'000, 8, 2};
  ncfg.rpl.dao_interval = 60'000'000;
  ncfg.rpl.dis_interval = 15'000'000;
  ncfg.rpl.max_parent_failures = 6;
  core::MeshNetwork mesh(sched, medium, Rng(seed), ncfg);
  mesh.build_grid(20, 20.0);
  mesh.start();
  sched.run_until(90_s);

  for (std::size_t i = 1; i < mesh.size(); ++i) {
    core::MeshNode* node = &mesh.node(i);
    const sim::Time phase = (static_cast<sim::Time>(i) * 7'919) % 4'000'000;
    for (sim::Time t = 90_s + phase; t < 110_s; t += 4_s) {
      sched.schedule_at(t, [node] {
        if (!node->routing->joined()) return;
        Buffer p;
        p.push_back(0x5A);
        (void)node->routing->send_up(std::move(p));
      });
    }
  }
  sched.run_until(115_s);

  GoldenRun g;
  g.jsonl = obsctx.tracer().jsonl();
  std::ostringstream chrome;
  obsctx.tracer().write_chrome_json(chrome);
  g.chrome = chrome.str();
  g.metrics = obsctx.metrics().snapshot_json();
  g.records = obsctx.tracer().records().size();
  g.delivered = mesh.root().routing->stats().data_delivered;
  mesh.stop();
  return g;
}

TEST(GoldenTrace, TwentyNodeLplWorldIsByteIdenticalAcrossRuns) {
  const GoldenRun a = run_lpl_world(20'2408);
  const GoldenRun b = run_lpl_world(20'2408);
  // Byte-identical exports: JSONL, Chrome JSON, and the full registry.
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.chrome, b.chrome);
  EXPECT_EQ(a.metrics, b.metrics);
  // And the run must have actually exercised the traced stack.
  EXPECT_GT(a.records, 1000u);
  EXPECT_GT(a.delivered, 0u);
  EXPECT_NE(a.jsonl.find("\"layer\":\"radio\",\"name\":\"tx\""),
            std::string::npos);
  EXPECT_NE(a.metrics.find("net.data_delivered"), std::string::npos);
}

TEST(GoldenTrace, DifferentSeedsProduceDifferentTraces) {
  const GoldenRun a = run_lpl_world(111);
  const GoldenRun b = run_lpl_world(222);
  EXPECT_NE(a.jsonl, b.jsonl);
}

}  // namespace
}  // namespace iiot
