// In-network aggregation tests: partial-aggregate algebra and the
// raw-vs-aggregated collection services over a real simulated mesh.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "agg/aggregate.hpp"
#include "agg/collection.hpp"
#include "harness.hpp"
#include "net/rpl.hpp"

namespace iiot::agg {
namespace {

using namespace sim;  // NOLINT: time literals
using test::World;

TEST(PartialAggregate, SingleSample) {
  PartialAggregate p;
  p.add_sample(21.5);
  EXPECT_EQ(p.count, 1u);
  EXPECT_DOUBLE_EQ(p.evaluate(AggFn::kMin), 21.5);
  EXPECT_DOUBLE_EQ(p.evaluate(AggFn::kMax), 21.5);
  EXPECT_DOUBLE_EQ(p.evaluate(AggFn::kAvg), 21.5);
  EXPECT_DOUBLE_EQ(p.evaluate(AggFn::kSum), 21.5);
  EXPECT_DOUBLE_EQ(p.evaluate(AggFn::kCount), 1.0);
}

TEST(PartialAggregate, MergeMatchesFlatComputation) {
  std::vector<double> values{3.0, -1.0, 7.5, 2.25, 9.0, 0.0};
  PartialAggregate flat;
  for (double v : values) flat.add_sample(v);

  PartialAggregate left, right;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i % 2 == 0 ? left : right).add_sample(values[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count, flat.count);
  EXPECT_DOUBLE_EQ(left.sum, flat.sum);
  EXPECT_DOUBLE_EQ(left.min, flat.min);
  EXPECT_DOUBLE_EQ(left.max, flat.max);
}

TEST(PartialAggregate, MergeWithEmptyIsIdentity) {
  PartialAggregate p, empty;
  p.add_sample(5.0);
  p.merge(empty);
  EXPECT_EQ(p.count, 1u);
  EXPECT_DOUBLE_EQ(p.evaluate(AggFn::kAvg), 5.0);
}

TEST(PartialAggregate, CodecRoundTrip) {
  PartialAggregate p;
  p.add_sample(1.5);
  p.add_sample(-2.5);
  Buffer buf;
  BufWriter w(buf);
  p.encode(w);
  EXPECT_EQ(buf.size(), 28u);  // constant size regardless of count
  BufReader r(buf);
  auto q = PartialAggregate::decode(r);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->count, 2u);
  EXPECT_DOUBLE_EQ(q->min, -2.5);
  EXPECT_DOUBLE_EQ(q->max, 1.5);
}

// ----------------------------------------------------- mesh-level services

struct AggNet {
  explicit AggNet(World& w) : world(w) {
    net::RplConfig rcfg;
    rcfg.trickle = net::TrickleConfig{250'000, 8, 3};
    rcfg.dao_interval = 10'000'000;
    for (std::size_t i = 0; i < w.size(); ++i) {
      auto& m = w.with_mac<mac::CsmaMac>(w.node(i));
      routers.push_back(std::make_unique<net::RplRouting>(
          m, w.sched(), w.rng().fork(700 + i), rcfg));
    }
    w.start_all();
    routers[0]->start_root();
    for (std::size_t i = 1; i < routers.size(); ++i) routers[i]->start();
  }
  World& world;
  std::vector<std::unique_ptr<net::RplRouting>> routers;
};

CollectionConfig fast_collection() {
  CollectionConfig cfg;
  cfg.epoch = 10'000'000;  // 10 s epochs
  cfg.flush_slack = 300'000;
  cfg.sample_jitter = 1'000'000;
  return cfg;
}

TEST(RawCollection, AllReadingsReachRoot) {
  World w(70);
  w.make_line(5, 25.0);
  AggNet net(w);
  w.sched().run_until(20_s);  // formation

  auto cfg = fast_collection();
  std::vector<std::unique_ptr<RawCollection>> svcs;
  std::map<std::uint32_t, std::vector<double>> per_epoch;
  for (std::size_t i = 0; i < 5; ++i) {
    svcs.push_back(std::make_unique<RawCollection>(
        *net.routers[i], w.sched(), w.rng().fork(800 + i), cfg));
  }
  svcs[0]->start_sink([&](std::uint32_t epoch, NodeId origin, double v) {
    (void)origin;
    per_epoch[epoch].push_back(v);
  });
  for (std::size_t i = 1; i < 5; ++i) {
    svcs[i]->start([i] { return 20.0 + static_cast<double>(i); });
  }
  w.sched().run_until(80_s);
  // At least 4 full epochs collected, 4 readings each.
  int full = 0;
  for (auto& [e, vals] : per_epoch) {
    if (vals.size() == 4) ++full;
  }
  EXPECT_GE(full, 4);
}

TEST(TreeAggregation, AggregateMatchesGroundTruth) {
  World w(71);
  w.make_line(5, 25.0);
  AggNet net(w);
  w.sched().run_until(20_s);

  auto cfg = fast_collection();
  std::vector<std::unique_ptr<TreeAggregation>> svcs;
  std::map<std::uint32_t, PartialAggregate> results;
  for (std::size_t i = 0; i < 5; ++i) {
    svcs.push_back(std::make_unique<TreeAggregation>(
        *net.routers[i], w.sched(), w.rng().fork(900 + i), cfg));
  }
  svcs[0]->start_sink([&](std::uint32_t epoch, const PartialAggregate& p) {
    results[epoch] = p;
  });
  for (std::size_t i = 1; i < 5; ++i) {
    svcs[i]->start([i] { return 10.0 * static_cast<double>(i); });
  }
  w.sched().run_until(100_s);

  // Find a complete epoch: count == 4, then check min/max/avg.
  bool found = false;
  for (auto& [e, p] : results) {
    if (p.count == 4) {
      found = true;
      EXPECT_DOUBLE_EQ(p.evaluate(AggFn::kMin), 10.0);
      EXPECT_DOUBLE_EQ(p.evaluate(AggFn::kMax), 40.0);
      EXPECT_DOUBLE_EQ(p.evaluate(AggFn::kAvg), 25.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(TreeAggregation, IntermediateNodesMergeInsteadOfForward) {
  // On a 5-node line, node 1 (adjacent to root) must send one partial per
  // epoch regardless of how many descendants it has; with raw collection
  // it would relay 3 descendant messages + its own.
  World w(72);
  w.make_line(5, 25.0);
  AggNet net(w);
  w.sched().run_until(20_s);

  auto cfg = fast_collection();
  std::vector<std::unique_ptr<TreeAggregation>> svcs;
  for (std::size_t i = 0; i < 5; ++i) {
    svcs.push_back(std::make_unique<TreeAggregation>(
        *net.routers[i], w.sched(), w.rng().fork(950 + i), cfg));
  }
  svcs[0]->start_sink([](std::uint32_t, const PartialAggregate&) {});
  for (std::size_t i = 1; i < 5; ++i) {
    svcs[i]->start([] { return 1.0; });
  }
  const std::uint64_t fwd_before = net.routers[1]->stats().data_forwarded;
  w.sched().run_until(100_s);
  // Node 1 merged descendants' partials rather than forwarding them.
  EXPECT_GT(svcs[1]->partials_merged(), 0u);
  EXPECT_EQ(net.routers[1]->stats().data_forwarded, fwd_before);
  // And it sent roughly one partial per epoch (8 epochs in 80 s).
  EXPECT_LE(svcs[1]->partials_sent(), 10u);
  EXPECT_GE(svcs[1]->partials_sent(), 6u);
}

TEST(TreeAggregation, RadioLoadNearRootLowerThanRaw) {
  // The E3 claim in miniature: data-plane bytes transmitted by the
  // root-adjacent relay are much lower with aggregation than with raw
  // collection. Mode 0 measures the idle control-plane baseline (DIO/DAO)
  // which is identical across modes and subtracted out.
  auto run = [](int mode) -> std::uint64_t {
    World w(73);
    w.make_line(6, 25.0);
    AggNet net(w);
    w.sched().run_until(20_s);
    auto cfg = fast_collection();
    std::vector<std::unique_ptr<RawCollection>> raw;
    std::vector<std::unique_ptr<TreeAggregation>> agg;
    const bool aggregate = mode == 2;
    if (mode == 0) {
      // idle: no collection service at all
    } else if (aggregate) {
      for (std::size_t i = 0; i < 6; ++i) {
        agg.push_back(std::make_unique<TreeAggregation>(
            *net.routers[i], w.sched(), w.rng().fork(33 + i), cfg));
      }
      agg[0]->start_sink([](std::uint32_t, const PartialAggregate&) {});
      for (std::size_t i = 1; i < 6; ++i) {
        agg[i]->start([] { return 1.0; });
      }
    } else {
      for (std::size_t i = 0; i < 6; ++i) {
        raw.push_back(std::make_unique<RawCollection>(
            *net.routers[i], w.sched(), w.rng().fork(33 + i), cfg));
      }
      raw[0]->start_sink([](std::uint32_t, NodeId, double) {});
      for (std::size_t i = 1; i < 6; ++i) {
        raw[i]->start([] { return 1.0; });
      }
    }
    const std::uint64_t before = w.node(1).radio.bytes_sent();
    w.sched().run_until(140_s);
    return w.node(1).radio.bytes_sent() - before;
  };
  const std::uint64_t idle_bytes = run(0);
  const std::uint64_t raw_bytes = run(1) - idle_bytes;
  const std::uint64_t agg_bytes = run(2) - idle_bytes;
  // 5-node chain behind the relay: raw relays one message per descendant
  // per epoch; aggregation relays exactly one constant-size partial.
  EXPECT_LT(agg_bytes * 3, raw_bytes);
}

}  // namespace
}  // namespace iiot::agg
