// Interoperability tests: legacy wire protocols, adapters, and the
// gateway's CoAP + bus integration (paper §III, bench E12).
#include <gtest/gtest.h>

#include <memory>

#include "backend/rules.hpp"
#include "common/rng.hpp"
#include "backend/topic_bus.hpp"
#include "coap/endpoint.hpp"
#include "interop/gateway.hpp"
#include "interop/gatt.hpp"
#include "interop/modbus.hpp"
#include "interop/vendor_tlv.hpp"
#include "sim/scheduler.hpp"

namespace iiot::interop {
namespace {

using namespace sim;  // NOLINT: time literals

ResourceDescriptor temp_descriptor(std::uint8_t instance = 0) {
  ResourceDescriptor d;
  d.path = {kObjTemperature, instance, kResSensorValue};
  d.name = "temperature";
  d.unit = "Cel";
  return d;
}

ResourceDescriptor setpoint_descriptor() {
  ResourceDescriptor d;
  d.path = {kObjActuation, 0, kResDimmer};
  d.name = "valve setpoint";
  d.unit = "%";
  d.writable = true;
  return d;
}

// ---------------------------------------------------------- resource model

TEST(ResourcePath, ParseAndFormat) {
  auto p = ResourcePath::parse("3303/0/5700");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->object, 3303);
  EXPECT_EQ(p->resource, 5700);
  EXPECT_EQ(p->str(), "3303/0/5700");
  EXPECT_EQ(ResourcePath::parse("junk"), std::nullopt);
  EXPECT_EQ(ResourcePath::parse("99999999/0/1"), std::nullopt);
}

TEST(ResourceValue, Conversions) {
  EXPECT_EQ(value_to_string(ResourceValue{true}), "true");
  EXPECT_EQ(value_to_string(ResourceValue{std::int64_t{42}}), "42");
  EXPECT_EQ(value_as_double(ResourceValue{21.5}), 21.5);
  EXPECT_EQ(value_as_double(ResourceValue{std::string("x")}), std::nullopt);
}

// ----------------------------------------------------------------- modbus

TEST(ModbusDevice, ReadHoldingRegister) {
  ModbusRtuDevice dev(1);
  dev.set_register(100, 2150);
  Buffer req{1, 0x03, 0x00, 100, 0x00, 0x01};
  const std::uint16_t crc = crc16_ccitt(req);
  req.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  req.push_back(static_cast<std::uint8_t>(crc >> 8));
  Buffer rsp = dev.process(req);
  ASSERT_GE(rsp.size(), 7u);
  EXPECT_EQ(rsp[1], 0x03);
  EXPECT_EQ((rsp[3] << 8) | rsp[4], 2150);
}

TEST(ModbusDevice, BadCrcIgnored) {
  ModbusRtuDevice dev(1);
  dev.set_register(100, 5);
  Buffer req{1, 0x03, 0x00, 100, 0x00, 0x01, 0xDE, 0xAD};
  EXPECT_TRUE(dev.process(req).empty());
}

TEST(ModbusDevice, WrongUnitSilent) {
  ModbusRtuDevice dev(7);
  Buffer req{1, 0x03, 0x00, 0, 0x00, 0x01};
  const std::uint16_t crc = crc16_ccitt(req);
  req.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  req.push_back(static_cast<std::uint8_t>(crc >> 8));
  EXPECT_TRUE(dev.process(req).empty());
}

TEST(ModbusDevice, UnknownRegisterIsException) {
  ModbusRtuDevice dev(1);
  Buffer req{1, 0x03, 0x12, 0x34, 0x00, 0x01};
  const std::uint16_t crc = crc16_ccitt(req);
  req.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  req.push_back(static_cast<std::uint8_t>(crc >> 8));
  Buffer rsp = dev.process(req);
  ASSERT_GE(rsp.size(), 3u);
  EXPECT_EQ(rsp[1], 0x83);  // function | 0x80
  EXPECT_EQ(rsp[2], 0x02);  // illegal data address
}

TEST(ModbusAdapter, ReadScalesFixedPoint) {
  ModbusRtuDevice dev(1);
  dev.set_register(100, 2150);  // 21.50 C as fixed-point x100
  ModbusAdapter adapter(dev, {{temp_descriptor(), 100, 100.0}});
  auto v = adapter.read({kObjTemperature, 0, kResSensorValue});
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(std::get<double>(v.value()), 21.5);
  EXPECT_GT(adapter.stats().pdu_bytes_out, 0u);
}

TEST(ModbusAdapter, WriteThrough) {
  ModbusRtuDevice dev(1);
  dev.set_register(200, 0);
  auto desc = setpoint_descriptor();
  ModbusAdapter adapter(dev, {{desc, 200, 100.0}});
  auto st = adapter.write(desc.path, ResourceValue{55.25});
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(dev.reg(200), 5525);
}

TEST(ModbusAdapter, UnmappedPathFails) {
  ModbusRtuDevice dev(1);
  ModbusAdapter adapter(dev, {});
  EXPECT_FALSE(adapter.read({1, 0, 1}).ok());
}

// ------------------------------------------------------------------- gatt

TEST(GattDevice, ReadWriteAttribute) {
  GattDevice dev;
  dev.set_float(0x0021, 23.75f);
  Buffer read_req{0x0A, 0x21, 0x00};
  Buffer rsp = dev.process(read_req);
  ASSERT_EQ(rsp.size(), 5u);
  EXPECT_EQ(rsp[0], 0x0B);
  float v = 0;
  std::memcpy(&v, rsp.data() + 1, 4);
  EXPECT_FLOAT_EQ(v, 23.75f);
}

TEST(GattDevice, UnknownHandleErrors) {
  GattDevice dev;
  Buffer rsp = dev.process(Buffer{0x0A, 0x99, 0x00});
  ASSERT_EQ(rsp.size(), 5u);
  EXPECT_EQ(rsp[0], 0x01);  // error response
  EXPECT_EQ(rsp[4], 0x0A);  // attribute not found
}

TEST(GattAdapter, RoundTrip) {
  GattDevice dev;
  dev.set_float(0x0021, 19.5f);
  GattAdapter adapter(dev, {{temp_descriptor(), 0x0021}});
  auto v = adapter.read({kObjTemperature, 0, kResSensorValue});
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(std::get<double>(v.value()), 19.5, 1e-5);
}

TEST(GattAdapter, WriteUpdatesDevice) {
  GattDevice dev;
  dev.set_float(0x0030, 0.0f);
  auto desc = setpoint_descriptor();
  GattAdapter adapter(dev, {{desc, 0x0030}});
  ASSERT_TRUE(adapter.write(desc.path, ResourceValue{75.0}).ok());
  EXPECT_FLOAT_EQ(*dev.get_float(0x0030), 75.0f);
}

// ------------------------------------------------------------- vendor tlv

TEST(VendorDevice, ReadPoint) {
  VendorTlvDevice dev;
  dev.set_point(3, 42.125);
  VendorTlvAdapter adapter(dev, {{temp_descriptor(), 3}});
  auto v = adapter.read({kObjTemperature, 0, kResSensorValue});
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(std::get<double>(v.value()), 42.125);
}

TEST(VendorDevice, WritePoint) {
  VendorTlvDevice dev;
  dev.set_point(5, 0.0);
  auto desc = setpoint_descriptor();
  VendorTlvAdapter adapter(dev, {{desc, 5}});
  ASSERT_TRUE(adapter.write(desc.path, ResourceValue{9.75}).ok());
  EXPECT_DOUBLE_EQ(*dev.point(5), 9.75);
}

TEST(VendorDevice, CorruptChecksumIgnored) {
  VendorTlvDevice dev;
  dev.set_point(3, 1.0);
  Buffer frame{0xA5, 0x01, 0x03, 0x10, 0x01, 0x03, 0x00};  // bad xor
  EXPECT_TRUE(dev.process(frame).empty());
}

TEST(VendorDevice, UnknownPointErrors) {
  VendorTlvDevice dev;
  VendorTlvAdapter adapter(dev, {{temp_descriptor(), 9}});
  EXPECT_FALSE(adapter.read({kObjTemperature, 0, kResSensorValue}).ok());
  EXPECT_GE(adapter.stats().protocol_errors, 1u);
}

// ------------------------------------------------- adversarial error paths

Buffer modbus_with_crc(Buffer body) {
  const std::uint16_t crc = crc16_ccitt(body);
  body.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  body.push_back(static_cast<std::uint8_t>(crc >> 8));
  return body;
}

TEST(ModbusDevice, TruncatedFramesStaySilent) {
  ModbusRtuDevice dev(1);
  dev.set_register(100, 7);
  const Buffer full = modbus_with_crc({1, 0x03, 0x00, 100, 0x00, 0x01});
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_TRUE(dev.process(BytesView(full.data(), len)).empty())
        << "length " << len;
  }
}

TEST(ModbusDevice, IllegalFunctionGetsException) {
  ModbusRtuDevice dev(1);
  Buffer rsp = dev.process(modbus_with_crc({1, 0x55, 0x00, 0, 0x00, 0x01}));
  ASSERT_GE(rsp.size(), 3u);
  EXPECT_EQ(rsp[1], 0x55 | 0x80);
  EXPECT_EQ(rsp[2], 0x01);  // illegal function
}

TEST(ModbusDevice, ZeroAndOversizedCountsAreExceptions) {
  ModbusRtuDevice dev(1);
  dev.set_register(100, 7);
  Buffer zero = dev.process(modbus_with_crc({1, 0x03, 0x00, 100, 0x00, 0x00}));
  ASSERT_GE(zero.size(), 3u);
  EXPECT_EQ(zero[1], 0x83);
  Buffer big = dev.process(modbus_with_crc({1, 0x03, 0x00, 100, 0x00, 0xFF}));
  ASSERT_GE(big.size(), 3u);
  EXPECT_EQ(big[1], 0x83);
}

// Deterministic garbage fuzz: random byte soup must never crash the
// parser and (without a valid CRC) never elicit a response.
TEST(ModbusDevice, GarbageFuzzNeverAnswers) {
  ModbusRtuDevice dev(1);
  dev.set_register(100, 7);
  Rng rng(2024, 1);
  for (int i = 0; i < 500; ++i) {
    Buffer frame(rng.below(33));
    for (auto& b : frame) b = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_TRUE(dev.process(frame).empty()) << "iteration " << i;
  }
}

TEST(GattDevice, TruncatedPduYieldsErrorResponse) {
  GattDevice dev;
  dev.set_float(0x0021, 1.0f);
  for (std::size_t len = 0; len < 3; ++len) {
    const Buffer pdu(len, 0x0A);
    Buffer rsp = dev.process(pdu);
    ASSERT_EQ(rsp.size(), 5u) << "length " << len;
    EXPECT_EQ(rsp[0], 0x01);  // ATT error response
    EXPECT_EQ(rsp[4], 0x06);  // request not supported
  }
}

TEST(GattAdapter, TruncatedAttributeIsMalformed) {
  GattDevice dev;
  dev.set_float(0x0021, 1.0f);
  // Shrink the attribute to 2 bytes via a raw write PDU; the adapter's
  // read response is then not a 4-byte float and must be rejected.
  Buffer write{0x12, 0x21, 0x00, 0xAB, 0xCD};
  ASSERT_EQ(dev.process(write)[0], 0x13);
  GattAdapter adapter(dev, {{temp_descriptor(), 0x0021}});
  auto v = adapter.read({kObjTemperature, 0, kResSensorValue});
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.error().code, Error::Code::kMalformed);
  EXPECT_GE(adapter.stats().protocol_errors, 1u);
}

TEST(GattDevice, GarbageFuzzAlwaysAnswersBounded) {
  GattDevice dev;
  dev.set_float(0x0021, 1.0f);
  Rng rng(2024, 2);
  for (int i = 0; i < 500; ++i) {
    Buffer pdu(rng.below(17));
    for (auto& b : pdu) b = static_cast<std::uint8_t>(rng.below(256));
    Buffer rsp = dev.process(pdu);
    // ATT always responds; replies are bounded by the largest attribute.
    ASSERT_FALSE(rsp.empty()) << "iteration " << i;
    EXPECT_LE(rsp.size(), 16u);
  }
}

Buffer vendor_frame(std::uint8_t cmd, Buffer tlvs) {
  Buffer f{0xA5, cmd, static_cast<std::uint8_t>(tlvs.size())};
  f.insert(f.end(), tlvs.begin(), tlvs.end());
  std::uint8_t x = 0;
  for (std::uint8_t v : f) x ^= v;
  f.push_back(x);
  return f;
}

TEST(VendorDevice, UnknownCommandYieldsErrorFrame) {
  VendorTlvDevice dev;
  Buffer rsp = dev.process(vendor_frame(0x55, {}));
  ASSERT_GE(rsp.size(), 4u);
  EXPECT_EQ(rsp[0], 0xA5);
  EXPECT_EQ(rsp[1], 0x7F);  // vendor error command
}

TEST(VendorDevice, UnknownTlvTypesAreSkippedNotFatal) {
  VendorTlvDevice dev;
  dev.set_point(3, 6.5);
  // A foreign TLV (type 0x42) precedes the point id; the parser must
  // skip it and still serve the read.
  Buffer rsp =
      dev.process(vendor_frame(0x01, {0x42, 0x02, 0xAA, 0xBB, 0x10, 0x01, 3}));
  ASSERT_GE(rsp.size(), 4u);
  EXPECT_EQ(rsp[1], 0x81);  // read | 0x80: success
}

TEST(VendorDevice, OverrunningTlvLengthIsError) {
  VendorTlvDevice dev;
  dev.set_point(3, 6.5);
  // TLV claims 9 value bytes but only 1 follows.
  Buffer rsp = dev.process(vendor_frame(0x01, {0x10, 0x09, 3}));
  ASSERT_GE(rsp.size(), 4u);
  EXPECT_EQ(rsp[1], 0x7F);
}

TEST(VendorDevice, GarbageFuzzSilentOrError) {
  VendorTlvDevice dev;
  dev.set_point(3, 6.5);
  Rng rng(2024, 3);
  for (int i = 0; i < 500; ++i) {
    Buffer frame(rng.below(25));
    for (auto& b : frame) b = static_cast<std::uint8_t>(rng.below(256));
    Buffer rsp = dev.process(frame);
    if (!rsp.empty()) {
      EXPECT_EQ(rsp[0], 0xA5) << "iteration " << i;
      EXPECT_TRUE(rsp[1] == 0x7F || rsp[1] == 0x81 || rsp[1] == 0x82)
          << "iteration " << i;
    }
  }
}

// ---------------------------------------------------------------- gateway

struct GatewayFixture : ::testing::Test {
  GatewayFixture()
      : modbus_dev(1),
        modbus_adapter(
            modbus_dev,
            {{temp_descriptor(0), 100, 100.0}, {setpoint_descriptor(), 200, 100.0}}),
        gatt_adapter(gatt_dev, {{temp_descriptor(1), 0x0021}}),
        vendor_adapter(vendor_dev, {{temp_descriptor(2), 3}}),
        gateway(sched, bus) {
    modbus_dev.set_register(100, 2100);
    modbus_dev.set_register(200, 0);
    gatt_dev.set_float(0x0021, 22.5f);
    vendor_dev.set_point(3, 23.0);
    gateway.add_device("plc", modbus_adapter);
    gateway.add_device("ble", gatt_adapter);
    gateway.add_device("legacy", vendor_adapter);
  }

  Scheduler sched;
  backend::TopicBus bus;
  ModbusRtuDevice modbus_dev;
  ModbusAdapter modbus_adapter;
  GattDevice gatt_dev;
  GattAdapter gatt_adapter;
  VendorTlvDevice vendor_dev;
  VendorTlvAdapter vendor_adapter;
  Gateway gateway;
};

TEST_F(GatewayFixture, UnifiedReadAcrossProtocols) {
  auto plc = gateway.read("plc", {kObjTemperature, 0, kResSensorValue});
  auto ble = gateway.read("ble", {kObjTemperature, 1, kResSensorValue});
  auto leg = gateway.read("legacy", {kObjTemperature, 2, kResSensorValue});
  ASSERT_TRUE(plc.ok());
  ASSERT_TRUE(ble.ok());
  ASSERT_TRUE(leg.ok());
  EXPECT_DOUBLE_EQ(std::get<double>(plc.value()), 21.0);
  EXPECT_NEAR(std::get<double>(ble.value()), 22.5, 1e-5);
  EXPECT_DOUBLE_EQ(std::get<double>(leg.value()), 23.0);
  EXPECT_EQ(gateway.resource_count(), 4u);
}

TEST_F(GatewayFixture, PollingPublishesToBus) {
  std::map<std::string, std::string> seen;
  bus.subscribe("site/#", [&](const std::string& t, BytesView p) {
    seen[t] = to_string(p);
  });
  gateway.start();
  sched.run_until(30_s);
  EXPECT_EQ(seen.count("site/plc/3303/0/5700"), 1u);
  EXPECT_EQ(seen.count("site/ble/3303/1/5700"), 1u);
  EXPECT_EQ(seen.count("site/legacy/3303/2/5700"), 1u);
  EXPECT_EQ(seen["site/legacy/3303/2/5700"].substr(0, 7), "23.0000");
}

TEST_F(GatewayFixture, BusCommandWritesThroughToLegacyDevice) {
  gateway.start();
  bus.publish("cmd/plc/3306/0/5851", std::string("42.5"));
  EXPECT_EQ(modbus_dev.reg(200), 4250);
}

TEST_F(GatewayFixture, CoapExposureServesAndActuates) {
  Rng rng(5);
  // Loopback CoAP pair: client(9) <-> gateway endpoint(10).
  std::unique_ptr<coap::Endpoint> client, server;
  auto fwd = [this, &client, &server](NodeId to) {
    return [this, to, &client, &server](NodeId, Buffer bytes) {
      sched.schedule_after(1'000, [to, &client, &server,
                                   bytes = std::move(bytes)] {
        (to == 9 ? client : server)->on_datagram(to == 9 ? 10 : 9, bytes);
      });
      return true;
    };
  };
  client = std::make_unique<coap::Endpoint>(9, sched, rng.fork(1), fwd(10));
  server = std::make_unique<coap::Endpoint>(10, sched, rng.fork(2), fwd(9));
  gateway.expose_coap(*server);

  std::string got;
  client->get(10, "dev/ble/3303/1/5700", [&](Result<coap::Response> r) {
    if (r.ok()) got = to_string(r.value().payload);
  });
  bool put_ok = false;
  client->put(10, "dev/plc/3306/0/5851", to_buffer("12.5"),
              [&](Result<coap::Response> r) {
                put_ok = r.ok() && r.value().code == coap::Code::kChanged;
              });
  sched.run_until(5_s);
  EXPECT_EQ(got.substr(0, 4), "22.5");
  EXPECT_TRUE(put_ok);
  EXPECT_EQ(modbus_dev.reg(200), 1250);
}

TEST_F(GatewayFixture, RuleEngineClosesTheLoopAcrossProtocols) {
  // Vendor sensor exceeds threshold -> rule fires -> Modbus actuator set.
  backend::RuleEngine rules(bus);
  backend::Condition cond;
  cond.topic_filter = "site/legacy/3303/2/5700";
  cond.op = backend::CmpOp::kGreater;
  cond.threshold = 40.0;
  backend::Action act;
  act.command_topic = "cmd/plc/3306/0/5851";
  act.command_payload = "100";
  rules.add_rule("overtemp", cond, act);

  gateway.start();
  vendor_dev.set_point(3, 45.0);  // hot!
  sched.run_until(30_s);
  EXPECT_EQ(modbus_dev.reg(200), 10000);  // 100.00 %
  EXPECT_GE(rules.firings(), 1u);
}

}  // namespace
}  // namespace iiot::interop
