// Golden-counter determinism: the simulator's reproducibility contract is
// that a seed fixes the entire execution. A 50-node mesh with staggered
// app traffic is run twice from identical seeds; every counter — radio,
// MAC, routing, delivery — must match exactly. Any nondeterminism in the
// event core, RNG forking, or container iteration order shows up here
// long before it turns a fuzz reproducer stale.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "obs/context.hpp"
#include "radio/medium.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace iiot {
namespace {

using sim::operator""_s;

struct Counters {
  std::uint64_t events = 0;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t collisions = 0;
  std::uint64_t root_delivered = 0;
  std::uint64_t data_originated = 0;
  std::uint64_t parent_changes = 0;
  std::uint64_t dio_tx = 0;
  std::vector<std::uint64_t> mac_delivered;
  std::vector<net::Rank> ranks;
  // Full registry snapshot: every metric the stack registered, formatted
  // deterministically — one string equality covers all layers at once.
  std::string metrics;

  bool operator==(const Counters&) const = default;
};

Counters run_mesh(std::uint64_t seed) {
  sim::Scheduler sched;
  obs::Context obsctx(sched);  // metrics only; tracing stays off
  radio::PropagationConfig pcfg;
  pcfg.shadowing_sigma_db = 1.5;
  radio::Medium medium(sched, pcfg, seed);
  core::NodeConfig ncfg;
  ncfg.mac = core::MacKind::kCsma;
  core::MeshNetwork mesh(sched, medium, Rng(seed), ncfg);
  mesh.build_grid(50, 20.0);
  mesh.start(0);
  sched.run_until(20_s);

  // Staggered app traffic from every non-root node for 30 s.
  for (std::size_t i = 1; i < mesh.size(); ++i) {
    core::MeshNode* node = &mesh.node(i);
    const sim::Time phase =
        (static_cast<sim::Time>(i) * 7'919) % 2'000'000;
    for (sim::Time t = 20_s + phase; t < 50_s; t += 2_s) {
      sched.schedule_at(t, [node] {
        if (!node->routing->joined()) return;
        Buffer p;
        p.push_back(0x5A);
        (void)node->routing->send_up(std::move(p));
      });
    }
  }
  sched.run_until(55_s);

  Counters c;
  c.events = sched.executed_events();
  const radio::MediumStats& ms = medium.stats();
  c.transmissions = ms.transmissions;
  c.deliveries = ms.deliveries;
  c.collisions = ms.collisions;
  c.root_delivered = mesh.root().routing->stats().data_delivered;
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    const auto& rs = mesh.node(i).routing->stats();
    c.data_originated += rs.data_originated;
    c.parent_changes += rs.parent_changes;
    c.dio_tx += rs.dio_tx;
    c.mac_delivered.push_back(mesh.node(i).mac->stats().delivered);
    c.ranks.push_back(mesh.node(i).routing->rank());
  }
  c.metrics = obsctx.metrics().snapshot_text();
  return c;
}

TEST(Determinism, FiftyNodeMeshGoldenCounters) {
  const Counters first = run_mesh(424242);
  const Counters second = run_mesh(424242);
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.transmissions, second.transmissions);
  EXPECT_EQ(first.deliveries, second.deliveries);
  EXPECT_EQ(first.collisions, second.collisions);
  EXPECT_EQ(first.root_delivered, second.root_delivered);
  EXPECT_EQ(first.data_originated, second.data_originated);
  EXPECT_EQ(first.parent_changes, second.parent_changes);
  EXPECT_EQ(first.dio_tx, second.dio_tx);
  EXPECT_EQ(first.mac_delivered, second.mac_delivered);
  EXPECT_EQ(first.ranks, second.ranks);
  EXPECT_EQ(first.metrics, second.metrics);
  // And the run must have actually exercised the stack.
  EXPECT_GT(first.root_delivered, 0u);
  EXPECT_GT(first.transmissions, 100u);
  // The snapshot must cover every instrumented layer.
  for (const char* needle :
       {"radio.transmissions", "mac.delivered", "net.data_delivered",
        "net.trickle_resets", "energy.total_mj"}) {
    EXPECT_NE(first.metrics.find(needle), std::string::npos) << needle;
  }
}

TEST(Determinism, DifferentSeedsDiverge) {
  const Counters a = run_mesh(1001);
  const Counters b = run_mesh(1002);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace iiot
