// Cross-module integration tests: the full stack under fault injection,
// CoAP Observe across the mesh, diagnosis fed from live telemetry, and
// property sweeps that tie subsystems together.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "coap/endpoint.hpp"
#include "core/system.hpp"
#include "dependability/faults.hpp"
#include "diagnosis/detectors.hpp"
#include "harness.hpp"
#include "net/rnfd.hpp"
#include "security/secure_link.hpp"
#include "transport/mesh_transport.hpp"

namespace iiot {
namespace {

using namespace sim;  // NOLINT: time literals

core::NodeConfig fast_cfg() {
  core::NodeConfig cfg;
  cfg.rpl.trickle = net::TrickleConfig{250'000, 8, 3};
  cfg.rpl.dao_interval = 5'000'000;
  return cfg;
}

radio::PropagationConfig clean_radio() {
  radio::PropagationConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  return cfg;
}

// ------------------------------------------------- fault-injected mesh

TEST(SelfHealing, MeshSurvivesRelayCrashReboot) {
  // 4x4 grid with periodic traffic; one relay node crash-loops. The
  // network must keep delivering from everyone else (self-organization,
  // §V-D) and re-absorb the crashing node after each reboot.
  Scheduler sched;
  radio::Medium medium(sched, clean_radio(), 5);
  core::MeshNetwork mesh(sched, medium, Rng(5), fast_cfg());
  mesh.build_grid(16, 22.0);
  mesh.start();
  sched.run_until(30_s);
  ASSERT_DOUBLE_EQ(mesh.joined_fraction(), 1.0);

  // Crash process on node 1 (adjacent to the root: a busy relay).
  dependability::FaultConfig fcfg;
  fcfg.mttf_seconds = 60.0;
  fcfg.mttr_seconds = 20.0;
  dependability::CrashProcess chaos(
      sched, Rng(6), fcfg,
      [&] {
        mesh.node(1).routing->stop();
        mesh.node(1).mac->stop();
      },
      [&] {
        mesh.node(1).mac->start();
        mesh.node(1).routing->start();
      });
  chaos.start();

  int delivered = 0, sent = 0;
  mesh.root().routing->set_delivery_handler(
      [&](NodeId, BytesView, std::uint8_t) { ++delivered; });
  // Nodes 5..15 send every 5 s for 5 minutes.
  for (int round = 0; round < 60; ++round) {
    for (std::size_t i = 5; i < 16; ++i) {
      sched.schedule_at(30_s + static_cast<Time>(round) * 5_s +
                            static_cast<Time>(i) * 100'000,
                        [&, i] {
                          if (mesh.node(i).routing->send_up(
                                  to_buffer("x"))) {
                            ++sent;
                          }
                        });
    }
  }
  sched.run_until(340_s);
  EXPECT_GT(chaos.stats().failures(), 1u);
  EXPECT_GT(sent, 500);
  // Healthy nodes keep >90% delivery despite the crash-looping relay.
  EXPECT_GT(static_cast<double>(delivered) / sent, 0.90);
}

TEST(SelfHealing, NetworkReformsAfterMassReboot) {
  Scheduler sched;
  radio::Medium medium(sched, clean_radio(), 7);
  core::MeshNetwork mesh(sched, medium, Rng(7), fast_cfg());
  mesh.build_grid(12, 22.0);
  mesh.start();
  sched.run_until(30_s);
  ASSERT_DOUBLE_EQ(mesh.joined_fraction(), 1.0);
  // Power-cycle everything except the root at once.
  for (std::size_t i = 1; i < mesh.size(); ++i) {
    mesh.node(i).routing->stop();
    mesh.node(i).mac->stop();
  }
  sched.run_until(40_s);
  EXPECT_EQ(mesh.joined_fraction(), 0.0);
  for (std::size_t i = 1; i < mesh.size(); ++i) {
    mesh.node(i).mac->start();
    mesh.node(i).routing->start();
  }
  sched.run_until(100_s);
  EXPECT_DOUBLE_EQ(mesh.joined_fraction(), 1.0);
}

// --------------------------------------------------- observe over mesh

TEST(CoapOverMesh, ObserveStreamsNotificationsAcrossHops) {
  test::World w(61);
  w.make_line(4, 25.0);
  std::vector<std::unique_ptr<net::RplRouting>> routers;
  net::RplConfig rcfg;
  rcfg.trickle = net::TrickleConfig{250'000, 8, 3};
  rcfg.dao_interval = 5'000'000;
  for (std::size_t i = 0; i < 4; ++i) {
    auto& m = w.with_mac<mac::CsmaMac>(w.node(i));
    routers.push_back(std::make_unique<net::RplRouting>(
        m, w.sched(), w.rng().fork(300 + i), rcfg));
  }
  w.start_all();
  routers[0]->start_root();
  for (std::size_t i = 1; i < 4; ++i) routers[i]->start();

  transport::MeshTransport root_tp(*routers[0], w.sched());
  transport::MeshTransport leaf_tp(*routers[3], w.sched());
  coap::Endpoint root_ep(0, w.sched(), w.rng().fork(71), root_tp.sender());
  coap::Endpoint leaf_ep(3, w.sched(), w.rng().fork(72), leaf_tp.sender());
  root_tp.bind(root_ep);
  leaf_tp.bind(leaf_ep);

  double vibration = 0.1;
  leaf_ep.add_resource("vib", [&](const coap::Request&) {
    coap::Response r;
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.2f", vibration);
    r.payload = to_buffer(buf);
    return r;
  });

  w.sched().run_until(40_s);  // formation incl. DAO routes

  std::vector<std::string> seen;
  w.sched().schedule_at(41_s, [&] {
    root_ep.observe(3, "vib", [&](const coap::Response& r) {
      seen.push_back(to_string(r.payload));
    });
  });
  for (int i = 1; i <= 3; ++i) {
    w.sched().schedule_at(45_s + static_cast<Time>(i) * 5_s, [&, i] {
      vibration = 0.1 * (i + 1);
      leaf_ep.notify_observers("vib");
    });
  }
  w.sched().run_until(70_s);
  ASSERT_GE(seen.size(), 4u);  // initial + 3 notifications
  EXPECT_EQ(seen.front(), "0.10");
  EXPECT_EQ(seen.back(), "0.40");
  EXPECT_EQ(leaf_ep.observer_count("vib"), 1u);
}

// ------------------------------------------------ diagnosis on live data

TEST(DiagnosisIntegration, StormNodeFlaggedByEnergyDetector) {
  // One node runs an always-on MAC among duty-cycled peers — the classic
  // misconfigured/storming device. The fleet-level detector must single
  // it out from reported power draws.
  Scheduler sched;
  radio::Medium medium(sched, clean_radio(), 9);
  Rng rng(9);
  std::vector<std::unique_ptr<test::SimNode>> nodes;
  for (std::size_t i = 0; i < 8; ++i) {
    nodes.push_back(std::make_unique<test::SimNode>(
        medium, sched, static_cast<NodeId>(i),
        radio::Position{static_cast<double>(i % 4) * 20.0,
                        static_cast<double>(i / 4) * 20.0}));
  }
  for (std::size_t i = 0; i < 8; ++i) {
    if (i == 3) {
      nodes[i]->mac = std::make_unique<mac::CsmaMac>(
          nodes[i]->radio, sched, rng.fork(i), 0);
    } else {
      mac::LplConfig lcfg;
      lcfg.wake_interval = 250'000;
      nodes[i]->mac = std::make_unique<mac::LplMac>(
          nodes[i]->radio, sched, rng.fork(i), 0, lcfg);
    }
    nodes[i]->mac->start();
  }
  sched.run_until(120_s);

  diagnosis::EnergyDrainDetector detector(3.0);
  for (std::size_t i = 0; i < 8; ++i) {
    nodes[i]->meter.settle(sched.now());
    const double avg_mw =
        nodes[i]->meter.total_mj() / sim::to_seconds(sched.now());
    detector.report(static_cast<NodeId>(i), avg_mw);
  }
  auto anomalies = detector.anomalies();
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].node, 3u);
}

TEST(DiagnosisIntegration, StuckSensorInTimeSeries) {
  Scheduler sched;
  core::SystemConfig scfg;
  scfg.propagation = clean_radio();
  core::System system(sched, 31, scfg);
  auto& mesh = system.add_mesh("plant", fast_cfg());
  mesh.build_line(3, 25.0);
  mesh.start();
  system.bridge("plant", mesh);
  // Node 1 reports varying values; node 2's sensor is stuck.
  double t1 = 20.0;
  system.add_periodic_sensor(mesh.node(1), 3303, 5'000'000,
                             [&t1] { return t1 += 0.3; });
  system.add_periodic_sensor(mesh.node(2), 3303, 5'000'000,
                             [] { return 21.37; });
  sched.run_until(300_s);

  diagnosis::StuckSensorDetector det(20);
  for (const auto& series : system.store().series_names()) {
    const NodeId node = series.find("/1/") != std::string::npos ? 1 : 2;
    for (const auto& p : system.store().query(series, 0, sched.now())) {
      det.report(node, p.value);
    }
  }
  auto anomalies = det.anomalies();
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].node, 2u);
  EXPECT_EQ(anomalies[0].kind, diagnosis::Anomaly::Kind::kStuckSensor);
}

// ----------------------------------------------------- property sweeps

class RadioProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RadioProperties, PrrMonotonicallyDecreasesWithDistance) {
  Scheduler sched;
  radio::PropagationConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  radio::Medium medium(sched, cfg, GetParam());
  test::SimNode a(medium, sched, 1, {0, 0});
  double prev = 1.1;
  for (double d : {5.0, 15.0, 30.0, 45.0, 60.0, 90.0}) {
    test::SimNode b(medium, sched, 2, {d, 0});
    const double prr = medium.link_prr(a.radio, b.radio);
    EXPECT_LE(prr, prev + 1e-9) << "distance " << d;
    prev = prr;
  }
  EXPECT_GT(medium.link_prr(a.radio, a.radio), -1.0);  // no crash self
}

TEST_P(RadioProperties, MeshAlwaysFormsOnConnectedGrids) {
  Scheduler sched;
  radio::PropagationConfig rcfg;
  rcfg.shadowing_sigma_db = 2.0;  // mild randomness per seed
  radio::Medium medium(sched, rcfg, GetParam());
  core::MeshNetwork mesh(sched, medium, Rng(GetParam()), fast_cfg());
  mesh.build_grid(16, 20.0);
  mesh.start();
  sched.run_until(60_s);
  EXPECT_GE(mesh.joined_fraction(), 0.95) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RadioProperties,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 17, 23));

class FragProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FragProperties, RandomSizesRoundTrip) {
  Scheduler sched;
  transport::Reassembler re(sched);
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t size = 1 + rng.below(900);
    const std::size_t mtu = transport::kFragHeader + 4 + rng.below(120);
    Buffer data(size);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
    auto frags = transport::fragment(
        data, mtu, static_cast<std::uint16_t>(trial + 1));
    // Shuffle fragments.
    for (std::size_t i = frags.size(); i > 1; --i) {
      std::swap(frags[i - 1], frags[rng.below(static_cast<std::uint32_t>(i))]);
    }
    std::optional<Buffer> whole;
    for (auto& f : frags) {
      auto r = re.on_fragment(static_cast<NodeId>(trial), f);
      if (r) whole = r;
    }
    ASSERT_TRUE(whole.has_value()) << "size " << size << " mtu " << mtu;
    EXPECT_EQ(*whole, data);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FragProperties,
                         ::testing::Values(101, 202, 303, 404));

class CoapFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoapFuzz, RandomBytesNeverCrashDecoder) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    Buffer junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u32());
    auto result = coap::Message::decode(junk);
    if (result.ok()) {
      // Whatever decoded must re-encode without crashing.
      (void)result.value().encode();
    }
  }
}

TEST_P(CoapFuzz, ValidMessagesSurviveReEncode) {
  Rng rng(GetParam() ^ 0xC0AF);
  for (int trial = 0; trial < 200; ++trial) {
    coap::Message m;
    m.type = static_cast<coap::Type>(rng.below(4));
    m.code = coap::Code::kContent;
    m.message_id = static_cast<std::uint16_t>(rng.next_u32());
    m.token = rng.next_u64() >> rng.below(64);
    if (rng.chance(0.7)) m.set_uri_path("a/b/c");
    if (rng.chance(0.5)) {
      m.add_option(coap::Option::make_uint(coap::OptionNumber::kMaxAge,
                                           rng.below(10000)));
    }
    m.payload.assign(rng.below(64), 0x5A);
    auto decoded = coap::Message::decode(m.encode());
    ASSERT_TRUE(decoded.ok());
    auto& d = decoded.value();
    EXPECT_EQ(d.type, m.type);
    EXPECT_EQ(d.message_id, m.message_id);
    EXPECT_EQ(d.token, m.token);
    EXPECT_EQ(d.payload, m.payload);
    // Second round trip must be byte-identical (canonical form).
    EXPECT_EQ(d.encode(), coap::Message::decode(d.encode()).value().encode());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoapFuzz, ::testing::Values(1, 7, 13));

class SecureLinkFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SecureLinkFuzz, RandomCorruptionNeverAuthenticates) {
  Rng rng(GetParam());
  security::AesKey key{0x11};
  security::SecureLink tx(key, security::SecurityLevel::kEncMic64);
  security::SecureLink rx(key, security::SecurityLevel::kEncMic64);
  int false_accepts = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Buffer payload(8 + rng.below(40));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u32());
    Buffer wire = tx.protect(9, payload);
    // Corrupt 1..4 random bytes.
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      wire[rng.below(static_cast<std::uint32_t>(wire.size()))] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    auto opened = rx.unprotect(9, wire);
    if (opened.ok() && opened.value() != payload) ++false_accepts;
  }
  // A corrupted frame must never authenticate as a different payload.
  EXPECT_EQ(false_accepts, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SecureLinkFuzz,
                         ::testing::Values(2, 4, 8));

// -------------------------------------------------------- RNFD sweeps

class RnfdQuorum : public ::testing::TestWithParam<double> {};

TEST_P(RnfdQuorum, DetectsAtEveryQuorumSetting) {
  test::World w(80);
  w.add_node(0, {0, 0});
  for (NodeId i = 1; i <= 5; ++i) {
    const double angle = i * 1.25;
    w.add_node(i, {20.0 * std::cos(angle), 20.0 * std::sin(angle)});
  }
  std::vector<std::unique_ptr<net::RplRouting>> routers;
  net::RplConfig rcfg;
  rcfg.trickle = net::TrickleConfig{250'000, 8, 3};
  for (std::size_t i = 0; i < w.size(); ++i) {
    auto& m = w.with_mac<mac::CsmaMac>(w.node(i));
    routers.push_back(std::make_unique<net::RplRouting>(
        m, w.sched(), w.rng().fork(400 + i), rcfg));
  }
  w.start_all();
  routers[0]->start_root();
  for (std::size_t i = 1; i < w.size(); ++i) routers[i]->start();

  net::RnfdConfig cfg;
  cfg.probe_interval = 5_s;
  cfg.probe_jitter = 2_s;
  cfg.gossip_interval = 500'000;
  cfg.quorum_ratio = GetParam();
  cfg.quorum_min = 2;
  std::vector<std::unique_ptr<net::RnfdDetector>> detectors;
  for (std::size_t i = 1; i < w.size(); ++i) {
    detectors.push_back(std::make_unique<net::RnfdDetector>(
        *routers[i], w.sched(), w.rng().fork(800 + i), cfg));
    detectors.back()->start();
  }
  w.sched().run_until(60_s);
  for (auto& d : detectors) EXPECT_FALSE(d->root_declared_dead());
  w.node(0).mac->stop();
  w.sched().run_until(180_s);
  int dead = 0;
  for (auto& d : detectors) {
    if (d->root_declared_dead()) ++dead;
  }
  EXPECT_EQ(dead, 5) << "quorum ratio " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Ratios, RnfdQuorum,
                         ::testing::Values(0.25, 0.5, 0.75));

}  // namespace
}  // namespace iiot
