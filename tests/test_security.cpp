// Security tests: published test vectors for AES/SHA/HMAC/CCM, plus
// SecureLink semantics (tamper detection, replay, level mismatch).
#include <gtest/gtest.h>

#include <string>

#include "security/aes.hpp"
#include "security/ccm.hpp"
#include "security/secure_link.hpp"
#include "security/sha256.hpp"

namespace iiot::security {
namespace {

Buffer from_hex(const std::string& hex) {
  Buffer out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(
        std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

std::string to_hex(BytesView b) {
  std::string s;
  char buf[3];
  for (std::uint8_t v : b) {
    std::snprintf(buf, sizeof(buf), "%02x", v);
    s += buf;
  }
  return s;
}

// ------------------------------------------------------------------- AES

TEST(Aes128, Fips197KnownAnswer) {
  AesKey key{};
  Buffer kb = from_hex("000102030405060708090a0b0c0d0e0f");
  std::copy(kb.begin(), kb.end(), key.begin());
  Aes128 aes(key);
  AesBlock block{};
  Buffer pt = from_hex("00112233445566778899aabbccddeeff");
  std::copy(pt.begin(), pt.end(), block.begin());
  aes.encrypt_block(block);
  EXPECT_EQ(to_hex(block), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, CountsBlocks) {
  Aes128 aes(AesKey{});
  AesBlock b{};
  aes.encrypt_block(b);
  aes.encrypt_block(b);
  EXPECT_EQ(aes.blocks_processed(), 2u);
}

// ---------------------------------------------------------------- SHA-256

TEST(Sha256, EmptyString) {
  auto d = Sha256::hash({});
  EXPECT_EQ(to_hex(d),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  auto data = to_buffer("abc");
  auto d = Sha256::hash(data);
  EXPECT_EQ(to_hex(d),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  auto data = to_buffer(
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  auto d = Sha256::hash(data);
  EXPECT_EQ(to_hex(d),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  auto data = to_buffer("the quick brown fox jumps over the lazy dog etc");
  Sha256 h;
  h.update(BytesView(data).subspan(0, 10));
  h.update(BytesView(data).subspan(10, 5));
  h.update(BytesView(data).subspan(15));
  EXPECT_EQ(to_hex(h.finish()), to_hex(Sha256::hash(data)));
}

TEST(HmacSha256, Rfc4231Case1) {
  Buffer key(20, 0x0b);
  auto msg = to_buffer("Hi There");
  auto d = hmac_sha256(key, msg);
  EXPECT_EQ(to_hex(d),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  auto key = to_buffer("Jefe");
  auto msg = to_buffer("what do ya want for nothing?");
  auto d = hmac_sha256(key, msg);
  EXPECT_EQ(to_hex(d),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(DeriveKey, DeterministicAndContextSensitive) {
  auto master = to_buffer("master-secret");
  auto k1 = derive_key(master, to_buffer("ctx-a"));
  auto k2 = derive_key(master, to_buffer("ctx-a"));
  auto k3 = derive_key(master, to_buffer("ctx-b"));
  EXPECT_EQ(k1, k2);
  EXPECT_NE(k1, k3);
}

// -------------------------------------------------------------------- CCM

TEST(AesCcm, Rfc3610Vector1) {
  AesKey key{};
  Buffer kb = from_hex("c0c1c2c3c4c5c6c7c8c9cacbcccdcecf");
  std::copy(kb.begin(), kb.end(), key.begin());
  AesCcm ccm(key);
  CcmNonce nonce{};
  Buffer nb = from_hex("00000003020100a0a1a2a3a4a5");
  std::copy(nb.begin(), nb.end(), nonce.begin());
  Buffer aad = from_hex("0001020304050607");
  Buffer pt = from_hex("08090a0b0c0d0e0f101112131415161718191a1b1c1d1e");
  Buffer sealed = ccm.seal(nonce, aad, pt, 8);
  EXPECT_EQ(to_hex(sealed),
            "588c979a61c663d2f066d0c2c0f989806d5f6b61dac384"
            "17e8d12cfdf926e0");
}

TEST(AesCcm, SealOpenRoundTrip) {
  AesCcm ccm(AesKey{1, 2, 3, 4, 5});
  CcmNonce nonce{9, 9, 9};
  auto aad = to_buffer("header");
  auto pt = to_buffer("temperature=21.5;humidity=40");
  auto sealed = ccm.seal(nonce, aad, pt, 8);
  EXPECT_EQ(sealed.size(), pt.size() + 8);
  auto opened = ccm.open(nonce, aad, sealed, 8);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

TEST(AesCcm, TamperedCiphertextRejected) {
  AesCcm ccm(AesKey{7});
  CcmNonce nonce{1};
  auto pt = to_buffer("open-the-valve");
  auto sealed = ccm.seal(nonce, {}, pt, 8);
  sealed[3] ^= 0x01;
  EXPECT_FALSE(ccm.open(nonce, {}, sealed, 8).has_value());
}

TEST(AesCcm, TamperedAadRejected) {
  AesCcm ccm(AesKey{7});
  CcmNonce nonce{1};
  auto pt = to_buffer("x");
  auto sealed = ccm.seal(nonce, to_buffer("aad-1"), pt, 8);
  EXPECT_FALSE(ccm.open(nonce, to_buffer("aad-2"), sealed, 8).has_value());
}

TEST(AesCcm, WrongNonceRejected) {
  AesCcm ccm(AesKey{7});
  CcmNonce n1{1}, n2{2};
  auto sealed = ccm.seal(n1, {}, to_buffer("m"), 8);
  EXPECT_FALSE(ccm.open(n2, {}, sealed, 8).has_value());
}

TEST(AesCcm, MicZeroIsEncryptionOnly) {
  AesCcm ccm(AesKey{3});
  CcmNonce nonce{5};
  auto pt = to_buffer("plain");
  auto sealed = ccm.seal(nonce, {}, pt, 0);
  EXPECT_EQ(sealed.size(), pt.size());
  EXPECT_NE(sealed, pt);  // actually encrypted
  auto opened = ccm.open(nonce, {}, sealed, 0);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

TEST(AesCcm, TagVerifyDetachedMode) {
  AesCcm ccm(AesKey{11});
  CcmNonce nonce{8};
  auto msg = to_buffer("clear-but-authenticated");
  auto tag = ccm.tag(nonce, to_buffer("hdr"), msg, 4);
  EXPECT_EQ(tag.size(), 4u);
  EXPECT_TRUE(ccm.verify_tag(nonce, to_buffer("hdr"), msg, tag));
  msg[0] ^= 1;
  EXPECT_FALSE(ccm.verify_tag(nonce, to_buffer("hdr"), msg, tag));
}

// ------------------------------------------------------------- SecureLink

class SecureLinkLevels
    : public ::testing::TestWithParam<SecurityLevel> {};

TEST_P(SecureLinkLevels, ProtectUnprotectRoundTrip) {
  const SecurityLevel level = GetParam();
  AesKey key{0x42};
  SecureLink tx(key, level);
  SecureLink rx(key, level);
  auto payload = to_buffer("sensor-reading-1234");
  Buffer wire = tx.protect(7, payload);
  EXPECT_EQ(wire.size(), payload.size() + tx.overhead_bytes());
  auto opened = rx.unprotect(7, wire);
  ASSERT_TRUE(opened.ok()) << level_name(level);
  EXPECT_EQ(opened.value(), payload);
}

TEST_P(SecureLinkLevels, TamperDetectedWhenMicPresent) {
  const SecurityLevel level = GetParam();
  if (mic_length(level) == 0) GTEST_SKIP() << "no integrity at this level";
  AesKey key{0x42};
  SecureLink tx(key, level);
  SecureLink rx(key, level);
  Buffer wire = tx.protect(7, to_buffer("data"));
  wire.back() ^= 0x80;
  auto opened = rx.unprotect(7, wire);
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(rx.stats().auth_failures, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, SecureLinkLevels,
    ::testing::Values(SecurityLevel::kNone, SecurityLevel::kMic32,
                      SecurityLevel::kMic64, SecurityLevel::kMic128,
                      SecurityLevel::kEnc, SecurityLevel::kEncMic32,
                      SecurityLevel::kEncMic64, SecurityLevel::kEncMic128));

TEST(SecureLink, ReplayRejected) {
  AesKey key{1};
  SecureLink tx(key, SecurityLevel::kEncMic64);
  SecureLink rx(key, SecurityLevel::kEncMic64);
  Buffer wire = tx.protect(7, to_buffer("cmd"));
  EXPECT_TRUE(rx.unprotect(7, wire).ok());
  auto replay = rx.unprotect(7, wire);
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(replay.error().code, Error::Code::kSecurity);
  EXPECT_EQ(rx.stats().replay_drops, 1u);
}

TEST(SecureLink, CountersIndependentPerSource) {
  AesKey key{1};
  SecureLink a(key, SecurityLevel::kEncMic32);
  SecureLink b(key, SecurityLevel::kEncMic32);
  SecureLink rx(key, SecurityLevel::kEncMic32);
  EXPECT_TRUE(rx.unprotect(1, a.protect(1, to_buffer("x"))).ok());
  EXPECT_TRUE(rx.unprotect(2, b.protect(2, to_buffer("y"))).ok());
}

TEST(SecureLink, WrongKeyFailsAuth) {
  SecureLink tx(AesKey{1}, SecurityLevel::kEncMic64);
  SecureLink rx(AesKey{2}, SecurityLevel::kEncMic64);
  auto opened = rx.unprotect(7, tx.protect(7, to_buffer("data")));
  EXPECT_FALSE(opened.ok());
}

TEST(SecureLink, LevelMismatchRejected) {
  AesKey key{1};
  SecureLink tx(key, SecurityLevel::kMic32);
  SecureLink rx(key, SecurityLevel::kEncMic64);
  auto opened = rx.unprotect(7, tx.protect(7, to_buffer("data")));
  EXPECT_FALSE(opened.ok());
}

TEST(SecureLink, EncLevelsHideContent) {
  AesKey key{9};
  SecureLink tx(key, SecurityLevel::kEnc);
  auto payload = to_buffer("secret-setpoint-21.5");
  Buffer wire = tx.protect(7, payload);
  // Ciphertext portion must not contain the plaintext.
  std::string w(wire.begin(), wire.end());
  EXPECT_EQ(w.find("secret"), std::string::npos);
}

TEST(SecureLink, MicOnlyLeavesContentReadable) {
  AesKey key{9};
  SecureLink tx(key, SecurityLevel::kMic32);
  Buffer wire = tx.protect(7, to_buffer("readable"));
  std::string w(wire.begin(), wire.end());
  EXPECT_NE(w.find("readable"), std::string::npos);
}

TEST(SecureLink, OverheadGrowsWithLevel) {
  AesKey key{};
  EXPECT_EQ(SecureLink(key, SecurityLevel::kNone).overhead_bytes(), 0u);
  EXPECT_EQ(SecureLink(key, SecurityLevel::kMic32).overhead_bytes(), 9u);
  EXPECT_EQ(SecureLink(key, SecurityLevel::kEnc).overhead_bytes(), 5u);
  EXPECT_EQ(SecureLink(key, SecurityLevel::kEncMic128).overhead_bytes(),
            21u);
}

TEST(SecureLink, CycleAccountingGrowsWithTraffic) {
  AesKey key{};
  SecureLink tx(key, SecurityLevel::kEncMic64);
  auto before = tx.estimated_cycles();
  const Buffer wire = tx.protect(1, Buffer(64, 0xAA));
  EXPECT_FALSE(wire.empty());
  EXPECT_GT(tx.estimated_cycles(), before);
}

TEST(KeyStore, PerTenantKeysDiffer) {
  KeyStore ks;
  EXPECT_EQ(ks.network_key(1), ks.network_key(1));
  EXPECT_NE(ks.network_key(1), ks.network_key(2));
}

}  // namespace
}  // namespace iiot::security
