// Unit coverage for the property-based scenario fuzzer itself
// (DESIGN.md §4c): replay determinism, the planted canary, shrinking,
// and the self-contained invariant checkers the scenarios compose.
#include <gtest/gtest.h>

#include <optional>

#include "energy/meter.hpp"
#include "radio/medium.hpp"
#include "scenarios/scenario_lib.hpp"
#include "sim/scheduler.hpp"
#include "testing/invariants.hpp"
#include "testing/scenario.hpp"
#include "testing/shrink.hpp"

namespace iiot::testing {
namespace {

/// First seed in [1, limit) whose generated scenario uses `mac`.
std::optional<std::uint64_t> seed_with_mac(ScenarioMac mac,
                                           std::uint64_t limit = 200) {
  for (std::uint64_t s = 1; s < limit; ++s) {
    if (generate_scenario(s).mac == mac) return s;
  }
  return std::nullopt;
}

TEST(Proptest, GeneratorIsPureFunctionOfSeed) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 12345ULL}) {
    const ScenarioConfig a = generate_scenario(seed);
    const ScenarioConfig b = generate_scenario(seed);
    EXPECT_EQ(a.summary(), b.summary()) << "seed " << seed;
  }
}

// The replay contract: the seed alone reproduces a run bit-identically.
// Fingerprints are pure integer counters across every layer (scheduler
// event count, radio deliveries/collisions, routing parent changes, ...),
// so equality here is equality of the whole execution, not a summary.
TEST(Proptest, ReplayIsBitIdenticalForEveryMac) {
  for (ScenarioMac mac : {ScenarioMac::kCsma, ScenarioMac::kLpl,
                          ScenarioMac::kRiMac, ScenarioMac::kTdma}) {
    const auto seed = seed_with_mac(mac);
    ASSERT_TRUE(seed.has_value()) << to_string(mac);
    const ScenarioConfig cfg = generate_scenario(*seed);
    const ScenarioResult first = run_scenario(cfg);
    const ScenarioResult second = run_scenario(cfg);
    EXPECT_TRUE(first.fingerprint == second.fingerprint)
        << to_string(mac) << " seed " << *seed << "\n  first:  "
        << first.fingerprint.to_string() << "\n  second: "
        << second.fingerprint.to_string();
    EXPECT_EQ(first.ok, second.ok);
    EXPECT_EQ(first.failure, second.failure);
  }
}

TEST(Proptest, SmallBatchOfScenariosIsGreen) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const ScenarioResult r = run_scenario(generate_scenario(seed));
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.failure;
  }
}

// Harness validation: the planted bug (Medium::detach skipping reception
// bookkeeping cleanup) must be caught by the medium-consistency invariant,
// and the reproducer must replay and shrink deterministically.
// Regression: `iiot_fuzz --replay_seed=24 --scenario=mine_tunnel` used to
// fail with a transient-loop blowup — two nodes holding stale ranks for
// each other ratcheted their ranks without bound (count-to-infinity)
// because local repair re-entered orphan state before the poison round
// completed. The rank ratchet cap in net::Rpl (rpl.hpp) pins the fix;
// this replays the original reproducer bit-for-bit.
TEST(Proptest, MineTunnelSeed24RankRatchetStaysBounded) {
  const auto* spec = iiot::scenarios::find_scenario("mine_tunnel");
  ASSERT_NE(spec, nullptr);
  const ScenarioConfig cfg = generate_scenario(24, spec->fuzz_profile());
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_TRUE(r.ok) << r.failure;
}

TEST(Proptest, CanaryDetachBugIsCaughtAndShrinks) {
  std::optional<std::uint64_t> caught;
  for (std::uint64_t seed = 1; seed <= 80 && !caught; ++seed) {
    ScenarioConfig cfg = generate_scenario(seed);
    if (cfg.churn_slots == 0) continue;  // canary needs a detach episode
    cfg.canary_skip_detach_cleanup = true;
    if (!run_scenario(cfg).ok) caught = seed;
  }
  ASSERT_TRUE(caught.has_value()) << "canary survived 80 scenarios";

  ScenarioConfig cfg = generate_scenario(*caught);
  cfg.canary_skip_detach_cleanup = true;
  const ScenarioResult replayed = run_scenario(cfg);
  ASSERT_FALSE(replayed.ok);
  EXPECT_NE(replayed.failure.find("detach"), std::string::npos)
      << replayed.failure;

  const ShrinkResult s1 = shrink_scenario(cfg);
  const ShrinkResult s2 = shrink_scenario(cfg);
  EXPECT_EQ(s1.config.summary(), s2.config.summary());
  EXPECT_FALSE(s1.failure.empty());
  EXPECT_LE(s1.config.nodes, cfg.nodes);
  // The shrunk variant must still reproduce.
  EXPECT_FALSE(run_scenario(s1.config).ok);
}

// The same planted bug, reproduced directly at the medium layer: a
// receiver detaches while a frame addressed to it is on the air.
TEST(Proptest, CanaryMicroReproduction) {
  sim::Scheduler sched;
  radio::PropagationConfig pcfg;
  pcfg.shadowing_sigma_db = 0.0;
  radio::Medium medium(sched, pcfg, 99);
  medium.debug_set_skip_detach_cleanup(true);

  energy::Meter m1, m2;
  radio::Radio tx(medium, sched, 1, {0.0, 0.0}, m1);
  tx.set_mode(radio::Mode::kListen);
  auto rx = std::make_unique<radio::Radio>(medium, sched, 2,
                                           radio::Position{5.0, 0.0}, m2);
  rx->set_mode(radio::Mode::kListen);
  radio::Frame f;
  f.src = 1;
  f.dst = 2;
  ASSERT_TRUE(tx.transmit(std::move(f), nullptr));
  ASSERT_GT(medium.in_flight(), 0u);
  rx.reset();  // detach while the frame is still on the air
  EXPECT_FALSE(medium.check_consistency().empty());
}

TEST(Proptest, MediumConsistencyCleanOnProperDetach) {
  sim::Scheduler sched;
  radio::PropagationConfig pcfg;
  pcfg.shadowing_sigma_db = 0.0;
  radio::Medium medium(sched, pcfg, 99);

  energy::Meter m1, m2;
  radio::Radio tx(medium, sched, 1, {0.0, 0.0}, m1);
  tx.set_mode(radio::Mode::kListen);
  auto rx = std::make_unique<radio::Radio>(medium, sched, 2,
                                           radio::Position{5.0, 0.0}, m2);
  rx->set_mode(radio::Mode::kListen);
  radio::Frame f;
  f.src = 1;
  f.dst = 2;
  ASSERT_TRUE(tx.transmit(std::move(f), nullptr));
  rx.reset();
  EXPECT_TRUE(medium.check_consistency().empty());
}

// The self-contained checkers must hold on their own across seeds — they
// run inside scenarios, so a checker bug would poison every fuzz verdict.
TEST(Proptest, SchedulerPropertyCheckerHolds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    EXPECT_EQ(check_scheduler_properties(seed), "") << "seed " << seed;
  }
}

TEST(Proptest, FragRoundTripCheckerHolds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    EXPECT_EQ(check_frag_roundtrip(seed), "") << "seed " << seed;
  }
}

TEST(Proptest, CrdtConvergenceCheckerHolds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_EQ(check_crdt_convergence(seed, 5, 30), "") << "seed " << seed;
  }
}

TEST(Proptest, CpReadYourWritesCheckerHolds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_EQ(check_cp_read_your_writes(seed, 5, 30), "") << "seed " << seed;
  }
}

// The trace auditor itself: a legitimate span tree passes; each class of
// malformation it exists to catch is rejected with a pointed message.
TEST(Proptest, TraceWellformedAcceptsProperSpanTree) {
  sim::Scheduler sched;
  obs::Tracer tracer(sched);
  tracer.set_enabled(true);

  const obs::TraceId t = tracer.start_trace(3, obs::Layer::kApp);
  const obs::SpanRef hop = tracer.begin(t, 3, obs::Layer::kNet, "hop");
  sched.schedule_at(50, [] {});
  sched.run_all();
  const obs::SpanRef tx = tracer.begin(t, 3, obs::Layer::kMac, "tx", hop);
  tracer.instant(t, 2, obs::Layer::kMac, "rx", tx);
  // A transmission handed to the radio while the MAC request is active;
  // legitimately still unfinished at end of run.
  tracer.begin(t, 3, obs::Layer::kRadio, "tx", tx);
  tracer.end(tx);
  sched.schedule_at(80, [] {});
  sched.run_all();
  tracer.end(hop);

  EXPECT_EQ(check_trace_wellformed(tracer), "");
}

TEST(Proptest, TraceWellformedRejectsMalformations) {
  sim::Scheduler sched;

  {  // a record referencing a trace id that was never started
    obs::Tracer tracer(sched);
    tracer.set_enabled(true);
    tracer.instant(7, 1, obs::Layer::kNet, "deliver");
    EXPECT_NE(check_trace_wellformed(tracer).find("unallocated trace id"),
              std::string::npos);
  }
  {  // a parent ref pointing past the end of the record log
    obs::Tracer tracer(sched);
    tracer.set_enabled(true);
    tracer.begin(0, 1, obs::Layer::kMac, "tx", /*parent=*/99);
    EXPECT_NE(check_trace_wellformed(tracer).find("nonexistent parent"),
              std::string::npos);
  }
  {  // an open span left in a layer that cannot have in-flight work
    obs::Tracer tracer(sched);
    tracer.set_enabled(true);
    tracer.begin(0, 1, obs::Layer::kBackend, "publish");
    EXPECT_NE(check_trace_wellformed(tracer).find("open span"),
              std::string::npos);
  }
  {  // a child starting after its (closed) parent already ended
    obs::Tracer tracer(sched);
    tracer.set_enabled(true);
    const obs::SpanRef parent = tracer.begin(0, 1, obs::Layer::kNet, "hop");
    tracer.end(parent);
    sched.schedule_at(100, [] {});
    sched.run_all();
    const obs::SpanRef late =
        tracer.begin(0, 1, obs::Layer::kMac, "tx", parent);
    tracer.end(late);
    EXPECT_NE(
        check_trace_wellformed(tracer).find("starts after its parent ended"),
        std::string::npos);
  }
}

}  // namespace
}  // namespace iiot::testing
