// Property-based scenario fuzzer CLI (DESIGN.md §4c).
//
//   iiot_fuzz [--runs=N] [--seed=BASE] [--replay_seed=N] [--canary]
//             [--trace] [--fail-file=PATH] [--quiet]
//
// Default mode: expands and runs `--runs` consecutive seeds; any failure
// prints a one-line reproducer (`--replay_seed=N`), a shrunk minimal
// config, and exits 1. `--replay_seed=N` re-runs exactly one scenario and
// prints its fingerprint. `--canary` enables the planted detach-cleanup
// bug and inverts the exit code: the run succeeds only if the harness
// catches the bug.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "testing/scenario.hpp"
#include "testing/shrink.hpp"

namespace {

using iiot::testing::generate_scenario;
using iiot::testing::run_scenario;
using iiot::testing::ScenarioConfig;
using iiot::testing::ScenarioResult;
using iiot::testing::shrink_scenario;

struct Options {
  std::uint64_t runs = 200;
  std::uint64_t seed_base = 1;
  std::uint64_t replay_seed = 0;
  bool replay = false;
  bool canary = false;
  bool trace = false;
  bool quiet = false;
  std::string fail_file;
};

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0';
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto eq = a.find('=');
    const std::string key = a.substr(0, eq);
    const std::string val = eq == std::string::npos ? "" : a.substr(eq + 1);
    if (key == "--runs") {
      if (!parse_u64(val.c_str(), opt.runs)) return false;
    } else if (key == "--seed") {
      if (!parse_u64(val.c_str(), opt.seed_base)) return false;
    } else if (key == "--replay_seed") {
      if (!parse_u64(val.c_str(), opt.replay_seed)) return false;
      opt.replay = true;
    } else if (key == "--canary") {
      opt.canary = true;
    } else if (key == "--trace") {
      opt.trace = true;
    } else if (key == "--quiet") {
      opt.quiet = true;
    } else if (key == "--fail-file") {
      opt.fail_file = val;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

ScenarioConfig config_for(std::uint64_t seed, const Options& opt) {
  ScenarioConfig cfg = generate_scenario(seed);
  if (opt.canary) cfg.canary_skip_detach_cleanup = true;
  return cfg;
}

void report_failure(const ScenarioConfig& cfg, const ScenarioResult& r) {
  std::printf("FAIL  %s\n", cfg.summary().c_str());
  std::printf("      %s\n", r.failure.c_str());
  std::printf("      reproduce: iiot_fuzz --replay_seed=%llu%s\n",
              static_cast<unsigned long long>(cfg.seed),
              cfg.canary_skip_detach_cleanup ? " --canary" : "");
  const auto shrunk = shrink_scenario(cfg);
  std::printf("      shrunk (%d reruns): %s\n", shrunk.attempts,
              shrunk.config.summary().c_str());
  std::printf("      shrunk failure: %s\n", shrunk.failure.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  if (opt.replay) {
    ScenarioConfig cfg = config_for(opt.replay_seed, opt);
    cfg.trace = opt.trace;  // replay-only: does not alter the scenario
    std::printf("replaying: %s\n", cfg.summary().c_str());
    const ScenarioResult r = run_scenario(cfg);
    std::printf("fingerprint: %s\n", r.fingerprint.to_string().c_str());
    if (!r.ok) {
      std::printf("FAIL: %s\n", r.failure.c_str());
      return opt.canary ? 0 : 1;
    }
    std::printf("OK\n");
    return opt.canary ? 1 : 0;
  }

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> failing_seeds;
  std::uint64_t by_mac[4] = {0, 0, 0, 0};
  constexpr std::uint64_t kMaxReported = 5;

  for (std::uint64_t i = 0; i < opt.runs; ++i) {
    const std::uint64_t seed = opt.seed_base + i;
    const ScenarioConfig cfg = config_for(seed, opt);
    ++by_mac[static_cast<int>(cfg.mac)];
    const ScenarioResult r = run_scenario(cfg);
    if (r.ok) continue;
    failing_seeds.push_back(seed);
    if (failing_seeds.size() <= kMaxReported) {
      report_failure(cfg, r);
    }
    if (opt.canary) break;  // one caught bug is proof enough
  }

  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  if (!opt.quiet) {
    std::printf(
        "ran %llu scenarios (csma=%llu lpl=%llu rimac=%llu tdma=%llu) "
        "in %lld ms: %zu failing\n",
        static_cast<unsigned long long>(opt.runs),
        static_cast<unsigned long long>(by_mac[0]),
        static_cast<unsigned long long>(by_mac[1]),
        static_cast<unsigned long long>(by_mac[2]),
        static_cast<unsigned long long>(by_mac[3]),
        static_cast<long long>(wall_ms), failing_seeds.size());
  }
  if (!opt.fail_file.empty() && !failing_seeds.empty()) {
    std::ofstream out(opt.fail_file);
    for (std::uint64_t s : failing_seeds) out << s << "\n";
  }
  if (opt.canary) {
    if (failing_seeds.empty()) {
      std::printf("canary NOT caught: the planted detach bug slipped "
                  "through %llu scenarios\n",
                  static_cast<unsigned long long>(opt.runs));
      return 1;
    }
    std::printf("canary caught by seed %llu\n",
                static_cast<unsigned long long>(failing_seeds.front()));
    return 0;
  }
  return failing_seeds.empty() ? 0 : 1;
}
