// Property-based scenario fuzzer CLI (DESIGN.md §4c, §4e).
//
//   iiot_fuzz [--runs=N] [--seed=BASE] [--jobs=N] [--replay_seed=N]
//             [--scenario=NAME] [--islands=K|auto] [--canary] [--trace]
//             [--fail-file=PATH] [--selfcheck] [--quiet]
//
// Default mode: expands and runs `--runs` consecutive seeds, sharded
// across `--jobs` worker threads (each scenario owns an isolated world);
// any failure prints a one-line reproducer (`--replay_seed=N`), a shrunk
// minimal config, and exits 1. Failing seeds, reports and fail-file
// contents are aggregated from per-seed slots in seed order, so they are
// byte-identical at any --jobs value. `--jobs=0` means all cores.
//
// `--replay_seed=N` re-runs exactly one scenario and prints its
// fingerprint. `--scenario=NAME` constrains the generator to a curated
// scenario family's regime (topology, MAC, churn/protocol knobs) so the
// fuzzer concentrates on the neighborhood of a named scenario; it
// composes with both batch and replay modes, and reproducer lines carry
// it along. `--canary` enables the planted detach-cleanup bug and
// inverts the exit code: the run succeeds only if the harness catches the
// bug. `--selfcheck` runs the batch twice — serially and at --jobs — and
// fails on any divergence in the jobs-invariant artifacts (the
// determinism contract, checked in-process).
//
// `--islands=K` switches to the island-world lane-invariance fuzz
// (DESIGN.md §4i): each seed expands into a pdes::IslandWorld scenario
// that runs on the serial oracle (lanes=1) and again at K lanes ("auto"
// = all cores); diverging world digests fail the seed. Composes with
// batch mode (reproducer lines carry --islands along) and with
// `--replay_seed`, which re-runs one island scenario at K lanes and
// prints its digest.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "runner/engine.hpp"
#include "scenarios/scenario_lib.hpp"
#include "testing/batch.hpp"
#include "testing/pdes_fuzz.hpp"
#include "testing/scenario.hpp"

namespace {

using iiot::testing::check_batch_determinism;
using iiot::testing::FuzzBatchOptions;
using iiot::testing::FuzzBatchResult;
using iiot::testing::generate_scenario;
using iiot::testing::run_fuzz_batch;
using iiot::testing::run_scenario;
using iiot::testing::ScenarioConfig;
using iiot::testing::ScenarioResult;

struct Options {
  std::uint64_t runs = 200;
  std::uint64_t seed_base = 1;
  std::uint64_t replay_seed = 0;
  std::uint64_t jobs = 1;  // 0 → all cores
  bool replay = false;
  bool pdes = false;        // --islands given: island lane-invariance fuzz
  std::uint64_t islands = 4;  // checked-leg lane count (0 = all cores)
  bool canary = false;
  bool trace = false;
  bool quiet = false;
  bool selfcheck = false;
  std::string fail_file;
  std::string scenario;  // curated-family constraint (empty = unconstrained)
};

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0';
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto eq = a.find('=');
    const std::string key = a.substr(0, eq);
    const std::string val = eq == std::string::npos ? "" : a.substr(eq + 1);
    if (key == "--runs") {
      if (!parse_u64(val.c_str(), opt.runs)) return false;
    } else if (key == "--seed") {
      if (!parse_u64(val.c_str(), opt.seed_base)) return false;
    } else if (key == "--jobs") {
      if (!parse_u64(val.c_str(), opt.jobs)) return false;
    } else if (key == "--replay_seed") {
      if (!parse_u64(val.c_str(), opt.replay_seed)) return false;
      opt.replay = true;
    } else if (key == "--islands") {
      opt.pdes = true;
      if (val == "auto") {
        opt.islands = 0;
      } else if (!parse_u64(val.c_str(), opt.islands)) {
        return false;
      }
    } else if (key == "--canary") {
      opt.canary = true;
    } else if (key == "--trace") {
      opt.trace = true;
    } else if (key == "--quiet") {
      opt.quiet = true;
    } else if (key == "--selfcheck") {
      opt.selfcheck = true;
    } else if (key == "--fail-file") {
      opt.fail_file = val;
    } else if (key == "--scenario") {
      if (iiot::scenarios::find_scenario(val) == nullptr) {
        std::fprintf(stderr, "unknown scenario: %s\navailable:",
                     val.c_str());
        for (const auto& s : iiot::scenarios::library()) {
          std::fprintf(stderr, " %s", s.name);
        }
        std::fprintf(stderr, "\n");
        return false;
      }
      opt.scenario = val;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  if (opt.pdes) {
    const auto lanes = static_cast<unsigned>(opt.islands);
    if (opt.replay) {
      const auto cfg =
          iiot::testing::generate_pdes_scenario(opt.replay_seed);
      std::printf("replaying island world: %s\n", cfg.summary().c_str());
      const auto r = iiot::testing::run_pdes_scenario(cfg, lanes);
      if (!r.ok) {
        std::printf("FAIL: %s\n", r.failure.c_str());
        return 1;
      }
      std::printf("digest: %016llx  events=%llu xrx=%llu joined=%llu‰\n",
                  static_cast<unsigned long long>(r.digest),
                  static_cast<unsigned long long>(r.events),
                  static_cast<unsigned long long>(r.cross_island_rx),
                  static_cast<unsigned long long>(r.joined_permille));
      return 0;
    }
    iiot::runner::Engine eng(static_cast<unsigned>(opt.jobs));
    iiot::testing::PdesFuzzOptions popt;
    popt.runs = opt.runs;
    popt.seed_base = opt.seed_base;
    popt.lanes = lanes;
    const auto wall_start = std::chrono::steady_clock::now();
    const auto res = iiot::testing::run_pdes_fuzz_batch(popt, eng);
    const auto wall_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    if (!res.report.empty()) std::fputs(res.report.c_str(), stdout);
    if (!opt.quiet) {
      const std::string lanes_str =
          lanes == 0 ? "auto" : std::to_string(lanes);
      std::printf("ran %llu island worlds at lanes=1 vs lanes=%s "
                  "(jobs=%u) in %lld ms: %zu failing\n",
                  static_cast<unsigned long long>(opt.runs),
                  lanes_str.c_str(), eng.jobs(),
                  static_cast<long long>(wall_ms),
                  res.failing_seeds.size());
    }
    if (!opt.fail_file.empty() && !res.failing_seeds.empty()) {
      std::ofstream out(opt.fail_file);
      for (std::uint64_t s : res.failing_seeds) out << s << "\n";
    }
    return res.ok() ? 0 : 1;
  }

  iiot::testing::FuzzProfile profile;
  if (!opt.scenario.empty()) {
    profile = iiot::scenarios::find_scenario(opt.scenario)->fuzz_profile();
  }

  if (opt.replay) {
    ScenarioConfig cfg = generate_scenario(opt.replay_seed, profile);
    if (opt.canary) cfg.canary_skip_detach_cleanup = true;
    cfg.trace = opt.trace;  // replay-only: does not alter the scenario
    std::printf("replaying: %s\n", cfg.summary().c_str());
    const ScenarioResult r = run_scenario(cfg);
    std::printf("fingerprint: %s\n", r.fingerprint.to_string().c_str());
    if (!r.ok) {
      std::printf("FAIL: %s\n", r.failure.c_str());
      return opt.canary ? 0 : 1;
    }
    std::printf("OK\n");
    return opt.canary ? 1 : 0;
  }

  iiot::runner::Engine eng(static_cast<unsigned>(opt.jobs));

  FuzzBatchOptions bopt;
  bopt.runs = opt.runs;
  bopt.seed_base = opt.seed_base;
  bopt.canary = opt.canary;
  bopt.profile = profile;
  bopt.profile_name = opt.scenario;

  if (opt.selfcheck) {
    const auto wall_start = std::chrono::steady_clock::now();
    bopt.shrink = false;  // the diff covers reports; shrinking re-runs are
                          // already covered by their own determinism tests
    const std::string diff = check_batch_determinism(bopt, eng);
    const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
    if (!diff.empty()) {
      std::printf("SELFCHECK FAIL (jobs=1 vs jobs=%u): %s\n", eng.jobs(),
                  diff.c_str());
      return 1;
    }
    std::printf(
        "selfcheck OK: %llu scenarios byte-identical at jobs=1 and jobs=%u "
        "(%lld ms)\n",
        static_cast<unsigned long long>(opt.runs), eng.jobs(),
        static_cast<long long>(wall_ms));
    return 0;
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const FuzzBatchResult res = run_fuzz_batch(bopt, eng);
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();

  if (!res.report.empty()) std::fputs(res.report.c_str(), stdout);
  if (!opt.quiet) {
    std::printf(
        "ran %llu scenarios (csma=%llu lpl=%llu rimac=%llu tdma=%llu) "
        "at jobs=%u in %lld ms: %zu failing\n",
        static_cast<unsigned long long>(opt.runs),
        static_cast<unsigned long long>(res.by_mac[0]),
        static_cast<unsigned long long>(res.by_mac[1]),
        static_cast<unsigned long long>(res.by_mac[2]),
        static_cast<unsigned long long>(res.by_mac[3]), eng.jobs(),
        static_cast<long long>(wall_ms), res.failing_seeds.size());
  }
  if (!opt.fail_file.empty() && !res.failing_seeds.empty()) {
    std::ofstream out(opt.fail_file);
    for (std::uint64_t s : res.failing_seeds) out << s << "\n";
  }
  if (opt.canary) {
    if (res.failing_seeds.empty()) {
      std::printf("canary NOT caught: the planted detach bug slipped "
                  "through %llu scenarios\n",
                  static_cast<unsigned long long>(opt.runs));
      return 1;
    }
    std::printf("canary caught by seed %llu\n",
                static_cast<unsigned long long>(res.failing_seeds.front()));
    return 0;
  }
  return res.failing_seeds.empty() ? 0 : 1;
}
