// Parallel-in-one-world simulation (DESIGN.md §4i): island partitioner,
// conservative parallel scheduler, cross-island ghost physics, and the
// lane-invariance contract — every counter bit-identical at any lane
// count, with lanes == 1 as the serial oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "pdes/world.hpp"
#include "radio/island.hpp"
#include "runner/engine.hpp"
#include "sim/parallel.hpp"
#include "sim/scheduler.hpp"
#include "testing/pdes_fuzz.hpp"

namespace iiot::pdes {
namespace {

using namespace sim;  // NOLINT: time literals

radio::PropagationConfig clean_radio() {
  radio::PropagationConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  return cfg;
}

// ---------------------------------------------------------- partitioner

TEST(IslandPlan, FullyConnectedWorldDegeneratesToOneIsland) {
  // All nodes inside one cell: a single island, no adjacency, and the
  // parallel engine degenerates to plain serial execution.
  std::vector<radio::Position> pos{{0, 0}, {5, 0}, {0, 5}, {5, 5}};
  radio::IslandPlan plan = radio::plan_islands(pos, clean_radio(), 1);
  EXPECT_EQ(plan.count, 1u);
  for (std::uint32_t isl : plan.island_of) EXPECT_EQ(isl, 0u);
  ASSERT_EQ(plan.adjacency.size(), 1u);
  EXPECT_TRUE(plan.adjacency[0].empty());
}

TEST(IslandPlan, SingletonIslandsLinkOnlyWithinRadioRange) {
  // Three nodes, one per cell; the far one is beyond any credible link.
  radio::IslandPlanOptions opt;
  opt.cell_size = 30.0;
  std::vector<radio::Position> pos{{0, 0}, {40, 0}, {5000, 0}};
  radio::IslandPlan plan = radio::plan_islands(pos, clean_radio(), 1, opt);
  EXPECT_EQ(plan.count, 3u);
  EXPECT_EQ(plan.island_of, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(plan.adjacency[0], (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(plan.adjacency[1], (std::vector<std::uint32_t>{0}));
  EXPECT_TRUE(plan.adjacency[2].empty());
}

TEST(IslandPlan, RowMajorNumberingIsCanonical) {
  radio::IslandPlanOptions opt;
  opt.cell_size = 10.0;
  // 2x2 grid of cells, one node each, enumerated in scrambled order: ids
  // must still come out row-major by cell coordinates.
  std::vector<radio::Position> pos{{15, 15}, {5, 5}, {15, 5}, {5, 15}};
  radio::IslandPlan plan = radio::plan_islands(pos, clean_radio(), 1, opt);
  EXPECT_EQ(plan.count, 4u);
  EXPECT_EQ(plan.island_of, (std::vector<std::uint32_t>{3, 0, 1, 2}));
}

TEST(IslandPlan, EmptyAndSingleNodeWorlds) {
  radio::IslandPlan empty = radio::plan_islands({}, clean_radio(), 1);
  EXPECT_EQ(empty.count, 0u);
  radio::IslandPlan one =
      radio::plan_islands({radio::Position{3, 4}}, clean_radio(), 1);
  EXPECT_EQ(one.count, 1u);
  EXPECT_TRUE(one.adjacency[0].empty());
}

TEST(IslandPlan, MaxLinkRangeGrowsWithShadowingSigma) {
  radio::PropagationConfig cfg = clean_radio();
  const double base = radio::max_link_range(cfg, 0.0);
  cfg.shadowing_sigma_db = 3.0;
  EXPECT_GT(radio::max_link_range(cfg, 0.0), base);
  EXPECT_GT(radio::max_link_range(cfg, 6.0), radio::max_link_range(cfg, 0.0));
}

// ---------------------------------------------------------- interchange

TEST(Interchange, TakeUntilSortsCanonicallyAndLeavesTheFuture) {
  radio::Interchange ix(2);
  auto mk = [](std::uint32_t src, std::uint64_t seq, Time b1) {
    radio::CellTx m;
    m.src_island = src;
    m.seq = seq;
    m.b1 = b1;
    m.b2 = b1 + 1000;
    return m;
  };
  ix.post(1, mk(2, 7, 2000));
  ix.post(1, mk(0, 5, 1000));
  ix.post(1, mk(2, 6, 1000));
  ix.post(1, mk(0, 9, 3000));  // beyond the boundary: stays queued
  EXPECT_EQ(ix.next_time(1), 1000u);
  EXPECT_EQ(ix.next_time(0), kTimeNever);

  std::vector<radio::CellTx> got = ix.take_until(1, 2000);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].src_island, 0u);
  EXPECT_EQ(got[0].seq, 5u);
  EXPECT_EQ(got[1].src_island, 2u);
  EXPECT_EQ(got[1].seq, 6u);
  EXPECT_EQ(got[2].seq, 7u);
  EXPECT_EQ(ix.next_time(1), 3000u);
  EXPECT_EQ(ix.posted(), 4u);
}

// ------------------------------------------------- scheduler peek API

TEST(SchedulerPeek, NextEventTimeSkipsCancelledEntries) {
  Scheduler sched;
  EXPECT_EQ(sched.next_event_time(), kTimeNever);
  EventHandle early = sched.schedule_at(100, [] {});
  sched.schedule_at(500, [] {});
  EXPECT_EQ(sched.next_event_time(), 100u);
  early.cancel();
  EXPECT_EQ(sched.next_event_time(), 500u);
  sched.run_all();
  EXPECT_EQ(sched.next_event_time(), kTimeNever);
}

// ------------------------------------------------ parallel scheduler

TEST(ParallelScheduler, IndependentIslandsRunToExactDeadline) {
  Scheduler a;
  Scheduler b;
  int fired = 0;
  a.schedule_at(1234, [&] { ++fired; });
  b.schedule_at(999'999, [&] { ++fired; });
  std::vector<ParallelIsland> islands(2);
  islands[0].sched = &a;
  islands[0].apply = [](Time) {};
  islands[0].next_input = [] { return kTimeNever; };
  islands[1].sched = &b;
  islands[1].apply = [](Time) {};
  islands[1].next_input = [] { return kTimeNever; };
  ParallelScheduler par(1000, std::move(islands), 2);
  par.run_until(500'000);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(a.now(), 500'000u);
  EXPECT_EQ(b.now(), 500'000u);
  par.run_until(2'000'000);  // resumable, like Scheduler::run_until
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(b.now(), 2'000'000u);
}

TEST(ParallelScheduler, IslandExceptionPropagates) {
  Scheduler a;
  Scheduler b;
  a.schedule_at(100, [] { throw std::runtime_error("island boom"); });
  b.schedule_at(50'000'000, [] {});
  std::vector<ParallelIsland> islands(2);
  islands[0].sched = &a;
  islands[0].apply = [](Time) {};
  islands[0].next_input = [] { return kTimeNever; };
  islands[0].deps = {1};
  islands[1].sched = &b;
  islands[1].apply = [](Time) {};
  islands[1].next_input = [] { return kTimeNever; };
  islands[1].deps = {0};
  ParallelScheduler par(1000, std::move(islands), 2);
  EXPECT_THROW(par.run_until(60'000'000), std::runtime_error);
}

// ------------------------------------------------- island world physics

IslandWorldConfig small_world(unsigned lanes) {
  IslandWorldConfig cfg;
  cfg.islands_x = 2;
  cfg.islands_y = 2;
  cfg.island_side = 3;
  cfg.spacing = 18.0;
  cfg.lanes = lanes;
  cfg.seed = 42;
  cfg.radio_cfg = clean_radio();
  return cfg;
}

/// Runs the standard exercise: join phase, then paced upward traffic from
/// every node, a mid-run crash of a border-straddling node timed exactly
/// on a window boundary, and a rejoin tail. Returns the world digest.
std::uint64_t run_exercise(const IslandWorldConfig& cfg) {
  IslandWorld world(cfg);
  world.start();
  world.run_until(30_s);
  // Paced traffic from every node, issued in node-index order at the
  // (identical) per-island clocks.
  for (int round = 0; round < 10; ++round) {
    for (std::size_t i = 0; i < world.size(); ++i) {
      if (i == world.root_index()) continue;
      Buffer payload{static_cast<std::uint8_t>(round),
                     static_cast<std::uint8_t>(i)};
      world.node(i).routing->send_up(std::move(payload));
    }
    world.run_until(30_s + (round + 1) * 2_s);
  }
  // Crash a node that sits on an island boundary, at a time that is
  // exactly a window boundary — the sharpest ordering corner.
  world.node(world.config().island_side - 1).stop();
  world.run_until(60_s);
  EXPECT_EQ(world.check_consistency(), "");
  const std::uint64_t d = world.digest();
  world.stop();
  return d;
}

TEST(IslandWorld, RoutingSpansIslands) {
  IslandWorld world(small_world(1));
  world.start();
  world.run_until(40_s);
  EXPECT_DOUBLE_EQ(world.joined_fraction(), 1.0);
  EXPECT_GT(world.medium_stats().cross_island_rx, 0u);
  EXPECT_GT(world.interchange().posted(), 0u);
  EXPECT_EQ(world.check_consistency(), "");
  world.stop();
}

TEST(IslandWorld, DeliversUpwardDataAcrossIslands) {
  IslandWorldConfig cfg = small_world(1);
  IslandWorld world(cfg);
  world.start();
  world.run_until(40_s);
  const std::uint64_t before = world.root().routing->stats().data_delivered;
  // A sender in the far corner island: its data must cross at least one
  // island boundary to reach the center root.
  world.node(0).routing->send_up(Buffer{0xAB});
  world.run_until(45_s);
  EXPECT_GT(world.root().routing->stats().data_delivered, before);
  world.stop();
}

TEST(IslandWorld, LaneCountIsInvisible) {
  const std::uint64_t serial = run_exercise(small_world(1));
  EXPECT_EQ(run_exercise(small_world(2)), serial);
  EXPECT_EQ(run_exercise(small_world(4)), serial);
  EXPECT_EQ(run_exercise(small_world(0)), serial);  // hardware lanes
}

TEST(IslandWorld, RepeatRunsAreDeterministic) {
  EXPECT_EQ(run_exercise(small_world(2)), run_exercise(small_world(2)));
}

TEST(IslandWorld, FaultInjectionIsLaneInvariant) {
  IslandWorldConfig cfg = small_world(1);
  radio::FaultInjectorConfig faults;
  faults.drop_p = 0.02;
  faults.corrupt_p = 0.01;
  faults.duplicate_p = 0.01;
  faults.delay_p = 0.01;
  cfg.faults = faults;
  const std::uint64_t serial = run_exercise(cfg);
  cfg.lanes = 4;
  EXPECT_EQ(run_exercise(cfg), serial);
}

TEST(IslandWorld, SingleIslandWorldMatchesAnyLaneCount) {
  // Degenerate plan: one island. Lanes clamp to 1; still bit-identical.
  IslandWorldConfig cfg = small_world(1);
  cfg.islands_x = 1;
  cfg.islands_y = 1;
  cfg.island_side = 4;
  const std::uint64_t serial = run_exercise(cfg);
  cfg.lanes = 4;
  EXPECT_EQ(run_exercise(cfg), serial);
}

// ------------------------------------------------- lane-invariance fuzz

TEST(PdesFuzz, GeneratorIsAPureFunctionOfTheSeed) {
  for (std::uint64_t seed : {1ULL, 7ULL, 1234ULL}) {
    const testing::PdesScenarioConfig a = testing::generate_pdes_scenario(seed);
    const testing::PdesScenarioConfig b = testing::generate_pdes_scenario(seed);
    EXPECT_EQ(a.summary(), b.summary());
    EXPECT_GE(a.islands_x * a.islands_y, 2u);  // always a real PDES world
  }
  // Distinct seeds must not collapse onto one scenario (a generator bug
  // that would quietly shrink the searched space to a single point).
  EXPECT_NE(testing::generate_pdes_scenario(1).summary(),
            testing::generate_pdes_scenario(2).summary());
}

TEST(PdesFuzz, ReplaySeedMatchesTheBatchDigest) {
  const testing::PdesScenarioConfig cfg = testing::generate_pdes_scenario(3);
  const testing::PdesRunOutcome serial = testing::run_pdes_scenario(cfg, 1);
  ASSERT_TRUE(serial.ok) << serial.failure;
  const testing::PdesRunOutcome again = testing::run_pdes_scenario(cfg, 1);
  EXPECT_EQ(serial.digest, again.digest);
  const testing::PdesRunOutcome laned = testing::run_pdes_scenario(cfg, 4);
  ASSERT_TRUE(laned.ok) << laned.failure;
  EXPECT_EQ(serial.digest, laned.digest);
}

TEST(PdesFuzz, SmallBatchIsCleanAndJobsInvariant) {
  testing::PdesFuzzOptions opt;
  opt.runs = 4;
  opt.seed_base = 11;
  opt.lanes = 2;
  runner::Engine serial_eng(1);
  const testing::PdesFuzzResult a = run_pdes_fuzz_batch(opt, serial_eng);
  EXPECT_TRUE(a.ok()) << a.report;
  EXPECT_EQ(a.scenarios_executed, 4u);
  runner::Engine wide_eng(4);
  const testing::PdesFuzzResult b = run_pdes_fuzz_batch(opt, wide_eng);
  EXPECT_EQ(a.digests, b.digests);
  EXPECT_EQ(a.failing_seeds, b.failing_seeds);
}

TEST(IslandWorld, MetricsContextsArePerIsland) {
  IslandWorldConfig cfg = small_world(1);
  cfg.metrics = true;
  IslandWorld world(cfg);
  world.start();
  world.run_until(10_s);
  for (std::size_t k = 0; k < world.islands(); ++k) {
    ASSERT_NE(world.context(k), nullptr);
  }
  world.stop();
}

}  // namespace
}  // namespace iiot::pdes
