// CRDT tests: unit behaviour plus property-based convergence sweeps.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "crdt/cfrc.hpp"
#include "crdt/counters.hpp"
#include "crdt/ormap.hpp"
#include "crdt/registers.hpp"
#include "crdt/sets.hpp"
#include "crdt/vector_clock.hpp"

namespace iiot::crdt {
namespace {

// ------------------------------------------------------------ VectorClock

TEST(VectorClock, FreshClocksAreEqual) {
  VectorClock a, b;
  EXPECT_EQ(a.compare(b), Order::kEqual);
}

TEST(VectorClock, TickMakesAfter) {
  VectorClock a, b;
  a.tick(1);
  EXPECT_EQ(a.compare(b), Order::kAfter);
  EXPECT_EQ(b.compare(a), Order::kBefore);
}

TEST(VectorClock, IndependentTicksAreConcurrent) {
  VectorClock a, b;
  a.tick(1);
  b.tick(2);
  EXPECT_EQ(a.compare(b), Order::kConcurrent);
  EXPECT_EQ(b.compare(a), Order::kConcurrent);
}

TEST(VectorClock, MergeDominatesBoth) {
  VectorClock a, b;
  a.tick(1);
  a.tick(1);
  b.tick(2);
  VectorClock m = a;
  m.merge(b);
  EXPECT_TRUE(m.dominates(a));
  EXPECT_TRUE(m.dominates(b));
  EXPECT_EQ(m.get(1), 2u);
  EXPECT_EQ(m.get(2), 1u);
}

TEST(VectorClock, CodecRoundTrip) {
  VectorClock a;
  a.tick(1);
  a.tick(7);
  a.tick(7);
  Buffer buf;
  BufWriter w(buf);
  a.encode(w);
  BufReader r(buf);
  auto b = VectorClock::decode(r);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a.compare(*b), Order::kEqual);
}

// --------------------------------------------------------------- Counters

TEST(GCounter, IncrementsSum) {
  GCounter c;
  c.increment(1, 3);
  c.increment(2, 4);
  EXPECT_EQ(c.value(), 7u);
}

TEST(GCounter, MergeIsIdempotent) {
  GCounter a;
  a.increment(1, 5);
  GCounter b = a;
  a.merge(b);
  a.merge(b);
  EXPECT_EQ(a.value(), 5u);
}

TEST(GCounter, ConcurrentIncrementsBothCounted) {
  GCounter a, b;
  a.increment(1, 2);
  b.increment(2, 3);
  a.merge(b);
  b.merge(a);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_TRUE(a == b);
}

TEST(PnCounter, DecrementWorksAcrossReplicas) {
  PnCounter a, b;
  a.increment(1, 10);
  b.decrement(2, 4);
  a.merge(b);
  EXPECT_EQ(a.value(), 6);
}

TEST(PnCounter, CanGoNegative) {
  PnCounter a;
  a.decrement(1, 3);
  EXPECT_EQ(a.value(), -3);
}

// ------------------------------------------------------------------- Sets

TEST(GSet, UnionMerge) {
  GSet<std::string> a, b;
  a.add("x");
  b.add("y");
  a.merge(b);
  EXPECT_TRUE(a.contains("x"));
  EXPECT_TRUE(a.contains("y"));
  EXPECT_EQ(a.size(), 2u);
}

TEST(TwoPSet, RemoveIsPermanent) {
  TwoPSet<std::string> a;
  a.add("x");
  a.remove("x");
  a.add("x");  // no effect: tombstone wins
  EXPECT_FALSE(a.contains("x"));
  EXPECT_EQ(a.size(), 0u);
}

TEST(TwoPSet, RemoveRequiresObservation) {
  TwoPSet<std::string> a;
  a.remove("ghost");  // not present: no tombstone created
  a.add("ghost");
  EXPECT_TRUE(a.contains("ghost"));
}

TEST(OrSet, AddWinsOverConcurrentRemove) {
  OrSet<std::string> a, b;
  a.add(1, "x");
  b.merge(a);
  // Concurrently: b removes x while a re-adds it with a new dot.
  b.remove("x");
  a.add(1, "x");
  a.merge(b);
  b.merge(a);
  EXPECT_TRUE(a.contains("x"));  // the new dot survives b's tombstones
  EXPECT_TRUE(b.contains("x"));
}

TEST(OrSet, ObservedRemoveActuallyRemoves) {
  OrSet<std::string> a, b;
  a.add(1, "x");
  b.merge(a);
  b.remove("x");
  a.merge(b);
  EXPECT_FALSE(a.contains("x"));
}

TEST(OrSet, ReAddAfterRemoveWorks) {
  OrSet<std::uint64_t> a;
  a.add(1, 42);
  a.remove(42);
  EXPECT_FALSE(a.contains(42));
  a.add(1, 42);
  EXPECT_TRUE(a.contains(42));
}

TEST(OrSet, CodecRoundTrip) {
  OrSet<std::string> a;
  a.add(1, "x");
  a.add(2, "y");
  a.remove("x");
  Buffer buf;
  BufWriter w(buf);
  a.encode(w);
  BufReader r(buf);
  auto b = OrSet<std::string>::decode(r);
  ASSERT_TRUE(b.has_value());
  EXPECT_FALSE(b->contains("x"));
  EXPECT_TRUE(b->contains("y"));
}

// -------------------------------------------------------------- Registers

TEST(LwwRegister, LaterTimestampWins) {
  LwwRegister<std::string> a;
  a.set(1, 100, "old");
  a.set(2, 200, "new");
  EXPECT_EQ(a.get(), "new");
  a.set(3, 150, "stale");  // earlier: ignored
  EXPECT_EQ(a.get(), "new");
}

TEST(LwwRegister, TieBrokenByReplicaId) {
  LwwRegister<std::string> a, b;
  a.set(1, 100, "from-1");
  b.set(2, 100, "from-2");
  a.merge(b);
  b.merge(a);
  EXPECT_EQ(a.get(), "from-2");
  EXPECT_EQ(b.get(), "from-2");
}

TEST(MvRegister, ConcurrentWritesBothKept) {
  MvRegister<std::string> a, b;
  a.set(1, "alpha");
  b.set(2, "beta");
  a.merge(b);
  EXPECT_TRUE(a.conflicted());
  auto vals = a.values();
  EXPECT_EQ(vals.size(), 2u);
}

TEST(MvRegister, CausalOverwriteCollapsesSiblings) {
  MvRegister<std::string> a, b;
  a.set(1, "alpha");
  b.set(2, "beta");
  a.merge(b);
  ASSERT_TRUE(a.conflicted());
  a.set(1, "resolved");  // causally after both siblings
  b.merge(a);
  EXPECT_FALSE(b.conflicted());
  EXPECT_EQ(b.values(), std::vector<std::string>{"resolved"});
}

TEST(MvRegister, MergeIdempotent) {
  MvRegister<std::string> a, b;
  a.set(1, "x");
  b.set(2, "y");
  a.merge(b);
  auto before = a.values().size();
  a.merge(b);
  a.merge(b);
  EXPECT_EQ(a.values().size(), before);
}

// ------------------------------------------------------------------ OrMap

TEST(OrMap, NestedRegisterMerges) {
  OrMap<LwwRegister<double>> a, b;
  a.apply(1, "temp", [](auto& reg) { reg.set(1, 100, 21.5); });
  b.apply(2, "temp", [](auto& reg) { reg.set(2, 200, 22.5); });
  a.merge(b);
  ASSERT_NE(a.get("temp"), nullptr);
  EXPECT_EQ(a.get("temp")->get(), 22.5);
}

TEST(OrMap, RemoveThenConcurrentUpdateRevives) {
  OrMap<LwwRegister<double>> a, b;
  a.apply(1, "k", [](auto& reg) { reg.set(1, 1, 1.0); });
  b.merge(a);
  b.remove("k");
  a.apply(1, "k", [](auto& reg) { reg.set(1, 2, 2.0); });  // concurrent
  b.merge(a);
  EXPECT_TRUE(b.contains("k"));  // add-wins
}

TEST(OrMap, ObservedRemoveSticksWithoutConcurrentAdd) {
  OrMap<LwwRegister<double>> a, b;
  a.apply(1, "k", [](auto& reg) { reg.set(1, 1, 1.0); });
  b.merge(a);
  b.remove("k");
  a.merge(b);
  EXPECT_FALSE(a.contains("k"));
}

TEST(OrMap, CodecRoundTrip) {
  OrMap<LwwRegister<double>> a;
  a.apply(1, "x", [](auto& reg) { reg.set(1, 5, 1.25); });
  a.apply(1, "y", [](auto& reg) { reg.set(1, 6, 2.5); });
  a.remove("x");
  Buffer buf;
  BufWriter w(buf);
  a.encode(w);
  BufReader r(buf);
  auto b = OrMap<LwwRegister<double>>::decode(r);
  ASSERT_TRUE(b.has_value());
  EXPECT_FALSE(b->contains("x"));
  ASSERT_TRUE(b->contains("y"));
  EXPECT_EQ(b->get("y")->get(), 2.5);
}

// ------------------------------------------------------------------- CFRC

TEST(Cfrc, SuspectVotesAreIdempotent) {
  Cfrc c;
  c.suspect(5);
  c.suspect(5);
  c.suspect(5);
  EXPECT_EQ(c.suspect_count(), 1u);
}

TEST(Cfrc, MergeCountsDistinctVoters) {
  Cfrc a, b;
  a.suspect(1);
  b.suspect(2);
  b.suspect(3);
  a.merge(b);
  EXPECT_EQ(a.suspect_count(), 3u);
}

TEST(Cfrc, HigherEpochWinsAndClearsVotes) {
  Cfrc a, b;
  a.suspect(1);
  a.suspect(2);
  b.merge(a);
  b.advance_epoch();  // root verified alive
  a.merge(b);
  EXPECT_EQ(a.epoch(), 1u);
  EXPECT_EQ(a.suspect_count(), 0u);
  // Stale low-epoch gossip cannot resurrect old votes.
  Cfrc stale;
  stale.suspect(9);
  a.merge(stale);
  EXPECT_EQ(a.suspect_count(), 0u);
}

TEST(Cfrc, SuspicionRatio) {
  Cfrc c;
  c.join(1);
  c.join(2);
  c.join(3);
  c.join(4);
  c.suspect(1);
  c.suspect(2);
  EXPECT_DOUBLE_EQ(c.suspicion_ratio(), 0.5);
}

TEST(Cfrc, CodecRoundTrip) {
  Cfrc a;
  a.advance_epoch();
  a.suspect(7);
  a.join(8);
  Buffer buf;
  BufWriter w(buf);
  a.encode(w);
  BufReader r(buf);
  auto b = Cfrc::decode(r);
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(a == *b);
}

// --------------------------------------------- property sweeps (TEST_P)

/// Applies `ops` random operations to `n_replicas` divergent copies, then
/// merges them in random pairwise order and checks convergence. This is
/// the strong-eventual-consistency property: same set of updates ⇒ same
/// state, regardless of merge order.
class CrdtConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrdtConvergence, GCounterConverges) {
  Rng rng(GetParam());
  constexpr int kReplicas = 5;
  std::vector<GCounter> reps(kReplicas);
  std::uint64_t expected = 0;
  for (int op = 0; op < 200; ++op) {
    int r = static_cast<int>(rng.below(kReplicas));
    std::uint64_t by = 1 + rng.below(9);
    reps[static_cast<size_t>(r)].increment(static_cast<ReplicaId>(r), by);
    expected += by;
  }
  // Random gossip rounds until all merged with all.
  for (int round = 0; round < 40; ++round) {
    auto i = rng.below(kReplicas);
    auto j = rng.below(kReplicas);
    reps[i].merge(reps[j]);
  }
  for (auto& rep : reps) {
    for (auto& other : reps) rep.merge(other);
  }
  for (const auto& rep : reps) EXPECT_EQ(rep.value(), expected);
}

TEST_P(CrdtConvergence, OrSetConverges) {
  Rng rng(GetParam() ^ 0xBEEF);
  constexpr int kReplicas = 4;
  std::vector<OrSet<std::uint64_t>> reps(kReplicas);
  for (int op = 0; op < 300; ++op) {
    auto r = rng.below(kReplicas);
    std::uint64_t v = rng.below(20);
    if (rng.chance(0.6)) {
      reps[r].add(r + 1, v);
    } else {
      reps[r].remove(v);
    }
    if (rng.chance(0.2)) {
      auto j = rng.below(kReplicas);
      reps[r].merge(reps[j]);
    }
  }
  for (auto& rep : reps) {
    for (auto& other : reps) rep.merge(other);
  }
  for (int i = 1; i < kReplicas; ++i) {
    EXPECT_EQ(reps[0].items(), reps[static_cast<size_t>(i)].items());
  }
}

TEST_P(CrdtConvergence, LwwRegisterConvergesToGlobalMax) {
  Rng rng(GetParam() ^ 0xF00D);
  constexpr int kReplicas = 4;
  std::vector<LwwRegister<std::uint64_t>> reps(kReplicas);
  std::uint64_t best_ts = 0;
  ReplicaId best_rep = 0;
  std::uint64_t best_val = 0;
  bool any = false;
  for (int op = 0; op < 100; ++op) {
    auto r = rng.below(kReplicas);
    std::uint64_t ts = rng.below(1000);
    std::uint64_t val = rng.next_u32();
    reps[r].set(r + 1, ts, val);
    if (!any || ts > best_ts || (ts == best_ts && r + 1 > best_rep)) {
      best_ts = ts;
      best_rep = r + 1;
      best_val = val;
      any = true;
    }
  }
  for (auto& rep : reps) {
    for (auto& other : reps) rep.merge(other);
  }
  for (const auto& rep : reps) EXPECT_EQ(rep.get(), best_val);
}

TEST_P(CrdtConvergence, MergeCommutesAssociatesIdempotent) {
  Rng rng(GetParam() ^ 0xCAFE);
  auto random_set = [&rng]() {
    OrSet<std::uint64_t> s;
    for (int i = 0; i < 30; ++i) {
      if (rng.chance(0.7)) {
        s.add(1 + rng.below(3), rng.below(12));
      } else {
        s.remove(rng.below(12));
      }
    }
    return s;
  };
  OrSet<std::uint64_t> a = random_set(), b = random_set(), c = random_set();

  // Commutativity: a⊔b == b⊔a.
  auto ab = a;
  ab.merge(b);
  auto ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.items(), ba.items());

  // Associativity: (a⊔b)⊔c == a⊔(b⊔c).
  auto abc1 = ab;
  abc1.merge(c);
  auto bc = b;
  bc.merge(c);
  auto abc2 = a;
  abc2.merge(bc);
  EXPECT_EQ(abc1.items(), abc2.items());

  // Idempotence: x⊔x == x.
  auto aa = a;
  aa.merge(a);
  EXPECT_EQ(aa.items(), a.items());
}

TEST_P(CrdtConvergence, CfrcConvergesAcrossEpochChurn) {
  Rng rng(GetParam() ^ 0x5EED);
  constexpr int kReplicas = 5;
  std::vector<Cfrc> reps(kReplicas);
  for (int op = 0; op < 200; ++op) {
    auto r = rng.below(kReplicas);
    double dice = rng.uniform();
    if (dice < 0.55) {
      reps[r].suspect(rng.below(30));
    } else if (dice < 0.6) {
      reps[r].advance_epoch();
    } else {
      reps[r].merge(reps[rng.below(kReplicas)]);
    }
  }
  for (int pass = 0; pass < 2; ++pass) {
    for (auto& rep : reps) {
      for (auto& other : reps) rep.merge(other);
    }
  }
  for (int i = 1; i < kReplicas; ++i) {
    EXPECT_TRUE(reps[0] == reps[static_cast<size_t>(i)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrdtConvergence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace iiot::crdt
