// Tier-1 coverage of the curated scenario library (DESIGN.md §4h): the
// registry, the smoke tier of every scenario, the committed-baseline
// gate, the jobs-invariance determinism contract, and the fuzz-profile
// bridge. These run on every push, so everything here sticks to the
// smoke tier (the full suite is ~100 ms serial); soak and city belong
// to the nightly and weekly pipelines.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "runner/engine.hpp"
#include "scenarios/baseline.hpp"
#include "scenarios/scenario_lib.hpp"
#include "testing/scenario.hpp"

namespace {

using iiot::scenarios::check_against_baseline;
using iiot::scenarios::check_suite_determinism;
using iiot::scenarios::find_scenario;
using iiot::scenarios::KpiReport;
using iiot::scenarios::library;
using iiot::scenarios::run_one;
using iiot::scenarios::run_suite;
using iiot::scenarios::RunParams;
using iiot::scenarios::SuiteOptions;
using iiot::scenarios::SuiteResult;
using iiot::scenarios::Tier;

std::string read_committed_baseline() {
  std::ifstream in(std::string(IIOT_SOURCE_DIR) +
                   "/SCENARIO_baselines.json");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ScenarioLibrary, RegistryHasTheFiveScenariosInArtifactOrder) {
  const auto& lib = library();
  ASSERT_EQ(lib.size(), 5u);
  EXPECT_STREQ(lib[0].name, "factory_line");
  EXPECT_STREQ(lib[1].name, "hvac_fleet");
  EXPECT_STREQ(lib[2].name, "mine_tunnel");
  EXPECT_STREQ(lib[3].name, "mobile_yard");
  EXPECT_STREQ(lib[4].name, "city_grid");
  for (const auto& spec : lib) {
    EXPECT_EQ(find_scenario(spec.name), &spec);
  }
  EXPECT_EQ(find_scenario("no_such_scenario"), nullptr);
}

TEST(ScenarioLibrary, CityTierReachesFiveThousandNodesOnMineYardAndGrid) {
  for (const char* name : {"mine_tunnel", "mobile_yard", "city_grid"}) {
    const auto* spec = find_scenario(name);
    ASSERT_NE(spec, nullptr);
    const RunParams p = spec->params_for(Tier::kCity, 1);
    EXPECT_GE(p.shards * p.nodes_per_shard, 5000u) << name;
  }
}

TEST(ScenarioLibrary, TierNamesRoundTrip) {
  for (Tier t : {Tier::kSmoke, Tier::kSoak, Tier::kCity}) {
    Tier parsed{};
    ASSERT_TRUE(iiot::scenarios::parse_tier(to_string(t), parsed));
    EXPECT_EQ(parsed, t);
  }
  Tier parsed{};
  EXPECT_FALSE(iiot::scenarios::parse_tier("weekly", parsed));
}

TEST(ScenarioLibrary, EveryScenarioPassesItsSmokeTier) {
  iiot::runner::Engine eng(1);
  for (const auto& spec : library()) {
    const KpiReport rep = run_one(spec, Tier::kSmoke, 1, eng);
    EXPECT_TRUE(rep.ok) << spec.name << ": " << rep.failure;
    ASSERT_NE(rep.find("delivery_ratio"), nullptr);
    EXPECT_GT(rep.find("delivery_ratio")->value, 0.0) << spec.name;
  }
}

TEST(ScenarioLibrary, SmokeSuiteMatchesTheCommittedBaseline) {
  const std::string baseline = read_committed_baseline();
  ASSERT_FALSE(baseline.empty())
      << "SCENARIO_baselines.json missing from the source tree; "
         "regenerate with: scenario_ci --tier=smoke "
         "--out=SCENARIO_baselines.json";
  iiot::runner::Engine eng(1);
  const SuiteResult suite = run_suite(SuiteOptions{}, eng);
  ASSERT_TRUE(suite.ok()) << suite.failures();
  EXPECT_EQ(check_against_baseline(suite, baseline), "");
}

TEST(ScenarioLibrary, ArtifactIsIdenticalAcrossRepeatRuns) {
  iiot::runner::Engine eng(1);
  const SuiteResult a = run_suite(SuiteOptions{}, eng);
  const SuiteResult b = run_suite(SuiteOptions{}, eng);
  EXPECT_EQ(a.artifact, b.artifact);
}

TEST(ScenarioLibrary, ArtifactIsIdenticalAtAnyJobCount) {
  iiot::runner::Engine four(4);
  EXPECT_EQ(check_suite_determinism(SuiteOptions{}, four), "");
}

TEST(ScenarioLibrary, IslandLanesAreInvisibleInTheArtifact) {
  // The PDES lane-invariance contract surfaced at the KPI layer: the one
  // island-partitioned scenario must emit the same report (including its
  // world digest) at serial and parallel lane counts.
  const auto* spec = find_scenario("city_grid");
  ASSERT_NE(spec, nullptr);
  iiot::runner::Engine eng(1);
  const KpiReport a = run_one(*spec, Tier::kSmoke, 1, eng, 1);
  ASSERT_TRUE(a.ok) << a.failure;
  const KpiReport b = run_one(*spec, Tier::kSmoke, 1, eng, 4);
  EXPECT_EQ(a.json_line(), b.json_line());
}

TEST(ScenarioBaseline, TamperedKpiValueIsCaught) {
  iiot::runner::Engine eng(1);
  const SuiteResult suite = run_suite(SuiteOptions{}, eng);
  std::string tampered = suite.artifact;
  const auto pos = tampered.find("\"delivery_ratio\":");
  ASSERT_NE(pos, std::string::npos);
  // Flip the first digit of the value: a drift far beyond any tolerance.
  const auto digit = pos + std::string("\"delivery_ratio\":").size();
  tampered[digit] = tampered[digit] == '9' ? '8' : '9';
  EXPECT_NE(check_against_baseline(suite, tampered), "");
}

TEST(ScenarioBaseline, MissingRunEntryIsCaught) {
  iiot::runner::Engine eng(1);
  const SuiteResult suite = run_suite(SuiteOptions{}, eng);
  std::string pruned = suite.artifact;
  const auto pos = pruned.find("{\"scenario\":\"mine_tunnel\"");
  ASSERT_NE(pos, std::string::npos);
  const auto end = pruned.find('\n', pos);
  pruned.erase(pos, end - pos + 1);
  EXPECT_NE(check_against_baseline(suite, pruned), "");
}

TEST(ScenarioBaseline, EmptyBaselineIsCaught) {
  iiot::runner::Engine eng(1);
  const SuiteResult suite = run_suite(SuiteOptions{}, eng);
  EXPECT_NE(check_against_baseline(suite, ""), "");
}

// The --scenario bridge: each library entry hands the fuzzer a profile
// that pins generation to the scenario's regime. Pin the regime per
// scenario and check the generator actually honors it.
TEST(ScenarioFuzzProfiles, ProfilesPinTheScenarioRegime) {
  using iiot::testing::ScenarioMac;
  using iiot::testing::ScenarioTopology;
  const struct {
    const char* name;
    ScenarioMac mac;
    ScenarioTopology topology;
  } expected[] = {
      {"factory_line", ScenarioMac::kTdma, ScenarioTopology::kLine},
      {"hvac_fleet", ScenarioMac::kLpl, ScenarioTopology::kGrid},
      {"mine_tunnel", ScenarioMac::kCsma, ScenarioTopology::kLine},
      {"mobile_yard", ScenarioMac::kCsma, ScenarioTopology::kRandomField},
      {"city_grid", ScenarioMac::kCsma, ScenarioTopology::kGrid},
  };
  for (const auto& e : expected) {
    const auto* spec = find_scenario(e.name);
    ASSERT_NE(spec, nullptr);
    const iiot::testing::FuzzProfile fp = spec->fuzz_profile();
    ASSERT_TRUE(fp.mac.has_value()) << e.name;
    ASSERT_TRUE(fp.topology.has_value()) << e.name;
    EXPECT_EQ(*fp.mac, e.mac) << e.name;
    EXPECT_EQ(*fp.topology, e.topology) << e.name;
    ASSERT_GT(fp.max_nodes, 0u) << e.name;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const auto cfg = iiot::testing::generate_scenario(seed, fp);
      EXPECT_EQ(cfg.mac, e.mac) << e.name << " seed " << seed;
      EXPECT_EQ(cfg.topology, e.topology) << e.name << " seed " << seed;
      EXPECT_GE(cfg.nodes, fp.min_nodes) << e.name << " seed " << seed;
      EXPECT_LE(cfg.nodes, fp.max_nodes) << e.name << " seed " << seed;
    }
  }
}

}  // namespace
