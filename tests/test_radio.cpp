// Tests for the radio + medium substrate: delivery, loss, collisions,
// capture, CCA, half-duplex and duty-cycling semantics.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "energy/meter.hpp"
#include "radio/medium.hpp"
#include "radio/radio.hpp"
#include "sim/scheduler.hpp"

namespace iiot::radio {
namespace {

using namespace sim;  // NOLINT: time literals

struct TestNode {
  TestNode(Medium& medium, Scheduler& sched, NodeId id, Position pos)
      : meter(), radio(medium, sched, id, pos, meter) {}
  energy::Meter meter;
  Radio radio;
  std::optional<Frame> last_rx;
  int rx_count = 0;

  void listen() {
    radio.set_mode(Mode::kListen);
    radio.set_receive_handler([this](const Frame& f, double) {
      last_rx = f;
      ++rx_count;
    });
  }
};

PropagationConfig ideal_config() {
  PropagationConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  cfg.exponent = 3.0;
  return cfg;
}

Frame make_frame(NodeId src, NodeId dst, std::size_t payload = 10) {
  Frame f;
  f.src = src;
  f.dst = dst;
  f.payload.assign(payload, 0x55);
  return f;
}

class RadioTest : public ::testing::Test {
 protected:
  Scheduler sched;
  Medium medium{sched, ideal_config(), 1234};
};

TEST_F(RadioTest, CloseLinkDeliversReliably) {
  TestNode a(medium, sched, 1, {0, 0});
  TestNode b(medium, sched, 2, {10, 0});
  b.listen();
  a.radio.set_mode(Mode::kListen);

  int sent = 0;
  for (int i = 0; i < 50; ++i) {
    sched.schedule_at(static_cast<Time>(i) * 10'000, [&] {
      a.radio.transmit(make_frame(1, 2), nullptr);
      ++sent;
    });
  }
  sched.run_all();
  EXPECT_EQ(sent, 50);
  EXPECT_EQ(b.rx_count, 50);  // 10 m at exponent 3: SNR >> threshold
}

TEST_F(RadioTest, FarLinkNeverDelivers) {
  TestNode a(medium, sched, 1, {0, 0});
  TestNode b(medium, sched, 2, {10'000, 0});  // 10 km: below sensitivity
  b.listen();
  a.radio.set_mode(Mode::kListen);
  a.radio.transmit(make_frame(1, 2), nullptr);
  sched.run_all();
  EXPECT_EQ(b.rx_count, 0);
}

TEST_F(RadioTest, IntermediateDistanceIsLossy) {
  // Find PRR at a distance engineered to be in the transitional region.
  TestNode a(medium, sched, 1, {0, 0});
  TestNode b(medium, sched, 2, {55, 0});
  double prr = medium.link_prr(a.radio, b.radio);
  EXPECT_GT(prr, 0.02);
  EXPECT_LT(prr, 0.98);

  b.listen();
  a.radio.set_mode(Mode::kListen);
  constexpr int kSent = 400;
  for (int i = 0; i < kSent; ++i) {
    sched.schedule_at(static_cast<Time>(i) * 10'000,
                      [&] { a.radio.transmit(make_frame(1, 2), nullptr); });
  }
  sched.run_all();
  double observed = static_cast<double>(b.rx_count) / kSent;
  EXPECT_NEAR(observed, prr, 0.12);
}

TEST_F(RadioTest, SleepingReceiverMissesFrame) {
  TestNode a(medium, sched, 1, {0, 0});
  TestNode b(medium, sched, 2, {10, 0});
  b.listen();
  b.radio.set_mode(Mode::kSleep);
  a.radio.set_mode(Mode::kListen);
  a.radio.transmit(make_frame(1, 2), nullptr);
  sched.run_all();
  EXPECT_EQ(b.rx_count, 0);
}

TEST_F(RadioTest, ReceiverLeavingListenMidFrameAborts) {
  TestNode a(medium, sched, 1, {0, 0});
  TestNode b(medium, sched, 2, {10, 0});
  b.listen();
  a.radio.set_mode(Mode::kListen);
  a.radio.transmit(make_frame(1, 2, 50), nullptr);
  // Frame airtime is (6+9+50+2)*32 us = 2144 us; sleep at 1 ms.
  sched.schedule_at(1'000, [&] { b.radio.set_mode(Mode::kSleep); });
  sched.run_all();
  EXPECT_EQ(b.rx_count, 0);
  EXPECT_GE(medium.stats().aborted, 1u);
}

TEST_F(RadioTest, WakingMidFrameDoesNotReceive) {
  TestNode a(medium, sched, 1, {0, 0});
  TestNode b(medium, sched, 2, {10, 0});
  b.listen();
  b.radio.set_mode(Mode::kSleep);
  a.radio.set_mode(Mode::kListen);
  a.radio.transmit(make_frame(1, 2, 50), nullptr);
  sched.schedule_at(500, [&] { b.radio.set_mode(Mode::kListen); });
  sched.run_all();
  EXPECT_EQ(b.rx_count, 0);
}

TEST_F(RadioTest, ConcurrentTransmissionsCollideAtReceiver) {
  TestNode a(medium, sched, 1, {0, 0});
  TestNode b(medium, sched, 2, {20, 10});
  TestNode rx(medium, sched, 3, {10, 5});  // equidistant-ish: no capture
  rx.listen();
  a.radio.set_mode(Mode::kListen);
  b.radio.set_mode(Mode::kListen);
  a.radio.transmit(make_frame(1, 3, 40), nullptr);
  sched.schedule_at(100, [&] { b.radio.transmit(make_frame(2, 3, 40), nullptr); });
  sched.run_all();
  EXPECT_EQ(rx.rx_count, 0);
  EXPECT_GE(medium.stats().collisions, 1u);
}

TEST_F(RadioTest, CaptureLetsStrongSignalWin) {
  TestNode strong(medium, sched, 1, {2, 0});
  TestNode weak(medium, sched, 2, {60, 0});
  TestNode rx(medium, sched, 3, {0, 0});
  rx.listen();
  strong.radio.set_mode(Mode::kListen);
  weak.radio.set_mode(Mode::kListen);
  // Weak starts first; strong (close) frame overlaps and captures.
  weak.radio.transmit(make_frame(2, 3, 40), nullptr);
  sched.schedule_at(50, [&] { strong.radio.transmit(make_frame(1, 3, 40), nullptr); });
  sched.run_all();
  ASSERT_EQ(rx.rx_count, 1);
  EXPECT_EQ(rx.last_rx->src, 1u);
}

TEST_F(RadioTest, HalfDuplexTransmitterCannotReceive) {
  TestNode a(medium, sched, 1, {0, 0});
  TestNode b(medium, sched, 2, {10, 0});
  a.listen();
  b.listen();
  // Both transmit simultaneously: neither receives.
  a.radio.transmit(make_frame(1, 2, 30), nullptr);
  b.radio.transmit(make_frame(2, 1, 30), nullptr);
  sched.run_all();
  EXPECT_EQ(a.rx_count, 0);
  EXPECT_EQ(b.rx_count, 0);
}

TEST_F(RadioTest, DifferentChannelsDoNotInterfere) {
  TestNode a(medium, sched, 1, {0, 0});
  TestNode b(medium, sched, 2, {10, 0});
  TestNode c(medium, sched, 3, {5, 5});
  TestNode d(medium, sched, 4, {15, 5});
  b.listen();
  d.listen();
  a.radio.set_mode(Mode::kListen);
  c.radio.set_mode(Mode::kListen);
  c.radio.set_channel(15);
  d.radio.set_channel(15);
  // Overlapping transmissions on channels 11 and 15.
  a.radio.transmit(make_frame(1, 2, 40), nullptr);
  c.radio.transmit(make_frame(3, 4, 40), nullptr);
  sched.run_all();
  EXPECT_EQ(b.rx_count, 1);
  EXPECT_EQ(d.rx_count, 1);
  EXPECT_EQ(medium.stats().collisions, 0u);
}

TEST_F(RadioTest, CcaDetectsNearbyTransmission) {
  TestNode a(medium, sched, 1, {0, 0});
  TestNode b(medium, sched, 2, {10, 0});
  a.radio.set_mode(Mode::kListen);
  b.radio.set_mode(Mode::kListen);
  EXPECT_TRUE(b.radio.cca_clear());
  a.radio.transmit(make_frame(1, kBroadcastNode, 60), nullptr);
  sched.schedule_at(200, [&] { EXPECT_FALSE(b.radio.cca_clear()); });
  sched.run_all();
  EXPECT_TRUE(b.radio.cca_clear());
}

TEST_F(RadioTest, TransmitWhileBusyFails) {
  TestNode a(medium, sched, 1, {0, 0});
  a.radio.set_mode(Mode::kListen);
  EXPECT_TRUE(a.radio.transmit(make_frame(1, 2), nullptr));
  EXPECT_FALSE(a.radio.transmit(make_frame(1, 2), nullptr));
  sched.run_all();
  EXPECT_TRUE(a.radio.transmit(make_frame(1, 2), nullptr));
}

TEST_F(RadioTest, TransmitWhileOffFails) {
  TestNode a(medium, sched, 1, {0, 0});
  EXPECT_EQ(a.radio.mode(), Mode::kOff);
  EXPECT_FALSE(a.radio.transmit(make_frame(1, 2), nullptr));
}

TEST_F(RadioTest, TxDoneFiresAfterAirtime) {
  TestNode a(medium, sched, 1, {0, 0});
  a.radio.set_mode(Mode::kListen);
  Frame f = make_frame(1, 2, 33);  // (6+9+33+2)*32 = 1600 us
  Time done_at = 0;
  a.radio.transmit(f, [&] { done_at = sched.now(); });
  sched.run_all();
  EXPECT_EQ(done_at, airtime(f));
}

TEST_F(RadioTest, BroadcastReachesAllListeners) {
  TestNode a(medium, sched, 1, {0, 0});
  TestNode b(medium, sched, 2, {10, 0});
  TestNode c(medium, sched, 3, {0, 10});
  TestNode d(medium, sched, 4, {-10, 0});
  b.listen();
  c.listen();
  d.listen();
  a.radio.set_mode(Mode::kListen);
  a.radio.transmit(make_frame(1, kBroadcastNode), nullptr);
  sched.run_all();
  EXPECT_EQ(b.rx_count + c.rx_count + d.rx_count, 3);
}

TEST_F(RadioTest, EnergyAccountsTxAndSleep) {
  TestNode a(medium, sched, 1, {0, 0});
  a.radio.set_mode(Mode::kListen);
  Frame f = make_frame(1, 2, 100);
  a.radio.transmit(f, [&] { a.radio.set_mode(Mode::kSleep); });
  sched.run_until(10'000'000);
  a.meter.settle(sched.now());
  EXPECT_GT(a.meter.radio_mj(energy::RadioState::kTx), 0.0);
  EXPECT_GT(a.meter.radio_mj(energy::RadioState::kSleep), 0.0);
  // Sleeping dominates time but not energy at these power levels.
  EXPECT_GT(a.meter.seconds_in(energy::RadioState::kSleep), 9.0);
  EXPECT_LT(a.meter.duty_cycle(), 0.01);
}

// ---- neighbor-cache invalidation -------------------------------------
// The medium caches, per radio, the list of radios in link range. These
// tests pin the invalidation rules: attach, detach, channel switch, and
// position change must all be visible to the next transmission.

TEST_F(RadioTest, DetachMidTransmissionDoesNotDeliverThroughStaleCache) {
  TestNode a(medium, sched, 1, {0, 0});
  auto b = std::make_unique<TestNode>(medium, sched, 2, Position{10, 0});
  b->listen();
  a.radio.set_mode(Mode::kListen);

  // Warm both neighbor caches with a successful exchange.
  a.radio.transmit(make_frame(1, 2), nullptr);
  sched.run_all();
  EXPECT_EQ(b->rx_count, 1);

  // Receiver disappears mid-air: no delivery, no crash.
  a.radio.transmit(make_frame(1, 2, 50), nullptr);
  sched.schedule_at(sched.now() + 500, [&] { b.reset(); });
  sched.run_all();
  const auto deliveries = medium.stats().deliveries;

  // And a transmission begun after the detach must skip the dead radio.
  a.radio.transmit(make_frame(1, 2), nullptr);
  sched.run_all();
  EXPECT_EQ(medium.stats().deliveries, deliveries);
}

TEST_F(RadioTest, SourceDetachMidTransmissionKillsItsFrame) {
  auto a = std::make_unique<TestNode>(medium, sched, 1, Position{0, 0});
  TestNode b(medium, sched, 2, {10, 0});
  b.listen();
  a->radio.set_mode(Mode::kListen);
  a->radio.transmit(make_frame(1, 2, 50), nullptr);
  sched.schedule_at(500, [&] { a.reset(); });  // transmitter dies mid-air
  sched.run_all();
  EXPECT_EQ(b.rx_count, 0);
}

TEST_F(RadioTest, ChannelSwitchAfterCacheWarmupStopsDelivery) {
  TestNode a(medium, sched, 1, {0, 0});
  TestNode b(medium, sched, 2, {10, 0});
  b.listen();
  a.radio.set_mode(Mode::kListen);

  a.radio.transmit(make_frame(1, 2), nullptr);  // warm the caches
  sched.run_all();
  EXPECT_EQ(b.rx_count, 1);

  b.radio.set_channel(20);  // stale cache entry must not deliver
  a.radio.transmit(make_frame(1, 2), nullptr);
  sched.run_all();
  EXPECT_EQ(b.rx_count, 1);

  b.radio.set_channel(11);  // and switching back restores the link
  a.radio.transmit(make_frame(1, 2), nullptr);
  sched.run_all();
  EXPECT_EQ(b.rx_count, 2);
}

TEST_F(RadioTest, LateAttachedRadioIsVisibleToWarmCaches) {
  TestNode a(medium, sched, 1, {0, 0});
  TestNode b(medium, sched, 2, {10, 0});
  b.listen();
  a.radio.set_mode(Mode::kListen);
  a.radio.transmit(make_frame(1, kBroadcastNode), nullptr);  // warm caches
  sched.run_all();
  EXPECT_EQ(b.rx_count, 1);

  TestNode c(medium, sched, 3, {0, 10});  // attaches after cache warmup
  c.listen();
  a.radio.transmit(make_frame(1, kBroadcastNode), nullptr);
  sched.run_all();
  EXPECT_EQ(c.rx_count, 1);
}

TEST_F(RadioTest, PositionChangeInvalidatesLinkBudget) {
  TestNode a(medium, sched, 1, {0, 0});
  TestNode b(medium, sched, 2, {10, 0});
  b.listen();
  a.radio.set_mode(Mode::kListen);
  a.radio.transmit(make_frame(1, 2), nullptr);  // warm caches at 10 m
  sched.run_all();
  EXPECT_EQ(b.rx_count, 1);

  b.radio.set_position({10'000, 0});  // now far out of range
  a.radio.transmit(make_frame(1, 2), nullptr);
  sched.run_all();
  EXPECT_EQ(b.rx_count, 1);

  b.radio.set_position({5, 0});  // back in range
  a.radio.transmit(make_frame(1, 2), nullptr);
  sched.run_all();
  EXPECT_EQ(b.rx_count, 2);
}

TEST_F(RadioTest, CcaSeesTransmitterAfterChannelSwitch) {
  TestNode a(medium, sched, 1, {0, 0});
  TestNode b(medium, sched, 2, {10, 0});
  a.radio.set_mode(Mode::kListen);
  b.radio.set_mode(Mode::kListen);
  a.radio.set_channel(20);
  b.radio.set_channel(20);
  a.radio.transmit(make_frame(1, kBroadcastNode, 60), nullptr);
  sched.schedule_at(200, [&] { EXPECT_FALSE(b.radio.cca_clear()); });
  sched.run_all();
  EXPECT_TRUE(b.radio.cca_clear());
}

// ---- determinism regression ------------------------------------------
// The scheduler/medium fast path must be bit-for-bit deterministic: the
// same seed must yield the same delivery/collision/loss counters. Run the
// same contended scenario twice and compare every statistic.

namespace {
MediumStats run_contended_mesh(std::uint64_t seed) {
  Scheduler sched;
  PropagationConfig cfg;  // shadowing on: exercises the memoized draw
  Medium medium(sched, cfg, seed);
  std::vector<std::unique_ptr<TestNode>> nodes;
  for (int i = 0; i < 12; ++i) {
    nodes.push_back(std::make_unique<TestNode>(
        medium, sched, static_cast<NodeId>(i + 1),
        Position{static_cast<double>(i % 4) * 30.0,
                 static_cast<double>(i / 4) * 30.0}));
    nodes.back()->listen();
  }
  Rng traffic(seed, 5);
  for (int pkt = 0; pkt < 300; ++pkt) {
    const auto src = static_cast<std::size_t>(traffic.below(12));
    const Time at = static_cast<Time>(traffic.below(1'000'000));
    sched.schedule_at(at, [&nodes, src] {
      nodes[src]->radio.transmit(
          make_frame(nodes[src]->radio.id(), kBroadcastNode, 30), nullptr);
    });
  }
  sched.run_all();
  return medium.stats();
}
}  // namespace

TEST(RadioDeterminism, IdenticalSeedsYieldIdenticalStats) {
  const MediumStats s1 = run_contended_mesh(77);
  const MediumStats s2 = run_contended_mesh(77);
  EXPECT_GT(s1.transmissions, 0u);
  EXPECT_GT(s1.deliveries, 0u);
  EXPECT_GT(s1.collisions, 0u);  // the scenario must actually contend
  EXPECT_EQ(s1.transmissions, s2.transmissions);
  EXPECT_EQ(s1.deliveries, s2.deliveries);
  EXPECT_EQ(s1.collisions, s2.collisions);
  EXPECT_EQ(s1.snr_losses, s2.snr_losses);
  EXPECT_EQ(s1.aborted, s2.aborted);

  const MediumStats s3 = run_contended_mesh(78);  // and seeds do matter
  EXPECT_NE(s1.deliveries, s3.deliveries);
}

TEST_F(RadioTest, CrossTenantFramesStillCollide) {
  TestNode a(medium, sched, 1, {0, 0});
  TestNode b(medium, sched, 2, {20, 10});
  TestNode rx(medium, sched, 3, {10, 5});
  rx.listen();
  a.radio.set_mode(Mode::kListen);
  b.radio.set_mode(Mode::kListen);
  Frame fa = make_frame(1, 3, 40);
  fa.tenant = 1;
  Frame fb = make_frame(2, kBroadcastNode, 40);
  fb.tenant = 2;  // different administrative domain, same spectrum
  a.radio.transmit(fa, nullptr);
  sched.schedule_at(100, [&] { b.radio.transmit(fb, nullptr); });
  sched.run_all();
  EXPECT_EQ(rx.rx_count, 0);
  EXPECT_GE(medium.stats().collisions, 1u);
}

}  // namespace
}  // namespace iiot::radio
