#include "security/secure_link.hpp"

#include <cstring>

namespace iiot::security {

CcmNonce SecureLink::make_nonce(NodeId src, std::uint32_t counter) const {
  CcmNonce n{};
  n[0] = static_cast<std::uint8_t>(src >> 24);
  n[1] = static_cast<std::uint8_t>(src >> 16);
  n[2] = static_cast<std::uint8_t>(src >> 8);
  n[3] = static_cast<std::uint8_t>(src);
  n[4] = static_cast<std::uint8_t>(counter >> 24);
  n[5] = static_cast<std::uint8_t>(counter >> 16);
  n[6] = static_cast<std::uint8_t>(counter >> 8);
  n[7] = static_cast<std::uint8_t>(counter);
  n[8] = static_cast<std::uint8_t>(level_);
  return n;  // bytes 9..12 zero
}

Buffer SecureLink::protect(NodeId src, BytesView payload) {
  ++stats_.protected_frames;
  if (level_ == SecurityLevel::kNone) {
    return Buffer(payload.begin(), payload.end());
  }
  const std::uint32_t counter = ++tx_counter_;
  Buffer out;
  BufWriter w(out);
  w.u8(static_cast<std::uint8_t>(level_));
  w.u32(counter);

  // AAD: level, counter, source address.
  Buffer aad;
  BufWriter aw(aad);
  aw.u8(static_cast<std::uint8_t>(level_));
  aw.u32(counter);
  aw.u32(src);

  const CcmNonce nonce = make_nonce(src, counter);
  const std::size_t mic = mic_length(level_);
  if (has_encryption(level_)) {
    Buffer sealed = ccm_.seal(nonce, aad, payload, mic);
    w.bytes(sealed);
  } else {
    // MIC-only: payload in clear, tag over aad || payload.
    w.bytes(payload);
    Buffer t = ccm_.tag(nonce, aad, payload, mic);
    w.bytes(t);
  }
  return out;
}

Result<Buffer> SecureLink::unprotect(NodeId src, BytesView frame) {
  if (level_ == SecurityLevel::kNone) {
    ++stats_.opened_frames;
    return Buffer(frame.begin(), frame.end());
  }
  BufReader r(frame);
  auto lvl = r.u8();
  auto counter = r.u32();
  if (!lvl || !counter) {
    ++stats_.malformed;
    return Error{Error::Code::kMalformed, "seclink: truncated header"};
  }
  if (*lvl != static_cast<std::uint8_t>(level_)) {
    ++stats_.auth_failures;
    return Error{Error::Code::kSecurity, "seclink: level mismatch"};
  }
  // Replay: require strictly increasing counters per source.
  auto it = rx_counters_.find(src);
  if (it != rx_counters_.end() && *counter <= it->second) {
    ++stats_.replay_drops;
    return Error{Error::Code::kSecurity, "seclink: replayed counter"};
  }

  Buffer aad;
  BufWriter aw(aad);
  aw.u8(*lvl);
  aw.u32(*counter);
  aw.u32(src);

  const CcmNonce nonce = make_nonce(src, *counter);
  const std::size_t mic = mic_length(level_);
  BytesView body = r.rest();

  Buffer plain;
  if (has_encryption(level_)) {
    auto opened = ccm_.open(nonce, aad, body, mic);
    if (!opened) {
      ++stats_.auth_failures;
      return Error{Error::Code::kSecurity, "seclink: bad MIC"};
    }
    plain = std::move(*opened);
  } else {
    if (body.size() < mic) {
      ++stats_.malformed;
      return Error{Error::Code::kMalformed, "seclink: short frame"};
    }
    BytesView msg = body.subspan(0, body.size() - mic);
    BytesView tag = body.subspan(body.size() - mic);
    if (!ccm_.verify_tag(nonce, aad, msg, tag)) {
      ++stats_.auth_failures;
      return Error{Error::Code::kSecurity, "seclink: bad MIC"};
    }
    plain.assign(msg.begin(), msg.end());
  }
  rx_counters_[src] = *counter;
  ++stats_.opened_frames;
  return plain;
}

}  // namespace iiot::security
