// SHA-256 and HMAC-SHA256 (FIPS 180-4 / RFC 2104): used for key
// derivation and gateway-side authentication in the interop layer.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace iiot::security {

using Sha256Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  [[nodiscard]] Sha256Digest finish();

  static Sha256Digest hash(BytesView data) {
    Sha256 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_ = 0;
};

/// HMAC-SHA256 (RFC 2104).
Sha256Digest hmac_sha256(BytesView key, BytesView message);

/// HKDF-style key derivation: derives a 16-byte AES key from a master
/// secret and a context label (simple single-block expand).
std::array<std::uint8_t, 16> derive_key(BytesView master,
                                        BytesView context);

}  // namespace iiot::security
