#include "security/ccm.hpp"

#include <algorithm>
#include <cstring>

namespace iiot::security {

AesBlock AesCcm::a_block(const CcmNonce& nonce, std::uint16_t counter) const {
  AesBlock a{};
  a[0] = 0x01;  // flags: L' = L - 1 = 1
  std::memcpy(a.data() + 1, nonce.data(), nonce.size());
  a[14] = static_cast<std::uint8_t>(counter >> 8);
  a[15] = static_cast<std::uint8_t>(counter & 0xFF);
  return a;
}

AesBlock AesCcm::cbc_mac(const CcmNonce& nonce, BytesView aad,
                         BytesView message, std::size_t mic_len) const {
  AesBlock x{};
  // B0: flags | nonce | message length.
  x[0] = static_cast<std::uint8_t>(
      (aad.empty() ? 0 : 0x40) |
      (((mic_len > 0 ? mic_len : 2) - 2) / 2) << 3 | 0x01);
  std::memcpy(x.data() + 1, nonce.data(), nonce.size());
  x[14] = static_cast<std::uint8_t>(message.size() >> 8);
  x[15] = static_cast<std::uint8_t>(message.size() & 0xFF);
  aes_.encrypt_block(x);

  auto absorb = [this, &x](BytesView data, std::size_t offset_in_block) {
    std::size_t pos = 0;
    std::size_t block_off = offset_in_block;
    while (pos < data.size()) {
      for (; block_off < 16 && pos < data.size(); ++block_off, ++pos) {
        x[block_off] ^= data[pos];
      }
      aes_.encrypt_block(x);
      block_off = 0;
    }
    return block_off;
  };

  if (!aad.empty()) {
    // AAD prefixed with its 2-byte length, padded to a block boundary.
    AesBlock first{};
    first[0] = static_cast<std::uint8_t>(aad.size() >> 8);
    first[1] = static_cast<std::uint8_t>(aad.size() & 0xFF);
    const std::size_t take = std::min<std::size_t>(aad.size(), 14);
    std::memcpy(first.data() + 2, aad.data(), take);
    for (int i = 0; i < 16; ++i) {
      x[static_cast<size_t>(i)] ^= first[static_cast<size_t>(i)];
    }
    aes_.encrypt_block(x);
    if (aad.size() > take) absorb(aad.subspan(take), 0);
  }
  if (!message.empty()) absorb(message, 0);
  return x;
}

void AesCcm::ctr_crypt(const CcmNonce& nonce, Buffer& data) const {
  std::uint16_t counter = 1;
  std::size_t pos = 0;
  while (pos < data.size()) {
    AesBlock s = a_block(nonce, counter++);
    aes_.encrypt_block(s);
    const std::size_t n = std::min<std::size_t>(16, data.size() - pos);
    for (std::size_t i = 0; i < n; ++i) data[pos + i] ^= s[i];
    pos += n;
  }
}

Buffer AesCcm::seal(const CcmNonce& nonce, BytesView aad, BytesView plaintext,
                    std::size_t mic_len) const {
  Buffer out(plaintext.begin(), plaintext.end());
  AesBlock t{};
  if (mic_len > 0) t = cbc_mac(nonce, aad, plaintext, mic_len);
  ctr_crypt(nonce, out);
  if (mic_len > 0) {
    // MIC = T xor S0.
    AesBlock s0 = a_block(nonce, 0);
    aes_.encrypt_block(s0);
    for (std::size_t i = 0; i < mic_len; ++i) {
      out.push_back(static_cast<std::uint8_t>(t[i] ^ s0[i]));
    }
  }
  return out;
}

std::optional<Buffer> AesCcm::open(const CcmNonce& nonce, BytesView aad,
                                   BytesView sealed,
                                   std::size_t mic_len) const {
  if (sealed.size() < mic_len) return std::nullopt;
  Buffer body(sealed.begin(), sealed.end() - static_cast<std::ptrdiff_t>(mic_len));
  BytesView mic = sealed.subspan(sealed.size() - mic_len);
  ctr_crypt(nonce, body);
  if (mic_len > 0) {
    AesBlock t = cbc_mac(nonce, aad, body, mic_len);
    AesBlock s0 = a_block(nonce, 0);
    aes_.encrypt_block(s0);
    std::uint8_t diff = 0;  // constant-time comparison
    for (std::size_t i = 0; i < mic_len; ++i) {
      diff |= static_cast<std::uint8_t>(mic[i] ^ t[i] ^ s0[i]);
    }
    if (diff != 0) return std::nullopt;
  }
  return body;
}

Buffer AesCcm::tag(const CcmNonce& nonce, BytesView aad, BytesView message,
                   std::size_t mic_len) const {
  AesBlock t = cbc_mac(nonce, aad, message, mic_len);
  AesBlock s0 = a_block(nonce, 0);
  aes_.encrypt_block(s0);
  Buffer out;
  for (std::size_t i = 0; i < mic_len; ++i) {
    out.push_back(static_cast<std::uint8_t>(t[i] ^ s0[i]));
  }
  return out;
}

bool AesCcm::verify_tag(const CcmNonce& nonce, BytesView aad,
                        BytesView message, BytesView mic) const {
  Buffer expected = tag(nonce, aad, message, mic.size());
  if (expected.size() != mic.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < mic.size(); ++i) diff |= expected[i] ^ mic[i];
  return diff == 0;
}

}  // namespace iiot::security
