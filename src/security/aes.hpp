// Software AES-128 block cipher (FIPS-197), encrypt-only — CCM* needs
// only the forward direction. Written the way a constrained-device stack
// would carry it: table-based S-box, no hardware assumptions. The block
// counter feeds the cycle-cost model used by the E10 security-overhead
// experiment.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace iiot::security {

using AesKey = std::array<std::uint8_t, 16>;
using AesBlock = std::array<std::uint8_t, 16>;

class Aes128 {
 public:
  explicit Aes128(const AesKey& key) { expand_key(key); }

  /// Encrypts one 16-byte block in place.
  void encrypt_block(AesBlock& block) const;

  /// Total blocks processed by this instance (cost accounting).
  [[nodiscard]] std::uint64_t blocks_processed() const { return blocks_; }

  /// Approximate software cycle cost per block on a Cortex-M0-class MCU.
  static constexpr std::uint64_t kCyclesPerBlock = 4200;

 private:
  void expand_key(const AesKey& key);

  std::array<std::uint8_t, 176> round_keys_{};
  mutable std::uint64_t blocks_ = 0;
};

}  // namespace iiot::security
