// AES-CCM authenticated encryption (RFC 3610 / CCM* of 802.15.4).
//
// CCM = CBC-MAC for authentication + CTR mode for confidentiality, both
// built on the AES-128 forward function only — which is why it is the
// mode of choice on constrained radios. L = 2 (length field of 2 bytes),
// nonce = 13 bytes, MIC length M ∈ {0, 4, 8, 16}. M = 0 yields CTR-only
// encryption (the 802.15.4 "ENC" level).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "security/aes.hpp"

namespace iiot::security {

using CcmNonce = std::array<std::uint8_t, 13>;

class AesCcm {
 public:
  explicit AesCcm(const AesKey& key) : aes_(key) {}

  /// Encrypts `plaintext` and authenticates `aad || plaintext`.
  /// Returns ciphertext with the `mic_len`-byte MIC appended.
  [[nodiscard]] Buffer seal(const CcmNonce& nonce, BytesView aad,
                            BytesView plaintext, std::size_t mic_len) const;

  /// Verifies and decrypts; std::nullopt on authentication failure.
  [[nodiscard]] std::optional<Buffer> open(const CcmNonce& nonce,
                                           BytesView aad, BytesView sealed,
                                           std::size_t mic_len) const;

  /// Authentication-only (MIC over aad || message, message in clear).
  [[nodiscard]] Buffer tag(const CcmNonce& nonce, BytesView aad,
                           BytesView message, std::size_t mic_len) const;
  [[nodiscard]] bool verify_tag(const CcmNonce& nonce, BytesView aad,
                                BytesView message, BytesView mic) const;

  [[nodiscard]] std::uint64_t blocks_processed() const {
    return aes_.blocks_processed();
  }

 private:
  [[nodiscard]] AesBlock cbc_mac(const CcmNonce& nonce, BytesView aad,
                                 BytesView message,
                                 std::size_t mic_len) const;
  void ctr_crypt(const CcmNonce& nonce, Buffer& data) const;
  [[nodiscard]] AesBlock a_block(const CcmNonce& nonce,
                                 std::uint16_t counter) const;

  Aes128 aes_;
};

}  // namespace iiot::security
