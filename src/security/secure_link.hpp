// 802.15.4-style link-layer security envelope.
//
// The paper (§V-E) notes that although "networking standards for such
// devices do include provisions for a range of secure modes [14], they
// are hardly implemented [46]" — largely because of their cost on
// constrained hardware. This module implements the full range of levels
// (MIC-only, ENC-only, ENC+MIC at 32/64/128-bit tags) with real CCM*
// cryptography so that E10 can quantify exactly that cost: bytes on air,
// CPU cycles, and energy per message.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/types.hpp"
#include "security/ccm.hpp"
#include "security/sha256.hpp"

namespace iiot::security {

/// 802.15.4 security levels (Table 9-6 of the standard).
enum class SecurityLevel : std::uint8_t {
  kNone = 0,
  kMic32 = 1,
  kMic64 = 2,
  kMic128 = 3,
  kEnc = 4,
  kEncMic32 = 5,
  kEncMic64 = 6,
  kEncMic128 = 7,
};

[[nodiscard]] constexpr std::size_t mic_length(SecurityLevel l) {
  switch (l) {
    case SecurityLevel::kMic32:
    case SecurityLevel::kEncMic32: return 4;
    case SecurityLevel::kMic64:
    case SecurityLevel::kEncMic64: return 8;
    case SecurityLevel::kMic128:
    case SecurityLevel::kEncMic128: return 16;
    default: return 0;
  }
}

[[nodiscard]] constexpr bool has_encryption(SecurityLevel l) {
  return static_cast<std::uint8_t>(l) >= 4;
}

[[nodiscard]] constexpr const char* level_name(SecurityLevel l) {
  switch (l) {
    case SecurityLevel::kNone: return "none";
    case SecurityLevel::kMic32: return "mic-32";
    case SecurityLevel::kMic64: return "mic-64";
    case SecurityLevel::kMic128: return "mic-128";
    case SecurityLevel::kEnc: return "enc";
    case SecurityLevel::kEncMic32: return "enc-mic-32";
    case SecurityLevel::kEncMic64: return "enc-mic-64";
    case SecurityLevel::kEncMic128: return "enc-mic-128";
  }
  return "?";
}

/// Per-tenant network keys with HKDF-style derivation from a master
/// secret (the commissioning credential).
class KeyStore {
 public:
  void set_master(Buffer master) { master_ = std::move(master); }

  [[nodiscard]] AesKey network_key(TenantId tenant) const {
    Buffer ctx = to_buffer("iiot-net-key/");
    ctx.push_back(static_cast<std::uint8_t>(tenant >> 8));
    ctx.push_back(static_cast<std::uint8_t>(tenant & 0xFF));
    return derive_key(master_, ctx);
  }

 private:
  Buffer master_ = to_buffer("default-master-secret");
};

struct SecureLinkStats {
  std::uint64_t protected_frames = 0;
  std::uint64_t opened_frames = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t replay_drops = 0;
  std::uint64_t malformed = 0;
};

/// Protects/unprotects link payloads. The auxiliary security header —
/// [level:1][frame counter:4] — is authenticated as AAD together with the
/// source address, and the frame counter provides replay protection.
class SecureLink {
 public:
  SecureLink(const AesKey& key, SecurityLevel level)
      : ccm_(key), level_(level) {}

  /// Wire overhead added to every payload at this level.
  [[nodiscard]] std::size_t overhead_bytes() const {
    return level_ == SecurityLevel::kNone ? 0 : 5 + mic_length(level_);
  }

  [[nodiscard]] SecurityLevel level() const { return level_; }

  /// Wraps `payload` from `src`. Always succeeds.
  [[nodiscard]] Buffer protect(NodeId src, BytesView payload);

  /// Unwraps a frame from `src`; authenticates, decrypts, and enforces a
  /// strictly increasing frame counter per source.
  [[nodiscard]] Result<Buffer> unprotect(NodeId src, BytesView frame);

  [[nodiscard]] const SecureLinkStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t aes_blocks() const {
    return ccm_.blocks_processed();
  }

  /// Estimated CPU cycles spent on crypto so far (software AES).
  [[nodiscard]] std::uint64_t estimated_cycles() const {
    return ccm_.blocks_processed() * Aes128::kCyclesPerBlock;
  }

 private:
  [[nodiscard]] CcmNonce make_nonce(NodeId src, std::uint32_t counter) const;

  AesCcm ccm_;
  SecurityLevel level_;
  std::uint32_t tx_counter_ = 0;
  std::unordered_map<NodeId, std::uint32_t> rx_counters_;
  SecureLinkStats stats_;
};

}  // namespace iiot::security
