#include "security/sha256.hpp"

#include <cstring>

namespace iiot::security {

namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

void Sha256::reset() {
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  buffered_ = 0;
  total_ = 0;
}

void Sha256::update(BytesView data) {
  total_ += data.size();
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t n =
        std::min<std::size_t>(64 - buffered_, data.size() - pos);
    std::memcpy(buffer_.data() + buffered_, data.data() + pos, n);
    buffered_ += n;
    pos += n;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
}

Sha256Digest Sha256::finish() {
  const std::uint64_t bit_len = total_ * 8;
  const std::uint8_t pad = 0x80;
  update(BytesView(&pad, 1));
  const std::uint8_t zero = 0;
  while (buffered_ != 56) update(BytesView(&zero, 1));
  std::array<std::uint8_t, 8> len{};
  for (int i = 0; i < 8; ++i) {
    len[static_cast<size_t>(i)] =
        static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  }
  update(len);
  Sha256Digest out{};
  for (int i = 0; i < 8; ++i) {
    out[static_cast<size_t>(i * 4)] = static_cast<std::uint8_t>(state_[static_cast<size_t>(i)] >> 24);
    out[static_cast<size_t>(i * 4 + 1)] = static_cast<std::uint8_t>(state_[static_cast<size_t>(i)] >> 16);
    out[static_cast<size_t>(i * 4 + 2)] = static_cast<std::uint8_t>(state_[static_cast<size_t>(i)] >> 8);
    out[static_cast<size_t>(i * 4 + 3)] = static_cast<std::uint8_t>(state_[static_cast<size_t>(i)]);
  }
  reset();
  return out;
}

void Sha256::process_block(const std::uint8_t* p) {
  std::array<std::uint32_t, 64> w{};
  for (int i = 0; i < 16; ++i) {
    w[static_cast<size_t>(i)] = (static_cast<std::uint32_t>(p[i * 4]) << 24) |
                                (static_cast<std::uint32_t>(p[i * 4 + 1]) << 16) |
                                (static_cast<std::uint32_t>(p[i * 4 + 2]) << 8) |
                                p[i * 4 + 3];
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 = rotr(w[static_cast<size_t>(i - 15)], 7) ^
                             rotr(w[static_cast<size_t>(i - 15)], 18) ^
                             (w[static_cast<size_t>(i - 15)] >> 3);
    const std::uint32_t s1 = rotr(w[static_cast<size_t>(i - 2)], 17) ^
                             rotr(w[static_cast<size_t>(i - 2)], 19) ^
                             (w[static_cast<size_t>(i - 2)] >> 10);
    w[static_cast<size_t>(i)] =
        w[static_cast<size_t>(i - 16)] + s0 + w[static_cast<size_t>(i - 7)] + s1;
  }
  auto [a, b, c, d, e, f, g, h] = state_;
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kK[static_cast<size_t>(i)] + w[static_cast<size_t>(i)];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

Sha256Digest hmac_sha256(BytesView key, BytesView message) {
  std::array<std::uint8_t, 64> k{};
  if (key.size() > 64) {
    const Sha256Digest kh = Sha256::hash(key);
    std::memcpy(k.data(), kh.data(), kh.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }
  std::array<std::uint8_t, 64> ipad{}, opad{};
  for (int i = 0; i < 64; ++i) {
    ipad[static_cast<size_t>(i)] = k[static_cast<size_t>(i)] ^ 0x36;
    opad[static_cast<size_t>(i)] = k[static_cast<size_t>(i)] ^ 0x5c;
  }
  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const Sha256Digest inner_digest = inner.finish();
  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

std::array<std::uint8_t, 16> derive_key(BytesView master, BytesView context) {
  const Sha256Digest prk = hmac_sha256(master, context);
  std::array<std::uint8_t, 16> key{};
  std::memcpy(key.data(), prk.data(), key.size());
  return key;
}

}  // namespace iiot::security
