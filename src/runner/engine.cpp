#include "runner/engine.hpp"

#include <stdexcept>

namespace iiot::runner {

unsigned hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

Engine::Engine(unsigned jobs) : jobs_(jobs == 0 ? hardware_jobs() : jobs) {
  if (jobs_ > 1) {
    workers_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i) {
      workers_.emplace_back([this] { worker(); });
    }
  }
}

Engine::~Engine() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }
}

std::size_t Engine::run(std::size_t tasks, const Task& body,
                        const StopAfter& stop_after) {
  if (tasks == 0) return 0;

  if (jobs_ <= 1) {
    // Inline reference execution: identical semantics, zero machinery.
    std::size_t executed = 0;
    for (std::size_t i = 0; i < tasks; ++i) {
      body(i);
      ++executed;
      if (stop_after && stop_after(i)) break;
    }
    return executed;
  }

  std::unique_lock<std::mutex> lk(mu_);
  if (body_ != nullptr) {
    throw std::logic_error("runner::Engine::run called from inside a task");
  }
  body_ = &body;
  stop_after_ = stop_after ? &stop_after : nullptr;
  tasks_ = tasks;
  next_ = 0;
  active_ = 0;
  executed_ = 0;
  stop_ = false;
  first_error_ = nullptr;
  first_error_index_ = 0;
  work_cv_.notify_all();
  done_cv_.wait(lk, [this] { return batch_done(); });
  body_ = nullptr;
  stop_after_ = nullptr;
  const std::size_t executed = executed_;
  std::exception_ptr err = first_error_;
  first_error_ = nullptr;
  lk.unlock();
  if (err) std::rethrow_exception(err);
  return executed;
}

void Engine::worker() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] {
      return shutdown_ || (body_ != nullptr && next_ < tasks_ && !stop_);
    });
    if (shutdown_) return;

    const std::size_t i = next_++;  // ascending claims: executed set is a prefix
    ++active_;
    const Task* body = body_;
    const StopAfter* stop_after = stop_after_;
    lk.unlock();

    bool stop_now = false;
    std::exception_ptr err;
    try {
      (*body)(i);
      if (stop_after != nullptr) stop_now = (*stop_after)(i);
    } catch (...) {
      err = std::current_exception();
    }

    lk.lock();
    --active_;
    ++executed_;
    if (err) {
      if (!first_error_ || i < first_error_index_) {
        first_error_ = err;
        first_error_index_ = i;
      }
      stop_ = true;
    }
    if (stop_now) stop_ = true;
    if (batch_done()) done_cv_.notify_all();
  }
}

}  // namespace iiot::runner
