// Parallel scenario-execution engine (DESIGN.md §4e).
//
// Shards a batch of independent tasks — fuzz seeds, bench repetitions,
// experiment parameter points — across a fixed pool of worker threads.
// Each task owns a fully isolated simulated world (its own Scheduler,
// Medium, System, Rng, obs::Context), so workers share no simulation
// state at all; the only cross-thread traffic is the engine's own queue
// bookkeeping and the per-task result slots.
//
// Determinism contract (the whole point of this module):
//   * Tasks are identified by their index in [0, tasks). Callers write
//     results into pre-sized slots keyed by that index, never into shared
//     accumulators, so aggregated output is a pure function of the task
//     set — byte-identical regardless of thread count or completion
//     order. `--jobs=8` must produce the same artifacts as `--jobs=1`.
//   * Indices are claimed in ascending order from a single queue, so the
//     set of executed tasks is always a prefix {0..K} of the batch. With
//     early stop (`stop_after`) or a throwing task, K varies with
//     timing — but the *lowest* interesting index does not: every index
//     below it was claimed earlier and runs to completion. Aggregations
//     that scan slots in index order and stop at the first hit are
//     therefore jobs-invariant even under cancellation.
//   * Exceptions: the lowest-index throwing task wins; its exception is
//     rethrown from run() after the batch drains. Identical to what a
//     serial loop would have thrown.
//
// jobs == 1 runs tasks inline on the calling thread (no workers, no
// synchronization) — this is the reference execution the determinism
// self-checks diff against, and it keeps single-job perf baselines free
// of pool overhead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace iiot::runner {

/// Worker count matching the machine (>= 1 even when the runtime cannot
/// tell). `Engine(0)` resolves to this.
[[nodiscard]] unsigned hardware_jobs();

class Engine {
 public:
  /// A pool of `jobs` workers (0 → hardware_jobs()). jobs == 1 spawns no
  /// threads at all.
  explicit Engine(unsigned jobs = 1);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] unsigned jobs() const { return jobs_; }

  using Task = std::function<void(std::size_t)>;
  using StopAfter = std::function<bool(std::size_t)>;

  /// Runs body(i) for i in [0, tasks), sharded across the pool. Blocks
  /// until every claimed task finished. If `stop_after` is provided and
  /// returns true for a completed index, no further indices are claimed
  /// (in-flight tasks still complete). Returns the number of tasks
  /// executed — informational only: under early stop it depends on
  /// timing, so it must never feed a determinism-contract artifact.
  ///
  /// Not reentrant on a multi-job engine: calling run() from inside a
  /// task throws std::logic_error (serial engines nest fine).
  std::size_t run(std::size_t tasks, const Task& body,
                  const StopAfter& stop_after = {});

 private:
  void worker();
  [[nodiscard]] bool batch_done() const {
    return active_ == 0 && (next_ >= tasks_ || stop_);
  }

  unsigned jobs_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Current batch (valid while body_ != nullptr); guarded by mu_.
  const Task* body_ = nullptr;
  const StopAfter* stop_after_ = nullptr;
  std::size_t tasks_ = 0;
  std::size_t next_ = 0;      // next unclaimed index (ascending claims)
  std::size_t active_ = 0;    // claimed, not yet finished
  std::size_t executed_ = 0;
  bool stop_ = false;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
  std::size_t first_error_index_ = 0;
};

/// Slot-collecting map: out[i] = fn(i), aggregation-safe at any job count
/// because each task writes exactly one pre-sized slot.
template <typename R>
[[nodiscard]] std::vector<R> map(Engine& eng, std::size_t n,
                                 const std::function<R(std::size_t)>& fn) {
  std::vector<R> out(n);
  eng.run(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace iiot::runner
