// Simulated backend network for the data-storage tier: point-to-point
// datagrams with latency, plus partition injection. This substitutes for
// the WAN links between sites/data centers that the paper's geographic-
// and availability-scalability discussion assumes (§IV-B, §V-C).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crdt/vector_clock.hpp"
#include "sim/scheduler.hpp"

namespace iiot::replication {

using crdt::ReplicaId;

struct BackendNetConfig {
  sim::Duration min_latency = 5'000;    // 5 ms
  sim::Duration max_latency = 50'000;   // 50 ms
  double loss = 0.0;
};

class BackendNet {
 public:
  using Handler = std::function<void(ReplicaId from, BytesView)>;

  BackendNet(sim::Scheduler& sched, Rng rng, BackendNetConfig cfg = {})
      : sched_(sched), rng_(rng), cfg_(cfg) {}

  void attach(ReplicaId id, Handler h) { handlers_[id] = std::move(h); }

  /// Sends bytes from → to. Silently dropped across partition boundaries
  /// (that is the point: senders cannot tell a partition from slowness).
  void send(ReplicaId from, ReplicaId to, Buffer bytes) {
    ++messages_;
    bytes_ += bytes.size();
    if (!connected(from, to) || rng_.chance(cfg_.loss)) return;
    const auto latency = static_cast<sim::Duration>(rng_.range(
        static_cast<std::int64_t>(cfg_.min_latency),
        static_cast<std::int64_t>(cfg_.max_latency)));
    sched_.schedule_after(latency, [this, from, to,
                                    bytes = std::move(bytes)] {
      auto it = handlers_.find(to);
      if (it != handlers_.end()) it->second(from, bytes);
    });
  }

  /// Splits replicas into groups; traffic crosses groups only if both
  /// endpoints share one. Unlisted replicas form an implicit last group.
  void set_partition(std::vector<std::vector<ReplicaId>> groups) {
    group_of_.clear();
    int g = 1;
    for (const auto& members : groups) {
      for (ReplicaId r : members) group_of_[r] = g;
      ++g;
    }
    partitioned_ = true;
  }

  void heal() {
    group_of_.clear();
    partitioned_ = false;
  }

  [[nodiscard]] bool partitioned() const { return partitioned_; }
  [[nodiscard]] bool connected(ReplicaId a, ReplicaId b) const {
    if (!partitioned_) return true;
    auto ga = group_of_.find(a);
    auto gb = group_of_.find(b);
    const int va = ga == group_of_.end() ? 0 : ga->second;
    const int vb = gb == group_of_.end() ? 0 : gb->second;
    return va == vb;
  }

  [[nodiscard]] std::uint64_t messages() const { return messages_; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }

 private:
  sim::Scheduler& sched_;
  Rng rng_;
  BackendNetConfig cfg_;
  std::unordered_map<ReplicaId, Handler> handlers_;
  std::unordered_map<ReplicaId, int> group_of_;
  bool partitioned_ = false;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace iiot::replication
