#include "replication/kv.hpp"

#include <utility>

namespace iiot::replication {

namespace {
enum MsgTag : std::uint8_t {
  kGossip = 1,
  kWriteReq = 2,    // origin -> primary: req_id, key, value
  kReplicate = 3,   // primary -> backup: req_id, key, value
  kRepAck = 4,      // backup -> primary: req_id
  kWriteResp = 5,   // primary -> origin: req_id, ok
  kCommit = 6,      // primary -> backup: req_id, key, value (apply; the
                    // payload rides along so a commit that overtakes its
                    // replicate on the network still applies)
};
}  // namespace

// --------------------------------------------------------------------- AP

ApReplica::ApReplica(ReplicaId id, std::vector<ReplicaId> peers,
                     BackendNet& net, sim::Scheduler& sched, Rng rng,
                     ApConfig cfg)
    : id_(id),
      peers_(std::move(peers)),
      net_(net),
      sched_(sched),
      rng_(rng),
      cfg_(cfg) {
  std::erase(peers_, id_);
  net_.attach(id_, [this](ReplicaId from, BytesView b) {
    on_message(from, b);
  });
}

void ApReplica::start() {
  running_ = true;
  timer_ = sched_.schedule_after(
      cfg_.gossip_interval +
          rng_.below(static_cast<std::uint32_t>(cfg_.gossip_interval)),
      [this] { gossip(); });
}

void ApReplica::stop() {
  running_ = false;
  timer_.cancel();
}

bool ApReplica::put(const std::string& key, std::string value) {
  state_.apply(id_, key, [&](crdt::LwwRegister<std::string>& reg) {
    reg.set(id_, sched_.now(), std::move(value));
  });
  return true;  // AP: local writes always succeed
}

void ApReplica::remove(const std::string& key) { state_.remove(key); }

std::optional<std::string> ApReplica::get(const std::string& key) const {
  const auto* reg = state_.get(key);
  if (reg == nullptr) return std::nullopt;
  return reg->get();
}

bool ApReplica::same_state_as(const ApReplica& other) const {
  if (state_.keys() != other.state_.keys()) return false;
  for (const auto& k : state_.keys()) {
    const auto* a = state_.get(k);
    const auto* b = other.state_.get(k);
    if ((a == nullptr) != (b == nullptr)) return false;
    if (a != nullptr && a->get() != b->get()) return false;
  }
  return true;
}

void ApReplica::gossip() {
  if (!running_) return;
  timer_ = sched_.schedule_after(cfg_.gossip_interval, [this] { gossip(); });
  if (peers_.empty()) return;
  ++rounds_;
  Buffer out;
  BufWriter w(out);
  w.u8(kGossip);
  state_.encode(w);
  for (int i = 0; i < cfg_.fanout; ++i) {
    const ReplicaId peer =
        peers_[rng_.below(static_cast<std::uint32_t>(peers_.size()))];
    net_.send(id_, peer, out);
  }
}

void ApReplica::on_message(ReplicaId from, BytesView bytes) {
  (void)from;
  if (bytes.empty() || bytes[0] != kGossip) return;
  BufReader r(bytes.subspan(1));
  auto remote = KvState::decode(r);
  if (remote) state_.merge(*remote);
}

// --------------------------------------------------------------------- CP

CpReplica::CpReplica(ReplicaId id, ReplicaId primary,
                     std::vector<ReplicaId> all, BackendNet& net,
                     sim::Scheduler& sched, Rng rng, CpConfig cfg)
    : id_(id),
      primary_(primary),
      all_(std::move(all)),
      net_(net),
      sched_(sched),
      rng_(rng),
      cfg_(cfg) {
  net_.attach(id_, [this](ReplicaId from, BytesView b) {
    on_message(from, b);
  });
}

void CpReplica::start() { running_ = true; }
void CpReplica::stop() { running_ = false; }

void CpReplica::put(const std::string& key, std::string value,
                    PutCallback cb) {
  if (!running_) {
    if (cb) cb(false);
    return;
  }
  const std::uint64_t req = next_req_++;
  if (is_primary()) {
    // Coordinate locally.
    auto& fl = in_flight_[req];
    fl.key = key;
    fl.value = value;
    fl.acks = 1;  // self
    fl.origin = id_;
    fl.cb = std::move(cb);
    fl.timer = sched_.schedule_after(cfg_.request_timeout,
                                     [this, req] { finish(req, false); });
    Buffer out;
    BufWriter w(out);
    w.u8(kReplicate);
    w.u64(req);
    w.lp_str(key);
    w.lp_str(value);
    for (ReplicaId r : all_) {
      if (r != id_) net_.send(id_, r, out);
    }
    if (fl.acks >= majority()) finish(req, true);
    return;
  }
  // Forward to primary and wait (bounded) for the verdict.
  client_waits_[req] = std::move(cb);
  sched_.schedule_after(cfg_.request_timeout, [this, req] {
    auto it = client_waits_.find(req);
    if (it == client_waits_.end()) return;
    auto handler = std::move(it->second);
    client_waits_.erase(it);
    if (handler) handler(false);  // primary unreachable / quorum failed
  });
  Buffer out;
  BufWriter w(out);
  w.u8(kWriteReq);
  w.u64(req);
  w.lp_str(key);
  w.lp_str(value);
  net_.send(id_, primary_, std::move(out));
}

std::optional<std::string> CpReplica::get(const std::string& key) const {
  auto it = committed_.find(key);
  if (it == committed_.end()) return std::nullopt;
  return it->second;
}

void CpReplica::on_message(ReplicaId from, BytesView bytes) {
  if (!running_ || bytes.empty()) return;
  BufReader r(bytes.subspan(1));
  switch (bytes[0]) {
    case kWriteReq: {
      if (!is_primary()) return;
      auto req = r.u64();
      auto key = r.lp_str();
      auto value = r.lp_str();
      if (!req || !key || !value) return;
      const std::uint64_t local_req = next_req_++;
      auto& fl = in_flight_[local_req];
      fl.key = *key;
      fl.value = *value;
      fl.acks = 1;
      fl.origin = from;
      fl.origin_req = *req;
      fl.timer = sched_.schedule_after(
          cfg_.request_timeout, [this, local_req] { finish(local_req, false); });
      Buffer out;
      BufWriter w(out);
      w.u8(kReplicate);
      w.u64(local_req);
      w.lp_str(*key);
      w.lp_str(*value);
      for (ReplicaId rep : all_) {
        if (rep != id_) net_.send(id_, rep, out);
      }
      return;
    }
    case kReplicate: {
      auto req = r.u64();
      auto key = r.lp_str();
      auto value = r.lp_str();
      if (!req || !key || !value) return;
      // Two-phase: stage now, apply only on commit, so reads at backups
      // never expose writes that failed to reach a quorum.
      pending_[*req] = {*key, *value};
      Buffer out;
      BufWriter w(out);
      w.u8(kRepAck);
      w.u64(*req);
      net_.send(id_, from, std::move(out));
      return;
    }
    case kCommit: {
      auto req = r.u64();
      auto key = r.lp_str();
      auto value = r.lp_str();
      if (!req || !key || !value) return;
      committed_[*key] = *value;
      pending_.erase(*req);
      return;
    }
    case kRepAck: {
      auto req = r.u64();
      if (!req) return;
      auto it = in_flight_.find(*req);
      if (it == in_flight_.end() || it->second.done) return;
      if (++it->second.acks >= majority()) finish(*req, true);
      return;
    }
    case kWriteResp: {
      auto req = r.u64();
      auto ok = r.u8();
      if (!req || !ok) return;
      auto it = client_waits_.find(*req);
      if (it == client_waits_.end()) return;
      auto handler = std::move(it->second);
      client_waits_.erase(it);
      if (handler) handler(*ok != 0);
      return;
    }
    default:
      return;
  }
}

void CpReplica::finish(std::uint64_t req_id, bool ok) {
  auto it = in_flight_.find(req_id);
  if (it == in_flight_.end() || it->second.done) return;
  InFlight& fl = it->second;
  fl.done = true;
  fl.timer.cancel();
  if (ok) {
    committed_[fl.key] = fl.value;
    Buffer out;
    BufWriter w(out);
    w.u8(kCommit);
    w.u64(req_id);
    w.lp_str(fl.key);
    w.lp_str(fl.value);
    for (ReplicaId rep : all_) {
      if (rep != id_) net_.send(id_, rep, out);
    }
  }
  if (fl.origin == id_) {
    if (fl.cb) fl.cb(ok);
  } else {
    Buffer out;
    BufWriter w(out);
    w.u8(kWriteResp);
    w.u64(fl.origin_req);
    w.u8(ok ? 1 : 0);
    net_.send(id_, fl.origin, std::move(out));
  }
  in_flight_.erase(it);
}

}  // namespace iiot::replication
