// Replicated key-value stores: the two sides of Brewer's CAP trade-off
// (paper §V-C, [43]).
//
//   * ApReplica — CRDT-backed, always-writable. State is an OR-map of
//     LWW registers replicated by periodic anti-entropy gossip; replicas
//     converge after partitions heal (eventual consistency with
//     decentralized conflict resolution [24], [25]).
//   * CpReplica — primary-based with majority-quorum writes. Strongly
//     consistent, but writes fail on any side of a partition that cannot
//     assemble a quorum (unavailability under partitions).
//
// Bench E7 drives both with identical workloads and partition schedules
// and reports write availability, staleness, and convergence time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crdt/ormap.hpp"
#include "crdt/registers.hpp"
#include "replication/backend_net.hpp"

namespace iiot::replication {

using KvState = crdt::OrMap<crdt::LwwRegister<std::string>>;

struct ApConfig {
  sim::Duration gossip_interval = 500'000;  // 0.5 s anti-entropy rounds
  int fanout = 1;                           // peers contacted per round
};

class ApReplica {
 public:
  ApReplica(ReplicaId id, std::vector<ReplicaId> peers, BackendNet& net,
            sim::Scheduler& sched, Rng rng, ApConfig cfg = {});

  void start();
  void stop();

  /// Local write: always available (AP). Returns true unconditionally.
  bool put(const std::string& key, std::string value);
  void remove(const std::string& key);
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::size_t size() const { return state_.size(); }

  /// Deep state comparison, for convergence checks.
  [[nodiscard]] bool same_state_as(const ApReplica& other) const;

  [[nodiscard]] std::uint64_t gossip_rounds() const { return rounds_; }
  [[nodiscard]] ReplicaId id() const { return id_; }

 private:
  void gossip();
  void on_message(ReplicaId from, BytesView bytes);

  ReplicaId id_;
  std::vector<ReplicaId> peers_;
  BackendNet& net_;
  sim::Scheduler& sched_;
  Rng rng_;
  ApConfig cfg_;
  KvState state_;
  bool running_ = false;
  std::uint64_t rounds_ = 0;
  sim::EventHandle timer_;
};

struct CpConfig {
  sim::Duration request_timeout = 1'000'000;  // 1 s
};

class CpReplica {
 public:
  using PutCallback = std::function<void(bool ok)>;

  CpReplica(ReplicaId id, ReplicaId primary, std::vector<ReplicaId> all,
            BackendNet& net, sim::Scheduler& sched, Rng rng,
            CpConfig cfg = {});

  void start();
  void stop();

  /// Write via the primary with majority-quorum replication. The callback
  /// reports success only once a majority has acknowledged.
  void put(const std::string& key, std::string value, PutCallback cb);
  /// Local read (committed state only).
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  [[nodiscard]] bool is_primary() const { return id_ == primary_; }
  [[nodiscard]] std::size_t size() const { return committed_.size(); }
  [[nodiscard]] ReplicaId id() const { return id_; }

 private:
  struct InFlight {
    std::string key;
    std::string value;
    int acks = 0;
    ReplicaId origin = 0;
    std::uint64_t origin_req = 0;
    PutCallback cb;  // set when origin == self
    sim::EventHandle timer;
    bool done = false;
  };

  void on_message(ReplicaId from, BytesView bytes);
  void finish(std::uint64_t req_id, bool ok);
  [[nodiscard]] int majority() const {
    return static_cast<int>(all_.size()) / 2 + 1;
  }

  ReplicaId id_;
  ReplicaId primary_;
  std::vector<ReplicaId> all_;
  BackendNet& net_;
  sim::Scheduler& sched_;
  Rng rng_;
  CpConfig cfg_;
  bool running_ = false;
  std::uint64_t next_req_ = 1;
  std::map<std::string, std::string> committed_;
  std::map<std::uint64_t, std::pair<std::string, std::string>> pending_;
  std::map<std::uint64_t, InFlight> in_flight_;        // at primary
  std::map<std::uint64_t, PutCallback> client_waits_;  // at origin
};

}  // namespace iiot::replication
