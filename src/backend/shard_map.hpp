// Shard routing for the sharded backend tier (DESIGN.md §4g).
//
// Series and topic space are partitioned by the topic's FIRST level (the
// site/tenant prefix "site1" of "site1/3/3303"): every series and every
// literal-rooted subscription of one site lands on the same shard, so a
// message, its storage append, and its matching subscriptions are always
// shard-local — one worker can own a shard's bus + store pair end to end
// with no cross-shard traffic. Placement is consistent hashing with
// virtual nodes (ConsistentHashRing), so a future elastic tier can grow
// or shrink the shard set with minimal key movement.
//
// Hot path: the first level is hashed once and resolved through the
// ring's pre-hashed owner_slot(); callers that see repeated topics layer
// a memo on top (ShardedBus) or resolve at intern time (ShardedStore),
// so steady-state routing is integer work only.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "backend/registry.hpp"

namespace iiot::backend {

class ShardMap {
 public:
  /// A map over `shards` shards (>= 1). Shard i is registered on the ring
  /// as "shard-i"; registration order makes the ring slot == the index.
  explicit ShardMap(std::uint32_t shards, int vnodes = 64)
      : shards_(shards == 0 ? 1 : shards), ring_(vnodes) {
    for (std::uint32_t i = 0; i < shards_; ++i) {
      ring_.add_node("shard-" + std::to_string(i));
    }
  }

  [[nodiscard]] std::uint32_t shards() const { return shards_; }

  /// First topic level: "site1/3/3303" -> "site1", "flat" -> "flat".
  [[nodiscard]] static std::string_view first_level(std::string_view topic) {
    return topic.substr(0, std::min(topic.find('/'), topic.size()));
  }

  /// Shard owning a raw partition key (already stripped to the level).
  [[nodiscard]] std::uint32_t shard_of_key(std::string_view key) const {
    if (shards_ == 1) return 0;
    const auto slot = ring_.owner_slot(ConsistentHashRing::hash(key));
    return slot ? *slot : 0;
  }

  /// Shard owning a full topic / series name (routes on its first level).
  [[nodiscard]] std::uint32_t shard_of_topic(std::string_view topic) const {
    return shard_of_key(first_level(topic));
  }

  [[nodiscard]] const ConsistentHashRing& ring() const { return ring_; }

 private:
  std::uint32_t shards_;
  ConsistentHashRing ring_;
};

}  // namespace iiot::backend
