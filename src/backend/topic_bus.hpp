// Topic-based publish/subscribe bus (MQTT-style wildcards) — the
// application-logic tier's integration fabric (Fig. 1's middle layer).
//
// Topic filters support '+' (one level) and '#' (all remaining levels),
// e.g. "site1/+/temperature" or "site1/floor2/#".
//
// Backend fast path (DESIGN.md §4f): subscriptions are indexed by a
// topic-segment trie (literal / '+' / '#' children) with a separate
// exact-match hash index for wildcard-free filters, so publish cost
// scales with the number of *matching* subscribers instead of the total
// subscriber count. Matches are dispatched in ascending SubId order —
// exactly the seed implementation's std::map iteration order, so
// delivery order is observably identical.
//
// Re-entrancy contract: handlers may subscribe, unsubscribe (including
// themselves), and publish from inside a delivery. The matching set of a
// publish is snapshotted before the first handler runs; a subscription
// made during dispatch joins future publishes only, and an unsubscribe
// during dispatch takes effect immediately for the remaining deliveries
// of the in-flight message (physical removal is deferred until the
// outermost dispatch unwinds, so a handler can safely remove itself).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "obs/metrics.hpp"

namespace iiot::backend {

/// True iff `filter` matches `topic` under MQTT matching rules. (The
/// reference predicate; the bus's trie walk is observably equivalent.)
[[nodiscard]] bool topic_matches(std::string_view filter,
                                 std::string_view topic);

/// One message for the batched multi-topic publish entry point.
struct BusMessage {
  std::string topic;
  Buffer payload;
};

/// Struct-backed counters (obs attach_counter style; see MetricsRegistry).
struct BusStats {
  std::uint64_t published = 0;          // messages published
  std::uint64_t delivered = 0;          // handler invocations
  std::uint64_t batches = 0;            // publish_batch() calls
  std::uint64_t exact_hits = 0;         // matches from the exact index
  std::uint64_t trie_nodes_visited = 0; // trie nodes touched matching
  std::uint64_t deferred_unsubs = 0;    // unsubscribes deferred mid-dispatch
};

class TopicBus {
 public:
  using Handler =
      std::function<void(const std::string& topic, BytesView payload)>;
  using SubId = std::uint64_t;

  SubId subscribe(std::string filter, Handler handler);
  void unsubscribe(SubId id);

  /// Synchronous fan-out to every matching subscriber (SubId order).
  void publish(const std::string& topic, BytesView payload) {
    dispatch(topic, &payload, 1);
  }
  void publish(const std::string& topic, const std::string& payload) {
    const BytesView view(
        reinterpret_cast<const std::uint8_t*>(payload.data()),
        payload.size());
    dispatch(topic, &view, 1);
  }

  /// Batched same-topic publish: one matching pass, then every payload is
  /// fanned out in order. Deliveries are identical to the equivalent
  /// sequence of publish() calls, except that the matching set is
  /// snapshotted once for the whole batch.
  void publish_batch(const std::string& topic,
                     std::span<const BytesView> payloads) {
    ++stats_.batches;
    dispatch(topic, payloads.data(), payloads.size());
  }

  /// Batched multi-topic publish; consecutive messages that share a topic
  /// reuse one matching pass.
  void publish_batch(std::span<const BusMessage> msgs);

  [[nodiscard]] std::size_t subscription_count() const {
    return active_subs_;
  }
  [[nodiscard]] std::uint64_t published() const { return stats_.published; }
  [[nodiscard]] std::uint64_t delivered() const { return stats_.delivered; }
  [[nodiscard]] const BusStats& stats() const { return stats_; }

  /// Per-publish fan-out size distribution; a null handle (the default)
  /// keeps the hot path at one branch.
  void set_fanout_histogram(obs::Histogram h) { fanout_ = h; }

 private:
  struct Sub {
    std::string filter;
    Handler handler;
    bool active = true;
    bool exact = false;       // indexed in exact_ (by filter) vs trie_
    std::uint32_t node = 0;   // trie node holding this sub (trie subs)
  };

  // Trie over filter levels. Children are keyed by literal level; '+' and
  // '#' get dedicated edges ('#' is terminal: insertion stops there, as
  // the reference matcher returns true at '#' regardless of what follows).
  struct TrieNode {
    std::map<std::string, std::uint32_t, std::less<>> children;
    std::int32_t plus = -1;
    std::int32_t hash = -1;
    std::vector<SubId> subs;  // ascending (ids are issued in order)
  };

  // Per-depth scratch so nested publishes from handlers get their own
  // match buffers; unique_ptr keeps them stable while the pool grows.
  struct Scratch {
    std::vector<SubId> ids;
    std::vector<std::string_view> levels;
  };

  void dispatch(const std::string& topic, const BytesView* payloads,
                std::size_t n);
  void collect(const TrieNode& node, std::size_t i,
               const std::vector<std::string_view>& levels,
               std::vector<SubId>& out) const;
  void flush_deferred();
  static void split_levels(std::string_view topic,
                           std::vector<std::string_view>& out);
  static bool is_exact_filter(std::string_view filter);

  std::unordered_map<SubId, Sub> subs_;
  std::unordered_map<std::string, std::vector<SubId>> exact_;
  std::vector<TrieNode> trie_{TrieNode{}};  // [0] = root
  std::size_t wildcard_subs_ = 0;
  std::size_t active_subs_ = 0;
  SubId next_id_ = 1;
  std::size_t depth_ = 0;  // dispatch nesting depth
  std::vector<SubId> pending_erase_;
  std::vector<std::unique_ptr<Scratch>> scratch_;
  mutable BusStats stats_;
  obs::Histogram fanout_;
};

}  // namespace iiot::backend
