// Topic-based publish/subscribe bus (MQTT-style wildcards) — the
// application-logic tier's integration fabric (Fig. 1's middle layer).
//
// Topic filters support '+' (one level) and '#' (all remaining levels),
// e.g. "site1/+/temperature" or "site1/floor2/#".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace iiot::backend {

/// True iff `filter` matches `topic` under MQTT matching rules.
[[nodiscard]] bool topic_matches(std::string_view filter,
                                 std::string_view topic);

class TopicBus {
 public:
  using Handler =
      std::function<void(const std::string& topic, BytesView payload)>;
  using SubId = std::uint64_t;

  SubId subscribe(std::string filter, Handler handler) {
    const SubId id = next_id_++;
    subs_.emplace(id, Subscription{std::move(filter), std::move(handler)});
    return id;
  }

  void unsubscribe(SubId id) { subs_.erase(id); }

  /// Synchronous fan-out to every matching subscriber.
  void publish(const std::string& topic, BytesView payload) {
    ++published_;
    for (auto& [id, sub] : subs_) {
      if (topic_matches(sub.filter, topic)) {
        ++delivered_;
        sub.handler(topic, payload);
      }
    }
  }

  void publish(const std::string& topic, const std::string& payload) {
    publish(topic, BytesView(reinterpret_cast<const std::uint8_t*>(
                                 payload.data()),
                             payload.size()));
  }

  [[nodiscard]] std::size_t subscription_count() const {
    return subs_.size();
  }
  [[nodiscard]] std::uint64_t published() const { return published_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }

 private:
  struct Subscription {
    std::string filter;
    Handler handler;
  };
  std::map<SubId, Subscription> subs_;
  SubId next_id_ = 1;
  std::uint64_t published_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace iiot::backend
