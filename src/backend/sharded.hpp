// Sharded multi-core backend tier (DESIGN.md §4g).
//
// ShardedStore and ShardedBus partition the series / topic space across N
// shards, where each shard is an UNMODIFIED single-threaded
// TimeSeriesStore / TopicBus — per-shard behavior (chunk rollups, trie
// matching, re-entrancy semantics, retention) is therefore identical to
// the PR 5 fast path by construction, and the differential suites use the
// single-shard implementations as byte-exact oracles.
//
// Partitioning (ShardMap): by the topic's first level, so a measurement,
// its storage series, and every literal-rooted subscription that can
// match it live on the SAME shard. Wildcard-rooted filters ('+'/'#' first
// level) are installed on every shard. A publish therefore touches
// exactly one shard, and one worker can own a shard's bus + store pair
// end to end.
//
// Parallel entry points (append_bulk / aggregate_each / aggregate_many /
// publish_batch_parallel) shard their batch by owner and execute
// per-shard sub-batches on a fixed runner::Engine pool — the PR 4
// claim/aggregate pattern: workers claim whole shards, write into
// index-keyed slots, and never touch another shard's state. All other
// entry points run inline on the calling thread with single-bus/store
// semantics (including nested publishes from handlers).
//
// Determinism contract (matches src/runner):
//   * Each series lives wholly on one shard, so query()/downsample()/
//     aggregate() results are byte-identical to a single store at ANY
//     shard count and ANY worker count.
//   * Cross-shard merge (aggregate_many) merges per-series partials in
//     ARGUMENT order — a canonical order independent of the shard count —
//     so even floating-point sums are bit-identical across shard/thread
//     counts. Per-shard work writes slot i of the output; the merge is a
//     serial fold over those slots.
//   * Delivery order: local SubIds are issued in global subscription
//     order on every shard, so a publish dispatches in ascending global
//     order — exactly the single bus's order restricted to the matching
//     set (which is entirely on the publish's shard; see ShardMap).
//   * publish_batch_parallel preserves per-shard (hence per-topic and
//     per-subscription) message order; cross-shard interleaving is
//     unordered, so handlers must be shard-affine: any state a handler
//     mutates must be keyed by the same first-level partition (or be
//     thread-safe), and handlers must not publish to other shards while a
//     parallel batch is in flight. The simulation-facing System wiring
//     only uses the inline entry points and is exempt.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "backend/rules.hpp"
#include "backend/shard_map.hpp"
#include "backend/timeseries.hpp"
#include "backend/topic_bus.hpp"
#include "obs/metrics.hpp"
#include "runner/engine.hpp"

namespace iiot::backend {

/// Struct-backed counters (obs attach_counter style).
struct ShardedStoreStats {
  std::uint64_t bulk_calls = 0;       // append_bulk() invocations
  std::uint64_t bulk_points = 0;      // points ingested through bulk path
  std::uint64_t multi_aggregates = 0; // aggregate_each/_many calls
  std::uint64_t merged_partials = 0;  // per-series partials merged
  std::uint64_t string_appends = 0;   // string-shim appends (keep cold)
};

class ShardedStore {
 public:
  /// Packed (shard << 32 | local) series handle.
  using SeriesRef = std::uint64_t;
  static constexpr SeriesRef kNoSeries = ~0ULL;

  /// One contiguous batch of points for one series (append_bulk input).
  struct Slice {
    SeriesRef ref = kNoSeries;
    const Point* pts = nullptr;
    std::size_t n = 0;
  };

  /// `pool` executes the parallel entry points (null → inline serial;
  /// results are identical either way). The pool is borrowed, not owned,
  /// and must outlive the store's parallel calls. A multi-job pool must
  /// not be re-entered from inside a task (runner::Engine's contract), so
  /// don't call parallel store ops from bus handlers during a parallel
  /// dispatch.
  explicit ShardedStore(std::uint32_t shards, RetentionPolicy retention = {},
                        runner::Engine* pool = nullptr);

  // ---- interning ----------------------------------------------------
  SeriesRef intern(std::string_view series);
  [[nodiscard]] SeriesRef find(std::string_view series) const;
  [[nodiscard]] const std::string& name(SeriesRef ref) const;

  // ---- hot path (SeriesRef-indexed, inline) -------------------------
  void append(SeriesRef ref, sim::Time at, double value);
  void append_batch(SeriesRef ref, const Point* pts, std::size_t n);
  /// Parallel bulk ingest: slices are grouped by owning shard (input
  /// order preserved within a shard) and each shard's group is executed
  /// by exactly one worker. Final state is identical to appending the
  /// slices serially in input order.
  void append_bulk(std::span<const Slice> slices);

  [[nodiscard]] std::optional<Point> latest(SeriesRef ref) const;
  [[nodiscard]] std::vector<Point> query(SeriesRef ref, sim::Time from,
                                         sim::Time to) const;
  [[nodiscard]] std::vector<Point> downsample(SeriesRef ref, sim::Time from,
                                              sim::Time to,
                                              sim::Duration bucket) const;
  [[nodiscard]] agg::PartialAggregate aggregate(SeriesRef ref, sim::Time from,
                                                sim::Time to) const;
  [[nodiscard]] std::size_t points(SeriesRef ref) const;

  // ---- cross-shard merge tier ---------------------------------------
  /// out[i] = aggregate(refs[i], from, to), computed shard-parallel.
  void aggregate_each(std::span<const SeriesRef> refs, sim::Time from,
                      sim::Time to, agg::PartialAggregate* out) const;
  /// Rollup merge across series/shards: aggregate_each + a serial fold in
  /// argument order (canonical across shard/thread counts, see header).
  [[nodiscard]] agg::PartialAggregate aggregate_many(
      std::span<const SeriesRef> refs, sim::Time from, sim::Time to) const;

  // ---- string shims (mirror TimeSeriesStore's seed API) -------------
  void append(const std::string& series, sim::Time at, double value) {
    ++stats_.string_appends;
    append(intern(series), at, value);
  }
  [[nodiscard]] std::optional<Point> latest(const std::string& series) const {
    return latest(find(series));
  }
  [[nodiscard]] std::vector<Point> query(const std::string& series,
                                         sim::Time from, sim::Time to) const {
    return query(find(series), from, to);
  }
  [[nodiscard]] std::vector<Point> downsample(const std::string& series,
                                              sim::Time from, sim::Time to,
                                              sim::Duration bucket) const {
    return downsample(find(series), from, to, bucket);
  }
  [[nodiscard]] std::size_t points(const std::string& series) const {
    return points(find(series));
  }

  // ---- inventory ----------------------------------------------------
  [[nodiscard]] std::size_t series_count() const;
  [[nodiscard]] std::uint64_t total_appended() const;
  [[nodiscard]] std::vector<std::string> series_names() const;  // sorted

  [[nodiscard]] std::uint32_t shard_count() const { return map_.shards(); }
  [[nodiscard]] TimeSeriesStore& shard(std::uint32_t i) { return shards_[i]; }
  [[nodiscard]] const TimeSeriesStore& shard(std::uint32_t i) const {
    return shards_[i];
  }
  [[nodiscard]] const ShardMap& shard_map() const { return map_; }
  [[nodiscard]] const ShardedStoreStats& stats() const { return stats_; }

  /// Per-shard point counts of each append_bulk call (the store-side
  /// queue-depth/skew signal); null handle = one branch on the hot path.
  void set_batch_histogram(obs::Histogram h) { batch_hist_ = h; }
  /// Wall-clock microseconds spent in the serial merge fold of
  /// aggregate_many (merge-tier latency). Only observed when set; never
  /// part of any determinism artifact.
  void set_merge_histogram(obs::Histogram h) {
    merge_hist_ = h;
    merge_timed_ = true;
  }

  static constexpr std::uint32_t shard_of(SeriesRef ref) {
    return static_cast<std::uint32_t>(ref >> 32);
  }
  static constexpr SeriesId local_of(SeriesRef ref) {
    return static_cast<SeriesId>(ref & 0xffffffffULL);
  }

 private:
  static constexpr SeriesRef pack(std::uint32_t shard, SeriesId local) {
    return (static_cast<SeriesRef>(shard) << 32) | local;
  }

  ShardMap map_;
  std::vector<TimeSeriesStore> shards_;
  runner::Engine* pool_ = nullptr;
  std::vector<std::vector<std::uint32_t>> group_;  // append_bulk scratch
  mutable ShardedStoreStats stats_;
  obs::Histogram batch_hist_;
  mutable obs::Histogram merge_hist_;  // observed from const aggregate_many
  bool merge_timed_ = false;  // skip steady_clock reads until a sink exists
};

/// Struct-backed counters for the sharded bus front.
struct ShardedBusStats {
  std::uint64_t parallel_batches = 0;  // publish_batch_parallel() calls
  std::uint64_t routed = 0;            // topic → shard resolutions
  std::uint64_t route_memo_hits = 0;   // resolved from the level memo
};

class ShardedBus {
 public:
  using Handler = TopicBus::Handler;
  using SubId = std::uint64_t;

  /// `pool` is used only by publish_batch_parallel (null → serial).
  explicit ShardedBus(std::uint32_t shards, runner::Engine* pool = nullptr);

  /// Global SubIds are issued in subscription order; a literal-rooted
  /// filter is installed on its owning shard only, a wildcard-rooted one
  /// ('+'/'#' first level) on every shard. Local SubIds on each shard
  /// ascend with the global order, preserving single-bus delivery order.
  SubId subscribe(std::string filter, Handler handler);
  void unsubscribe(SubId id);

  /// Inline single-topic publish: routes to the owning shard and
  /// dispatches with full single-bus semantics (re-entrant handlers,
  /// nested publishes to any shard).
  void publish(const std::string& topic, BytesView payload);
  void publish(const std::string& topic, const std::string& payload) {
    const BytesView view(
        reinterpret_cast<const std::uint8_t*>(payload.data()),
        payload.size());
    publish(topic, view);
  }
  /// Single-topic batch: one route + one matching pass on the owner.
  void publish_batch(const std::string& topic,
                     std::span<const BytesView> payloads);
  /// Multi-topic batch, serial: processed in input order on the calling
  /// thread (same-topic runs coalesced per shard, as TopicBus does).
  void publish_batch(std::span<const BusMessage> msgs);
  /// Multi-topic batch, shard-parallel: messages are partitioned by
  /// owning shard (input order preserved per shard) and dispatched by one
  /// worker per shard. Requires shard-affine handlers (see header).
  void publish_batch_parallel(std::span<const BusMessage> msgs);

  [[nodiscard]] std::size_t subscription_count() const { return active_; }
  [[nodiscard]] std::uint64_t published() const;
  [[nodiscard]] std::uint64_t delivered() const;
  [[nodiscard]] const ShardedBusStats& stats() const { return stats_; }

  [[nodiscard]] std::uint32_t shard_count() const { return map_.shards(); }
  [[nodiscard]] TopicBus& shard(std::uint32_t i) { return shards_[i]; }
  [[nodiscard]] const TopicBus& shard(std::uint32_t i) const {
    return shards_[i];
  }
  [[nodiscard]] const ShardMap& shard_map() const { return map_; }

  /// Per-shard message counts of each parallel batch (queue depth / skew
  /// across shards); null handle keeps the hot path at one branch.
  void set_queue_histogram(obs::Histogram h) { queue_hist_ = h; }
  /// Forwarded to every shard's fan-out histogram.
  void set_fanout_histogram(obs::Histogram h);

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  [[nodiscard]] std::uint32_t route(std::string_view topic) const;

  ShardMap map_;
  std::vector<TopicBus> shards_;
  runner::Engine* pool_ = nullptr;
  // Global id -> per-shard local ids (1 entry for literal-rooted filters,
  // shard_count() entries for wildcard-rooted ones).
  std::unordered_map<SubId,
                     std::vector<std::pair<std::uint32_t, TopicBus::SubId>>>
      subs_;
  SubId next_id_ = 1;
  std::size_t active_ = 0;
  // First-level → shard memo: sites repeat, ring lookups don't have to.
  mutable std::unordered_map<std::string, std::uint32_t, StringHash,
                             std::equal_to<>>
      route_memo_;
  std::vector<std::vector<std::uint32_t>> group_;  // parallel-batch scratch
  mutable ShardedBusStats stats_;
  obs::Histogram queue_hist_;
};

/// The sharded application-logic plane's rule engine (rules subscribe
/// through the sharded bus — wildcard-rooted filters land on every shard
/// — and window rules evaluate against the sharded store's rollup path).
using ShardedRuleEngine = BasicRuleEngine<ShardedBus, ShardedStore>;

}  // namespace iiot::backend
