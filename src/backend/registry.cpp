#include "backend/registry.hpp"

namespace iiot::backend {

std::uint64_t ConsistentHashRing::hash(std::string_view s) {
  // FNV-1a 64, then a SplitMix finalizer for avalanche.
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

std::uint32_t ConsistentHashRing::add_node(const std::string& node) {
  auto it = node_hashes_.find(node);
  if (it != node_hashes_.end()) return it->second.first;  // idempotent
  const auto slot = static_cast<std::uint32_t>(names_.size());
  names_.push_back(node);
  std::vector<std::uint64_t> hashes;
  hashes.reserve(static_cast<std::size_t>(vnodes_));
  for (int v = 0; v < vnodes_; ++v) {
    const std::uint64_t h = hash(node + "#" + std::to_string(v));
    // First writer wins on a vnode collision (astronomically unlikely at
    // 64-bit); only hashes we actually own are cached for removal.
    if (ring_.emplace(h, slot).second) hashes.push_back(h);
  }
  node_hashes_.emplace(node, std::make_pair(slot, std::move(hashes)));
  ++nodes_;
  return slot;
}

void ConsistentHashRing::remove_node(const std::string& node) {
  auto it = node_hashes_.find(node);
  if (it == node_hashes_.end()) return;
  for (const std::uint64_t h : it->second.second) ring_.erase(h);
  names_[it->second.first].clear();
  node_hashes_.erase(it);
  --nodes_;
}

std::optional<std::uint32_t> ConsistentHashRing::owner_slot(
    std::uint64_t key_hash) const {
  if (ring_.empty()) return std::nullopt;
  auto it = ring_.lower_bound(key_hash);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::optional<std::string> ConsistentHashRing::owner(
    std::string_view key) const {
  const auto slot = owner_slot(hash(key));
  if (!slot) return std::nullopt;
  return names_[*slot];
}

const std::string& ConsistentHashRing::node_name(std::uint32_t slot) const {
  static const std::string kEmpty;
  return slot < names_.size() ? names_[slot] : kEmpty;
}

Directory::Directory(sim::Scheduler& sched, DirectoryMode mode,
                     DirectoryConfig cfg)
    : sched_(sched), mode_(mode), cfg_(cfg), ring_(cfg.vnodes) {
  const int n = mode == DirectoryMode::kCentral ? 1 : cfg.server_count;
  if (mode == DirectoryMode::kPartitioned) {
    frontend_ =
        std::make_unique<QueuedServer>(sched_, cfg_.frontend_service_time);
  }
  for (int i = 0; i < n; ++i) {
    servers_.push_back(
        std::make_unique<QueuedServer>(sched_, cfg_.service_time));
    shards_.emplace_back();
    ring_.add_node("server-" + std::to_string(i));
  }
}

std::size_t Directory::server_for(const std::string& name) const {
  if (mode_ == DirectoryMode::kCentral) return 0;
  // Both partitioned and decentralized place by consistent hashing; the
  // difference is who pays the lookup hop (see lookup()). Slots are
  // assigned in registration order, so the slot IS the server index.
  const auto slot = ring_.owner_slot(ConsistentHashRing::hash(name));
  if (!slot) return 0;
  return *slot;
}

void Directory::register_service(const std::string& name,
                                 const std::string& addr) {
  shards_[server_for(name)][name] = addr;
}

void Directory::lookup(const std::string& name, LookupCallback done) {
  const std::size_t idx = server_for(name);
  const sim::Time start = sched_.now();
  auto serve = [this, idx, name, start,
                done = std::move(done)]() mutable {
    servers_[idx]->submit([this, idx, name, start,
                           done = std::move(done)]() mutable {
      std::optional<std::string> addr;
      auto it = shards_[idx].find(name);
      if (it != shards_[idx].end()) addr = it->second;
      sched_.schedule_after(cfg_.rtt / 2,
                            [this, start, addr = std::move(addr),
                             done = std::move(done)] {
                              done(sched_.now() - start, addr);
                            });
    });
  };
  sched_.schedule_after(
      cfg_.rtt / 2, [this, serve = std::move(serve)]() mutable {
        if (mode_ == DirectoryMode::kPartitioned) {
          // Clients do not know the shard map: transit the front-end
          // router first. Decentralized clients hit the owner directly.
          frontend_->submit(std::move(serve));
        } else {
          serve();
        }
      });
}

std::size_t Directory::entries() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s.size();
  return n;
}

}  // namespace iiot::backend
