// Service registry / directory in three architectures — the paper's size-
// scalability progression (§IV-A): centralized service → partitioned/
// replicated service → fully decentralized algorithm. Bench E5 loads all
// three and shows where each collapses.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "sim/scheduler.hpp"

namespace iiot::backend {

/// Consistent-hash ring with virtual nodes: the decentralized placement
/// primitive (each client computes the owner locally — no directory hop).
///
/// Hot-path design (DESIGN.md §4g): every vnode hash is computed once at
/// add_node() and cached, so remove_node() never re-derives vnode keys,
/// and owners can be resolved from a pre-computed key hash via
/// owner_slot() — the sharded backend routes on interned ids and hashes
/// each key string exactly once. Nodes are also assigned a dense `slot`
/// in registration order, so placement-by-index callers (the shard map,
/// the partitioned directory) skip the name round trip entirely.
class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(int vnodes_per_node = 64)
      : vnodes_(vnodes_per_node) {}

  /// Registers `node` under `vnodes()` virtual points (idempotent: re-
  /// adding a live node is a no-op). The node's dense slot is returned.
  std::uint32_t add_node(const std::string& node);
  void remove_node(const std::string& node);

  [[nodiscard]] std::optional<std::string> owner(std::string_view key) const;
  /// Owner resolution from a pre-computed hash(key): the zero-string-work
  /// lookup the routing hot paths use. Returns the owner's dense slot.
  [[nodiscard]] std::optional<std::uint32_t> owner_slot(
      std::uint64_t key_hash) const;
  [[nodiscard]] const std::string& node_name(std::uint32_t slot) const;

  [[nodiscard]] std::size_t node_count() const { return nodes_; }
  [[nodiscard]] int vnodes() const { return vnodes_; }

  static std::uint64_t hash(std::string_view s);

 private:
  int vnodes_;
  std::size_t nodes_ = 0;
  // vnode hash -> dense node slot. Slots are assigned in registration
  // order and never reused; a removed node's slot simply goes dark.
  std::map<std::uint64_t, std::uint32_t> ring_;
  std::vector<std::string> names_;  // slot -> name ("" = removed)
  // name -> (slot, cached vnode hashes): remove_node() erases exactly the
  // hashes add_node() inserted, with zero re-hashing.
  std::unordered_map<std::string,
                     std::pair<std::uint32_t, std::vector<std::uint64_t>>>
      node_hashes_;
};

/// Single-queue server with deterministic service time: the contention
/// model behind every centralized service.
class QueuedServer {
 public:
  QueuedServer(sim::Scheduler& sched, sim::Duration service_time)
      : sched_(sched), service_time_(service_time) {}

  /// Enqueues one request; `done` fires when the server finishes it.
  void submit(std::function<void()> done) {
    queue_.push_back(std::move(done));
    ++total_;
    if (!busy_) process_next();
  }

  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }
  [[nodiscard]] std::uint64_t total_submitted() const { return total_; }

 private:
  void process_next() {
    if (queue_.empty()) {
      busy_ = false;
      return;
    }
    busy_ = true;
    auto done = std::move(queue_.front());
    queue_.pop_front();
    sched_.schedule_after(service_time_, [this, done = std::move(done)] {
      ++processed_;
      if (done) done();
      process_next();
    });
  }

  sim::Scheduler& sched_;
  sim::Duration service_time_;
  std::deque<std::function<void()>> queue_;
  bool busy_ = false;
  std::uint64_t processed_ = 0;
  std::uint64_t total_ = 0;
};

enum class DirectoryMode { kCentral, kPartitioned, kDecentralized };

[[nodiscard]] constexpr const char* to_string(DirectoryMode m) {
  switch (m) {
    case DirectoryMode::kCentral: return "central";
    case DirectoryMode::kPartitioned: return "partitioned";
    case DirectoryMode::kDecentralized: return "decentralized";
  }
  return "?";
}

struct DirectoryConfig {
  sim::Duration rtt = 2'000;           // client<->server round trip
  sim::Duration service_time = 150;    // per-lookup CPU at a server
  int server_count = 4;                // for partitioned/decentralized
  int vnodes = 64;
  /// Partitioned mode only: clients do not know the shard map, so every
  /// lookup transits a front-end router with this (small) service time.
  /// Decentralized clients compute the owner locally and skip it.
  sim::Duration frontend_service_time = 25;
};

/// A name→address directory deployed in one of the three architectures.
class Directory {
 public:
  Directory(sim::Scheduler& sched, DirectoryMode mode, DirectoryConfig cfg);

  void register_service(const std::string& name, const std::string& addr);

  /// Asynchronous lookup; `done(latency, found_addr)`.
  using LookupCallback =
      std::function<void(sim::Duration, std::optional<std::string>)>;
  void lookup(const std::string& name, LookupCallback done);

  [[nodiscard]] DirectoryMode mode() const { return mode_; }
  [[nodiscard]] std::size_t entries() const;

 private:
  [[nodiscard]] std::size_t server_for(const std::string& name) const;

  sim::Scheduler& sched_;
  DirectoryMode mode_;
  DirectoryConfig cfg_;
  ConsistentHashRing ring_;
  std::unique_ptr<QueuedServer> frontend_;  // partitioned mode only
  std::vector<std::unique_ptr<QueuedServer>> servers_;
  std::vector<std::map<std::string, std::string>> shards_;
};

}  // namespace iiot::backend
