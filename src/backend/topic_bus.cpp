#include "backend/topic_bus.hpp"

#include <algorithm>

namespace iiot::backend {

bool topic_matches(std::string_view filter, std::string_view topic) {
  std::size_t fi = 0, ti = 0;
  while (fi <= filter.size() && ti <= topic.size()) {
    // Extract next level of each.
    const std::size_t fend = std::min(filter.find('/', fi), filter.size());
    const std::size_t tend = std::min(topic.find('/', ti), topic.size());
    const std::string_view flevel = filter.substr(fi, fend - fi);
    const std::string_view tlevel = topic.substr(ti, tend - ti);

    if (flevel == "#") return true;  // matches everything below
    const bool last_f = fend >= filter.size();
    const bool last_t = tend >= topic.size();
    if (flevel != "+" && flevel != tlevel) return false;
    if (last_f && last_t) return true;
    if (last_f != last_t) {
      // One ran out first; only "level/#" handles that, checked above.
      return false;
    }
    fi = fend + 1;
    ti = tend + 1;
  }
  return false;
}

// ---- subscription index ----------------------------------------------

void TopicBus::split_levels(std::string_view topic,
                            std::vector<std::string_view>& out) {
  // Every topic has >= 1 level; "a/" is ["a", ""] and "" is [""], exactly
  // the level decomposition topic_matches() walks.
  std::size_t i = 0;
  for (;;) {
    const std::size_t end = std::min(topic.find('/', i), topic.size());
    out.push_back(topic.substr(i, end - i));
    if (end >= topic.size()) break;
    i = end + 1;
  }
}

bool TopicBus::is_exact_filter(std::string_view filter) {
  std::size_t i = 0;
  for (;;) {
    const std::size_t end = std::min(filter.find('/', i), filter.size());
    const std::string_view level = filter.substr(i, end - i);
    if (level == "+" || level == "#") return false;
    if (end >= filter.size()) return true;
    i = end + 1;
  }
}

TopicBus::SubId TopicBus::subscribe(std::string filter, Handler handler) {
  const SubId id = next_id_++;
  Sub sub;
  sub.handler = std::move(handler);
  if (is_exact_filter(filter)) {
    sub.exact = true;
    exact_[filter].push_back(id);  // ids are issued ascending
  } else {
    std::vector<std::string_view> levels;
    split_levels(filter, levels);
    std::uint32_t cur = 0;
    for (const std::string_view level : levels) {
      std::int32_t* edge = nullptr;
      if (level == "#") {
        edge = &trie_[cur].hash;
      } else if (level == "+") {
        edge = &trie_[cur].plus;
      }
      if (edge != nullptr) {
        std::int32_t next = *edge;
        if (next < 0) {
          // Write through `edge` BEFORE growing trie_: emplace_back may
          // reallocate and `edge` points into trie_[cur].
          next = static_cast<std::int32_t>(trie_.size());
          *edge = next;
          trie_.emplace_back();
        }
        cur = static_cast<std::uint32_t>(next);
        if (level == "#") break;  // '#' is terminal (see header)
        continue;
      }
      auto it = trie_[cur].children.find(level);
      if (it == trie_[cur].children.end()) {
        const auto next = static_cast<std::uint32_t>(trie_.size());
        trie_[cur].children.emplace(std::string(level), next);
        trie_.emplace_back();
        cur = next;
      } else {
        cur = it->second;
      }
    }
    trie_[cur].subs.push_back(id);
    sub.node = cur;
    ++wildcard_subs_;
  }
  sub.filter = std::move(filter);
  subs_.emplace(id, std::move(sub));
  ++active_subs_;
  return id;
}

void TopicBus::unsubscribe(SubId id) {
  auto it = subs_.find(id);
  if (it == subs_.end() || !it->second.active) return;
  Sub& sub = it->second;
  sub.active = false;
  --active_subs_;
  // De-index now so future (and nested) matching passes skip it...
  if (sub.exact) {
    auto ex = exact_.find(sub.filter);
    if (ex != exact_.end()) {
      auto& ids = ex->second;
      auto pos = std::find(ids.begin(), ids.end(), id);
      if (pos != ids.end()) ids.erase(pos);
      if (ids.empty()) exact_.erase(ex);
    }
  } else {
    auto& ids = trie_[sub.node].subs;
    auto pos = std::find(ids.begin(), ids.end(), id);
    if (pos != ids.end()) ids.erase(pos);
    --wildcard_subs_;
  }
  // ...but defer destroying the handler while any dispatch is on the
  // stack: the departing handler may be the one currently executing.
  if (depth_ > 0) {
    pending_erase_.push_back(id);
    ++stats_.deferred_unsubs;
  } else {
    subs_.erase(it);
  }
}

void TopicBus::flush_deferred() {
  for (const SubId id : pending_erase_) subs_.erase(id);
  pending_erase_.clear();
}

// ---- matching + dispatch ----------------------------------------------

void TopicBus::collect(const TrieNode& node, std::size_t i,
                       const std::vector<std::string_view>& levels,
                       std::vector<SubId>& out) const {
  ++stats_.trie_nodes_visited;
  if (i == levels.size()) {
    out.insert(out.end(), node.subs.begin(), node.subs.end());
    return;
  }
  if (node.hash >= 0) {
    // '#' consumes the remaining (>= 1) levels.
    const auto& subs = trie_[static_cast<std::size_t>(node.hash)].subs;
    out.insert(out.end(), subs.begin(), subs.end());
  }
  if (node.plus >= 0) {
    collect(trie_[static_cast<std::size_t>(node.plus)], i + 1, levels, out);
  }
  auto it = node.children.find(levels[i]);
  if (it != node.children.end()) {
    collect(trie_[it->second], i + 1, levels, out);
  }
}

void TopicBus::dispatch(const std::string& topic, const BytesView* payloads,
                        std::size_t n) {
  stats_.published += n;
  if (n == 0) return;
  const std::size_t d = depth_;
  if (scratch_.size() <= d) scratch_.push_back(std::make_unique<Scratch>());
  Scratch& s = *scratch_[d];
  s.ids.clear();
  s.levels.clear();

  // Snapshot the matching set before any handler runs: exact index...
  auto ex = exact_.find(topic);
  if (ex != exact_.end()) {
    s.ids.insert(s.ids.end(), ex->second.begin(), ex->second.end());
    stats_.exact_hits += ex->second.size();
  }
  // ...then the wildcard trie (skipped entirely when no wildcard subs).
  if (wildcard_subs_ > 0) {
    split_levels(topic, s.levels);
    collect(trie_[0], 0, s.levels, s.ids);
  }
  // Ascending SubId == the seed's std::map iteration order.
  std::sort(s.ids.begin(), s.ids.end());
  fanout_.observe(static_cast<double>(s.ids.size()));

  ++depth_;
  for (std::size_t pi = 0; pi < n; ++pi) {
    for (const SubId id : s.ids) {
      auto it = subs_.find(id);
      if (it == subs_.end() || !it->second.active) continue;
      ++stats_.delivered;
      it->second.handler(topic, payloads[pi]);
    }
  }
  --depth_;
  if (depth_ == 0) flush_deferred();
}

void TopicBus::publish_batch(std::span<const BusMessage> msgs) {
  ++stats_.batches;
  std::size_t i = 0;
  while (i < msgs.size()) {
    // Coalesce a run of consecutive same-topic messages into one
    // matching pass. Payload views are built on the stack; runs are
    // bounded so this stays allocation-light.
    std::size_t j = i + 1;
    while (j < msgs.size() && msgs[j].topic == msgs[i].topic) ++j;
    if (j - i == 1) {
      const BytesView view(msgs[i].payload.data(), msgs[i].payload.size());
      dispatch(msgs[i].topic, &view, 1);
    } else {
      std::vector<BytesView> views;
      views.reserve(j - i);
      for (std::size_t k = i; k < j; ++k) {
        views.emplace_back(msgs[k].payload.data(), msgs[k].payload.size());
      }
      dispatch(msgs[i].topic, views.data(), views.size());
    }
    i = j;
  }
}

}  // namespace iiot::backend
