#include "backend/topic_bus.hpp"

namespace iiot::backend {

bool topic_matches(std::string_view filter, std::string_view topic) {
  std::size_t fi = 0, ti = 0;
  while (fi <= filter.size() && ti <= topic.size()) {
    // Extract next level of each.
    const std::size_t fend = std::min(filter.find('/', fi), filter.size());
    const std::size_t tend = std::min(topic.find('/', ti), topic.size());
    const std::string_view flevel = filter.substr(fi, fend - fi);
    const std::string_view tlevel = topic.substr(ti, tend - ti);

    if (flevel == "#") return true;  // matches everything below
    const bool last_f = fend >= filter.size();
    const bool last_t = tend >= topic.size();
    if (flevel != "+" && flevel != tlevel) return false;
    if (last_f && last_t) return true;
    if (last_f != last_t) {
      // One ran out first; only "level/#" handles that, checked above.
      return false;
    }
    fi = fend + 1;
    ti = tend + 1;
  }
  return false;
}

}  // namespace iiot::backend
