#include "backend/sharded.hpp"

#include <algorithm>
#include <chrono>

namespace iiot::backend {

// ---- ShardedStore -----------------------------------------------------

ShardedStore::ShardedStore(std::uint32_t shards, RetentionPolicy retention,
                           runner::Engine* pool)
    : map_(shards), pool_(pool), group_(map_.shards()) {
  shards_.reserve(map_.shards());
  for (std::uint32_t i = 0; i < map_.shards(); ++i) {
    shards_.emplace_back(retention);
  }
}

ShardedStore::SeriesRef ShardedStore::intern(std::string_view series) {
  const std::uint32_t s = map_.shard_of_topic(series);
  return pack(s, shards_[s].intern(series));
}

ShardedStore::SeriesRef ShardedStore::find(std::string_view series) const {
  const std::uint32_t s = map_.shard_of_topic(series);
  const SeriesId local = shards_[s].find(series);
  return local == kInvalidSeries ? kNoSeries : pack(s, local);
}

const std::string& ShardedStore::name(SeriesRef ref) const {
  static const std::string kEmpty;
  const std::uint32_t s = shard_of(ref);
  return s < shards_.size() ? shards_[s].name(local_of(ref)) : kEmpty;
}

void ShardedStore::append(SeriesRef ref, sim::Time at, double value) {
  const std::uint32_t s = shard_of(ref);
  if (s >= shards_.size()) return;
  shards_[s].append(local_of(ref), at, value);
}

void ShardedStore::append_batch(SeriesRef ref, const Point* pts,
                                std::size_t n) {
  const std::uint32_t s = shard_of(ref);
  if (s >= shards_.size()) return;
  shards_[s].append_batch(local_of(ref), pts, n);
}

void ShardedStore::append_bulk(std::span<const Slice> slices) {
  ++stats_.bulk_calls;
  const std::size_t n = shards_.size();
  for (auto& g : group_) g.clear();
  std::vector<std::uint64_t> shard_points(n, 0);
  for (std::size_t i = 0; i < slices.size(); ++i) {
    const std::uint32_t s = shard_of(slices[i].ref);
    if (s >= n || slices[i].n == 0) continue;
    group_[s].push_back(static_cast<std::uint32_t>(i));
    shard_points[s] += slices[i].n;
    stats_.bulk_points += slices[i].n;
  }
  for (std::size_t s = 0; s < n; ++s) {
    batch_hist_.observe(static_cast<double>(shard_points[s]));
  }
  // One worker owns one whole shard: per-shard append order is the input
  // order, so the final state matches the serial loop at any job count.
  const runner::Engine::Task work = [&](std::size_t s) {
    for (const std::uint32_t i : group_[s]) {
      shards_[s].append_batch(local_of(slices[i].ref), slices[i].pts,
                              slices[i].n);
    }
  };
  if (pool_ != nullptr && n > 1) {
    pool_->run(n, work);
  } else {
    for (std::size_t s = 0; s < n; ++s) work(s);
  }
}

std::optional<Point> ShardedStore::latest(SeriesRef ref) const {
  const std::uint32_t s = shard_of(ref);
  if (s >= shards_.size()) return std::nullopt;
  return shards_[s].latest(local_of(ref));
}

std::vector<Point> ShardedStore::query(SeriesRef ref, sim::Time from,
                                       sim::Time to) const {
  const std::uint32_t s = shard_of(ref);
  if (s >= shards_.size()) return {};
  return shards_[s].query(local_of(ref), from, to);
}

std::vector<Point> ShardedStore::downsample(SeriesRef ref, sim::Time from,
                                            sim::Time to,
                                            sim::Duration bucket) const {
  const std::uint32_t s = shard_of(ref);
  if (s >= shards_.size()) return {};
  return shards_[s].downsample(local_of(ref), from, to, bucket);
}

agg::PartialAggregate ShardedStore::aggregate(SeriesRef ref, sim::Time from,
                                              sim::Time to) const {
  const std::uint32_t s = shard_of(ref);
  if (s >= shards_.size()) return {};
  return shards_[s].aggregate(local_of(ref), from, to);
}

std::size_t ShardedStore::points(SeriesRef ref) const {
  const std::uint32_t s = shard_of(ref);
  if (s >= shards_.size()) return 0;
  return shards_[s].points(local_of(ref));
}

void ShardedStore::aggregate_each(std::span<const SeriesRef> refs,
                                  sim::Time from, sim::Time to,
                                  agg::PartialAggregate* out) const {
  ++stats_.multi_aggregates;
  const std::size_t n = shards_.size();
  std::vector<std::vector<std::uint32_t>> groups(n);
  for (std::size_t i = 0; i < refs.size(); ++i) {
    out[i] = agg::PartialAggregate{};  // unknown refs stay empty
    const std::uint32_t s = shard_of(refs[i]);
    if (s < n) groups[s].push_back(static_cast<std::uint32_t>(i));
  }
  // Slot-keyed writes (out[i]) — the aggregation is a pure function of
  // the argument list, independent of shard count and worker count.
  const runner::Engine::Task work = [&](std::size_t s) {
    for (const std::uint32_t i : groups[s]) {
      out[i] = shards_[s].aggregate(local_of(refs[i]), from, to);
    }
  };
  if (pool_ != nullptr && n > 1) {
    pool_->run(n, work);
  } else {
    for (std::size_t s = 0; s < n; ++s) work(s);
  }
}

agg::PartialAggregate ShardedStore::aggregate_many(
    std::span<const SeriesRef> refs, sim::Time from, sim::Time to) const {
  std::vector<agg::PartialAggregate> parts(refs.size());
  aggregate_each(refs, from, to, parts.data());
  using clock = std::chrono::steady_clock;
  const auto t0 = merge_timed_ ? clock::now() : clock::time_point{};
  agg::PartialAggregate total;
  // Canonical merge order = argument order: bit-identical at any shard
  // count (a "fixed shard order" fold would reorder float sums whenever
  // the shard count changes the partition).
  for (const agg::PartialAggregate& p : parts) total.merge(p);
  stats_.merged_partials += parts.size();
  if (merge_timed_) {
    merge_hist_.observe(
        std::chrono::duration<double, std::micro>(clock::now() - t0)
            .count());
  }
  return total;
}

std::size_t ShardedStore::series_count() const {
  std::size_t n = 0;
  for (const TimeSeriesStore& s : shards_) n += s.series_count();
  return n;
}

std::uint64_t ShardedStore::total_appended() const {
  std::uint64_t n = 0;
  for (const TimeSeriesStore& s : shards_) n += s.total_appended();
  return n;
}

std::vector<std::string> ShardedStore::series_names() const {
  std::vector<std::string> out;
  out.reserve(series_count());
  for (const TimeSeriesStore& s : shards_) {
    const auto names = s.series_names();
    out.insert(out.end(), names.begin(), names.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---- ShardedBus -------------------------------------------------------

ShardedBus::ShardedBus(std::uint32_t shards, runner::Engine* pool)
    : map_(shards), pool_(pool), group_(map_.shards()) {
  shards_.reserve(map_.shards());
  for (std::uint32_t i = 0; i < map_.shards(); ++i) shards_.emplace_back();
}

std::uint32_t ShardedBus::route(std::string_view topic) const {
  ++stats_.routed;
  if (map_.shards() == 1) return 0;
  const std::string_view level = ShardMap::first_level(topic);
  auto it = route_memo_.find(level);
  if (it != route_memo_.end()) {
    ++stats_.route_memo_hits;
    return it->second;
  }
  const std::uint32_t s = map_.shard_of_key(level);
  route_memo_.emplace(std::string(level), s);
  return s;
}

ShardedBus::SubId ShardedBus::subscribe(std::string filter, Handler handler) {
  const SubId id = next_id_++;
  const std::string_view level = ShardMap::first_level(filter);
  std::vector<std::pair<std::uint32_t, TopicBus::SubId>> locals;
  if (level == "+" || level == "#") {
    // Wildcard-rooted: every shard can carry a matching topic. The
    // handler is shared, not copied — captured state must not fork.
    auto shared = std::make_shared<Handler>(std::move(handler));
    locals.reserve(shards_.size());
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      locals.emplace_back(
          s, shards_[s].subscribe(
                 filter, [shared](const std::string& topic, BytesView p) {
                   (*shared)(topic, p);
                 }));
    }
  } else {
    const std::uint32_t s = route(filter);
    locals.emplace_back(
        s, shards_[s].subscribe(std::move(filter), std::move(handler)));
  }
  subs_.emplace(id, std::move(locals));
  ++active_;
  return id;
}

void ShardedBus::unsubscribe(SubId id) {
  auto it = subs_.find(id);
  if (it == subs_.end()) return;
  for (const auto& [s, local] : it->second) shards_[s].unsubscribe(local);
  subs_.erase(it);
  --active_;
}

void ShardedBus::publish(const std::string& topic, BytesView payload) {
  shards_[route(topic)].publish(topic, payload);
}

void ShardedBus::publish_batch(const std::string& topic,
                               std::span<const BytesView> payloads) {
  shards_[route(topic)].publish_batch(topic, payloads);
}

void ShardedBus::publish_batch(std::span<const BusMessage> msgs) {
  std::size_t i = 0;
  while (i < msgs.size()) {
    // Same run-coalescing as TopicBus::publish_batch, with one route per
    // run; runs dispatch in input order, so serial multi-topic batches
    // are observably identical to a single bus.
    std::size_t j = i + 1;
    while (j < msgs.size() && msgs[j].topic == msgs[i].topic) ++j;
    std::vector<BytesView> views;
    views.reserve(j - i);
    for (std::size_t k = i; k < j; ++k) {
      views.emplace_back(msgs[k].payload.data(), msgs[k].payload.size());
    }
    shards_[route(msgs[i].topic)].publish_batch(msgs[i].topic, views);
    i = j;
  }
}

void ShardedBus::publish_batch_parallel(std::span<const BusMessage> msgs) {
  ++stats_.parallel_batches;
  const std::size_t n = shards_.size();
  if (pool_ == nullptr || n == 1) {
    publish_batch(msgs);
    return;
  }
  for (auto& g : group_) g.clear();
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    group_[route(msgs[i].topic)].push_back(static_cast<std::uint32_t>(i));
  }
  for (std::size_t s = 0; s < n; ++s) {
    queue_hist_.observe(static_cast<double>(group_[s].size()));
  }
  // One worker per shard; within a shard, messages keep input order, so
  // every topic's (and therefore every subscription's) delivery sequence
  // matches the serial path. Cross-shard interleaving is unordered —
  // handlers must be shard-affine (see header).
  const runner::Engine::Task work = [&](std::size_t s) {
    const std::vector<std::uint32_t>& idx = group_[s];
    std::size_t i = 0;
    std::vector<BytesView> views;
    while (i < idx.size()) {
      std::size_t j = i + 1;
      while (j < idx.size() && msgs[idx[j]].topic == msgs[idx[i]].topic) {
        ++j;
      }
      views.clear();
      views.reserve(j - i);
      for (std::size_t k = i; k < j; ++k) {
        views.emplace_back(msgs[idx[k]].payload.data(),
                           msgs[idx[k]].payload.size());
      }
      shards_[s].publish_batch(msgs[idx[i]].topic, views);
      i = j;
    }
  };
  pool_->run(n, work);
}

std::uint64_t ShardedBus::published() const {
  std::uint64_t n = 0;
  for (const TopicBus& b : shards_) n += b.published();
  return n;
}

std::uint64_t ShardedBus::delivered() const {
  std::uint64_t n = 0;
  for (const TopicBus& b : shards_) n += b.delivered();
  return n;
}

void ShardedBus::set_fanout_histogram(obs::Histogram h) {
  for (TopicBus& b : shards_) b.set_fanout_histogram(h);
}

}  // namespace iiot::backend
