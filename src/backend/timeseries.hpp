// In-memory time-series store — the data-storage tier of Fig. 1.
// Append-only per-series logs with retention and bucketed downsampling.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace iiot::backend {

struct Point {
  sim::Time at = 0;
  double value = 0.0;
};

struct RetentionPolicy {
  sim::Duration max_age = 0;      // 0 = unlimited
  std::size_t max_points = 0;     // 0 = unlimited
};

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(RetentionPolicy retention = {})
      : retention_(retention) {}

  void append(const std::string& series, sim::Time at, double value) {
    auto& log = series_[series];
    // Enforce monotone time per series (out-of-order points are clamped).
    if (!log.empty() && at < log.back().at) at = log.back().at;
    log.push_back(Point{at, value});
    ++appended_;
    enforce_retention(log, at);
  }

  [[nodiscard]] std::optional<Point> latest(const std::string& series) const {
    auto it = series_.find(series);
    if (it == series_.end() || it->second.empty()) return std::nullopt;
    return it->second.back();
  }

  /// Points with at in [from, to].
  [[nodiscard]] std::vector<Point> query(const std::string& series,
                                         sim::Time from, sim::Time to) const {
    std::vector<Point> out;
    auto it = series_.find(series);
    if (it == series_.end()) return out;
    for (const Point& p : it->second) {
      if (p.at >= from && p.at <= to) out.push_back(p);
    }
    return out;
  }

  /// Average-downsampled view: one point per `bucket` of time.
  [[nodiscard]] std::vector<Point> downsample(const std::string& series,
                                              sim::Time from, sim::Time to,
                                              sim::Duration bucket) const {
    std::vector<Point> out;
    if (bucket == 0) return out;
    auto raw = query(series, from, to);
    std::size_t i = 0;
    while (i < raw.size()) {
      const sim::Time start = raw[i].at - (raw[i].at - from) % bucket;
      double sum = 0;
      std::size_t n = 0;
      while (i < raw.size() && raw[i].at < start + bucket) {
        sum += raw[i].value;
        ++n;
        ++i;
      }
      out.push_back(Point{start, sum / static_cast<double>(n)});
    }
    return out;
  }

  [[nodiscard]] std::size_t series_count() const { return series_.size(); }
  [[nodiscard]] std::size_t points(const std::string& series) const {
    auto it = series_.find(series);
    return it == series_.end() ? 0 : it->second.size();
  }
  [[nodiscard]] std::uint64_t total_appended() const { return appended_; }
  [[nodiscard]] std::vector<std::string> series_names() const {
    std::vector<std::string> out;
    out.reserve(series_.size());
    for (const auto& [name, _] : series_) out.push_back(name);
    return out;
  }

 private:
  void enforce_retention(std::deque<Point>& log, sim::Time now) {
    if (retention_.max_age > 0) {
      while (!log.empty() &&
             log.front().at + retention_.max_age < now) {
        log.pop_front();
      }
    }
    if (retention_.max_points > 0) {
      while (log.size() > retention_.max_points) log.pop_front();
    }
  }

  RetentionPolicy retention_;
  std::map<std::string, std::deque<Point>> series_;
  std::uint64_t appended_ = 0;
};

}  // namespace iiot::backend
