// In-memory time-series store — the data-storage tier of Fig. 1.
//
// Backend fast path (DESIGN.md §4f): series names are interned to dense
// SeriesId integers (one hash at registration, integer indexing on every
// access after), points live in chunked append-friendly arrays, and each
// full chunk carries a precomputed agg::PartialAggregate rollup
// (count/sum/min/max). Per-series time monotonicity (out-of-order points
// are clamped, as in the seed store) makes every range lookup a binary
// search over chunk boundaries instead of a linear scan, and lets
// downsample() read whole-chunk rollups instead of rescanning raw points.
//
// The string-keyed API of the seed store is preserved as a thin shim over
// the SeriesId hot path; query results are byte-identical to the seed
// implementation. Determinism contract: no RNG, no scheduler, results are
// a pure function of the append sequence. Bucket averages merge per-chunk
// partial sums in chunk order, which is deterministic but may differ from
// strict left-to-right summation in the final ulp for adversarial
// floating-point inputs (exact for integer-valued samples).
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "agg/aggregate.hpp"
#include "sim/time.hpp"

namespace iiot::backend {

struct Point {
  sim::Time at = 0;
  double value = 0.0;
};

struct RetentionPolicy {
  sim::Duration max_age = 0;      // 0 = unlimited
  std::size_t max_points = 0;     // 0 = unlimited
};

/// Dense series handle returned by TimeSeriesStore::intern().
using SeriesId = std::uint32_t;
inline constexpr SeriesId kInvalidSeries =
    std::numeric_limits<SeriesId>::max();

/// Struct-backed counters in the obs::MetricsRegistry attach_counter
/// style: plain uint64 increments on the hot path, snapshot-time reads.
struct TimeSeriesStats {
  std::uint64_t appends = 0;       // points accepted (incl. batched)
  std::uint64_t evicted = 0;       // points dropped by retention
  std::uint64_t queries = 0;       // query()/visit() range lookups
  std::uint64_t downsamples = 0;   // downsample() calls
  std::uint64_t rollup_hits = 0;   // chunks answered from their rollup
  std::uint64_t chunk_scans = 0;   // chunks that needed a raw point scan
  /// Writes through the string-keyed append shim, which interns per call.
  /// Hot ingest paths (core::System's measurement handler, batched bulk
  /// appends) resolve a SeriesId once and must keep this cold — tests
  /// assert it stays 0 across System ingest bursts.
  std::uint64_t string_appends = 0;
};

class TimeSeriesStore {
 public:
  /// Generic series-handle vocabulary, shared with ShardedStore so the
  /// rule engine template binds to either store uniformly.
  using SeriesRef = SeriesId;
  static constexpr SeriesRef kNoSeries = kInvalidSeries;

  explicit TimeSeriesStore(RetentionPolicy retention = {})
      : retention_(retention) {}

  // ---- interning ----------------------------------------------------
  /// Registers `series` (idempotent) and returns its dense id. The one
  /// place a string is hashed; every accessor below indexes by integer.
  SeriesId intern(std::string_view series);
  /// Id of an already-registered series, or kInvalidSeries. Never
  /// registers — string-shim reads go through this so that, as in the
  /// seed store, querying an unknown series does not create it.
  [[nodiscard]] SeriesId find(std::string_view series) const;
  [[nodiscard]] const std::string& name(SeriesId id) const;

  // ---- hot path (SeriesId-indexed) ----------------------------------
  void append(SeriesId id, sim::Time at, double value);
  /// Batched append: same final state, counters, and retention outcome
  /// as the equivalent sequence of single appends (monotone clamping
  /// makes the final retention pass dominate the per-append ones).
  void append_batch(SeriesId id, const Point* pts, std::size_t n);

  [[nodiscard]] std::optional<Point> latest(SeriesId id) const;
  [[nodiscard]] std::vector<Point> query(SeriesId id, sim::Time from,
                                         sim::Time to) const;
  [[nodiscard]] std::vector<Point> downsample(SeriesId id, sim::Time from,
                                              sim::Time to,
                                              sim::Duration bucket) const;
  /// Decomposable aggregate over [from, to]: whole chunks inside the
  /// range are merged from their rollups without touching raw points.
  [[nodiscard]] agg::PartialAggregate aggregate(SeriesId id, sim::Time from,
                                                sim::Time to) const;
  [[nodiscard]] std::size_t points(SeriesId id) const {
    return id < logs_.size() ? logs_[id].total : 0;
  }

  /// Non-allocating range visitor: invokes f(const Point&) for every
  /// point with at in [from, to], in time order. The zero-copy overload
  /// query() and the rule engine's windowed conditions build on.
  template <typename F>
  void visit(SeriesId id, sim::Time from, sim::Time to, F&& f) const {
    ++stats_.queries;
    if (id >= logs_.size() || to < from) return;
    const SeriesLog& log = logs_[id];
    for (std::size_t ci = chunk_lower_bound(log, from);
         ci < log.chunks.size(); ++ci) {
      const Chunk& c = log.chunks[ci];
      if (c.first_at() > to) break;
      const Point* p = c.pts.data() + c.head;
      const Point* end = c.pts.data() + c.pts.size();
      if (p->at < from) p = lower_bound_at(p, end, from);
      for (; p != end; ++p) {
        if (p->at > to) return;
        f(*p);
      }
    }
  }

  // ---- string shims (seed-store API, preserved) ---------------------
  void append(const std::string& series, sim::Time at, double value) {
    ++stats_.string_appends;  // hot callers must pre-intern (see stats)
    append(intern(series), at, value);
  }
  [[nodiscard]] std::optional<Point> latest(const std::string& series) const {
    return latest(find(series));
  }
  [[nodiscard]] std::vector<Point> query(const std::string& series,
                                         sim::Time from, sim::Time to) const {
    return query(find(series), from, to);
  }
  [[nodiscard]] std::vector<Point> downsample(const std::string& series,
                                              sim::Time from, sim::Time to,
                                              sim::Duration bucket) const {
    return downsample(find(series), from, to, bucket);
  }
  [[nodiscard]] std::size_t points(const std::string& series) const {
    return points(find(series));
  }

  // ---- inventory ----------------------------------------------------
  [[nodiscard]] std::size_t series_count() const { return names_.size(); }
  [[nodiscard]] std::uint64_t total_appended() const {
    return stats_.appends;
  }
  /// Registered series names in sorted order (the seed store's map
  /// iteration order).
  [[nodiscard]] std::vector<std::string> series_names() const;

  [[nodiscard]] const TimeSeriesStats& stats() const { return stats_; }

 private:
  /// Chunk capacity: 4 KiB of points — small enough that partial-bucket
  /// scans stay cheap, large enough that rollups shrink downsample work
  /// by ~256x.
  static constexpr std::size_t kChunkCap = 256;

  // Points append at the back; retention erodes `head` forward. `agg`
  // rolls up every point ever appended to the chunk, so it is exact iff
  // head == 0 (only the front chunk can be eroded; consumers raw-scan
  // that one chunk and use rollups everywhere else).
  struct Chunk {
    std::vector<Point> pts;
    std::uint32_t head = 0;
    agg::PartialAggregate agg;

    [[nodiscard]] sim::Time first_at() const { return pts[head].at; }
    [[nodiscard]] sim::Time last_at() const { return pts.back().at; }
  };

  struct SeriesLog {
    std::deque<Chunk> chunks;
    std::size_t total = 0;  // live (non-eroded) points
  };

  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  /// Index of the first chunk whose last point is >= from.
  static std::size_t chunk_lower_bound(const SeriesLog& log, sim::Time from);
  static const Point* lower_bound_at(const Point* first, const Point* last,
                                     sim::Time from);

  Chunk& writable_chunk(SeriesLog& log);
  void erode_front(SeriesLog& log);
  void enforce_retention(SeriesLog& log, sim::Time now);

  RetentionPolicy retention_;
  std::unordered_map<std::string, SeriesId, StringHash, std::equal_to<>>
      ids_;
  std::vector<std::string> names_;  // id -> name
  std::vector<SeriesLog> logs_;     // id -> log
  mutable TimeSeriesStats stats_;
};

}  // namespace iiot::backend
