#include "backend/timeseries.hpp"

#include <algorithm>

namespace iiot::backend {

// ---- interning --------------------------------------------------------

SeriesId TimeSeriesStore::intern(std::string_view series) {
  auto it = ids_.find(series);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<SeriesId>(names_.size());
  names_.emplace_back(series);
  logs_.emplace_back();
  ids_.emplace(names_.back(), id);
  return id;
}

SeriesId TimeSeriesStore::find(std::string_view series) const {
  auto it = ids_.find(series);
  return it != ids_.end() ? it->second : kInvalidSeries;
}

const std::string& TimeSeriesStore::name(SeriesId id) const {
  static const std::string kEmpty;
  return id < names_.size() ? names_[id] : kEmpty;
}

std::vector<std::string> TimeSeriesStore::series_names() const {
  std::vector<std::string> out = names_;
  std::sort(out.begin(), out.end());
  return out;
}

// ---- append path ------------------------------------------------------

TimeSeriesStore::Chunk& TimeSeriesStore::writable_chunk(SeriesLog& log) {
  if (log.chunks.empty() || log.chunks.back().pts.size() >= kChunkCap) {
    log.chunks.emplace_back();
    log.chunks.back().pts.reserve(kChunkCap);
  }
  return log.chunks.back();
}

void TimeSeriesStore::append(SeriesId id, sim::Time at, double value) {
  if (id >= logs_.size()) return;
  SeriesLog& log = logs_[id];
  // Enforce monotone time per series (out-of-order points are clamped).
  if (log.total > 0) {
    const sim::Time last = log.chunks.back().last_at();
    if (at < last) at = last;
  }
  Chunk& c = writable_chunk(log);
  c.pts.push_back(Point{at, value});
  c.agg.add_sample(value);
  ++log.total;
  ++stats_.appends;
  enforce_retention(log, at);
}

void TimeSeriesStore::append_batch(SeriesId id, const Point* pts,
                                   std::size_t n) {
  if (id >= logs_.size() || n == 0) return;
  SeriesLog& log = logs_[id];
  sim::Time last =
      log.total > 0 ? log.chunks.back().last_at() : sim::Time{0};
  bool clamp = log.total > 0;
  for (std::size_t i = 0; i < n; ++i) {
    sim::Time at = pts[i].at;
    if (clamp && at < last) at = last;
    last = at;
    clamp = true;
    Chunk& c = writable_chunk(log);
    c.pts.push_back(Point{at, pts[i].value});
    c.agg.add_sample(pts[i].value);
    ++log.total;
  }
  stats_.appends += n;
  // Clamped times are monotone, so one retention pass at the batch's
  // final timestamp reaches the same state as a pass after every append.
  enforce_retention(log, last);
}

void TimeSeriesStore::erode_front(SeriesLog& log) {
  Chunk& c = log.chunks.front();
  ++c.head;
  --log.total;
  ++stats_.evicted;
  if (c.head == c.pts.size()) log.chunks.pop_front();
}

void TimeSeriesStore::enforce_retention(SeriesLog& log, sim::Time now) {
  if (retention_.max_age > 0) {
    while (log.total > 0 &&
           log.chunks.front().first_at() + retention_.max_age < now) {
      erode_front(log);
    }
  }
  if (retention_.max_points > 0) {
    while (log.total > retention_.max_points) erode_front(log);
  }
}

// ---- range lookups ----------------------------------------------------

std::size_t TimeSeriesStore::chunk_lower_bound(const SeriesLog& log,
                                               sim::Time from) {
  std::size_t lo = 0;
  std::size_t hi = log.chunks.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (log.chunks[mid].last_at() < from) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

const Point* TimeSeriesStore::lower_bound_at(const Point* first,
                                             const Point* last,
                                             sim::Time from) {
  return std::lower_bound(
      first, last, from,
      [](const Point& p, sim::Time t) { return p.at < t; });
}

std::optional<Point> TimeSeriesStore::latest(SeriesId id) const {
  if (id >= logs_.size() || logs_[id].total == 0) return std::nullopt;
  const Chunk& back = logs_[id].chunks.back();
  return back.pts.back();
}

std::vector<Point> TimeSeriesStore::query(SeriesId id, sim::Time from,
                                          sim::Time to) const {
  std::vector<Point> out;
  visit(id, from, to, [&out](const Point& p) { out.push_back(p); });
  return out;
}

agg::PartialAggregate TimeSeriesStore::aggregate(SeriesId id, sim::Time from,
                                                 sim::Time to) const {
  agg::PartialAggregate pa;
  ++stats_.queries;
  if (id >= logs_.size() || to < from) return pa;
  const SeriesLog& log = logs_[id];
  for (std::size_t ci = chunk_lower_bound(log, from); ci < log.chunks.size();
       ++ci) {
    const Chunk& c = log.chunks[ci];
    if (c.first_at() > to) break;
    if (c.head == 0 && c.first_at() >= from && c.last_at() <= to) {
      pa.merge(c.agg);
      ++stats_.rollup_hits;
      continue;
    }
    ++stats_.chunk_scans;
    const Point* p = c.pts.data() + c.head;
    const Point* end = c.pts.data() + c.pts.size();
    if (p->at < from) p = lower_bound_at(p, end, from);
    for (; p != end && p->at <= to; ++p) pa.add_sample(p->value);
  }
  return pa;
}

std::vector<Point> TimeSeriesStore::downsample(SeriesId id, sim::Time from,
                                               sim::Time to,
                                               sim::Duration bucket) const {
  std::vector<Point> out;
  ++stats_.downsamples;
  if (bucket == 0 || id >= logs_.size() || to < from) return out;
  const SeriesLog& log = logs_[id];

  sim::Time start = 0;
  double sum = 0.0;
  std::size_t n = 0;
  bool open = false;
  auto flush = [&] {
    if (open) {
      out.push_back(Point{start, sum / static_cast<double>(n)});
      open = false;
      sum = 0.0;
      n = 0;
    }
  };

  for (std::size_t ci = chunk_lower_bound(log, from); ci < log.chunks.size();
       ++ci) {
    const Chunk& c = log.chunks[ci];
    if (c.first_at() > to) break;
    // Whole-chunk rollup: a full, un-eroded chunk inside [from, to] whose
    // points all land in a single bucket contributes count/sum without a
    // point scan.
    if (c.head == 0 && c.first_at() >= from && c.last_at() <= to) {
      const sim::Time cstart =
          c.first_at() - (c.first_at() - from) % bucket;
      if (c.last_at() < cstart + bucket) {
        if (!open || cstart != start) {
          flush();
          start = cstart;
          open = true;
        }
        sum += c.agg.sum;
        n += c.agg.count;
        ++stats_.rollup_hits;
        continue;
      }
    }
    ++stats_.chunk_scans;
    const Point* p = c.pts.data() + c.head;
    const Point* end = c.pts.data() + c.pts.size();
    if (p->at < from) p = lower_bound_at(p, end, from);
    for (; p != end; ++p) {
      if (p->at > to) break;
      if (!open || p->at >= start + bucket) {
        flush();
        start = p->at - (p->at - from) % bucket;
        open = true;
      }
      sum += p->value;
      ++n;
    }
  }
  flush();
  return out;
}

}  // namespace iiot::backend
