// Condition → actuation rule engine: the application-logic tier's
// closed-loop path from sensed values back down to actuators.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "backend/topic_bus.hpp"

namespace iiot::backend {

enum class CmpOp { kLess, kLessEqual, kGreater, kGreaterEqual, kEqual };

struct Condition {
  std::string topic_filter;  // which measurements to watch
  CmpOp op = CmpOp::kGreater;
  double threshold = 0.0;
  /// Consecutive matching samples required before firing (debounce).
  int consecutive = 1;

  [[nodiscard]] bool holds(double v) const {
    switch (op) {
      case CmpOp::kLess: return v < threshold;
      case CmpOp::kLessEqual: return v <= threshold;
      case CmpOp::kGreater: return v > threshold;
      case CmpOp::kGreaterEqual: return v >= threshold;
      case CmpOp::kEqual: return v == threshold;
    }
    return false;
  }
};

struct RuleFiring {
  std::string rule_id;
  std::string topic;   // measurement topic that triggered
  double value = 0.0;
};

/// Action: publishes a command on the bus and/or invokes a callback.
struct Action {
  std::string command_topic;  // empty = no publish
  std::string command_payload;
  std::function<void(const RuleFiring&)> callback;  // may be empty
};

class RuleEngine {
 public:
  explicit RuleEngine(TopicBus& bus) : bus_(bus) {}

  /// Installs a rule; measurements must be numeric ASCII payloads.
  void add_rule(std::string id, Condition cond, Action action) {
    auto rule = std::make_shared<Rule>();
    rule->id = id;
    rule->cond = std::move(cond);
    rule->action = std::move(action);
    rule->sub = bus_.subscribe(
        rule->cond.topic_filter,
        [this, rule](const std::string& topic, BytesView payload) {
          evaluate(*rule, topic, payload);
        });
    rules_[std::move(id)] = rule;
  }

  void remove_rule(const std::string& id) {
    auto it = rules_.find(id);
    if (it == rules_.end()) return;
    bus_.unsubscribe(it->second->sub);
    rules_.erase(it);
  }

  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }
  [[nodiscard]] std::uint64_t firings() const { return firings_; }

 private:
  struct Rule {
    std::string id;
    Condition cond;
    Action action;
    TopicBus::SubId sub = 0;
    std::map<std::string, int> streak;  // per-topic debounce state
  };

  void evaluate(Rule& rule, const std::string& topic, BytesView payload) {
    const auto value = parse_number(payload);
    if (!value) return;
    int& streak = rule.streak[topic];
    if (!rule.cond.holds(*value)) {
      streak = 0;
      return;
    }
    if (++streak < rule.cond.consecutive) return;
    streak = 0;
    ++firings_;
    RuleFiring firing{rule.id, topic, *value};
    if (!rule.action.command_topic.empty()) {
      bus_.publish(rule.action.command_topic, rule.action.command_payload);
    }
    if (rule.action.callback) rule.action.callback(firing);
  }

  static std::optional<double> parse_number(BytesView payload) {
    std::string s(payload.begin(), payload.end());
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str()) return std::nullopt;
    return v;
  }

  TopicBus& bus_;
  std::map<std::string, std::shared_ptr<Rule>> rules_;
  std::uint64_t firings_ = 0;
};

}  // namespace iiot::backend
