// Condition → actuation rule engine: the application-logic tier's
// closed-loop path from sensed values back down to actuators.
//
// Two rule families:
//   * point rules (add_rule)        — threshold + debounce on each sample;
//   * window rules (add_window_rule) — threshold on a decomposable
//     aggregate (min/max/sum/count/avg) over the trailing time window of
//     the measurement's series in the TimeSeriesStore. Evaluation rides
//     the store's rollup-indexed aggregate() fast path, so a firing
//     decision never rescans (or copies) the raw window.
//
// The engine is generic over its bus and store (BasicRuleEngine): the
// classic single-shard plane instantiates RuleEngine =
// BasicRuleEngine<TopicBus, TimeSeriesStore>, the sharded backend tier
// (DESIGN.md §4g) instantiates ShardedRuleEngine over ShardedBus /
// ShardedStore. A store type only needs find()/latest()/aggregate() plus
// the SeriesRef/kNoSeries vocabulary; a bus type needs
// subscribe()/unsubscribe()/publish().
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "backend/timeseries.hpp"
#include "backend/topic_bus.hpp"

namespace iiot::backend {

enum class CmpOp { kLess, kLessEqual, kGreater, kGreaterEqual, kEqual };

[[nodiscard]] inline bool cmp_holds(CmpOp op, double v, double threshold) {
  switch (op) {
    case CmpOp::kLess: return v < threshold;
    case CmpOp::kLessEqual: return v <= threshold;
    case CmpOp::kGreater: return v > threshold;
    case CmpOp::kGreaterEqual: return v >= threshold;
    case CmpOp::kEqual: return v == threshold;
  }
  return false;
}

struct Condition {
  std::string topic_filter;  // which measurements to watch
  CmpOp op = CmpOp::kGreater;
  double threshold = 0.0;
  /// Consecutive matching samples required before firing (debounce).
  int consecutive = 1;

  [[nodiscard]] bool holds(double v) const {
    return cmp_holds(op, v, threshold);
  }
};

/// Windowed condition: `fn` over the trailing `window` of the series that
/// carries the triggering topic, compared against `threshold`. The
/// window's reference point is the series' newest sample, so evaluation
/// is well-defined with or without a scheduler.
struct WindowCondition {
  std::string topic_filter;
  sim::Duration window = 0;
  agg::AggFn fn = agg::AggFn::kAvg;
  CmpOp op = CmpOp::kGreater;
  double threshold = 0.0;
  /// Minimum samples in the window before the rule may fire.
  std::uint32_t min_samples = 1;
};

struct RuleFiring {
  std::string rule_id;
  std::string topic;   // measurement topic that triggered
  double value = 0.0;  // sample value (point rules) / aggregate (window)
};

/// Action: publishes a command on the bus and/or invokes a callback.
struct Action {
  std::string command_topic;  // empty = no publish
  std::string command_payload;
  std::function<void(const RuleFiring&)> callback;  // may be empty
};

template <typename BusT, typename StoreT>
class BasicRuleEngine {
 public:
  using SubId = typename BusT::SubId;
  using SeriesRef = typename StoreT::SeriesRef;

  /// `store` is required only for window rules; point rules never touch
  /// it.
  explicit BasicRuleEngine(BusT& bus, StoreT* store = nullptr)
      : bus_(bus), store_(store) {}

  /// Installs a rule; measurements must be numeric ASCII payloads.
  void add_rule(std::string id, Condition cond, Action action) {
    auto rule = std::make_shared<Rule>();
    rule->id = id;
    rule->cond = std::move(cond);
    rule->action = std::move(action);
    rule->sub = bus_.subscribe(
        rule->cond.topic_filter,
        [this, rule](const std::string& topic, BytesView payload) {
          evaluate(*rule, topic, payload);
        });
    rules_[std::move(id)] = rule;
  }

  /// Installs a windowed rule (requires a store at construction). Fires
  /// at most once per triggering sample; the firing carries the
  /// aggregate's value.
  void add_window_rule(std::string id, WindowCondition cond, Action action) {
    if (store_ == nullptr) return;
    auto rule = std::make_shared<WindowRule>();
    rule->id = id;
    rule->cond = std::move(cond);
    rule->action = std::move(action);
    rule->sub = bus_.subscribe(
        rule->cond.topic_filter,
        [this, rule](const std::string& topic, BytesView) {
          evaluate_window(*rule, topic);
        });
    window_rules_[std::move(id)] = rule;
  }

  void remove_rule(const std::string& id) {
    auto it = rules_.find(id);
    if (it != rules_.end()) {
      bus_.unsubscribe(it->second->sub);
      rules_.erase(it);
      return;
    }
    auto wit = window_rules_.find(id);
    if (wit != window_rules_.end()) {
      bus_.unsubscribe(wit->second->sub);
      window_rules_.erase(wit);
    }
  }

  [[nodiscard]] std::size_t rule_count() const {
    return rules_.size() + window_rules_.size();
  }
  [[nodiscard]] std::uint64_t firings() const { return firings_; }
  /// Window-rule evaluations skipped because the triggering topic has no
  /// series in the store (e.g. a < 3-level topic that the System's
  /// "+/+/#" ingest subscription never captures). A nonzero value under
  /// core::System usually means a rule filter matches topics outside the
  /// measurement namespace.
  [[nodiscard]] std::uint64_t window_skips() const { return window_skips_; }

 private:
  struct Rule {
    std::string id;
    Condition cond;
    Action action;
    SubId sub{};
    std::map<std::string, int> streak;  // per-topic debounce state
  };

  struct WindowRule {
    std::string id;
    WindowCondition cond;
    Action action;
    SubId sub{};
    // Topic → series memo: series registrations are permanent, so once a
    // topic resolved, re-triggering samples skip the string-keyed find()
    // (the hot-path audit in DESIGN.md §4g). A filter matching several
    // topics keeps the newest; alternating topics degrade to find().
    std::string memo_topic;
    SeriesRef memo_ref = StoreT::kNoSeries;
  };

  void fire(const std::string& id, const Action& action,
            const std::string& topic, double value) {
    ++firings_;
    RuleFiring firing{id, topic, value};
    if (!action.command_topic.empty()) {
      bus_.publish(action.command_topic, action.command_payload);
    }
    if (action.callback) action.callback(firing);
  }

  void evaluate(Rule& rule, const std::string& topic, BytesView payload) {
    const auto value = parse_number(payload);
    if (!value) return;
    int& streak = rule.streak[topic];
    if (!rule.cond.holds(*value)) {
      streak = 0;
      return;
    }
    if (++streak < rule.cond.consecutive) return;
    streak = 0;
    fire(rule.id, rule.action, topic, *value);
  }

  void evaluate_window(WindowRule& rule, const std::string& topic) {
    // Ordering invariant (core::System): the store's "+/+/#" ingest
    // subscription is registered in the System constructor — before any
    // rule can subscribe — so its SubId is lower and, by the bus's
    // ascending-SubId delivery order, the triggering sample is already
    // appended when this runs. Standalone rule-engine users must likewise
    // register their ingest subscription before adding window rules.
    //
    // Topics the ingest subscription does not capture (e.g. fewer than 3
    // levels under "+/+/#") have no series; those evaluations are
    // counted in window_skips() rather than silently dropped.
    SeriesRef sid = rule.memo_ref;
    if (sid == StoreT::kNoSeries || topic != rule.memo_topic) {
      sid = store_->find(topic);
      if (sid == StoreT::kNoSeries) {
        ++window_skips_;
        return;
      }
      rule.memo_topic = topic;
      rule.memo_ref = sid;
    }
    const auto last = store_->latest(sid);
    if (!last) return;
    const sim::Time from =
        last->at >= rule.cond.window ? last->at - rule.cond.window : 0;
    const agg::PartialAggregate pa =
        store_->aggregate(sid, from, last->at);
    if (pa.count < rule.cond.min_samples) return;
    const double v = pa.evaluate(rule.cond.fn);
    if (!cmp_holds(rule.cond.op, v, rule.cond.threshold)) return;
    fire(rule.id, rule.action, topic, v);
  }

  static std::optional<double> parse_number(BytesView payload) {
    // Numeric payloads are short ("%.4f"-formatted); parse from a stack
    // buffer instead of a heap string.
    char buf[64];
    if (payload.size() >= sizeof(buf)) return std::nullopt;
    std::memcpy(buf, payload.data(), payload.size());
    buf[payload.size()] = '\0';
    char* end = nullptr;
    const double v = std::strtod(buf, &end);
    if (end == buf) return std::nullopt;
    return v;
  }

  BusT& bus_;
  StoreT* store_ = nullptr;
  std::map<std::string, std::shared_ptr<Rule>> rules_;
  std::map<std::string, std::shared_ptr<WindowRule>> window_rules_;
  std::uint64_t firings_ = 0;
  std::uint64_t window_skips_ = 0;
};

/// The classic single-shard application-logic plane.
using RuleEngine = BasicRuleEngine<TopicBus, TimeSeriesStore>;

}  // namespace iiot::backend
