#include "pdes/world.hpp"

#include <bit>
#include <stdexcept>

namespace iiot::pdes {

namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t fnv1a(std::uint64_t h, double v) {
  return fnv1a(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

core::NodeConfig IslandWorldConfig::node_config() {
  core::NodeConfig node;
  node.mac = core::MacKind::kCsma;
  // Cross-island deliveries are quantized to window boundaries: a data
  // frame lands up to ~2 windows late and so does the returning ack. Six
  // windows of ack patience covers the round trip with headroom.
  node.csma.ack_timeout = 6 * radio::kDefaultIslandWindow;
  // City diameters exceed the default hop budget by a wide margin.
  node.rpl.max_hops = 200;
  // Dense city grids live with contention bursts, and border nodes
  // additionally eat up to one window of cross-island CCA blindness —
  // correlated ack losses are the norm, not a parent-health signal.
  // Evicting after the default 3 failures turns every burst into a
  // repair storm whose beacons cause the next burst (the feedback loop
  // that melts the 5k-node city); 8 failures of patience breaks it.
  node.rpl.max_parent_failures = 8;
  // Storing-mode downward routing cannot survive city diameter: every
  // node unicasting a DAO up ~40 hops every 30 s puts ~2.8M acked
  // unicasts on the 5390-node city's channel per run — >100x the data
  // traffic, and the congestion that melts it. Island worlds model
  // upward telemetry; downward routes stay off (the paper's hierarchy
  // argument — per-district border routers — is the real answer).
  node.rpl.downward_routes = false;
  return node;
}

IslandWorld::IslandWorld(IslandWorldConfig cfg)
    : cfg_(cfg),
      plan_([&] {
        std::vector<radio::Position> pos;
        pos.reserve(cfg.nodes());
        const std::size_t side = cfg.island_side;
        for (std::size_t iy = 0; iy < cfg.islands_y; ++iy) {
          for (std::size_t ix = 0; ix < cfg.islands_x; ++ix) {
            for (std::size_t ny = 0; ny < side; ++ny) {
              for (std::size_t nx = 0; nx < side; ++nx) {
                pos.push_back(
                    {static_cast<double>(ix * side + nx) * cfg.spacing,
                     static_cast<double>(iy * side + ny) * cfg.spacing});
              }
            }
          }
        }
        radio::IslandPlanOptions opt;
        opt.cell_size = static_cast<double>(side) * cfg.spacing;
        opt.window = cfg.window;
        return radio::plan_islands(pos, cfg.radio_cfg, cfg.seed, opt);
      }()),
      ix_(plan_.count) {
  const std::size_t side2 = cfg_.island_side * cfg_.island_side;
  if (plan_.count != cfg_.islands_x * cfg_.islands_y) {
    throw std::logic_error("pdes: partitioner island count mismatch");
  }
  for (std::size_t i = 0; i < plan_.island_of.size(); ++i) {
    if (plan_.island_of[i] != i / side2) {
      throw std::logic_error("pdes: partitioner membership not island-major");
    }
  }

  isles_.reserve(plan_.count);
  for (std::size_t k = 0; k < plan_.count; ++k) {
    auto isle = std::make_unique<Island>();
    if (cfg_.metrics) {
      isle->obs = std::make_unique<obs::Context>(isle->sched, 1u << 18);
    }
    // One propagation seed for every island (shadowing draws must agree
    // across islands); the delivery RNG is decorrelated per island.
    isle->medium = std::make_unique<radio::Medium>(isle->sched, cfg_.radio_cfg,
                                                   cfg_.seed, k);
    isle->medium->set_island_gateway(&ix_, &plan_, static_cast<std::uint32_t>(k));
    isle->net = std::make_unique<core::MeshNetwork>(
        isle->sched, *isle->medium, Rng(cfg_.seed, 0x15A0 + k), cfg_.node,
        static_cast<NodeId>(k * side2));
    const std::size_t side = cfg_.island_side;
    const std::size_t ix = k % cfg_.islands_x;
    const std::size_t iy = k / cfg_.islands_x;
    for (std::size_t ny = 0; ny < side; ++ny) {
      for (std::size_t nx = 0; nx < side; ++nx) {
        isle->net->add_node(
            {static_cast<double>(ix * side + nx) * cfg_.spacing,
             static_cast<double>(iy * side + ny) * cfg_.spacing});
      }
    }
    if (cfg_.faults) {
      isle->faults = std::make_unique<radio::FaultInjector>(
          *isle->medium, cfg_.seed ^ (0xFA17ULL + k), *cfg_.faults);
      isle->faults->enable();
    }
    isles_.push_back(std::move(isle));
  }

  // Root at the city center: first node of the center island keeps the
  // DODAG diameter near the geometric minimum.
  const std::size_t root_island =
      (cfg_.islands_y / 2) * cfg_.islands_x + cfg_.islands_x / 2;
  const std::size_t side = cfg_.island_side;
  root_index_ = root_island * side2 + (side / 2) * side + side / 2;

  std::vector<sim::ParallelIsland> pislands(plan_.count);
  for (std::size_t k = 0; k < plan_.count; ++k) {
    pislands[k].sched = &isles_[k]->sched;
    pislands[k].apply = [this, k](sim::Time boundary) {
      for (const radio::CellTx& m : ix_.take_until(k, boundary)) {
        isles_[k]->medium->apply_remote(m);
      }
    };
    pislands[k].next_input = [this, k] { return ix_.next_time(k); };
    for (std::uint32_t dep : plan_.adjacency[k]) {
      pislands[k].deps.push_back(dep);
    }
  }
  par_ = std::make_unique<sim::ParallelScheduler>(
      plan_.window, std::move(pislands), cfg_.lanes);
}

IslandWorld::~IslandWorld() = default;

void IslandWorld::start() {
  const std::size_t side2 = cfg_.island_side * cfg_.island_side;
  const std::size_t root_island = root_index_ / side2;
  for (std::size_t k = 0; k < isles_.size(); ++k) {
    core::MeshNetwork& net = *isles_[k]->net;
    // Passing size() as the root index starts every node as an ordinary
    // router (no index matches); only the root island elects a root.
    net.start(k == root_island ? root_index_ % side2 : net.size());
  }
}

void IslandWorld::stop() {
  for (auto& isle : isles_) isle->net->stop();
}

void IslandWorld::run_until(sim::Time t) { par_->run_until(t); }

unsigned IslandWorld::lanes() const { return par_->lanes(); }

sim::Time IslandWorld::now() const { return isles_[0]->sched.now(); }

core::MeshNode& IslandWorld::node(std::size_t index) {
  const std::size_t side2 = cfg_.island_side * cfg_.island_side;
  return isles_[index / side2]->net->node(index % side2);
}

double IslandWorld::joined_fraction() const {
  std::size_t joined = 0;
  std::size_t total = 0;
  const std::size_t side2 = cfg_.island_side * cfg_.island_side;
  for (std::size_t k = 0; k < isles_.size(); ++k) {
    core::MeshNetwork& net = *isles_[k]->net;
    for (std::size_t j = 0; j < net.size(); ++j) {
      if (k * side2 + j == root_index_) continue;
      ++total;
      if (net.node(j).routing->joined()) ++joined;
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(joined) / static_cast<double>(total);
}

radio::MediumStats IslandWorld::medium_stats() const {
  radio::MediumStats sum;
  for (const auto& isle : isles_) {
    const radio::MediumStats& s = isle->medium->stats();
    sum.transmissions += s.transmissions;
    sum.deliveries += s.deliveries;
    sum.collisions += s.collisions;
    sum.snr_losses += s.snr_losses;
    sum.aborted += s.aborted;
    sum.fault_drops += s.fault_drops;
    sum.fault_dups += s.fault_dups;
    sum.fault_delays += s.fault_delays;
    sum.cross_island_tx += s.cross_island_tx;
    sum.cross_island_rx += s.cross_island_rx;
  }
  return sum;
}

std::uint64_t IslandWorld::executed_events() const {
  std::uint64_t sum = 0;
  for (const auto& isle : isles_) sum += isle->sched.executed_events();
  return sum;
}

std::string IslandWorld::check_consistency() const {
  for (std::size_t k = 0; k < isles_.size(); ++k) {
    std::string err = isles_[k]->medium->check_consistency();
    if (!err.empty()) {
      return "island " + std::to_string(k) + ": " + err;
    }
  }
  return {};
}

std::uint64_t IslandWorld::digest() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t k = 0; k < isles_.size(); ++k) {
    const Island& isle = *isles_[k];
    h = fnv1a(h, isle.sched.executed_events());
    const radio::MediumStats& s = isle.medium->stats();
    h = fnv1a(h, s.transmissions);
    h = fnv1a(h, s.deliveries);
    h = fnv1a(h, s.collisions);
    h = fnv1a(h, s.snr_losses);
    h = fnv1a(h, s.aborted);
    h = fnv1a(h, s.fault_drops);
    h = fnv1a(h, s.fault_dups);
    h = fnv1a(h, s.fault_delays);
    h = fnv1a(h, s.cross_island_tx);
    h = fnv1a(h, s.cross_island_rx);
    core::MeshNetwork& net = *isle.net;
    for (std::size_t j = 0; j < net.size(); ++j) {
      core::MeshNode& n = net.node(j);
      h = fnv1a(h, n.radio.frames_sent());
      h = fnv1a(h, n.radio.frames_received());
      h = fnv1a(h, n.radio.bytes_sent());
      const net::RplStats& r = n.routing->stats();
      h = fnv1a(h, r.dio_tx);
      h = fnv1a(h, r.dio_rx);
      h = fnv1a(h, r.dis_tx);
      h = fnv1a(h, r.dao_tx);
      h = fnv1a(h, r.data_originated);
      h = fnv1a(h, r.data_forwarded);
      h = fnv1a(h, r.data_delivered);
      h = fnv1a(h, r.drops_no_route + r.drops_link + r.drops_ttl +
                       r.drops_loop);
      h = fnv1a(h, r.parent_changes);
      h = fnv1a(h, r.distress_relayed + r.distress_repairs);
      h = fnv1a(h, static_cast<std::uint64_t>(n.routing->rank()));
      h = fnv1a(h, static_cast<std::uint64_t>(n.routing->preferred_parent()));
      n.meter.settle(isle.sched.now());
      h = fnv1a(h, n.meter.total_mj());
    }
  }
  return h;
}

}  // namespace iiot::pdes
