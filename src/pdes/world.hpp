// One city-scale mesh world partitioned into spatial islands (DESIGN.md
// §4i).
//
// IslandWorld lays a uniform sensor grid over a rectangle of square
// patches, runs the grid partitioner so each patch becomes one island
// with its own Scheduler / Medium / MeshNetwork / RNG streams, wires the
// island mediums together through a radio::Interchange, and drives the
// whole thing with sim::ParallelScheduler.
//
// The island structure is canonical: it is a pure function of this
// config. `lanes` only selects how many threads execute the islands —
// every counter, trace, and KPI is bit-identical at any lane count, and
// lanes == 1 is the serial oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "obs/context.hpp"
#include "radio/fault_injector.hpp"
#include "radio/island.hpp"
#include "radio/medium.hpp"
#include "sim/parallel.hpp"
#include "sim/scheduler.hpp"

namespace iiot::pdes {

struct IslandWorldConfig {
  /// City layout: islands_x * islands_y square patches, each holding
  /// island_side^2 nodes at `spacing` meters. Patches tile seamlessly
  /// (inter-patch node gap == spacing), so radio links cross patch
  /// borders and routing spans the whole city.
  std::size_t islands_x = 2;
  std::size_t islands_y = 2;
  std::size_t island_side = 4;  // nodes per patch edge
  double spacing = 18.0;

  /// Cross-island quantization window. MAC ack timeouts must exceed
  /// roughly 4 windows + one ack airtime or cross-island unicast starves
  /// (node_config() below sizes them accordingly).
  sim::Duration window = radio::kDefaultIslandWindow;

  /// Execution lanes (0 → hardware_jobs()). Not part of the physics.
  unsigned lanes = 1;

  std::uint64_t seed = 1;
  bool metrics = false;  // per-island obs::Context (metrics + tracer)
  core::NodeConfig node = node_config();
  radio::PropagationConfig radio_cfg{};
  std::optional<radio::FaultInjectorConfig> faults;

  /// Node config tuned for island worlds: CSMA with ack timeouts sized
  /// for the cross-island delivery quantization, hop budget sized for
  /// city diameters.
  [[nodiscard]] static core::NodeConfig node_config();

  [[nodiscard]] std::size_t nodes() const {
    return islands_x * islands_y * island_side * island_side;
  }
};

class IslandWorld {
 public:
  explicit IslandWorld(IslandWorldConfig cfg);
  ~IslandWorld();
  IslandWorld(const IslandWorld&) = delete;
  IslandWorld& operator=(const IslandWorld&) = delete;

  /// Starts every node; the root is the first node of the center island.
  void start();
  /// Stops every node (routing + MAC teardown).
  void stop();

  /// Advances all islands to exactly `t` (see ParallelScheduler).
  void run_until(sim::Time t);

  [[nodiscard]] const IslandWorldConfig& config() const { return cfg_; }
  [[nodiscard]] const radio::IslandPlan& plan() const { return plan_; }
  [[nodiscard]] std::size_t islands() const { return isles_.size(); }
  [[nodiscard]] unsigned lanes() const;
  [[nodiscard]] std::size_t size() const { return cfg_.nodes(); }
  [[nodiscard]] sim::Time now() const;

  /// Global node index (island-major: island k owns indices
  /// [k*side^2, (k+1)*side^2), node id == index).
  [[nodiscard]] core::MeshNode& node(std::size_t index);
  [[nodiscard]] core::MeshNode& root() { return node(root_index_); }
  [[nodiscard]] std::size_t root_index() const { return root_index_; }
  [[nodiscard]] std::uint32_t island_of(std::size_t index) const {
    return plan_.island_of[index];
  }

  [[nodiscard]] radio::Medium& medium(std::size_t island) {
    return *isles_[island]->medium;
  }
  [[nodiscard]] sim::Scheduler& scheduler(std::size_t island) {
    return isles_[island]->sched;
  }
  [[nodiscard]] core::MeshNetwork& network(std::size_t island) {
    return *isles_[island]->net;
  }
  [[nodiscard]] obs::Context* context(std::size_t island) {
    return isles_[island]->obs.get();
  }
  [[nodiscard]] radio::Interchange& interchange() { return ix_; }

  /// Fraction of non-root nodes joined to the DODAG, over the whole city.
  [[nodiscard]] double joined_fraction() const;
  /// Medium stats summed over islands in island order.
  [[nodiscard]] radio::MediumStats medium_stats() const;
  /// Scheduler events executed, summed over islands.
  [[nodiscard]] std::uint64_t executed_events() const;
  /// First bookkeeping violation across island mediums, or empty.
  [[nodiscard]] std::string check_consistency() const;

  /// FNV-1a digest over every per-island and per-node counter that the
  /// lane-invariance contract covers. Two runs of the same config must
  /// produce equal digests at any `lanes` value.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  struct Island {
    sim::Scheduler sched;
    std::unique_ptr<obs::Context> obs;
    std::unique_ptr<radio::Medium> medium;
    std::unique_ptr<core::MeshNetwork> net;
    std::unique_ptr<radio::FaultInjector> faults;
  };

  IslandWorldConfig cfg_;
  radio::IslandPlan plan_;
  radio::Interchange ix_;
  std::vector<std::unique_ptr<Island>> isles_;
  std::size_t root_index_ = 0;
  std::unique_ptr<sim::ParallelScheduler> par_;
};

}  // namespace iiot::pdes
