// Observed-remove map: string keys to mergeable CRDT values.
//
// Backs the AP replicated key-value store in src/replication (E7): each
// key holds a nested CRDT (e.g. LwwRegister); key removal follows OR-set
// semantics so a concurrent update revives the key (add-wins).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "crdt/sets.hpp"

namespace iiot::crdt {

/// V must provide merge(const V&), encode(BufWriter&) and
/// static decode(BufReader&) -> std::optional<V>.
template <typename V>
class OrMap {
 public:
  /// Mutates (or creates) the value under `key`.
  template <typename Fn>
  void apply(ReplicaId replica, const std::string& key, Fn&& fn) {
    keys_.add(replica, key);
    fn(values_[key]);
  }

  void remove(const std::string& key) {
    keys_.remove(key);
    values_.erase(key);
  }

  [[nodiscard]] bool contains(const std::string& key) const {
    return keys_.contains(key);
  }

  [[nodiscard]] const V* get(const std::string& key) const {
    if (!keys_.contains(key)) return nullptr;
    auto it = values_.find(key);
    return it == values_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::set<std::string> keys() const { return keys_.items(); }
  [[nodiscard]] std::size_t size() const { return keys_.size(); }

  void merge(const OrMap& other) {
    keys_.merge(other.keys_);
    for (const auto& [k, v] : other.values_) {
      auto it = values_.find(k);
      if (it == values_.end()) {
        values_[k] = v;
      } else {
        it->second.merge(v);
      }
    }
    // Drop values whose key lost the OR-set merge.
    for (auto it = values_.begin(); it != values_.end();) {
      it = keys_.contains(it->first) ? std::next(it) : values_.erase(it);
    }
  }

  void encode(BufWriter& w) const {
    keys_.encode(w);
    w.u32(static_cast<std::uint32_t>(values_.size()));
    for (const auto& [k, v] : values_) {
      w.lp_str(k);
      v.encode(w);
    }
  }

  static std::optional<OrMap> decode(BufReader& r) {
    auto keys = OrSet<std::string>::decode(r);
    auto n = r.u32();
    if (!keys || !n) return std::nullopt;
    OrMap m;
    m.keys_ = std::move(*keys);
    for (std::uint32_t i = 0; i < *n; ++i) {
      auto k = r.lp_str();
      if (!k) return std::nullopt;
      auto v = V::decode(r);
      if (!v) return std::nullopt;
      m.values_.emplace(std::move(*k), std::move(*v));
    }
    return m;
  }

 private:
  OrSet<std::string> keys_;
  std::map<std::string, V> values_;
};

}  // namespace iiot::crdt
