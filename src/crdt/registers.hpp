// Replicated registers: last-writer-wins and multi-value [25].
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "crdt/codec.hpp"
#include "crdt/vector_clock.hpp"

namespace iiot::crdt {

/// Last-writer-wins register. Total order: (timestamp, replica id).
/// Timestamps come from the (simulated) clock; ties broken by replica id,
/// so merge is commutative/associative/idempotent.
template <typename T>
class LwwRegister {
 public:
  void set(ReplicaId replica, std::uint64_t timestamp, T value) {
    if (wins(timestamp, replica)) {
      value_ = std::move(value);
      ts_ = timestamp;
      replica_ = replica;
      has_value_ = true;
    }
  }

  [[nodiscard]] const std::optional<T> get() const {
    return has_value_ ? std::optional<T>(value_) : std::nullopt;
  }
  [[nodiscard]] std::uint64_t timestamp() const { return ts_; }

  void merge(const LwwRegister& other) {
    if (other.has_value_ && wins(other.ts_, other.replica_)) {
      value_ = other.value_;
      ts_ = other.ts_;
      replica_ = other.replica_;
      has_value_ = true;
    }
  }

  void encode(BufWriter& w) const {
    w.u8(has_value_ ? 1 : 0);
    if (has_value_) {
      w.u64(ts_);
      w.u32(replica_);
      encode_value(w, value_);
    }
  }

  static std::optional<LwwRegister> decode(BufReader& r) {
    auto has = r.u8();
    if (!has) return std::nullopt;
    LwwRegister reg;
    if (*has) {
      auto ts = r.u64();
      auto rep = r.u32();
      auto v = decode_value<T>(r);
      if (!ts || !rep || !v) return std::nullopt;
      reg.ts_ = *ts;
      reg.replica_ = *rep;
      reg.value_ = std::move(*v);
      reg.has_value_ = true;
    }
    return reg;
  }

 private:
  [[nodiscard]] bool wins(std::uint64_t ts, ReplicaId rep) const {
    if (!has_value_) return true;
    if (ts != ts_) return ts > ts_;
    return rep > replica_;
  }

  T value_{};
  std::uint64_t ts_ = 0;
  ReplicaId replica_ = 0;
  bool has_value_ = false;
};

/// Multi-value register: concurrent writes are all kept (siblings) and
/// surfaced to the application for decentralized conflict resolution —
/// the pattern the paper recommends for availability under partitions
/// (§V-C).
template <typename T>
class MvRegister {
 public:
  void set(ReplicaId replica, T value) {
    VectorClock vc;
    for (const auto& e : entries_) vc.merge(e.clock);
    vc.tick(replica);
    entries_.clear();
    entries_.push_back(Entry{std::move(value), std::move(vc)});
  }

  /// All current siblings (one element unless writes were concurrent).
  [[nodiscard]] std::vector<T> values() const {
    std::vector<T> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(e.value);
    return out;
  }

  [[nodiscard]] bool conflicted() const { return entries_.size() > 1; }

  void merge(const MvRegister& other) {
    std::vector<Entry> merged;
    auto dominated = [](const Entry& e, const std::vector<Entry>& pool) {
      for (const auto& p : pool) {
        if (p.clock.compare(e.clock) == Order::kAfter) return true;
      }
      return false;
    };
    auto equal_in = [](const Entry& e, const std::vector<Entry>& pool) {
      for (const auto& p : pool) {
        if (p.clock == e.clock) return true;
      }
      return false;
    };
    for (const auto& e : entries_) {
      if (!dominated(e, other.entries_)) merged.push_back(e);
    }
    for (const auto& e : other.entries_) {
      if (!dominated(e, entries_) && !equal_in(e, merged)) {
        merged.push_back(e);
      }
    }
    entries_ = std::move(merged);
  }

  void encode(BufWriter& w) const {
    w.u16(static_cast<std::uint16_t>(entries_.size()));
    for (const auto& e : entries_) {
      encode_value(w, e.value);
      e.clock.encode(w);
    }
  }

  static std::optional<MvRegister> decode(BufReader& r) {
    auto n = r.u16();
    if (!n) return std::nullopt;
    MvRegister reg;
    for (std::uint16_t i = 0; i < *n; ++i) {
      auto v = decode_value<T>(r);
      auto vc = VectorClock::decode(r);
      if (!v || !vc) return std::nullopt;
      reg.entries_.push_back(Entry{std::move(*v), std::move(*vc)});
    }
    return reg;
  }

 private:
  struct Entry {
    T value;
    VectorClock clock;
  };
  std::vector<Entry> entries_;
};

}  // namespace iiot::crdt
