// Vector clocks: causality tracking for multi-value registers and
// anti-entropy bookkeeping (paper §IV-B / §V-C, refs [24], [25]).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>

#include "common/bytes.hpp"

namespace iiot::crdt {

/// Identifier of a replica participating in CRDT replication.
using ReplicaId = std::uint32_t;

enum class Order { kEqual, kBefore, kAfter, kConcurrent };

class VectorClock {
 public:
  void tick(ReplicaId r) { ++entries_[r]; }

  [[nodiscard]] std::uint64_t get(ReplicaId r) const {
    auto it = entries_.find(r);
    return it == entries_.end() ? 0 : it->second;
  }

  void merge(const VectorClock& other) {
    for (const auto& [r, v] : other.entries_) {
      auto& mine = entries_[r];
      mine = std::max(mine, v);
    }
  }

  [[nodiscard]] Order compare(const VectorClock& other) const {
    bool less = false, greater = false;
    auto consider = [&](std::uint64_t a, std::uint64_t b) {
      if (a < b) less = true;
      if (a > b) greater = true;
    };
    for (const auto& [r, v] : entries_) consider(v, other.get(r));
    for (const auto& [r, v] : other.entries_) consider(get(r), v);
    if (less && greater) return Order::kConcurrent;
    if (less) return Order::kBefore;
    if (greater) return Order::kAfter;
    return Order::kEqual;
  }

  [[nodiscard]] bool dominates(const VectorClock& other) const {
    Order o = compare(other);
    return o == Order::kAfter || o == Order::kEqual;
  }

  [[nodiscard]] bool operator==(const VectorClock& other) const {
    return compare(other) == Order::kEqual;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  void encode(BufWriter& w) const {
    w.u16(static_cast<std::uint16_t>(entries_.size()));
    for (const auto& [r, v] : entries_) {
      w.u32(r);
      w.u64(v);
    }
  }

  static std::optional<VectorClock> decode(BufReader& r) {
    auto n = r.u16();
    if (!n) return std::nullopt;
    VectorClock vc;
    for (std::uint16_t i = 0; i < *n; ++i) {
      auto rep = r.u32();
      auto val = r.u64();
      if (!rep || !val) return std::nullopt;
      vc.entries_[*rep] = *val;
    }
    return vc;
  }

 private:
  std::map<ReplicaId, std::uint64_t> entries_;
};

}  // namespace iiot::crdt
