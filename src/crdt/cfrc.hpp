// Conflict-Free Replicated Counter (CFRC) in the style used by RNFD [32].
//
// RNFD's key data structure lets many low-power nodes collaboratively
// count how many of them currently suspect the DODAG root has failed,
// with idempotent gossip merging (double-counting impossible) and an
// epoch mechanism so the count can be "reset" when the root recovers.
// We realize it as: (epoch number, grow-only set of suspecting node ids,
// grow-only set of participating node ids). Merge takes the highest
// epoch and unions the sets belonging to it.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "crdt/sets.hpp"

namespace iiot::crdt {

class Cfrc {
 public:
  Cfrc() = default;

  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }

  /// Registers `node` as a participant of the current epoch.
  void join(NodeId node) { participants_.add(node); }

  /// Node `node` votes that the root is unreachable (idempotent).
  void suspect(NodeId node) {
    participants_.add(node);
    suspects_.add(node);
  }

  /// Has this node already voted in this epoch?
  [[nodiscard]] bool has_suspect(NodeId node) const {
    return suspects_.contains(node);
  }

  [[nodiscard]] std::size_t suspect_count() const { return suspects_.size(); }
  [[nodiscard]] std::size_t participant_count() const {
    return participants_.size();
  }

  /// Fraction of known participants currently suspecting.
  [[nodiscard]] double suspicion_ratio() const {
    auto p = participant_count();
    return p == 0 ? 0.0
                  : static_cast<double>(suspect_count()) /
                        static_cast<double>(p);
  }

  /// Starts a new epoch (root verified alive / recovered): wipes votes.
  /// Monotone: the higher epoch always wins in merge.
  void advance_epoch() {
    ++epoch_;
    suspects_ = {};
    participants_ = {};
  }

  void merge(const Cfrc& other) {
    if (other.epoch_ > epoch_) {
      epoch_ = other.epoch_;
      suspects_ = other.suspects_;
      participants_ = other.participants_;
    } else if (other.epoch_ == epoch_) {
      suspects_.merge(other.suspects_);
      participants_.merge(other.participants_);
    }
    // Lower-epoch state is stale and ignored entirely.
  }

  [[nodiscard]] bool operator==(const Cfrc& o) const {
    return epoch_ == o.epoch_ && suspects_ == o.suspects_ &&
           participants_ == o.participants_;
  }

  void encode(BufWriter& w) const {
    w.u32(epoch_);
    suspects_.encode(w);
    participants_.encode(w);
  }

  static std::optional<Cfrc> decode(BufReader& r) {
    auto e = r.u32();
    auto s = GSet<std::uint32_t>::decode(r);
    auto p = GSet<std::uint32_t>::decode(r);
    if (!e || !s || !p) return std::nullopt;
    Cfrc c;
    c.epoch_ = *e;
    c.suspects_ = std::move(*s);
    c.participants_ = std::move(*p);
    return c;
  }

 private:
  std::uint32_t epoch_ = 0;
  GSet<std::uint32_t> suspects_;
  GSet<std::uint32_t> participants_;
};

}  // namespace iiot::crdt
