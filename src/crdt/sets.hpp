// State-based replicated sets: G-Set, 2P-Set and OR-Set [25].
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "common/bytes.hpp"
#include "crdt/codec.hpp"
#include "crdt/vector_clock.hpp"

namespace iiot::crdt {

/// Grow-only set; merge = union.
template <typename T>
class GSet {
 public:
  void add(const T& v) { items_.insert(v); }
  [[nodiscard]] bool contains(const T& v) const { return items_.count(v) > 0; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] const std::set<T>& items() const { return items_; }

  void merge(const GSet& other) {
    items_.insert(other.items_.begin(), other.items_.end());
  }

  [[nodiscard]] bool operator==(const GSet& o) const {
    return items_ == o.items_;
  }

  void encode(BufWriter& w) const {
    w.u32(static_cast<std::uint32_t>(items_.size()));
    for (const T& v : items_) encode_value(w, v);
  }

  static std::optional<GSet> decode(BufReader& r) {
    auto n = r.u32();
    if (!n) return std::nullopt;
    GSet s;
    for (std::uint32_t i = 0; i < *n; ++i) {
      auto v = decode_value<T>(r);
      if (!v) return std::nullopt;
      s.items_.insert(std::move(*v));
    }
    return s;
  }

 private:
  std::set<T> items_;
};

/// Two-phase set: removal wins forever (tombstones).
template <typename T>
class TwoPSet {
 public:
  void add(const T& v) { added_.add(v); }
  /// Removing an element is permanent; re-adding has no effect.
  void remove(const T& v) {
    if (added_.contains(v)) removed_.add(v);
  }
  [[nodiscard]] bool contains(const T& v) const {
    return added_.contains(v) && !removed_.contains(v);
  }
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const T& v : added_.items()) {
      if (!removed_.contains(v)) ++n;
    }
    return n;
  }

  void merge(const TwoPSet& other) {
    added_.merge(other.added_);
    removed_.merge(other.removed_);
  }

  [[nodiscard]] bool operator==(const TwoPSet& o) const {
    return added_ == o.added_ && removed_ == o.removed_;
  }

  void encode(BufWriter& w) const {
    added_.encode(w);
    removed_.encode(w);
  }

  static std::optional<TwoPSet> decode(BufReader& r) {
    auto a = GSet<T>::decode(r);
    auto d = GSet<T>::decode(r);
    if (!a || !d) return std::nullopt;
    TwoPSet s;
    s.added_ = *a;
    s.removed_ = *d;
    return s;
  }

 private:
  GSet<T> added_;
  GSet<T> removed_;
};

/// Observed-remove set: add wins over concurrent remove; removed elements
/// can be re-added. Elements are tagged with unique (replica, counter)
/// dots; remove tombstones only the dots it has observed.
template <typename T>
class OrSet {
 public:
  using Dot = std::pair<ReplicaId, std::uint64_t>;

  void add(ReplicaId replica, const T& v) {
    Dot dot{replica, ++dot_counters_[replica]};
    live_[v].insert(dot);
  }

  /// Removes every currently-observed dot of `v`.
  void remove(const T& v) {
    auto it = live_.find(v);
    if (it == live_.end()) return;
    tombstones_[v].insert(it->second.begin(), it->second.end());
    live_.erase(it);
  }

  [[nodiscard]] bool contains(const T& v) const {
    return live_.count(v) > 0;
  }

  [[nodiscard]] std::size_t size() const { return live_.size(); }

  [[nodiscard]] std::set<T> items() const {
    std::set<T> out;
    for (const auto& [v, _] : live_) out.insert(v);
    return out;
  }

  void merge(const OrSet& other) {
    // Union tombstones first, then union live dots minus tombstones.
    for (const auto& [v, dots] : other.tombstones_) {
      tombstones_[v].insert(dots.begin(), dots.end());
    }
    for (const auto& [v, dots] : other.live_) {
      live_[v].insert(dots.begin(), dots.end());
    }
    for (auto it = live_.begin(); it != live_.end();) {
      auto tomb = tombstones_.find(it->first);
      if (tomb != tombstones_.end()) {
        for (const Dot& d : tomb->second) it->second.erase(d);
      }
      it = it->second.empty() ? live_.erase(it) : std::next(it);
    }
    for (const auto& [r, c] : other.dot_counters_) {
      auto& mine = dot_counters_[r];
      if (c > mine) mine = c;
    }
  }

  void encode(BufWriter& w) const {
    auto write_tagged = [&w](const std::map<T, std::set<Dot>>& m) {
      w.u32(static_cast<std::uint32_t>(m.size()));
      for (const auto& [v, dots] : m) {
        encode_value(w, v);
        w.u16(static_cast<std::uint16_t>(dots.size()));
        for (const Dot& d : dots) {
          w.u32(d.first);
          w.u64(d.second);
        }
      }
    };
    write_tagged(live_);
    write_tagged(tombstones_);
    w.u16(static_cast<std::uint16_t>(dot_counters_.size()));
    for (const auto& [r, c] : dot_counters_) {
      w.u32(r);
      w.u64(c);
    }
  }

  static std::optional<OrSet> decode(BufReader& r) {
    OrSet s;
    auto read_tagged = [&r](std::map<T, std::set<Dot>>& m) -> bool {
      auto n = r.u32();
      if (!n) return false;
      for (std::uint32_t i = 0; i < *n; ++i) {
        auto v = decode_value<T>(r);
        auto nd = r.u16();
        if (!v || !nd) return false;
        auto& dots = m[*v];
        for (std::uint16_t j = 0; j < *nd; ++j) {
          auto rep = r.u32();
          auto c = r.u64();
          if (!rep || !c) return false;
          dots.insert(Dot{*rep, *c});
        }
      }
      return true;
    };
    if (!read_tagged(s.live_) || !read_tagged(s.tombstones_)) {
      return std::nullopt;
    }
    auto n = r.u16();
    if (!n) return std::nullopt;
    for (std::uint16_t i = 0; i < *n; ++i) {
      auto rep = r.u32();
      auto c = r.u64();
      if (!rep || !c) return std::nullopt;
      s.dot_counters_[*rep] = *c;
    }
    return s;
  }

 private:
  std::map<T, std::set<Dot>> live_;
  std::map<T, std::set<Dot>> tombstones_;
  std::map<ReplicaId, std::uint64_t> dot_counters_;
};

}  // namespace iiot::crdt
