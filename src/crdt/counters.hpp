// State-based replicated counters (Shapiro et al. [25]).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "common/bytes.hpp"
#include "crdt/vector_clock.hpp"

namespace iiot::crdt {

/// Grow-only counter: per-replica increments, merge = pointwise max.
class GCounter {
 public:
  void increment(ReplicaId r, std::uint64_t by = 1) { shards_[r] += by; }

  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& [_, v] : shards_) sum += v;
    return sum;
  }

  void merge(const GCounter& other) {
    for (const auto& [r, v] : other.shards_) {
      auto& mine = shards_[r];
      if (v > mine) mine = v;
    }
  }

  [[nodiscard]] bool operator==(const GCounter& o) const {
    return shards_ == o.shards_;
  }

  void encode(BufWriter& w) const {
    w.u16(static_cast<std::uint16_t>(shards_.size()));
    for (const auto& [r, v] : shards_) {
      w.u32(r);
      w.u64(v);
    }
  }

  static std::optional<GCounter> decode(BufReader& r) {
    auto n = r.u16();
    if (!n) return std::nullopt;
    GCounter c;
    for (std::uint16_t i = 0; i < *n; ++i) {
      auto rep = r.u32();
      auto val = r.u64();
      if (!rep || !val) return std::nullopt;
      c.shards_[*rep] = *val;
    }
    return c;
  }

 private:
  std::map<ReplicaId, std::uint64_t> shards_;
};

/// Positive-negative counter: two G-counters.
class PnCounter {
 public:
  void increment(ReplicaId r, std::uint64_t by = 1) { inc_.increment(r, by); }
  void decrement(ReplicaId r, std::uint64_t by = 1) { dec_.increment(r, by); }

  [[nodiscard]] std::int64_t value() const {
    return static_cast<std::int64_t>(inc_.value()) -
           static_cast<std::int64_t>(dec_.value());
  }

  void merge(const PnCounter& other) {
    inc_.merge(other.inc_);
    dec_.merge(other.dec_);
  }

  [[nodiscard]] bool operator==(const PnCounter& o) const {
    return inc_ == o.inc_ && dec_ == o.dec_;
  }

  void encode(BufWriter& w) const {
    inc_.encode(w);
    dec_.encode(w);
  }

  static std::optional<PnCounter> decode(BufReader& r) {
    auto inc = GCounter::decode(r);
    auto dec = GCounter::decode(r);
    if (!inc || !dec) return std::nullopt;
    PnCounter c;
    c.inc_ = *inc;
    c.dec_ = *dec;
    return c;
  }

 private:
  GCounter inc_;
  GCounter dec_;
};

}  // namespace iiot::crdt
