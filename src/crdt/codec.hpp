// Value codecs for CRDT state serialization (anti-entropy exchanges).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace iiot::crdt {

inline void encode_value(BufWriter& w, std::uint32_t v) { w.u32(v); }
inline void encode_value(BufWriter& w, std::uint64_t v) { w.u64(v); }
inline void encode_value(BufWriter& w, double v) { w.f64(v); }
inline void encode_value(BufWriter& w, const std::string& v) { w.lp_str(v); }

template <typename T>
std::optional<T> decode_value(BufReader& r);

template <>
inline std::optional<std::uint32_t> decode_value<std::uint32_t>(BufReader& r) {
  return r.u32();
}
template <>
inline std::optional<std::uint64_t> decode_value<std::uint64_t>(BufReader& r) {
  return r.u64();
}
template <>
inline std::optional<double> decode_value<double>(BufReader& r) {
  return r.f64();
}
template <>
inline std::optional<std::string> decode_value<std::string>(BufReader& r) {
  return r.lp_str();
}

}  // namespace iiot::crdt
