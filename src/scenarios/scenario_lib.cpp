#include "scenarios/scenario_lib.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "runner/engine.hpp"
#include "scenarios/specs.hpp"

namespace iiot::scenarios {

namespace {

/// Nearest-rank percentile over a pre-sorted vector.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank > 0 ? rank - 1 : 0)];
}

void append_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  out += buf;
}

/// Merges shard slots (in shard order) into the instance's KPI report
/// and applies the compiled-in sanity bounds.
KpiReport finalize(const ScenarioSpec& spec, const RunParams& p,
                   std::vector<ShardResult>&& shards) {
  KpiReport rep;
  rep.scenario = spec.name;
  rep.tier = p.tier;
  rep.seed = p.seed;
  rep.shards = shards.size();

  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::size_t nodes = 0;
  double duty_sum = 0.0;
  std::size_t duty_nodes = 0;
  std::vector<double> latencies;
  const std::vector<ExtraKpi> extra_specs = spec.extras();
  std::vector<double> extra_acc(extra_specs.size(), 0.0);
  for (std::size_t si = 0; si < shards.size(); ++si) {
    const ShardResult& s = shards[si];
    if (!s.failure.empty() && rep.failure.empty()) {
      rep.ok = false;
      rep.failure = "shard " + std::to_string(si) + ": " + s.failure;
    }
    nodes += s.nodes;
    sent += s.sent;
    delivered += s.delivered;
    duty_sum += s.duty_sum;
    duty_nodes += s.duty_nodes;
    latencies.insert(latencies.end(), s.latencies_us.begin(),
                     s.latencies_us.end());
    for (std::size_t k = 0;
         k < extra_specs.size() && k < s.extras.size(); ++k) {
      switch (extra_specs[k].merge) {
        case Merge::kSum:
        case Merge::kAvg: extra_acc[k] += s.extras[k]; break;
        case Merge::kMax:
          extra_acc[k] = std::max(extra_acc[k], s.extras[k]);
          break;
      }
    }
  }
  std::sort(latencies.begin(), latencies.end());

  rep.kpis.push_back({"nodes", static_cast<double>(nodes), 0.0, 0.0});
  rep.kpis.push_back({"sent", static_cast<double>(sent), 0.03, 4.0});
  rep.kpis.push_back(
      {"delivered", static_cast<double>(delivered), 0.03, 4.0});
  rep.kpis.push_back({"delivery_ratio",
                      sent > 0 ? static_cast<double>(delivered) /
                                     static_cast<double>(sent)
                               : 0.0,
                      0.0, 0.03});
  rep.kpis.push_back(
      {"latency_p50_us", percentile(latencies, 0.50), 0.15, 20'000.0});
  rep.kpis.push_back(
      {"latency_p99_us", percentile(latencies, 0.99), 0.20, 50'000.0});
  rep.kpis.push_back({"duty_cycle",
                      duty_nodes > 0
                          ? duty_sum / static_cast<double>(duty_nodes)
                          : 0.0,
                      0.10, 0.003});
  for (std::size_t k = 0; k < extra_specs.size(); ++k) {
    double v = extra_acc[k];
    if (extra_specs[k].merge == Merge::kAvg && !shards.empty()) {
      v /= static_cast<double>(shards.size());
    }
    rep.kpis.push_back({extra_specs[k].name, v, extra_specs[k].rel_tol,
                        extra_specs[k].abs_tol});
  }

  if (rep.ok) {
    for (const KpiBound& b : spec.bounds_for(p.tier)) {
      const Kpi* k = rep.find(b.kpi);
      if (k == nullptr) continue;
      if (k->value < b.min || k->value > b.max) {
        rep.ok = false;
        rep.failure = std::string(spec.name) + ": KPI " + b.kpi + "=" +
                      std::to_string(k->value) + " outside sanity bounds [" +
                      std::to_string(b.min) + ", " + std::to_string(b.max) +
                      "]";
        break;
      }
    }
  }
  return rep;
}

struct Instance {
  const ScenarioSpec* spec;
  RunParams params;
  std::size_t first_task;  // index of shard 0 in the flat task space
};

std::vector<Instance> plan(const SuiteOptions& opt) {
  std::vector<Instance> instances;
  std::size_t task = 0;
  for (const ScenarioSpec& spec : library()) {
    if (!opt.only.empty() &&
        std::find(opt.only.begin(), opt.only.end(), spec.name) ==
            opt.only.end()) {
      continue;
    }
    for (std::uint64_t s = 0; s < opt.seeds; ++s) {
      Instance inst{&spec, spec.params_for(opt.tier, opt.seed_base + s),
                    task};
      inst.params.islands = opt.islands;
      task += inst.params.shards;
      instances.push_back(inst);
    }
  }
  return instances;
}

}  // namespace

const char* to_string(Tier t) {
  switch (t) {
    case Tier::kSmoke: return "smoke";
    case Tier::kSoak: return "soak";
    case Tier::kCity: return "city";
  }
  return "?";
}

bool parse_tier(std::string_view s, Tier& out) {
  if (s == "smoke") {
    out = Tier::kSmoke;
  } else if (s == "soak") {
    out = Tier::kSoak;
  } else if (s == "city") {
    out = Tier::kCity;
  } else {
    return false;
  }
  return true;
}

const std::vector<ScenarioSpec>& library() {
  static const std::vector<ScenarioSpec> specs = {
      detail::factory_line_spec(), detail::hvac_fleet_spec(),
      detail::mine_tunnel_spec(), detail::mobile_yard_spec(),
      detail::city_grid_spec()};
  return specs;
}

const ScenarioSpec* find_scenario(std::string_view name) {
  for (const ScenarioSpec& s : library()) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

const Kpi* KpiReport::find(std::string_view name) const {
  for (const Kpi& k : kpis) {
    if (name == k.name) return &k;
  }
  return nullptr;
}

std::string KpiReport::json_line() const {
  std::string out = "{\"scenario\":\"";
  out += scenario;
  out += "\",\"tier\":\"";
  out += to_string(tier);
  out += "\",\"seed\":" + std::to_string(seed);
  out += ",\"shards\":" + std::to_string(shards);
  out += ",\"ok\":";
  out += ok ? "true" : "false";
  out += ",\"kpis\":{";
  for (std::size_t i = 0; i < kpis.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += kpis[i].name;
    out += "\":";
    append_number(out, kpis[i].value);
  }
  out += "}}";
  return out;
}

KpiReport run_one(const ScenarioSpec& spec, Tier tier, std::uint64_t seed,
                  runner::Engine& eng, unsigned islands) {
  RunParams params = spec.params_for(tier, seed);
  params.islands = islands;
  std::vector<ShardResult> shards(params.shards);
  eng.run(params.shards, [&](std::size_t i) {
    shards[i] = spec.run_shard(params, i);
  });
  return finalize(spec, params, std::move(shards));
}

bool SuiteResult::ok() const {
  for (const KpiReport& r : reports) {
    if (!r.ok) return false;
  }
  return true;
}

std::string SuiteResult::failures() const {
  std::string out;
  for (const KpiReport& r : reports) {
    if (r.ok) continue;
    out += "FAIL " + r.scenario + " seed=" + std::to_string(r.seed) + ": " +
           r.failure + "\n";
  }
  return out;
}

SuiteResult run_suite(const SuiteOptions& opt, runner::Engine& eng) {
  const std::vector<Instance> instances = plan(opt);
  std::size_t total = 0;
  for (const Instance& inst : instances) total += inst.params.shards;

  // Flat (instance, shard) task space: every shard of every instance
  // runs concurrently; each task writes its own pre-sized slot.
  std::vector<std::vector<ShardResult>> slots;
  slots.reserve(instances.size());
  for (const Instance& inst : instances) {
    slots.emplace_back(inst.params.shards);
  }
  eng.run(total, [&](std::size_t task) {
    // Locate the owning instance (instances are few; linear scan).
    for (std::size_t k = 0; k < instances.size(); ++k) {
      const Instance& inst = instances[k];
      if (task >= inst.first_task &&
          task < inst.first_task + inst.params.shards) {
        slots[k][task - inst.first_task] =
            inst.spec->run_shard(inst.params, task - inst.first_task);
        return;
      }
    }
  });

  SuiteResult res;
  res.artifact = "{\n\"artifact\":\"scenario_kpis\",\n\"tier\":\"";
  res.artifact += to_string(opt.tier);
  res.artifact += "\",\n\"seed_base\":" + std::to_string(opt.seed_base);
  res.artifact += ",\n\"seeds\":" + std::to_string(opt.seeds);
  res.artifact += ",\n\"runs\":[\n";
  for (std::size_t k = 0; k < instances.size(); ++k) {
    res.reports.push_back(finalize(*instances[k].spec, instances[k].params,
                                   std::move(slots[k])));
    res.artifact += res.reports.back().json_line();
    res.artifact += k + 1 < instances.size() ? ",\n" : "\n";
  }
  res.artifact += "]\n}\n";
  return res;
}

std::string check_suite_determinism(const SuiteOptions& opt,
                                    runner::Engine& eng) {
  runner::Engine serial(1);
  // Reference leg: serial shards, serial island lanes — the oracle.
  SuiteOptions ser = opt;
  ser.islands = 1;
  // Checked leg: both determinism dimensions exercised at once — shards
  // across `eng`, island worlds on parallel lanes (opt.islands, or all
  // cores when the caller left it at the serial default).
  SuiteOptions par = opt;
  if (par.islands == 1) par.islands = 0;
  const SuiteResult a = run_suite(ser, serial);
  const SuiteResult b = run_suite(par, eng);
  const std::string legs = "jobs=1/islands=1 and jobs=" +
                           std::to_string(eng.jobs()) + "/islands=" +
                           (par.islands == 0 ? std::string("auto")
                                             : std::to_string(par.islands));
  if (a.artifact != b.artifact) {
    // Pinpoint the first differing line for the report.
    std::size_t pos = 0;
    std::size_t line = 1;
    const std::size_t len = std::min(a.artifact.size(), b.artifact.size());
    while (pos < len && a.artifact[pos] == b.artifact[pos]) {
      if (a.artifact[pos] == '\n') ++line;
      ++pos;
    }
    return "KPI artifact diverges between " + legs + " at line " +
           std::to_string(line);
  }
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    if (a.reports[i].failure != b.reports[i].failure) {
      return "failure text diverges for " + a.reports[i].scenario +
             " seed=" + std::to_string(a.reports[i].seed);
    }
  }
  return {};
}

}  // namespace iiot::scenarios
