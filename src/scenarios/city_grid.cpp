// City grid: ONE city-scale world, not a sharded fleet. A rectangle of
// seamlessly tiling sensor patches becomes a pdes::IslandWorld (DESIGN.md
// §4i): every patch is an island with its own scheduler/medium/RNG
// streams, radio links cross patch borders, and one RPL DODAG rooted at
// the city center spans the whole thing. RunParams::islands picks the
// execution lanes; the physics — and therefore every KPI in the artifact,
// including the world digest — is byte-identical at any lane count.
//
// The schedule exercises the sharpest PDES corners on purpose: paced
// upward traffic from the central district (the 3x3 block of islands
// around the root, so every delivery crosses island boundaries),
// frame-level fault injection on every island, and a mid-run crash +
// rejoin of a border-straddling node. City tier: 11x10 islands x 7^2
// nodes = 5390 nodes. Only the district originates samples — a flat
// single-root DODAG cannot haul telemetry across a 77-hop city, which
// is precisely the paper's case for hierarchy (the sharded fleet
// scenarios model that); here the outer city's full RPL control plane
// is the scaling load, and delivery measures district service under it.
// For smoke (2x2) and soak (3x3) the district covers every island.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "pdes/world.hpp"
#include "scenarios/specs.hpp"
#include "scenarios/world_util.hpp"
#include "sim/scheduler.hpp"

namespace iiot::scenarios::detail {

namespace {

constexpr std::uint64_t kSalt = 0xC17E9;

struct Layout {
  std::size_t islands_x;
  std::size_t islands_y;
  std::size_t side;  // nodes per island edge
  sim::Duration measure;
  /// Per-node reporting period: every sample funnels into ONE root, so
  /// the offered load must scale down as the city scales up or the
  /// center of the DODAG saturates (a real constraint, not a tuning
  /// artifact — city meters report on minutes, not seconds).
  sim::Duration period;
  /// Full-join requirement; the city tier tolerates a sliver of stragglers
  /// after the crash episode (weekly runs must not flake on one node).
  double join_floor;
};

Layout layout_for(Tier tier) {
  switch (tier) {
    case Tier::kSmoke: return {2, 2, 3, 30'000'000, 3'000'000, 1.0};
    case Tier::kSoak: return {3, 3, 4, 60'000'000, 9'000'000, 1.0};
    case Tier::kCity: return {11, 10, 7, 90'000'000, 15'000'000, 0.995};
  }
  return {2, 2, 3, 30'000'000, 3'000'000, 1.0};
}

RunParams params_for(Tier tier, std::uint64_t seed) {
  const Layout l = layout_for(tier);
  RunParams p;
  p.tier = tier;
  p.seed = seed;
  p.shards = 1;  // one world IS the scenario; lanes scale it, not shards
  p.nodes_per_shard = l.islands_x * l.islands_y * l.side * l.side;
  p.measure_time = l.measure;
  p.tracing = false;  // traces are per-island; audited by test_pdes instead
  return p;
}

double meter_reading(std::size_t i, std::uint32_t seq) {
  return 220.0 + 0.1 * static_cast<double>((i * 31 + seq * 7) % 97);
}

/// Steps the world in 1 s chunks, auditing every island medium's
/// bookkeeping at each boundary (the IslandWorld analogue of Stepper).
std::string advance(pdes::IslandWorld& world, sim::Time to) {
  while (world.now() < to) {
    world.run_until(std::min<sim::Time>(to, world.now() + 1'000'000));
    if (auto v = world.check_consistency(); !v.empty()) return v;
  }
  return {};
}

ShardResult run_shard(const RunParams& p, std::size_t shard) {
  const Layout l = layout_for(p.tier);
  pdes::IslandWorldConfig cfg;
  cfg.islands_x = l.islands_x;
  cfg.islands_y = l.islands_y;
  cfg.island_side = l.side;
  cfg.seed = shard_seed(p.seed, shard, kSalt);
  cfg.lanes = p.islands;
  cfg.radio_cfg.exponent = 3.0;
  cfg.radio_cfg.shadowing_sigma_db = 0.0;
  // Frame-level fault injection on every island: mild enough that the
  // DODAG stays whole, hot enough that fault paths cross island borders.
  // No payload corruption here — the root ledger's malformed counter
  // doubles as a causality guard (a sample timestamped after its own
  // delivery would mean skewed island clocks), so payloads must arrive
  // intact or not at all.
  radio::FaultInjectorConfig faults;
  faults.drop_p = 0.01;
  faults.duplicate_p = 0.005;
  faults.delay_p = 0.01;
  cfg.faults = faults;

  ShardResult r;
  r.nodes = cfg.nodes();
  pdes::IslandWorld world(cfg);
  world.start();

  auto ledger = std::make_unique<detail::Ledger>();
  sim::Scheduler& root_sched =
      world.scheduler(world.island_of(world.root_index()));
  world.root().routing->set_delivery_handler(
      [lg = ledger.get(), &root_sched](NodeId, BytesView payload,
                                       std::uint8_t) {
        lg->record(payload, root_sched.now());
      });

  // ---- formation: budget scales with the hop diameter, not node count.
  const std::size_t diameter_hops =
      l.side * ((l.islands_x + 1) / 2 + (l.islands_y + 1) / 2);
  const sim::Duration form =
      20'000'000 + static_cast<sim::Duration>(diameter_hops) * 3'000'000;
  if (auto v = advance(world, form); !v.empty()) {
    r.failure = "city_grid: formation: " + v;
    return r;
  }
  for (int grace = 0; grace < 8 && world.joined_fraction() < 1.0; ++grace) {
    if (auto v = advance(world, world.now() + 15'000'000); !v.empty()) {
      r.failure = "city_grid: formation: " + v;
      return r;
    }
  }
  if (world.joined_fraction() < l.join_floor) {
    r.failure = "city_grid: city never joined (" +
                std::to_string(world.joined_fraction()) + ")";
    return r;
  }

  // ---- pre-scheduled traffic (on each node's own island scheduler) ----
  // `sent` is tallied per island: island events run on exactly one lane
  // at a time, so each slot has a single writer.
  const sim::Time start = world.now();
  const sim::Time end = start + p.measure_time;
  std::vector<std::uint64_t> sent_by_island(world.islands(), 0);
  const sim::Duration period = l.period;
  const std::uint32_t root_isl = world.island_of(world.root_index());
  const std::size_t rx = root_isl % l.islands_x;
  const std::size_t ry = root_isl / l.islands_x;
  for (std::size_t i = 0; i < world.size(); ++i) {
    if (i == world.root_index()) continue;
    // District membership: the sender's island within Chebyshev
    // distance 1 of the root's island.
    const std::uint32_t isl = world.island_of(i);
    const std::size_t ix = isl % l.islands_x;
    const std::size_t iy = isl / l.islands_x;
    if ((ix > rx ? ix - rx : rx - ix) > 1 ||
        (iy > ry ? iy - ry : ry - iy) > 1) {
      continue;
    }
    core::MeshNode* node = &world.node(i);
    sim::Scheduler& sched = world.scheduler(world.island_of(i));
    std::uint64_t* sent = &sent_by_island[world.island_of(i)];
    const auto origin = static_cast<std::uint32_t>(i);
    const sim::Time phase =
        200'000 + (static_cast<sim::Time>(i) * 7'919) % period;
    std::uint32_t seq = 0;
    for (sim::Time t = start + phase; t < end; t += period) {
      sched.schedule_at(t, [node, origin, seq, i, sent, &sched] {
        if (!node->routing->joined()) return;
        Buffer pl;
        write_timed(pl, origin, seq, sched.now(), meter_reading(i, seq));
        if (node->routing->send_up(std::move(pl))) ++*sent;
      });
      ++seq;
    }
  }

  // ---- mid-run crash of a border-straddling node -----------------------
  // Island 0's far corner sits against two neighbor islands; its crash
  // and rejoin land exactly on window boundaries (measure times are whole
  // seconds), the sharpest cross-island ordering corner.
  const std::size_t victim = l.side * l.side - 1;
  const sim::Time crash_at = start + p.measure_time / 3;
  if (auto v = advance(world, crash_at); !v.empty()) {
    r.failure = "city_grid: clean phase: " + v;
    return r;
  }
  world.node(victim).stop();
  if (auto v = advance(world, crash_at + 10'000'000); !v.empty()) {
    r.failure = "city_grid: crash phase: " + v;
    return r;
  }
  world.node(victim).start(false);
  if (auto v = advance(world, end); !v.empty()) {
    r.failure = "city_grid: rejoin phase: " + v;
    return r;
  }
  for (int grace = 0; grace < 4 && world.joined_fraction() < 1.0; ++grace) {
    if (auto v = advance(world, world.now() + 10'000'000); !v.empty()) {
      r.failure = "city_grid: rejoin grace: " + v;
      return r;
    }
  }
  if (world.joined_fraction() < l.join_floor) {
    r.failure = "city_grid: city did not re-join after the crash (" +
                std::to_string(world.joined_fraction()) + ")";
    return r;
  }
  if (ledger->malformed != 0) {
    r.failure = "city_grid: malformed or future-stamped payloads at the "
                "root (island clock skew?)";
    return r;
  }

  if (std::getenv("CITY_GRID_DEBUG") != nullptr) {
    std::uint64_t nr = 0, lk = 0, ttl = 0, loop = 0, fwd = 0, orig = 0,
                  deliv = 0, pc = 0, dio = 0, dis = 0, dao = 0;
    for (std::size_t i = 0; i < world.size(); ++i) {
      const auto& st = world.node(i).routing->stats();
      nr += st.drops_no_route; lk += st.drops_link; ttl += st.drops_ttl;
      loop += st.drops_loop; fwd += st.data_forwarded;
      orig += st.data_originated; deliv += st.data_delivered;
      pc += st.parent_changes;
      dio += st.dio_tx; dis += st.dis_tx; dao += st.dao_tx;
    }
    const auto ms2 = world.medium_stats();
    std::fprintf(stderr,
                 "DBG orig=%llu fwd=%llu deliv=%llu no_route=%llu link=%llu "
                 "ttl=%llu loop=%llu parent_changes=%llu dio=%llu dis=%llu "
                 "dao=%llu tx=%llu coll=%llu "
                 "snr=%llu abort=%llu xrx=%llu dup=%llu\n",
                 (unsigned long long)orig, (unsigned long long)fwd,
                 (unsigned long long)deliv, (unsigned long long)nr,
                 (unsigned long long)lk, (unsigned long long)ttl,
                 (unsigned long long)loop, (unsigned long long)pc,
                 (unsigned long long)dio, (unsigned long long)dis,
                 (unsigned long long)dao,
                 (unsigned long long)ms2.transmissions,
                 (unsigned long long)ms2.collisions,
                 (unsigned long long)ms2.snr_losses,
                 (unsigned long long)ms2.aborted,
                 (unsigned long long)ms2.cross_island_rx,
                 (unsigned long long)ledger->duplicates);
  }
  for (std::uint64_t s : sent_by_island) r.sent += s;
  r.delivered = ledger->latencies_us.size();
  r.latencies_us = std::move(ledger->latencies_us);
  for (std::size_t k = 0; k < world.islands(); ++k) {
    core::MeshNetwork& net = world.network(k);
    const sim::Time now = world.scheduler(k).now();
    for (std::size_t j = 0; j < net.size(); ++j) {
      if (k * l.side * l.side + j == world.root_index()) continue;
      net.node(j).meter.settle(now);
      r.duty_sum += net.node(j).meter.duty_cycle();
      ++r.duty_nodes;
    }
  }
  const radio::MediumStats ms = world.medium_stats();
  // The digest folds every lane-invariance counter; its low 32 bits ride
  // in the artifact so KPI byte-identity across --islands (and the weekly
  // city reference diff) covers the whole contract, not just the KPIs.
  const double digest_lo =
      static_cast<double>(world.digest() & 0xFFFFFFFFULL);
  r.extras = {static_cast<double>(world.islands()),
              static_cast<double>(ms.cross_island_rx),
              world.joined_fraction(), digest_lo};
  world.stop();
  return r;
}

std::vector<ExtraKpi> extras() {
  return {{"islands", Merge::kSum, 0.0, 0.0},
          {"cross_island_rx", Merge::kSum, 0.10, 50.0},
          {"joined_fraction", Merge::kAvg, 0.0, 0.005},
          {"world_digest_lo", Merge::kSum, 0.0, 0.0}};
}

std::vector<KpiBound> bounds_for(Tier tier) {
  const Layout l = layout_for(tier);
  const double n = static_cast<double>(l.islands_x * l.islands_y);
  // The crash window plus 1% injected frame drop caps honest delivery
  // well below 1; the floor is sanity, the baseline is the drift gate.
  return {{"delivery_ratio", 0.40, 1.0},
          {"islands", n, n},
          {"cross_island_rx", 1.0, 1e12},
          {"joined_fraction", l.join_floor, 1.0}};
}

testing::FuzzProfile fuzz_profile() {
  testing::FuzzProfile fp;
  fp.mac = testing::ScenarioMac::kCsma;
  fp.topology = testing::ScenarioTopology::kGrid;
  fp.min_nodes = 16;
  fp.max_nodes = 36;
  return fp;
}

}  // namespace

ScenarioSpec city_grid_spec() {
  return {"city_grid",
          "one island-partitioned city world, lane-invariant PDES scaling",
          params_for,
          run_shard,
          extras,
          bounds_for,
          fuzz_profile};
}

}  // namespace iiot::scenarios::detail
