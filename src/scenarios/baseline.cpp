#include "scenarios/baseline.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace iiot::scenarios {

namespace {

/// Finds the baseline's "runs" line for (scenario, tier, seed), or npos.
/// Lines are the artifact's own output, so exact substring matching on
/// the fixed key order is reliable without a general JSON parser.
std::string_view find_run_line(std::string_view content,
                               const KpiReport& rep) {
  const std::string key = "{\"scenario\":\"" + rep.scenario +
                          "\",\"tier\":\"" + to_string(rep.tier) +
                          "\",\"seed\":" + std::to_string(rep.seed) + ",";
  const std::size_t at = content.find(key);
  if (at == std::string_view::npos) return {};
  const std::size_t end = content.find('\n', at);
  return content.substr(at, end == std::string_view::npos ? content.size() - at
                                                          : end - at);
}

/// Extracts `"name":<number>` from the line's kpis object.
bool extract_kpi(std::string_view line, const std::string& name,
                 double& out) {
  const std::size_t kpis = line.find("\"kpis\":{");
  if (kpis == std::string_view::npos) return false;
  const std::string key = "\"" + name + "\":";
  const std::size_t at = line.find(key, kpis);
  if (at == std::string_view::npos) return false;
  const std::size_t num = at + key.size();
  // The artifact's %.6f numbers are short; bound the strtod buffer.
  char buf[40];
  std::size_t len = 0;
  while (num + len < line.size() && len + 1 < sizeof buf) {
    const char c = line[num + len];
    if ((c < '0' || c > '9') && c != '.' && c != '-' && c != '+' &&
        c != 'e' && c != 'E') {
      break;
    }
    buf[len++] = c;
  }
  if (len == 0) return false;
  buf[len] = '\0';
  char* end = nullptr;
  out = std::strtod(buf, &end);
  return end != buf;
}

}  // namespace

std::string check_against_baseline(const SuiteResult& suite,
                                   std::string_view baseline_content) {
  for (const KpiReport& rep : suite.reports) {
    const std::string_view line = find_run_line(baseline_content, rep);
    if (line.empty()) {
      return rep.scenario + " seed=" + std::to_string(rep.seed) + " tier=" +
             to_string(rep.tier) +
             " has no baseline entry (regenerate SCENARIO_baselines.json)";
    }
    for (const Kpi& k : rep.kpis) {
      double base = 0.0;
      if (!extract_kpi(line, k.name, base)) {
        return rep.scenario + " seed=" + std::to_string(rep.seed) +
               ": baseline entry lacks KPI " + k.name +
               " (regenerate SCENARIO_baselines.json)";
      }
      const double allowed = k.abs_tol + k.rel_tol * std::fabs(base);
      if (std::fabs(k.value - base) > allowed) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "%s seed=%llu: KPI %s=%.6f drifted from baseline "
                      "%.6f (tolerance %.6f)",
                      rep.scenario.c_str(),
                      static_cast<unsigned long long>(rep.seed),
                      k.name.c_str(), k.value, base, allowed);
        return buf;
      }
    }
  }
  return {};
}

}  // namespace iiot::scenarios
