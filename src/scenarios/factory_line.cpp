// Factory line: a linear conveyor of stations collecting spindle
// temperatures over a TDMA schedule into the line controller, which
// feeds the backend tier (bus → store → window rules). A deterministic
// overheat episode at the mid-line station must trip the interlock —
// a trailing-window average rule that halts the line — within bounded
// latency. This is the paper's §III "single coherent system" loop
// (sense → store → decide → actuate) under the E2-style synced MAC.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "backend/rules.hpp"
#include "backend/timeseries.hpp"
#include "backend/topic_bus.hpp"
#include "mac/tdma.hpp"
#include "obs/context.hpp"
#include "radio/medium.hpp"
#include "scenarios/specs.hpp"
#include "scenarios/world_util.hpp"
#include "sim/scheduler.hpp"

namespace iiot::scenarios::detail {

namespace {

constexpr std::uint64_t kSalt = 0xFAC701;
constexpr sim::Duration kSlot = 25'000;  // fits ~6 frames + acks

struct Sizes {
  std::size_t stations;
  std::size_t shards;
  sim::Duration measure;
};

Sizes sizes_for(Tier tier) {
  switch (tier) {
    case Tier::kSmoke: return {10, 1, 80'000'000};
    case Tier::kSoak: return {24, 3, 150'000'000};
    case Tier::kCity: return {50, 40, 240'000'000};
  }
  return {10, 1, 80'000'000};
}

RunParams params_for(Tier tier, std::uint64_t seed) {
  const Sizes s = sizes_for(tier);
  RunParams p;
  p.tier = tier;
  p.seed = seed;
  p.shards = s.shards;
  p.nodes_per_shard = s.stations;
  p.measure_time = s.measure;
  p.tracing = tier != Tier::kCity;
  return p;
}

/// Station i's temperature at sample k: a small rational-arithmetic
/// wiggle around a per-station base (no libm — values must be exact
/// across machines), plus the overheat episode at the mid-line station.
double station_temp(std::size_t i, std::uint32_t k, bool hot) {
  const double base = 40.0 + 1.5 * static_cast<double>(i % 7);
  const double wiggle =
      0.25 * static_cast<double>((i * 31 + k * 17) % 9) - 1.0;
  return base + wiggle + (hot ? 45.0 : 0.0);
}

ShardResult run_shard(const RunParams& p, std::size_t shard) {
  const std::uint64_t wseed = shard_seed(p.seed, shard, kSalt);
  const std::size_t n = p.nodes_per_shard;

  sim::Scheduler sched;
  obs::Context obsctx(sched, 1u << 18);
  obsctx.tracer().set_enabled(p.tracing);
  radio::PropagationConfig pcfg;
  pcfg.exponent = 3.0;
  pcfg.shadowing_sigma_db = 0.0;  // curated worlds stay libm-drift-free
  radio::Medium medium(sched, pcfg, wseed);

  struct Station {
    energy::Meter meter;
    radio::Radio radio;
    mac::TdmaMac mac;
    Station(radio::Medium& m, sim::Scheduler& s, NodeId id,
            radio::Position pos, Rng rng, const mac::TdmaConfig& cfg)
        : radio(m, s, id, pos, meter), mac(radio, s, rng, 0, cfg) {}
  };

  // The staggered schedule needs (depth_max + 1) slots per epoch for a
  // sample to ride the whole chain within one epoch.
  mac::TdmaConfig tcfg;
  tcfg.slot = kSlot;
  tcfg.epoch = static_cast<sim::Duration>(n + 2) * kSlot;
  tcfg.staggered = true;

  std::vector<std::unique_ptr<Station>> stations;
  for (std::size_t i = 0; i < n; ++i) {
    stations.push_back(std::make_unique<Station>(
        medium, sched, static_cast<NodeId>(i),
        radio::Position{static_cast<double>(i) * 18.0, 0.0},
        Rng(wseed, 60 + static_cast<std::uint64_t>(i)), tcfg));
    mac::TdmaSchedule s;
    s.parent = i == 0 ? kInvalidNode : static_cast<NodeId>(i - 1);
    s.depth = static_cast<int>(i);
    s.max_depth = static_cast<int>(n - 1);
    s.has_children = i + 1 < n;
    stations.back()->mac.configure(s);
  }

  // ---- backend tier at the line controller ---------------------------
  backend::TopicBus bus;
  backend::TimeSeriesStore store;
  std::vector<backend::SeriesId> series(n, backend::kInvalidSeries);
  std::vector<backend::TopicBus::SubId> ingest_subs;
  for (std::size_t i = 1; i < n; ++i) {
    const std::string topic = "factory/st" + std::to_string(i) + "/temp";
    series[i] = store.intern(topic);
    // Ingest before any rule subscribes: the bus dispatches in SubId
    // order, so the triggering sample is already stored when a window
    // rule evaluates (the core::System ordering invariant).
    ingest_subs.push_back(bus.subscribe(
        topic, [&store, sid = series[i], &sched](const std::string&,
                                                 BytesView payload) {
          char buf[64];
          const std::size_t len = std::min(payload.size(), sizeof buf - 1);
          __builtin_memcpy(buf, payload.data(), len);
          buf[len] = '\0';
          store.append(sid, sched.now(), std::strtod(buf, nullptr));
        }));
  }
  backend::RuleEngine rules(bus, &store);

  // Interlock: sustained overheat (trailing-window average) halts the
  // line. The latch turns repeated firings of one episode into one trip.
  const std::size_t hot_station = n / 2;
  const sim::Duration period =
      static_cast<sim::Duration>(std::max<std::size_t>(2, (n + 5) / 6)) *
      tcfg.epoch;
  std::uint64_t trips = 0;
  std::uint64_t halt_cmds = 0;
  bool halted = false;
  sim::Time first_trip_at = 0;
  backend::WindowCondition overheat;
  overheat.topic_filter = "factory/st" + std::to_string(hot_station) + "/temp";
  overheat.window = 4 * period;
  overheat.fn = agg::AggFn::kAvg;
  overheat.op = backend::CmpOp::kGreater;
  overheat.threshold = 70.0;
  overheat.min_samples = 3;
  backend::Action halt;
  halt.command_topic = "cmd/line/halt";
  halt.command_payload = "0";
  halt.callback = [&](const backend::RuleFiring&) {
    if (halted) return;
    halted = true;
    ++trips;
    if (first_trip_at == 0) first_trip_at = sched.now();
    sched.schedule_after(10'000'000, [&halted] { halted = false; });
  };
  rules.add_window_rule("line-interlock", overheat, halt);
  bus.subscribe("cmd/line/halt",
                [&halt_cmds](const std::string&, BytesView) { ++halt_cmds; });

  // ---- forwarding chain + controller ingest --------------------------
  auto ledger = std::make_unique<detail::Ledger>();
  ledger->sink = [&](std::uint32_t origin, double value, sim::Time) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4f", value);
    bus.publish("factory/st" + std::to_string(origin) + "/temp",
                std::string(buf));
  };
  for (std::size_t i = 0; i < n; ++i) {
    mac::Mac& m = stations[i]->mac;
    if (i == 0) {
      m.set_receive_handler(
          [lg = ledger.get(), &sched](NodeId, BytesView pl, double) {
            lg->record(pl, sched.now());
          });
    } else {
      const auto parent = static_cast<NodeId>(i - 1);
      mac::Mac* self = &m;
      m.set_receive_handler([self, parent](NodeId, BytesView pl, double) {
        self->send(parent, Buffer(pl.begin(), pl.end()));
      });
    }
    m.start();
  }

  // ---- pre-scheduled sampling ----------------------------------------
  // Stations sample every `period`, phase-staggered across epochs so a
  // relay never forwards more than ~n/K descendants' frames per window.
  const sim::Time start = 2 * tcfg.epoch;
  const sim::Time end = start + p.measure_time;
  const sim::Time last_send = end - 5 * tcfg.epoch;
  const sim::Time hot_from = start + (p.measure_time * 2) / 5;
  const sim::Time hot_to = start + (p.measure_time * 11) / 20;
  std::uint64_t sent = 0;
  sim::Time first_hot_send = 0;
  for (std::size_t i = 1; i < n; ++i) {
    mac::Mac* m = &stations[i]->mac;
    const auto parent = static_cast<NodeId>(i - 1);
    const auto origin = static_cast<std::uint32_t>(i);
    const sim::Time phase =
        (static_cast<sim::Time>(i) % ((period / tcfg.epoch))) * tcfg.epoch +
        1'000;
    std::uint32_t seq = 0;
    for (sim::Time t = start + phase; t < last_send; t += period) {
      const bool hot = i == hot_station && t >= hot_from && t < hot_to;
      if (hot && first_hot_send == 0) first_hot_send = t;
      sched.schedule_at(t, [m, parent, origin, seq, hot, i, &sent, &sched] {
        Buffer pl;
        write_timed(pl, origin, seq, sched.now(),
                    station_temp(i, seq, hot));
        if (m->send(parent, std::move(pl))) ++sent;
      });
      ++seq;
    }
  }

  // ---- run ------------------------------------------------------------
  ShardResult r;
  r.nodes = n;
  Stepper cp{sched, medium, nullptr, 0};
  if (auto v = cp.advance(end); !v.empty()) {
    r.failure = "factory_line: " + v;
    return r;
  }

  if (ledger->malformed != 0) {
    r.failure = "factory_line: malformed payloads at the controller";
    return r;
  }
  if (trips == 0) {
    r.failure = "factory_line: overheat episode never tripped the interlock";
    return r;
  }
  if (halt_cmds < trips) {
    r.failure = "factory_line: interlock fired without a halt command";
    return r;
  }
  if (p.tracing) {
    if (auto v = testing::check_trace_wellformed(obsctx.tracer());
        !v.empty()) {
      r.failure = "factory_line: " + v;
      return r;
    }
  }

  r.sent = sent;
  r.delivered = ledger->latencies_us.size();
  r.latencies_us = std::move(ledger->latencies_us);
  for (std::size_t i = 1; i < n; ++i) {
    stations[i]->meter.settle(sched.now());
    r.duty_sum += stations[i]->meter.duty_cycle();
    ++r.duty_nodes;
  }
  const double trip_latency_s =
      first_hot_send != 0 && first_trip_at > first_hot_send
          ? static_cast<double>(first_trip_at - first_hot_send) / 1e6
          : 0.0;
  r.extras = {static_cast<double>(trips), trip_latency_s,
              static_cast<double>(store.stats().appends),
              static_cast<double>(rules.firings())};
  return r;
}

std::vector<ExtraKpi> extras() {
  return {{"interlock_trips", Merge::kSum, 0.0, 0.5},
          {"interlock_latency_s", Merge::kAvg, 0.10, 0.5},
          {"backend_points", Merge::kSum, 0.02, 4.0},
          {"rule_firings", Merge::kSum, 0.10, 2.0}};
}

std::vector<KpiBound> bounds_for(Tier tier) {
  const Sizes s = sizes_for(tier);
  const double shards = static_cast<double>(s.shards);
  // Epoch grows with the chain; latency bounds scale with it.
  const double epoch_us =
      static_cast<double>((s.stations + 2) * kSlot);
  return {{"delivery_ratio", 0.90, 1.0},
          {"duty_cycle", 0.0, 0.25},
          {"latency_p99_us", 0.0, 8.0 * epoch_us},
          {"interlock_trips", shards, 6.0 * shards},
          {"interlock_latency_s", 0.5, 60.0}};
}

testing::FuzzProfile fuzz_profile() {
  testing::FuzzProfile fp;
  fp.mac = testing::ScenarioMac::kTdma;
  fp.topology = testing::ScenarioTopology::kLine;
  fp.min_nodes = 6;
  fp.max_nodes = 14;
  return fp;
}

}  // namespace

ScenarioSpec factory_line_spec() {
  return {"factory_line",
          "linear conveyor, TDMA-synced collection, window-rule interlock",
          params_for,
          run_shard,
          extras,
          bounds_for,
          fuzz_profile};
}

}  // namespace iiot::scenarios::detail
