// Shared world-building helpers for the curated scenarios (internal to
// src/scenarios/). Mirrors the fuzzer's harness idioms — paced RPL
// configs, checkpointed advancing with medium audits, a root-side
// delivery ledger — but carries timestamps and values in the payload so
// scenarios can report end-to-end latency and feed the backend tier.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/network.hpp"
#include "radio/medium.hpp"
#include "sim/scheduler.hpp"
#include "testing/invariants.hpp"

namespace iiot::scenarios::detail {

/// RPL pacing matched to the MAC (the fuzzer/bench policy): duty-cycled
/// MACs get a Trickle Imin no shorter than several wake intervals.
inline core::NodeConfig paced_node_config(core::MacKind mac) {
  core::NodeConfig cfg;
  cfg.mac = mac;
  const sim::Duration wake = 500'000;
  cfg.lpl.wake_interval = wake;
  cfg.rimac.wake_interval = wake;
  if (mac == core::MacKind::kCsma) {
    cfg.rpl.trickle = net::TrickleConfig{500'000, 8, 3};
    cfg.rpl.dao_interval = 30'000'000;
  } else {
    cfg.rpl.trickle = net::TrickleConfig{2'000'000, 8, 2};
    cfg.rpl.dao_interval = 90'000'000;
    cfg.rpl.dis_interval = 15'000'000;
    cfg.rpl.max_parent_failures = 6;
  }
  return cfg;
}

/// 24-byte timed sample: origin, sequence, send time, value (IEEE-754
/// bits — encoded as an integer, so the round trip is exact).
inline void write_timed(Buffer& p, std::uint32_t origin, std::uint32_t seq,
                        sim::Time sent, double value) {
  p.resize(24);
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value);
  __builtin_memcpy(&bits, &value, sizeof bits);
  for (int i = 0; i < 4; ++i) {
    p[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(origin >> (8 * i));
    p[static_cast<std::size_t>(4 + i)] =
        static_cast<std::uint8_t>(seq >> (8 * i));
  }
  for (int i = 0; i < 8; ++i) {
    p[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(sent >> (8 * i));
    p[static_cast<std::size_t>(16 + i)] =
        static_cast<std::uint8_t>(bits >> (8 * i));
  }
}

inline bool read_timed(BytesView p, std::uint32_t& origin,
                       std::uint32_t& seq, sim::Time& sent, double& value) {
  if (p.size() != 24) return false;
  origin = 0;
  seq = 0;
  sent = 0;
  std::uint64_t bits = 0;
  for (int i = 0; i < 4; ++i) {
    origin |= static_cast<std::uint32_t>(p[static_cast<std::size_t>(i)])
              << (8 * i);
    seq |= static_cast<std::uint32_t>(p[static_cast<std::size_t>(4 + i)])
           << (8 * i);
  }
  for (int i = 0; i < 8; ++i) {
    sent |= static_cast<sim::Time>(p[static_cast<std::size_t>(8 + i)])
            << (8 * i);
    bits |= static_cast<std::uint64_t>(p[static_cast<std::size_t>(16 + i)])
            << (8 * i);
  }
  __builtin_memcpy(&value, &bits, sizeof value);
  return true;
}

/// Root-side ledger: dedups (origin, seq), records end-to-end latency,
/// and hands fresh samples to an optional sink (backend ingest).
struct Ledger {
  std::uint64_t rx = 0;
  std::uint64_t malformed = 0;
  std::uint64_t duplicates = 0;
  std::vector<double> latencies_us;
  std::unordered_set<std::uint64_t> seen;
  /// sink(origin, value, sent_time) for each first-time delivery.
  std::function<void(std::uint32_t, double, sim::Time)> sink;

  void record(BytesView payload, sim::Time now) {
    ++rx;
    std::uint32_t origin = 0;
    std::uint32_t seq = 0;
    sim::Time sent = 0;
    double value = 0.0;
    if (!read_timed(payload, origin, seq, sent, value) || sent > now) {
      ++malformed;
      return;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(origin) << 32) | seq;
    if (!seen.insert(key).second) {
      ++duplicates;
      return;
    }
    latencies_us.push_back(static_cast<double>(now - sent));
    if (sink) sink(origin, value, sent);
  }
};

/// Steps the world in 1 s chunks, auditing medium bookkeeping at every
/// boundary; routing loops are counted, not asserted (transient loops
/// are legitimate while rank updates propagate).
struct Stepper {
  sim::Scheduler& sched;
  radio::Medium& medium;
  core::MeshNetwork* mesh = nullptr;
  std::uint64_t transient_loops = 0;

  [[nodiscard]] std::string advance(sim::Time to) {
    while (sched.now() < to) {
      sched.run_until(std::min<sim::Time>(to, sched.now() + 1'000'000));
      if (auto v = medium.check_consistency(); !v.empty()) return v;
      if (mesh != nullptr &&
          !testing::check_routing_acyclic(*mesh).empty()) {
        ++transient_loops;
      }
    }
    return {};
  }
};

/// Mean duty cycle over the non-root nodes (settles meters first).
inline void collect_duty(core::MeshNetwork& net, sim::Time now,
                         double& duty_sum, std::size_t& duty_nodes) {
  for (std::size_t i = 1; i < net.size(); ++i) {
    net.node(i).meter.settle(now);
    duty_sum += net.node(i).meter.duty_cycle();
    ++duty_nodes;
  }
}

}  // namespace iiot::scenarios::detail
