// Committed-baseline comparison for scenario KPIs. The baseline file is
// a byte-for-byte copy of a KPI artifact (scenario_ci --out writes the
// same format), so regenerating it is just re-running the suite. The
// comparison is per-KPI with the tolerance each KPI declares:
// |value - baseline| <= abs_tol + rel_tol * |baseline| — tight enough to
// catch behavioral drift, loose enough to absorb last-ulp libm
// differences across machines.
#pragma once

#include <string>
#include <string_view>

#include "scenarios/scenario_lib.hpp"

namespace iiot::scenarios {

/// Checks every report in `suite` against `baseline_content` (the text
/// of SCENARIO_baselines.json). Returns "" when every KPI of every run
/// matches within tolerance and every (scenario, tier, seed) run has a
/// baseline entry; else a description of the first divergence.
[[nodiscard]] std::string check_against_baseline(
    const SuiteResult& suite, std::string_view baseline_content);

}  // namespace iiot::scenarios
