// Mobile-asset yard: each shard is one yard cell — a random-field CSMA
// mesh of asset trackers under membership churn (trackers crash and
// return as assets move). Deliveries update a 3-replica CRDT asset
// registry (OrMap of LWW registers, one writer set per asset spread
// across replicas) that must converge after anti-entropy; a protocol
// gateway translates the yard's legacy equipment (Modbus forklift, BLE
// beacon, vendor-TLV crane) into the same backend namespace — the
// paper's §III interop story and §V AP-consistency story in one world.
// City tier: 150 cells × 40 trackers = 6000 nodes.
#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "backend/topic_bus.hpp"
#include "crdt/ormap.hpp"
#include "crdt/registers.hpp"
#include "dependability/faults.hpp"
#include "interop/gateway.hpp"
#include "interop/gatt.hpp"
#include "interop/modbus.hpp"
#include "interop/vendor_tlv.hpp"
#include "obs/context.hpp"
#include "radio/medium.hpp"
#include "scenarios/specs.hpp"
#include "scenarios/world_util.hpp"
#include "sim/scheduler.hpp"

namespace iiot::scenarios::detail {

namespace {

constexpr std::uint64_t kSalt = 0x9A2D;

struct Sizes {
  std::size_t trackers;
  std::size_t cells;
  sim::Duration measure;
};

Sizes sizes_for(Tier tier) {
  switch (tier) {
    case Tier::kSmoke: return {12, 2, 120'000'000};
    case Tier::kSoak: return {24, 4, 180'000'000};
    case Tier::kCity: return {40, 150, 180'000'000};
  }
  return {12, 2, 120'000'000};
}

RunParams params_for(Tier tier, std::uint64_t seed) {
  const Sizes s = sizes_for(tier);
  RunParams p;
  p.tier = tier;
  p.seed = seed;
  p.shards = s.cells;
  p.nodes_per_shard = s.trackers;
  p.measure_time = s.measure;
  p.tracing = tier != Tier::kCity;
  return p;
}

interop::ResourceDescriptor make_desc(std::uint16_t obj, std::uint8_t inst,
                                      std::uint16_t res, const char* name,
                                      bool writable) {
  interop::ResourceDescriptor d;
  d.path = {obj, inst, res};
  d.name = name;
  d.writable = writable;
  return d;
}

using AssetRegistry = crdt::OrMap<crdt::LwwRegister<double>>;

ShardResult run_shard(const RunParams& p, std::size_t shard) {
  const std::uint64_t wseed = shard_seed(p.seed, shard, kSalt);
  const std::size_t n = p.nodes_per_shard;

  sim::Scheduler sched;
  obs::Context obsctx(sched, 1u << 18);
  obsctx.tracer().set_enabled(p.tracing);
  radio::PropagationConfig pcfg;
  pcfg.exponent = 3.0;
  pcfg.shadowing_sigma_db = 0.0;
  radio::Medium medium(sched, pcfg, wseed);

  core::MeshNetwork net(sched, medium, Rng(wseed, 5),
                        paced_node_config(core::MacKind::kCsma));
  net.build_random_field(
      n, 13.0 * std::sqrt(static_cast<double>(n)));
  net.start(0);

  // ---- CRDT asset registry (3 replicas at the edge) ------------------
  // Writers for one asset rotate across replicas, so convergence is a
  // real multi-writer LWW merge, not a single-writer triviality.
  AssetRegistry replicas[3];
  auto ledger = std::make_unique<detail::Ledger>();
  ledger->sink = [&replicas, &sched](std::uint32_t origin, double value,
                                     sim::Time) {
    const auto rep = static_cast<crdt::ReplicaId>(
        (origin + static_cast<std::uint32_t>(sched.now() / 10'000'000)) % 3);
    replicas[rep].apply(rep, "asset-" + std::to_string(origin),
                        [&](crdt::LwwRegister<double>& reg) {
                          reg.set(rep, sched.now(), value);
                        });
  };
  net.root().routing->set_delivery_handler(
      [lg = ledger.get(), &sched](NodeId, BytesView payload, std::uint8_t) {
        lg->record(payload, sched.now());
      });

  // ---- legacy equipment behind the gateway ---------------------------
  backend::TopicBus bus;
  interop::ModbusRtuDevice forklift(1);
  forklift.set_register(100, 8700);  // battery 87.00 %
  interop::ModbusAdapter forklift_adapter(
      forklift,
      {{make_desc(3420, 0, 5700, "forklift battery", false), 100, 100.0}});
  interop::GattDevice beacon;
  beacon.set_float(0x21, 19.5f);
  interop::GattAdapter beacon_adapter(
      beacon, {{make_desc(3303, 0, 5700, "gate beacon temp", false), 0x21}});
  interop::VendorTlvDevice crane;
  crane.set_point(7, 3.2);  // hoisted load, tons
  interop::VendorTlvAdapter crane_adapter(
      crane, {{make_desc(3322, 0, 5700, "crane load", false), 7}});

  interop::GatewayConfig gcfg;
  gcfg.poll_interval = 5'000'000;
  gcfg.site = "yard" + std::to_string(shard);
  interop::Gateway gateway(sched, bus, gcfg);
  gateway.add_device("forklift", forklift_adapter);
  gateway.add_device("gate", beacon_adapter);
  gateway.add_device("crane", crane_adapter);

  std::uint64_t interop_points = 0;
  bus.subscribe("#", [&interop_points](const std::string&, BytesView) {
    ++interop_points;
  });
  gateway.start();

  // ---- formation ------------------------------------------------------
  ShardResult r;
  r.nodes = n;
  Stepper cp{sched, medium, &net, 0};
  if (auto v = cp.advance(25'000'000); !v.empty()) {
    r.failure = "mobile_yard: formation: " + v;
    return r;
  }
  const double baseline = net.joined_fraction();
  if (baseline < 0.5) {
    r.failure = "mobile_yard: under half the trackers joined (" +
                std::to_string(baseline) + ")";
    return r;
  }

  // ---- measurement under churn ---------------------------------------
  const sim::Time start = sched.now();
  const sim::Time end = start + p.measure_time;
  const sim::Time churn_end = start + (p.measure_time * 7) / 10;
  // Traffic keeps flowing through the post-churn loop-settle window:
  // the data-plane rank-inconsistency check is what resolves transient
  // RPL loops quickly — a silent network leaves them to slow trickle.
  const int settle_rounds = 6 + static_cast<int>(n / 12);
  // Cover the re-join grace rounds too: a loop that forms late must
  // still see data (the data-plane check is what escalates repairs).
  const sim::Time traffic_end =
      end + static_cast<sim::Duration>(4 + settle_rounds) * 15'000'000;
  std::uint64_t sent = 0;
  const sim::Duration period = 2'500'000;
  for (std::size_t i = 1; i < n; ++i) {
    core::MeshNode* node = &net.node(i);
    const auto origin = static_cast<std::uint32_t>(i);
    const sim::Time phase =
        200'000 + (static_cast<sim::Time>(i) * 7'919) % period;
    std::uint32_t seq = 0;
    for (sim::Time t = start + phase; t < traffic_end; t += period) {
      sched.schedule_at(t, [node, origin, seq, i, &sent, &sched] {
        if (!node->routing->joined() || node->routing->is_root()) return;
        Buffer pl;
        write_timed(pl, origin, seq, sched.now(),
                    static_cast<double>((i * 37 + seq * 11) % 199));
        if (node->routing->send_up(std::move(pl))) ++sent;
      });
      ++seq;
    }
  }

  // Trackers leave and return as assets move between cells.
  std::vector<std::unique_ptr<dependability::CrashProcess>> churn;
  std::vector<core::MeshNode*> churn_nodes;
  std::uint64_t churn_events = 0;
  for (std::size_t k = 0; k < 2; ++k) {
    const std::size_t idx = 1 + (shard + 3 + k * 5) % (n - 1);
    core::MeshNode* node = &net.node(idx);
    if (std::find(churn_nodes.begin(), churn_nodes.end(), node) !=
        churn_nodes.end()) {
      continue;
    }
    dependability::FaultConfig fc;
    fc.mttf_seconds = 25.0;
    fc.mttr_seconds = 10.0;
    fc.repair = true;
    churn.push_back(std::make_unique<dependability::CrashProcess>(
        sched, Rng(wseed, 500 + static_cast<std::uint64_t>(idx)), fc,
        [node, &churn_events] {
          ++churn_events;
          node->stop();
        },
        [node] { node->start(false); }));
    churn_nodes.push_back(node);
    churn.back()->start();
  }
  // The yard's legacy gear changes state mid-run.
  sched.schedule_at(start + p.measure_time / 3,
                    [&forklift] { forklift.set_register(100, 4100); });
  sched.schedule_at(start + (p.measure_time * 3) / 5,
                    [&crane] { crane.set_point(7, 11.8); });

  if (auto v = cp.advance(churn_end); !v.empty()) {
    r.failure = "mobile_yard: churn window: " + v;
    return r;
  }
  for (std::size_t k = 0; k < churn.size(); ++k) {
    churn[k]->stop();
    if (!churn[k]->up()) churn_nodes[k]->start(false);
  }
  // Post-churn global repair: repeated crash/restart cycles leave stale
  // ranks that can close multi-node loops, which the data plane only
  // detects for direct two-cycles. A version bump obsoletes every stale
  // entry at once — the operational move after heavy churn.
  net.root().routing->global_repair();
  if (auto v = cp.advance(end); !v.empty()) {
    r.failure = "mobile_yard: settle: " + v;
    return r;
  }
  for (int grace = 0;
       grace < 3 && net.joined_fraction() + 1e-9 < baseline; ++grace) {
    if (auto v = cp.advance(sched.now() + 15'000'000); !v.empty()) {
      r.failure = "mobile_yard: settle: " + v;
      return r;
    }
  }
  if (net.joined_fraction() + 1e-9 < baseline) {
    r.failure = "mobile_yard: joined fraction regressed (" +
                std::to_string(baseline) + " -> " +
                std::to_string(net.joined_fraction()) + ")";
    return r;
  }
  // RPL loops left over from the churn are transient by contract; give
  // the still-running traffic bounded time to trip the data-plane
  // inconsistency check. Multi-node cycles in a dense field can livelock
  // on stale same-version ranks (the data plane only catches direct
  // two-cycles), so while unconverged the root escalates with repeated
  // version bumps — each one obsoletes every stale entry at once.
  // Each bump also re-randomizes the rebuild, so repairs are spaced
  // three rounds apart and never fire in the last three rounds — the
  // final checks must land on a converged mesh, not mid-rebuild.
  std::string acyclic = testing::check_routing_acyclic(net);
  for (int grace = 0; grace < settle_rounds && !acyclic.empty(); ++grace) {
    if (grace % 3 == 1 && grace + 3 < settle_rounds) {
      net.root().routing->global_repair();
    }
    if (auto v = cp.advance(sched.now() + 15'000'000); !v.empty()) {
      r.failure = "mobile_yard: loop settle: " + v;
      return r;
    }
    acyclic = testing::check_routing_acyclic(net);
  }
  if (!acyclic.empty()) {
    r.failure = "mobile_yard: " + acyclic;
    return r;
  }
  if (ledger->malformed != 0) {
    r.failure = "mobile_yard: malformed payloads at the root";
    return r;
  }
  if (ledger->latencies_us.empty()) {
    r.failure = "mobile_yard: no tracker update ever arrived";
    return r;
  }
  if (gateway.stats().poll_errors != 0) {
    r.failure = "mobile_yard: gateway poll errors";
    return r;
  }
  if (p.tracing) {
    if (auto v = testing::check_trace_wellformed(obsctx.tracer());
        !v.empty()) {
      r.failure = "mobile_yard: " + v;
      return r;
    }
  }

  // ---- registry convergence ------------------------------------------
  // Two full anti-entropy rounds, then every replica must agree on the
  // key set and every LWW winner.
  for (int round = 0; round < 2; ++round) {
    for (int a = 0; a < 3; ++a) {
      for (int b = 0; b < 3; ++b) {
        if (a != b) replicas[a].merge(replicas[b]);
      }
    }
  }
  const auto keys = replicas[0].keys();
  for (int a = 1; a < 3; ++a) {
    if (replicas[a].keys() != keys) {
      r.failure = "mobile_yard: replicas disagree on the asset set";
      return r;
    }
    for (const auto& key : keys) {
      const auto* va = replicas[a].get(key);
      const auto* v0 = replicas[0].get(key);
      if (va == nullptr || v0 == nullptr ||
          va->get() != v0->get()) {
        r.failure = "mobile_yard: replicas disagree on asset " + key;
        return r;
      }
    }
  }
  // The library reuses the self-contained AP convergence property too
  // (same checker the fuzzer folds into generated worlds).
  if (auto v = testing::check_crdt_convergence(wseed, 3, 30); !v.empty()) {
    r.failure = "mobile_yard: " + v;
    return r;
  }

  r.sent = sent;
  r.delivered = ledger->latencies_us.size();
  r.latencies_us = std::move(ledger->latencies_us);
  collect_duty(net, sched.now(), r.duty_sum, r.duty_nodes);
  r.extras = {static_cast<double>(keys.size()),
              static_cast<double>(interop_points),
              static_cast<double>(gateway.stats().polls),
              static_cast<double>(churn_events)};
  return r;
}

std::vector<ExtraKpi> extras() {
  return {{"crdt_assets", Merge::kSum, 0.10, 2.0},
          {"interop_points", Merge::kSum, 0.05, 4.0},
          {"gateway_polls", Merge::kSum, 0.02, 2.0},
          {"churn_events", Merge::kSum, 0.50, 4.0}};
}

std::vector<KpiBound> bounds_for(Tier tier) {
  const Sizes s = sizes_for(tier);
  const double cells = static_cast<double>(s.cells);
  const double trackers = static_cast<double>(s.trackers);
  return {{"delivery_ratio", 0.50, 1.0},
          {"crdt_assets", 0.4 * cells * (trackers - 1.0),
           cells * (trackers - 1.0)},
          {"interop_points", cells * 3.0, 1e9}};
}

testing::FuzzProfile fuzz_profile() {
  testing::FuzzProfile fp;
  fp.mac = testing::ScenarioMac::kCsma;
  fp.topology = testing::ScenarioTopology::kRandomField;
  fp.min_nodes = 8;
  fp.max_nodes = 16;
  fp.min_churn_slots = 1;
  fp.force_crdt = true;
  return fp;
}

}  // namespace

ScenarioSpec mobile_yard_spec() {
  return {"mobile_yard",
          "churning yard cells, CRDT asset registry, interop adapters",
          params_for,
          run_shard,
          extras,
          bounds_for,
          fuzz_profile};
}

}  // namespace iiot::scenarios::detail
