// HVAC building fleet: each shard is one building — an LPL duty-cycled
// zone-sensor mesh whose border router feeds a per-building backend
// store. Zone temperatures roll up through the store's chunk-rollup
// aggregate path into a building average, and those merge into the
// fleet average across shards; a window rule per building raises
// overheat alerts on a deterministic hot zone. The paper's §IV energy
// story (E1) plus the backend query path (E9) as one standing scenario.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "backend/rules.hpp"
#include "backend/timeseries.hpp"
#include "backend/topic_bus.hpp"
#include "obs/context.hpp"
#include "radio/medium.hpp"
#include "scenarios/specs.hpp"
#include "scenarios/world_util.hpp"
#include "sim/scheduler.hpp"

namespace iiot::scenarios::detail {

namespace {

constexpr std::uint64_t kSalt = 0x47AC;

struct Sizes {
  std::size_t zones;  // nodes per building (incl. border router)
  std::size_t buildings;
  sim::Duration measure;
};

Sizes sizes_for(Tier tier) {
  switch (tier) {
    case Tier::kSmoke: return {9, 2, 120'000'000};
    case Tier::kSoak: return {16, 4, 180'000'000};
    // 5x5 buildings: a 6x6 LPL grid at this pitch runs at the edge of
    // strobe-airtime collapse (delivery ~0.74) — a standing scenario
    // must sit in the stable regime, not probe the cliff. Measure time
    // holds ~5 sampling periods plus a full period of phase stagger
    // (the hot samples are seqs 2-3); the 25-zone period is 60 s.
    case Tier::kCity: return {25, 50, 400'000'000};
  }
  return {9, 2, 120'000'000};
}

RunParams params_for(Tier tier, std::uint64_t seed) {
  const Sizes s = sizes_for(tier);
  RunParams p;
  p.tier = tier;
  p.seed = seed;
  p.shards = s.buildings;
  p.nodes_per_shard = s.zones;
  p.measure_time = s.measure;
  p.tracing = tier != Tier::kCity;
  return p;
}

/// Zone temperature: rational arithmetic only (exact across machines).
double zone_temp(std::size_t zone, std::uint32_t k, bool hot) {
  const double base = 21.0 + 0.3 * static_cast<double>(zone % 7);
  const double drift =
      0.2 * static_cast<double>((zone * 13 + k * 7) % 11) - 1.0;
  return base + drift + (hot ? 8.0 : 0.0);
}

ShardResult run_shard(const RunParams& p, std::size_t shard) {
  const std::uint64_t wseed = shard_seed(p.seed, shard, kSalt);
  const std::size_t n = p.nodes_per_shard;

  sim::Scheduler sched;
  obs::Context obsctx(sched, 1u << 18);
  obsctx.tracer().set_enabled(p.tracing);
  radio::PropagationConfig pcfg;
  pcfg.exponent = 3.0;
  pcfg.shadowing_sigma_db = 0.0;
  radio::Medium medium(sched, pcfg, wseed);

  core::MeshNetwork net(sched, medium, Rng(wseed, 5),
                        paced_node_config(core::MacKind::kLpl));
  net.build_grid(n, 14.0);
  net.start(0);

  // ---- building backend ----------------------------------------------
  backend::TopicBus bus;
  backend::TimeSeriesStore store;
  std::vector<backend::SeriesId> series(n, backend::kInvalidSeries);
  std::vector<backend::TopicBus::SubId> ingest_subs;
  const std::string bprefix = "hvac/b" + std::to_string(shard);
  for (std::size_t i = 1; i < n; ++i) {
    const std::string topic = bprefix + "/z" + std::to_string(i) + "/temp";
    series[i] = store.intern(topic);
    ingest_subs.push_back(bus.subscribe(
        topic, [&store, sid = series[i], &sched](const std::string&,
                                                 BytesView payload) {
          char buf[64];
          const std::size_t len = std::min(payload.size(), sizeof buf - 1);
          __builtin_memcpy(buf, payload.data(), len);
          buf[len] = '\0';
          store.append(sid, sched.now(), std::strtod(buf, nullptr));
        }));
  }
  backend::RuleEngine rules(bus, &store);

  // Sampling period scales with building size — LPL channel capacity:
  // a multi-hop sample costs ~avg-depth x half the 500 ms wake interval
  // of strobe airtime, and depth grows with the grid too, so (n-1)
  // senders need ~2.5 s of period per zone to stay comfortably under
  // 50% utilisation at the 6x6 city grid. Declared up front because the
  // alert window derives from it.
  const sim::Duration period = std::max<sim::Duration>(
      15'000'000, static_cast<sim::Duration>(n - 1) * 2'500'000);

  const std::size_t hot_zone = 1 + (n / 2) % (n - 1);
  std::uint64_t alerts = 0;
  backend::WindowCondition overheat;
  overheat.topic_filter =
      bprefix + "/z" + std::to_string(hot_zone) + "/temp";
  // Half a sampling period: the window normally holds just the latest
  // reading, so one delivered hot sample fires the rule — LPL loses a
  // few percent of samples, and requiring two survivors in one window
  // made the alert hostage to which ones. Threshold 25 keeps a window
  // diluted by a straggler cold sample (avg ~25.5) firing while staying
  // clear of the cold ceiling (~23.6).
  overheat.window = period / 2;
  overheat.fn = agg::AggFn::kAvg;
  overheat.op = backend::CmpOp::kGreater;
  overheat.threshold = 25.0;
  overheat.min_samples = 1;
  backend::Action alert;
  alert.command_topic = "cmd/b" + std::to_string(shard) + "/hvac/boost";
  alert.command_payload = "1";
  alert.callback = [&alerts](const backend::RuleFiring&) { ++alerts; };
  rules.add_window_rule("zone-overheat", overheat, alert);

  auto ledger = std::make_unique<detail::Ledger>();
  std::uint64_t hot_delivered = 0;
  ledger->sink = [&](std::uint32_t origin, double value, sim::Time) {
    const std::size_t zone = origin;  // mesh node id == zone index
    if (zone == 0 || zone >= n) return;
    if (value > 25.0) ++hot_delivered;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4f", value);
    bus.publish(bprefix + "/z" + std::to_string(zone) + "/temp",
                std::string(buf));
  };
  net.root().routing->set_delivery_handler(
      [lg = ledger.get(), &sched](NodeId, BytesView payload, std::uint8_t) {
        lg->record(payload, sched.now());
      });

  // ---- formation ------------------------------------------------------
  ShardResult r;
  r.nodes = n;
  Stepper cp{sched, medium, &net, 0};
  const sim::Time form = 60'000'000;
  if (auto v = cp.advance(form); !v.empty()) {
    r.failure = "hvac_fleet: formation: " + v;
    return r;
  }
  for (int grace = 0; grace < 4 && net.joined_fraction() < 1.0; ++grace) {
    if (auto v = cp.advance(sched.now() + 15'000'000); !v.empty()) {
      r.failure = "hvac_fleet: formation: " + v;
      return r;
    }
  }
  if (net.joined_fraction() < 1.0) {
    r.failure = "hvac_fleet: building mesh never fully joined (" +
                std::to_string(net.joined_fraction()) + ")";
    return r;
  }

  // ---- duty-cycled sampling ------------------------------------------
  const sim::Time start = sched.now();
  const sim::Time end = start + p.measure_time;
  const sim::Time last_send = end - 10'000'000;
  std::uint64_t sent = 0;
  for (std::size_t i = 1; i < n; ++i) {
    core::MeshNode* node = &net.node(i);
    const auto origin = static_cast<std::uint32_t>(i);
    // Spread send phases evenly across the whole period: a burst of
    // near-simultaneous LPL strobes from every zone is the congestion
    // worst case, not the average one.
    const sim::Time phase =
        200'000 + (static_cast<sim::Time>(i) * period) / n;
    std::uint32_t seq = 0;
    for (sim::Time t = start + phase; t < last_send; t += period) {
      // Samples 2 and 3 of the hot zone run hot: index-based so every
      // tier (whose period differs) sees exactly two hot samples.
      const bool hot = i == hot_zone && seq >= 2 && seq <= 3;
      sched.schedule_at(t, [node, origin, seq, hot, i, &sent, &sched] {
        if (!node->routing->joined()) return;
        Buffer pl;
        write_timed(pl, origin, seq, sched.now(), zone_temp(i, seq, hot));
        if (node->routing->send_up(std::move(pl))) ++sent;
      });
      ++seq;
    }
  }

  if (auto v = cp.advance(end); !v.empty()) {
    r.failure = "hvac_fleet: " + v;
    return r;
  }

  // ---- final invariants ----------------------------------------------
  if (auto v = testing::check_routing_acyclic(net); !v.empty()) {
    r.failure = "hvac_fleet: " + v;
    return r;
  }
  if (ledger->malformed != 0 || ledger->duplicates != 0) {
    r.failure = "hvac_fleet: malformed or duplicate deliveries at the root";
    return r;
  }
  if (ledger->latencies_us.empty()) {
    r.failure = "hvac_fleet: no zone sample ever reached the router";
    return r;
  }
  // Exact implication, not a delivery bet: every delivered hot sample
  // must fire the rule, but a building whose two hot samples were both
  // lost in the mesh has nothing to alert on (the delivery-ratio KPI is
  // what judges the mesh).
  if (hot_delivered > 0 && alerts == 0) {
    r.failure = "hvac_fleet: hot samples reached the store but the "
                "overheat rule never fired";
    return r;
  }
  if (p.tracing) {
    if (auto v = testing::check_trace_wellformed(obsctx.tracer());
        !v.empty()) {
      r.failure = "hvac_fleet: " + v;
      return r;
    }
  }

  // ---- backend rollup query ------------------------------------------
  // Building average via the store's chunk-rollup aggregate path; the
  // downsample pass keeps the bucketed query path exercised too.
  agg::PartialAggregate building;
  for (std::size_t i = 1; i < n; ++i) {
    building.merge(store.aggregate(series[i], start, end));
  }
  if (building.count != store.stats().appends) {
    r.failure = "hvac_fleet: rollup aggregate missed stored points";
    return r;
  }
  const auto buckets =
      store.downsample(series[hot_zone], start, end, 30'000'000);

  r.sent = sent;
  r.delivered = ledger->latencies_us.size();
  r.latencies_us = std::move(ledger->latencies_us);
  collect_duty(net, sched.now(), r.duty_sum, r.duty_nodes);
  r.extras = {building.evaluate(agg::AggFn::kAvg),
              static_cast<double>(alerts),
              static_cast<double>(store.stats().appends),
              static_cast<double>(buckets.size())};
  return r;
}

std::vector<ExtraKpi> extras() {
  return {{"fleet_avg_temp", Merge::kAvg, 0.0, 0.2},
          {"overheat_alerts", Merge::kSum, 0.15, 3.0},
          {"backend_points", Merge::kSum, 0.05, 8.0},
          {"rollup_buckets", Merge::kSum, 0.05, 2.0}};
}

std::vector<KpiBound> bounds_for(Tier tier) {
  const Sizes s = sizes_for(tier);
  return {{"delivery_ratio", 0.80, 1.0},
          {"duty_cycle", 0.0, 0.15},
          {"fleet_avg_temp", 20.0, 26.0},
          // Expected ~2 per building; halved to stay a sanity floor even
          // when a few buildings lose a hot sample to the mesh.
          {"overheat_alerts", static_cast<double>(s.buildings) * 0.5, 1e9}};
}

testing::FuzzProfile fuzz_profile() {
  testing::FuzzProfile fp;
  fp.mac = testing::ScenarioMac::kLpl;
  fp.topology = testing::ScenarioTopology::kGrid;
  fp.min_nodes = 6;
  fp.max_nodes = 12;
  return fp;
}

}  // namespace

ScenarioSpec hvac_fleet_spec() {
  return {"hvac_fleet",
          "building fleet, LPL duty-cycled sensing, backend rollup queries",
          params_for,
          run_shard,
          extras,
          bounds_for,
          fuzz_profile};
}

}  // namespace iiot::scenarios::detail
