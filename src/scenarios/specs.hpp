// Internal: per-scenario spec constructors, one per translation unit,
// assembled into the registry by scenario_lib.cpp.
#pragma once

#include "scenarios/scenario_lib.hpp"

namespace iiot::scenarios::detail {

[[nodiscard]] ScenarioSpec factory_line_spec();
[[nodiscard]] ScenarioSpec hvac_fleet_spec();
[[nodiscard]] ScenarioSpec mine_tunnel_spec();
[[nodiscard]] ScenarioSpec mobile_yard_spec();
[[nodiscard]] ScenarioSpec city_grid_spec();

/// Per-shard world seed: decorrelates shards of one instance without
/// touching the instance seed's meaning.
[[nodiscard]] inline std::uint64_t shard_seed(std::uint64_t seed,
                                              std::size_t shard,
                                              std::uint64_t salt) {
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ULL + salt;
  x ^= static_cast<std::uint64_t>(shard) * 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 29;
  return x | 1;  // never zero
}

}  // namespace iiot::scenarios::detail
