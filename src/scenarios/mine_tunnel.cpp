// Mine/tunnel: each shard is one tunnel segment — a long linear CSMA
// multi-hop chain collecting into a portal border router. The schedule
// runs a partition/repair episode (a mid-chain relay dies and returns)
// and then a portal-router crash that RNFD must detect network-wide
// (on a chain only one node is root-adjacent, so the sentinel quorum is
// one — the degenerate end of the paper's §IV-B parallelism argument).
// After the portal is replaced the chain must fully re-join. City tier:
// 100 segments × 50 nodes = 5000 nodes.
#include <algorithm>
#include <memory>
#include <vector>

#include "net/rnfd.hpp"
#include "obs/context.hpp"
#include "radio/medium.hpp"
#include "scenarios/specs.hpp"
#include "scenarios/world_util.hpp"
#include "sim/scheduler.hpp"

namespace iiot::scenarios::detail {

namespace {

constexpr std::uint64_t kSalt = 0x714E1;

struct Sizes {
  std::size_t nodes;
  std::size_t segments;
};

Sizes sizes_for(Tier tier) {
  switch (tier) {
    case Tier::kSmoke: return {12, 2};
    case Tier::kSoak: return {30, 4};
    case Tier::kCity: return {50, 100};
  }
  return {12, 2};
}

// The fault schedule needs fixed absolute windows (partition 20 s, root
// down ~35 s, final heal), so measure time is tier-independent.
constexpr sim::Duration kMeasure = 180'000'000;

RunParams params_for(Tier tier, std::uint64_t seed) {
  const Sizes s = sizes_for(tier);
  RunParams p;
  p.tier = tier;
  p.seed = seed;
  p.shards = s.segments;
  p.nodes_per_shard = s.nodes;
  p.measure_time = kMeasure;
  p.tracing = tier != Tier::kCity;
  return p;
}

double gas_level(std::size_t i, std::uint32_t k) {
  return 1.0 + 0.05 * static_cast<double>((i * 19 + k * 5) % 13);
}

ShardResult run_shard(const RunParams& p, std::size_t shard) {
  const std::uint64_t wseed = shard_seed(p.seed, shard, kSalt);
  const std::size_t n = p.nodes_per_shard;

  sim::Scheduler sched;
  obs::Context obsctx(sched, 1u << 18);
  obsctx.tracer().set_enabled(p.tracing);
  radio::PropagationConfig pcfg;
  pcfg.exponent = 3.0;
  pcfg.shadowing_sigma_db = 0.0;
  radio::Medium medium(sched, pcfg, wseed);

  core::NodeConfig ncfg = paced_node_config(core::MacKind::kCsma);
  // Deep chains: the default TTL (32) would drop legitimate traffic on
  // 50-hop segments.
  ncfg.rpl.max_hops = 120;
  // Root-failure handling is RNFD's job here (the paper's §IV-B story):
  // with the default threshold the steady gas-sample traffic hammering a
  // dead portal makes the sentinel abandon its parent within ~2 s, which
  // destroys sentinel status before RNFD can accumulate conclusive
  // misses. On a chain there is no alternative parent anyway, so local
  // abandonment buys nothing.
  ncfg.rpl.max_parent_failures = 1 << 30;
  core::MeshNetwork net(sched, medium, Rng(wseed, 5), ncfg);
  net.build_line(n, 18.0);
  net.start(0);

  auto ledger = std::make_unique<detail::Ledger>();
  net.root().routing->set_delivery_handler(
      [lg = ledger.get(), &sched](NodeId, BytesView payload, std::uint8_t) {
        lg->record(payload, sched.now());
      });

  // ---- RNFD on every non-portal node ---------------------------------
  // On a chain exactly one node is a sentinel, so the quorum floor is 1;
  // the ratio keeps its default (1 suspect / 1 participant = 1.0).
  net::RnfdConfig rcfg;
  rcfg.probe_interval = 5'000'000;
  rcfg.probe_jitter = 1'000'000;
  rcfg.liveness_window = 10'000'000;
  rcfg.quorum_min = 1;
  std::vector<std::unique_ptr<net::RnfdDetector>> detectors;
  sim::Time detected_at = 0;
  for (std::size_t i = 1; i < n; ++i) {
    detectors.push_back(std::make_unique<net::RnfdDetector>(
        *net.node(i).routing, sched,
        Rng(wseed, 300 + static_cast<std::uint64_t>(i)), rcfg));
    detectors.back()->set_failure_handler([&detected_at, &sched] {
      if (detected_at == 0) detected_at = sched.now();
    });
  }

  // ---- formation ------------------------------------------------------
  ShardResult r;
  r.nodes = n;
  Stepper cp{sched, medium, &net, 0};
  const sim::Duration form = 25'000'000 + (n / 10) * 5'000'000;
  if (auto v = cp.advance(form); !v.empty()) {
    r.failure = "mine_tunnel: formation: " + v;
    return r;
  }
  for (int grace = 0; grace < 4 && net.joined_fraction() < 1.0; ++grace) {
    if (auto v = cp.advance(sched.now() + 15'000'000); !v.empty()) {
      r.failure = "mine_tunnel: formation: " + v;
      return r;
    }
  }
  if (net.joined_fraction() < 1.0) {
    r.failure = "mine_tunnel: chain never fully joined (" +
                std::to_string(net.joined_fraction()) + ")";
    return r;
  }
  for (auto& d : detectors) d->start();

  // ---- pre-scheduled traffic -----------------------------------------
  const sim::Time start = sched.now();
  const sim::Time end = start + p.measure_time;
  // Gas reports keep flowing through the post-replacement loop-settle
  // window: the data-plane rank-inconsistency check is what resolves
  // transient RPL loops quickly — a silent chain leaves them to slow
  // trickle (and keeps proving portal liveness to RNFD for free).
  const int settle_rounds = 4 + static_cast<int>(n / 10);
  // Cover the re-join grace and verdict-settle rounds too: loops that
  // form late still need data flowing (the data-plane check escalates
  // repairs), and traffic keeps proving portal liveness to RNFD.
  const sim::Time traffic_end =
      end +
      static_cast<sim::Duration>(4 + 2 * settle_rounds) * 15'000'000;
  std::uint64_t sent = 0;
  const sim::Duration period = 3'000'000;
  for (std::size_t i = 1; i < n; ++i) {
    core::MeshNode* node = &net.node(i);
    const auto origin = static_cast<std::uint32_t>(i);
    const sim::Time phase =
        200'000 + (static_cast<sim::Time>(i) * 7'919) % period;
    std::uint32_t seq = 0;
    for (sim::Time t = start + phase; t < traffic_end; t += period) {
      sched.schedule_at(t, [node, origin, seq, i, &sent, &sched] {
        if (!node->routing->joined() || node->routing->is_root()) return;
        Buffer pl;
        write_timed(pl, origin, seq, sched.now(), gas_level(i, seq));
        if (node->routing->send_up(std::move(pl))) ++sent;
      });
      ++seq;
    }
  }

  // ---- schedule: clean → partition/repair → portal crash → replace ----
  const sim::Time part_at = start + 50'000'000;
  const sim::Time part_heal = part_at + 20'000'000;
  const sim::Time crash_at = part_heal + 25'000'000;
  const sim::Time replace_at = crash_at + 45'000'000;
  const std::size_t relay = std::max<std::size_t>(2, n / 3);

  if (auto v = cp.advance(part_at); !v.empty()) {
    r.failure = "mine_tunnel: clean phase: " + v;
    return r;
  }
  net.node(relay).stop();  // rockfall takes out a mid-chain relay
  if (auto v = cp.advance(part_heal); !v.empty()) {
    r.failure = "mine_tunnel: partition: " + v;
    return r;
  }
  net.node(relay).start(false);
  net.root().routing->global_repair();
  if (auto v = cp.advance(crash_at); !v.empty()) {
    r.failure = "mine_tunnel: repair: " + v;
    return r;
  }
  if (detected_at != 0) {
    r.failure = "mine_tunnel: RNFD false positive before the portal crash";
    return r;
  }

  net.root().stop();  // portal router dies
  const sim::Time crash_time = sched.now();
  if (auto v = cp.advance(replace_at); !v.empty()) {
    r.failure = "mine_tunnel: portal crash: " + v;
    return r;
  }
  if (detected_at == 0) {
    r.failure = "mine_tunnel: RNFD never detected the portal crash";
    return r;
  }

  net.root().start(true);  // replacement router at the portal
  net.root().routing->global_repair();
  if (auto v = cp.advance(end); !v.empty()) {
    r.failure = "mine_tunnel: replacement: " + v;
    return r;
  }
  for (int grace = 0; grace < 4 && net.joined_fraction() < 1.0; ++grace) {
    if (auto v = cp.advance(sched.now() + 15'000'000); !v.empty()) {
      r.failure = "mine_tunnel: re-join: " + v;
      return r;
    }
  }
  if (net.joined_fraction() < 1.0) {
    r.failure = "mine_tunnel: chain never re-joined after replacement (" +
                std::to_string(net.joined_fraction()) + ")";
    return r;
  }
  // RPL loops are transient by contract: the still-running gas traffic
  // trips the data-plane inconsistency check and trickle re-converges —
  // the invariant is "eventually acyclic", given bounded settle time.
  // While unconverged the portal escalates with sparse version bumps
  // (each obsoletes every stale entry at once), never in the last three
  // rounds so the final checks land on a converged chain.
  std::string acyclic = testing::check_routing_acyclic(net);
  for (int grace = 0; grace < settle_rounds && !acyclic.empty(); ++grace) {
    if (grace % 3 == 1 && grace + 3 < settle_rounds) {
      net.root().routing->global_repair();
    }
    if (auto v = cp.advance(sched.now() + 15'000'000); !v.empty()) {
      r.failure = "mine_tunnel: loop settle: " + v;
      return r;
    }
    acyclic = testing::check_routing_acyclic(net);
  }
  if (!acyclic.empty()) {
    r.failure = "mine_tunnel: " + acyclic;
    return r;
  }
  // The replacement epoch-advances the CFRC via the sentinel's first
  // acked probe, and the advance disseminates hop-by-hop at the gossip
  // pace (1 s) — on a 50-node chain that is most of a minute to the far
  // end, so the verdict check gets the same bounded settle the loop
  // check gets. Stuck-at-dead only counts once that bound is spent.
  const auto verdict_stuck = [&detectors] {
    for (const auto& d : detectors) {
      if (d->root_declared_dead()) return true;
    }
    return false;
  };
  for (int grace = 0; grace < settle_rounds && verdict_stuck(); ++grace) {
    if (auto v = cp.advance(sched.now() + 15'000'000); !v.empty()) {
      r.failure = "mine_tunnel: verdict settle: " + v;
      return r;
    }
  }
  if (verdict_stuck()) {
    r.failure = "mine_tunnel: verdict stuck at dead after replacement";
    return r;
  }
  if (ledger->malformed != 0) {
    r.failure = "mine_tunnel: malformed payloads at the portal";
    return r;
  }
  if (p.tracing) {
    if (auto v = testing::check_trace_wellformed(obsctx.tracer());
        !v.empty()) {
      r.failure = "mine_tunnel: " + v;
      return r;
    }
  }

  r.sent = sent;
  r.delivered = ledger->latencies_us.size();
  r.latencies_us = std::move(ledger->latencies_us);
  collect_duty(net, sched.now(), r.duty_sum, r.duty_nodes);
  const double detect_s =
      static_cast<double>(detected_at - crash_time) / 1e6;
  r.extras = {1.0, detect_s, static_cast<double>(cp.transient_loops)};
  return r;
}

std::vector<ExtraKpi> extras() {
  return {{"rnfd_detected", Merge::kSum, 0.0, 0.0},
          {"rnfd_detect_s", Merge::kAvg, 0.25, 5.0},
          {"transient_loops", Merge::kSum, 1.0, 50.0}};
}

std::vector<KpiBound> bounds_for(Tier tier) {
  const Sizes s = sizes_for(tier);
  // ~45 s root-down plus a 20 s partition out of a 170 s send window
  // puts the honest ceiling near 0.65; the floor is a sanity bound, the
  // committed baseline tolerance is the real drift gate.
  return {{"delivery_ratio", 0.30, 1.0},
          {"rnfd_detected", static_cast<double>(s.segments),
           static_cast<double>(s.segments)},
          {"rnfd_detect_s", 5.0, 45.0}};
}

testing::FuzzProfile fuzz_profile() {
  testing::FuzzProfile fp;
  fp.mac = testing::ScenarioMac::kCsma;
  fp.topology = testing::ScenarioTopology::kLine;
  fp.min_nodes = 14;
  fp.max_nodes = 18;
  fp.force_rnfd_when_clean = true;
  return fp;
}

}  // namespace

ScenarioSpec mine_tunnel_spec() {
  return {"mine_tunnel",
          "long multi-hop chain, RNFD crash detection, partition/repair",
          params_for,
          run_shard,
          extras,
          bounds_for,
          fuzz_profile};
}

}  // namespace iiot::scenarios::detail
