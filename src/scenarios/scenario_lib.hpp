// Curated scenario library + staged continuous-testing pipeline
// (DESIGN.md §4h).
//
// Where the fuzzer (src/testing/) explores *random* worlds, this library
// pins down five *named* IIoT deployments — the paper's recurring
// examples — and re-runs them continuously as the codebase grows:
//
//   factory_line  linear conveyor, TDMA-synced collection, a window-rule
//                 interlock that halts the line on sustained overheat;
//   hvac_fleet    a fleet of buildings, LPL duty-cycled zone sensing,
//                 backend rollup queries per building;
//   mine_tunnel   long linear multi-hop chains, RNFD root-crash
//                 detection, a partition/repair schedule;
//   mobile_yard   churning random-field topology, CRDT asset registry,
//                 legacy-protocol gateway adapters;
//   city_grid     ONE city-scale world partitioned into spatial islands
//                 (pdes::IslandWorld, DESIGN.md §4i) — the scenario runs
//                 unsharded and scales through execution lanes instead.
//
// Each scenario declares its world builder, its invariants (reusing
// src/testing/invariants.*) and a KPI vector (delivery ratio, p50/p99
// end-to-end latency, duty cycle, backend query results, plus
// scenario-specific extras). KPIs are checked two ways: coarse sanity
// bounds compiled into the scenario, and a committed SCENARIO_baselines
// .json compared with per-KPI tolerances (scenarios/baseline.hpp).
//
// Scaling tiers stage the pipeline: kSmoke runs in seconds on every
// push, kSoak is the sanitized nightly sweep, kCity pushes the mine and
// yard scenarios to 5–10k nodes weekly. A scenario is *one* function of
// (tier, seed, shard): shards are independent worlds (buildings, tunnel
// segments, yard cells) executed on runner::Engine and merged from
// pre-sized slots in shard order, so every artifact is byte-identical at
// any --jobs — the same determinism contract as testing/batch.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "testing/scenario.hpp"

namespace iiot::runner {
class Engine;
}

namespace iiot::scenarios {

enum class Tier { kSmoke, kSoak, kCity };

[[nodiscard]] const char* to_string(Tier t);
/// Parses "smoke"/"soak"/"city"; returns false on anything else.
bool parse_tier(std::string_view s, Tier& out);

/// One KPI with the tolerance the baseline comparison allows it:
/// |value - baseline| <= abs_tol + rel_tol * |baseline|.
struct Kpi {
  std::string name;
  double value = 0.0;
  double rel_tol = 0.0;
  double abs_tol = 0.0;
};

/// How a scenario-specific KPI merges across shards (the standard KPIs
/// — delivery, latency percentiles, duty cycle — have fixed merges).
enum class Merge { kSum, kAvg, kMax };

/// Declaration of one scenario-specific KPI.
struct ExtraKpi {
  const char* name;
  Merge merge = Merge::kSum;
  double rel_tol = 0.05;
  double abs_tol = 0.0;
};

/// Compiled-in sanity range for a merged KPI (inclusive). The baseline
/// file pins exact values; these bounds catch a scenario that is broken
/// *and* freshly re-baselined.
struct KpiBound {
  const char* kpi;
  double min;
  double max;
};

/// Concrete world size for (tier, seed) — one scenario instance is
/// `shards` independent worlds of `nodes_per_shard` nodes each.
struct RunParams {
  Tier tier = Tier::kSmoke;
  std::uint64_t seed = 1;
  std::size_t shards = 1;
  std::size_t nodes_per_shard = 8;
  /// Simulated duration of the measurement phase (after formation).
  sim::Duration measure_time = 60'000'000;
  /// Trace auditing rides along below city scale (bounded ring buffers
  /// would only drop records on 5k-node worlds).
  bool tracing = true;
  /// Execution lanes for island-partitioned scenarios (0 = all cores).
  /// NOT part of the physics: every KPI and the whole artifact are
  /// byte-identical at any value (sharded scenarios ignore it).
  unsigned islands = 1;
};

/// What one shard's world produced. Merged strictly in shard order.
struct ShardResult {
  std::string failure;  // empty = every invariant + assertion held
  std::size_t nodes = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  /// End-to-end latencies (µs) of delivered samples, in delivery order.
  std::vector<double> latencies_us;
  /// Sum of per-node duty cycles and the node count behind it.
  double duty_sum = 0.0;
  std::size_t duty_nodes = 0;
  /// Scenario-specific KPI values, in the scenario's extras() order.
  std::vector<double> extras;
};

/// A named scenario: pure functions only, so (tier, seed) expands to the
/// same worlds on every machine and every job count.
struct ScenarioSpec {
  const char* name;
  const char* summary;
  RunParams (*params_for)(Tier, std::uint64_t seed);
  ShardResult (*run_shard)(const RunParams&, std::size_t shard);
  std::vector<ExtraKpi> (*extras)();
  std::vector<KpiBound> (*bounds_for)(Tier);
  /// Generator constraints handed to the fuzzer (iiot_fuzz --scenario=).
  testing::FuzzProfile (*fuzz_profile)();
};

/// The five scenarios, in registry (= artifact) order.
[[nodiscard]] const std::vector<ScenarioSpec>& library();
[[nodiscard]] const ScenarioSpec* find_scenario(std::string_view name);

/// Merged KPI record of one (scenario, tier, seed) instance.
struct KpiReport {
  std::string scenario;
  Tier tier = Tier::kSmoke;
  std::uint64_t seed = 0;
  std::size_t shards = 0;
  bool ok = true;
  std::string failure;  // empty iff ok
  std::vector<Kpi> kpis;

  [[nodiscard]] const Kpi* find(std::string_view name) const;
  /// One deterministic JSON line (fixed key order, %.6f numbers).
  [[nodiscard]] std::string json_line() const;
};

/// Runs one scenario instance, sharded across `eng`. Shard results are
/// written to pre-sized slots and merged in shard order (jobs-invariant).
/// `islands` feeds RunParams::islands (lane selection only).
[[nodiscard]] KpiReport run_one(const ScenarioSpec& spec, Tier tier,
                                std::uint64_t seed, runner::Engine& eng,
                                unsigned islands = 1);

struct SuiteOptions {
  Tier tier = Tier::kSmoke;
  std::uint64_t seed_base = 1;
  std::uint64_t seeds = 1;
  /// Execution lanes for island-partitioned scenarios (0 = all cores).
  unsigned islands = 1;
  /// Restrict to these scenario names (empty = whole library).
  std::vector<std::string> only;
};

struct SuiteResult {
  /// Reports in (registry, seed) order — never completion order.
  std::vector<KpiReport> reports;
  /// The aggregated KPI artifact (the file scenario_ci --out writes and
  /// SCENARIO_baselines.json is a copy of). Byte-identical at any jobs.
  std::string artifact;

  [[nodiscard]] bool ok() const;
  [[nodiscard]] std::string failures() const;
};

/// Flattens (scenario, seed, shard) into one engine batch: every shard
/// of every instance runs concurrently, results merge from slots.
[[nodiscard]] SuiteResult run_suite(const SuiteOptions& opt,
                                    runner::Engine& eng);

/// Determinism self-check: the suite at jobs=1/islands=1 vs. on `eng`
/// with the islands dimension exercised (opt.islands, or all-core lanes
/// when opt.islands == 1), diffing the artifact and every report.
/// Returns "" when byte-identical.
[[nodiscard]] std::string check_suite_determinism(const SuiteOptions& opt,
                                                  runner::Engine& eng);

}  // namespace iiot::scenarios
