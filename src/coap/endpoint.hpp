// CoAP endpoint: message-layer reliability (CON retransmission with
// exponential backoff, duplicate detection), request/response matching by
// token, a server-side resource registry, and Observe (RFC 7641)
// subscriptions. Transport-agnostic: plug any datagram carrier (the RPL
// mesh, the backend loopback, a gateway adapter) via SendFn/on_datagram.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "coap/message.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/scheduler.hpp"

namespace iiot::coap {

struct CoapConfig {
  sim::Duration ack_timeout = 2'000'000;   // RFC 7252 ACK_TIMEOUT
  double ack_random_factor = 1.5;
  int max_retransmit = 4;
  std::size_t dedup_capacity = 128;
  /// Every Nth observe notification is sent confirmable (liveness check);
  /// 0 disables confirmable notifications entirely.
  int confirmable_notify_every = 8;
};

struct Request {
  NodeId from = kInvalidNode;
  Code method = Code::kGet;
  std::string path;
  Buffer payload;
  const Message* raw = nullptr;
};

struct Response {
  Code code = Code::kContent;
  Buffer payload;
  std::vector<Option> options;
};

struct CoapStats {
  std::uint64_t tx_messages = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_messages = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t notifications_sent = 0;
};

class Endpoint {
 public:
  using SendFn = std::function<bool(NodeId dst, Buffer bytes)>;
  using ResponseHandler = std::function<void(Result<Response>)>;
  using NotifyHandler = std::function<void(const Response&)>;
  using ResourceHandler = std::function<Response(const Request&)>;

  Endpoint(NodeId self, sim::Scheduler& sched, Rng rng, SendFn send,
           CoapConfig cfg = {});

  /// Feed an incoming datagram from the transport below.
  void on_datagram(NodeId src, BytesView bytes);

  // ---- client API ----------------------------------------------------
  void get(NodeId dst, std::string_view path, ResponseHandler h);
  void put(NodeId dst, std::string_view path, Buffer payload,
           ResponseHandler h);
  void post(NodeId dst, std::string_view path, Buffer payload,
            ResponseHandler h);
  void del(NodeId dst, std::string_view path, ResponseHandler h);
  /// Registers an observation; `on_notify` fires on the initial response
  /// and on every subsequent notification.
  void observe(NodeId dst, std::string_view path, NotifyHandler on_notify);
  void cancel_observe(NodeId dst, std::string_view path);

  // ---- server API ----------------------------------------------------
  void add_resource(std::string path, ResourceHandler h);
  void remove_resource(const std::string& path);
  [[nodiscard]] bool has_resource(const std::string& path) const {
    return resources_.count(path) > 0;
  }
  /// Re-evaluates the resource and pushes a notification to observers.
  void notify_observers(const std::string& path);
  [[nodiscard]] std::size_t observer_count(const std::string& path) const;

  [[nodiscard]] const CoapStats& stats() const { return stats_; }
  [[nodiscard]] NodeId id() const { return self_; }

 private:
  struct PendingCon {
    NodeId dst;
    Buffer wire;
    int retries = 0;
    sim::Duration timeout = 0;
    sim::EventHandle timer;
    Token token = 0;  // 0 when not tied to a request (e.g. CON notify)
  };
  struct PendingRequest {
    NodeId dst;
    ResponseHandler handler;
  };
  struct Observation {  // client side
    NodeId dst;
    std::string path;
    NotifyHandler handler;
    std::uint32_t last_seq = 0;
  };
  struct Observer {  // server side
    NodeId addr;
    Token token;
    std::uint32_t seq = 1;
    int notifications = 0;
  };

  void request(NodeId dst, Code method, std::string_view path,
               Buffer payload, ResponseHandler h, bool observe_flag);
  void transmit(NodeId dst, const Message& m, Token request_token);
  void arm_retransmit(std::uint16_t mid);
  void handle_request(NodeId src, const Message& m);
  void handle_response(NodeId src, const Message& m);
  void fail_request(Token token, Error err);
  [[nodiscard]] bool is_duplicate(NodeId src, std::uint16_t mid);
  void remember_exchange(NodeId src, std::uint16_t mid, Buffer reply);

  NodeId self_;
  sim::Scheduler& sched_;
  Rng rng_;
  SendFn send_;
  CoapConfig cfg_;
  CoapStats stats_;

  std::uint16_t next_mid_;
  Token next_token_ = 1;

  std::unordered_map<std::uint16_t, PendingCon> pending_cons_;
  std::unordered_map<Token, PendingRequest> pending_requests_;
  std::unordered_map<Token, Observation> observations_;  // client
  std::map<std::string, ResourceHandler> resources_;
  std::map<std::string, std::vector<Observer>> observers_;  // server

  // Duplicate detection: (src, mid) -> cached reply bytes (may be empty).
  struct ExchangeKeyHash {
    std::size_t operator()(const std::pair<NodeId, std::uint16_t>& k) const {
      return std::hash<std::uint64_t>()(
          (static_cast<std::uint64_t>(k.first) << 16) | k.second);
    }
  };
  std::unordered_map<std::pair<NodeId, std::uint16_t>, Buffer,
                     ExchangeKeyHash>
      exchange_cache_;
  std::deque<std::pair<NodeId, std::uint16_t>> exchange_fifo_;
};

}  // namespace iiot::coap
