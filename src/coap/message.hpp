// CoAP message model and binary codec (RFC 7252, plus the Observe option
// of RFC 7641). The paper singles out CoAP as "a textbook example of a
// middleware protocol" for the sensing-and-actuation layer (§III-B); this
// is a faithful wire-format implementation — 4-byte header, token,
// delta-encoded options, 0xFF payload marker — so interop byte counts
// measured in E10/E12 are real.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace iiot::coap {

enum class Type : std::uint8_t {
  kConfirmable = 0,
  kNonConfirmable = 1,
  kAck = 2,
  kReset = 3,
};

/// CoAP codes: class.detail packed as (class << 5) | detail.
enum class Code : std::uint8_t {
  kEmpty = 0x00,
  // Requests (0.xx)
  kGet = 0x01,
  kPost = 0x02,
  kPut = 0x03,
  kDelete = 0x04,
  // Responses 2.xx
  kCreated = 0x41,   // 2.01
  kDeleted = 0x42,   // 2.02
  kValid = 0x43,     // 2.03
  kChanged = 0x44,   // 2.04
  kContent = 0x45,   // 2.05
  // 4.xx
  kBadRequest = 0x80,        // 4.00
  kUnauthorized = 0x81,      // 4.01
  kNotFound = 0x84,          // 4.04
  kMethodNotAllowed = 0x85,  // 4.05
  // 5.xx
  kInternalError = 0xA0,     // 5.00
  kServiceUnavailable = 0xA3 // 5.03
};

[[nodiscard]] constexpr bool is_request(Code c) {
  auto v = static_cast<std::uint8_t>(c);
  return v >= 0x01 && v <= 0x04;
}
[[nodiscard]] constexpr bool is_response(Code c) {
  return static_cast<std::uint8_t>(c) >= 0x40;
}
[[nodiscard]] constexpr bool is_success(Code c) {
  auto v = static_cast<std::uint8_t>(c);
  return (v >> 5) == 2;
}
[[nodiscard]] std::string code_name(Code c);

/// Option numbers (RFC 7252 §5.10, RFC 7641).
enum class OptionNumber : std::uint16_t {
  kObserve = 6,
  kUriPath = 11,
  kContentFormat = 12,
  kMaxAge = 14,
  kUriQuery = 15,
  kAccept = 17,
};

struct Option {
  std::uint16_t number = 0;
  Buffer value;

  [[nodiscard]] std::uint32_t as_uint() const {
    std::uint32_t v = 0;
    for (std::uint8_t b : value) v = (v << 8) | b;
    return v;
  }
  static Option make_uint(OptionNumber num, std::uint32_t v) {
    Option o;
    o.number = static_cast<std::uint16_t>(num);
    // Minimal-length big-endian encoding (RFC 7252 §3.2).
    Buffer bytes;
    while (v > 0) {
      bytes.insert(bytes.begin(), static_cast<std::uint8_t>(v & 0xFF));
      v >>= 8;
    }
    o.value = std::move(bytes);
    return o;
  }
  static Option make_string(OptionNumber num, std::string_view s) {
    Option o;
    o.number = static_cast<std::uint16_t>(num);
    o.value = to_buffer(s);
    return o;
  }
};

using Token = std::uint64_t;  // up to 8 token bytes, stored numerically

struct Message {
  Type type = Type::kConfirmable;
  Code code = Code::kEmpty;
  std::uint16_t message_id = 0;
  Token token = 0;
  std::uint8_t token_length = 0;  // bytes of token carried on the wire
  std::vector<Option> options;    // kept sorted by number when encoding
  Buffer payload;

  // -- option helpers --------------------------------------------------
  void add_option(Option o) { options.push_back(std::move(o)); }
  [[nodiscard]] const Option* find_option(OptionNumber num) const;
  /// Joins repeated Uri-Path options into "seg0/seg1/...".
  [[nodiscard]] std::string uri_path() const;
  void set_uri_path(std::string_view path);
  [[nodiscard]] std::optional<std::uint32_t> observe() const;

  /// Serializes to RFC 7252 wire format.
  [[nodiscard]] Buffer encode() const;
  /// Parses from wire format.
  static Result<Message> decode(BytesView bytes);
};

}  // namespace iiot::coap
