#include "coap/message.hpp"

#include <algorithm>

namespace iiot::coap {

std::string code_name(Code c) {
  const auto v = static_cast<std::uint8_t>(c);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%02u", v >> 5, v & 0x1F);
  return buf;
}

const Option* Message::find_option(OptionNumber num) const {
  for (const auto& o : options) {
    if (o.number == static_cast<std::uint16_t>(num)) return &o;
  }
  return nullptr;
}

std::string Message::uri_path() const {
  std::string path;
  for (const auto& o : options) {
    if (o.number == static_cast<std::uint16_t>(OptionNumber::kUriPath)) {
      if (!path.empty()) path += '/';
      path.append(o.value.begin(), o.value.end());
    }
  }
  return path;
}

void Message::set_uri_path(std::string_view path) {
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t slash = path.find('/', start);
    std::string_view seg = slash == std::string_view::npos
                               ? path.substr(start)
                               : path.substr(start, slash - start);
    if (!seg.empty()) {
      add_option(Option::make_string(OptionNumber::kUriPath, seg));
    }
    if (slash == std::string_view::npos) break;
    start = slash + 1;
  }
}

std::optional<std::uint32_t> Message::observe() const {
  const Option* o = find_option(OptionNumber::kObserve);
  if (o == nullptr) return std::nullopt;
  return o->as_uint();
}

namespace {

/// Encodes an option delta/length nibble with 13/14 extensions.
void write_nibble_ext(Buffer& out, std::uint16_t v, std::uint8_t& nibble) {
  if (v < 13) {
    nibble = static_cast<std::uint8_t>(v);
  } else if (v < 269) {
    nibble = 13;
  } else {
    nibble = 14;
  }
  (void)out;
}

void write_ext_bytes(Buffer& out, std::uint16_t v) {
  if (v < 13) return;
  if (v < 269) {
    out.push_back(static_cast<std::uint8_t>(v - 13));
  } else {
    const std::uint16_t x = v - 269;
    out.push_back(static_cast<std::uint8_t>(x >> 8));
    out.push_back(static_cast<std::uint8_t>(x & 0xFF));
  }
}

std::optional<std::uint16_t> read_nibble_ext(BufReader& r,
                                             std::uint8_t nibble) {
  if (nibble < 13) return nibble;
  if (nibble == 13) {
    auto b = r.u8();
    if (!b) return std::nullopt;
    return static_cast<std::uint16_t>(*b + 13);
  }
  if (nibble == 14) {
    auto b = r.u16();
    if (!b) return std::nullopt;
    return static_cast<std::uint16_t>(*b + 269);
  }
  return std::nullopt;  // 15 is reserved (payload marker context)
}

std::uint8_t token_bytes_needed(Token t) {
  std::uint8_t n = 0;
  while (t != 0) {
    ++n;
    t >>= 8;
  }
  return n;
}

}  // namespace

Buffer Message::encode() const {
  Buffer out;
  const std::uint8_t tkl =
      token_length > 0 ? token_length : token_bytes_needed(token);
  out.push_back(static_cast<std::uint8_t>(
      (1u << 6) | (static_cast<std::uint8_t>(type) << 4) | tkl));
  out.push_back(static_cast<std::uint8_t>(code));
  out.push_back(static_cast<std::uint8_t>(message_id >> 8));
  out.push_back(static_cast<std::uint8_t>(message_id & 0xFF));
  for (int i = tkl - 1; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>((token >> (8 * i)) & 0xFF));
  }

  std::vector<Option> sorted = options;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Option& a, const Option& b) {
                     return a.number < b.number;
                   });
  std::uint16_t prev = 0;
  for (const auto& o : sorted) {
    const auto delta = static_cast<std::uint16_t>(o.number - prev);
    const auto len = static_cast<std::uint16_t>(o.value.size());
    std::uint8_t dn = 0, ln = 0;
    write_nibble_ext(out, delta, dn);
    write_nibble_ext(out, len, ln);
    out.push_back(static_cast<std::uint8_t>((dn << 4) | ln));
    write_ext_bytes(out, delta);
    write_ext_bytes(out, len);
    out.insert(out.end(), o.value.begin(), o.value.end());
    prev = o.number;
  }
  if (!payload.empty()) {
    out.push_back(0xFF);
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

Result<Message> Message::decode(BytesView bytes) {
  BufReader r(bytes);
  auto b0 = r.u8();
  auto b1 = r.u8();
  auto mid = r.u16();
  if (!b0 || !b1 || !mid) {
    return Error{Error::Code::kMalformed, "coap: truncated header"};
  }
  if ((*b0 >> 6) != 1) {
    return Error{Error::Code::kUnsupported, "coap: bad version"};
  }
  Message m;
  m.type = static_cast<Type>((*b0 >> 4) & 0x3);
  const std::uint8_t tkl = *b0 & 0x0F;
  if (tkl > 8) {
    return Error{Error::Code::kMalformed, "coap: token too long"};
  }
  m.code = static_cast<Code>(*b1);
  m.message_id = *mid;
  m.token_length = tkl;
  m.token = 0;
  for (std::uint8_t i = 0; i < tkl; ++i) {
    auto tb = r.u8();
    if (!tb) return Error{Error::Code::kMalformed, "coap: truncated token"};
    m.token = (m.token << 8) | *tb;
  }

  std::uint16_t number = 0;
  while (r.remaining() > 0) {
    auto head = r.u8();
    if (!head) break;
    if (*head == 0xFF) {
      if (r.remaining() == 0) {
        return Error{Error::Code::kMalformed, "coap: empty payload"};
      }
      BytesView rest = r.rest();
      m.payload.assign(rest.begin(), rest.end());
      return m;
    }
    auto delta = read_nibble_ext(r, static_cast<std::uint8_t>(*head >> 4));
    auto len = read_nibble_ext(r, static_cast<std::uint8_t>(*head & 0x0F));
    if (!delta || !len) {
      return Error{Error::Code::kMalformed, "coap: bad option header"};
    }
    number = static_cast<std::uint16_t>(number + *delta);
    auto val = r.bytes(*len);
    if (!val) {
      return Error{Error::Code::kMalformed, "coap: truncated option"};
    }
    Option o;
    o.number = number;
    o.value.assign(val->begin(), val->end());
    m.options.push_back(std::move(o));
  }
  return m;
}

}  // namespace iiot::coap
