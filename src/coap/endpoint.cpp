#include "coap/endpoint.hpp"

#include <utility>

namespace iiot::coap {

Endpoint::Endpoint(NodeId self, sim::Scheduler& sched, Rng rng, SendFn send,
                   CoapConfig cfg)
    : self_(self),
      sched_(sched),
      rng_(rng),
      send_(std::move(send)),
      cfg_(cfg),
      next_mid_(static_cast<std::uint16_t>(rng_.next_u32())) {}

// ------------------------------------------------------------- client API

void Endpoint::get(NodeId dst, std::string_view path, ResponseHandler h) {
  request(dst, Code::kGet, path, {}, std::move(h), false);
}
void Endpoint::put(NodeId dst, std::string_view path, Buffer payload,
                   ResponseHandler h) {
  request(dst, Code::kPut, path, std::move(payload), std::move(h), false);
}
void Endpoint::post(NodeId dst, std::string_view path, Buffer payload,
                    ResponseHandler h) {
  request(dst, Code::kPost, path, std::move(payload), std::move(h), false);
}
void Endpoint::del(NodeId dst, std::string_view path, ResponseHandler h) {
  request(dst, Code::kDelete, path, {}, std::move(h), false);
}

void Endpoint::observe(NodeId dst, std::string_view path,
                       NotifyHandler on_notify) {
  const Token token = next_token_++;
  Observation obs;
  obs.dst = dst;
  obs.path = std::string(path);
  obs.handler = std::move(on_notify);
  observations_[token] = std::move(obs);

  Message m;
  m.type = Type::kConfirmable;
  m.code = Code::kGet;
  m.message_id = next_mid_++;
  m.token = token;
  m.add_option(Option::make_uint(OptionNumber::kObserve, 0));
  m.set_uri_path(path);
  transmit(dst, m, token);
}

void Endpoint::cancel_observe(NodeId dst, std::string_view path) {
  for (auto it = observations_.begin(); it != observations_.end();) {
    if (it->second.dst == dst && it->second.path == path) {
      // RFC 7641 §3.6: GET with Observe=1 deregisters.
      Message m;
      m.type = Type::kNonConfirmable;
      m.code = Code::kGet;
      m.message_id = next_mid_++;
      m.token = it->first;
      m.add_option(Option::make_uint(OptionNumber::kObserve, 1));
      m.set_uri_path(path);
      transmit(dst, m, 0);
      it = observations_.erase(it);
    } else {
      ++it;
    }
  }
}

void Endpoint::request(NodeId dst, Code method, std::string_view path,
                       Buffer payload, ResponseHandler h, bool observe_flag) {
  const Token token = next_token_++;
  pending_requests_[token] = PendingRequest{dst, std::move(h)};

  Message m;
  m.type = Type::kConfirmable;
  m.code = method;
  m.message_id = next_mid_++;
  m.token = token;
  if (observe_flag) {
    m.add_option(Option::make_uint(OptionNumber::kObserve, 0));
  }
  m.set_uri_path(path);
  m.payload = std::move(payload);
  transmit(dst, m, token);
}

// --------------------------------------------------------- message layer

void Endpoint::transmit(NodeId dst, const Message& m, Token request_token) {
  Buffer wire = m.encode();
  ++stats_.tx_messages;
  stats_.tx_bytes += wire.size();
  if (m.type == Type::kConfirmable) {
    PendingCon pc;
    pc.dst = dst;
    pc.wire = wire;
    pc.token = request_token;
    pc.timeout = static_cast<sim::Duration>(
        static_cast<double>(cfg_.ack_timeout) *
        rng_.uniform(1.0, cfg_.ack_random_factor));
    pending_cons_[m.message_id] = std::move(pc);
    arm_retransmit(m.message_id);
  }
  send_(dst, std::move(wire));
}

void Endpoint::arm_retransmit(std::uint16_t mid) {
  auto it = pending_cons_.find(mid);
  if (it == pending_cons_.end()) return;
  PendingCon& pc = it->second;
  pc.timer = sched_.schedule_after(pc.timeout, [this, mid] {
    auto pit = pending_cons_.find(mid);
    if (pit == pending_cons_.end()) return;
    PendingCon& p = pit->second;
    if (p.retries >= cfg_.max_retransmit) {
      ++stats_.timeouts;
      const Token tok = p.token;
      pending_cons_.erase(pit);
      if (tok != 0) fail_request(tok, Error{Error::Code::kTimeout, "coap"});
      return;
    }
    ++p.retries;
    ++stats_.retransmissions;
    p.timeout *= 2;  // exponential backoff
    ++stats_.tx_messages;
    stats_.tx_bytes += p.wire.size();
    send_(p.dst, p.wire);
    arm_retransmit(mid);
  });
}

void Endpoint::fail_request(Token token, Error err) {
  if (auto it = pending_requests_.find(token);
      it != pending_requests_.end()) {
    auto handler = std::move(it->second.handler);
    pending_requests_.erase(it);
    if (handler) handler(std::move(err));
    return;
  }
  observations_.erase(token);  // dead observation
}

void Endpoint::on_datagram(NodeId src, BytesView bytes) {
  auto decoded = Message::decode(bytes);
  if (!decoded.ok()) return;
  Message m = std::move(decoded).take();
  ++stats_.rx_messages;

  switch (m.type) {
    case Type::kAck: {
      if (auto it = pending_cons_.find(m.message_id);
          it != pending_cons_.end()) {
        it->second.timer.cancel();
        pending_cons_.erase(it);
      }
      if (m.code != Code::kEmpty) handle_response(src, m);
      return;
    }
    case Type::kReset: {
      Token tok = 0;
      if (auto it = pending_cons_.find(m.message_id);
          it != pending_cons_.end()) {
        tok = it->second.token;
        it->second.timer.cancel();
        pending_cons_.erase(it);
      }
      if (tok != 0) {
        fail_request(tok, Error{Error::Code::kUnavailable, "coap: reset"});
      }
      return;
    }
    case Type::kConfirmable:
    case Type::kNonConfirmable:
      break;
  }

  if (is_request(m.code)) {
    if (m.type == Type::kConfirmable && is_duplicate(src, m.message_id)) {
      ++stats_.duplicates;
      // Replay the cached reply, if any.
      auto& cached = exchange_cache_[{src, m.message_id}];
      if (!cached.empty()) {
        ++stats_.tx_messages;
        stats_.tx_bytes += cached.size();
        send_(src, cached);
      }
      return;
    }
    handle_request(src, m);
    return;
  }
  if (is_response(m.code)) {
    if (m.type == Type::kConfirmable) {
      // Separate response: acknowledge it.
      Message ack;
      ack.type = Type::kAck;
      ack.code = Code::kEmpty;
      ack.message_id = m.message_id;
      transmit(src, ack, 0);
    }
    handle_response(src, m);
  }
}

// ------------------------------------------------------------ server side

void Endpoint::add_resource(std::string path, ResourceHandler h) {
  resources_[std::move(path)] = std::move(h);
}

void Endpoint::remove_resource(const std::string& path) {
  resources_.erase(path);
  observers_.erase(path);
}

std::size_t Endpoint::observer_count(const std::string& path) const {
  auto it = observers_.find(path);
  return it == observers_.end() ? 0 : it->second.size();
}

void Endpoint::handle_request(NodeId src, const Message& m) {
  ++stats_.requests_served;
  Request req;
  req.from = src;
  req.method = m.code;
  req.path = m.uri_path();
  req.payload = m.payload;
  req.raw = &m;

  Response rsp;
  auto rit = resources_.find(req.path);
  if (rit == resources_.end()) {
    rsp.code = Code::kNotFound;
  } else {
    rsp = rit->second(req);
  }

  // Observe registration / deregistration.
  bool observing = false;
  if (auto obs = m.observe(); obs && m.code == Code::kGet &&
                              rit != resources_.end() &&
                              is_success(rsp.code)) {
    auto& list = observers_[req.path];
    if (*obs == 0) {
      bool exists = false;
      for (auto& o : list) {
        if (o.addr == src && o.token == m.token) exists = true;
      }
      if (!exists) list.push_back(Observer{src, m.token, 1, 0});
      observing = true;
      rsp.options.push_back(Option::make_uint(OptionNumber::kObserve, 1));
    } else {
      std::erase_if(list, [&](const Observer& o) {
        return o.addr == src && o.token == m.token;
      });
    }
  }
  (void)observing;

  Message reply;
  reply.code = rsp.code;
  reply.token = m.token;
  reply.token_length = m.token_length;
  reply.options = std::move(rsp.options);
  reply.payload = std::move(rsp.payload);
  if (m.type == Type::kConfirmable) {
    reply.type = Type::kAck;  // piggybacked response
    reply.message_id = m.message_id;
    Buffer wire = reply.encode();
    remember_exchange(src, m.message_id, wire);
    ++stats_.tx_messages;
    stats_.tx_bytes += wire.size();
    send_(src, std::move(wire));
  } else {
    reply.type = Type::kNonConfirmable;
    reply.message_id = next_mid_++;
    transmit(src, reply, 0);
  }
}

void Endpoint::notify_observers(const std::string& path) {
  auto oit = observers_.find(path);
  auto rit = resources_.find(path);
  if (oit == observers_.end() || rit == resources_.end()) return;
  for (auto& obs : oit->second) {
    Request req;
    req.from = obs.addr;
    req.method = Code::kGet;
    req.path = path;
    Response rsp = rit->second(req);

    Message m;
    const bool confirmable =
        cfg_.confirmable_notify_every > 0 &&
        (obs.notifications % cfg_.confirmable_notify_every) ==
            cfg_.confirmable_notify_every - 1;
    m.type = confirmable ? Type::kConfirmable : Type::kNonConfirmable;
    m.code = rsp.code;
    m.message_id = next_mid_++;
    m.token = obs.token;
    m.add_option(Option::make_uint(OptionNumber::kObserve, ++obs.seq));
    m.options.insert(m.options.end(), rsp.options.begin(),
                     rsp.options.end());
    m.payload = std::move(rsp.payload);
    ++obs.notifications;
    ++stats_.notifications_sent;
    transmit(obs.addr, m, 0);
  }
}

// ------------------------------------------------------------ client side

void Endpoint::handle_response(NodeId src, const Message& m) {
  (void)src;
  // Observation notification?
  if (auto it = observations_.find(m.token); it != observations_.end()) {
    Response rsp;
    rsp.code = m.code;
    rsp.payload = m.payload;
    rsp.options = m.options;
    it->second.handler(rsp);
    return;
  }
  if (auto it = pending_requests_.find(m.token);
      it != pending_requests_.end()) {
    auto handler = std::move(it->second.handler);
    pending_requests_.erase(it);
    Response rsp;
    rsp.code = m.code;
    rsp.payload = m.payload;
    rsp.options = m.options;
    if (handler) handler(std::move(rsp));
  }
}

// ------------------------------------------------------- duplicate cache

bool Endpoint::is_duplicate(NodeId src, std::uint16_t mid) {
  return exchange_cache_.count({src, mid}) > 0;
}

void Endpoint::remember_exchange(NodeId src, std::uint16_t mid,
                                 Buffer reply) {
  auto key = std::make_pair(src, mid);
  if (exchange_cache_.emplace(key, std::move(reply)).second) {
    exchange_fifo_.push_back(key);
    if (exchange_fifo_.size() > cfg_.dedup_capacity) {
      exchange_cache_.erase(exchange_fifo_.front());
      exchange_fifo_.pop_front();
    }
  }
}

}  // namespace iiot::coap
