#include "core/system.hpp"

#include <cstdio>
#include <optional>

#include "agg/collection.hpp"

namespace iiot::core {

namespace {
constexpr std::uint8_t kTagSensor = 'S';
constexpr std::uint8_t kTagCommand = 'C';

/// Measurement handler over any store type: parses the numeric payload
/// and appends via the interned-handle hot path. The (topic, ref) memo
/// keeps the string-keyed shim cold across a burst on one topic — the
/// hot-path audit of DESIGN.md §4g; TimeSeriesStats::string_appends
/// stays 0 across System ingest.
template <typename StoreT>
auto make_measurement_handler(StoreT& store, sim::Scheduler& sched) {
  return [&store, &sched, memo_topic = std::string(),
          memo_ref = StoreT::kNoSeries](const std::string& topic,
                                        BytesView p) mutable {
    const std::string s = iiot::to_string(p);
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str()) return;
    if (memo_ref == StoreT::kNoSeries || topic != memo_topic) {
      memo_ref = store.intern(topic);
      memo_topic = topic;
    }
    store.append(memo_ref, sched.now(), v);
  };
}
}  // namespace

System::System(sim::Scheduler& sched, std::uint64_t seed, SystemConfig cfg)
    : sched_(sched),
      rng_(seed),
      cfg_(cfg),
      store_(cfg.retention),
      rules_(bus_, &store_) {
  if (cfg_.observability || cfg_.tracing) {
    // Must exist before any mesh/backend object registers metrics.
    obs_ = std::make_unique<obs::Context>(sched_, cfg_.trace_capacity);
    obs_->tracer().set_enabled(cfg_.tracing);
    obs::MetricsRegistry& m = obs_->metrics();
    m.attach_gauge_fn(
        "backend", "bus_published", obs::kWorldNode,
        [this] { return static_cast<double>(bus_.published()); }, this);
    m.attach_gauge_fn(
        "backend", "bus_delivered", obs::kWorldNode,
        [this] { return static_cast<double>(bus_.delivered()); }, this);
    m.attach_gauge_fn(
        "backend", "store_appended", obs::kWorldNode,
        [this] { return static_cast<double>(store_.total_appended()); },
        this);
    // Backend fast-path counters (DESIGN.md §4f), attach_counter style:
    // the hot paths keep incrementing their own struct fields and the
    // registry reads through the pointers at snapshot time.
    const backend::TimeSeriesStats& ts = store_.stats();
    m.attach_counter("backend", "store_evicted", obs::kWorldNode,
                     &ts.evicted, this);
    m.attach_counter("backend", "store_rollup_hits", obs::kWorldNode,
                     &ts.rollup_hits, this);
    m.attach_counter("backend", "store_chunk_scans", obs::kWorldNode,
                     &ts.chunk_scans, this);
    m.attach_counter("backend", "store_string_appends", obs::kWorldNode,
                     &ts.string_appends, this);
    const backend::BusStats& bs = bus_.stats();
    m.attach_counter("backend", "bus_exact_hits", obs::kWorldNode,
                     &bs.exact_hits, this);
    m.attach_counter("backend", "bus_trie_nodes", obs::kWorldNode,
                     &bs.trie_nodes_visited, this);
    m.attach_counter("backend", "bus_deferred_unsubs", obs::kWorldNode,
                     &bs.deferred_unsubs, this);
    bus_.set_fanout_histogram(
        m.histogram("backend", "bus_fanout", obs::kWorldNode,
                    {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}));
  }
  if (cfg_.backend_shards > 1) {
    // Sharded backend tier (DESIGN.md §4g). The measurement subscription
    // moves to the sharded bus, so measurements land in the sharded
    // store; everything still published on the legacy bus (gateways,
    // direct bus() users) is relayed into the sharded plane.
    shard_pool_ = std::make_unique<runner::Engine>(cfg_.backend_workers);
    sharded_store_ = std::make_unique<backend::ShardedStore>(
        cfg_.backend_shards, cfg_.retention, shard_pool_.get());
    sharded_bus_ = std::make_unique<backend::ShardedBus>(cfg_.backend_shards,
                                                         shard_pool_.get());
    // Subscribed before any rule can be added: lower SubId on every
    // shard, so samples are stored before window rules evaluate (the
    // rule engine's ordering invariant).
    sharded_bus_->subscribe(
        "+/+/#", make_measurement_handler(*sharded_store_, sched_));
    sharded_rules_ = std::make_unique<backend::ShardedRuleEngine>(
        *sharded_bus_, sharded_store_.get());
    bus_.subscribe("#", [this](const std::string& topic, BytesView p) {
      sharded_bus_->publish(topic, p);
    });
    if (obs_) {
      obs::MetricsRegistry& m = obs_->metrics();
      m.attach_gauge_fn(
          "sharded", "bus_published", obs::kWorldNode,
          [this] { return static_cast<double>(sharded_bus_->published()); },
          this);
      m.attach_gauge_fn(
          "sharded", "bus_delivered", obs::kWorldNode,
          [this] { return static_cast<double>(sharded_bus_->delivered()); },
          this);
      m.attach_gauge_fn(
          "sharded", "store_appended", obs::kWorldNode,
          [this] {
            return static_cast<double>(sharded_store_->total_appended());
          },
          this);
      const backend::ShardedStoreStats& ss = sharded_store_->stats();
      m.attach_counter("sharded", "store_bulk_points", obs::kWorldNode,
                       &ss.bulk_points, this);
      m.attach_counter("sharded", "store_merged_partials", obs::kWorldNode,
                       &ss.merged_partials, this);
      m.attach_counter("sharded", "store_string_appends", obs::kWorldNode,
                       &ss.string_appends, this);
      const backend::ShardedBusStats& sb = sharded_bus_->stats();
      m.attach_counter("sharded", "bus_parallel_batches", obs::kWorldNode,
                       &sb.parallel_batches, this);
      m.attach_counter("sharded", "bus_route_memo_hits", obs::kWorldNode,
                       &sb.route_memo_hits, this);
      // Skew/latency signals for the parallel entry points: per-shard
      // batch sizes (points), per-shard queue depth (messages), and the
      // merge tier's serial-fold latency in microseconds.
      sharded_store_->set_batch_histogram(m.histogram(
          "sharded", "shard_batch_points", obs::kWorldNode,
          {0, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}));
      sharded_store_->set_merge_histogram(
          m.histogram("sharded", "merge_latency_us", obs::kWorldNode,
                      {1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096}));
      sharded_bus_->set_queue_histogram(
          m.histogram("sharded", "shard_queue_depth", obs::kWorldNode,
                      {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096}));
      sharded_bus_->set_fanout_histogram(
          m.histogram("sharded", "bus_fanout", obs::kWorldNode,
                      {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}));
    }
  } else {
    // Everything published on measurement topics lands in storage.
    bus_.subscribe("+/+/#", make_measurement_handler(store_, sched_));
  }
}

MeshNetwork& System::add_mesh(const std::string& site, NodeConfig node_cfg) {
  (void)site;
  mediums_.push_back(std::make_unique<radio::Medium>(
      sched_, cfg_.propagation, rng_.next_u64()));
  meshes_.push_back(std::make_unique<MeshNetwork>(
      sched_, *mediums_.back(), rng_.fork(meshes_.size() + 1), node_cfg));
  return *meshes_.back();
}

void System::bridge(const std::string& site, MeshNetwork& mesh) {
  mesh.root().routing->set_delivery_handler(
      [this, site, root = mesh.root().id](NodeId origin, BytesView payload,
                                          std::uint8_t) {
        BufReader r(payload);
        auto tag = r.u8();
        auto object = r.u16();
        auto value = r.f64();
        if (!tag || *tag != kTagSensor || !object || !value) return;
        if (obs::Tracer* t = obs::tracer(sched_)) {
          // Final hop of a sensor reading's causal chain: the delivery
          // upcall carries the message's trace.
          t->instant(t->current_trace(), root, obs::Layer::kBackend,
                     "publish");
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4f", *value);
        publish_measurement(site + "/" + std::to_string(origin) + "/" +
                                std::to_string(*object),
                            std::string(buf));
      });
}

void System::install_node_dispatch(MeshNode& node) {
  auto [it, fresh] = apps_.try_emplace(node.id);
  if (!fresh) return;  // dispatch already installed
  node.routing->set_delivery_handler(
      [this, id = node.id](NodeId, BytesView payload, std::uint8_t) {
        BufReader r(payload);
        auto tag = r.u8();
        auto object = r.u16();
        auto value = r.f64();
        if (!tag || *tag != kTagCommand || !object || !value) return;
        auto app = apps_.find(id);
        if (app == apps_.end()) return;
        auto act = app->second.actuators.find(*object);
        if (act != app->second.actuators.end()) act->second(*value);
      });
}

void System::add_periodic_sensor(MeshNode& node, std::uint16_t object,
                                 sim::Duration period,
                                 std::function<double()> sample) {
  install_node_dispatch(node);
  NodeApp& app = apps_[node.id];
  app.sensors[object] = sample;
  auto* routing = node.routing.get();
  auto timer = std::make_unique<sim::PeriodicTimer>(
      sched_, period,
      [this, routing, object, sample = std::move(sample)] {
        Buffer out;
        BufWriter w(out);
        w.u8(kTagSensor);
        w.u16(object);
        w.f64(sample());
        // Each reading starts a fresh end-to-end trace at the app layer.
        obs::Tracer* t = obs::tracer(sched_);
        std::optional<obs::TraceScope> scope;
        if (t != nullptr && t->enabled()) {
          scope.emplace(t, t->start_trace(routing->id(), obs::Layer::kApp),
                        0);
        }
        routing->send_up(std::move(out));
      });
  // Desynchronize first firings across nodes.
  timer->start(period / 2 +
               rng_.below(static_cast<std::uint32_t>(period / 2)));
  app.timers.push_back(std::move(timer));
}

void System::add_actuator(MeshNode& node, std::uint16_t object,
                          std::function<void(double)> apply) {
  install_node_dispatch(node);
  apps_[node.id].actuators[object] = std::move(apply);
}

void System::ingest(const std::string& topic,
                    std::span<const double> values) {
  std::vector<Buffer> bufs;
  std::vector<BytesView> views;
  bufs.reserve(values.size());
  views.reserve(values.size());
  char buf[32];
  for (const double v : values) {
    const int len = std::snprintf(buf, sizeof(buf), "%.4f", v);
    bufs.emplace_back(reinterpret_cast<const std::uint8_t*>(buf),
                      reinterpret_cast<const std::uint8_t*>(buf) + len);
    views.emplace_back(bufs.back().data(), bufs.back().size());
  }
  if (sharded_bus_) {
    sharded_bus_->publish_batch(topic, views);
  } else {
    bus_.publish_batch(topic, views);
  }
}

void System::publish_measurement(const std::string& topic,
                                 const std::string& payload) {
  // Measurement traffic targets the authoritative plane directly: with
  // sharding on that is the sharded bus (one route + one shard-local
  // match), otherwise the legacy bus.
  if (sharded_bus_) {
    sharded_bus_->publish(topic, payload);
  } else {
    bus_.publish(topic, payload);
  }
}

void System::bridge_aggregate_sink(const std::string& site,
                                   const std::string& group,
                                   agg::TreeAggregation& svc) {
  const std::string base = site + "/" + group + "/";
  svc.start_sink([this, base](std::uint32_t epoch,
                              const agg::PartialAggregate& pa) {
    (void)epoch;
    if (pa.empty()) return;
    static constexpr agg::AggFn kFns[] = {
        agg::AggFn::kAvg, agg::AggFn::kMin, agg::AggFn::kMax,
        agg::AggFn::kCount};
    static constexpr const char* kNames[] = {"avg", "min", "max", "count"};
    std::vector<backend::BusMessage> msgs(4);
    char buf[32];
    for (std::size_t i = 0; i < 4; ++i) {
      const int len =
          std::snprintf(buf, sizeof(buf), "%.4f", pa.evaluate(kFns[i]));
      msgs[i].topic = base + kNames[i];
      msgs[i].payload.assign(
          reinterpret_cast<const std::uint8_t*>(buf),
          reinterpret_cast<const std::uint8_t*>(buf) + len);
    }
    if (sharded_bus_) {
      sharded_bus_->publish_batch(msgs);
    } else {
      bus_.publish_batch(msgs);
    }
  });
}

bool System::actuate(MeshNetwork& mesh, NodeId target, std::uint16_t object,
                     double value) {
  Buffer out;
  BufWriter w(out);
  w.u8(kTagCommand);
  w.u16(object);
  w.f64(value);
  // Commands trace from the backend down to the actuating node.
  obs::Tracer* t = obs::tracer(sched_);
  std::optional<obs::TraceScope> scope;
  if (t != nullptr && t->enabled()) {
    scope.emplace(t, t->start_trace(mesh.root().id, obs::Layer::kBackend),
                  0);
  }
  return mesh.root().routing->send_down(target, std::move(out));
}

}  // namespace iiot::core
