#include "core/system.hpp"

#include <cstdio>
#include <optional>

#include "agg/collection.hpp"

namespace iiot::core {

namespace {
constexpr std::uint8_t kTagSensor = 'S';
constexpr std::uint8_t kTagCommand = 'C';
}  // namespace

MeshNetwork& System::add_mesh(const std::string& site, NodeConfig node_cfg) {
  (void)site;
  mediums_.push_back(std::make_unique<radio::Medium>(
      sched_, cfg_.propagation, rng_.next_u64()));
  meshes_.push_back(std::make_unique<MeshNetwork>(
      sched_, *mediums_.back(), rng_.fork(meshes_.size() + 1), node_cfg));
  return *meshes_.back();
}

void System::bridge(const std::string& site, MeshNetwork& mesh) {
  mesh.root().routing->set_delivery_handler(
      [this, site, root = mesh.root().id](NodeId origin, BytesView payload,
                                          std::uint8_t) {
        BufReader r(payload);
        auto tag = r.u8();
        auto object = r.u16();
        auto value = r.f64();
        if (!tag || *tag != kTagSensor || !object || !value) return;
        if (obs::Tracer* t = obs::tracer(sched_)) {
          // Final hop of a sensor reading's causal chain: the delivery
          // upcall carries the message's trace.
          t->instant(t->current_trace(), root, obs::Layer::kBackend,
                     "publish");
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4f", *value);
        bus_.publish(site + "/" + std::to_string(origin) + "/" +
                         std::to_string(*object),
                     std::string(buf));
      });
}

void System::install_node_dispatch(MeshNode& node) {
  auto [it, fresh] = apps_.try_emplace(node.id);
  if (!fresh) return;  // dispatch already installed
  node.routing->set_delivery_handler(
      [this, id = node.id](NodeId, BytesView payload, std::uint8_t) {
        BufReader r(payload);
        auto tag = r.u8();
        auto object = r.u16();
        auto value = r.f64();
        if (!tag || *tag != kTagCommand || !object || !value) return;
        auto app = apps_.find(id);
        if (app == apps_.end()) return;
        auto act = app->second.actuators.find(*object);
        if (act != app->second.actuators.end()) act->second(*value);
      });
}

void System::add_periodic_sensor(MeshNode& node, std::uint16_t object,
                                 sim::Duration period,
                                 std::function<double()> sample) {
  install_node_dispatch(node);
  NodeApp& app = apps_[node.id];
  app.sensors[object] = sample;
  auto* routing = node.routing.get();
  auto timer = std::make_unique<sim::PeriodicTimer>(
      sched_, period,
      [this, routing, object, sample = std::move(sample)] {
        Buffer out;
        BufWriter w(out);
        w.u8(kTagSensor);
        w.u16(object);
        w.f64(sample());
        // Each reading starts a fresh end-to-end trace at the app layer.
        obs::Tracer* t = obs::tracer(sched_);
        std::optional<obs::TraceScope> scope;
        if (t != nullptr && t->enabled()) {
          scope.emplace(t, t->start_trace(routing->id(), obs::Layer::kApp),
                        0);
        }
        routing->send_up(std::move(out));
      });
  // Desynchronize first firings across nodes.
  timer->start(period / 2 +
               rng_.below(static_cast<std::uint32_t>(period / 2)));
  app.timers.push_back(std::move(timer));
}

void System::add_actuator(MeshNode& node, std::uint16_t object,
                          std::function<void(double)> apply) {
  install_node_dispatch(node);
  apps_[node.id].actuators[object] = std::move(apply);
}

void System::ingest(const std::string& topic,
                    std::span<const double> values) {
  std::vector<Buffer> bufs;
  std::vector<BytesView> views;
  bufs.reserve(values.size());
  views.reserve(values.size());
  char buf[32];
  for (const double v : values) {
    const int len = std::snprintf(buf, sizeof(buf), "%.4f", v);
    bufs.emplace_back(reinterpret_cast<const std::uint8_t*>(buf),
                      reinterpret_cast<const std::uint8_t*>(buf) + len);
    views.emplace_back(bufs.back().data(), bufs.back().size());
  }
  bus_.publish_batch(topic, views);
}

void System::bridge_aggregate_sink(const std::string& site,
                                   const std::string& group,
                                   agg::TreeAggregation& svc) {
  const std::string base = site + "/" + group + "/";
  svc.start_sink([this, base](std::uint32_t epoch,
                              const agg::PartialAggregate& pa) {
    (void)epoch;
    if (pa.empty()) return;
    static constexpr agg::AggFn kFns[] = {
        agg::AggFn::kAvg, agg::AggFn::kMin, agg::AggFn::kMax,
        agg::AggFn::kCount};
    static constexpr const char* kNames[] = {"avg", "min", "max", "count"};
    std::vector<backend::BusMessage> msgs(4);
    char buf[32];
    for (std::size_t i = 0; i < 4; ++i) {
      const int len =
          std::snprintf(buf, sizeof(buf), "%.4f", pa.evaluate(kFns[i]));
      msgs[i].topic = base + kNames[i];
      msgs[i].payload.assign(
          reinterpret_cast<const std::uint8_t*>(buf),
          reinterpret_cast<const std::uint8_t*>(buf) + len);
    }
    bus_.publish_batch(msgs);
  });
}

bool System::actuate(MeshNetwork& mesh, NodeId target, std::uint16_t object,
                     double value) {
  Buffer out;
  BufWriter w(out);
  w.u8(kTagCommand);
  w.u16(object);
  w.f64(value);
  // Commands trace from the backend down to the actuating node.
  obs::Tracer* t = obs::tracer(sched_);
  std::optional<obs::TraceScope> scope;
  if (t != nullptr && t->enabled()) {
    scope.emplace(t, t->start_trace(mesh.root().id, obs::Layer::kBackend),
                  0);
  }
  return mesh.root().routing->send_down(target, std::move(out));
}

}  // namespace iiot::core
