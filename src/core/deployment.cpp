#include "core/deployment.hpp"

namespace iiot::core {

void DeploymentPlan::execute(StageCallback on_stage) {
  run_stage(0, std::move(on_stage));
}

std::uint64_t DeploymentPlan::control_total() const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < mesh_.size(); ++i) {
    const auto& st =
        const_cast<MeshNetwork&>(mesh_).node(i).routing->stats();
    sum += st.dio_tx + st.dis_tx + st.dao_tx;
  }
  return sum;
}

void DeploymentPlan::run_stage(std::size_t idx, StageCallback on_stage) {
  if (idx >= stages_.size()) return;
  const Stage& st = stages_[idx];
  auto& sched = mesh_.scheduler();
  const sim::Time stage_start = sched.now();

  // Grow to the target size and start the newcomers.
  const bool first_batch = mesh_.size() == 0;
  while (mesh_.size() < st.target_size) {
    MeshNode& n = mesh_.add_node(positions_(mesh_.size()));
    const bool is_root = first_batch && mesh_.size() == 1;
    n.start(is_root);
  }

  // Poll for formation (95 % joined) once a second during the window.
  auto formation_time = std::make_shared<sim::Duration>(0);
  for (sim::Duration t = 1'000'000; t < st.settle; t += 1'000'000) {
    sched.schedule_after(t, [this, stage_start, formation_time] {
      if (*formation_time == 0 && mesh_.joined_fraction() >= 0.95) {
        *formation_time = mesh_.scheduler().now() - stage_start;
      }
    });
  }

  sched.schedule_after(st.settle, [this, idx, stage_start, formation_time,
                                   on_stage = std::move(on_stage)]() mutable {
    StageReport report;
    report.stage = idx;
    report.nodes_total = mesh_.size();
    report.formation_time = *formation_time;
    report.joined_fraction = mesh_.joined_fraction();
    report.control_messages = control_total();
    for (std::size_t i = 0; i < mesh_.size(); ++i) {
      report.max_depth = std::max(report.max_depth,
                                  mesh_.depth_estimate(i));
    }
    if (on_stage) on_stage(report);
    run_stage(idx + 1, std::move(on_stage));
  });
}

}  // namespace iiot::core
