#include "core/network.hpp"

#include <cmath>

namespace iiot::core {

MeshNode::MeshNode(radio::Medium& medium, sim::Scheduler& sched_, NodeId id_,
                   radio::Position pos, Rng rng, const NodeConfig& cfg)
    : id(id_), sched(sched_), meter(),
      radio(medium, sched_, id_, pos, meter) {
  radio.set_channel(cfg.channel);
  switch (cfg.mac) {
    case MacKind::kCsma:
      mac = std::make_unique<mac::CsmaMac>(radio, sched, rng.fork(1),
                                           cfg.tenant, cfg.csma);
      break;
    case MacKind::kLpl:
      mac = std::make_unique<mac::LplMac>(radio, sched, rng.fork(2),
                                          cfg.tenant, cfg.lpl);
      break;
    case MacKind::kRiMac:
      mac = std::make_unique<mac::RiMac>(radio, sched, rng.fork(3),
                                         cfg.tenant, cfg.rimac);
      break;
  }
  routing = std::make_unique<net::RplRouting>(*mac, sched, rng.fork(4),
                                              cfg.rpl);
  if (obs::MetricsRegistry* m = obs::metrics(sched)) {
    const auto node = static_cast<std::int64_t>(id);
    // Energy values are polled at snapshot time: the meter must settle to
    // virtual "now" first, which is deterministic.
    m->attach_gauge_fn(
        "energy", "total_mj", node,
        [this] {
          meter.settle(sched.now());
          return meter.total_mj();
        },
        this);
    m->attach_gauge_fn(
        "energy", "duty_cycle", node,
        [this] {
          meter.settle(sched.now());
          return meter.duty_cycle();
        },
        this);
  }
}

MeshNode::~MeshNode() {
  if (obs::MetricsRegistry* m = obs::metrics(sched)) m->detach(this);
}

void MeshNode::start(bool as_root) {
  mac->start();
  if (as_root) {
    routing->start_root();
  } else {
    routing->start();
  }
}

void MeshNode::stop() {
  routing->stop();
  mac->stop();
}

MeshNode& MeshNetwork::add_node(radio::Position pos) {
  const auto id = id_base_ + static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<MeshNode>(
      medium_, sched_, id, pos, rng_.fork(1000 + id), cfg_));
  return *nodes_.back();
}

void MeshNetwork::start(std::size_t root_index) {
  root_index_ = root_index;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->start(i == root_index);
  }
}

void MeshNetwork::stop() {
  for (auto& n : nodes_) n->stop();
}

void MeshNetwork::build_line(std::size_t n, double spacing) {
  for (std::size_t i = 0; i < n; ++i) {
    add_node({static_cast<double>(i) * spacing, 0.0});
  }
}

void MeshNetwork::build_grid(std::size_t n, double pitch) {
  const auto side = static_cast<std::size_t>(std::ceil(std::sqrt(
      static_cast<double>(n))));
  std::size_t placed = 0;
  for (std::size_t y = 0; y < side && placed < n; ++y) {
    for (std::size_t x = 0; x < side && placed < n; ++x) {
      add_node({static_cast<double>(x) * pitch,
                static_cast<double>(y) * pitch});
      ++placed;
    }
  }
}

void MeshNetwork::build_random_field(std::size_t n, double side) {
  add_node({side / 2.0, side / 2.0});  // root at center
  for (std::size_t i = 1; i < n; ++i) {
    add_node({rng_.uniform(0.0, side), rng_.uniform(0.0, side)});
  }
}

double MeshNetwork::joined_fraction() const {
  if (nodes_.size() <= 1) return 1.0;
  std::size_t joined = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i == root_index_) continue;
    if (nodes_[i]->routing->joined()) ++joined;
  }
  return static_cast<double>(joined) /
         static_cast<double>(nodes_.size() - 1);
}

double MeshNetwork::total_energy_mj() {
  double sum = 0;
  for (auto& n : nodes_) {
    n->meter.settle(sched_.now());
    sum += n->meter.total_mj();
  }
  return sum;
}

int MeshNetwork::depth_estimate(std::size_t i) const {
  const auto& r = *nodes_.at(i)->routing;
  if (r.is_root()) return 0;
  if (!r.joined()) return -1;
  return std::max(1, r.rank() / net::kMinHopRankIncrease - 1);
}

}  // namespace iiot::core
