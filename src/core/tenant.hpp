// Multi-tenant coexistence (paper §IV-C, administrative scalability):
// several administratively independent networks sharing one physical
// space — and therefore one radio medium. The manager allocates channels
// across tenants; with fewer channels than tenants, some must share, and
// their frames collide exactly as in [35], [36] (bench E6).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/network.hpp"

namespace iiot::core {

struct TenantSpec {
  TenantId id = 0;
  std::string name;
  std::size_t nodes = 10;
  NodeConfig node_cfg{};
};

class TenantManager {
 public:
  /// All tenants share `medium` — that is the point.
  TenantManager(sim::Scheduler& sched, radio::Medium& medium, Rng rng)
      : sched_(sched), medium_(medium), rng_(rng) {}

  /// Creates a tenant's network over the shared space (random field of
  /// `side` meters, same area for everyone). Channels are assigned
  /// round-robin from `channels`.
  MeshNetwork& add_tenant(const TenantSpec& spec, double side,
                          const std::vector<ChannelId>& channels) {
    NodeConfig cfg = spec.node_cfg;
    cfg.tenant = spec.id;
    cfg.channel = channels.empty()
                      ? ChannelId{11}
                      : channels[networks_.size() % channels.size()];
    // Node ids are offset per tenant so all networks can share the
    // medium's id space.
    const auto id_base =
        static_cast<NodeId>(10'000u * (networks_.size() + 1));
    networks_.push_back(std::make_unique<MeshNetwork>(
        sched_, medium_, rng_.fork(100 + spec.id), cfg, id_base));
    auto& net = *networks_.back();
    net.build_random_field(spec.nodes, side);
    return net;
  }

  [[nodiscard]] std::size_t tenant_count() const { return networks_.size(); }
  [[nodiscard]] MeshNetwork& network(std::size_t i) {
    return *networks_.at(i);
  }

  void start_all() {
    for (auto& n : networks_) n->start();
  }

 private:
  sim::Scheduler& sched_;
  radio::Medium& medium_;
  Rng rng_;
  std::vector<std::unique_ptr<MeshNetwork>> networks_;
};

}  // namespace iiot::core
