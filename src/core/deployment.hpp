// Incremental rollout: the paper's deployment reality (§IV intro) —
// "one or a few small tests ... a rollout comprising initially only a
// part of the target system, and finally, the deployment of remaining
// parts", requiring the design to "tolerate a growth even by several
// orders of magnitude". DeploymentPlan grows a MeshNetwork in stages and
// records, per stage, how long self-organization takes and whether the
// protocols keep up — the evidence for bench E11.
#pragma once

#include <functional>
#include <vector>

#include "core/network.hpp"

namespace iiot::core {

struct StageReport {
  std::size_t stage = 0;
  std::size_t nodes_total = 0;
  /// Time from stage start until >= 95 % of nodes were joined
  /// (0 if never reached within the settle window).
  sim::Duration formation_time = 0;
  double joined_fraction = 0.0;
  std::uint64_t control_messages = 0;  // cumulative DIO+DIS+DAO
  int max_depth = 0;
};

class DeploymentPlan {
 public:
  using PositionFn = std::function<radio::Position(std::size_t index)>;
  using StageCallback = std::function<void(const StageReport&)>;

  DeploymentPlan(MeshNetwork& mesh, PositionFn positions)
      : mesh_(mesh), positions_(std::move(positions)) {}

  /// Appends a stage that grows the network to `target_size` nodes and
  /// lets it settle for `settle`.
  DeploymentPlan& stage(std::size_t target_size, sim::Duration settle) {
    stages_.push_back({target_size, settle});
    return *this;
  }

  /// Schedules the whole rollout on the mesh's scheduler. The first stage
  /// also starts the root. `on_stage` fires at the end of each settle
  /// window.
  void execute(StageCallback on_stage);

 private:
  struct Stage {
    std::size_t target_size;
    sim::Duration settle;
  };

  void run_stage(std::size_t idx, StageCallback on_stage);
  [[nodiscard]] std::uint64_t control_total() const;

  MeshNetwork& mesh_;
  PositionFn positions_;
  std::vector<Stage> stages_;
};

}  // namespace iiot::core
