// iiot::core::System — the paper's Fig. 1 made executable.
//
// Composes the three logical tiers:
//   * data-storage tier        — backend::TimeSeriesStore
//   * application-logic tier   — backend::TopicBus + backend::RuleEngine
//   * sensing-and-actuation    — MeshNetwork(s) of constrained nodes, plus
//                                interop::Gateway(s) for legacy devices
// and wires the vertical paths: sensor readings flow up from mesh roots
// and gateways onto the bus and into storage; rule firings flow back down
// as actuation commands to specific nodes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "backend/rules.hpp"
#include "backend/timeseries.hpp"
#include "backend/topic_bus.hpp"
#include "core/network.hpp"
#include "interop/gateway.hpp"

namespace iiot::core {

struct SystemConfig {
  backend::RetentionPolicy retention{};
  radio::PropagationConfig propagation{};
};

class System {
 public:
  System(sim::Scheduler& sched, std::uint64_t seed, SystemConfig cfg = {})
      : sched_(sched),
        rng_(seed),
        cfg_(cfg),
        store_(cfg.retention),
        rules_(bus_) {
    // Everything published on measurement topics lands in storage.
    bus_.subscribe("+/+/#", [this](const std::string& topic, BytesView p) {
      const std::string s = iiot::to_string(p);
      char* end = nullptr;
      const double v = std::strtod(s.c_str(), &end);
      if (end != s.c_str()) store_.append(topic, sched_.now(), v);
    });
  }

  [[nodiscard]] backend::TopicBus& bus() { return bus_; }
  [[nodiscard]] backend::TimeSeriesStore& store() { return store_; }
  [[nodiscard]] backend::RuleEngine& rules() { return rules_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }

  /// Creates a new radio space + mesh for a site. Topology is built by
  /// the caller through the returned network.
  MeshNetwork& add_mesh(const std::string& site, NodeConfig node_cfg);

  /// Bridges a mesh's border router into the backend: sensor messages
  /// arriving at the root are published as "<site>/<node>/<object>".
  void bridge(const std::string& site, MeshNetwork& mesh);

  /// Installs a periodic sensor task on a mesh node; values travel to
  /// the root inside 'S' records.
  void add_periodic_sensor(MeshNode& node, std::uint16_t object,
                           sim::Duration period,
                           std::function<double()> sample);

  /// Registers an actuator on a node; commands arrive via the mesh's
  /// downward routes as 'C' records.
  void add_actuator(MeshNode& node, std::uint16_t object,
                    std::function<void(double)> apply);

  /// Sends an actuation command from the backend to a mesh node.
  bool actuate(MeshNetwork& mesh, NodeId target, std::uint16_t object,
               double value);

  /// Registers an interop gateway (its bus wiring does the rest).
  void attach_gateway(interop::Gateway& gw) { gateways_.push_back(&gw); }

  [[nodiscard]] std::size_t mesh_count() const { return meshes_.size(); }

 private:
  struct NodeApp {
    std::map<std::uint16_t, std::function<double()>> sensors;
    std::map<std::uint16_t, std::function<void(double)>> actuators;
    std::vector<std::unique_ptr<sim::PeriodicTimer>> timers;
  };

  void install_node_dispatch(MeshNode& node);

  sim::Scheduler& sched_;
  Rng rng_;
  SystemConfig cfg_;
  backend::TopicBus bus_;
  backend::TimeSeriesStore store_;
  backend::RuleEngine rules_;
  std::vector<std::unique_ptr<radio::Medium>> mediums_;
  std::vector<std::unique_ptr<MeshNetwork>> meshes_;
  std::vector<interop::Gateway*> gateways_;
  std::map<NodeId, NodeApp> apps_;  // keyed by node id (unique per System)
};

}  // namespace iiot::core
