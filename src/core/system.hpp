// iiot::core::System — the paper's Fig. 1 made executable.
//
// Composes the three logical tiers:
//   * data-storage tier        — backend::TimeSeriesStore
//   * application-logic tier   — backend::TopicBus + backend::RuleEngine
//   * sensing-and-actuation    — MeshNetwork(s) of constrained nodes, plus
//                                interop::Gateway(s) for legacy devices
// and wires the vertical paths: sensor readings flow up from mesh roots
// and gateways onto the bus and into storage; rule firings flow back down
// as actuation commands to specific nodes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "backend/rules.hpp"
#include "backend/timeseries.hpp"
#include "backend/topic_bus.hpp"
#include "core/network.hpp"
#include "interop/gateway.hpp"

namespace iiot::agg {
class TreeAggregation;
}  // namespace iiot::agg

namespace iiot::core {

struct SystemConfig {
  backend::RetentionPolicy retention{};
  radio::PropagationConfig propagation{};
  /// Creates the per-world obs::Context (metrics registry + tracer).
  /// Off by default: with no context installed, every instrumentation
  /// site in the stack reduces to a null-pointer test.
  bool observability = false;
  /// Additionally enables causal tracing (implies observability).
  bool tracing = false;
  /// Tracer memory bound (records); drops deterministically past it.
  std::size_t trace_capacity = 1u << 20;
};

class System {
 public:
  System(sim::Scheduler& sched, std::uint64_t seed, SystemConfig cfg = {})
      : sched_(sched),
        rng_(seed),
        cfg_(cfg),
        store_(cfg.retention),
        rules_(bus_, &store_) {
    if (cfg_.observability || cfg_.tracing) {
      // Must exist before any mesh/backend object registers metrics.
      obs_ = std::make_unique<obs::Context>(sched_, cfg_.trace_capacity);
      obs_->tracer().set_enabled(cfg_.tracing);
      obs::MetricsRegistry& m = obs_->metrics();
      m.attach_gauge_fn(
          "backend", "bus_published", obs::kWorldNode,
          [this] { return static_cast<double>(bus_.published()); }, this);
      m.attach_gauge_fn(
          "backend", "bus_delivered", obs::kWorldNode,
          [this] { return static_cast<double>(bus_.delivered()); }, this);
      m.attach_gauge_fn(
          "backend", "store_appended", obs::kWorldNode,
          [this] { return static_cast<double>(store_.total_appended()); },
          this);
      // Backend fast-path counters (DESIGN.md §4f), attach_counter style:
      // the hot paths keep incrementing their own struct fields and the
      // registry reads through the pointers at snapshot time.
      const backend::TimeSeriesStats& ts = store_.stats();
      m.attach_counter("backend", "store_evicted", obs::kWorldNode,
                       &ts.evicted, this);
      m.attach_counter("backend", "store_rollup_hits", obs::kWorldNode,
                       &ts.rollup_hits, this);
      m.attach_counter("backend", "store_chunk_scans", obs::kWorldNode,
                       &ts.chunk_scans, this);
      const backend::BusStats& bs = bus_.stats();
      m.attach_counter("backend", "bus_exact_hits", obs::kWorldNode,
                       &bs.exact_hits, this);
      m.attach_counter("backend", "bus_trie_nodes", obs::kWorldNode,
                       &bs.trie_nodes_visited, this);
      m.attach_counter("backend", "bus_deferred_unsubs", obs::kWorldNode,
                       &bs.deferred_unsubs, this);
      bus_.set_fanout_histogram(
          m.histogram("backend", "bus_fanout", obs::kWorldNode,
                      {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}));
    }
    // Everything published on measurement topics lands in storage.
    bus_.subscribe("+/+/#", [this](const std::string& topic, BytesView p) {
      const std::string s = iiot::to_string(p);
      char* end = nullptr;
      const double v = std::strtod(s.c_str(), &end);
      if (end != s.c_str()) store_.append(topic, sched_.now(), v);
    });
  }

  ~System() {
    if (obs_) obs_->metrics().detach(this);
  }

  [[nodiscard]] backend::TopicBus& bus() { return bus_; }
  [[nodiscard]] backend::TimeSeriesStore& store() { return store_; }
  [[nodiscard]] backend::RuleEngine& rules() { return rules_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  /// The world's observability context (null unless enabled in config).
  [[nodiscard]] obs::Context* observability() { return obs_.get(); }

  /// Creates a new radio space + mesh for a site. Topology is built by
  /// the caller through the returned network.
  MeshNetwork& add_mesh(const std::string& site, NodeConfig node_cfg);

  /// Bridges a mesh's border router into the backend: sensor messages
  /// arriving at the root are published as "<site>/<node>/<object>".
  void bridge(const std::string& site, MeshNetwork& mesh);

  /// Installs a periodic sensor task on a mesh node; values travel to
  /// the root inside 'S' records.
  void add_periodic_sensor(MeshNode& node, std::uint16_t object,
                           sim::Duration period,
                           std::function<double()> sample);

  /// Registers an actuator on a node; commands arrive via the mesh's
  /// downward routes as 'C' records.
  void add_actuator(MeshNode& node, std::uint16_t object,
                    std::function<void(double)> apply);

  /// Sends an actuation command from the backend to a mesh node.
  bool actuate(MeshNetwork& mesh, NodeId target, std::uint16_t object,
               double value);

  /// Registers an interop gateway (its bus wiring does the rest).
  void attach_gateway(interop::Gateway& gw) { gateways_.push_back(&gw); }

  /// Batched measurement ingest: publishes every value as a payload on
  /// `topic` through the bus's batched entry point (one subscription
  /// match for the whole burst), which lands them in storage via the
  /// measurement subscription exactly like per-sample publishes.
  void ingest(const std::string& topic, std::span<const double> values);

  /// Bridges an in-network aggregation sink (agg/collection) into the
  /// backend: each epoch's network-wide aggregate is published as one
  /// batch on "<site>/<group>/{avg,min,max,count}" — so aggregated
  /// collection lands in the same store/rules plane as raw readings.
  void bridge_aggregate_sink(const std::string& site,
                             const std::string& group,
                             agg::TreeAggregation& svc);

  [[nodiscard]] std::size_t mesh_count() const { return meshes_.size(); }

 private:
  struct NodeApp {
    std::map<std::uint16_t, std::function<double()>> sensors;
    std::map<std::uint16_t, std::function<void(double)>> actuators;
    std::vector<std::unique_ptr<sim::PeriodicTimer>> timers;
  };

  void install_node_dispatch(MeshNode& node);

  sim::Scheduler& sched_;
  Rng rng_;
  SystemConfig cfg_;
  // Declared before every tier: meshes and backend objects register
  // metrics at construction and detach at destruction, so the context
  // must outlive them all.
  std::unique_ptr<obs::Context> obs_;
  backend::TopicBus bus_;
  backend::TimeSeriesStore store_;
  backend::RuleEngine rules_;
  std::vector<std::unique_ptr<radio::Medium>> mediums_;
  std::vector<std::unique_ptr<MeshNetwork>> meshes_;
  std::vector<interop::Gateway*> gateways_;
  std::map<NodeId, NodeApp> apps_;  // keyed by node id (unique per System)
};

}  // namespace iiot::core
