// iiot::core::System — the paper's Fig. 1 made executable.
//
// Composes the three logical tiers:
//   * data-storage tier        — backend::TimeSeriesStore
//   * application-logic tier   — backend::TopicBus + backend::RuleEngine
//   * sensing-and-actuation    — MeshNetwork(s) of constrained nodes, plus
//                                interop::Gateway(s) for legacy devices
// and wires the vertical paths: sensor readings flow up from mesh roots
// and gateways onto the bus and into storage; rule firings flow back down
// as actuation commands to specific nodes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "backend/rules.hpp"
#include "backend/sharded.hpp"
#include "backend/timeseries.hpp"
#include "backend/topic_bus.hpp"
#include "core/network.hpp"
#include "interop/gateway.hpp"
#include "runner/engine.hpp"

namespace iiot::agg {
class TreeAggregation;
}  // namespace iiot::agg

namespace iiot::core {

struct SystemConfig {
  backend::RetentionPolicy retention{};
  radio::PropagationConfig propagation{};
  /// Creates the per-world obs::Context (metrics registry + tracer).
  /// Off by default: with no context installed, every instrumentation
  /// site in the stack reduces to a null-pointer test.
  bool observability = false;
  /// Additionally enables causal tracing (implies observability).
  bool tracing = false;
  /// Tracer memory bound (records); drops deterministically past it.
  std::size_t trace_capacity = 1u << 20;
  /// Backend shard count (DESIGN.md §4g). 1 (default) keeps the classic
  /// single-shard plane, byte-identical to earlier revisions. > 1 builds
  /// the sharded tier: ingest()/bridge()/bridge_aggregate_sink() publish
  /// through a ShardedBus, measurements land in a ShardedStore, and a
  /// catch-all relay forwards anything published on the legacy bus()
  /// (e.g. by interop gateways) into the sharded plane. Results are
  /// byte-identical at any shard count; only throughput changes.
  std::uint32_t backend_shards = 1;
  /// Worker threads for the sharded tier's parallel entry points
  /// (0 = hardware concurrency). Ignored when backend_shards == 1.
  unsigned backend_workers = 0;
};

class System {
 public:
  System(sim::Scheduler& sched, std::uint64_t seed, SystemConfig cfg = {});

  ~System() {
    if (obs_) obs_->metrics().detach(this);
  }

  [[nodiscard]] backend::TopicBus& bus() { return bus_; }
  [[nodiscard]] backend::TimeSeriesStore& store() { return store_; }
  [[nodiscard]] backend::RuleEngine& rules() { return rules_; }
  /// Sharded-plane accessors — null unless cfg.backend_shards > 1. When
  /// sharding is on, measurements live in sharded_store() (the legacy
  /// store() stays empty) and rules that should see ingested data must be
  /// added through sharded_rules(); commands those rules publish stay on
  /// the sharded bus.
  [[nodiscard]] backend::ShardedStore* sharded_store() {
    return sharded_store_.get();
  }
  [[nodiscard]] backend::ShardedBus* sharded_bus() {
    return sharded_bus_.get();
  }
  [[nodiscard]] backend::ShardedRuleEngine* sharded_rules() {
    return sharded_rules_.get();
  }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  /// The world's observability context (null unless enabled in config).
  [[nodiscard]] obs::Context* observability() { return obs_.get(); }

  /// Creates a new radio space + mesh for a site. Topology is built by
  /// the caller through the returned network.
  MeshNetwork& add_mesh(const std::string& site, NodeConfig node_cfg);

  /// Bridges a mesh's border router into the backend: sensor messages
  /// arriving at the root are published as "<site>/<node>/<object>".
  void bridge(const std::string& site, MeshNetwork& mesh);

  /// Installs a periodic sensor task on a mesh node; values travel to
  /// the root inside 'S' records.
  void add_periodic_sensor(MeshNode& node, std::uint16_t object,
                           sim::Duration period,
                           std::function<double()> sample);

  /// Registers an actuator on a node; commands arrive via the mesh's
  /// downward routes as 'C' records.
  void add_actuator(MeshNode& node, std::uint16_t object,
                    std::function<void(double)> apply);

  /// Sends an actuation command from the backend to a mesh node.
  bool actuate(MeshNetwork& mesh, NodeId target, std::uint16_t object,
               double value);

  /// Registers an interop gateway (its bus wiring does the rest).
  void attach_gateway(interop::Gateway& gw) { gateways_.push_back(&gw); }

  /// Batched measurement ingest: publishes every value as a payload on
  /// `topic` through the bus's batched entry point (one subscription
  /// match for the whole burst), which lands them in storage via the
  /// measurement subscription exactly like per-sample publishes.
  void ingest(const std::string& topic, std::span<const double> values);

  /// Bridges an in-network aggregation sink (agg/collection) into the
  /// backend: each epoch's network-wide aggregate is published as one
  /// batch on "<site>/<group>/{avg,min,max,count}" — so aggregated
  /// collection lands in the same store/rules plane as raw readings.
  void bridge_aggregate_sink(const std::string& site,
                             const std::string& group,
                             agg::TreeAggregation& svc);

  [[nodiscard]] std::size_t mesh_count() const { return meshes_.size(); }

 private:
  struct NodeApp {
    std::map<std::uint16_t, std::function<double()>> sensors;
    std::map<std::uint16_t, std::function<void(double)>> actuators;
    std::vector<std::unique_ptr<sim::PeriodicTimer>> timers;
  };

  void install_node_dispatch(MeshNode& node);
  /// Publishes one measurement on the authoritative plane (sharded bus
  /// when enabled, legacy bus otherwise).
  void publish_measurement(const std::string& topic,
                           const std::string& payload);

  sim::Scheduler& sched_;
  Rng rng_;
  SystemConfig cfg_;
  // Declared before every tier: meshes and backend objects register
  // metrics at construction and detach at destruction, so the context
  // must outlive them all.
  std::unique_ptr<obs::Context> obs_;
  backend::TopicBus bus_;
  backend::TimeSeriesStore store_;
  backend::RuleEngine rules_;
  // Sharded backend tier (null when backend_shards == 1). Declaration
  // order doubles as the dependency order: the rule engine references the
  // sharded bus/store, which borrow the worker pool — reverse destruction
  // unwinds references before their targets.
  std::unique_ptr<runner::Engine> shard_pool_;
  std::unique_ptr<backend::ShardedStore> sharded_store_;
  std::unique_ptr<backend::ShardedBus> sharded_bus_;
  std::unique_ptr<backend::ShardedRuleEngine> sharded_rules_;
  std::vector<std::unique_ptr<radio::Medium>> mediums_;
  std::vector<std::unique_ptr<MeshNetwork>> meshes_;
  std::vector<interop::Gateway*> gateways_;
  std::map<NodeId, NodeApp> apps_;  // keyed by node id (unique per System)
};

}  // namespace iiot::core
