// Mesh network builder: assembles complete sensing-and-actuation-layer
// nodes (energy meter + radio + MAC + RPL routing) on one shared medium,
// with the topology generators every bench and example uses.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "energy/meter.hpp"
#include "mac/csma.hpp"
#include "mac/lpl.hpp"
#include "mac/mac.hpp"
#include "mac/rimac.hpp"
#include "net/rpl.hpp"
#include "radio/medium.hpp"
#include "radio/radio.hpp"
#include "sim/scheduler.hpp"

namespace iiot::core {

enum class MacKind { kCsma, kLpl, kRiMac };

[[nodiscard]] constexpr const char* to_string(MacKind k) {
  switch (k) {
    case MacKind::kCsma: return "csma";
    case MacKind::kLpl: return "lpl";
    case MacKind::kRiMac: return "rimac";
  }
  return "?";
}

struct NodeConfig {
  MacKind mac = MacKind::kCsma;
  TenantId tenant = 0;
  ChannelId channel = 11;
  mac::LplConfig lpl{};
  mac::RiMacConfig rimac{};
  mac::CsmaConfig csma{};
  net::RplConfig rpl{};
};

/// One complete S&A-layer node.
struct MeshNode {
  MeshNode(radio::Medium& medium, sim::Scheduler& sched, NodeId id,
           radio::Position pos, Rng rng, const NodeConfig& cfg);
  ~MeshNode();
  MeshNode(const MeshNode&) = delete;
  MeshNode& operator=(const MeshNode&) = delete;

  void start(bool as_root);
  void stop();

  NodeId id;
  sim::Scheduler& sched;
  energy::Meter meter;
  radio::Radio radio;
  std::unique_ptr<mac::Mac> mac;
  std::unique_ptr<net::RplRouting> routing;
};

/// A whole network of MeshNodes on a shared medium. Node 0 (the first
/// added) is conventionally the border router.
class MeshNetwork {
 public:
  /// `id_base` offsets node ids, letting several networks (tenants)
  /// share one medium without id collisions.
  MeshNetwork(sim::Scheduler& sched, radio::Medium& medium, Rng rng,
              NodeConfig cfg = {}, NodeId id_base = 0)
      : sched_(sched), medium_(medium), rng_(rng), cfg_(cfg),
        id_base_(id_base) {}

  MeshNode& add_node(radio::Position pos);
  void start(std::size_t root_index = 0);
  void stop();

  // ---- topology generators (positions only; call add_node inside) ----
  /// Line with the root at one end.
  void build_line(std::size_t n, double spacing);
  /// sqrt(n) x sqrt(n)-ish grid, root at a corner.
  void build_grid(std::size_t n, double pitch);
  /// Uniform random placement over side x side; root at the center.
  void build_random_field(std::size_t n, double side);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] MeshNode& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] MeshNode& root() { return *nodes_.at(root_index_); }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] radio::Medium& medium() { return medium_; }
  [[nodiscard]] const NodeConfig& config() const { return cfg_; }

  /// Fraction of non-root nodes currently joined to the DODAG.
  [[nodiscard]] double joined_fraction() const;
  /// Total energy consumed by all nodes (settles meters first).
  [[nodiscard]] double total_energy_mj();
  /// Hop-ish distance estimate of node i (rank / MinHopRankIncrease - 1).
  [[nodiscard]] int depth_estimate(std::size_t i) const;

 private:
  sim::Scheduler& sched_;
  radio::Medium& medium_;
  Rng rng_;
  NodeConfig cfg_;
  NodeId id_base_ = 0;
  std::size_t root_index_ = 0;
  std::vector<std::unique_ptr<MeshNode>> nodes_;
};

}  // namespace iiot::core
