// Per-world observability context (DESIGN.md §4d).
//
// One Context bundles the MetricsRegistry and the Tracer for one simulated
// world. It installs itself on the world's Scheduler at construction (every
// layer already holds the scheduler, so no constructor plumbing is needed
// anywhere) and restores the previous pointer at destruction — stack-like,
// so tests can nest worlds. Being per-scheduler rather than global means two
// back-to-back runs in one process are fully independent, which is what the
// golden run-twice-compare tests rely on.
//
// All instrumentation call sites go through the null-tolerant free helpers
// below: with no Context installed (observability off) they compile down to
// a pointer test, keeping the hot path intact.
#pragma once

#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/scheduler.hpp"

namespace iiot::obs {

class Context {
 public:
  /// Installs itself as `sched.observability()`; `trace_capacity` bounds
  /// tracer memory.
  explicit Context(sim::Scheduler& sched, std::size_t trace_capacity = 1u << 20);
  ~Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const { return tracer_; }

 private:
  sim::Scheduler& sched_;
  Context* prev_;
  MetricsRegistry metrics_;
  Tracer tracer_;
};

// ---- null-tolerant accessors for instrumentation sites ----------------

/// The context installed on `sched`, or nullptr when observability is off.
[[nodiscard]] inline Context* ctx(sim::Scheduler& sched) {
  return sched.observability();
}

/// The tracer, or nullptr (TraceScope and SpanRef-returning helpers all
/// tolerate null).
[[nodiscard]] inline Tracer* tracer(sim::Scheduler& sched) {
  Context* c = sched.observability();
  return c != nullptr ? &c->tracer() : nullptr;
}

/// The registry, or nullptr.
[[nodiscard]] inline MetricsRegistry* metrics(sim::Scheduler& sched) {
  Context* c = sched.observability();
  return c != nullptr ? &c->metrics() : nullptr;
}

}  // namespace iiot::obs
