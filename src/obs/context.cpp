#include "obs/context.hpp"

namespace iiot::obs {

Context::Context(sim::Scheduler& sched, std::size_t trace_capacity)
    : sched_(sched),
      prev_(sched.observability()),
      tracer_(sched, trace_capacity) {
  sched_.set_observability(this);
}

Context::~Context() { sched_.set_observability(prev_); }

}  // namespace iiot::obs
