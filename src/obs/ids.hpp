// Trace identifier types, split out so wire-level headers (radio::Frame)
// can carry trace metadata without pulling in the full tracer.
#pragma once

#include <cstdint>

namespace iiot::obs {

/// 0 means "no trace".
using TraceId = std::uint64_t;

/// 1-based index into the tracer's record vector; 0 means "no span".
using SpanRef = std::uint32_t;

}  // namespace iiot::obs
