#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "sim/scheduler.hpp"

namespace iiot::obs {

SpanRecord* Tracer::push(TraceId trace, NodeId node, Layer layer,
                         const char* name, SpanRef parent, bool is_instant) {
  if (!enabled_) return nullptr;
  if (records_.size() >= max_records_) {
    ++dropped_;
    return nullptr;
  }
  SpanRecord r;
  r.trace = trace;
  r.parent = parent;
  r.node = node;
  r.layer = layer;
  r.name = name;
  r.start = sched_.now();
  r.end = r.start;
  r.open = !is_instant;
  r.instant = is_instant;
  records_.push_back(r);
  return &records_.back();
}

TraceId Tracer::start_trace(NodeId node, Layer layer) {
  if (!enabled_ || records_.size() >= max_records_) {
    if (enabled_) ++dropped_;
    return 0;
  }
  const TraceId t = next_trace_++;
  trace_start_.push_back(sched_.now());
  push(t, node, layer, "origin", 0, /*is_instant=*/true);
  return t;
}

SpanRef Tracer::begin(TraceId trace, NodeId node, Layer layer,
                      const char* name, SpanRef parent) {
  if (push(trace, node, layer, name, parent, /*is_instant=*/false) ==
      nullptr) {
    return 0;
  }
  return static_cast<SpanRef>(records_.size());
}

void Tracer::end(SpanRef ref) {
  if (ref == 0 || ref > records_.size()) return;
  SpanRecord& r = records_[ref - 1];
  if (!r.open) return;
  r.open = false;
  r.end = sched_.now();
}

void Tracer::end(SpanRef ref, const char* arg_key, std::uint64_t arg_val) {
  annotate(ref, arg_key, arg_val);
  end(ref);
}

SpanRef Tracer::instant(TraceId trace, NodeId node, Layer layer,
                        const char* name, SpanRef parent) {
  if (push(trace, node, layer, name, parent, /*is_instant=*/true) ==
      nullptr) {
    return 0;
  }
  return static_cast<SpanRef>(records_.size());
}

void Tracer::annotate(SpanRef ref, const char* arg_key,
                      std::uint64_t arg_val) {
  if (ref == 0 || ref > records_.size()) return;
  SpanRecord& r = records_[ref - 1];
  r.arg_key = arg_key;
  r.arg_val = arg_val;
}

// ---------------------------------------------------------------- export

namespace {

/// Exported node ids: the broadcast/invalid sentinels read poorly as raw
/// 32-bit values, so map them to small negatives.
std::int64_t export_node(NodeId n) {
  if (n == kBroadcastNode) return -2;
  if (n == kInvalidNode) return -1;
  return static_cast<std::int64_t>(n);
}

}  // namespace

void Tracer::write_jsonl(std::ostream& os) const {
  char buf[320];
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const SpanRecord& r = records_[i];
    int n = std::snprintf(
        buf, sizeof buf,
        "{\"span\":%zu,\"trace\":%" PRIu64 ",\"parent\":%u,\"node\":%lld,"
        "\"layer\":\"%s\",\"name\":\"%s\",\"ts\":%" PRIu64 ",\"dur\":%" PRIu64
        "%s",
        i + 1, r.trace, r.parent,
        static_cast<long long>(export_node(r.node)), to_string(r.layer),
        r.name, r.start, r.end - r.start, r.open ? ",\"open\":1" : "");
    os.write(buf, n);
    if (r.arg_key != nullptr) {
      n = std::snprintf(buf, sizeof buf, ",\"%s\":%" PRIu64, r.arg_key,
                        r.arg_val);
      os.write(buf, n);
    }
    os << "}\n";
  }
}

std::string Tracer::jsonl() const {
  std::ostringstream os;
  write_jsonl(os);
  return os.str();
}

void Tracer::write_chrome_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Name the per-node "processes" and per-layer "threads" so the viewer
  // shows "node 7 / mac" instead of raw ids.
  std::vector<std::int64_t> nodes;
  for (const SpanRecord& r : records_) {
    const std::int64_t n = export_node(r.node);
    bool seen = false;
    for (std::int64_t v : nodes) seen = seen || v == n;
    if (!seen) nodes.push_back(n);
  }
  char buf[384];
  for (std::int64_t n : nodes) {
    sep();
    int len = std::snprintf(
        buf, sizeof buf,
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%lld,\"tid\":0,"
        "\"args\":{\"name\":\"node %lld\"}}",
        static_cast<long long>(n), static_cast<long long>(n));
    os.write(buf, len);
    for (std::size_t l = 0; l < kNumLayers; ++l) {
      sep();
      len = std::snprintf(
          buf, sizeof buf,
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%lld,\"tid\":%zu,"
          "\"args\":{\"name\":\"%s\"}}",
          static_cast<long long>(n), l,
          to_string(static_cast<Layer>(l)));
      os.write(buf, len);
    }
  }

  for (std::size_t i = 0; i < records_.size(); ++i) {
    const SpanRecord& r = records_[i];
    sep();
    const long long pid = static_cast<long long>(export_node(r.node));
    const auto tid = static_cast<std::size_t>(r.layer);
    int len;
    if (r.instant) {
      len = std::snprintf(
          buf, sizeof buf,
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
          "\"ts\":%" PRIu64 ",\"pid\":%lld,\"tid\":%zu,\"args\":{"
          "\"trace\":%" PRIu64 ",\"span\":%zu,\"parent\":%u",
          r.name, to_string(r.layer), r.start, pid, tid, r.trace, i + 1,
          r.parent);
    } else {
      len = std::snprintf(
          buf, sizeof buf,
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%" PRIu64
          ",\"dur\":%" PRIu64 ",\"pid\":%lld,\"tid\":%zu,\"args\":{"
          "\"trace\":%" PRIu64 ",\"span\":%zu,\"parent\":%u",
          r.name, to_string(r.layer), r.start, r.end - r.start, pid, tid,
          r.trace, i + 1, r.parent);
    }
    os.write(buf, len);
    if (r.arg_key != nullptr) {
      len = std::snprintf(buf, sizeof buf, ",\"%s\":%" PRIu64, r.arg_key,
                          r.arg_val);
      os.write(buf, len);
    }
    os << "}}";
  }
  os << "\n]}\n";
}

}  // namespace iiot::obs
