// Causal cross-layer event tracing (Dapper-style, DESIGN.md §4d).
//
// An application message gets a TraceId at its origin; every layer it
// crosses (backend publish, transport fragmentation, RPL forwarding, MAC
// tx/retx, radio propagation, delivery) records spans and instants tagged
// with that id. Propagation is entirely out-of-band: frames carry trace
// metadata as in-memory fields that are NOT serialized and do not change
// on-air sizes, and synchronous up-/down-calls hand the ambient trace over
// via a scoped "current trace" — so enabling tracing can never perturb the
// simulation itself.
//
// Determinism contract: trace and span ids come from per-Tracer monotonic
// counters, timestamps are virtual time, records are exported in append
// order — identical seeds yield byte-identical JSONL and Chrome-trace
// output. The tracer never consults the RNG and never schedules events.
//
// Span names must be string literals (static storage duration): records
// keep the pointer, not a copy.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/ids.hpp"
#include "sim/time.hpp"

namespace iiot::sim {
class Scheduler;
}

namespace iiot::obs {

/// Which layer of the stack produced a record (Chrome-trace "thread").
enum class Layer : std::uint8_t {
  kApp = 0,
  kBackend,
  kTransport,
  kNet,
  kMac,
  kRadio,
  kSim,
};

inline constexpr std::size_t kNumLayers = 7;

[[nodiscard]] constexpr const char* to_string(Layer l) {
  switch (l) {
    case Layer::kApp: return "app";
    case Layer::kBackend: return "backend";
    case Layer::kTransport: return "transport";
    case Layer::kNet: return "net";
    case Layer::kMac: return "mac";
    case Layer::kRadio: return "radio";
    case Layer::kSim: return "sim";
  }
  return "?";
}

struct SpanRecord {
  TraceId trace = 0;       // 0: world event not tied to a message
  SpanRef parent = 0;      // 0: no parent
  NodeId node = kInvalidNode;
  Layer layer = Layer::kApp;
  const char* name = "";   // string literal
  sim::Time start = 0;
  sim::Time end = 0;
  bool open = false;       // true while begin()ed but not yet end()ed
  bool instant = false;    // zero-duration point event
  const char* arg_key = nullptr;  // optional single annotation
  std::uint64_t arg_val = 0;
};

class Tracer {
 public:
  /// `max_records` bounds memory; once hit, new spans are dropped (and
  /// counted) deterministically.
  explicit Tracer(sim::Scheduler& sched, std::size_t max_records = 1u << 20)
      : sched_(sched), max_records_(max_records) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Allocates a fresh trace id and records its root instant ("origin")
  /// at `node`. Returns 0 when disabled or at capacity.
  TraceId start_trace(NodeId node, Layer layer);

  /// Opens a span; returns 0 when disabled/at capacity (end(0) is a
  /// no-op, so call sites need no guards).
  SpanRef begin(TraceId trace, NodeId node, Layer layer, const char* name,
                SpanRef parent = 0);
  void end(SpanRef ref);
  void end(SpanRef ref, const char* arg_key, std::uint64_t arg_val);

  /// Point event.
  SpanRef instant(TraceId trace, NodeId node, Layer layer, const char* name,
                  SpanRef parent = 0);
  void annotate(SpanRef ref, const char* arg_key, std::uint64_t arg_val);

  // ---- ambient trace context (synchronous cross-layer handoff) -------
  [[nodiscard]] TraceId current_trace() const { return cur_trace_; }
  [[nodiscard]] SpanRef current_span() const { return cur_span_; }
  void set_current(TraceId t, SpanRef s) {
    cur_trace_ = t;
    cur_span_ = s;
  }

  // ---- introspection / export ---------------------------------------
  [[nodiscard]] const std::vector<SpanRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t traces_started() const { return next_trace_ - 1; }
  /// Virtual time the trace's origin was recorded (0 if unknown).
  [[nodiscard]] sim::Time trace_start(TraceId t) const {
    return t >= 1 && t < next_trace_ ? trace_start_[t - 1] : 0;
  }

  /// One JSON object per line, append order — the golden-diff format.
  void write_jsonl(std::ostream& os) const;
  [[nodiscard]] std::string jsonl() const;

  /// Chrome trace-event JSON (open in chrome://tracing or Perfetto):
  /// pid = node, tid = layer, complete/instant events with trace ids in
  /// args.
  void write_chrome_json(std::ostream& os) const;

 private:
  SpanRecord* push(TraceId trace, NodeId node, Layer layer, const char* name,
                   SpanRef parent, bool is_instant);

  sim::Scheduler& sched_;
  std::size_t max_records_;
  bool enabled_ = false;
  std::uint64_t next_trace_ = 1;
  std::size_t dropped_ = 0;
  TraceId cur_trace_ = 0;
  SpanRef cur_span_ = 0;
  std::vector<SpanRecord> records_;
  std::vector<sim::Time> trace_start_;  // indexed by trace id - 1
};

/// RAII scope for the ambient (trace, span) pair; tolerates a null tracer
/// so call sites stay one-liners whether or not observability is on.
class TraceScope {
 public:
  TraceScope(Tracer* t, TraceId trace, SpanRef span) : t_(t) {
    if (t_ != nullptr) {
      saved_trace_ = t_->current_trace();
      saved_span_ = t_->current_span();
      t_->set_current(trace, span);
    }
  }
  ~TraceScope() {
    if (t_ != nullptr) t_->set_current(saved_trace_, saved_span_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Tracer* t_;
  TraceId saved_trace_ = 0;
  SpanRef saved_span_ = 0;
};

}  // namespace iiot::obs
