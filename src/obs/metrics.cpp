#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace iiot::obs {

namespace {

/// Deterministic double formatting for snapshots: %.6g is reproducible
/// for values that are themselves reproducible.
std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

bool sample_before(const MetricsRegistry::Sample& a,
                   const MetricsRegistry::Sample& b) {
  if (a.module != b.module) return a.module < b.module;
  if (a.name != b.name) return a.name < b.name;
  return a.node < b.node;
}

}  // namespace

MetricsRegistry::OwnedEntry* MetricsRegistry::find_owned(const Key& k,
                                                         SlotKind kind) {
  for (OwnedEntry& e : owned_) {
    if (e.kind == kind && e.key == k) return &e;
  }
  return nullptr;
}

Counter MetricsRegistry::counter(std::string module, std::string name,
                                 std::int64_t node) {
  Key k{std::move(module), std::move(name), node};
  if (OwnedEntry* e = find_owned(k, SlotKind::kCounter)) {
    return Counter(&counter_slots_[e->index]);
  }
  counter_slots_.push_back(0);
  owned_.push_back(
      OwnedEntry{std::move(k), SlotKind::kCounter, counter_slots_.size() - 1});
  return Counter(&counter_slots_.back());
}

Gauge MetricsRegistry::gauge(std::string module, std::string name,
                             std::int64_t node) {
  Key k{std::move(module), std::move(name), node};
  if (OwnedEntry* e = find_owned(k, SlotKind::kGauge)) {
    return Gauge(&gauge_slots_[e->index]);
  }
  gauge_slots_.push_back(0.0);
  owned_.push_back(
      OwnedEntry{std::move(k), SlotKind::kGauge, gauge_slots_.size() - 1});
  return Gauge(&gauge_slots_.back());
}

Histogram MetricsRegistry::histogram(std::string module, std::string name,
                                     std::int64_t node,
                                     std::vector<double> bounds) {
  Key k{std::move(module), std::move(name), node};
  if (OwnedEntry* e = find_owned(k, SlotKind::kHistogram)) {
    return Histogram(&hist_slots_[e->index]);
  }
  HistogramData d;
  d.bounds = std::move(bounds);
  d.counts.assign(d.bounds.size() + 1, 0);
  hist_slots_.push_back(std::move(d));
  owned_.push_back(
      OwnedEntry{std::move(k), SlotKind::kHistogram, hist_slots_.size() - 1});
  return Histogram(&hist_slots_.back());
}

void MetricsRegistry::attach_counter(std::string module, std::string name,
                                     std::int64_t node,
                                     const std::uint64_t* slot,
                                     const void* owner) {
  AttachedEntry e;
  e.key = Key{std::move(module), std::move(name), node};
  e.slot = slot;
  e.owner = owner;
  attached_.push_back(std::move(e));
}

void MetricsRegistry::attach_gauge_fn(std::string module, std::string name,
                                      std::int64_t node,
                                      std::function<double()> fn,
                                      const void* owner) {
  AttachedEntry e;
  e.key = Key{std::move(module), std::move(name), node};
  e.fn = std::move(fn);
  e.owner = owner;
  attached_.push_back(std::move(e));
}

void MetricsRegistry::detach(const void* owner) {
  std::erase_if(attached_, [owner](const AttachedEntry& e) {
    return e.owner == owner;
  });
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  std::vector<Sample> out;
  out.reserve(owned_.size() + attached_.size());
  for (const OwnedEntry& e : owned_) {
    Sample s;
    s.module = e.key.module;
    s.name = e.key.name;
    s.node = e.key.node;
    switch (e.kind) {
      case SlotKind::kCounter:
        s.kind = Sample::Kind::kCounter;
        s.u64 = counter_slots_[e.index];
        break;
      case SlotKind::kGauge:
        s.kind = Sample::Kind::kGauge;
        s.f64 = gauge_slots_[e.index];
        break;
      case SlotKind::kHistogram:
        s.kind = Sample::Kind::kHistogram;
        s.hist = &hist_slots_[e.index];
        s.u64 = s.hist->total;
        s.f64 = s.hist->sum;
        break;
    }
    out.push_back(std::move(s));
  }
  for (const AttachedEntry& e : attached_) {
    Sample s;
    s.module = e.key.module;
    s.name = e.key.name;
    s.node = e.key.node;
    if (e.slot != nullptr) {
      s.kind = Sample::Kind::kCounter;
      s.u64 = *e.slot;
    } else {
      s.kind = Sample::Kind::kGauge;
      s.f64 = e.fn ? e.fn() : 0.0;
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), sample_before);
  return out;
}

std::string MetricsRegistry::snapshot_text() const {
  std::string out;
  for (const Sample& s : snapshot()) {
    out += s.module;
    out += '.';
    out += s.name;
    out += '[';
    out += std::to_string(s.node);
    out += "] = ";
    switch (s.kind) {
      case Sample::Kind::kCounter:
        out += fmt_u64(s.u64);
        break;
      case Sample::Kind::kGauge:
        out += fmt_double(s.f64);
        break;
      case Sample::Kind::kHistogram: {
        out += "hist total=" + fmt_u64(s.u64) + " sum=" + fmt_double(s.f64) +
               " counts=";
        for (std::size_t i = 0; i < s.hist->counts.size(); ++i) {
          out += (i > 0 ? "," : "") + fmt_u64(s.hist->counts[i]);
        }
        break;
      }
    }
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::snapshot_json() const {
  std::string out = "{";
  bool first = true;
  for (const Sample& s : snapshot()) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + s.module + "." + s.name + "[" + std::to_string(s.node) +
           "]\": ";
    switch (s.kind) {
      case Sample::Kind::kCounter:
        out += fmt_u64(s.u64);
        break;
      case Sample::Kind::kGauge:
        out += fmt_double(s.f64);
        break;
      case Sample::Kind::kHistogram: {
        out += "{\"bounds\": [";
        for (std::size_t i = 0; i < s.hist->bounds.size(); ++i) {
          out += (i > 0 ? ", " : "") + fmt_double(s.hist->bounds[i]);
        }
        out += "], \"counts\": [";
        for (std::size_t i = 0; i < s.hist->counts.size(); ++i) {
          out += (i > 0 ? ", " : "") + fmt_u64(s.hist->counts[i]);
        }
        out += "], \"total\": " + fmt_u64(s.u64) +
               ", \"sum\": " + fmt_double(s.f64) + "}";
        break;
      }
    }
  }
  out += "}";
  return out;
}

}  // namespace iiot::obs
