// Whole-stack metrics plane (DESIGN.md §4d).
//
// A MetricsRegistry is the single enumeration point for every counter the
// stack maintains, registered by (module, name, node_id). Two styles:
//
//   * registry-owned slots — counter()/gauge()/histogram() hand back a
//     handle wrapping a plain uint64_t/double slot with a stable address,
//     so the hot path is one increment through a pointer;
//   * struct-backed slots — the pre-existing per-layer stats structs
//     (MediumStats, MacStats, RplStats, ReassemblyStats, ...) register
//     pointers to their own uint64_t fields with attach_counter(), which
//     keeps their hot paths literally unchanged (one increment on a
//     struct member) while making the registry the one place that can
//     snapshot the whole stack.
//
// Determinism contract: the registry never consults the RNG, never
// schedules events, and snapshots are emitted in sorted (module, name,
// node) order — identical seeds yield byte-identical snapshot text. All
// values are either integers or doubles derived purely from virtual-time
// simulation, so formatting is reproducible.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace iiot::obs {

/// node_id for world-level metrics not owned by one node (e.g. the shared
/// medium).
inline constexpr std::int64_t kWorldNode = -1;

/// Handle to a registry-owned counter slot. Null handles (default
/// constructed, or from a disabled registry) ignore increments.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) {
    if (slot_ != nullptr) *slot_ += n;
  }
  [[nodiscard]] std::uint64_t value() const {
    return slot_ != nullptr ? *slot_ : 0;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::uint64_t* slot) : slot_(slot) {}
  std::uint64_t* slot_ = nullptr;
};

/// Handle to a registry-owned gauge slot (a plain double).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) {
    if (slot_ != nullptr) *slot_ = v;
  }
  void add(double v) {
    if (slot_ != nullptr) *slot_ += v;
  }
  [[nodiscard]] double value() const {
    return slot_ != nullptr ? *slot_ : 0.0;
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(double* slot) : slot_(slot) {}
  double* slot_ = nullptr;
};

/// Fixed-bucket histogram: bucket upper bounds are set at registration and
/// never change, so observe() is a linear scan over a handful of uint64_t
/// slots (cheap and allocation-free). The last implicit bucket is +inf.
struct HistogramData {
  std::vector<double> bounds;        // ascending upper bounds
  std::vector<std::uint64_t> counts; // bounds.size() + 1 buckets
  std::uint64_t total = 0;
  double sum = 0.0;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(double v) {
    if (data_ == nullptr) return;
    std::size_t i = 0;
    while (i < data_->bounds.size() && v > data_->bounds[i]) ++i;
    ++data_->counts[i];
    ++data_->total;
    data_->sum += v;
  }
  [[nodiscard]] std::uint64_t total() const {
    return data_ != nullptr ? data_->total : 0;
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(HistogramData* d) : data_(d) {}
  HistogramData* data_ = nullptr;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // ---- registry-owned slots -----------------------------------------
  // Re-registering an existing (module, name, node) key returns a handle
  // to the same slot (so a restarting protocol object keeps its series).
  Counter counter(std::string module, std::string name,
                  std::int64_t node = kWorldNode);
  Gauge gauge(std::string module, std::string name,
              std::int64_t node = kWorldNode);
  Histogram histogram(std::string module, std::string name,
                      std::int64_t node, std::vector<double> bounds);

  // ---- struct-backed slots ------------------------------------------
  // The registry reads through the pointer at snapshot time; `owner`
  // groups registrations so a dying layer can detach them all. The
  // pointee must stay valid until detach(owner).
  void attach_counter(std::string module, std::string name,
                      std::int64_t node, const std::uint64_t* slot,
                      const void* owner);
  /// Gauge polled via callback at snapshot time (e.g. an energy meter
  /// that must settle before reading). Must be deterministic.
  void attach_gauge_fn(std::string module, std::string name,
                       std::int64_t node, std::function<double()> fn,
                       const void* owner);
  void detach(const void* owner);

  // ---- snapshots ----------------------------------------------------
  struct Sample {
    std::string module;
    std::string name;
    std::int64_t node = kWorldNode;
    enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram } kind =
        Kind::kCounter;
    std::uint64_t u64 = 0;            // counters
    double f64 = 0.0;                 // gauges / histogram sum
    const HistogramData* hist = nullptr;  // histograms only
  };

  /// All live metrics, sorted by (module, name, node). O(n log n); meant
  /// for checkpoints and export, never the hot path.
  [[nodiscard]] std::vector<Sample> snapshot() const;

  /// Deterministic line-per-metric text form ("module.name[node] = v").
  [[nodiscard]] std::string snapshot_text() const;

  /// Deterministic JSON object keyed "module.name[node]"; histograms
  /// expand to {buckets, counts, total, sum}.
  [[nodiscard]] std::string snapshot_json() const;

  [[nodiscard]] std::size_t size() const {
    return owned_.size() + attached_.size();
  }

 private:
  struct Key {
    std::string module;
    std::string name;
    std::int64_t node;
    [[nodiscard]] bool operator==(const Key&) const = default;
  };

  enum class SlotKind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct OwnedEntry {
    Key key;
    SlotKind kind;
    std::size_t index;  // into the matching slot deque
  };

  struct AttachedEntry {
    Key key;
    const std::uint64_t* slot = nullptr;  // counter style
    std::function<double()> fn;           // gauge style (slot == nullptr)
    const void* owner = nullptr;
  };

  OwnedEntry* find_owned(const Key& k, SlotKind kind);

  std::vector<OwnedEntry> owned_;
  std::vector<AttachedEntry> attached_;
  // Deques: stable addresses for handles across growth.
  std::deque<std::uint64_t> counter_slots_;
  std::deque<double> gauge_slots_;
  std::deque<HistogramData> hist_slots_;
};

}  // namespace iiot::obs
