// Per-node energy accounting.
//
// The paper's geographic-scalability and dependability arguments (§IV-B,
// §V-A) are fundamentally about energy: duty-cycled radios, load near the
// border router draining batteries, security modes shortening lifetime.
// Every radio state transition and CPU burst in the simulator is charged
// here, so benches can report joules and projected lifetimes.
#pragma once

#include <array>
#include <cstdint>

#include "sim/time.hpp"

namespace iiot::energy {

/// Radio power states with CC2420-class current draws (see Profile).
enum class RadioState : std::uint8_t { kOff = 0, kSleep, kListen, kRx, kTx };

inline constexpr std::size_t kNumRadioStates = 5;

/// Power draw profile in milliwatts per state, plus CPU energy per cycle.
/// Defaults approximate a 3 V, CC2420-class 802.15.4 transceiver and a
/// Cortex-M-class MCU.
struct Profile {
  std::array<double, kNumRadioStates> radio_mw{
      0.0,    // off
      0.003,  // sleep (1 uA class)
      56.4,   // idle listen (18.8 mA * 3 V)
      56.4,   // rx
      52.2,   // tx at 0 dBm (17.4 mA * 3 V)
  };
  double cpu_nj_per_cycle = 0.5;  // ~0.5 nJ/cycle active
};

/// Integrates power over simulated time.
class Meter {
 public:
  explicit Meter(Profile profile = {}) : profile_(profile) {}

  /// Records that the radio has been in `state` since the last call time.
  /// Callers (the Radio) invoke this on every state change.
  void radio_state(RadioState state, sim::Time now) {
    settle(now);
    state_ = state;
  }

  /// Charges an active CPU burst of the given cycle count.
  void cpu_cycles(std::uint64_t cycles) {
    cpu_mj_ += static_cast<double>(cycles) * profile_.cpu_nj_per_cycle * 1e-6;
  }

  /// Flushes accumulated time up to `now` (call before reading totals).
  void settle(sim::Time now) {
    if (now > last_) {
      double sec = sim::to_seconds(now - last_);
      auto idx = static_cast<std::size_t>(state_);
      radio_mj_[idx] += profile_.radio_mw[idx] * sec;
      per_state_s_[idx] += sec;
      last_ = now;
    }
  }

  /// Total consumed energy in millijoules.
  [[nodiscard]] double total_mj() const {
    double sum = cpu_mj_;
    for (double v : radio_mj_) sum += v;
    return sum;
  }

  [[nodiscard]] double radio_mj(RadioState s) const {
    return radio_mj_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] double cpu_mj() const { return cpu_mj_; }

  /// Seconds spent in a given radio state (duty-cycle analysis).
  [[nodiscard]] double seconds_in(RadioState s) const {
    return per_state_s_[static_cast<std::size_t>(s)];
  }

  /// Fraction of settled time with the radio on (listen/rx/tx).
  [[nodiscard]] double duty_cycle() const {
    double on = seconds_in(RadioState::kListen) + seconds_in(RadioState::kRx) +
                seconds_in(RadioState::kTx);
    double all = on + seconds_in(RadioState::kSleep) +
                 seconds_in(RadioState::kOff);
    return all > 0 ? on / all : 0.0;
  }

  /// Projected lifetime in days on a battery of `capacity_j` joules,
  /// extrapolating the average power observed so far.
  [[nodiscard]] double projected_lifetime_days(double capacity_j) const {
    double elapsed_s = 0;
    for (double v : per_state_s_) elapsed_s += v;
    if (elapsed_s <= 0) return 0;
    double avg_w = total_mj() * 1e-3 / elapsed_s;
    if (avg_w <= 0) return 1e12;
    return capacity_j / avg_w / 86400.0;
  }

  void reset(sim::Time now) {
    settle(now);
    radio_mj_.fill(0.0);
    per_state_s_.fill(0.0);
    cpu_mj_ = 0.0;
  }

 private:
  Profile profile_;
  RadioState state_ = RadioState::kOff;
  sim::Time last_ = 0;
  std::array<double, kNumRadioStates> radio_mj_{};
  std::array<double, kNumRadioStates> per_state_s_{};
  double cpu_mj_ = 0.0;
};

}  // namespace iiot::energy
