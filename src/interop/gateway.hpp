// Protocol gateway: the middleware box of §III-B.
//
// Owns a set of adapters (one per legacy device), and makes all of them
// look like one coherent system:
//   * every mapped resource appears as a CoAP resource
//     ("dev/<device>/<obj>/<inst>/<res>") on the gateway's endpoint;
//   * readable numeric resources are polled and published onto the
//     backend TopicBus ("site/<device>/<obj>/<inst>/<res>");
//   * commands published to "cmd/<device>/<obj>/<inst>/<res>" are written
//     through to the legacy device in its own wire protocol.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "backend/topic_bus.hpp"
#include "coap/endpoint.hpp"
#include "interop/adapter.hpp"
#include "sim/scheduler.hpp"

namespace iiot::interop {

struct GatewayConfig {
  sim::Duration poll_interval = 10'000'000;  // 10 s sensor polling
  std::string site = "site";
};

struct GatewayStats {
  std::uint64_t polls = 0;
  std::uint64_t poll_errors = 0;
  std::uint64_t coap_reads = 0;
  std::uint64_t coap_writes = 0;
  std::uint64_t bus_commands = 0;
};

class Gateway {
 public:
  Gateway(sim::Scheduler& sched, backend::TopicBus& bus,
          GatewayConfig cfg = {})
      : sched_(sched), bus_(bus), cfg_(cfg) {}
  ~Gateway() { stop(); }
  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Registers a device; discovery runs immediately.
  void add_device(const std::string& name, Adapter& adapter);

  /// Exposes every registered resource on a CoAP endpoint.
  void expose_coap(coap::Endpoint& ep);

  void start();
  void stop();

  [[nodiscard]] const GatewayStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }
  [[nodiscard]] std::size_t resource_count() const;

  /// Direct (in-process) read/write in unified terms — used by the
  /// application tier and by tests.
  [[nodiscard]] Result<ResourceValue> read(const std::string& device,
                                           const ResourcePath& path);
  [[nodiscard]] Status write(const std::string& device,
                             const ResourcePath& path,
                             const ResourceValue& value);

 private:
  struct Device {
    Adapter* adapter = nullptr;
    std::vector<ResourceDescriptor> resources;
  };

  void poll();

  sim::Scheduler& sched_;
  backend::TopicBus& bus_;
  GatewayConfig cfg_;
  GatewayStats stats_;
  std::map<std::string, Device> devices_;
  bool running_ = false;
  sim::EventHandle poll_timer_;
  backend::TopicBus::SubId cmd_sub_ = 0;
  bool cmd_subscribed_ = false;
};

}  // namespace iiot::interop
