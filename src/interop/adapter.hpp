// Protocol adapter interface: one adapter per legacy/fieldbus protocol,
// each translating the unified resource model to real wire PDUs of its
// protocol and back. Byte counts are tracked so E12 can report the
// translation overhead per protocol.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.hpp"
#include "interop/resource_model.hpp"

namespace iiot::interop {

struct AdapterStats {
  std::uint64_t requests = 0;
  std::uint64_t pdu_bytes_out = 0;
  std::uint64_t pdu_bytes_in = 0;
  std::uint64_t protocol_errors = 0;
};

class Adapter {
 public:
  virtual ~Adapter() = default;

  [[nodiscard]] virtual const char* protocol() const = 0;

  /// Enumerates the resources this device exposes.
  [[nodiscard]] virtual std::vector<ResourceDescriptor> discover() = 0;

  [[nodiscard]] virtual Result<ResourceValue> read(
      const ResourcePath& path) = 0;
  [[nodiscard]] virtual Status write(const ResourcePath& path,
                                     const ResourceValue& value) = 0;

  [[nodiscard]] const AdapterStats& stats() const { return stats_; }

 protected:
  AdapterStats stats_;
};

}  // namespace iiot::interop
