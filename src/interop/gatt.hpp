// BLE-GATT-class attribute device and adapter.
//
// Models the paper's observation that BLE "standardiz[es] communication
// up to the application layer" (§III-A): values live in an attribute
// table addressed by handles, read/written with ATT-style PDUs
// (Read Request 0x0A / Read Response 0x0B, Write Request 0x12 / Write
// Response 0x13, Error Response 0x01). Characteristic values are IEEE
// float32 little-endian, as common in BLE environmental profiles.
#pragma once

#include <map>
#include <vector>

#include "common/bytes.hpp"
#include "interop/adapter.hpp"

namespace iiot::interop {

class GattDevice {
 public:
  void set_attribute(std::uint16_t handle, Buffer value) {
    attributes_[handle] = std::move(value);
  }
  void set_float(std::uint16_t handle, float v);
  [[nodiscard]] std::optional<float> get_float(std::uint16_t handle) const;

  /// Processes one ATT PDU, returning the response PDU.
  [[nodiscard]] Buffer process(BytesView pdu);

 private:
  [[nodiscard]] Buffer error_rsp(std::uint8_t req_op, std::uint16_t handle,
                                 std::uint8_t code) const;
  std::map<std::uint16_t, Buffer> attributes_;
};

struct GattMapping {
  ResourceDescriptor descriptor;
  std::uint16_t handle = 0;
};

class GattAdapter : public Adapter {
 public:
  GattAdapter(GattDevice& device, std::vector<GattMapping> map)
      : device_(device), map_(std::move(map)) {}

  [[nodiscard]] const char* protocol() const override { return "ble-gatt"; }
  [[nodiscard]] std::vector<ResourceDescriptor> discover() override;
  [[nodiscard]] Result<ResourceValue> read(const ResourcePath& path) override;
  [[nodiscard]] Status write(const ResourcePath& path,
                             const ResourceValue& value) override;

 private:
  [[nodiscard]] const GattMapping* find(const ResourcePath& path) const;
  [[nodiscard]] Result<Buffer> transact(Buffer request);

  GattDevice& device_;
  std::vector<GattMapping> map_;
};

}  // namespace iiot::interop
