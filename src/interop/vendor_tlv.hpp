// Proprietary vendor TLV protocol and adapter.
//
// Stands in for the paper's custom, non-standard device protocols —
// "frequently only parts of the standard are used in practice, whereas
// the other parts are replaced with custom solutions so as to gain an
// edge over competing system providers" (§III-A). Frame layout:
//   [0xA5][cmd][payload-len][TLVs...][xor-checksum]
// TLV: [type][len][bytes]. Commands: 0x01 read (TLV 0x10 = point id),
// 0x02 write (0x10 point id + 0x20 f64 value), 0x03 enumerate.
// Responses echo cmd|0x80; errors use cmd 0x7F.
#pragma once

#include <map>
#include <vector>

#include "common/bytes.hpp"
#include "interop/adapter.hpp"

namespace iiot::interop {

class VendorTlvDevice {
 public:
  void set_point(std::uint8_t point_id, double value) {
    points_[point_id] = value;
  }
  [[nodiscard]] std::optional<double> point(std::uint8_t id) const {
    auto it = points_.find(id);
    if (it == points_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] Buffer process(BytesView frame);

 private:
  std::map<std::uint8_t, double> points_;
};

struct VendorMapping {
  ResourceDescriptor descriptor;
  std::uint8_t point_id = 0;
};

class VendorTlvAdapter : public Adapter {
 public:
  VendorTlvAdapter(VendorTlvDevice& device, std::vector<VendorMapping> map)
      : device_(device), map_(std::move(map)) {}

  [[nodiscard]] const char* protocol() const override { return "vendor-tlv"; }
  [[nodiscard]] std::vector<ResourceDescriptor> discover() override;
  [[nodiscard]] Result<ResourceValue> read(const ResourcePath& path) override;
  [[nodiscard]] Status write(const ResourcePath& path,
                             const ResourceValue& value) override;

 private:
  [[nodiscard]] const VendorMapping* find(const ResourcePath& path) const;
  [[nodiscard]] Result<Buffer> transact(Buffer request);

  VendorTlvDevice& device_;
  std::vector<VendorMapping> map_;
};

}  // namespace iiot::interop
