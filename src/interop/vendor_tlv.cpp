#include "interop/vendor_tlv.hpp"

#include <cstring>

namespace iiot::interop {

namespace {
constexpr std::uint8_t kMagic = 0xA5;
constexpr std::uint8_t kCmdRead = 0x01;
constexpr std::uint8_t kCmdWrite = 0x02;
constexpr std::uint8_t kCmdError = 0x7F;
constexpr std::uint8_t kTlvPointId = 0x10;
constexpr std::uint8_t kTlvValue = 0x20;

std::uint8_t xor_sum(BytesView b) {
  std::uint8_t x = 0;
  for (std::uint8_t v : b) x ^= v;
  return x;
}

Buffer make_frame(std::uint8_t cmd, BytesView tlvs) {
  Buffer f{kMagic, cmd, static_cast<std::uint8_t>(tlvs.size())};
  f.insert(f.end(), tlvs.begin(), tlvs.end());
  f.push_back(xor_sum(f));
  return f;
}

void append_tlv(Buffer& out, std::uint8_t type, BytesView value) {
  out.push_back(type);
  out.push_back(static_cast<std::uint8_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
}

/// Finds the first TLV of `type`; returns its value bytes.
std::optional<BytesView> find_tlv(BytesView tlvs, std::uint8_t type) {
  std::size_t pos = 0;
  while (pos + 2 <= tlvs.size()) {
    const std::uint8_t t = tlvs[pos];
    const std::uint8_t len = tlvs[pos + 1];
    if (pos + 2 + len > tlvs.size()) return std::nullopt;
    if (t == type) return tlvs.subspan(pos + 2, len);
    pos += 2 + len;
  }
  return std::nullopt;
}

}  // namespace

Buffer VendorTlvDevice::process(BytesView frame) {
  if (frame.size() < 4 || frame[0] != kMagic) return {};
  if (xor_sum(frame.subspan(0, frame.size() - 1)) != frame.back()) return {};
  const std::uint8_t cmd = frame[1];
  const std::uint8_t len = frame[2];
  if (frame.size() != static_cast<std::size_t>(len) + 4) return {};
  BytesView tlvs = frame.subspan(3, len);

  auto error = [](std::uint8_t code) {
    Buffer tl;
    append_tlv(tl, 0x7E, BytesView(&code, 1));
    return make_frame(kCmdError, tl);
  };

  switch (cmd) {
    case kCmdRead: {
      auto id = find_tlv(tlvs, kTlvPointId);
      if (!id || id->size() != 1) return error(1);
      auto it = points_.find((*id)[0]);
      if (it == points_.end()) return error(2);
      Buffer tl;
      append_tlv(tl, kTlvPointId, *id);
      std::uint8_t vb[8];
      std::memcpy(vb, &it->second, 8);
      append_tlv(tl, kTlvValue, BytesView(vb, 8));
      return make_frame(cmd | 0x80, tl);
    }
    case kCmdWrite: {
      auto id = find_tlv(tlvs, kTlvPointId);
      auto val = find_tlv(tlvs, kTlvValue);
      if (!id || id->size() != 1 || !val || val->size() != 8) {
        return error(1);
      }
      auto it = points_.find((*id)[0]);
      if (it == points_.end()) return error(2);
      std::memcpy(&it->second, val->data(), 8);
      Buffer tl;
      append_tlv(tl, kTlvPointId, *id);
      return make_frame(cmd | 0x80, tl);
    }
    default:
      return error(3);
  }
}

const VendorMapping* VendorTlvAdapter::find(const ResourcePath& path) const {
  for (const auto& m : map_) {
    if (m.descriptor.path == path) return &m;
  }
  return nullptr;
}

std::vector<ResourceDescriptor> VendorTlvAdapter::discover() {
  std::vector<ResourceDescriptor> out;
  out.reserve(map_.size());
  for (const auto& m : map_) out.push_back(m.descriptor);
  return out;
}

Result<Buffer> VendorTlvAdapter::transact(Buffer request) {
  ++stats_.requests;
  stats_.pdu_bytes_out += request.size();
  Buffer rsp = device_.process(request);
  stats_.pdu_bytes_in += rsp.size();
  if (rsp.empty() || rsp[1] == kCmdError) {
    ++stats_.protocol_errors;
    return Error{Error::Code::kMalformed, "vendor: device error"};
  }
  return rsp;
}

Result<ResourceValue> VendorTlvAdapter::read(const ResourcePath& path) {
  const VendorMapping* m = find(path);
  if (m == nullptr || !m->descriptor.readable) {
    return Error{Error::Code::kNotFound, "vendor: unmapped " + path.str()};
  }
  Buffer tl;
  append_tlv(tl, kTlvPointId, BytesView(&m->point_id, 1));
  auto rsp = transact(make_frame(kCmdRead, tl));
  if (!rsp.ok()) return rsp.error();
  BytesView tlvs = BytesView(rsp.value()).subspan(3, rsp.value()[2]);
  auto val = find_tlv(tlvs, kTlvValue);
  if (!val || val->size() != 8) {
    return Error{Error::Code::kMalformed, "vendor: bad value tlv"};
  }
  double v = 0;
  std::memcpy(&v, val->data(), 8);
  return ResourceValue{v};
}

Status VendorTlvAdapter::write(const ResourcePath& path,
                               const ResourceValue& value) {
  const VendorMapping* m = find(path);
  if (m == nullptr || !m->descriptor.writable) {
    return Error{Error::Code::kNotFound, "vendor: unmapped " + path.str()};
  }
  auto dv = value_as_double(value);
  if (!dv) return Error{Error::Code::kMalformed, "vendor: non-numeric"};
  Buffer tl;
  append_tlv(tl, kTlvPointId, BytesView(&m->point_id, 1));
  std::uint8_t vb[8];
  std::memcpy(vb, &*dv, 8);
  append_tlv(tl, kTlvValue, BytesView(vb, 8));
  auto rsp = transact(make_frame(kCmdWrite, tl));
  if (!rsp.ok()) return rsp.error();
  return Status::success();
}

}  // namespace iiot::interop
