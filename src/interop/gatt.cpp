#include "interop/gatt.hpp"

#include <cstring>

namespace iiot::interop {

namespace {
constexpr std::uint8_t kOpError = 0x01;
constexpr std::uint8_t kOpReadReq = 0x0A;
constexpr std::uint8_t kOpReadRsp = 0x0B;
constexpr std::uint8_t kOpWriteReq = 0x12;
constexpr std::uint8_t kOpWriteRsp = 0x13;
constexpr std::uint8_t kErrAttrNotFound = 0x0A;
constexpr std::uint8_t kErrReqNotSupported = 0x06;

std::uint16_t le16(BytesView b, std::size_t off) {
  return static_cast<std::uint16_t>(b[off] | (b[off + 1] << 8));
}
}  // namespace

void GattDevice::set_float(std::uint16_t handle, float v) {
  Buffer b(4);
  std::memcpy(b.data(), &v, 4);  // IEEE-754 little-endian
  attributes_[handle] = std::move(b);
}

std::optional<float> GattDevice::get_float(std::uint16_t handle) const {
  auto it = attributes_.find(handle);
  if (it == attributes_.end() || it->second.size() != 4) return std::nullopt;
  float v = 0;
  std::memcpy(&v, it->second.data(), 4);
  return v;
}

Buffer GattDevice::error_rsp(std::uint8_t req_op, std::uint16_t handle,
                             std::uint8_t code) const {
  return Buffer{kOpError, req_op, static_cast<std::uint8_t>(handle & 0xFF),
                static_cast<std::uint8_t>(handle >> 8), code};
}

Buffer GattDevice::process(BytesView pdu) {
  if (pdu.size() < 3) return error_rsp(0x00, 0, kErrReqNotSupported);
  const std::uint8_t op = pdu[0];
  const std::uint16_t handle = le16(pdu, 1);
  switch (op) {
    case kOpReadReq: {
      auto it = attributes_.find(handle);
      if (it == attributes_.end()) {
        return error_rsp(op, handle, kErrAttrNotFound);
      }
      Buffer rsp{kOpReadRsp};
      rsp.insert(rsp.end(), it->second.begin(), it->second.end());
      return rsp;
    }
    case kOpWriteReq: {
      auto it = attributes_.find(handle);
      if (it == attributes_.end()) {
        return error_rsp(op, handle, kErrAttrNotFound);
      }
      it->second.assign(pdu.begin() + 3, pdu.end());
      return Buffer{kOpWriteRsp};
    }
    default:
      return error_rsp(op, handle, kErrReqNotSupported);
  }
}

const GattMapping* GattAdapter::find(const ResourcePath& path) const {
  for (const auto& m : map_) {
    if (m.descriptor.path == path) return &m;
  }
  return nullptr;
}

std::vector<ResourceDescriptor> GattAdapter::discover() {
  std::vector<ResourceDescriptor> out;
  out.reserve(map_.size());
  for (const auto& m : map_) out.push_back(m.descriptor);
  return out;
}

Result<Buffer> GattAdapter::transact(Buffer request) {
  ++stats_.requests;
  stats_.pdu_bytes_out += request.size();
  Buffer rsp = device_.process(request);
  stats_.pdu_bytes_in += rsp.size();
  if (!rsp.empty() && rsp[0] == kOpError) {
    ++stats_.protocol_errors;
    return Error{Error::Code::kNotFound,
                 "att error " + std::to_string(rsp.back())};
  }
  return rsp;
}

Result<ResourceValue> GattAdapter::read(const ResourcePath& path) {
  const GattMapping* m = find(path);
  if (m == nullptr || !m->descriptor.readable) {
    return Error{Error::Code::kNotFound, "gatt: unmapped " + path.str()};
  }
  Buffer req{kOpReadReq, static_cast<std::uint8_t>(m->handle & 0xFF),
             static_cast<std::uint8_t>(m->handle >> 8)};
  auto rsp = transact(std::move(req));
  if (!rsp.ok()) return rsp.error();
  const Buffer& r = rsp.value();
  if (r.size() != 5 || r[0] != kOpReadRsp) {
    ++stats_.protocol_errors;
    return Error{Error::Code::kMalformed, "gatt: bad read response"};
  }
  float v = 0;
  std::memcpy(&v, r.data() + 1, 4);
  return ResourceValue{static_cast<double>(v)};
}

Status GattAdapter::write(const ResourcePath& path,
                          const ResourceValue& value) {
  const GattMapping* m = find(path);
  if (m == nullptr || !m->descriptor.writable) {
    return Error{Error::Code::kNotFound, "gatt: unmapped " + path.str()};
  }
  auto dv = value_as_double(value);
  if (!dv) return Error{Error::Code::kMalformed, "gatt: non-numeric"};
  const auto f = static_cast<float>(*dv);
  Buffer req{kOpWriteReq, static_cast<std::uint8_t>(m->handle & 0xFF),
             static_cast<std::uint8_t>(m->handle >> 8)};
  req.resize(7);
  std::memcpy(req.data() + 3, &f, 4);
  auto rsp = transact(std::move(req));
  if (!rsp.ok()) return rsp.error();
  if (rsp.value().empty() || rsp.value()[0] != kOpWriteRsp) {
    ++stats_.protocol_errors;
    return Error{Error::Code::kMalformed, "gatt: bad write response"};
  }
  return Status::success();
}

}  // namespace iiot::interop
