#include "interop/modbus.hpp"

namespace iiot::interop {

namespace {

void append_crc(Buffer& frame) {
  // Modbus uses CRC-16/MODBUS; we reuse CCITT for the simulated bus —
  // both ends agree, and the framing/validation logic is identical.
  const std::uint16_t crc = crc16_ccitt(frame);
  frame.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  frame.push_back(static_cast<std::uint8_t>(crc >> 8));
}

bool check_crc(BytesView frame) {
  if (frame.size() < 4) return false;
  const std::uint16_t got =
      static_cast<std::uint16_t>(frame[frame.size() - 2]) |
      static_cast<std::uint16_t>(frame[frame.size() - 1] << 8);
  return crc16_ccitt(frame.subspan(0, frame.size() - 2)) == got;
}

}  // namespace

Buffer ModbusRtuDevice::exception(std::uint8_t function,
                                  std::uint8_t code) const {
  Buffer rsp{unit_, static_cast<std::uint8_t>(function | 0x80), code};
  append_crc(rsp);
  return rsp;
}

Buffer ModbusRtuDevice::process(BytesView frame) {
  if (!check_crc(frame) || frame.size() < 8) return {};
  if (frame[0] != unit_) return {};  // not addressed to us: stay silent
  const std::uint8_t func = frame[1];
  const auto addr = static_cast<std::uint16_t>((frame[2] << 8) | frame[3]);
  const auto arg = static_cast<std::uint16_t>((frame[4] << 8) | frame[5]);

  switch (func) {
    case 0x03: {  // read holding registers
      if (arg == 0 || arg > 125) return exception(func, 0x03);
      Buffer rsp{unit_, func, static_cast<std::uint8_t>(arg * 2)};
      for (std::uint16_t i = 0; i < arg; ++i) {
        auto it = registers_.find(static_cast<std::uint16_t>(addr + i));
        if (it == registers_.end()) return exception(func, 0x02);
        rsp.push_back(static_cast<std::uint8_t>(it->second >> 8));
        rsp.push_back(static_cast<std::uint8_t>(it->second & 0xFF));
      }
      append_crc(rsp);
      return rsp;
    }
    case 0x06: {  // write single register
      if (registers_.find(addr) == registers_.end()) {
        return exception(func, 0x02);
      }
      registers_[addr] = arg;
      Buffer rsp(frame.begin(), frame.end() - 2);  // echo
      append_crc(rsp);
      return rsp;
    }
    default:
      return exception(func, 0x01);  // illegal function
  }
}

const ModbusMapping* ModbusAdapter::find(const ResourcePath& path) const {
  for (const auto& m : map_) {
    if (m.descriptor.path == path) return &m;
  }
  return nullptr;
}

std::vector<ResourceDescriptor> ModbusAdapter::discover() {
  std::vector<ResourceDescriptor> out;
  out.reserve(map_.size());
  for (const auto& m : map_) out.push_back(m.descriptor);
  return out;
}

Result<Buffer> ModbusAdapter::transact(Buffer request) {
  ++stats_.requests;
  stats_.pdu_bytes_out += request.size();
  Buffer rsp = device_.process(request);
  stats_.pdu_bytes_in += rsp.size();
  if (rsp.empty()) {
    ++stats_.protocol_errors;
    return Error{Error::Code::kTimeout, "modbus: no response"};
  }
  if (rsp.size() >= 2 && (rsp[1] & 0x80) != 0) {
    ++stats_.protocol_errors;
    return Error{Error::Code::kMalformed,
                 "modbus exception code " + std::to_string(rsp[2])};
  }
  return rsp;
}

Result<ResourceValue> ModbusAdapter::read(const ResourcePath& path) {
  const ModbusMapping* m = find(path);
  if (m == nullptr || !m->descriptor.readable) {
    return Error{Error::Code::kNotFound, "modbus: unmapped " + path.str()};
  }
  Buffer req{device_.unit_id(), 0x03,
             static_cast<std::uint8_t>(m->reg_addr >> 8),
             static_cast<std::uint8_t>(m->reg_addr & 0xFF), 0x00, 0x01};
  const std::uint16_t crc = crc16_ccitt(req);
  req.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  req.push_back(static_cast<std::uint8_t>(crc >> 8));
  auto rsp = transact(std::move(req));
  if (!rsp.ok()) return rsp.error();
  const Buffer& r = rsp.value();
  if (r.size() < 7 || r[2] != 2) {
    return Error{Error::Code::kMalformed, "modbus: bad read response"};
  }
  const auto raw = static_cast<std::uint16_t>((r[3] << 8) | r[4]);
  // Registers hold scaled fixed-point; expose engineering units.
  return ResourceValue{static_cast<double>(
                           static_cast<std::int16_t>(raw)) /
                       m->scale};
}

Status ModbusAdapter::write(const ResourcePath& path,
                            const ResourceValue& value) {
  const ModbusMapping* m = find(path);
  if (m == nullptr || !m->descriptor.writable) {
    return Error{Error::Code::kNotFound, "modbus: unmapped " + path.str()};
  }
  auto dv = value_as_double(value);
  if (!dv) {
    return Error{Error::Code::kMalformed, "modbus: non-numeric write"};
  }
  const auto raw = static_cast<std::uint16_t>(
      static_cast<std::int16_t>(*dv * m->scale));
  Buffer req{device_.unit_id(), 0x06,
             static_cast<std::uint8_t>(m->reg_addr >> 8),
             static_cast<std::uint8_t>(m->reg_addr & 0xFF),
             static_cast<std::uint8_t>(raw >> 8),
             static_cast<std::uint8_t>(raw & 0xFF)};
  const std::uint16_t crc = crc16_ccitt(req);
  req.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  req.push_back(static_cast<std::uint8_t>(crc >> 8));
  auto rsp = transact(std::move(req));
  if (!rsp.ok()) return rsp.error();
  return Status::success();
}

}  // namespace iiot::interop
