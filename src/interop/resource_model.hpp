// Unified device resource model (LwM2M/IPSO-style object/instance/
// resource identifiers) — the lingua franca the gateway translates every
// legacy protocol into (paper §III: middleware as the interoperability
// mechanism for heterogeneous and legacy components).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

namespace iiot::interop {

/// IPSO-style well-known object ids used across the repo's examples.
inline constexpr std::uint16_t kObjTemperature = 3303;
inline constexpr std::uint16_t kObjHumidity = 3304;
inline constexpr std::uint16_t kObjActuation = 3306;
inline constexpr std::uint16_t kObjEnergy = 3331;
/// IPSO resource ids.
inline constexpr std::uint16_t kResSensorValue = 5700;
inline constexpr std::uint16_t kResOnOff = 5850;
inline constexpr std::uint16_t kResDimmer = 5851;

struct ResourcePath {
  std::uint16_t object = 0;
  std::uint8_t instance = 0;
  std::uint16_t resource = 0;

  [[nodiscard]] std::string str() const {
    return std::to_string(object) + "/" + std::to_string(instance) + "/" +
           std::to_string(resource);
  }

  static std::optional<ResourcePath> parse(const std::string& s) {
    ResourcePath p;
    unsigned o = 0, i = 0, r = 0;
    if (std::sscanf(s.c_str(), "%u/%u/%u", &o, &i, &r) != 3) {
      return std::nullopt;
    }
    if (o > 0xFFFF || i > 0xFF || r > 0xFFFF) return std::nullopt;
    p.object = static_cast<std::uint16_t>(o);
    p.instance = static_cast<std::uint8_t>(i);
    p.resource = static_cast<std::uint16_t>(r);
    return p;
  }

  auto operator<=>(const ResourcePath&) const = default;
};

using ResourceValue = std::variant<double, std::int64_t, bool, std::string>;

[[nodiscard]] inline std::string value_to_string(const ResourceValue& v) {
  if (std::holds_alternative<double>(v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", std::get<double>(v));
    return buf;
  }
  if (std::holds_alternative<std::int64_t>(v)) {
    return std::to_string(std::get<std::int64_t>(v));
  }
  if (std::holds_alternative<bool>(v)) {
    return std::get<bool>(v) ? "true" : "false";
  }
  return std::get<std::string>(v);
}

[[nodiscard]] inline std::optional<double> value_as_double(
    const ResourceValue& v) {
  if (std::holds_alternative<double>(v)) return std::get<double>(v);
  if (std::holds_alternative<std::int64_t>(v)) {
    return static_cast<double>(std::get<std::int64_t>(v));
  }
  if (std::holds_alternative<bool>(v)) return std::get<bool>(v) ? 1.0 : 0.0;
  return std::nullopt;
}

struct ResourceDescriptor {
  ResourcePath path;
  std::string name;   // "zone temperature"
  std::string unit;   // "Cel"
  bool readable = true;
  bool writable = false;
};

}  // namespace iiot::interop
