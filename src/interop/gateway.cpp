#include "interop/gateway.hpp"

namespace iiot::interop {

void Gateway::add_device(const std::string& name, Adapter& adapter) {
  Device dev;
  dev.adapter = &adapter;
  dev.resources = adapter.discover();
  devices_[name] = std::move(dev);
}

std::size_t Gateway::resource_count() const {
  std::size_t n = 0;
  for (const auto& [_, d] : devices_) n += d.resources.size();
  return n;
}

Result<ResourceValue> Gateway::read(const std::string& device,
                                    const ResourcePath& path) {
  auto it = devices_.find(device);
  if (it == devices_.end()) {
    return Error{Error::Code::kNotFound, "gateway: no device " + device};
  }
  return it->second.adapter->read(path);
}

Status Gateway::write(const std::string& device, const ResourcePath& path,
                      const ResourceValue& value) {
  auto it = devices_.find(device);
  if (it == devices_.end()) {
    return Error{Error::Code::kNotFound, "gateway: no device " + device};
  }
  return it->second.adapter->write(path, value);
}

void Gateway::expose_coap(coap::Endpoint& ep) {
  for (auto& [name, dev] : devices_) {
    for (const auto& res : dev.resources) {
      const std::string path = "dev/" + name + "/" + res.path.str();
      Adapter* adapter = dev.adapter;
      const ResourcePath rpath = res.path;
      ep.add_resource(path, [this, adapter, rpath](
                                const coap::Request& req) {
        coap::Response rsp;
        if (req.method == coap::Code::kGet) {
          ++stats_.coap_reads;
          auto value = adapter->read(rpath);
          if (!value.ok()) {
            rsp.code = coap::Code::kNotFound;
            return rsp;
          }
          rsp.payload = to_buffer(value_to_string(value.value()));
          return rsp;
        }
        if (req.method == coap::Code::kPut) {
          ++stats_.coap_writes;
          const std::string body = to_string(req.payload);
          char* end = nullptr;
          const double v = std::strtod(body.c_str(), &end);
          Status st = end == body.c_str()
                          ? adapter->write(rpath, ResourceValue{body})
                          : adapter->write(rpath, ResourceValue{v});
          rsp.code = st.ok() ? coap::Code::kChanged
                             : coap::Code::kBadRequest;
          return rsp;
        }
        rsp.code = coap::Code::kMethodNotAllowed;
        return rsp;
      });
    }
  }
}

void Gateway::start() {
  running_ = true;
  if (!cmd_subscribed_) {
    cmd_subscribed_ = true;
    cmd_sub_ = bus_.subscribe(
        "cmd/#", [this](const std::string& topic, BytesView payload) {
          // cmd/<device>/<obj>/<inst>/<res>
          ++stats_.bus_commands;
          const std::size_t first = topic.find('/');
          if (first == std::string::npos) return;
          const std::size_t second = topic.find('/', first + 1);
          if (second == std::string::npos) return;
          const std::string device =
              topic.substr(first + 1, second - first - 1);
          auto path = ResourcePath::parse(topic.substr(second + 1));
          if (!path) return;
          const std::string body = to_string(payload);
          char* end = nullptr;
          const double v = std::strtod(body.c_str(), &end);
          if (end == body.c_str()) {
            (void)write(device, *path, ResourceValue{body});
          } else {
            (void)write(device, *path, ResourceValue{v});
          }
        });
  }
  poll_timer_ = sched_.schedule_after(cfg_.poll_interval, [this] { poll(); });
}

void Gateway::stop() {
  running_ = false;
  poll_timer_.cancel();
  if (cmd_subscribed_) {
    bus_.unsubscribe(cmd_sub_);
    cmd_subscribed_ = false;
  }
}

void Gateway::poll() {
  if (!running_) return;
  poll_timer_ = sched_.schedule_after(cfg_.poll_interval, [this] { poll(); });
  for (auto& [name, dev] : devices_) {
    for (const auto& res : dev.resources) {
      if (!res.readable) continue;
      ++stats_.polls;
      auto value = dev.adapter->read(res.path);
      if (!value.ok()) {
        ++stats_.poll_errors;
        continue;
      }
      bus_.publish(cfg_.site + "/" + name + "/" + res.path.str(),
                   value_to_string(value.value()));
    }
  }
}

}  // namespace iiot::interop
