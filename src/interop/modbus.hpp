// Modbus-RTU-class fieldbus device and its adapter.
//
// The device speaks genuine Modbus RTU framing — [unit][function][data...]
// [crc16 lo][crc16 hi] — with function 0x03 (read holding registers) and
// 0x06 (write single register), exceptions as 0x80|func + code. This is
// the paper's "many older standards dedicated for industrial applications
// that do not perfectly fit the Internet protocol stack" [10] made
// concrete: fixed-point register maps that the gateway has to scale and
// relabel into the unified model.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/crc.hpp"
#include "interop/adapter.hpp"

namespace iiot::interop {

/// Simulated PLC/drive with a 16-bit holding-register map.
class ModbusRtuDevice {
 public:
  explicit ModbusRtuDevice(std::uint8_t unit_id) : unit_(unit_id) {}

  void set_register(std::uint16_t addr, std::uint16_t value) {
    registers_[addr] = value;
  }
  [[nodiscard]] std::uint16_t reg(std::uint16_t addr) const {
    auto it = registers_.find(addr);
    return it == registers_.end() ? 0 : it->second;
  }

  /// Processes one RTU frame and returns the response frame (possibly an
  /// exception response). Malformed/mis-addressed frames return empty
  /// (silence on the bus).
  [[nodiscard]] Buffer process(BytesView frame);

  [[nodiscard]] std::uint8_t unit_id() const { return unit_; }

 private:
  [[nodiscard]] Buffer exception(std::uint8_t function,
                                 std::uint8_t code) const;

  std::uint8_t unit_;
  std::map<std::uint16_t, std::uint16_t> registers_;
};

/// Mapping of one register to one unified resource.
struct ModbusMapping {
  ResourceDescriptor descriptor;
  std::uint16_t reg_addr = 0;
  double scale = 100.0;  // resource value = register / scale
};

class ModbusAdapter : public Adapter {
 public:
  ModbusAdapter(ModbusRtuDevice& device, std::vector<ModbusMapping> map)
      : device_(device), map_(std::move(map)) {}

  [[nodiscard]] const char* protocol() const override { return "modbus-rtu"; }
  [[nodiscard]] std::vector<ResourceDescriptor> discover() override;
  [[nodiscard]] Result<ResourceValue> read(const ResourcePath& path) override;
  [[nodiscard]] Status write(const ResourcePath& path,
                             const ResourceValue& value) override;

 private:
  [[nodiscard]] const ModbusMapping* find(const ResourcePath& path) const;
  /// One request/response exchange on the simulated bus.
  [[nodiscard]] Result<Buffer> transact(Buffer request);

  ModbusRtuDevice& device_;
  std::vector<ModbusMapping> map_;
};

}  // namespace iiot::interop
