#include "transport/frag.hpp"

#include <cassert>

namespace iiot::transport {

std::vector<Buffer> fragment(BytesView datagram, std::size_t mtu,
                             std::uint16_t tag) {
  std::vector<Buffer> out;
  const std::size_t chunk = mtu > kFragHeader ? mtu - kFragHeader : 1;
  // The fragment index/count fields are one byte each; callers must keep
  // datagram/mtu combinations within 255 fragments.
  assert(datagram.empty() || (datagram.size() + chunk - 1) / chunk <= 255);
  const std::size_t count = datagram.empty()
                                ? 1
                                : (datagram.size() + chunk - 1) / chunk;
  for (std::size_t i = 0; i < count; ++i) {
    Buffer f;
    BufWriter w(f);
    w.u16(tag);
    w.u8(static_cast<std::uint8_t>(i));
    w.u8(static_cast<std::uint8_t>(count));
    const std::size_t off = i * chunk;
    const std::size_t len = std::min(chunk, datagram.size() - off);
    if (!datagram.empty()) w.bytes(datagram.subspan(off, len));
    out.push_back(std::move(f));
  }
  return out;
}

std::optional<Buffer> Reassembler::on_fragment(NodeId src, BytesView frag) {
  BufReader r(frag);
  auto tag = r.u16();
  auto index = r.u8();
  auto count = r.u8();
  if (!tag || !index || !count || *count == 0 || *index >= *count) {
    ++stats_.malformed;
    return std::nullopt;
  }
  Buffer body(r.rest().begin(), r.rest().end());
  if (*count == 1) {
    ++stats_.completed;
    return body;
  }
  sweep();
  const std::uint64_t key =
      (static_cast<std::uint64_t>(src) << 16) | *tag;
  Partial& p = partial_[key];
  if (p.pieces.empty()) {
    p.pieces.resize(*count);
    p.deadline = sched_.now() + timeout_;
  }
  if (p.pieces.size() != *count) {  // tag reuse with different shape
    p.pieces.assign(*count, {});
    p.received = 0;
    p.deadline = sched_.now() + timeout_;
  }
  if (p.pieces[*index].empty()) {
    p.pieces[*index] = std::move(body);
    ++p.received;
  }
  if (p.received < *count) return std::nullopt;
  Buffer whole;
  for (auto& piece : p.pieces) {
    whole.insert(whole.end(), piece.begin(), piece.end());
  }
  partial_.erase(key);
  ++stats_.completed;
  return whole;
}

void Reassembler::sweep() {
  const sim::Time now = sched_.now();
  for (auto it = partial_.begin(); it != partial_.end();) {
    if (it->second.deadline <= now) {
      ++stats_.expired;
      it = partial_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace iiot::transport
