// Datagram fragmentation/reassembly (6LoWPAN-style, RFC 4944 [12] in
// spirit): lets CoAP messages larger than a link frame cross the mesh.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "sim/scheduler.hpp"

namespace iiot::transport {

/// Per-fragment header: tag (datagram id), index, count.
inline constexpr std::size_t kFragHeader = 4;

/// Splits `datagram` into chunks of at most `mtu` payload bytes each,
/// prefixed with the fragment header. mtu must exceed kFragHeader.
std::vector<Buffer> fragment(BytesView datagram, std::size_t mtu,
                             std::uint16_t tag);

struct ReassemblyStats {
  std::uint64_t completed = 0;
  std::uint64_t expired = 0;
  std::uint64_t malformed = 0;
};

class Reassembler {
 public:
  explicit Reassembler(sim::Scheduler& sched,
                       sim::Duration timeout = 10'000'000)
      : sched_(sched), timeout_(timeout) {}

  /// Feeds one received fragment; returns the full datagram once the last
  /// missing piece arrives.
  std::optional<Buffer> on_fragment(NodeId src, BytesView frag);

  [[nodiscard]] const ReassemblyStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t in_flight() const { return partial_.size(); }

 private:
  struct Partial {
    std::vector<Buffer> pieces;
    std::size_t received = 0;
    sim::Time deadline = 0;
  };

  void sweep();

  sim::Scheduler& sched_;
  sim::Duration timeout_;
  ReassemblyStats stats_;
  std::unordered_map<std::uint64_t, Partial> partial_;
};

}  // namespace iiot::transport
