// Binds a CoAP endpoint to the RPL mesh: outgoing CoAP datagrams are
// fragmented and routed (up to the border router, or down a stored DAO
// route); incoming routed data is reassembled and fed to the endpoint.
//
// This is the glue realizing the paper's middleware story (§III-B): the
// same Endpoint class runs unchanged on a constrained mesh node and on a
// backend machine — only the transport differs.
#pragma once

#include <cstdint>

#include "coap/endpoint.hpp"
#include "net/rpl.hpp"
#include "transport/frag.hpp"

namespace iiot::transport {

class MeshTransport {
 public:
  /// `mtu` is the max network-layer payload per frame.
  MeshTransport(net::RplRouting& routing, sim::Scheduler& sched,
                std::size_t mtu = 80)
      : routing_(routing), reassembler_(sched), mtu_(mtu) {}

  /// Wires `ep` to this mesh. The endpoint's NodeId must match the
  /// routing node's id. Replaces the routing delivery handler.
  void bind(coap::Endpoint& ep) {
    endpoint_ = &ep;
    routing_.set_delivery_handler(
        [this](NodeId origin, BytesView payload, std::uint8_t) {
          auto whole = reassembler_.on_fragment(origin, payload);
          if (whole && endpoint_ != nullptr) {
            endpoint_->on_datagram(origin, *whole);
          }
        });
  }

  /// Send function to construct the Endpoint with.
  [[nodiscard]] coap::Endpoint::SendFn sender() {
    return [this](NodeId dst, Buffer bytes) {
      bool all_ok = true;
      for (auto& frag : fragment(bytes, mtu_, next_tag_++)) {
        if (!routing_.send_to(dst, std::move(frag))) all_ok = false;
      }
      return all_ok;
    };
  }

  [[nodiscard]] const ReassemblyStats& stats() const {
    return reassembler_.stats();
  }

 private:
  net::RplRouting& routing_;
  Reassembler reassembler_;
  std::size_t mtu_;
  std::uint16_t next_tag_ = 1;
  coap::Endpoint* endpoint_ = nullptr;
};

}  // namespace iiot::transport
