// Binds a CoAP endpoint to the RPL mesh: outgoing CoAP datagrams are
// fragmented and routed (up to the border router, or down a stored DAO
// route); incoming routed data is reassembled and fed to the endpoint.
//
// This is the glue realizing the paper's middleware story (§III-B): the
// same Endpoint class runs unchanged on a constrained mesh node and on a
// backend machine — only the transport differs.
#pragma once

#include <cstdint>
#include <optional>

#include "coap/endpoint.hpp"
#include "net/rpl.hpp"
#include "transport/frag.hpp"

namespace iiot::transport {

class MeshTransport {
 public:
  /// `mtu` is the max network-layer payload per frame.
  MeshTransport(net::RplRouting& routing, sim::Scheduler& sched,
                std::size_t mtu = 80)
      : routing_(routing), sched_(sched), reassembler_(sched), mtu_(mtu) {
    if (obs::MetricsRegistry* m = obs::metrics(sched_)) {
      const auto node = static_cast<std::int64_t>(routing_.id());
      m->attach_counter("transport", "rasm_completed", node,
                        &reassembler_.stats().completed, this);
      m->attach_counter("transport", "rasm_expired", node,
                        &reassembler_.stats().expired, this);
      m->attach_counter("transport", "rasm_malformed", node,
                        &reassembler_.stats().malformed, this);
    }
  }
  ~MeshTransport() {
    if (obs::MetricsRegistry* m = obs::metrics(sched_)) m->detach(this);
  }
  MeshTransport(const MeshTransport&) = delete;
  MeshTransport& operator=(const MeshTransport&) = delete;

  /// Wires `ep` to this mesh. The endpoint's NodeId must match the
  /// routing node's id. Replaces the routing delivery handler.
  void bind(coap::Endpoint& ep) {
    endpoint_ = &ep;
    routing_.set_delivery_handler(
        [this](NodeId origin, BytesView payload, std::uint8_t) {
          auto whole = reassembler_.on_fragment(origin, payload);
          if (whole) {
            // Reassembly completes in the trace of the *last* fragment
            // (the ambient trace set by the routing delivery upcall).
            if (obs::Tracer* t = obs::tracer(sched_)) {
              const obs::SpanRef s =
                  t->instant(t->current_trace(), routing_.id(),
                             obs::Layer::kTransport, "rasm");
              t->annotate(s, "bytes", whole->size());
            }
            if (endpoint_ != nullptr) endpoint_->on_datagram(origin, *whole);
          }
        });
  }

  /// Send function to construct the Endpoint with.
  [[nodiscard]] coap::Endpoint::SendFn sender() {
    return [this](NodeId dst, Buffer bytes) {
      // A datagram is one causal unit: if the caller carries no trace,
      // open one here so all its fragments share it.
      obs::Tracer* t = obs::tracer(sched_);
      std::optional<obs::TraceScope> auto_scope;
      if (t != nullptr && t->enabled() && t->current_trace() == 0) {
        auto_scope.emplace(
            t, t->start_trace(routing_.id(), obs::Layer::kTransport), 0);
      }
      bool all_ok = true;
      auto frags = fragment(bytes, mtu_, next_tag_++);
      const std::uint64_t nfrags = frags.size();
      for (auto& frag : frags) {
        if (obs::Tracer* t = obs::tracer(sched_)) {
          const obs::SpanRef s =
              t->instant(t->current_trace(), routing_.id(),
                         obs::Layer::kTransport, "frag");
          t->annotate(s, "of", nfrags);
        }
        if (!routing_.send_to(dst, std::move(frag))) all_ok = false;
      }
      return all_ok;
    };
  }

  [[nodiscard]] const ReassemblyStats& stats() const {
    return reassembler_.stats();
  }

 private:
  net::RplRouting& routing_;
  sim::Scheduler& sched_;
  Reassembler reassembler_;
  std::size_t mtu_;
  std::uint16_t next_tag_ = 1;
  coap::Endpoint* endpoint_ = nullptr;
};

}  // namespace iiot::transport
