// EWMA link quality estimation (ETX): drives RPL parent selection.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "common/types.hpp"

namespace iiot::net {

class LinkEstimator {
 public:
  explicit LinkEstimator(double alpha = 0.25) : alpha_(alpha) {}

  /// Records the outcome of a unicast attempt batch to `neighbor`:
  /// `attempts` transmissions yielding `acked` (0 or 1) delivery.
  void record_tx(NodeId neighbor, int attempts, bool acked) {
    auto& e = links_[neighbor];
    // Sampled ETX of this delivery: attempts needed per success.
    double sample = acked ? static_cast<double>(std::max(attempts, 1))
                          : kFailedSampleEtx;
    if (e.samples == 0) {
      e.etx = sample;
    } else {
      e.etx = (1.0 - alpha_) * e.etx + alpha_ * sample;
    }
    ++e.samples;
    if (acked) {
      e.consecutive_failures = 0;
    } else {
      ++e.consecutive_failures;
    }
  }

  /// Records an overheard frame from `neighbor` (keeps entry warm).
  void record_rx(NodeId neighbor) { ++links_[neighbor].rx; }

  [[nodiscard]] double etx(NodeId neighbor) const {
    auto it = links_.find(neighbor);
    return it == links_.end() || it->second.samples == 0
               ? kUnknownEtx
               : it->second.etx;
  }

  [[nodiscard]] int consecutive_failures(NodeId neighbor) const {
    auto it = links_.find(neighbor);
    return it == links_.end() ? 0 : it->second.consecutive_failures;
  }

  void forget(NodeId neighbor) { links_.erase(neighbor); }

  static constexpr double kUnknownEtx = 2.0;      // optimistic prior
  static constexpr double kFailedSampleEtx = 8.0; // penalty for total loss

 private:
  struct Entry {
    double etx = 0.0;
    std::uint32_t samples = 0;
    std::uint32_t rx = 0;
    int consecutive_failures = 0;
  };
  double alpha_;
  std::unordered_map<NodeId, Entry> links_;
};

}  // namespace iiot::net
