// Trickle timer (RFC 6206): adaptive-rate, density-aware dissemination
// used to pace RPL DIO transmissions. Exponentially backs off while the
// network is consistent; snaps back to Imin on inconsistency — this is
// what makes RPL control overhead scale with churn, not with time.
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/context.hpp"
#include "sim/scheduler.hpp"

namespace iiot::net {

struct TrickleConfig {
  sim::Duration imin = 1'000'000;  // 1 s
  int doublings = 8;               // Imax = Imin * 2^doublings
  int redundancy_k = 3;            // suppress if >= k consistent heard
};

class Trickle {
 public:
  Trickle(sim::Scheduler& sched, Rng rng, TrickleConfig cfg,
          std::function<void()> transmit)
      : sched_(sched), rng_(rng), cfg_(cfg), transmit_(std::move(transmit)) {}
  ~Trickle() { stop(); }
  Trickle(const Trickle&) = delete;
  Trickle& operator=(const Trickle&) = delete;

  void start() {
    running_ = true;
    interval_ = cfg_.imin;
    begin_interval();
  }

  void stop() {
    running_ = false;
    t_timer_.cancel();
    i_timer_.cancel();
  }

  /// Heard a consistent transmission: bump redundancy counter.
  void consistent() { ++counter_; }

  /// Heard an inconsistency: reset to the fastest rate.
  void inconsistent() {
    if (!running_) return;
    if (interval_ > cfg_.imin) {
      interval_ = cfg_.imin;
      note_reset();
      begin_interval();
    }
  }

  /// External reset (e.g. parent change): same as inconsistency but
  /// unconditional.
  void reset() {
    if (!running_) return;
    interval_ = cfg_.imin;
    note_reset();
    begin_interval();
  }

  [[nodiscard]] sim::Duration interval() const { return interval_; }
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t transmissions() const { return tx_count_; }
  [[nodiscard]] std::uint64_t suppressions() const { return suppressed_; }
  /// Snap-backs to Imin (each one is a control-plane storm trigger; the
  /// observability layer tracks them per node).
  [[nodiscard]] std::uint64_t resets() const { return resets_; }
  /// Stable address of the reset counter, for MetricsRegistry attachment.
  [[nodiscard]] const std::uint64_t* resets_slot() const { return &resets_; }
  /// Node the owning protocol runs on, for trace attribution of resets.
  void set_obs_node(NodeId id) { obs_node_ = id; }

 private:
  void note_reset() {
    ++resets_;
    if (obs::Tracer* t = obs::tracer(sched_)) {
      t->instant(0, obs_node_, obs::Layer::kNet, "trickle_reset");
    }
  }

  void begin_interval() {
    counter_ = 0;
    t_timer_.cancel();
    i_timer_.cancel();
    // t uniform in [I/2, I).
    const auto half = interval_ / 2;
    const auto t = half + static_cast<sim::Duration>(rng_.below(
                              static_cast<std::uint32_t>(half)));
    t_timer_ = sched_.schedule_after(t, [this] {
      if (!running_) return;
      if (counter_ < cfg_.redundancy_k) {
        ++tx_count_;
        transmit_();
      } else {
        ++suppressed_;
      }
    });
    i_timer_ = sched_.schedule_after(interval_, [this] {
      if (!running_) return;
      const sim::Duration imax = cfg_.imin << cfg_.doublings;
      interval_ = std::min<sim::Duration>(interval_ * 2, imax);
      begin_interval();
    });
  }

  sim::Scheduler& sched_;
  Rng rng_;
  TrickleConfig cfg_;
  std::function<void()> transmit_;
  bool running_ = false;
  sim::Duration interval_ = 0;
  int counter_ = 0;
  std::uint64_t tx_count_ = 0;
  std::uint64_t suppressed_ = 0;
  std::uint64_t resets_ = 0;
  NodeId obs_node_ = kInvalidNode;
  sim::EventHandle t_timer_;
  sim::EventHandle i_timer_;
};

}  // namespace iiot::net
