// RPL-class distance-vector routing over a DODAG (RFC 6550 style, [14]).
//
// Upward routes: every node selects a preferred parent minimizing
// rank(parent) + ETX-based link cost, advertises its own rank in
// Trickle-paced DIO broadcasts, and forwards data hop-by-hop toward the
// root. Downward routes: storing mode — DAOs travel up and each hop
// records target → next-hop-child. Version bumps at the root trigger
// global repair; losing all parents triggers local repair (poisoning +
// DIS solicitation).
//
// This is the routing substrate for the geographic-scalability and
// dependability experiments (E1–E4, E11): multi-hop latency, border-
// router load concentration, and root-failure detection all run on it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "mac/mac.hpp"
#include "net/link_estimator.hpp"
#include "net/messages.hpp"
#include "net/trickle.hpp"
#include "sim/scheduler.hpp"

namespace iiot::net {

struct RplConfig {
  TrickleConfig trickle{500'000, 8, 3};     // Imin 0.5 s
  sim::Duration dao_interval = 30'000'000;  // 30 s
  sim::Duration dis_interval = 5'000'000;   // orphan solicitation
  Rank parent_switch_threshold = 192;       // hysteresis
  /// DAGMaxRankIncrease (RFC 6550 §8.2.2.4): a node may not grow its rank
  /// more than this above the lowest rank it attained within the current
  /// DODAG version; past the bound it must detach and poison. Bounds
  /// count-to-infinity between nodes holding stale ranks for each other.
  /// 0 disables the check.
  Rank max_rank_increase = 7 * kMinHopRankIncrease;
  int max_parent_failures = 3;
  std::uint8_t max_hops = 32;
  bool downward_routes = true;
  /// Consecutive DAGMaxRankIncrease detachments before a node starts
  /// flagging distress in its DIS solicitations (0 disables escalation).
  /// The floor now *survives* orphaning (with one bounded slack grant per
  /// rejoin), so a node that keeps tripping the bound is genuinely unable
  /// to hold a legitimate rank — only a root version bump can help it.
  int distress_orphan_threshold = 3;
  /// Per-node rate limit on relaying distress toward the root.
  sim::Duration distress_relay_interval = 10'000'000;
  /// Root-side rate limit on distress-triggered global repairs.
  sim::Duration distress_repair_interval = 30'000'000;
};

struct RplStats {
  std::uint64_t dio_tx = 0;
  std::uint64_t dio_rx = 0;
  std::uint64_t dis_tx = 0;
  std::uint64_t dao_tx = 0;
  std::uint64_t data_originated = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t drops_no_route = 0;
  std::uint64_t drops_link = 0;
  std::uint64_t drops_ttl = 0;
  std::uint64_t drops_loop = 0;  // data-path loop detection (RFC 6550 §11.2)
  std::uint64_t parent_changes = 0;
  std::uint64_t distress_relayed = 0;  // distress reports sent/forwarded up
  std::uint64_t distress_repairs = 0;  // root: global repairs it triggered
};

class RplRouting {
 public:
  /// origin, payload, hops travelled.
  using DeliveryHandler =
      std::function<void(NodeId, BytesView, std::uint8_t)>;
  /// Raw hook for piggybacked protocols (RNFD gossip): src + full message.
  using RawHandler = std::function<void(NodeId, BytesView)>;

  RplRouting(mac::Mac& mac, sim::Scheduler& sched, Rng rng,
             RplConfig cfg = {});
  ~RplRouting();

  /// Starts this node as the DODAG root (border router).
  void start_root();
  /// Starts this node as an ordinary router/leaf.
  void start();
  void stop();

  /// Sends `payload` toward the root. Returns false if not joined or the
  /// MAC queue is full.
  bool send_up(Buffer payload);
  /// Root-only: sends `payload` down to `target` along stored DAO routes.
  bool send_down(NodeId target, Buffer payload);
  /// Convenience: up if not root, down if root.
  bool send_to(NodeId target, Buffer payload) {
    return is_root_ ? send_down(target, std::move(payload))
                    : send_up(std::move(payload));
  }

  void set_delivery_handler(DeliveryHandler h) { deliver_ = std::move(h); }
  void set_rnfd_handler(RawHandler h) { rnfd_raw_ = std::move(h); }
  /// In-network processing hook (TinyDB-style [31]): called at every hop
  /// for upward data, including the root. Return true to consume the
  /// message at this hop (it is not forwarded/delivered further). This is
  /// what enables in-network aggregation (bench E3).
  void set_forward_interceptor(
      std::function<bool(NodeId origin, BytesView)> fn) {
    interceptor_ = std::move(fn);
  }
  /// Fires whenever the preferred parent changes (old, new).
  void set_parent_change_handler(std::function<void(NodeId, NodeId)> h) {
    on_parent_change_ = std::move(h);
  }

  [[nodiscard]] bool is_root() const { return is_root_; }
  [[nodiscard]] bool joined() const { return is_root_ || rank_ < kInfiniteRank; }
  [[nodiscard]] Rank rank() const { return rank_; }
  /// True hop distance to the root (root = 0; 0xFF when not joined).
  [[nodiscard]] std::uint8_t hop_depth() const {
    return is_root_ ? 0 : depth_;
  }
  [[nodiscard]] NodeId preferred_parent() const { return parent_; }
  [[nodiscard]] std::uint8_t version() const { return version_; }
  [[nodiscard]] NodeId root_id() const { return dodag_root_; }
  [[nodiscard]] NodeId id() const { return mac_.id(); }
  [[nodiscard]] const RplStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t downward_table_size() const {
    return downward_.size();
  }
  [[nodiscard]] std::size_t neighbor_count() const {
    return neighbors_.size();
  }
  /// Last direct evidence that neighbor `n` is alive — a control message
  /// received from it, or a MAC ack for a unicast to it (0 if never).
  [[nodiscard]] sim::Time neighbor_last_heard(NodeId n) const {
    const auto it = neighbors_.find(n);
    return it == neighbors_.end() ? 0 : it->second.last_heard;
  }
  [[nodiscard]] LinkEstimator& link_estimator() { return links_; }
  [[nodiscard]] mac::Mac& mac() { return mac_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }

  /// Root-only: increments the DODAG version (global repair).
  void global_repair();
  /// Detaches from the DODAG: poison, then solicit (local repair).
  void local_repair();

 private:
  struct Neighbor {
    Rank rank = kInfiniteRank;
    std::uint8_t version = 0;
    std::uint8_t depth = 0xFF;
    sim::Time last_heard = 0;
  };

  void on_mac_receive(NodeId src, BytesView payload, double rssi);
  void handle_dio(NodeId src, const DioMsg& dio);
  void handle_dao(NodeId src, const DaoMsg& dao);
  void handle_data(NodeId src, DataMsg&& msg);

  void send_dio();
  void send_dis();
  void send_dao();
  void forward_up(DataMsg msg, bool allow_reroute);
  void forward_down(DataMsg msg);
  void select_parent();
  [[nodiscard]] Rank link_cost(NodeId neighbor) const;
  [[nodiscard]] Rank path_cost_via(NodeId neighbor) const;
  void become_orphan();
  /// Forwards a distress report one hop toward the root (or, at the root,
  /// considers a rate-limited global repair).
  void relay_distress(NodeId origin, std::uint8_t hops);
  [[nodiscard]] bool seen_recently(NodeId origin, SeqNo seq);
  /// Records a local delivery in the observability plane: "deliver"
  /// instant plus the end-to-end hop/latency histograms.
  void note_delivery(std::uint8_t hops);

  mac::Mac& mac_;
  sim::Scheduler& sched_;
  Rng rng_;
  RplConfig cfg_;
  Trickle trickle_;
  LinkEstimator links_;
  RplStats stats_;
  obs::Histogram e2e_latency_ms_;  // observed at this node's deliveries
  obs::Histogram e2e_hops_;

  bool running_ = false;
  bool is_root_ = false;
  Rank rank_ = kInfiniteRank;
  Rank advertised_rank_ = kInfiniteRank;  // rank at last trickle reset
  Rank lowest_rank_ = kInfiniteRank;      // per DODAG version (see config)
  /// Extra allowance above the floor, granted (bounded) when a rejoin
  /// after orphaning lands at a legitimately worse rank. Capped at
  /// max_rank_increase, so total rank growth per version is bounded by
  /// lowest_rank_ + 2 * max_rank_increase — count-to-infinity cannot
  /// ratchet past it no matter how many orphan episodes occur.
  Rank floor_slack_ = 0;
  /// Consecutive DAGMaxRankIncrease detachments in this version; cleared
  /// when the node regains a rank inside the original (slack-free) window.
  int ratchet_orphans_ = 0;
  bool rejoining_ = false;  // orphaned since the last finite rank
  sim::Time last_distress_relay_ = 0;
  sim::Time last_distress_repair_ = 0;
  int loop_hits_ = 0;           // recent data-path loop detections
  sim::Time last_loop_hit_ = 0;  // for the loop-hit decay window
  std::uint8_t depth_ = 0xFF;
  NodeId parent_ = kInvalidNode;
  std::uint8_t version_ = 0;
  NodeId dodag_root_ = kInvalidNode;
  SeqNo next_seq_ = 1;

  std::unordered_map<NodeId, Neighbor> neighbors_;
  std::unordered_map<NodeId, NodeId> downward_;  // target -> next-hop child

  DeliveryHandler deliver_;
  RawHandler rnfd_raw_;
  std::function<bool(NodeId, BytesView)> interceptor_;
  std::function<void(NodeId, NodeId)> on_parent_change_;

  sim::EventHandle dao_timer_;
  sim::EventHandle dis_timer_;

  // Duplicate suppression for routed data (origin, seq).
  std::deque<std::uint64_t> seen_fifo_;
  std::unordered_map<std::uint64_t, bool> seen_set_;
};

}  // namespace iiot::net
