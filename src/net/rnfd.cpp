#include "net/rnfd.hpp"

#include <algorithm>
#include <utility>

namespace iiot::net {

namespace {
constexpr std::uint8_t kSubtypePing = 0;
constexpr std::uint8_t kSubtypeGossip = 1;
}  // namespace

RnfdDetector::RnfdDetector(RplRouting& routing, sim::Scheduler& sched,
                           Rng rng, RnfdConfig cfg)
    : routing_(routing), sched_(sched), rng_(rng), cfg_(cfg) {
  if (obs::MetricsRegistry* m = obs::metrics(sched_)) {
    const auto node = static_cast<std::int64_t>(routing_.id());
    m->attach_counter("rnfd", "probes_sent", node, &stats_.probes_sent, this);
    m->attach_counter("rnfd", "probes_acked", node, &stats_.probes_acked,
                      this);
    m->attach_counter("rnfd", "probes_missed", node, &stats_.probes_missed,
                      this);
    m->attach_counter("rnfd", "gossip_tx", node, &stats_.gossip_tx, this);
    m->attach_counter("rnfd", "gossip_rx", node, &stats_.gossip_rx, this);
    m->attach_counter("rnfd", "epoch_advances", node,
                      &stats_.epoch_advances, this);
  }
}

RnfdDetector::~RnfdDetector() {
  if (obs::MetricsRegistry* m = obs::metrics(sched_)) m->detach(this);
}

bool RnfdDetector::is_sentinel() const {
  return !routing_.is_root() &&
         routing_.preferred_parent() == routing_.root_id() &&
         routing_.root_id() != kInvalidNode;
}

void RnfdDetector::start() {
  running_ = true;
  routing_.set_rnfd_handler(
      [this](NodeId src, BytesView msg) { on_gossip(src, msg); });
  schedule_probe();
  gossip_timer_ = sched_.schedule_after(
      cfg_.gossip_interval + rng_.below(static_cast<std::uint32_t>(
                                 cfg_.gossip_interval)),
      [this] { gossip(); });
}

void RnfdDetector::stop() {
  running_ = false;
  probe_timer_.cancel();
  gossip_timer_.cancel();
}

void RnfdDetector::schedule_probe() {
  if (!running_) return;
  const auto jitter = static_cast<sim::Duration>(
      rng_.below(static_cast<std::uint32_t>(cfg_.probe_jitter * 2)));
  const sim::Duration base =
      cfg_.probe_interval > cfg_.probe_jitter
          ? cfg_.probe_interval - cfg_.probe_jitter
          : cfg_.probe_interval;
  probe_timer_ =
      sched_.schedule_after(base + jitter, [this] { probe(); });
}

void RnfdDetector::probe() {
  if (!running_) return;
  schedule_probe();
  if (!is_sentinel()) return;  // only root-adjacent nodes probe
  cfrc_.join(routing_.id());
  Buffer ping;
  ping.push_back(static_cast<std::uint8_t>(MsgType::kRnfd));
  ping.push_back(kSubtypePing);
  ++stats_.probes_sent;
  routing_.mac().send(
      routing_.root_id(), std::move(ping),
      [this](const mac::SendStatus& st) {
        if (!running_) return;
        if (st.delivered) {
          ++stats_.probes_acked;
          consec_misses_ = 0;
          last_probe_ack_ = sched_.now();
          // Root demonstrably alive: clear any accumulated suspicion.
          if (cfrc_.suspect_count() > 0) {
            cfrc_.advance_epoch();
            cfrc_.join(routing_.id());
            ++stats_.epoch_advances;
            declared_dead_ = false;
            dirty_ = true;
            if (obs::Tracer* t = obs::tracer(sched_)) {
              t->instant(0, routing_.id(), obs::Layer::kNet,
                         "rnfd_root_alive");
            }
          }
        } else {
          ++stats_.probes_missed;
          // Inconclusive miss: the root is demonstrably alive (its DIO
          // was heard, or some unicast to it was MAC-acked, recently),
          // so the loss was contention, not death.
          const sim::Time alive = std::max(
              last_probe_ack_,
              routing_.neighbor_last_heard(routing_.root_id()));
          if (sched_.now() < alive + cfg_.liveness_window) {
            consec_misses_ = 0;
            return;
          }
          ++consec_misses_;
          if (consec_misses_ >= cfg_.misses_to_suspect &&
              !cfrc_.has_suspect(routing_.id())) {
            cfrc_.suspect(routing_.id());
            dirty_ = true;
            evaluate();
          }
        }
      });
}

void RnfdDetector::gossip() {
  if (!running_) return;
  gossip_timer_ =
      sched_.schedule_after(cfg_.gossip_interval, [this] { gossip(); });
  // Event-driven gossip alone cannot converge over a lossy broadcast
  // medium: a node that misses the *one* dissemination of an epoch
  // advance would keep a stale verdict forever (nobody re-sends once the
  // network is quiet). A slow anti-entropy round bounds that staleness.
  if (!dirty_ && ++quiet_rounds_ < cfg_.anti_entropy_rounds) return;
  quiet_rounds_ = 0;
  dirty_ = false;
  Buffer out;
  out.push_back(static_cast<std::uint8_t>(MsgType::kRnfd));
  out.push_back(kSubtypeGossip);
  BufWriter w(out);
  cfrc_.encode(w);
  ++stats_.gossip_tx;
  routing_.mac().send(kBroadcastNode, std::move(out));
}

void RnfdDetector::on_gossip(NodeId src, BytesView full) {
  (void)src;
  if (!running_ || full.size() < 2) return;
  if (full[1] == kSubtypePing) return;  // pings are MAC-ack-only
  BufReader r(full.subspan(2));
  auto remote = crdt::Cfrc::decode(r);
  if (!remote) return;
  ++stats_.gossip_rx;
  const auto old_epoch = cfrc_.epoch();
  const auto old_count = cfrc_.suspect_count();
  cfrc_.merge(*remote);
  if (cfrc_.epoch() != old_epoch) {
    declared_dead_ = false;
    consec_misses_ = 0;  // root proven alive by another sentinel
    dirty_ = true;
  } else if (cfrc_.suspect_count() != old_count) {
    dirty_ = true;  // propagate new evidence onward
  }
  evaluate();
}

void RnfdDetector::evaluate() {
  if (declared_dead_) return;
  const auto suspects = cfrc_.suspect_count();
  if (suspects >= static_cast<std::size_t>(cfg_.quorum_min) &&
      cfrc_.suspicion_ratio() >= cfg_.quorum_ratio) {
    declared_dead_ = true;
    if (obs::Tracer* t = obs::tracer(sched_)) {
      const obs::SpanRef s = t->instant(0, routing_.id(), obs::Layer::kNet,
                                        "rnfd_root_dead");
      t->annotate(s, "suspects", suspects);
    }
    if (on_failure_) on_failure_();
  }
}

// ------------------------------------------------------ baseline detector

KeepaliveDetector::KeepaliveDetector(RplRouting& routing,
                                     sim::Scheduler& sched, Rng rng,
                                     KeepaliveConfig cfg)
    : routing_(routing), sched_(sched), rng_(rng), cfg_(cfg) {}

void KeepaliveDetector::start() {
  running_ = true;
  schedule_probe();
}

void KeepaliveDetector::stop() {
  running_ = false;
  probe_timer_.cancel();
}

void KeepaliveDetector::schedule_probe() {
  if (!running_) return;
  const auto jitter = static_cast<sim::Duration>(
      rng_.below(static_cast<std::uint32_t>(cfg_.probe_jitter * 2)));
  const sim::Duration base =
      cfg_.probe_interval > cfg_.probe_jitter
          ? cfg_.probe_interval - cfg_.probe_jitter
          : cfg_.probe_interval;
  probe_timer_ = sched_.schedule_after(base + jitter, [this] { probe(); });
}

void KeepaliveDetector::probe() {
  if (!running_) return;
  schedule_probe();
  // Only nodes adjacent to the root can probe it at the link layer —
  // the same sentinel population RNFD uses, so the comparison is fair.
  if (routing_.preferred_parent() != routing_.root_id() ||
      routing_.root_id() == kInvalidNode) {
    return;
  }
  Buffer ping;
  ping.push_back(static_cast<std::uint8_t>(MsgType::kRnfd));
  ping.push_back(kSubtypePing);
  ++probes_sent_;
  routing_.mac().send(routing_.root_id(), std::move(ping),
                      [this](const mac::SendStatus& st) {
                        if (!running_) return;
                        if (st.delivered) {
                          misses_ = 0;
                          declared_dead_ = false;
                          return;
                        }
                        if (++misses_ >= cfg_.k_missed && !declared_dead_) {
                          declared_dead_ = true;
                          if (on_failure_) on_failure_();
                        }
                      });
}

}  // namespace iiot::net
