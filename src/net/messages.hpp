// Network-layer message codecs (RPL-class control + data plane).
//
// All messages serialize to bytes before hitting the MAC so that frame
// sizes — and hence airtime and energy — are real.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace iiot::net {

/// Rank is RPL-style: root = kMinHopRankIncrease, unreachable = infinite.
using Rank = std::uint16_t;
inline constexpr Rank kInfiniteRank = 0xFFFF;
inline constexpr Rank kMinHopRankIncrease = 256;

enum class MsgType : std::uint8_t {
  kDio = 1,   // DODAG Information Object (broadcast, trickled)
  kDis = 2,   // DODAG Information Solicitation (broadcast)
  kDao = 3,   // Destination Advertisement Object (unicast to parent)
  kData = 4,  // application payload, routed hop-by-hop
  kRnfd = 5,  // RNFD CFRC gossip (broadcast)
  kDistress = 6,  // sustained-inconsistency report, relayed up to the root
};

struct DioMsg {
  std::uint8_t version = 0;
  Rank rank = kInfiniteRank;
  NodeId dodag_root = kInvalidNode;
  std::uint8_t depth = 0xFF;  // true hop distance to the root

  void encode(Buffer& out) const {
    BufWriter w(out);
    w.u8(static_cast<std::uint8_t>(MsgType::kDio));
    w.u8(version);
    w.u16(rank);
    w.u32(dodag_root);
    w.u8(depth);
  }
  static std::optional<DioMsg> decode(BufReader& r) {
    DioMsg m;
    auto v = r.u8();
    auto rank = r.u16();
    auto root = r.u32();
    auto depth = r.u8();
    if (!v || !rank || !root || !depth) return std::nullopt;
    m.version = *v;
    m.rank = *rank;
    m.dodag_root = *root;
    m.depth = *depth;
    return m;
  }
};

struct DaoMsg {
  NodeId target = kInvalidNode;  // node advertising downward reachability

  void encode(Buffer& out) const {
    BufWriter w(out);
    w.u8(static_cast<std::uint8_t>(MsgType::kDao));
    w.u32(target);
  }
  static std::optional<DaoMsg> decode(BufReader& r) {
    auto t = r.u32();
    if (!t) return std::nullopt;
    return DaoMsg{*t};
  }
};

struct DataMsg {
  NodeId origin = kInvalidNode;
  NodeId dest = kInvalidNode;  // kInvalidNode means "the root"
  SeqNo seq = 0;
  std::uint8_t hops = 0;
  Buffer payload;

  void encode(Buffer& out) const {
    BufWriter w(out);
    w.u8(static_cast<std::uint8_t>(MsgType::kData));
    w.u32(origin);
    w.u32(dest);
    w.u32(seq);
    w.u8(hops);
    w.lp_bytes(payload);
  }
  static std::optional<DataMsg> decode(BufReader& r) {
    DataMsg m;
    auto o = r.u32();
    auto d = r.u32();
    auto s = r.u32();
    auto h = r.u8();
    auto p = r.lp_bytes();
    if (!o || !d || !s || !h || !p) return std::nullopt;
    m.origin = *o;
    m.dest = *d;
    m.seq = *s;
    m.hops = *h;
    m.payload = std::move(*p);
    return m;
  }
};

/// A node stuck in repeated DAGMaxRankIncrease detachments asks the root
/// for a global repair. Originated by a *joined* neighbor on behalf of the
/// distressed orphan (who by definition has no route), then relayed
/// parent-by-parent; the root rate-limits the resulting version bumps.
struct DistressMsg {
  NodeId origin = kInvalidNode;  // the distressed node itself
  std::uint8_t hops = 0;         // relay hops travelled (TTL guard)

  void encode(Buffer& out) const {
    BufWriter w(out);
    w.u8(static_cast<std::uint8_t>(MsgType::kDistress));
    w.u32(origin);
    w.u8(hops);
  }
  static std::optional<DistressMsg> decode(BufReader& r) {
    auto o = r.u32();
    auto h = r.u8();
    if (!o || !h) return std::nullopt;
    return DistressMsg{*o, *h};
  }
};

inline std::optional<MsgType> peek_type(BytesView bytes) {
  if (bytes.empty()) return std::nullopt;
  auto t = bytes[0];
  if (t < 1 || t > 6) return std::nullopt;
  return static_cast<MsgType>(t);
}

}  // namespace iiot::net
