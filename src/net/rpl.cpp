#include "net/rpl.hpp"

#include <algorithm>
#include <optional>
#include <utility>

namespace iiot::net {

namespace {

// Data-path loop escalation (handle_data): this many detections from the
// same parent, each within the decay window of the last, trigger a local
// repair. Sized so a real cycle carrying periodic traffic escalates in
// seconds while isolated stale in-flight frames never accumulate.
constexpr int kLoopRepairThreshold = 8;
constexpr sim::Duration kLoopHitWindow = 10'000'000;

}  // namespace

RplRouting::RplRouting(mac::Mac& mac, sim::Scheduler& sched, Rng rng,
                       RplConfig cfg)
    : mac_(mac),
      sched_(sched),
      rng_(rng),
      cfg_(cfg),
      trickle_(sched, rng.fork(0x7121), cfg.trickle, [this] { send_dio(); }) {
  trickle_.set_obs_node(mac_.id());
  if (obs::MetricsRegistry* m = obs::metrics(sched_)) {
    const auto node = static_cast<std::int64_t>(mac_.id());
    m->attach_counter("net", "dio_tx", node, &stats_.dio_tx, this);
    m->attach_counter("net", "dio_rx", node, &stats_.dio_rx, this);
    m->attach_counter("net", "dis_tx", node, &stats_.dis_tx, this);
    m->attach_counter("net", "dao_tx", node, &stats_.dao_tx, this);
    m->attach_counter("net", "data_originated", node,
                      &stats_.data_originated, this);
    m->attach_counter("net", "data_forwarded", node, &stats_.data_forwarded,
                      this);
    m->attach_counter("net", "data_delivered", node, &stats_.data_delivered,
                      this);
    m->attach_counter("net", "drops_no_route", node, &stats_.drops_no_route,
                      this);
    m->attach_counter("net", "drops_link", node, &stats_.drops_link, this);
    m->attach_counter("net", "drops_ttl", node, &stats_.drops_ttl, this);
    m->attach_counter("net", "drops_loop", node, &stats_.drops_loop, this);
    m->attach_counter("net", "parent_changes", node, &stats_.parent_changes,
                      this);
    m->attach_counter("net", "trickle_resets", node, trickle_.resets_slot(),
                      this);
    e2e_latency_ms_ = m->histogram(
        "net", "e2e_latency_ms", node,
        {2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000});
    e2e_hops_ =
        m->histogram("net", "e2e_hops", node, {1, 2, 3, 4, 6, 8, 12, 16, 24});
  }
}

RplRouting::~RplRouting() {
  if (obs::MetricsRegistry* m = obs::metrics(sched_)) m->detach(this);
}

void RplRouting::start_root() {
  running_ = true;
  is_root_ = true;
  rank_ = kMinHopRankIncrease;
  dodag_root_ = mac_.id();
  mac_.set_receive_handler([this](NodeId src, BytesView p, double rssi) {
    on_mac_receive(src, p, rssi);
  });
  trickle_.start();
}

void RplRouting::start() {
  running_ = true;
  is_root_ = false;
  rank_ = kInfiniteRank;
  lowest_rank_ = kInfiniteRank;
  floor_slack_ = 0;
  ratchet_orphans_ = 0;
  rejoining_ = false;
  advertised_rank_ = kInfiniteRank;
  mac_.set_receive_handler([this](NodeId src, BytesView p, double rssi) {
    on_mac_receive(src, p, rssi);
  });
  trickle_.start();
  // Solicit DIOs while orphaned.
  dis_timer_ = sched_.schedule_after(
      cfg_.dis_interval / 2 + rng_.below(static_cast<std::uint32_t>(
                                 cfg_.dis_interval / 2)),
      [this] { send_dis(); });
}

void RplRouting::stop() {
  running_ = false;
  trickle_.stop();
  dao_timer_.cancel();
  dis_timer_.cancel();
  // Power-off semantics: volatile protocol state is lost (a rebooting
  // node rejoins from scratch); statistics survive for post-mortems.
  if (!is_root_) {
    parent_ = kInvalidNode;
    rank_ = kInfiniteRank;
    depth_ = 0xFF;
    neighbors_.clear();
  }
  downward_.clear();
}

// ----------------------------------------------------------- control plane

void RplRouting::send_dio() {
  if (!running_) return;
  DioMsg dio{version_, rank_, dodag_root_, hop_depth()};
  Buffer out;
  dio.encode(out);
  ++stats_.dio_tx;
  advertised_rank_ = rank_;
  mac_.send(kBroadcastNode, std::move(out));
}

void RplRouting::send_dis() {
  if (!running_ || joined()) return;
  Buffer out;
  out.push_back(static_cast<std::uint8_t>(MsgType::kDis));
  // Distressed orphans (repeated DAGMaxRankIncrease detachments) flag the
  // solicitation; a joined neighbor relays the flag to the root, which can
  // answer with a global repair. The extra byte is ignored by receivers
  // that only look at the type octet, so the wire stays compatible.
  if (cfg_.distress_orphan_threshold > 0 &&
      ratchet_orphans_ >= cfg_.distress_orphan_threshold) {
    out.push_back(0x01);
  }
  ++stats_.dis_tx;
  mac_.send(kBroadcastNode, std::move(out));
  dis_timer_ =
      sched_.schedule_after(cfg_.dis_interval, [this] { send_dis(); });
}

void RplRouting::send_dao() {
  if (!running_ || !joined() || is_root_ || !cfg_.downward_routes) return;
  if (parent_ != kInvalidNode) {
    DaoMsg dao{mac_.id()};
    Buffer out;
    dao.encode(out);
    ++stats_.dao_tx;
    mac_.send(parent_, std::move(out));
  }
  dao_timer_ =
      sched_.schedule_after(cfg_.dao_interval, [this] { send_dao(); });
}

void RplRouting::on_mac_receive(NodeId src, BytesView payload, double rssi) {
  (void)rssi;
  if (!running_) return;
  links_.record_rx(src);
  auto type = peek_type(payload);
  if (!type) return;
  BufReader r(payload.subspan(1));
  switch (*type) {
    case MsgType::kDio: {
      BufReader full(payload);
      full.skip(1);
      if (auto dio = DioMsg::decode(full)) handle_dio(src, *dio);
      break;
    }
    case MsgType::kDis:
      // Someone is orphaned nearby: answer quickly.
      if (joined()) {
        trickle_.inconsistent();
        // Distress flag: the orphan cannot hold a legitimate rank in this
        // version — relay its plea toward the version authority.
        if (payload.size() >= 2 && (payload[1] & 0x01) != 0) {
          relay_distress(src, 0);
        }
      }
      break;
    case MsgType::kDistress:
      if (auto d = DistressMsg::decode(r)) relay_distress(d->origin, d->hops);
      break;
    case MsgType::kDao:
      if (auto dao = DaoMsg::decode(r)) handle_dao(src, *dao);
      break;
    case MsgType::kData: {
      if (auto msg = DataMsg::decode(r)) handle_data(src, std::move(*msg));
      break;
    }
    case MsgType::kRnfd:
      if (rnfd_raw_) rnfd_raw_(src, payload);
      break;
  }
}

void RplRouting::handle_dio(NodeId src, const DioMsg& dio) {
  ++stats_.dio_rx;
  if (is_root_) {
    // The root is the version authority for its own DODAG. Hearing a
    // *newer* version of itself (stale state from a past incarnation, or
    // a corrupted DIO that poisoned the mesh with a phantom future
    // version) would otherwise strand every node forever: version only
    // moves forward, so the root's honest DIOs all look stale. Jump past
    // the imposter and re-advertise — serial-number arithmetic everywhere
    // else makes the mesh follow.
    const auto ahead = static_cast<std::uint8_t>(dio.version - version_);
    if (dio.dodag_root == dodag_root_ && ahead > 0 && ahead < 128) {
      version_ = static_cast<std::uint8_t>(dio.version + 1);
      downward_.clear();
      trickle_.reset();
      return;
    }
    // Otherwise the root only checks consistency of what it hears. A
    // heard DIO is only redundant with ours if it advertises a rank at
    // least as good (RFC 6206 suppression presumes the transmissions
    // carry the same information) — for the root that is never true, so
    // the rank anchor of the whole DODAG cannot be suppressed into
    // silence by its neighbors' chatter.
    if (dio.version == version_ && dio.rank <= rank_) {
      trickle_.consistent();
    }
    return;
  }
  if (dodag_root_ == kInvalidNode) dodag_root_ = dio.dodag_root;
  if (dio.dodag_root != dodag_root_) return;  // different DODAG: ignore

  // Version handling: a newer version obsoletes all state (global repair).
  const auto newer = static_cast<std::uint8_t>(dio.version - version_);
  if (newer > 0 && newer < 128) {
    version_ = dio.version;
    neighbors_.clear();
    parent_ = kInvalidNode;
    rank_ = kInfiniteRank;
    lowest_rank_ = kInfiniteRank;  // DAGMaxRankIncrease is per version
    floor_slack_ = 0;
    ratchet_orphans_ = 0;
    rejoining_ = false;
    trickle_.inconsistent();
  } else if (newer != 0) {
    // Stale version: inconsistent, let our DIO correct the sender.
    trickle_.inconsistent();
    return;
  }

  auto& nb = neighbors_[src];
  nb.rank = dio.rank;
  nb.version = dio.version;
  nb.depth = dio.depth;
  nb.last_heard = sched_.now();

  // Trickle resets happen inside select_parent on real topology events
  // (join, parent switch, orphaned) — RFC 6550 semantics. Mere rank
  // drift from ETX jitter must NOT reset, or the control plane turns
  // into a DIO storm (especially costly on duty-cycled MACs, where a
  // broadcast occupies a full wake interval).
  const NodeId parent_before = parent_;
  select_parent();
  // Redundancy suppression counts only DIOs whose advertised rank is at
  // least as good as ours: a worse-ranked neighbor's DIO does not carry
  // the information we would send (we are a candidate parent for it, not
  // the reverse), and letting such chatter suppress the better-ranked
  // nodes silences exactly the advertisements the rank gradient — and
  // loop repair — depend on.
  if (parent_ == parent_before && dio.rank <= rank_) trickle_.consistent();
}

void RplRouting::handle_dao(NodeId src, const DaoMsg& dao) {
  if (!cfg_.downward_routes) return;
  downward_[dao.target] = src;
  if (!is_root_ && parent_ != kInvalidNode) {
    // Storing mode: propagate reachability up the DODAG.
    DaoMsg fwd{dao.target};
    Buffer out;
    fwd.encode(out);
    ++stats_.dao_tx;
    mac_.send(parent_, std::move(out));
  }
}

// -------------------------------------------------------------- data plane

bool RplRouting::send_up(Buffer payload) {
  if (!running_ || !joined()) return false;
  // Callers that carry no trace (e.g. a raw protocol driver) still get an
  // end-to-end trace per message when tracing is on.
  obs::Tracer* t = obs::tracer(sched_);
  std::optional<obs::TraceScope> auto_scope;
  if (t != nullptr && t->enabled() && t->current_trace() == 0) {
    auto_scope.emplace(t, t->start_trace(mac_.id(), obs::Layer::kNet), 0);
  }
  DataMsg msg;
  msg.origin = mac_.id();
  msg.dest = kInvalidNode;
  msg.seq = next_seq_++;
  msg.hops = 0;
  msg.payload = std::move(payload);
  ++stats_.data_originated;
  if (is_root_) {
    ++stats_.data_delivered;
    note_delivery(0);
    if (deliver_) deliver_(msg.origin, msg.payload, 0);
    return true;
  }
  forward_up(std::move(msg), true);
  return true;
}

bool RplRouting::send_down(NodeId target, Buffer payload) {
  if (!running_ || !is_root_ || !cfg_.downward_routes) return false;
  obs::Tracer* t = obs::tracer(sched_);
  std::optional<obs::TraceScope> auto_scope;
  if (t != nullptr && t->enabled() && t->current_trace() == 0) {
    auto_scope.emplace(t, t->start_trace(mac_.id(), obs::Layer::kNet), 0);
  }
  if (target == mac_.id()) {
    note_delivery(0);
    if (deliver_) deliver_(mac_.id(), payload, 0);
    return true;
  }
  if (downward_.find(target) == downward_.end()) {
    ++stats_.drops_no_route;
    return false;
  }
  DataMsg msg;
  msg.origin = mac_.id();
  msg.dest = target;
  msg.seq = next_seq_++;
  msg.hops = 0;
  msg.payload = std::move(payload);
  ++stats_.data_originated;
  forward_down(std::move(msg));
  return true;
}

void RplRouting::handle_data(NodeId src, DataMsg&& msg) {
  if (seen_recently(msg.origin, msg.seq)) return;
  if (msg.dest == kInvalidNode) {
    // Upward traffic: give the in-network processing hook first refusal.
    if (interceptor_ && interceptor_(msg.origin, msg.payload)) return;
    if (is_root_) {
      ++stats_.data_delivered;
      note_delivery(msg.hops);
      if (deliver_) deliver_(msg.origin, msg.payload, msg.hops);
      return;
    }
    // Data-path loop detection (RFC 6550 §11.2): an upward packet from
    // our own preferred parent means each of us believes the other is
    // closer to the root — a cycle built on mutually stale ranks. The
    // sighting may also be a stale in-flight frame from an instant ago,
    // so nothing is torn down on first sight; DROP the packet (forwarding
    // it back would let one trapped packet ping-pong its whole TTL away,
    // which on a duty-cycled MAC starves the very DIO exchange repair
    // depends on) and reset trickle to re-advertise promptly. If the
    // looping persists, escalate in two stages: first a DIO exempt from
    // trickle's redundancy suppression (in a dense neighborhood everyone
    // else's chatter suppresses exactly the one DIO that corrects the
    // stale view of us), then a local repair (§11.2.2.3): detach,
    // poison, and solicit fresh state.
    if (src == parent_ && parent_ != kInvalidNode) {
      trickle_.inconsistent();
      ++stats_.drops_loop;
      const sim::Time now = sched_.now();
      loop_hits_ = now < last_loop_hit_ + kLoopHitWindow ? loop_hits_ + 1 : 1;
      last_loop_hit_ = now;
      if (loop_hits_ == kLoopRepairThreshold) {
        send_dio();
      } else if (loop_hits_ >= 2 * kLoopRepairThreshold) {
        loop_hits_ = 0;
        // Drop the parent's cached entry before detaching, or the next
        // DIO from anyone re-selects it through the very stale rank
        // that built the cycle and reinstates it wholesale.
        neighbors_.erase(parent_);
        links_.forget(parent_);
        become_orphan();
      }
      return;
    }
    ++stats_.data_forwarded;
    forward_up(std::move(msg), true);
    return;
  }
  // Downward traffic.
  if (msg.dest == mac_.id()) {
    ++stats_.data_delivered;
    note_delivery(msg.hops);
    if (deliver_) deliver_(msg.origin, msg.payload, msg.hops);
    return;
  }
  ++stats_.data_forwarded;
  forward_down(std::move(msg));
}

void RplRouting::forward_up(DataMsg msg, bool allow_reroute) {
  obs::Tracer* t = obs::tracer(sched_);
  if (msg.hops >= cfg_.max_hops) {
    ++stats_.drops_ttl;
    if (t != nullptr) {
      t->instant(t->current_trace(), mac_.id(), obs::Layer::kNet,
                 "drop_ttl");
    }
    return;
  }
  if (parent_ == kInvalidNode) {
    ++stats_.drops_no_route;
    if (t != nullptr) {
      t->instant(t->current_trace(), mac_.id(), obs::Layer::kNet,
                 "drop_no_route");
    }
    return;
  }
  ++msg.hops;
  Buffer out;
  msg.encode(out);
  const NodeId via = parent_;
  // One "hop" span per forwarding attempt: it covers the MAC transmission
  // (queueing, strobing, retries) and closes when the MAC reports the
  // outcome. The ambient scope makes the MAC enqueue nest under it.
  obs::SpanRef hop = 0;
  obs::TraceId tr = 0;
  if (t != nullptr) {
    tr = t->current_trace();
    hop = t->begin(tr, mac_.id(), obs::Layer::kNet, "hop");
  }
  obs::TraceScope hop_scope(t, tr, hop);
  mac_.send(via, std::move(out),
            [this, msg = std::move(msg), via, allow_reroute,
             hop](const mac::SendStatus& st) mutable {
              if (obs::Tracer* tc = obs::tracer(sched_)) {
                tc->end(hop, "delivered", st.delivered ? 1 : 0);
              }
              links_.record_tx(via, st.attempts, st.delivered);
              if (st.delivered) {
                // A MAC ack is direct proof the neighbor is alive;
                // liveness consumers (RNFD) read neighbor_last_heard.
                if (auto it = neighbors_.find(via); it != neighbors_.end()) {
                  it->second.last_heard = sched_.now();
                }
                return;
              }
              if (links_.consecutive_failures(via) >=
                  cfg_.max_parent_failures) {
                neighbors_.erase(via);
                links_.forget(via);
                select_parent();
              }
              if (allow_reroute && parent_ != kInvalidNode &&
                  parent_ != via) {
                --msg.hops;  // not actually travelled
                forward_up(std::move(msg), false);
              } else {
                ++stats_.drops_link;
              }
            });
}

void RplRouting::forward_down(DataMsg msg) {
  obs::Tracer* t = obs::tracer(sched_);
  if (msg.hops >= cfg_.max_hops) {
    ++stats_.drops_ttl;
    if (t != nullptr) {
      t->instant(t->current_trace(), mac_.id(), obs::Layer::kNet,
                 "drop_ttl");
    }
    return;
  }
  auto it = downward_.find(msg.dest);
  if (it == downward_.end()) {
    ++stats_.drops_no_route;
    if (t != nullptr) {
      t->instant(t->current_trace(), mac_.id(), obs::Layer::kNet,
                 "drop_no_route");
    }
    return;
  }
  ++msg.hops;
  const NodeId via = it->second;
  Buffer out;
  msg.encode(out);
  obs::SpanRef hop = 0;
  obs::TraceId tr = 0;
  if (t != nullptr) {
    tr = t->current_trace();
    hop = t->begin(tr, mac_.id(), obs::Layer::kNet, "hop");
  }
  obs::TraceScope hop_scope(t, tr, hop);
  mac_.send(via, std::move(out), [this, via, hop](const mac::SendStatus& st) {
    if (obs::Tracer* tc = obs::tracer(sched_)) {
      tc->end(hop, "delivered", st.delivered ? 1 : 0);
    }
    links_.record_tx(via, st.attempts, st.delivered);
    if (!st.delivered) {
      ++stats_.drops_link;
      // Stale downward route: remove entries through this child.
      for (auto e = downward_.begin(); e != downward_.end();) {
        e = e->second == via ? downward_.erase(e) : std::next(e);
      }
    }
  });
}

// --------------------------------------------------------- parent selection

Rank RplRouting::link_cost(NodeId neighbor) const {
  const double etx = links_.etx(neighbor);
  const double cost = etx * kMinHopRankIncrease;
  return static_cast<Rank>(std::clamp(
      cost, static_cast<double>(kMinHopRankIncrease),
      static_cast<double>(4 * kMinHopRankIncrease)));
}

Rank RplRouting::path_cost_via(NodeId neighbor) const {
  auto it = neighbors_.find(neighbor);
  if (it == neighbors_.end() || it->second.rank >= kInfiniteRank) {
    return kInfiniteRank;
  }
  const std::uint32_t total = it->second.rank + link_cost(neighbor);
  return total >= kInfiniteRank ? kInfiniteRank
                                : static_cast<Rank>(total);
}

void RplRouting::select_parent() {
  if (is_root_) return;
  NodeId best = kInvalidNode;
  Rank best_cost = kInfiniteRank;
  for (const auto& [n, nb] : neighbors_) {
    if (nb.version != version_) continue;
    const Rank c = path_cost_via(n);
    if (c < best_cost) {
      best_cost = c;
      best = n;
    }
  }
  if (best == kInvalidNode) {
    become_orphan();
    return;
  }
  const bool had_parent = parent_ != kInvalidNode;
  const Rank current_cost = had_parent ? path_cost_via(parent_) : kInfiniteRank;
  if (!had_parent || best_cost + cfg_.parent_switch_threshold < current_cost ||
      neighbors_.find(parent_) == neighbors_.end()) {
    if (parent_ != best) {
      ++stats_.parent_changes;
      const NodeId old = parent_;
      parent_ = best;
      loop_hits_ = 0;  // loop evidence was against the old parent
      if (obs::Tracer* t = obs::tracer(sched_)) {
        const obs::SpanRef s =
            t->instant(0, mac_.id(), obs::Layer::kNet, "parent_switch");
        t->annotate(s, "parent", parent_);
      }
      trickle_.inconsistent();  // topology event: re-advertise promptly
      if (on_parent_change_) on_parent_change_(old, parent_);
      if (!had_parent) {
        // First join: start advertising reachability.
        dao_timer_.cancel();
        dao_timer_ = sched_.schedule_after(
            1'000'000 + rng_.below(1'000'000), [this] { send_dao(); });
        dis_timer_.cancel();
      } else {
        // Parent switched: refresh the downward path promptly.
        dao_timer_.cancel();
        dao_timer_ = sched_.schedule_after(200'000 + rng_.below(300'000),
                                           [this] { send_dao(); });
      }
    }
  }
  rank_ = path_cost_via(parent_);
  if (auto it = neighbors_.find(parent_); it != neighbors_.end()) {
    depth_ = it->second.depth < 0xFF
                 ? static_cast<std::uint8_t>(it->second.depth + 1)
                 : 0xFF;
  }
  if (rank_ < kInfiniteRank) {
    if (rank_ < lowest_rank_) {
      lowest_rank_ = rank_;
    }
    if (cfg_.max_rank_increase > 0 && rejoining_ &&
        rank_ > static_cast<std::uint32_t>(lowest_rank_) +
                    cfg_.max_rank_increase) {
      // Rejoin after orphaning at a legitimately worse rank (post-repair
      // topologies really are worse): grant bounded slack instead of
      // resetting the floor. The cap keeps the total per-version ceiling
      // at lowest_rank_ + 2 * max_rank_increase, so repeated orphan
      // episodes can no longer launder unbounded rank ratcheting.
      const std::uint32_t over = rank_ -
                                 static_cast<std::uint32_t>(lowest_rank_) -
                                 cfg_.max_rank_increase;
      floor_slack_ = static_cast<Rank>(std::min<std::uint32_t>(
          std::max<std::uint32_t>(floor_slack_, over),
          cfg_.max_rank_increase));
    }
    rejoining_ = false;
    if (cfg_.max_rank_increase > 0 &&
        rank_ <= static_cast<std::uint32_t>(lowest_rank_) +
                     cfg_.max_rank_increase) {
      // Back inside the original window: the earlier detachments were
      // transients, not sustained inconsistency.
      ratchet_orphans_ = 0;
    }
    if (cfg_.max_rank_increase > 0 &&
        rank_ > static_cast<std::uint32_t>(lowest_rank_) +
                    cfg_.max_rank_increase + floor_slack_) {
      // DAGMaxRankIncrease exceeded: two nodes holding stale ranks for
      // each other inflate one another without bound (count-to-infinity).
      // Detaching + poisoning breaks the cycle; DIS brings real routes.
      // Counted: past distress_orphan_threshold consecutive trips the
      // node's DIS carries a distress flag that escalates to the root.
      ++ratchet_orphans_;
      become_orphan();
      return;
    }
  }
  if (rank_ >= kInfiniteRank) become_orphan();
}

void RplRouting::become_orphan() {
  const bool was_joined = rank_ < kInfiniteRank || parent_ != kInvalidNode;
  parent_ = kInvalidNode;
  rank_ = kInfiniteRank;
  // The DAGMaxRankIncrease floor deliberately SURVIVES orphaning: resetting
  // it here let repeated local repairs launder unbounded rank ratcheting
  // (fuzz seed 24, mine_tunnel regime). The permanent-detach livelock that
  // reset used to paper over is handled structurally instead — rejoins get
  // one bounded slack grant (select_parent), and a node that still cannot
  // hold a rank escalates distress so the root's version bump resets the
  // floor the legitimate way.
  rejoining_ = true;
  depth_ = 0xFF;
  if (was_joined) {
    ++stats_.parent_changes;
    if (obs::Tracer* t = obs::tracer(sched_)) {
      t->instant(0, mac_.id(), obs::Layer::kNet, "orphaned");
    }
    // Poison: advertise infinite rank immediately, then solicit.
    send_dio();
    trickle_.inconsistent();
    dis_timer_.cancel();
    dis_timer_ =
        sched_.schedule_after(cfg_.dis_interval, [this] { send_dis(); });
  }
}

void RplRouting::relay_distress(NodeId origin, std::uint8_t hops) {
  if (!running_ || cfg_.distress_orphan_threshold <= 0) return;
  if (is_root_) {
    // Sustained DODAG inconsistency reported from the mesh: the RFC 6550
    // remedy is a root-initiated global repair. Rate-limited so a burst
    // of reports (every neighbor of one distressed orphan) costs one
    // version bump, not one per report.
    const sim::Time now = sched_.now();
    if (last_distress_repair_ != 0 &&
        now - last_distress_repair_ < cfg_.distress_repair_interval) {
      return;
    }
    last_distress_repair_ = now;
    ++stats_.distress_repairs;
    global_repair();
    return;
  }
  if (!joined() || parent_ == kInvalidNode) return;
  if (hops >= cfg_.max_hops) return;
  const sim::Time now = sched_.now();
  if (last_distress_relay_ != 0 &&
      now - last_distress_relay_ < cfg_.distress_relay_interval) {
    return;
  }
  last_distress_relay_ = now;
  DistressMsg msg{origin, static_cast<std::uint8_t>(hops + 1)};
  Buffer out;
  msg.encode(out);
  ++stats_.distress_relayed;
  mac_.send(parent_, std::move(out));
}

void RplRouting::global_repair() {
  if (!is_root_) return;
  ++version_;
  downward_.clear();
  trickle_.reset();
}

void RplRouting::local_repair() {
  if (is_root_) return;
  neighbors_.clear();
  become_orphan();
}

void RplRouting::note_delivery(std::uint8_t hops) {
  if (obs::Tracer* t = obs::tracer(sched_)) {
    const obs::TraceId tr = t->current_trace();
    const obs::SpanRef d =
        t->instant(tr, mac_.id(), obs::Layer::kNet, "deliver");
    t->annotate(d, "hops", hops);
    if (tr != 0) {
      const sim::Time start = t->trace_start(tr);
      e2e_latency_ms_.observe(
          static_cast<double>(sched_.now() - start) / 1000.0);
    }
  }
  e2e_hops_.observe(hops);
}

bool RplRouting::seen_recently(NodeId origin, SeqNo seq) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(origin) << 32) | seq;
  if (seen_set_.count(key) > 0) return true;
  seen_set_.emplace(key, true);
  seen_fifo_.push_back(key);
  if (seen_fifo_.size() > 8192) {
    seen_set_.erase(seen_fifo_.front());
    seen_fifo_.pop_front();
  }
  return false;
}

}  // namespace iiot::net
