// RNFD: routing-layer detection of DODAG root failures (Iwanicki, IPSN'16
// [32]) — the paper's example of exploiting parallelism to improve border-
// router failure detection "by orders of magnitude" (§IV-B, bench E4).
//
// Idea: nodes adjacent to the root ("sentinels") each probe the root
// rarely, but *share* their verdicts through a conflict-free replicated
// counter (crdt::Cfrc) gossiped over one broadcast hop. Because probes
// are staggered across sentinels, the aggregate probing rate — and hence
// detection latency — improves with the number of sentinels at constant
// per-node energy, and the idempotent CFRC merge makes double-counting
// impossible. A quorum of suspecting sentinels yields a network-wide
// verdict. If any sentinel later reaches the root again, it advances the
// CFRC epoch, which clears all votes everywhere.
//
// The baseline against which E4 compares is KeepaliveDetector below:
// every interested node probes the root independently and declares
// failure after k consecutive misses, sharing nothing.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "crdt/cfrc.hpp"
#include "net/rpl.hpp"
#include "sim/scheduler.hpp"

namespace iiot::net {

struct RnfdConfig {
  sim::Duration probe_interval = 10'000'000;  // per-sentinel probe period
  sim::Duration probe_jitter = 2'000'000;
  sim::Duration gossip_interval = 1'000'000;  // CFRC dissemination pace
  int quorum_min = 2;            // at least this many distinct suspects
  double quorum_ratio = 0.5;     // ... and this fraction of participants
  /// Consecutive probe losses before a sentinel casts a CFRC vote. A
  /// single missed unicast is routine under duty-cycled contention; a
  /// vote must mean "persistently unreachable", else two coincident
  /// MAC-level losses meet the quorum and flap the verdict.
  int misses_to_suspect = 2;
  /// A probe miss is ignored while the root was directly proven alive
  /// (DIO heard, or any unicast to it MAC-acked — the sentinel's own
  /// data traffic converges on the root, so this is passive probing for
  /// free) within this window. Distinguishes "my ping lost to
  /// contention" from "root silent".
  sim::Duration liveness_window = 15'000'000;
  /// Re-broadcast the CFRC every this many quiet gossip rounds even with
  /// no new evidence (anti-entropy: epoch advances must eventually reach
  /// nodes that missed their one event-driven dissemination).
  int anti_entropy_rounds = 10;
};

struct RnfdStats {
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_acked = 0;
  std::uint64_t probes_missed = 0;
  std::uint64_t gossip_tx = 0;
  std::uint64_t gossip_rx = 0;
  std::uint64_t epoch_advances = 0;
};

class RnfdDetector {
 public:
  /// `detected` fires once per failure episode, network-wide.
  using FailureHandler = std::function<void()>;

  RnfdDetector(RplRouting& routing, sim::Scheduler& sched, Rng rng,
               RnfdConfig cfg = {});
  ~RnfdDetector();

  void start();
  void stop();

  void set_failure_handler(FailureHandler h) { on_failure_ = std::move(h); }

  [[nodiscard]] bool root_declared_dead() const { return declared_dead_; }
  [[nodiscard]] bool is_sentinel() const;
  [[nodiscard]] const RnfdStats& stats() const { return stats_; }
  [[nodiscard]] const crdt::Cfrc& counter() const { return cfrc_; }

 private:
  void schedule_probe();
  void probe();
  void gossip();
  void on_gossip(NodeId src, BytesView full_message);
  void evaluate();

  RplRouting& routing_;
  sim::Scheduler& sched_;
  Rng rng_;
  RnfdConfig cfg_;
  RnfdStats stats_;
  crdt::Cfrc cfrc_;
  bool running_ = false;
  bool declared_dead_ = false;
  bool dirty_ = false;  // local CFRC changed since last gossip
  int consec_misses_ = 0;  // probe losses since last success/epoch
  sim::Time last_probe_ack_ = 0;
  int quiet_rounds_ = 0;  // gossip rounds suppressed since last broadcast
  FailureHandler on_failure_;
  sim::EventHandle probe_timer_;
  sim::EventHandle gossip_timer_;
};

/// Baseline: independent keepalive probing of the root; declares failure
/// after `k_missed` consecutive losses. No collaboration.
struct KeepaliveConfig {
  sim::Duration probe_interval = 10'000'000;
  sim::Duration probe_jitter = 2'000'000;
  int k_missed = 3;
};

class KeepaliveDetector {
 public:
  using FailureHandler = std::function<void()>;

  KeepaliveDetector(RplRouting& routing, sim::Scheduler& sched, Rng rng,
                    KeepaliveConfig cfg = {});

  void start();
  void stop();
  void set_failure_handler(FailureHandler h) { on_failure_ = std::move(h); }
  [[nodiscard]] bool root_declared_dead() const { return declared_dead_; }
  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }

 private:
  void schedule_probe();
  void probe();

  RplRouting& routing_;
  sim::Scheduler& sched_;
  Rng rng_;
  KeepaliveConfig cfg_;
  bool running_ = false;
  bool declared_dead_ = false;
  int misses_ = 0;
  std::uint64_t probes_sent_ = 0;
  FailureHandler on_failure_;
  sim::EventHandle probe_timer_;
};

}  // namespace iiot::net
